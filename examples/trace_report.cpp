// trace_report: run a traced schedule replay over the simulated cluster and
// AUDIT the bubble/overlap accounting — the obs::TraceAnalyzer re-derives
// {compute, exposed transfer, bubble-by-phase, exposed collective} from the
// recorded span DAG and the tool reconciles them against the trainer's own
// IterationStats scalars, plus a flow audit (every P2P/collective arrow must
// pair) and the per-iteration critical path. Exits nonzero on any
// reconciliation or flow-pairing failure, so CI can gate on it.
//
//   $ ./build/trace_report [network] [--stages S] [--replicas R]
//         [--microbatches M] [--batch B] [--schedule gpipe|1f1b]
//         [--iters N] [--pool-gb G] [--peer-staging]
//         [--trace out.json] [--metrics out.json]
//         [--profile-out prof.json] [--profile-in prof.json]
//         [--prom out.prom] [--metrics-listen PORT]
//
// --pool-gb caps the device pool (default: the cluster preset's capacity)
// and --peer-staging enables the peer-memory staging tier, so the audit can
// cover the peer_stage/peer_fetch spans and their evict->stage->fetch flow
// arrows on the pool-constrained demo geometry.
//
// replicas > 1 drives the S x R hybrid grid (per-stage row all-reduces, the
// exposed-collective surface); replicas == 1 the plain S-stage pipeline.
// --trace exports the Perfetto-loadable Chrome-trace JSON (wall-clock DMA
// staging rows included); --metrics exports the analyzer's counters /
// gauges / stall histogram through the shared util::JsonWriter path.
//
// Profile-guided partitioning loop (ISSUE 10): --profile-out persists the
// run's obs::CostProfile (observed per-layer kernel seconds + per-device
// occupancy); --profile-in loads one back, re-cuts the net with observed
// costs replacing the analytic roofline, prints analytic-vs-profile cuts
// with both evaluated under OBSERVED stage seconds, and runs the traced
// schedule on the profile-guided cuts. --prom dumps the Prometheus text
// exposition; --metrics-listen serves ONE scrape of it on 127.0.0.1:PORT
// (port 0 picks an ephemeral port) — the surface the serving path will bind.
//
// The AUDIT additionally fails when any device's span ring evicted spans
// (TraceRecorder::dropped() > 0): attribution over a truncated ring would
// reconcile against nothing.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "dist/hybrid_parallel.hpp"
#include "dist/pipeline_parallel.hpp"
#include "graph/partitioner.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/cost_profile.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_serve.hpp"
#include "obs/trace_analyzer.hpp"
#include "util/json_reader.hpp"
#include "util/json_writer.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace sn;

namespace {

std::string ms(double s) { return util::format_double(s * 1e3, 3); }

core::RuntimeOptions sim_options(const sim::ClusterSpec& cluster, int pool_gb) {
  core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons, cluster.device);
  o.real = false;
  if (pool_gb > 0) o.device_capacity = static_cast<uint64_t>(pool_gb) << 30;
  return o;
}

bool within(double a, double b, double eps) { return std::abs(a - b) <= eps; }

/// One reconciliation line; flips `ok` on mismatch.
void check(const char* what, double trainer, double analyzer, bool* ok) {
  const bool match = within(trainer, analyzer, 1e-9);
  std::printf("  %-28s trainer %12.9f s   trace %12.9f s   %s\n", what, trainer, analyzer,
              match ? "ok" : "MISMATCH");
  if (!match) *ok = false;
}

void print_attribution(const obs::TraceAnalyzer& an) {
  util::Table t({"device", "compute (ms)", "alloc (ms)", "bubble fill (ms)", "steady (ms)",
                 "drain (ms)", "xfer stall (ms)", "coll stall (ms)", "p2p (ms)"});
  for (const auto& [dev, a] : an.device_attribution()) {
    t.add_row({std::to_string(dev), ms(a.compute_seconds), ms(a.alloc_seconds),
               ms(a.bubble_fill_seconds), ms(a.bubble_steady_seconds), ms(a.bubble_drain_seconds),
               ms(a.transfer_stall_seconds), ms(a.collective_stall_seconds),
               ms(a.p2p_seconds)});
  }
  t.print();
}

void print_critical_path(const obs::TraceAnalyzer& an) {
  const auto path = an.critical_path();
  double compute = 0.0, stall = 0.0;
  int hops = 0;
  for (const auto& step : path) {
    if (step.kind == obs::SpanKind::kCompute) compute += step.vend - step.vbegin;
    if (step.kind == obs::SpanKind::kStall) stall += step.vend - step.vbegin;
    if (step.via_flow != 0) ++hops;
  }
  std::printf("critical path: %zu spans, %d cross-device flow hops, %s ms compute / %s ms "
              "stalled on it\n",
              path.size(), hops, ms(compute).c_str(), ms(stall).c_str());
  const size_t show = path.size() < 6 ? path.size() : 6;
  for (size_t i = path.size() - show; i < path.size(); ++i) {
    const auto& s = path[i];
    std::printf("  dev%d %-10s %-12s [%s, %s] ms%s\n", s.device, obs::span_kind_name(s.kind),
                s.name.c_str(), ms(s.vbegin).c_str(), ms(s.vend).c_str(),
                s.via_flow ? "  <- flow" : "");
  }
}

/// Format a cut vector as "[a, b]".
std::string cuts_str(const std::vector<int>& cuts) {
  std::string s = "[";
  for (size_t i = 0; i < cuts.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(cuts[i]);
  }
  return s + "]";
}

/// Analytic vs profile-guided partition, BOTH cut sets evaluated under the
/// observed cost prefixes (partition_at on the profile-guided partitioner),
/// so "max-stage" compares what the profile says each cut actually costs.
void print_partition_comparison(const std::string& name, int microbatch, int stages,
                                dist::SchedulePolicy policy, const sim::ClusterSpec& cluster,
                                uint64_t device_capacity, const obs::CostProfile& profile) {
  auto net = bench::build_network(name, microbatch);
  if (!net->finalized()) net->finalize();
  const graph::StageRecompute rc = policy == dist::SchedulePolicy::k1F1B
                                       ? graph::StageRecompute::kAllButLast
                                       : graph::StageRecompute::kNone;
  graph::NetPartitioner analytic(*net, cluster.device, cluster.link, device_capacity);
  graph::NetPartitioner observed(
      *net, cluster.device, cluster.link, device_capacity,
      [&profile](const std::string& layer, double* fwd, double* bwd) {
        return profile.layer_seconds(layer, fwd, bwd);
      });
  const auto plan_a = analytic.partition(stages, rc);
  const auto plan_o = observed.partition(stages, rc);
  const double a_obs = observed.partition_at(plan_a.cuts).max_stage_seconds;
  const double o_obs = plan_o.max_stage_seconds;
  std::printf("\nprofile-guided partition (%d stages, %s):\n", stages,
              dist::schedule_policy_name(policy));
  std::printf("  analytic cuts %-14s -> observed max-stage %s ms\n",
              cuts_str(plan_a.cuts).c_str(), ms(a_obs).c_str());
  std::printf("  profile  cuts %-14s -> observed max-stage %s ms  (%s)\n",
              cuts_str(plan_o.cuts).c_str(), ms(o_obs).c_str(),
              plan_o.cuts == plan_a.cuts ? "same cuts" : "cuts moved");
}

}  // namespace

int main(int argc, char** argv) {
  std::string name = "VGG16";
  int stages = 2, replicas = 2, microbatches = 4, batch = 32, iters = 2, pool_gb = 0;
  int listen_port = -1;
  bool peer_staging = false;
  std::string sched_arg = "1f1b";
  std::string trace_path, metrics_path, profile_out, profile_in, prom_path;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](int* out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", argv[i]);
        std::exit(2);
      }
      *out = std::atoi(argv[++i]);
    };
    if (std::strcmp(argv[i], "--stages") == 0) {
      next(&stages);
    } else if (std::strcmp(argv[i], "--replicas") == 0) {
      next(&replicas);
    } else if (std::strcmp(argv[i], "--microbatches") == 0) {
      next(&microbatches);
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      next(&batch);
    } else if (std::strcmp(argv[i], "--iters") == 0) {
      next(&iters);
    } else if (std::strcmp(argv[i], "--pool-gb") == 0) {
      next(&pool_gb);
    } else if (std::strcmp(argv[i], "--peer-staging") == 0) {
      peer_staging = true;
    } else if (std::strcmp(argv[i], "--schedule") == 0 && i + 1 < argc) {
      sched_arg = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--profile-out") == 0 && i + 1 < argc) {
      profile_out = argv[++i];
    } else if (std::strcmp(argv[i], "--profile-in") == 0 && i + 1 < argc) {
      profile_in = argv[++i];
    } else if (std::strcmp(argv[i], "--prom") == 0 && i + 1 < argc) {
      prom_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-listen") == 0) {
      next(&listen_port);
    } else if (argv[i][0] != '-') {
      name = argv[i];
    } else {
      std::fprintf(stderr, "unknown arg %s\n", argv[i]);
      return 2;
    }
  }
  const dist::SchedulePolicy policy =
      sched_arg == "gpipe" ? dist::SchedulePolicy::kGPipe : dist::SchedulePolicy::k1F1B;
  auto factory = [&](int b) { return bench::build_network(name, b); };

  std::printf("=== trace_report: %s, %dx%d grid, %d microbatches, %s, %d iters ===\n",
              name.c_str(), stages, replicas, microbatches,
              dist::schedule_policy_name(policy), iters);

  // Profile-guided partitioning: load observed costs and hand them to the
  // trainer config, so the traced run below already uses the observed cuts.
  obs::CostProfile profile;
  bool have_profile = false;
  if (!profile_in.empty()) {
    try {
      profile = obs::CostProfile::load(profile_in);
      have_profile = true;
    } catch (const util::JsonError& e) {
      std::fprintf(stderr, "trace_report: %s\n", e.what());
      return 2;
    }
    std::printf("loaded cost profile %s (%zu layers, %zu devices)\n", profile_in.c_str(),
                profile.layers().size(), profile.devices().size());
  }

  obs::TraceSession session;
  // Trainer-side scalars the analyzer must reproduce from spans alone.
  double bubble_total = 0.0, bubble_fill = 0.0, bubble_steady = 0.0, bubble_drain = 0.0;
  double exposed_last = 0.0;

  if (replicas > 1) {
    dist::HybridParallelConfig cfg;
    cfg.stages = stages;
    cfg.replicas = replicas;
    cfg.microbatches = microbatches;
    cfg.global_batch = batch;
    cfg.schedule = policy;
    cfg.cluster = sim::nvlink_cluster_spec(stages * replicas);
    cfg.train.iterations = iters;
    cfg.peer_staging = peer_staging;
    if (have_profile) cfg.cost_profile = &profile;
    const core::RuntimeOptions opts = sim_options(cfg.cluster, pool_gb);
    if (have_profile) {
      print_partition_comparison(name, batch / replicas / microbatches, stages, policy,
                                 cfg.cluster, opts.device_capacity, profile);
    }
    dist::HybridParallelTrainer hyb(factory, opts, cfg);
    hyb.attach_trace(&session);
    auto rep = hyb.run();
    for (const auto& st : rep.stats) {
      bubble_total += st.bubble_seconds;
      bubble_fill += st.bubble_fill_seconds;
      bubble_steady += st.bubble_steady_seconds;
      bubble_drain += st.bubble_drain_seconds;
    }
    exposed_last = rep.stats.back().allreduce_exposed_seconds;
    hyb.attach_trace(nullptr);
  } else {
    dist::PipelineParallelConfig cfg;
    cfg.stages = stages;
    cfg.microbatches = microbatches;
    cfg.global_batch = batch;
    cfg.schedule = policy;
    cfg.cluster = sim::nvlink_cluster_spec(stages);
    cfg.train.iterations = iters;
    cfg.peer_staging = peer_staging;
    if (have_profile) cfg.cost_profile = &profile;
    const core::RuntimeOptions opts = sim_options(cfg.cluster, pool_gb);
    if (have_profile) {
      print_partition_comparison(name, batch / microbatches, stages, policy, cfg.cluster,
                                 opts.device_capacity, profile);
    }
    dist::PipelineParallelTrainer pipe(factory, opts, cfg);
    pipe.attach_trace(&session);
    auto rep = pipe.run();
    for (const auto& st : rep.stats) {
      bubble_total += st.bubble_seconds;
      bubble_fill += st.bubble_fill_seconds;
      bubble_steady += st.bubble_steady_seconds;
      bubble_drain += st.bubble_drain_seconds;
    }
    pipe.attach_trace(nullptr);
  }

  obs::TraceAnalyzer an(session);
  print_attribution(an);

  const obs::Attribution total = an.total();
  std::printf("\nreconciliation (trainer scalars vs span-derived):\n");
  bool ok = true;
  check("bubble", bubble_total, total.bubble_seconds, &ok);
  check("bubble fill", bubble_fill, total.bubble_fill_seconds, &ok);
  check("bubble steady", bubble_steady, total.bubble_steady_seconds, &ok);
  check("bubble drain", bubble_drain, total.bubble_drain_seconds, &ok);
  if (replicas > 1) {
    // The exposed-collective scalar is per iteration; the span algebra
    // anchors on the LAST drain-end marker, so compare the final iteration.
    check("allreduce exposed (last it)", exposed_last, an.exposed_collective_seconds(), &ok);
  }

  const auto unmatched = an.unmatched_flows();
  std::printf("flow audit: %zu produced, %zu consumed, %zu unmatched\n", an.flows_produced(),
              an.flows_consumed(), unmatched.size());
  if (!unmatched.empty()) ok = false;

  // Ring-eviction audit: a truncated ring means every reconciliation above
  // ran on a partial record — fail loudly instead of passing by luck.
  size_t dropped_total = 0;
  for (int dev : session.devices()) {
    const size_t d = session.recorder(dev)->dropped();
    if (d > 0) std::printf("  dev%d dropped %zu spans at ring capacity\n", dev, d);
    dropped_total += d;
  }
  std::printf("span rings: %zu dropped\n", dropped_total);
  if (dropped_total > 0) ok = false;

  print_critical_path(an);

  if (!profile_out.empty()) {
    obs::CostProfile captured = obs::CostProfile::from_session(session);
    if (!captured.save(profile_out)) {
      std::fprintf(stderr, "failed to write %s\n", profile_out.c_str());
      return 1;
    }
    std::printf("wrote cost profile %s (%zu layers, %zu devices)\n", profile_out.c_str(),
                captured.layers().size(), captured.devices().size());
  }

  if (!trace_path.empty()) {
    if (!obs::write_chrome_trace(session, trace_path)) {
      std::fprintf(stderr, "failed to write %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("wrote trace %s\n", trace_path.c_str());
  }
  if (!metrics_path.empty()) {
    obs::MetricsRegistry m;
    an.fill_metrics(m);
    util::JsonWriter w;
    w.begin_object();
    w.key("metrics");
    m.write_json(w);
    w.end_object();
    if (!w.save(metrics_path)) {
      std::fprintf(stderr, "failed to write %s\n", metrics_path.c_str());
      return 1;
    }
    std::printf("wrote metrics %s\n", metrics_path.c_str());
  }
  if (!prom_path.empty() || listen_port >= 0) {
    obs::MetricsRegistry m;
    an.fill_metrics(m);
    const std::string prom = m.to_prometheus();
    if (!prom_path.empty()) {
      std::FILE* f = std::fopen(prom_path.c_str(), "w");
      if (!f || std::fwrite(prom.data(), 1, prom.size(), f) != prom.size()) {
        std::fprintf(stderr, "failed to write %s\n", prom_path.c_str());
        if (f) std::fclose(f);
        return 1;
      }
      std::fclose(f);
      std::printf("wrote prometheus exposition %s\n", prom_path.c_str());
    }
    if (listen_port >= 0) {
      try {
        obs::OneShotTextServer srv(listen_port);
        std::printf("metrics: serving one scrape on 127.0.0.1:%d\n", srv.port());
        std::fflush(stdout);
        if (!srv.serve_once(prom)) {
          std::fprintf(stderr, "metrics: scrape failed\n");
          return 1;
        }
      } catch (const std::runtime_error& e) {
        std::fprintf(stderr, "metrics: %s\n", e.what());
        return 1;
      }
    }
  }

  std::printf("%s\n", ok ? "AUDIT OK" : "AUDIT FAILED");
  return ok ? 0 : 1;
}
