// data_parallel: walkthrough of the dist/ layer.
//
// Part 1 (real numerics) trains the same tiny conv net twice — once on a
// single simulated device with the full batch, once data-parallel across two
// devices with the batch sharded — and shows the per-iteration losses are
// BIT-IDENTICAL: sharding + ring all-reduce is just another memory schedule,
// and schedules never change training results.
//
// Part 2 (simulation) scales a paper-sized ResNet50 across an NVLink ring
// and prints the weak-scaling curve with the collective telemetry.
#include <cstdio>
#include <cstring>

#include "dist/data_parallel.hpp"
#include "graph/zoo.hpp"
#include "train/trainer.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace sn;

int main() {
  // --- Part 1: bit-identical data-parallel training ------------------------
  const int kGlobalBatch = 8, kIters = 6;
  auto factory = [](int batch) { return graph::build_tiny_linear(batch, 12); };

  core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
  o.real = true;
  o.device_capacity = 32ull << 20;
  o.allow_workspace = false;  // identical conv algorithm at any batch size

  train::TrainConfig tc;
  tc.iterations = kIters;
  tc.lr = 0.05f;
  tc.momentum = 0.9f;

  auto net = factory(kGlobalBatch);
  core::Runtime rt(*net, o);
  train::Trainer trainer(rt, tc);
  auto single = trainer.run();

  dist::DataParallelConfig cfg;
  cfg.devices = 2;
  cfg.global_batch = kGlobalBatch;
  cfg.cluster = sim::nvlink_cluster_spec(2);
  cfg.train = tc;
  dist::DataParallelTrainer dp(factory, o, cfg);
  auto multi = dp.run();

  std::printf("=== 1 device (batch %d) vs 2 devices (batch %d each) ===\n", kGlobalBatch,
              dp.shard_batch());
  util::Table t({"iter", "single-device loss", "2-device loss", "bitwise"});
  bool all_equal = true;
  for (int i = 0; i < kIters; ++i) {
    bool eq = std::memcmp(&single.losses[static_cast<size_t>(i)],
                          &multi.losses[static_cast<size_t>(i)], sizeof(double)) == 0;
    all_equal = all_equal && eq;
    t.add_row({std::to_string(i), util::format_double(single.losses[static_cast<size_t>(i)], 9),
               util::format_double(multi.losses[static_cast<size_t>(i)], 9),
               eq ? "==" : "DIFFER"});
  }
  t.print();
  std::printf("losses bit-identical across the cluster boundary: %s\n\n",
              all_equal ? "YES" : "NO");
  if (!all_equal) return 1;

  const auto& st = multi.device_stats.back().front();
  std::printf("device 0 telemetry (last iteration): p2p %s MB sent, allreduce %.2f ms, "
              "iteration %.2f ms\n\n",
              util::format_double(st.p2p_bytes / 1048576.0, 2).c_str(),
              st.allreduce_seconds * 1e3, (st.seconds + st.allreduce_seconds) * 1e3);

  // --- Part 2: paper-scale weak scaling (pure simulation) ------------------
  std::printf("=== ResNet50, batch 32/device, NVLink ring (simulated) ===\n");
  util::Table scale({"devices", "iter (ms)", "allreduce (ms)", "P2P (MB)", "img/s", "speedup"});
  double base = 0.0;
  for (int devices : {1, 2, 4}) {
    dist::DataParallelConfig c2;
    c2.devices = devices;
    c2.global_batch = 32 * devices;
    c2.cluster = sim::nvlink_cluster_spec(devices);
    c2.train.iterations = 2;
    core::RuntimeOptions so = core::make_policy(core::PolicyPreset::kSuperNeurons,
                                                c2.cluster.device);
    so.real = false;
    dist::DataParallelTrainer sim_dp(
        [](int batch) { return graph::build_resnet_preset(50, batch); }, so, c2);
    auto rep = sim_dp.run();
    const auto& last = rep.stats.back();
    double img_s = c2.global_batch / last.seconds;
    if (devices == 1) base = img_s;
    scale.add_row({std::to_string(devices), util::format_double(last.seconds * 1e3, 1),
                   util::format_double(last.allreduce_seconds * 1e3, 2),
                   util::format_double(last.p2p_bytes / 1048576.0, 1),
                   util::format_double(img_s, 1), util::format_double(img_s / base, 2)});
  }
  scale.print();
  return 0;
}
