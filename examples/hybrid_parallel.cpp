// hybrid_parallel: walkthrough of 2D hybrid parallelism.
//
// Part 1 (real numerics) trains the same tiny conv net twice — once on a
// single simulated device with the full batch, once on a 2-stage x 2-replica
// device grid (each replica column microbatched 2 ways) — and shows the
// per-iteration losses are BIT-IDENTICAL: cutting the net across pools,
// microbatching each shard AND replicating every stage is still just another
// memory schedule, and schedules never change training results.
//
// Part 2 (simulation) scans grid shapes for a paper-sized VGG16 at a fixed
// device budget: pure DP (1 x N), pure pipeline (N x 1) and the hybrids in
// between, with bubble / all-reduce / P2P telemetry per shape.
#include <cstdio>
#include <cstring>

#include "dist/hybrid_parallel.hpp"
#include "graph/zoo.hpp"
#include "train/trainer.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace sn;

int main() {
  // --- Part 1: bit-identical hybrid training -------------------------------
  const int kGlobalBatch = 8, kIters = 6;
  auto factory = [](int batch) { return graph::build_tiny_linear(batch, 12); };

  core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
  o.real = true;
  o.device_capacity = 32ull << 20;
  o.allow_workspace = false;  // identical conv algorithm at any batch size

  train::TrainConfig tc;
  tc.iterations = kIters;
  tc.lr = 0.05f;
  tc.momentum = 0.9f;

  auto net = factory(kGlobalBatch);
  core::Runtime rt(*net, o);
  train::Trainer trainer(rt, tc);
  auto single = trainer.run();

  dist::HybridParallelConfig cfg;
  cfg.stages = 2;
  cfg.replicas = 2;
  cfg.microbatches = 2;
  cfg.global_batch = kGlobalBatch;
  cfg.cluster = sim::nvlink_cluster_spec(4);
  cfg.train = tc;
  dist::HybridParallelTrainer hyb(factory, o, cfg);
  auto multi = hyb.run();

  std::printf("=== 1 device (batch %d) vs 2-stage x 2-replica grid (shard %d, microbatch %d) "
              "===\n",
              kGlobalBatch, hyb.shard_batch(), hyb.microbatch_size());
  util::Table t({"iter", "single-device loss", "2x2-grid loss", "bitwise"});
  bool all_equal = true;
  for (int i = 0; i < kIters; ++i) {
    bool eq = std::memcmp(&single.losses[static_cast<size_t>(i)],
                          &multi.losses[static_cast<size_t>(i)], sizeof(double)) == 0;
    all_equal = all_equal && eq;
    t.add_row({std::to_string(i), util::format_double(single.losses[static_cast<size_t>(i)], 9),
               util::format_double(multi.losses[static_cast<size_t>(i)], 9),
               eq ? "==" : "DIFFER"});
  }
  t.print();
  std::printf("losses bit-identical across the 2D grid: %s\n\n", all_equal ? "YES" : "NO");
  if (!all_equal) return 1;

  const auto& cell = multi.cell_stats.back()[1][0];  // stage 1, replica 0
  std::printf("cell (1, 0) telemetry (last iteration): p2p %s MB, bubble %.2f ms, "
              "allreduce %.2f ms, iteration %.2f ms\n\n",
              util::format_double(cell.p2p_bytes / 1048576.0, 2).c_str(),
              cell.bubble_seconds * 1e3, cell.allreduce_seconds * 1e3, cell.seconds * 1e3);

  // --- Part 2: grid-shape scan at a fixed device budget (simulation) -------
  std::printf("=== VGG16, global batch 32, 4 NVLink devices: grid shapes (simulated) ===\n");
  util::Table scale({"grid S x R", "iter (ms)", "img/s", "bubble_frac", "allreduce (ms)",
                     "P2P (MB)"});
  for (auto [stages, replicas] : {std::pair{1, 4}, {2, 2}, {4, 1}}) {
    dist::HybridParallelConfig c2;
    c2.stages = stages;
    c2.replicas = replicas;
    c2.microbatches = stages > 1 ? 4 : 1;
    c2.global_batch = 32;
    c2.cluster = sim::nvlink_cluster_spec(4);
    c2.train.iterations = 2;
    core::RuntimeOptions so =
        core::make_policy(core::PolicyPreset::kSuperNeurons, c2.cluster.device);
    so.real = false;
    dist::HybridParallelTrainer sim_hyb(
        [](int batch) { return graph::build_vgg(16, batch); }, so, c2);
    auto rep = sim_hyb.run();
    const auto& last = rep.stats.back();
    scale.add_row({std::to_string(stages) + " x " + std::to_string(replicas),
                   util::format_double(last.seconds * 1e3, 1),
                   util::format_double(c2.global_batch / last.seconds, 1),
                   util::format_double(last.bubble_seconds / (4.0 * last.seconds), 3),
                   util::format_double(last.allreduce_seconds * 1e3, 2),
                   util::format_double(last.p2p_bytes / 1048576.0, 1)});
  }
  scale.print();
  std::printf("(1 x 4 = pure data parallelism, 4 x 1 = pure pipeline; the hybrid splits the\n"
              "difference: smaller per-device nets than DP, smaller per-device batches than\n"
              "the deep pipeline.)\n");
  return 0;
}
