// Going wider (the paper's Table 5 scenario as a runnable story):
//
// Sweep AlexNet's batch size on a simulated 12 GB device and report, per
// framework policy, whether the batch fits and at what speed — the
// trade-off curve behind the paper's Fig. 14.
#include <cstdio>

#include "core/runtime.hpp"
#include "graph/zoo.hpp"

using namespace sn;

namespace {

/// img/s at this batch, or a negative value on OOM.
double probe(core::PolicyPreset preset, int batch) {
  try {
    auto net = graph::build_alexnet(batch);
    auto opts = core::make_policy(preset);
    core::Runtime rt(*net, opts);
    rt.train_iteration(nullptr, nullptr);  // warm-up: params placed, cache primed
    auto st = rt.train_iteration(nullptr, nullptr);
    return batch / st.seconds;
  } catch (const core::OomError&) {
    return -1.0;
  }
}

}  // namespace

int main() {
  const int batches[] = {128, 256, 512, 1024, 1536, 1792};
  const core::PolicyPreset presets[] = {core::PolicyPreset::kCaffeLike,
                                        core::PolicyPreset::kMxnetLike,
                                        core::PolicyPreset::kTfLike,
                                        core::PolicyPreset::kSuperNeurons};

  std::printf("AlexNet batch scaling on a 12 GB device (img/s; OOM where marked)\n\n");
  std::printf("%8s", "batch");
  for (auto p : presets) std::printf("  %12s", core::policy_name(p));
  std::printf("\n");
  int sn_wins = 0;
  for (int b : batches) {
    std::printf("%8d", b);
    double best_other = -1, sn = -1;
    for (auto p : presets) {
      double ips = probe(p, b);
      if (ips < 0) {
        std::printf("  %12s", "OOM");
      } else {
        std::printf("  %12.1f", ips);
      }
      if (p == core::PolicyPreset::kSuperNeurons) {
        sn = ips;
      } else if (ips > best_other) {
        best_other = ips;
      }
    }
    if (sn > 0 && sn >= best_other) ++sn_wins;
    std::printf("\n");
  }
  std::printf("\nSuperNeurons leads (or is the only survivor) at %d of %zu batch sizes.\n",
              sn_wins, std::size(batches));
  return 0;
}
