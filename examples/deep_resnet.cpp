// Going deeper (the paper's Table 4 scenario as a runnable story):
//
// Pick a ResNet depth that static memory policies cannot fit on a 12 GB
// device, then show the SuperNeurons policy training it anyway — and, at a
// miniature scale, verify with real numerics that the memory-starved
// schedule trains bit-identically to an unconstrained one.
#include <cstdio>

#include "core/runtime.hpp"
#include "graph/zoo.hpp"
#include "train/trainer.hpp"

using namespace sn;

namespace {

const char* try_policy(core::PolicyPreset preset, int n3) {
  try {
    auto net = graph::build_resnet(6, 32, n3, 6, /*batch=*/16);
    auto opts = core::make_policy(preset);
    core::Runtime rt(*net, opts);
    rt.train_iteration(nullptr, nullptr);
    return "trains";
  } catch (const core::OomError&) {
    return "OOM";
  }
}

}  // namespace

int main() {
  // Part 1: paper-scale (simulated 12 GB K40c). ResNet-1000-ish: n3 = 280
  // -> depth = 3*(6+32+280+6)+2 = 974.
  const int n3 = 280;
  int depth = graph::resnet_depth(6, 32, n3, 6);
  std::printf("Part 1: ResNet-%d (batch 16) on a 12 GB device, per policy:\n", depth);
  for (auto preset : {core::PolicyPreset::kCaffeLike, core::PolicyPreset::kTorchLike,
                      core::PolicyPreset::kMxnetLike, core::PolicyPreset::kTfLike,
                      core::PolicyPreset::kSuperNeurons}) {
    std::printf("  %-12s : %s\n", core::policy_name(preset), try_policy(preset, n3));
  }

  // Part 2: the same story with real numerics at miniature scale. A tiny
  // 24-unit residual net is trained twice: once with ample device memory,
  // once starved below its natural peak. The final weights must be
  // bit-identical — the scheduler trades time, never correctness.
  // (The convolution algorithm is pinned: like cuDNN, different algorithms
  // have different summation orders, so only memory scheduling is varied.)
  std::printf("\nPart 2: real-numerics depth stress (24 residual units)\n");
  auto train_with = [](uint64_t capacity) {
    auto net = graph::build_tiny_resnet(4, 24);
    core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
    o.real = true;
    o.device_capacity = capacity;
    o.host_capacity = 64ull << 20;
    o.allow_workspace = false;  // pin the conv algorithm across both runs
    core::Runtime rt(*net, o);
    train::Trainer trainer(rt, {.iterations = 6, .lr = 0.005f, .momentum = 0.9f});
    auto rep = trainer.run();
    // Fingerprint all weights.
    double sum = 0;
    for (const auto& l : rt.net().layers())
      for (const auto* p : l->params())
        for (float v : rt.read_tensor(p)) sum += static_cast<double>(v) * v;
    std::printf("    capacity %5.1f MB: loss %.3f -> %.3f, peak %.2f MB, d2h %.2f MB, "
                "replays %llu, weight fingerprint %.9f\n",
                capacity / 1048576.0, rep.first_loss(), rep.last_loss(),
                rep.stats.back().peak_mem / 1048576.0,
                rep.stats.back().bytes_d2h / 1048576.0,
                static_cast<unsigned long long>(rep.stats.back().extra_forwards), sum);
    return sum;
  };
  double ample = train_with(32ull << 20);
  double tight = train_with(1200ull << 10);  // ~1.2 MB: below the ample run's peak
  std::printf("  fingerprints %s\n",
              ample == tight ? "IDENTICAL — scheduling changed nothing but memory"
                             : "DIVERGED (bug!)");
  return ample == tight ? 0 : 1;
}
