// Quickstart: build a small network, wrap it in the SuperNeurons runtime,
// and train it for real on synthetic data — all in ~30 lines of user code.
//
//   $ ./build/examples/quickstart
//
// What to look for: the loss decreases, and the iteration stats show the
// scheduler at work (peak memory, transfers, recomputations).
#include <cstdio>

#include "core/runtime.hpp"
#include "graph/zoo.hpp"
#include "train/trainer.hpp"

int main() {
  using namespace sn;

  // 1. A network: miniature AlexNet (CONV/LRN/POOL/FC/Dropout/Softmax).
  auto net = graph::build_mini_alexnet(/*batch=*/16);

  // 2. A runtime policy: the full SuperNeurons scheduler on a small
  //    "device" — 8 MB of device memory, real numerics.
  core::RuntimeOptions opts = core::make_policy(core::PolicyPreset::kSuperNeurons);
  opts.real = true;
  opts.device_capacity = 8ull << 20;
  opts.host_capacity = 64ull << 20;
  core::Runtime runtime(*net, opts);

  // 3. Train.
  train::Trainer trainer(runtime, {.iterations = 40, .lr = 0.05f, .momentum = 0.9f});
  auto report = trainer.run();

  std::printf("quickstart: trained mini-AlexNet for %zu iterations\n", report.losses.size());
  for (size_t i = 0; i < report.losses.size(); i += 8) {
    std::printf("  iter %2zu  loss %.4f\n", i, report.losses[i]);
  }
  std::printf("  final    loss %.4f (started at %.4f)\n", report.last_loss(),
              report.first_loss());

  const auto& last = report.stats.back();
  std::printf("\nscheduler stats (last iteration):\n");
  std::printf("  peak device memory : %.2f MB of %.2f MB capacity\n",
              last.peak_mem / 1048576.0, opts.device_capacity / 1048576.0);
  std::printf("  offload traffic    : %.2f MB out, %.2f MB in\n", last.bytes_d2h / 1048576.0,
              last.bytes_h2d / 1048576.0);
  std::printf("  recompute replays  : %llu layer forwards\n",
              static_cast<unsigned long long>(last.extra_forwards));
  std::printf("  cache hits/misses  : %llu / %llu\n",
              static_cast<unsigned long long>(last.cache_hits),
              static_cast<unsigned long long>(last.cache_misses));
  return report.last_loss() < report.first_loss() ? 0 : 1;
}
