// Non-linear networks end to end: fan/join graphs through the scheduler.
//
// Part 1 trains the paper's Fig. 3c fan network (DATA forks two branches
// that join before FC) with real numerics under memory pressure.
// Part 2 schedules the full Inception-V4 (hundreds of fan/join layers) on a
// simulated 12 GB device and prints what the runtime did.
#include <cstdio>

#include "core/runtime.hpp"
#include "graph/zoo.hpp"
#include "train/trainer.hpp"

using namespace sn;

int main() {
  std::printf("Part 1: training the Fig. 3c fan/join network (real numerics)\n");
  {
    auto net = graph::build_tiny_fanjoin(/*batch=*/16, /*image=*/12, /*classes=*/4);
    core::RuntimeOptions opts = core::make_policy(core::PolicyPreset::kSuperNeurons);
    opts.real = true;
    opts.device_capacity = 4ull << 20;  // starved: forces offload + recompute
    opts.host_capacity = 64ull << 20;
    core::Runtime rt(*net, opts);
    train::Trainer trainer(rt, {.iterations = 30, .lr = 0.05f, .momentum = 0.9f});
    auto rep = trainer.run();
    std::printf("  loss %.4f -> %.4f over %zu iterations (peak %.2f of %.2f MB)\n",
                rep.first_loss(), rep.last_loss(), rep.losses.size(),
                rep.stats.back().peak_mem / 1048576.0, opts.device_capacity / 1048576.0);
  }

  std::printf("\nPart 2: scheduling Inception-V4 (batch 32) on a 12 GB device\n");
  {
    auto net = graph::build_inception_v4(32);
    std::printf("  %zu layers, %zu tensors, %.2f GB baseline demand\n", net->num_layers(),
                net->registry().size(), net->total_tensor_bytes() / (1024.0 * 1024.0 * 1024.0));
    core::RuntimeOptions opts = core::make_policy(core::PolicyPreset::kSuperNeurons);
    core::Runtime rt(*net, opts);
    rt.train_iteration(nullptr, nullptr);
    auto st = rt.train_iteration(nullptr, nullptr);
    std::printf("  steady-state iteration: %.1f ms virtual time (%.1f img/s)\n",
                st.seconds * 1e3, 32.0 / st.seconds);
    std::printf("  peak memory %.2f GB (capacity 12 GB), offloaded %.2f GB, prefetched %.2f GB\n",
                st.peak_mem / (1024.0 * 1024.0 * 1024.0),
                st.bytes_d2h / (1024.0 * 1024.0 * 1024.0),
                st.bytes_h2d / (1024.0 * 1024.0 * 1024.0));
    std::printf("  recompute replays: %llu; evictions: %llu; cache hit rate %.1f%%\n",
                static_cast<unsigned long long>(st.extra_forwards),
                static_cast<unsigned long long>(st.evictions),
                100.0 * st.cache_hits / std::max<uint64_t>(1, st.cache_hits + st.cache_misses));
  }
  return 0;
}
