// schedule_report: inspect what the SuperNeurons scheduler decides for any
// zoo network — liveness intervals, recomputation segments, per-step memory,
// and a policy comparison — without running anything for real.
//
//   $ ./build/examples/schedule_report [network] [batch]
//   $ ./build/examples/schedule_report [network] [batch] --csv
//   $ ./build/examples/schedule_report [network] [batch] --pipeline S M [--schedule gpipe|1f1b]
//   $ ./build/examples/schedule_report [network] [batch] --pipeline S M --trace out.json
//   networks: AlexNet VGG16 VGG19 InceptionV4 ResNet50 ResNet101 ResNet152
//
// --csv emits the per-step overlap series instead of the tables: one row per
// route step with the compute seconds and the {d2h,h2d,p2p} copy-engine busy
// seconds that accrued during it — the raw material of the paper's
// transfer/compute overlap figure (plot busy columns against compute).
//
// --pipeline runs the column-schedule engine over an S-stage pipeline at M
// microbatches (simulated cluster) and breaks each stage's bubble into the
// fill / steady / drain phases the engine stamps into StepTelemetry — the
// 1F1B-vs-GPipe comparison surface. With no --schedule both policies print.
//
// --trace FILE (with --pipeline) additionally records the replay with
// obs::TraceRecorder and exports a Perfetto-loadable Chrome-trace JSON.
// When both policies run, each overwrites FILE — pass --schedule to keep a
// specific one. trace_report is the richer tool (attribution, hybrid grid).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/liveness.hpp"
#include "core/recompute.hpp"
#include "core/runtime.hpp"
#include "dist/pipeline_parallel.hpp"
#include "graph/zoo.hpp"
#include "obs/chrome_trace.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace sn;

namespace {

std::unique_ptr<graph::Net> build(const std::string& name, int batch) {
  if (name == "AlexNet") return graph::build_alexnet(batch);
  if (name == "VGG16") return graph::build_vgg(16, batch);
  if (name == "VGG19") return graph::build_vgg(19, batch);
  if (name == "InceptionV4") return graph::build_inception_v4(batch);
  if (name == "ResNet50") return graph::build_resnet_preset(50, batch);
  if (name == "ResNet101") return graph::build_resnet_preset(101, batch);
  if (name == "ResNet152") return graph::build_resnet_preset(152, batch);
  std::fprintf(stderr, "unknown network %s\n", name.c_str());
  std::exit(1);
}

std::string mb(uint64_t b) { return util::format_double(b / 1048576.0, 1); }

const char* phase_name(int ph) {
  switch (ph) {
    case 0: return "fill";
    case 1: return "steady";
    case 2: return "drain";
    default: return "-";
  }
}

// One policy's pipeline run: per-stage phase-split bubble plus a stamped
// step-trace sample showing the engine's phase/microbatch annotations.
void pipeline_phase_report(const std::string& name, int batch, int stages, int microbatches,
                           dist::SchedulePolicy policy, const std::string& trace_path) {
  dist::PipelineParallelConfig cfg;
  cfg.stages = stages;
  cfg.microbatches = microbatches;
  cfg.global_batch = batch;
  cfg.schedule = policy;
  cfg.cluster = sim::nvlink_cluster_spec(stages);
  cfg.train.iterations = 2;
  auto factory = [&](int b) { return build(name, b); };
  core::RuntimeOptions opts = core::make_policy(core::PolicyPreset::kSuperNeurons, cfg.cluster.device);
  opts.real = false;
  dist::PipelineParallelTrainer pipe(factory, opts, cfg);
  for (int s = 0; s < stages; ++s) pipe.runtime(s).set_retain_telemetry(true);
  obs::TraceSession session;
  if (!trace_path.empty()) pipe.attach_trace(&session);
  auto rep = pipe.run();
  if (!trace_path.empty()) {
    if (obs::write_chrome_trace(session, trace_path)) {
      std::printf("wrote trace %s (%s)\n", trace_path.c_str(),
                  dist::schedule_policy_name(policy));
    } else {
      std::fprintf(stderr, "failed to write trace %s\n", trace_path.c_str());
      std::exit(1);
    }
    pipe.attach_trace(nullptr);
  }
  const auto& agg = rep.stats.back();
  const auto& per_stage = rep.stage_stats.back();

  std::printf("--- schedule %s: iter %.1f ms, bubble %.2f ms "
              "(fill %.2f / steady %.2f / drain %.2f)\n",
              dist::schedule_policy_name(policy), agg.seconds * 1e3, agg.bubble_seconds * 1e3,
              agg.bubble_fill_seconds * 1e3, agg.bubble_steady_seconds * 1e3,
              agg.bubble_drain_seconds * 1e3);
  util::Table t({"stage", "layers", "busy (ms)", "bubble fill (ms)", "steady (ms)",
                 "drain (ms)", "stash (MB)"});
  for (int s = 0; s < stages; ++s) {
    const auto& st = per_stage[static_cast<size_t>(s)];
    const auto& spec = pipe.plan().stages[static_cast<size_t>(s)];
    t.add_row({std::to_string(s), std::to_string(spec.end - spec.begin),
               util::format_double((st.seconds - st.bubble_seconds) * 1e3, 2),
               util::format_double(st.bubble_fill_seconds * 1e3, 2),
               util::format_double(st.bubble_steady_seconds * 1e3, 2),
               util::format_double(st.bubble_drain_seconds * 1e3, 2),
               mb(pipe.stash_bytes(s))});
  }
  t.print();

  // The stamps themselves: the last stage's retained step telemetry carries
  // the engine's (phase, microbatch) annotation on every step.
  const auto& tele = pipe.runtime(stages - 1).step_telemetry();
  std::printf("stage %d stamped steps (first 8 of %zu): ", stages - 1, tele.size());
  for (size_t i = 0; i < tele.size() && i < 8; ++i) {
    std::printf("%s%s:m%d:%s", i ? " " : "", tele[i].forward ? "F" : "B",
                tele[i].microbatch, phase_name(tele[i].sched_phase));
  }
  std::printf("\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  int pipe_stages = 0, pipe_microbatches = 0;
  std::string sched_arg = "both";
  std::string trace_path;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (std::strcmp(argv[i], "--pipeline") == 0 && i + 2 < argc) {
      pipe_stages = std::atoi(argv[i + 1]);
      pipe_microbatches = std::atoi(argv[i + 2]);
      i += 2;
    } else if (std::strcmp(argv[i], "--schedule") == 0 && i + 1 < argc) {
      sched_arg = argv[i + 1];
      ++i;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[i + 1];
      ++i;
    } else {
      pos.push_back(argv[i]);
    }
  }
  std::string name = !pos.empty() ? pos[0] : "AlexNet";
  int batch = pos.size() > 1 ? std::atoi(pos[1].c_str()) : 64;

  if (pipe_stages > 0) {
    std::printf("=== %s (batch %d): %d-stage pipeline, %d microbatches ===\n", name.c_str(),
                batch, pipe_stages, pipe_microbatches);
    if (sched_arg == "gpipe" || sched_arg == "both") {
      pipeline_phase_report(name, batch, pipe_stages, pipe_microbatches,
                            dist::SchedulePolicy::kGPipe, trace_path);
    }
    if (sched_arg == "1f1b" || sched_arg == "both") {
      pipeline_phase_report(name, batch, pipe_stages, pipe_microbatches,
                            dist::SchedulePolicy::k1F1B, trace_path);
    }
    return 0;
  }
  if (!trace_path.empty()) {
    std::fprintf(stderr, "--trace requires --pipeline (see trace_report for more)\n");
    return 2;
  }

  if (csv) {
    // Per-step transfer/compute overlap series (steady state: iteration 2).
    auto net = build(name, batch);
    core::Runtime rt(*net, core::make_policy(core::PolicyPreset::kSuperNeurons));
    try {
      rt.train_iteration(nullptr, nullptr);  // warm-up: offload steady state
      const auto base = rt.machine().counters();
      rt.train_iteration(nullptr, nullptr);
      std::printf("step,layer,pass,compute_seconds,d2h_busy_seconds,h2d_busy_seconds,"
                  "p2p_busy_seconds,transfers_in_flight,clock\n");
      // The telemetry carries cumulative machine counters; emit per-step
      // deltas against the traced iteration's start.
      double prev_compute = base.compute_time, prev_d2h = base.seconds_d2h,
             prev_h2d = base.seconds_h2d, prev_p2p = base.seconds_p2p;
      for (const auto& s : rt.step_telemetry()) {
        std::printf("%d,%s,%s,%.9f,%.9f,%.9f,%.9f,%llu,%.9f\n", s.step, s.layer->name().c_str(),
                    s.forward ? "fwd" : "bwd", s.compute_seconds - prev_compute,
                    s.d2h_busy_seconds - prev_d2h, s.h2d_busy_seconds - prev_h2d,
                    s.p2p_busy_seconds - prev_p2p,
                    static_cast<unsigned long long>(s.transfers_in_flight), s.clock);
        prev_compute = s.compute_seconds;
        prev_d2h = s.d2h_busy_seconds;
        prev_h2d = s.h2d_busy_seconds;
        prev_p2p = s.p2p_busy_seconds;
      }
    } catch (const core::OomError& e) {
      std::fprintf(stderr, "%s OOMs at batch %d (%s)\n", name.c_str(), batch, e.what.c_str());
      return 1;
    }
    return 0;
  }

  auto net = build(name, batch);

  std::printf("=== %s (batch %d) ===\n", name.c_str(), batch);
  std::printf("layers: %zu   tensors: %zu   baseline demand: %s MB   max layer: %s MB\n\n",
              net->num_layers(), net->registry().size(), mb(net->total_tensor_bytes()).c_str(),
              mb(net->max_layer_bytes()).c_str());

  // Liveness summary: how many tensors die in forward vs backward.
  core::Liveness lv(*net);
  int nfwd = static_cast<int>(net->route().size());
  int die_fwd = 0, die_bwd = 0, persistent = 0;
  for (const auto& t : net->registry().all()) {
    if (lv.is_persistent(t->uid())) {
      ++persistent;
    } else if (lv.last_occurrence(t->uid()) < nfwd) {
      ++die_fwd;
    } else if (lv.last_occurrence(t->uid()) >= 0) {
      ++die_bwd;
    }
  }
  std::printf("liveness: %d tensors die in forward, %d in backward, %d persistent (params)\n",
              die_fwd, die_bwd, persistent);

  // Recompute plan summary.
  core::RecomputePlan plan(*net, core::RecomputeMode::kCostAware);
  int speed = 0;
  size_t seg_layers = 0, longest = 0;
  for (const auto& seg : plan.segments()) {
    if (seg.speed_centric) ++speed;
    seg_layers += seg.layers.size();
    longest = std::max(longest, seg.layers.size());
  }
  std::printf("recompute: %zu segments over %zu layers (longest %zu); cost-aware picks\n"
              "  speed-centric for %d and memory-centric for %zu; predicted replays: %llu\n\n",
              plan.segments().size(), seg_layers, longest, speed,
              plan.segments().size() - static_cast<size_t>(speed),
              static_cast<unsigned long long>(
                  plan.predicted_extra_forwards(core::RecomputeMode::kCostAware)));

  // Policy comparison on the simulated 12 GB device.
  util::Table t({"policy", "status", "peak (MB)", "iter (ms)", "img/s", "D2H (MB)", "replays"});
  for (auto preset : {core::PolicyPreset::kCaffeLike, core::PolicyPreset::kTorchLike,
                      core::PolicyPreset::kMxnetLike, core::PolicyPreset::kTfLike,
                      core::PolicyPreset::kSuperNeurons}) {
    auto fresh = build(name, batch);
    core::RuntimeOptions o = core::make_policy(preset);
    try {
      core::Runtime rt(*fresh, o);
      rt.train_iteration(nullptr, nullptr);
      auto st = rt.train_iteration(nullptr, nullptr);
      t.add_row({core::policy_name(preset), "ok", mb(st.peak_mem),
                 util::format_double(st.seconds * 1e3, 1),
                 util::format_double(batch / st.seconds, 1), mb(st.bytes_d2h),
                 std::to_string(st.extra_forwards)});
    } catch (const core::OomError& e) {
      t.add_row({core::policy_name(preset), "OOM", "-", "-", "-", "-", "-"});
      (void)e;
    }
  }
  t.print();

  // Per-step trace of the SuperNeurons schedule (first/last few steps).
  auto fresh = build(name, batch);
  core::Runtime rt(*fresh, core::make_policy(core::PolicyPreset::kSuperNeurons));
  try {
    rt.train_iteration(nullptr, nullptr);
  } catch (const core::OomError&) {
    std::printf("\n(SuperNeurons itself OOMs at this batch; no step trace)\n");
    return 0;
  }
  const auto& tele = rt.step_telemetry();
  std::printf("\nSuperNeurons step trace (first 8 and last 8 of %zu steps):\n", tele.size());
  util::Table tr({"step", "layer", "pass", "mem (MB)", "live tensors", "conv algo", "host (MB)",
                  "d2h s/c", "h2d s/c", "in flight"});
  auto add = [&](const core::StepTelemetry& s) {
    tr.add_row({std::to_string(s.step), s.layer->name(), s.forward ? "fwd" : "bwd",
                mb(s.mem_in_use), std::to_string(s.live_tensors),
                s.layer->type() == graph::LayerType::kConv ? nn::algo_name(s.algo) : "-",
                mb(s.host_in_use),
                std::to_string(s.d2h_submitted) + "/" + std::to_string(s.d2h_completed),
                std::to_string(s.h2d_submitted) + "/" + std::to_string(s.h2d_completed),
                std::to_string(s.transfers_in_flight)});
  };
  for (size_t i = 0; i < tele.size() && i < 8; ++i) add(tele[i]);
  for (size_t i = tele.size() > 8 ? tele.size() - 8 : 8; i < tele.size(); ++i) add(tele[i]);
  tr.print();

  // Unified-tensor-pool / transfer-engine summary for the traced iteration
  // (the host-pool and engine counters StepTelemetry carries per step).
  const auto& last = tele.back();
  const auto xfer = rt.transfer_engine().stats();
  std::printf("\ntransfer engine: %llu offloads submitted (%llu completed, %llu discarded), "
              "%llu fetches submitted (%llu completed, %llu discarded)\n",
              static_cast<unsigned long long>(xfer.submitted_d2h),
              static_cast<unsigned long long>(xfer.completed_d2h),
              static_cast<unsigned long long>(xfer.discarded_d2h),
              static_cast<unsigned long long>(xfer.submitted_h2d),
              static_cast<unsigned long long>(xfer.completed_h2d),
              static_cast<unsigned long long>(xfer.discarded_h2d));
  std::printf("host pool: %s MB in use at iteration end, %s MB peak; "
              "copies: %llu inline, %llu on DMA workers\n",
              mb(last.host_in_use).c_str(), mb(last.host_peak).c_str(),
              static_cast<unsigned long long>(xfer.inline_copies),
              static_cast<unsigned long long>(xfer.dma_copies));
  // Per-stream view of the DMA engines: bytes moved and busy seconds per
  // direction (the multi-stream TransferEngine's occupancy counters).
  const auto& mc = rt.machine().counters();
  std::printf("per-stream: d2h %s MB / d2h_seconds=%.4f (%llu worker copies), "
              "h2d %s MB / h2d_seconds=%.4f (%llu worker copies), "
              "staged_chunks=%llu\n",
              mb(mc.bytes_d2h).c_str(), mc.seconds_d2h,
              static_cast<unsigned long long>(xfer.dma_copies_d2h), mb(mc.bytes_h2d).c_str(),
              mc.seconds_h2d, static_cast<unsigned long long>(xfer.dma_copies_h2d),
              static_cast<unsigned long long>(xfer.staged_chunks));
  return 0;
}
