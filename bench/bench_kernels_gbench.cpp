// google-benchmark microbenchmarks for the real CPU substrate: SGEMM,
// convolution algorithms, memory-pool operations, and the LRU cache.
//
// These measure the *actual* kernel/runtime code (wall clock), complementing
// the virtual-time table/figure benches.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/tensor_cache.hpp"
#include "mem/mem_pool.hpp"
#include "nn/conv.hpp"
#include "nn/gemm.hpp"
#include "util/rng.hpp"

namespace {

using namespace sn;

void BM_Sgemm(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<float> a(static_cast<size_t>(n) * n), b(a.size()), c(a.size());
  util::Rng rng(1);
  for (auto& v : a) v = rng.next_float();
  for (auto& v : b) v = rng.next_float();
  for (auto _ : state) {
    nn::sgemm(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2ll * n * n * n);
}
BENCHMARK(BM_Sgemm)->Arg(64)->Arg(128)->Arg(256);

void BM_ConvForward(benchmark::State& state) {
  nn::ConvAlgo algo = static_cast<nn::ConvAlgo>(state.range(0));
  nn::ConvDesc d;
  d.n = 2;
  d.c = 16;
  d.h = 28;
  d.w = 28;
  d.k = 16;
  d.kh = d.kw = 3;
  d.stride_h = d.stride_w = 1;
  d.pad_h = d.pad_w = 1;
  if (!nn::conv_algo_supported(d, algo)) {
    state.SkipWithError("unsupported");
    return;
  }
  util::Rng rng(2);
  std::vector<float> x(d.in_elems()), w(d.weight_elems()), bias(d.k), y(d.out_elems());
  std::vector<float> ws(nn::conv_workspace_bytes(d, algo, nn::ConvPass::kForward) / sizeof(float) +
                        1);
  for (auto& v : x) v = rng.next_float();
  for (auto& v : w) v = rng.next_float();
  for (auto _ : state) {
    nn::conv_forward(d, algo, x.data(), w.data(), bias.data(), y.data(), ws.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetLabel(nn::algo_name(algo));
}
BENCHMARK(BM_ConvForward)
    ->Arg(static_cast<int>(nn::ConvAlgo::kDirect))
    ->Arg(static_cast<int>(nn::ConvAlgo::kIm2colGemm))
    ->Arg(static_cast<int>(nn::ConvAlgo::kWinograd));

void BM_MemoryPoolChurn(benchmark::State& state) {
  mem::MemoryPool pool(64 << 20, static_cast<uint64_t>(state.range(0)));
  util::Rng rng(3);
  std::vector<uint64_t> live;
  for (auto _ : state) {
    if (live.size() < 256 && (live.empty() || rng.next_float() < 0.6f)) {
      if (auto a = pool.allocate(1 + rng.next_below(1 << 16))) live.push_back(a->id);
    } else {
      size_t i = rng.next_below(live.size());
      pool.deallocate(live[i]);
      live[i] = live.back();
      live.pop_back();
    }
  }
  for (uint64_t id : live) pool.deallocate(id);
}
BENCHMARK(BM_MemoryPoolChurn)->Arg(256)->Arg(1024)->Arg(4096);

void BM_TensorCacheOps(benchmark::State& state) {
  core::TensorCache cache;
  for (uint64_t i = 0; i < 1024; ++i) cache.insert(i);
  uint64_t uid = 0;
  for (auto _ : state) {
    cache.touch(uid);
    uid = (uid + 37) & 1023;
  }
}
BENCHMARK(BM_TensorCacheOps);

}  // namespace

BENCHMARK_MAIN();
