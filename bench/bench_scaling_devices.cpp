// bench_scaling_devices: data-parallel scaling curves on the simulated
// cluster (1/2/4/8 devices, NVLink vs PCIe fabrics).
//
// Weak scaling holds the per-device batch constant (the whole point of the
// paper's memory runtime is to keep per-device batches large); strong scaling
// splits a fixed global batch. Throughput counts the global batch against the
// slowest device's iteration time including the gradient ring all-reduce, so
// the communication overhead the fabric model charges is visible as the gap
// to linear speedup.
#include <cstdio>

#include "bench/common.hpp"
#include "dist/data_parallel.hpp"

using namespace sn;

namespace {

struct Point {
  int devices;
  double iter_s = 0.0;
  double allreduce_s = 0.0;
  uint64_t p2p_bytes = 0;
  double img_per_s = 0.0;
};

Point run_point(const std::string& net, int devices, int per_device_batch,
                const sim::ClusterSpec& fabric) {
  dist::DataParallelConfig cfg;
  cfg.devices = devices;
  cfg.global_batch = devices * per_device_batch;
  cfg.cluster = fabric;
  cfg.train.iterations = 2;  // first iteration warms the offload schedule
  core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons,
                                             fabric.device);
  o.real = false;
  dist::DataParallelTrainer dp(
      [&](int batch) { return bench::build_network(net, batch); }, o, cfg);
  auto report = dp.run();
  const auto& st = report.stats.back();
  Point p;
  p.devices = devices;
  p.iter_s = st.seconds;
  p.allreduce_s = st.allreduce_seconds;
  p.p2p_bytes = st.p2p_bytes;
  p.img_per_s = static_cast<double>(cfg.global_batch) / st.seconds;
  return p;
}

void sweep(const char* title, const std::string& net, bool weak, int batch,
           const sim::ClusterSpec& fabric) {
  std::printf("\n--- %s: %s, %s scaling, batch %d%s ---\n", title, net.c_str(),
              weak ? "weak" : "strong", batch, weak ? "/device" : " global");
  util::Table t({"devices", "iter (ms)", "allreduce (ms)", "P2P (MB)", "img/s", "speedup"});
  double base = 0.0;
  for (int devices : {1, 2, 4, 8}) {
    int per_device = weak ? batch : batch / devices;
    Point p = run_point(net, devices, per_device, fabric);
    if (devices == 1) base = p.img_per_s;
    double speedup = p.img_per_s / base;
    t.add_row({std::to_string(devices), util::format_double(p.iter_s * 1e3, 1),
               util::format_double(p.allreduce_s * 1e3, 2), bench::mb(p.p2p_bytes),
               util::format_double(p.img_per_s, 1), util::format_double(speedup, 2)});
    if (weak && devices == 2) {
      std::printf("2-device weak scaling: %.2fx speedup, p2p_bytes=%llu (%s MB/device)\n",
                  speedup, static_cast<unsigned long long>(p.p2p_bytes),
                  bench::mb(p.p2p_bytes / 2).c_str());
    }
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  std::string net = argc > 1 ? argv[1] : "ResNet50";
  int batch = argc > 2 ? std::atoi(argv[2]) : 32;

  std::printf("=== Data-parallel scaling on the simulated cluster (%s) ===\n", net.c_str());
  sweep("NVLink fabric", net, /*weak=*/true, batch, sim::nvlink_cluster_spec(1));
  sweep("NVLink fabric", net, /*weak=*/false, batch * 8, sim::nvlink_cluster_spec(1));
  sweep("PCIe fabric", net, /*weak=*/true, batch, sim::pcie_cluster_spec(1));
  sweep("PCIe fabric", net, /*weak=*/false, batch * 8, sim::pcie_cluster_spec(1));
  return 0;
}
