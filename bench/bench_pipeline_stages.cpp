// bench_pipeline_stages: sweep pipeline stages x microbatches x schedule over
// the zoo and compare against the single-device and data-parallel baselines.
//
// The pipeline's fill/drain ramps idle (S-1) microbatch slots per stage
// regardless of M, so the bubble fraction must shrink as microbatches grow
// (GPipe's law); the bench gates on that for the 2-stage configs. The 1F1B
// (PipeDream-flush) schedule drains each microbatch as soon as its backward
// is ready AND never re-materializes the last stage's forward (the backward
// directly follows it), so whenever the pipe is deep in microbatches
// (M >= 2S) its bubble fraction must come in strictly below GPipe's at the
// same (S, M) — the bench gates on that too.
//
// bubble_frac follows the standard pipeline-bubble definition: the span in
// excess of the bottleneck stage's own busy time, (span - max_s busy_s) /
// span — for a balanced pipe this is the classic (S-1)/(M+S-1). Summed
// receiver-side stall seconds (IterationStats::bubble_seconds, what the
// fill/steady/drain phase split attributes) are reported alongside, but make
// a poor cross-schedule gate: 1F1B does strictly less work per iteration
// (no last-stage remat), and at a fixed bottleneck every saved second shows
// up as a stall on some non-critical stage. Per-config telemetry comes
// straight from IterationStats: bubble_seconds (compute stalled on a
// pipeline neighbor), p2p_bytes / p2p_seconds (boundary activation +
// gradient streaming).
//
// With --repeats N every measured config runs N times and each JSON row
// carries {repeats, seconds_lo, seconds_hi} alongside the median "seconds",
// so the committed trajectory point records its own noise band for
// trajectory_diff to judge future deltas against.
//
//   ./bench_pipeline_stages [--json out.json] [--schedule gpipe|1f1b|both]
//                           [--repeats N]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "bench/common.hpp"
#include "dist/data_parallel.hpp"
#include "dist/pipeline_parallel.hpp"
#include "util/json_writer.hpp"

using namespace sn;

namespace {

struct Row {
  std::string net;
  std::string schedule;
  int stages = 1;
  int microbatches = 1;
  double seconds = 0.0;
  double bubble_seconds = 0.0;
  double bubble_frac = 0.0;
  uint64_t p2p_bytes = 0;
  double p2p_seconds = 0.0;
  int repeats = 1;
  double seconds_lo = 0.0;
  double seconds_hi = 0.0;
};

/// Median + extremes over per-repeat samples; the table and gates use the
/// first repeat's full stats, the JSON row records the dispersion.
void fill_dispersion(Row* r, std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  size_t n = samples.size();
  r->repeats = static_cast<int>(n);
  r->seconds = n % 2 == 1 ? samples[n / 2] : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  r->seconds_lo = samples.front();
  r->seconds_hi = samples.back();
}

core::RuntimeOptions sim_options(const sim::ClusterSpec& cluster) {
  core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons, cluster.device);
  o.real = false;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  std::string sched_arg = "both";
  int repeats = 1;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
    if (std::strcmp(argv[i], "--schedule") == 0) sched_arg = argv[i + 1];
    if (std::strcmp(argv[i], "--repeats") == 0) repeats = std::atoi(argv[i + 1]);
  }
  if (repeats < 1) {
    std::fprintf(stderr, "--repeats must be >= 1\n");
    return 1;
  }
  std::vector<dist::SchedulePolicy> policies;
  if (sched_arg == "gpipe" || sched_arg == "both") {
    policies.push_back(dist::SchedulePolicy::kGPipe);
  }
  if (sched_arg == "1f1b" || sched_arg == "both") {
    policies.push_back(dist::SchedulePolicy::k1F1B);
  }
  if (policies.empty()) {
    std::fprintf(stderr, "unknown --schedule %s (want gpipe|1f1b|both)\n", sched_arg.c_str());
    return 1;
  }

  const int kGlobalBatch = 32, kIters = 2;
  const char* nets[] = {"VGG16", "ResNet50", "InceptionV4"};
  const int stage_sweep[] = {2, 4};
  const int microbatch_sweep[] = {2, 4, 8};

  std::printf("=== pipeline stages x microbatches (global batch %d, TITAN-Xp NVLink sim) ===\n\n",
              kGlobalBatch);
  util::Table t({"network", "config", "schedule", "iter (ms)", "img/s", "bubble_seconds (ms)",
                 "bubble_frac", "p2p_bytes (MB)", "p2p busy (ms)"});
  std::vector<Row> rows;
  // bubble_frac keyed by (net, stages, microbatches, schedule) for the
  // cross-schedule gate.
  std::map<std::tuple<std::string, int, int, std::string>, double> frac_by_cfg;
  bool shrink_ok = true;

  for (const char* name : nets) {
    // Single-device baseline: the same net over the combined batch.
    {
      sim::ClusterSpec cs = sim::nvlink_cluster_spec(1);
      std::vector<double> samples;
      for (int rep = 0; rep < repeats; ++rep) {
        auto net = bench::build_network(name, kGlobalBatch);
        samples.push_back(bench::run_sim_iteration(*net, sim_options(cs)).seconds);
      }
      Row r{name, "-", 1, 1, samples[0], 0.0, 0.0, 0, 0.0, 1, 0.0, 0.0};
      fill_dispersion(&r, samples);
      t.add_row({name, "1 device", "-", util::format_double(r.seconds * 1e3, 1),
                 util::format_double(kGlobalBatch / r.seconds, 1), "0.00", "0.000", "0.0",
                 "0.00"});
      rows.push_back(r);
    }
    for (int stages : stage_sweep) {
      // Data-parallel baseline at the same device count.
      {
        dist::DataParallelConfig cfg;
        cfg.devices = stages;
        cfg.global_batch = kGlobalBatch;
        cfg.cluster = sim::nvlink_cluster_spec(stages);
        cfg.train.iterations = kIters;
        auto factory = [&](int batch) { return bench::build_network(name, batch); };
        dist::DataParallelTrainer dp(factory, sim_options(cfg.cluster), cfg);
        auto rep = dp.run();
        const auto& st = rep.stats.back();
        t.add_row({name, std::to_string(stages) + "-dev data-parallel", "-",
                   util::format_double(st.seconds * 1e3, 1),
                   util::format_double(kGlobalBatch / st.seconds, 1), "0.00", "0.000",
                   util::format_double(st.p2p_bytes / 1048576.0, 1), "0.00"});
      }
      for (dist::SchedulePolicy policy : policies) {
        const char* pname = dist::schedule_policy_name(policy);
        double frac_first = -1.0, frac_last = -1.0;
        for (int mb : microbatch_sweep) {
          std::vector<double> samples;
          Row r;
          for (int run = 0; run < repeats; ++run) {
            dist::PipelineParallelConfig cfg;
            cfg.stages = stages;
            cfg.microbatches = mb;
            cfg.global_batch = kGlobalBatch;
            cfg.cluster = sim::nvlink_cluster_spec(stages);
            cfg.train.iterations = kIters;
            cfg.schedule = policy;
            auto factory = [&](int batch) { return bench::build_network(name, batch); };
            dist::PipelineParallelTrainer pipe(factory, sim_options(cfg.cluster), cfg);
            auto rep = pipe.run();
            const auto& st = rep.stats.back();
            samples.push_back(st.seconds);
            if (run > 0) continue;
            // Bottleneck stage busy time: per-stage span minus its stalls.
            double busy_max = 0.0;
            for (const auto& ss : rep.stage_stats.back()) {
              busy_max = std::max(busy_max, ss.seconds - ss.bubble_seconds);
            }
            r = Row{name,          pname,
                    stages,        mb,
                    st.seconds,    st.bubble_seconds,
                    (st.seconds - busy_max) / st.seconds,
                    st.p2p_bytes,  st.p2p_seconds,
                    1,             0.0,
                    0.0};
          }
          fill_dispersion(&r, samples);
          rows.push_back(r);
          frac_by_cfg[{name, stages, mb, pname}] = r.bubble_frac;
          if (frac_first < 0) frac_first = r.bubble_frac;
          frac_last = r.bubble_frac;
          t.add_row({name, std::to_string(stages) + " stages x " + std::to_string(mb) + " ubatch",
                     pname, util::format_double(r.seconds * 1e3, 1),
                     util::format_double(kGlobalBatch / r.seconds, 1),
                     util::format_double(r.bubble_seconds * 1e3, 2),
                     util::format_double(r.bubble_frac, 3),
                     util::format_double(static_cast<double>(r.p2p_bytes) / 1048576.0, 1),
                     util::format_double(r.p2p_seconds * 1e3, 2)});
        }
        if (stages == 2 && policy == dist::SchedulePolicy::kGPipe && frac_last >= frac_first) {
          shrink_ok = false;
          std::printf("!! %s: 2-stage bubble_frac did not shrink (%f -> %f)\n", name, frac_first,
                      frac_last);
        }
      }
    }
  }
  t.print();
  std::printf("\nbubble_frac = (span - bottleneck stage busy) / span; GPipe predicts it\n"
              "falls as microbatches grow (fill/drain ramps amortize): %s\n",
              shrink_ok ? "CONFIRMED" : "VIOLATED");

  // Cross-schedule gate: with the pipe deep in microbatches (M >= 2S), the
  // 1F1B steady state starts draining during the fill ramp, so its bubble
  // fraction must beat GPipe's at the same shape.
  bool onef1b_ok = true;
  if (policies.size() == 2) {
    for (const char* name : nets) {
      for (int stages : stage_sweep) {
        for (int mb : microbatch_sweep) {
          if (mb < 2 * stages) continue;
          double fg = frac_by_cfg[{name, stages, mb, "gpipe"}];
          double f1 = frac_by_cfg[{name, stages, mb, "1f1b"}];
          if (f1 >= fg) {
            onef1b_ok = false;
            std::printf("!! %s %dx%d: 1f1b bubble_frac %.4f >= gpipe %.4f\n", name, stages, mb,
                        f1, fg);
          }
        }
      }
    }
    std::printf("1f1b bubble_frac < gpipe at every (S, M) with M >= 2S: %s\n",
                onef1b_ok ? "CONFIRMED" : "VIOLATED");
  }
  std::printf("(pipeline iterations re-materialize forwards at drain, so img/s trails the\n"
              "data-parallel baseline at equal devices; pipelining is for nets whose\n"
              "working set exceeds one device's pool.)\n");

  if (json_path) {
    util::JsonWriter w;
    w.begin_object();
    w.key("global_batch").value(kGlobalBatch);
    w.key("configs").begin_array();
    for (const Row& r : rows) {
      w.begin_object(util::JsonWriter::kInline);
      w.key("net").value(r.net);
      w.key("schedule").value(r.schedule);
      w.key("stages").value(r.stages);
      w.key("microbatches").value(r.microbatches);
      w.key("seconds").value_sci(r.seconds, 6);
      w.key("repeats").value(r.repeats);
      w.key("seconds_lo").value_sci(r.seconds_lo, 6);
      w.key("seconds_hi").value_sci(r.seconds_hi, 6);
      w.key("bubble_seconds").value_sci(r.bubble_seconds, 6);
      w.key("bubble_frac").value_fixed(r.bubble_frac, 4);
      w.key("p2p_bytes").value(r.p2p_bytes);
      w.key("p2p_seconds").value_sci(r.p2p_seconds, 6);
      w.end_object();
    }
    w.end_array().end_object();
    if (!w.save(json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
  }
  return (shrink_ok && onef1b_ok) ? 0 : 1;
}
