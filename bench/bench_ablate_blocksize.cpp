// Ablation — memory pool block size (the paper fixes 1 KB; §3.2.1).
//
// Sweeps the block granularity and reports internal fragmentation (rounding
// waste) and metadata pressure (node counts) under a real training churn
// trace, plus wall-clock cost of the pool operations.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/liveness.hpp"
#include "mem/mem_pool.hpp"

namespace {

using namespace sn;

struct ChurnResult {
  double waste_pct = 0;   ///< internal fragmentation at peak
  size_t max_nodes = 0;   ///< peak free+allocated node count
  double ns_per_op = 0;   ///< wall-clock per alloc/free
  bool ok = true;
};

ChurnResult churn(graph::Net& net, uint64_t block) {
  core::Liveness lv(net);
  mem::MemoryPool pool(24ull << 30, block);
  std::vector<uint64_t> handle(net.registry().size(), 0);
  std::vector<uint64_t> reserved_of(net.registry().size(), 0);
  uint64_t requested = 0, reserved = 0, peak_requested = 0;
  double waste_at_peak = 0;
  size_t max_nodes = 0;
  size_t ops = 0;
  auto t0 = std::chrono::steady_clock::now();
  for (const auto& step : net.steps()) {
    for (uint64_t uid : lv.defs(step.index)) {
      if (handle[uid]) continue;
      const auto* t = net.registry().get(uid);
      auto a = pool.allocate(t->bytes());
      if (!a) return {0, 0, 0, false};
      handle[uid] = a->id;
      reserved_of[uid] = a->bytes;
      requested += t->bytes();
      reserved += a->bytes;
      ++ops;
      if (requested > peak_requested) {
        peak_requested = requested;
        waste_at_peak = 100.0 * (static_cast<double>(reserved) - requested) / requested;
      }
    }
    for (uint64_t uid : lv.free_after(step.index)) {
      if (!handle[uid]) continue;
      const auto* t = net.registry().get(uid);
      pool.deallocate(handle[uid]);
      handle[uid] = 0;
      requested -= t->bytes();
      reserved -= reserved_of[uid];
      reserved_of[uid] = 0;
      ++ops;
    }
    auto st = pool.stats();
    max_nodes = std::max(max_nodes, st.free_nodes + st.allocated_nodes);
  }
  auto t1 = std::chrono::steady_clock::now();
  ChurnResult r;
  r.waste_pct = waste_at_peak;
  r.max_nodes = max_nodes;
  r.ns_per_op = std::chrono::duration<double, std::nano>(t1 - t0).count() / ops;
  return r;
}

}  // namespace

int main() {
  std::printf("Ablation: memory-pool block size (ResNet50 b32 iteration churn)\n\n");
  util::Table t({"block", "frag waste @ peak", "peak node count", "ns per pool op"});
  auto net = sn::bench::build_network("ResNet50", 32);
  for (uint64_t block : {256u, 1024u, 4096u, 16384u, 65536u, 262144u}) {
    auto r = churn(*net, block);
    t.add_row({util::format_bytes(block), util::format_double(r.waste_pct, 3) + "%",
               std::to_string(r.max_nodes), util::format_double(r.ns_per_op, 0)});
  }
  t.print();
  std::printf("\nReading: small blocks minimize rounding waste at higher metadata cost; the\n"
              "paper's 1 KB sits at negligible waste with manageable node counts.\n");
  return 0;
}
