// Table 2 — Training throughput (img/s) with the native cudaMalloc/cudaFree
// model vs the pre-allocated GPU memory pool (§3.2.1).
//
// Paper: speedups grow with network non-linearity (AlexNet 1.12x ...
// ResNet152 1.77x) because deeper non-linear nets churn many more tensors
// per iteration under liveness analysis.
#include <cstdio>

#include "bench/common.hpp"

using namespace sn;

int main() {
  std::printf("Table 2: GPU memory pool vs cudaMalloc/cudaFree (img/s)\n");
  std::printf("(AlexNet batch 128, others batch 16; K40c-sim)\n\n");

  util::Table t({"img/s", "AlexNet", "VGG16", "InceptionV4", "ResNet50", "ResNet101",
                 "ResNet152"});
  struct Cfg {
    const char* name;
    int batch;
  } cfgs[] = {{"AlexNet", 128}, {"VGG16", 16},     {"InceptionV4", 16},
              {"ResNet50", 16}, {"ResNet101", 16}, {"ResNet152", 16}};

  std::vector<std::string> cuda_row{"CUDA"}, pool_row{"Ours"}, speedup_row{"speedup"};
  for (const auto& cfg : cfgs) {
    core::RuntimeOptions base = core::make_policy(core::PolicyPreset::kSuperNeurons);
    base.device_capacity = 96ull << 30;

    auto with_pool = base;
    with_pool.use_pool_allocator = true;
    auto native = base;
    native.use_pool_allocator = false;

    auto net_a = bench::build_network(cfg.name, cfg.batch);
    auto net_b = bench::build_network(cfg.name, cfg.batch);
    double pool_ips = bench::sim_img_per_s(*net_a, with_pool);
    double cuda_ips = bench::sim_img_per_s(*net_b, native);
    cuda_row.push_back(util::format_double(cuda_ips, 1));
    pool_row.push_back(util::format_double(pool_ips, 1));
    speedup_row.push_back(util::format_double(pool_ips / cuda_ips, 2) + "x");
  }
  t.add_row(cuda_row);
  t.add_row(pool_row);
  t.add_row(speedup_row);
  t.print();
  std::printf(
      "\nShape check vs paper (1.12x / 1.19x / 1.48x / 1.53x / 1.68x / 1.77x): deeper\n"
      "non-linear networks allocate/free far more tensors per iteration, so the pool's\n"
      "amortization wins more.\n");
  return 0;
}
