// Shared helpers for the per-table / per-figure bench binaries.
//
// Every bench regenerates one table or figure from the paper's evaluation
// (§4); EXPERIMENTS.md maps bench output to the paper's reported rows.
// All benches run the simulated K40c/TITAN-Xp device (see DESIGN.md §6),
// so they execute paper-scale configurations (12 GB, batch 1024, depth
// 10^3+) on any development machine in seconds.
#pragma once

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/runtime.hpp"
#include "graph/zoo.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace sn::bench {

/// Networks used across the evaluation, by paper name.
inline std::unique_ptr<graph::Net> build_network(const std::string& name, int batch) {
  if (name == "AlexNet") return graph::build_alexnet(batch);
  if (name == "VGG16") return graph::build_vgg(16, batch);
  if (name == "VGG19") return graph::build_vgg(19, batch);
  if (name == "InceptionV4") return graph::build_inception_v4(batch);
  if (name == "ResNet50") return graph::build_resnet_preset(50, batch);
  if (name == "ResNet101") return graph::build_resnet_preset(101, batch);
  if (name == "ResNet152") return graph::build_resnet_preset(152, batch);
  throw std::invalid_argument("unknown network " + name);
}

/// One steady-state simulated iteration (params already resident; the first
/// iteration is discarded as warm-up so offload steady state is measured).
inline core::IterationStats run_sim_iteration(graph::Net& net, core::RuntimeOptions opts,
                                              int warmup = 1) {
  opts.real = false;
  core::Runtime rt(net, opts);
  core::IterationStats st;
  for (int i = 0; i <= warmup; ++i) st = rt.train_iteration(nullptr, nullptr);
  return st;
}

/// Images/second from a steady-state iteration.
inline double sim_img_per_s(graph::Net& net, const core::RuntimeOptions& opts) {
  auto st = run_sim_iteration(net, opts);
  double batch = static_cast<double>(net.input_layer()->out_shape().n);
  return batch / st.seconds;
}

/// True when the configuration completes an iteration without OOM.
inline bool runs_without_oom(const std::function<std::unique_ptr<graph::Net>()>& build,
                             core::RuntimeOptions opts) {
  try {
    auto net = build();
    opts.real = false;
    core::Runtime rt(*net, opts);
    rt.train_iteration(nullptr, nullptr);
    return true;
  } catch (const core::OomError&) {
    return false;
  }
}

/// Largest integer x in [lo, hi] with pred(x) true, assuming monotone pred
/// (pred(lo) must hold; returns lo-1 if it does not).
inline int search_max(int lo, int hi, const std::function<bool(int)>& pred) {
  if (!pred(lo)) return lo - 1;
  while (lo < hi) {
    int mid = lo + (hi - lo + 1) / 2;
    if (pred(mid)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

inline std::string gb(uint64_t bytes) {
  return util::format_double(static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0), 2);
}

inline std::string mb(uint64_t bytes) {
  return util::format_double(static_cast<double>(bytes) / (1024.0 * 1024.0), 1);
}

}  // namespace sn::bench
