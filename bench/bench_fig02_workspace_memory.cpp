// Fig. 2 — Network-wide memory usage with and without convolution
// workspaces, and the training speedup workspaces buy.
//
// Paper setup: AlexNet batch 200, all others batch 32; left axis memory
// (baseline tensor allocation), right axis speedup (img/s with workspaces /
// img/s without).
#include <cstdio>

#include "bench/common.hpp"
#include "core/workspace.hpp"

namespace {

using namespace sn;

uint64_t total_best_workspace(const graph::Net& net) {
  uint64_t total = 0;
  for (const auto& l : net.layers()) {
    if (l->type() != graph::LayerType::kConv) continue;
    const auto* conv = static_cast<const graph::ConvLayer*>(l.get());
    auto fwd = core::choose_conv_algo(*conv, true, UINT64_MAX);
    auto bwd = core::choose_conv_algo(*conv, false, UINT64_MAX);
    total += fwd.best_workspace_bytes + bwd.best_workspace_bytes;
  }
  return total;
}

}  // namespace

int main() {
  std::printf("Fig. 2: memory usage with/without conv workspaces + speedup\n");
  std::printf("(batch: AlexNet 200, others 32; device: K40c-sim, ample capacity)\n\n");

  sn::util::Table t({"Network", "Memory (GB)", "Memory w/ ConvBuff (GB)", "SpeedUp w/ ConvBuff"});
  struct Cfg {
    const char* name;
    int batch;
  } cfgs[] = {{"AlexNet", 200}, {"VGG16", 32},    {"VGG19", 32},     {"InceptionV4", 32},
              {"ResNet50", 32}, {"ResNet101", 32}, {"ResNet152", 32}};

  for (const auto& cfg : cfgs) {
    auto net = sn::bench::build_network(cfg.name, cfg.batch);
    uint64_t mem = net->total_tensor_bytes();
    uint64_t mem_ws = mem + total_best_workspace(*net);

    // Speedup: dynamic workspaces (fastest feasible algorithm) vs no
    // workspace at all (direct convolution only).
    sn::core::RuntimeOptions fast = sn::core::make_policy(sn::core::PolicyPreset::kSuperNeurons);
    fast.device_capacity = 96ull << 30;  // measure speed, not capacity
    sn::core::RuntimeOptions slow = fast;
    slow.allow_workspace = false;  // forces the zero-workspace algorithm
    auto net_a = sn::bench::build_network(cfg.name, cfg.batch);
    auto net_b = sn::bench::build_network(cfg.name, cfg.batch);
    double with_ws = sn::bench::sim_img_per_s(*net_a, fast);
    double without_ws = sn::bench::sim_img_per_s(*net_b, slow);

    t.add_row({cfg.name, sn::bench::gb(mem), sn::bench::gb(mem_ws),
               sn::util::format_double(with_ws / without_ws, 2) + "x"});
  }
  t.print();
  std::printf(
      "\nShape check vs paper: non-linear nets (InceptionV4 ~44 GB, ResNet152 ~18 GB @ b32)\n"
      "dominate linear ones; conv workspaces add memory but buy 1.3-2.5x speed.\n");
  return 0;
}
