// Table 1 — Extra recomputation counts and peak_m for the speed-centric,
// memory-centric, and cost-aware strategies on AlexNet / ResNet50 /
// ResNet101.
//
// Paper rows (extra / peak MB):
//   AlexNet    14 / 993.018    23 / 886.23    17 / 886.23
//   ResNet50   84 / 455.125   118 / 401       85 / 401
//   ResNet101 169 / 455.125   237 / 401      170 / 401
// Our dependency model is richer than the paper's (backward kernels also
// read their own outputs/aux), so absolute counts differ; the shape —
// speed < cost-aware << memory on replays, and cost-aware peak == memory
// peak == l_peak — must hold.
#include <cstdio>

#include "bench/common.hpp"

using namespace sn;

namespace {

struct Row {
  uint64_t extra = 0;
  uint64_t peak = 0;
};

Row run_mode(const std::string& name, int batch, core::RecomputeMode mode) {
  auto net = bench::build_network(name, batch);
  core::RuntimeOptions o;
  o.real = false;
  o.offload = false;  // Table 1 isolates recomputation
  o.tensor_cache = false;
  o.recompute = mode;
  o.device_capacity = 96ull << 30;
  core::Runtime rt(*net, o);
  auto st = rt.train_iteration(nullptr, nullptr);
  return Row{st.extra_forwards, st.peak_mem};
}

}  // namespace

int main() {
  std::printf("Table 1: extra recomputations and peak_m by strategy\n");
  std::printf("(AlexNet batch 200; ResNets batch 16; measured on K40c-sim)\n\n");

  util::Table t({"Network", "speed extra", "speed peak(MB)", "memory extra", "memory peak(MB)",
                 "cost-aware extra", "cost-aware peak(MB)", "l_peak(MB)"});
  struct Cfg {
    const char* name;
    int batch;
  } cfgs[] = {{"AlexNet", 200}, {"ResNet50", 16}, {"ResNet101", 16}};

  for (const auto& cfg : cfgs) {
    auto probe = bench::build_network(cfg.name, cfg.batch);
    core::RecomputePlan plan(*probe, core::RecomputeMode::kCostAware);
    Row speed = run_mode(cfg.name, cfg.batch, core::RecomputeMode::kSpeedCentric);
    Row memory = run_mode(cfg.name, cfg.batch, core::RecomputeMode::kMemoryCentric);
    Row cost = run_mode(cfg.name, cfg.batch, core::RecomputeMode::kCostAware);
    t.add_row({cfg.name, std::to_string(speed.extra), bench::mb(speed.peak),
               std::to_string(memory.extra), bench::mb(memory.peak), std::to_string(cost.extra),
               bench::mb(cost.peak), bench::mb(plan.l_peak())});
  }
  t.print();

  std::printf("\nplanner's analytic predictions (closed forms):\n");
  util::Table p({"Network", "speed extra", "memory extra", "cost-aware extra"});
  for (const auto& cfg : cfgs) {
    auto net = bench::build_network(cfg.name, cfg.batch);
    core::RecomputePlan plan(*net, core::RecomputeMode::kCostAware);
    p.add_row({cfg.name,
               std::to_string(plan.predicted_extra_forwards(core::RecomputeMode::kSpeedCentric)),
               std::to_string(plan.predicted_extra_forwards(core::RecomputeMode::kMemoryCentric)),
               std::to_string(plan.predicted_extra_forwards(core::RecomputeMode::kCostAware))});
  }
  p.print();
  return 0;
}
