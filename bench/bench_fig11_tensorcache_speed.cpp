// Fig. 11 — Normalized training speed with and without the Tensor Cache
// (AlexNet batch 128, others batch 32).
//
// Paper: up to 33% speed loss without the cache, with the gap larger on
// non-linear networks whose thin layers cannot hide the eager-offload
// traffic under computation.
#include <cstdio>

#include "bench/common.hpp"

using namespace sn;

int main() {
  std::printf("Fig. 11: normalized speed with/without Tensor Cache\n");
  std::printf("(AlexNet batch 128, others batch 32; 12 GB K40c-sim)\n\n");
  util::Table t({"Network", "Without Tensor Cache", "With Tensor Cache"});
  struct Cfg {
    const char* name;
    int batch;
  } cfgs[] = {{"AlexNet", 128}, {"VGG16", 32},     {"InceptionV4", 32},
              {"ResNet50", 32}, {"ResNet101", 32}, {"ResNet152", 32}};
  for (const auto& cfg : cfgs) {
    core::RuntimeOptions with = core::make_policy(core::PolicyPreset::kSuperNeurons);
    core::RuntimeOptions without = with;
    without.tensor_cache = false;
    auto net_a = bench::build_network(cfg.name, cfg.batch);
    auto net_b = bench::build_network(cfg.name, cfg.batch);
    double ips_with = bench::sim_img_per_s(*net_a, with);
    double ips_without = bench::sim_img_per_s(*net_b, without);
    t.add_row({cfg.name, util::format_double(ips_without / ips_with, 3),
               "1.000"});
  }
  t.print();
  std::printf(
      "\nShape check vs paper: cache >= no-cache everywhere; losses are largest on the\n"
      "non-linear ResNets/Inception (paper: up to 33%% loss without the cache).\n");
  return 0;
}
