// Fig. 10 — Stepwise memory usage and live tensor counts on AlexNet
// (batch 200) under (a) Liveness Analysis, (b) + Prefetching/Offloading,
// (c) + Cost-Aware Recomputation, against the naive baseline.
//
// The paper reports: baseline 2189 MB over 36 tensors; liveness peak
// 1489 MB (-31.9%); +offload 1132 MB (-48.3%, peak shifts POOL5 -> POOL2);
// +recompute 886 MB == max layer usage (backward LRN1).
#include <cstdio>

#include "bench/common.hpp"

using namespace sn;

namespace {

core::RuntimeOptions stage_opts(bool offload, core::RecomputeMode rc) {
  core::RuntimeOptions o;
  o.real = false;
  o.use_liveness = true;
  o.use_pool_allocator = true;
  o.offload = offload;
  o.tensor_cache = false;  // Fig. 10 isolates UTP's eager offload path
  o.recompute = rc;
  o.allow_workspace = false;  // Fig. 10 charts functional tensors; workspaces
                              // are measured separately in Fig. 12
  o.device_capacity = 48ull << 30;  // measure demand, not capacity
  return o;
}

struct StageResult {
  std::vector<double> mem_mb;
  std::vector<double> live;
  uint64_t peak = 0;
  int peak_step = -1;
  std::string peak_layer;
};

StageResult run_stage(const core::RuntimeOptions& opts) {
  auto net = bench::build_network("AlexNet", 200);
  core::Runtime rt(*net, opts);
  auto st = rt.train_iteration(nullptr, nullptr);
  StageResult r;
  r.peak = st.peak_mem;
  uint64_t best = 0;
  for (const auto& tele : rt.step_telemetry()) {
    r.mem_mb.push_back(static_cast<double>(tele.mem_in_use) / (1024.0 * 1024.0));
    r.live.push_back(static_cast<double>(tele.live_tensors));
    if (tele.mem_in_use > best) {
      best = tele.mem_in_use;
      r.peak_step = tele.step;
      r.peak_layer = tele.layer->name() + (tele.forward ? " (fwd)" : " (bwd)");
    }
  }
  return r;
}

}  // namespace

int main() {
  auto probe = bench::build_network("AlexNet", 200);
  double baseline_mb = static_cast<double>(probe->total_tensor_bytes()) / (1024.0 * 1024.0);
  size_t baseline_tensors = probe->registry().size();
  uint64_t lpeak = probe->max_layer_bytes();
  uint64_t persistent = 0;  // params + grads stay resident across iterations
  for (const auto& t : probe->registry().all()) {
    if (t->kind() == sn::tensor::TensorKind::kParam ||
        t->kind() == sn::tensor::TensorKind::kParamGrad)
      persistent += t->bytes();
  }

  auto live_only = run_stage(stage_opts(false, core::RecomputeMode::kNone));
  auto offload = run_stage(stage_opts(true, core::RecomputeMode::kNone));
  auto recompute = run_stage(stage_opts(true, core::RecomputeMode::kCostAware));

  std::printf("Fig. 10: stepwise memory on AlexNet (batch 200), K40c-sim\n\n");
  std::printf("baseline (naive allocation): %.1f MB over %zu tensors\n", baseline_mb,
              baseline_tensors);
  std::printf("max layer usage l_peak = %.1f MB\n\n",
              static_cast<double>(lpeak) / (1024.0 * 1024.0));

  std::vector<double> x(live_only.mem_mb.size());
  for (size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i + 1);
  std::fputs(util::render_series("stepwise memory (MB); forward = steps 1..N, backward = N+1..2N",
                                 "step", x,
                                 {{"liveness", live_only.mem_mb},
                                  {"+offload", offload.mem_mb},
                                  {"+recompute", recompute.mem_mb}})
                 .c_str(),
             stdout);
  std::printf("\n");
  std::fputs(util::render_series("stepwise live tensor count", "step", x,
                                 {{"liveness", live_only.live},
                                  {"+offload", offload.live},
                                  {"+recompute", recompute.live}},
                                 0)
                 .c_str(),
             stdout);

  auto pct = [&](uint64_t v) {
    return 100.0 * (1.0 - static_cast<double>(v) / (baseline_mb * 1024.0 * 1024.0));
  };
  std::printf("\nsummary:\n");
  std::printf("  (a) liveness:        peak %8.1f MB  (%.1f%% below baseline)  at step %d (%s)\n",
              live_only.peak / 1048576.0, pct(live_only.peak), live_only.peak_step + 1,
              live_only.peak_layer.c_str());
  std::printf("  (b) +offload:        peak %8.1f MB  (%.1f%% below baseline)  at step %d (%s)\n",
              offload.peak / 1048576.0, pct(offload.peak), offload.peak_step + 1,
              offload.peak_layer.c_str());
  std::printf("  (c) +recompute:      peak %8.1f MB  (%.1f%% below baseline)  at step %d (%s)\n",
              recompute.peak / 1048576.0, pct(recompute.peak), recompute.peak_step + 1,
              recompute.peak_layer.c_str());
  std::printf("  paper: 1489.4 MB (31.9%%) -> 1132.2 MB (48.3%%) -> 886.4 MB (= max layer)\n");
  // Analytic floor: params/grads stay resident, the peak backward step holds
  // one layer's working set (l_peak), and replay additionally holds the
  // segment's source checkpoint output plus the extended DATA tensor.
  uint64_t ckpt_max = 0;
  for (const auto& l : probe->layers()) {
    if (l->type() == graph::LayerType::kConv || l->type() == graph::LayerType::kData) {
      ckpt_max = std::max(ckpt_max, l->output()->bytes());
    }
  }
  uint64_t data_bytes = probe->input_layer()->output()->bytes();
  uint64_t floor = persistent + lpeak + ckpt_max + data_bytes;
  std::printf("\n  analytic floor = persistent(%.0f) + l_peak(%.0f) + replay source(%.0f)\n"
              "                 + data residue(%.0f) = %.1f MB\n",
              persistent / 1048576.0, lpeak / 1048576.0, ckpt_max / 1048576.0,
              data_bytes / 1048576.0, floor / 1048576.0);
  std::printf("  invariant: recompute peak <= analytic floor: %s (%.1f vs %.1f MB)\n",
              recompute.peak <= floor + (1 << 20) ? "OK" : "VIOLATED",
              recompute.peak / 1048576.0, floor / 1048576.0);
  return 0;
}
