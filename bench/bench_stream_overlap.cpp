// bench_stream_overlap: quantify what the multi-stream TransferEngine buys —
// H2D prefetch and D2H offload traffic overlapping *each other*, not just
// compute (ROADMAP "multi-stream transfers"; the paper's overlap claim is
// that transfer traffic hides behind compute, which dual copy engines are a
// precondition for once traffic flows both ways).
//
// Two measurements, both against the serialized single-copy-engine baseline
// (DeviceSpec::copy_engines = 1, the seed's effective model):
//
//   1. A deterministic engine-level microbench: K copies submitted in each
//      direction back to back. With one engine the drain time is the sum of
//      both directions' occupancy; with two it is their max.
//   2. End-to-end zoo iterations at squeezed capacity (offload + prefetch
//      both active), reporting iteration time, stall time and the new
//      per-stream busy-seconds telemetry.
//
// Exits non-zero unless mixed-traffic sim time with dual engines is strictly
// below the serialized engine's (overlap_ratio > 0) — CI runs this as a gate.
// An optional argument (`--json PATH`) writes the results as JSON for the CI
// artifact upload.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/transfer_engine.hpp"
#include "util/json_writer.hpp"

using namespace sn;

namespace {

struct MicroResult {
  double drain_s = 0.0;  ///< virtual time to drain the mixed traffic
  double d2h_busy = 0.0;
  double h2d_busy = 0.0;
};

/// Drain K copies per direction on an engine over a machine with `engines`
/// copy engines; returns the virtual drain time and per-stream occupancy.
MicroResult run_micro(int engines, int copies, uint64_t bytes) {
  sim::DeviceSpec spec = sim::k40c_spec();
  spec.copy_engines = engines;
  sim::Machine m(spec);
  core::TransferEngine eng(m, /*pinned=*/true);
  for (int i = 0; i < copies; ++i) {
    eng.submit(core::TransferDir::kD2H, static_cast<uint64_t>(2 * i), nullptr, nullptr, bytes);
    eng.submit(core::TransferDir::kH2D, static_cast<uint64_t>(2 * i + 1), nullptr, nullptr,
               bytes);
  }
  eng.drain();
  MicroResult r;
  r.drain_s = m.now();
  r.d2h_busy = m.counters().seconds_d2h;
  r.h2d_busy = m.counters().seconds_h2d;
  return r;
}

struct NetResult {
  std::string name;
  int batch = 0;
  double serialized_ms = 0.0;
  double dual_ms = 0.0;
  double stall_serialized_ms = 0.0;
  double stall_dual_ms = 0.0;
  double d2h_seconds = 0.0;  ///< per-stream busy time, dual-engine run
  double h2d_seconds = 0.0;
  bool ok = false;
};

NetResult run_net(const char* name, int batch, uint64_t capacity, bool tensor_cache) {
  NetResult r;
  r.name = name;
  r.batch = batch;
  for (int engines : {1, 2}) {
    core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
    // The eager-offload UTP configuration (§3.3.1 without the cache) streams
    // async D2H through the forward pass, so its tail drains while backward
    // prefetches start — the window where the directions actually contend.
    // With the cache on, evictions are synchronous and prefetches hide under
    // compute, so the engines rarely see mixed traffic (kept as contrast).
    o.tensor_cache = tensor_cache;
    o.device_capacity = capacity;
    o.spec = sim::titan_xp_spec();  // faster compute = relatively longer copies
    o.spec.copy_engines = engines;
    auto net = bench::build_network(name, batch);
    try {
      auto st = bench::run_sim_iteration(*net, o);
      if (engines == 1) {
        r.serialized_ms = st.seconds * 1e3;
        r.stall_serialized_ms = st.stall_seconds * 1e3;
      } else {
        r.dual_ms = st.seconds * 1e3;
        r.stall_dual_ms = st.stall_seconds * 1e3;
        r.d2h_seconds = st.d2h_seconds;
        r.h2d_seconds = st.h2d_seconds;
      }
      r.ok = true;
    } catch (const core::OomError&) {
      r.ok = false;
      return r;
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }

  // --- engine-level microbench (deterministic) -----------------------------
  const int kCopies = 32;
  const uint64_t kBytes = 16ull << 20;
  MicroResult serialized = run_micro(/*engines=*/1, kCopies, kBytes);
  MicroResult dual = run_micro(/*engines=*/2, kCopies, kBytes);
  const double overlap_ratio =
      serialized.drain_s > 0.0 ? 1.0 - dual.drain_s / serialized.drain_s : 0.0;

  std::printf("=== stream overlap: mixed H2D+D2H traffic, serialized vs dual engines ===\n\n");
  std::printf("microbench: %d x %llu MB each direction\n", kCopies,
              static_cast<unsigned long long>(kBytes >> 20));
  std::printf("  serialized engine drain: %.2f ms\n", serialized.drain_s * 1e3);
  std::printf("  dual-engine drain:       %.2f ms\n", dual.drain_s * 1e3);
  std::printf("  per-stream occupancy:    d2h_seconds=%.4f h2d_seconds=%.4f\n", dual.d2h_busy,
              dual.h2d_busy);
  std::printf("  overlap_ratio=%.3f (fraction of serialized drain hidden by the second "
              "engine)\n\n",
              overlap_ratio);

  // --- end-to-end zoo sweep ------------------------------------------------
  // Capacity squeezed below each working set so offload AND prefetch flow.
  struct NetCase {
    const char* name;
    int batch;
    uint64_t capacity;
    bool tensor_cache;
  };
  const NetCase cases[] = {
      {"VGG16", 128, 12ull << 30, /*tensor_cache=*/false},
      {"InceptionV4", 128, 8ull << 30, /*tensor_cache=*/false},
      {"ResNet50", 256, 8ull << 30, /*tensor_cache=*/true},
  };
  util::Table t({"network", "batch", "cache", "serialized (ms)", "dual (ms)", "hidden (%)",
                 "stall ser (ms)", "stall dual (ms)", "d2h busy (ms)", "h2d busy (ms)"});
  std::vector<NetResult> nets;
  for (const auto& c : cases) {
    NetResult r = run_net(c.name, c.batch, c.capacity, c.tensor_cache);
    nets.push_back(r);
    if (!r.ok) {
      t.add_row({r.name, std::to_string(r.batch), c.tensor_cache ? "on" : "off", "OOM", "-", "-",
                 "-", "-", "-", "-"});
      continue;
    }
    const double hidden =
        r.serialized_ms > 0.0 ? 100.0 * (r.serialized_ms - r.dual_ms) / r.serialized_ms : 0.0;
    t.add_row({r.name, std::to_string(r.batch), c.tensor_cache ? "on" : "off",
               util::format_double(r.serialized_ms, 2), util::format_double(r.dual_ms, 2),
               util::format_double(hidden, 2), util::format_double(r.stall_serialized_ms, 2),
               util::format_double(r.stall_dual_ms, 2),
               util::format_double(r.d2h_seconds * 1e3, 2),
               util::format_double(r.h2d_seconds * 1e3, 2)});
  }
  t.print();
  std::printf("\n(dual <= serialized everywhere; the gap is offload/prefetch traffic the\n"
              "second copy engine hides. Eager-offload rows (cache off) mix directions at\n"
              "the forward/backward boundary; with the Tensor Cache the schedule already\n"
              "hides transfers so well the engine count barely shows — the paper's claim.\n"
              "d2h/h2d busy are the per-stream occupancy counters StepTelemetry and\n"
              "IterationStats now carry.)\n");

  if (json_path) {
    util::JsonWriter w;
    w.begin_object();
    w.key("micro").begin_object(util::JsonWriter::kInline);
    w.key("serialized_s").value_fixed(serialized.drain_s, 9);
    w.key("dual_s").value_fixed(dual.drain_s, 9);
    w.key("d2h_seconds").value_fixed(dual.d2h_busy, 9);
    w.key("h2d_seconds").value_fixed(dual.h2d_busy, 9);
    w.key("overlap_ratio").value_fixed(overlap_ratio, 6);
    w.end_object();
    w.key("nets").begin_array();
    for (const NetResult& r : nets) {
      w.begin_object(util::JsonWriter::kInline);
      w.key("name").value(r.name);
      w.key("batch").value(r.batch);
      w.key("ok").value(r.ok);
      w.key("serialized_ms").value_fixed(r.serialized_ms, 4);
      w.key("dual_ms").value_fixed(r.dual_ms, 4);
      w.key("d2h_seconds").value_fixed(r.d2h_seconds, 9);
      w.key("h2d_seconds").value_fixed(r.h2d_seconds, 9);
      w.end_object();
    }
    w.end_array().end_object();
    if (!w.save(json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
  }

  // Gate: the second engine must strictly hide mixed traffic.
  if (!(dual.drain_s < serialized.drain_s)) {
    std::fprintf(stderr, "FAIL: dual-engine drain (%.6f s) not below serialized (%.6f s)\n",
                 dual.drain_s, serialized.drain_s);
    return 1;
  }
  for (const NetResult& r : nets) {
    if (r.ok && r.dual_ms > r.serialized_ms + 1e-9) {
      std::fprintf(stderr, "FAIL: %s dual engines slower than serialized (%.3f > %.3f ms)\n",
                   r.name.c_str(), r.dual_ms, r.serialized_ms);
      return 1;
    }
  }
  return 0;
}
