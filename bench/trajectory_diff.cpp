// trajectory_diff: join two committed BENCH_<n>.json perf-trajectory points
// by cell key, classify every metric delta against the recorded noise band,
// print the ranked delta table, optionally write a machine-readable report,
// and exit nonzero on any out-of-band regression (or a baseline cell the
// candidate silently dropped). CI runs this instead of eyeballing numbers:
// PR N+1 cannot silently regress PR N's win.
//
// Also the schema gate for every bench emitter: --schema-check replaces the
// ad-hoc `grep -q` checks CI used to run against bench JSON — the document
// is parsed and validated structurally, so a truncated file or a renamed
// field fails with the offending path named instead of slipping past a
// byte-pattern.
//
// Usage:
//   trajectory_diff --baseline A.json --candidate B.json
//                   [--report OUT.json] [--rel-band F] [--abs-band F]
//                   [--allow-missing] [--quiet]
//   trajectory_diff --schema-check KIND FILE [KIND FILE ...]
//     KIND: pipeline_stages | hybrid_grid | stream_overlap |
//           prefetch_lookahead | sweep | trajectory | chrome_trace |
//           metrics | diff_report | trace_diff_report | cost_profile
//
// Exit codes: 0 = gate passed; 1 = regression / removed cells; 2 = usage,
// I/O, parse or schema error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "perf/trajectory.hpp"
#include "util/json_reader.hpp"
#include "util/json_writer.hpp"

using namespace sn;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --baseline A.json --candidate B.json [--report OUT.json]\n"
               "          [--rel-band F] [--abs-band F] [--allow-missing] [--quiet]\n"
               "       %s --schema-check KIND FILE [KIND FILE ...]\n",
               argv0, argv0);
  return 2;
}

int run_schema_checks(int argc, char** argv, int i) {
  if (i >= argc || (argc - i) % 2 != 0) {
    std::fprintf(stderr, "--schema-check wants KIND FILE pairs\n");
    return 2;
  }
  for (; i + 1 < argc; i += 2) {
    const std::string kind = argv[i];
    const std::string path = argv[i + 1];
    try {
      util::JsonValue doc = util::parse_json_file(path);
      size_t n = perf::schema_check(doc, kind, path);
      std::printf("SCHEMA OK %s %s (%zu entries)\n", kind.c_str(), path.c_str(), n);
    } catch (const util::JsonError& e) {
      std::fprintf(stderr, "SCHEMA FAIL %s %s: %s\n", kind.c_str(), path.c_str(), e.what());
      return 2;
    } catch (const perf::TrajectoryError& e) {
      std::fprintf(stderr, "SCHEMA FAIL %s %s: %s\n", kind.c_str(), path.c_str(), e.what());
      return 2;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline, candidate, report_path;
  perf::DiffOptions opt;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s wants a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(a, "--schema-check") == 0) {
      return run_schema_checks(argc, argv, i + 1);
    } else if (std::strcmp(a, "--baseline") == 0) {
      baseline = next(a);
    } else if (std::strcmp(a, "--candidate") == 0) {
      candidate = next(a);
    } else if (std::strcmp(a, "--report") == 0) {
      report_path = next(a);
    } else if (std::strcmp(a, "--rel-band") == 0) {
      opt.rel_band = std::atof(next(a));
    } else if (std::strcmp(a, "--abs-band") == 0) {
      opt.abs_band = std::atof(next(a));
    } else if (std::strcmp(a, "--allow-missing") == 0) {
      opt.allow_missing = true;
    } else if (std::strcmp(a, "--quiet") == 0) {
      quiet = true;
    } else {
      std::fprintf(stderr, "unknown arg: %s\n", a);
      return usage(argv[0]);
    }
  }
  if (baseline.empty() || candidate.empty()) return usage(argv[0]);
  if (opt.rel_band < 0.0 || opt.abs_band < 0.0) {
    std::fprintf(stderr, "bands must be non-negative\n");
    return 2;
  }

  perf::TrajectoryPoint base, cand;
  try {
    base = perf::load_trajectory(util::parse_json_file(baseline), baseline);
    cand = perf::load_trajectory(util::parse_json_file(candidate), candidate);
  } catch (const util::JsonError& e) {
    std::fprintf(stderr, "trajectory_diff: %s\n", e.what());
    return 2;
  } catch (const perf::TrajectoryError& e) {
    std::fprintf(stderr, "trajectory_diff: %s\n", e.what());
    return 2;
  }

  perf::DiffReport rep = perf::diff_trajectories(base, cand, opt);
  if (!quiet) {
    std::printf("=== perf trajectory: %s (point %d) -> %s (point %d) ===\n\n", baseline.c_str(),
                base.point, candidate.c_str(), cand.point);
    std::fputs(perf::render_diff_table(rep).c_str(), stdout);
  }
  // Regressions always also go to stderr, one line per offender, so a CI log
  // names every out-of-band cell even when the table scrolls away.
  for (const perf::DiffEntry& e : rep.entries) {
    if (e.cls == perf::DeltaClass::kRegression) {
      std::fprintf(stderr, "REGRESSION %s %s: %g -> %g (delta %+g, band %g)\n", e.cell.c_str(),
                   e.metric.c_str(), e.base, e.cand, e.delta, e.band);
    } else if (e.cls == perf::DeltaClass::kRemoved && !opt.allow_missing) {
      std::fprintf(stderr, "MISSING %s %s: present in baseline, absent from candidate\n",
                   e.cell.c_str(), e.metric.c_str());
    }
  }

  if (!report_path.empty()) {
    util::JsonWriter w;
    perf::write_diff_report(rep, opt, w);
    if (!w.save(report_path)) {
      std::fprintf(stderr, "cannot write %s\n", report_path.c_str());
      return 2;
    }
    if (!quiet) std::printf("wrote %s\n", report_path.c_str());
  }
  return rep.ok ? 0 : 1;
}
