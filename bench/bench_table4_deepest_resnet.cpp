// Table 4 — Going deeper: the deepest trainable ResNet per framework policy
// on a 12 GB device at batch 16.
//
// Paper parameterization: depth = 3*(n1+n2+n3+n4) + 2 with n1=6, n2=32,
// n4=6 fixed and n3 swept. Paper result: Caffe 148, MXNet 480, Torch 152,
// TensorFlow 592, SuperNeurons 1920.
#include <cstdio>

#include "bench/common.hpp"

using namespace sn;

namespace {

bool depth_runs(core::PolicyPreset preset, int n3) {
  return bench::runs_without_oom(
      [n3] { return graph::build_resnet(6, 32, n3, 6, /*batch=*/16); },
      core::make_policy(preset));
}

}  // namespace

int main() {
  std::printf("Table 4: deepest trainable ResNet on 12 GB (batch 16)\n");
  std::printf("depth = 3*(n1+n2+n3+n4)+2, n1=6 n2=32 n4=6, n3 swept\n\n");

  util::Table t({"Framework policy", "max n3", "ResNet depth"});
  const core::PolicyPreset presets[] = {core::PolicyPreset::kCaffeLike,
                                        core::PolicyPreset::kMxnetLike,
                                        core::PolicyPreset::kTorchLike,
                                        core::PolicyPreset::kTfLike,
                                        core::PolicyPreset::kSuperNeurons};
  int sn_depth = 0, best_other = 0;
  for (auto preset : presets) {
    int max_n3 = bench::search_max(1, 1200, [&](int n3) { return depth_runs(preset, n3); });
    int depth = max_n3 >= 1 ? graph::resnet_depth(6, 32, max_n3, 6) : 0;
    t.add_row({core::policy_name(preset), std::to_string(max_n3), std::to_string(depth)});
    if (preset == core::PolicyPreset::kSuperNeurons) {
      sn_depth = depth;
    } else if (depth > best_other) {
      best_other = depth;
    }
  }
  t.print();
  std::printf(
      "\nShape check vs paper (148 / 480 / 152 / 592 / 1920): SuperNeurons trains %.2fx\n"
      "deeper than the best static policy (paper: 3.24x over TensorFlow).\n",
      best_other ? static_cast<double>(sn_depth) / best_other : 0.0);
  return 0;
}
