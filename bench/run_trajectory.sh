#!/usr/bin/env bash
# run_trajectory.sh: sweep the CI-gated benches with --json and merge the
# results into one trajectory point (BENCH_<N>.json at the repo root).
#
# The committed BENCH_<N>.json files form the perf trajectory the ROADMAP
# perf-harness item tracks: one merged snapshot per PR that moves a gated
# number, so regressions show up as a diff instead of a vanished log.
#
# Usage:
#   bench/run_trajectory.sh [--build BUILDDIR] [--out FILE]
#       build the four gated benches' JSON outputs under a temp dir, then
#       merge them (default BUILDDIR=build, FILE=BENCH_6.json at repo root)
#   bench/run_trajectory.sh --merge DIR [--out FILE]
#       skip the runs and merge DIR/{pipeline_stages,hybrid_grid,
#       stream_overlap,prefetch_lookahead}.json (CI reuses its bench-out/)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
out="$repo_root/BENCH_6.json"
merge_dir=""

while [ $# -gt 0 ]; do
  case "$1" in
    --build) build_dir="$2"; shift 2 ;;
    --merge) merge_dir="$2"; shift 2 ;;
    --out)   out="$2"; shift 2 ;;
    *) echo "unknown arg: $1" >&2; exit 2 ;;
  esac
done

benches=(pipeline_stages hybrid_grid stream_overlap prefetch_lookahead)

if [ -z "$merge_dir" ]; then
  merge_dir="$(mktemp -d)"
  trap 'rm -rf "$merge_dir"' EXIT
  for b in "${benches[@]}"; do
    bin="$build_dir/bench_$b"
    [ -x "$bin" ] || { echo "missing $bin (build the benches first)" >&2; exit 1; }
    echo "== bench_$b"
    # The gated benches exit nonzero when their own acceptance check fails
    # (bubble shrink / 1f1b strict win / overlap exposure); let that fail us.
    "$bin" --json "$merge_dir/$b.json" > "$merge_dir/$b.txt"
  done
fi

# Fail loudly, naming EVERY missing/empty input, before touching $out — a
# partial merge would commit a trajectory point that silently dropped a
# gated bench.
missing=()
for b in "${benches[@]}"; do
  [ -s "$merge_dir/$b.json" ] || missing+=("$merge_dir/$b.json")
done
if [ "${#missing[@]}" -gt 0 ]; then
  for f in "${missing[@]}"; do
    echo "missing bench output: $f" >&2
  done
  echo "refusing to merge ${#missing[@]} missing input(s); $out left untouched" >&2
  exit 1
fi

# Merge: one top-level key per bench, bodies embedded verbatim (each bench
# emits a self-contained JSON object), indented one level for readability.
# Write to a temp file and move into place so a mid-merge failure can never
# leave a truncated $out behind.
{
  printf '{\n'
  printf '  "trajectory_point": 6,\n'
  first=1
  for b in "${benches[@]}"; do
    [ $first -eq 1 ] || printf ',\n'
    first=0
    # $(...) strips the file's trailing newline, so the comma lands cleanly.
    body="$(sed '2,$s/^/  /' "$merge_dir/$b.json")"
    printf '  "%s": %s' "$b" "$body"
  done
  printf '\n}\n'
} > "$out.tmp"
mv "$out.tmp" "$out"

echo "wrote $out"
