#!/usr/bin/env bash
# run_trajectory.sh: build one perf-trajectory point (BENCH_<N>.json at the
# repo root) from the gated benches plus the config sweep, and diff it
# against the committed previous point.
#
# The committed BENCH_<N>.json files form the perf trajectory: one merged,
# schema-versioned snapshot per PR that moves a gated number. trajectory_diff
# joins two points by cell key and fails on any out-of-band regression, so
# PR N+1 cannot silently lose PR N's win.
#
# Usage:
#   bench/run_trajectory.sh [--build BUILDDIR] [--out FILE] [--point N]
#                           [--tier small|full] [--repeats R] [--no-sweep]
#                           [--trace-out DIR]
#       run the four gated benches (--json) plus bench_sweep, merge the five
#       sections into FILE (default: BENCH_9.json at the repo root,
#       schema_version 1); --trace-out forwards to bench_sweep so every
#       sweep cell also leaves a deterministic per-cell trace for
#       trace_diff attribution
#   bench/run_trajectory.sh --merge DIR [--out FILE] [--point N]
#       skip the runs and merge DIR/{pipeline_stages,hybrid_grid,
#       stream_overlap,prefetch_lookahead,sweep}.json (CI reuses bench-out/;
#       with --no-sweep, merges a legacy 4-section unversioned point)
#   bench/run_trajectory.sh --diff BASELINE [--candidate FILE] [--report OUT]
#       run trajectory_diff BASELINE -> candidate (default candidate: the
#       default --out path); exits nonzero on out-of-band regressions
#   bench/run_trajectory.sh --update-baseline [--tier full] ...
#       full-tier sweep + merge straight onto the committed default --out,
#       then diff the fresh point against itself as a self-check. Commit the
#       result when a PR legitimately moves a gated number.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
point=9
out=""
merge_dir=""
tier="small"
repeats=3
with_sweep=1
trace_out=""
diff_baseline=""
diff_candidate=""
diff_report=""
update_baseline=0

while [ $# -gt 0 ]; do
  case "$1" in
    --build)     build_dir="$2"; shift 2 ;;
    --merge)     merge_dir="$2"; shift 2 ;;
    --out)       out="$2"; shift 2 ;;
    --point)     point="$2"; shift 2 ;;
    --tier)      tier="$2"; shift 2 ;;
    --repeats)   repeats="$2"; shift 2 ;;
    --no-sweep)  with_sweep=0; shift ;;
    --trace-out) trace_out="$2"; shift 2 ;;
    --diff)      diff_baseline="$2"; shift 2 ;;
    --candidate) diff_candidate="$2"; shift 2 ;;
    --report)    diff_report="$2"; shift 2 ;;
    --update-baseline) update_baseline=1; tier="full"; shift ;;
    *) echo "unknown arg: $1" >&2; exit 2 ;;
  esac
done
[ -n "$out" ] || out="$repo_root/BENCH_$point.json"

diff_tool="$build_dir/trajectory_diff"

# --- diff mode: no runs, just gate candidate against baseline --------------
if [ -n "$diff_baseline" ]; then
  [ -x "$diff_tool" ] || { echo "missing $diff_tool (build first)" >&2; exit 1; }
  [ -n "$diff_candidate" ] || diff_candidate="$out"
  args=(--baseline "$diff_baseline" --candidate "$diff_candidate")
  [ -n "$diff_report" ] && args+=(--report "$diff_report")
  exec "$diff_tool" "${args[@]}"
fi

benches=(pipeline_stages hybrid_grid stream_overlap prefetch_lookahead)

if [ -z "$merge_dir" ]; then
  merge_dir="$(mktemp -d)"
  trap 'rm -rf "$merge_dir"' EXIT
  for b in "${benches[@]}"; do
    bin="$build_dir/bench_$b"
    [ -x "$bin" ] || { echo "missing $bin (build the benches first)" >&2; exit 1; }
    echo "== bench_$b"
    # The gated benches exit nonzero when their own acceptance check fails
    # (bubble shrink / 1f1b strict win / overlap exposure); let that fail us.
    # The grid benches repeat each config so their rows record a dispersion
    # envelope; the overlap/prefetch pair are single-shot emitters.
    extra=()
    case "$b" in
      pipeline_stages|hybrid_grid) extra=(--repeats "$repeats") ;;
    esac
    "$bin" "${extra[@]}" --json "$merge_dir/$b.json" > "$merge_dir/$b.txt"
  done
  if [ "$with_sweep" -eq 1 ]; then
    bin="$build_dir/bench_sweep"
    [ -x "$bin" ] || { echo "missing $bin (build the benches first)" >&2; exit 1; }
    echo "== bench_sweep ($tier tier, $repeats repeats)"
    sweep_extra=()
    [ -n "$trace_out" ] && sweep_extra+=(--trace-out "$trace_out")
    "$bin" --tier "$tier" --repeats "$repeats" --point "$point" \
           "${sweep_extra[@]}" --json "$merge_dir/sweep.json" > "$merge_dir/sweep.txt"
  fi
fi

sections=("${benches[@]}")
[ "$with_sweep" -eq 1 ] && sections+=(sweep)

# Fail loudly, naming EVERY missing/empty input, before touching $out — a
# partial merge would commit a trajectory point that silently dropped a
# gated bench.
missing=()
for b in "${sections[@]}"; do
  [ -s "$merge_dir/$b.json" ] || missing+=("$merge_dir/$b.json")
done
if [ "${#missing[@]}" -gt 0 ]; then
  for f in "${missing[@]}"; do
    echo "missing bench output: $f" >&2
  done
  echo "refusing to merge ${#missing[@]} missing input(s); $out left untouched" >&2
  exit 1
fi

# Merge: one top-level key per section, bodies embedded verbatim (each bench
# emits a self-contained JSON object), indented one level for readability.
# Write to a temp file and move into place so a mid-merge failure can never
# leave a truncated $out behind. A sweep-bearing point is schema_version 1;
# --no-sweep keeps the legacy unversioned 4-section shape for comparison
# against pre-sweep baselines.
{
  printf '{\n'
  printf '  "trajectory_point": %d,\n' "$point"
  [ "$with_sweep" -eq 1 ] && printf '  "schema_version": 1,\n'
  first=1
  for b in "${sections[@]}"; do
    [ $first -eq 1 ] || printf ',\n'
    first=0
    # $(...) strips the file's trailing newline, so the comma lands cleanly.
    body="$(sed '2,$s/^/  /' "$merge_dir/$b.json")"
    printf '  "%s": %s' "$b" "$body"
  done
  printf '\n}\n'
} > "$out.tmp"

# Validate the merged point structurally before moving it into place.
if [ -x "$diff_tool" ]; then
  "$diff_tool" --schema-check trajectory "$out.tmp"
else
  echo "warning: $diff_tool not built; skipping schema check" >&2
fi
mv "$out.tmp" "$out"
echo "wrote $out"

# Baseline refresh self-check: the fresh point must diff clean against
# itself (catches a point that fails its own join/classify pass).
if [ "$update_baseline" -eq 1 ] && [ -x "$diff_tool" ]; then
  "$diff_tool" --baseline "$out" --candidate "$out" --quiet
  echo "baseline $out self-diff OK"
fi
