// Fig. 12 — Dynamic convolution-workspace allocation.
//
// (a/b) Per-CONV-layer assigned vs max-speed workspace for AlexNet at
// batch 100 and batch 300 under a 3 GB memory pool: at batch 300 the
// runtime shrinks workspaces to prioritize functional tensors.
// (c/d) Training speed grows when the pool grows from 3 GB to 5 GB because
// the runtime provisions more workspace.
#include <cstdio>

#include "bench/common.hpp"

using namespace sn;

namespace {

void per_layer_workspaces(int batch, uint64_t pool_bytes) {
  auto net = graph::build_alexnet(batch);
  core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
  o.device_capacity = pool_bytes;
  o.real = false;
  core::Runtime rt(*net, o);
  rt.train_iteration(nullptr, nullptr);

  std::printf("AlexNet batch %d, pool %.0f GB: per-CONV workspace (MB)\n", batch,
              pool_bytes / (1024.0 * 1024.0 * 1024.0));
  util::Table t({"conv step", "assigned WS (MB)", "max-speed WS (MB)", "algo"});
  for (const auto& tele : rt.step_telemetry()) {
    if (!tele.layer || tele.layer->type() != graph::LayerType::kConv) continue;
    std::string label = tele.layer->name() + (tele.forward ? " f" : " b");
    t.add_row({label, bench::mb(tele.ws_assigned), bench::mb(tele.ws_max_speed),
               nn::algo_name(tele.algo)});
  }
  t.print();
  std::printf("\n");
}

double speed_at(int batch, uint64_t pool_bytes) {
  auto net = graph::build_alexnet(batch);
  core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
  o.device_capacity = pool_bytes;
  return bench::sim_img_per_s(*net, o);
}

}  // namespace

int main() {
  std::printf("Fig. 12: dynamic conv workspace allocation (AlexNet, K40c-sim)\n\n");
  per_layer_workspaces(100, 3ull << 30);  // (a)
  per_layer_workspaces(300, 3ull << 30);  // (b)

  double s3 = speed_at(300, 3ull << 30);
  double s5 = speed_at(300, 5ull << 30);
  std::printf("Fig. 12c/d: batch 300 speed under 3 GB pool: %.0f img/s; under 5 GB: %.0f img/s\n",
              s3, s5);
  std::printf("(paper: 203 img/s -> 240 img/s; more pool => more workspace => faster)\n");
  std::printf("shape check: speed(5GB) >= speed(3GB): %s\n", s5 >= s3 ? "OK" : "VIOLATED");
  return 0;
}
