// Ablation — recomputation strategy cost/benefit per network.
//
// For each network, compares the three recomputation strategies' iteration
// time overhead (vs no recomputation) and memory demand — the design space
// behind the paper's cost-aware choice (§3.4, Fig. 9).
#include <cstdio>

#include "bench/common.hpp"

using namespace sn;

namespace {

struct Point {
  double seconds = 0;
  uint64_t peak = 0;
};

Point run(const char* name, int batch, core::RecomputeMode mode) {
  auto net = sn::bench::build_network(name, batch);
  core::RuntimeOptions o;
  o.real = false;
  o.offload = false;
  o.tensor_cache = false;
  o.recompute = mode;
  o.allow_workspace = false;  // workspaces grow into freed memory by design;
                              // disable them to expose the footprint itself
  o.device_capacity = 96ull << 30;
  auto st = sn::bench::run_sim_iteration(*net, o);
  return {st.seconds, st.peak_mem};
}

}  // namespace

int main() {
  std::printf("Ablation: recomputation strategies — time overhead vs memory demand\n\n");
  util::Table t({"Network", "none peak(GB)", "speed t(+%) / peak(GB)", "memory t(+%) / peak(GB)",
                 "cost-aware t(+%) / peak(GB)"});
  struct Cfg {
    const char* name;
    int batch;
  } cfgs[] = {{"AlexNet", 128}, {"VGG16", 32}, {"ResNet50", 32}, {"InceptionV4", 16}};
  for (const auto& cfg : cfgs) {
    Point none = run(cfg.name, cfg.batch, core::RecomputeMode::kNone);
    auto cell = [&](core::RecomputeMode m) {
      Point p = run(cfg.name, cfg.batch, m);
      return util::format_double(100.0 * (p.seconds / none.seconds - 1.0), 1) + "% / " +
             sn::bench::gb(p.peak);
    };
    t.add_row({cfg.name, sn::bench::gb(none.peak), cell(core::RecomputeMode::kSpeedCentric),
               cell(core::RecomputeMode::kMemoryCentric), cell(core::RecomputeMode::kCostAware)});
  }
  t.print();
  std::printf("\nReading: cost-aware tracks speed-centric's overhead while matching\n"
              "memory-centric's footprint — the paper's Table 1 trade-off, per network.\n");
  return 0;
}
