// bench_sweep: run the declared {net x grid geometry x link spec x pool
// budget x schedule policy} matrix (bench/sweep_config.hpp) with R repeats
// per cell and emit one schema-versioned sweep document — the "sweep"
// section of a committed BENCH_<n>.json trajectory point.
//
// Every metric records {median, lo, hi, n} over the repeats, so the noise
// band trajectory_diff judges future deltas against is data carried by the
// baseline, not a constant baked into CI. (The simulator is virtual-time
// deterministic, so lo == hi today — the dispersion machinery is what keeps
// the gate honest the day a wall-clock-coupled metric joins the sweep.)
//
// Every cell runs through dist::HybridParallelTrainer: S=1/R=1 degenerate to
// microbatched data parallelism, the plain pipeline, or a single device, so
// all four geometries share one accounting path.
//
//   ./bench_sweep [--json out.json] [--tier small|full] [--repeats N]
//                 [--point N] [--seed S] [--peer-staging auto|on|off]
//                 [--trace-out DIR]
//
// --peer-staging overrides the per-cell peer_staging spec: "off" forces the
// pure-host offload path everywhere (the A/B baseline for the staging demo
// cells), "on" enables staging for every multi-device cell, "auto" (default)
// runs each cell as declared. Cell keys do not encode the mode, so two runs
// of the same tier diff cleanly against each other.
//
// --trace-out DIR writes one deterministic Chrome-trace JSON per cell
// (first repeat, wall stamps stripped) named after the cell key, so the CI
// perf-gate can trace_diff a regressed cell against the baseline capture
// without any source edits.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include <sys/stat.h>

#include "bench/common.hpp"
#include "bench/sweep_config.hpp"
#include "dist/hybrid_parallel.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/trace.hpp"
#include "util/json_writer.hpp"

using namespace sn;

namespace {

struct CellResult {
  bench::SweepCellSpec spec;
  /// metric name -> per-repeat samples (insertion-ordered for stable JSON).
  std::vector<std::pair<std::string, std::vector<double>>> samples;
};

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/// Filename-safe cell identity for --trace-out captures, mirroring the
/// trajectory cell key (sweep/VGG16/nvlink/s2r1m1/pool2/gpipe with '/'
/// flattened to '_').
std::string cell_trace_name(const bench::SweepCellSpec& s) {
  return s.net + "_" + s.link + "_s" + std::to_string(s.stages) + "r" +
         std::to_string(s.replicas) + "m" + std::to_string(s.microbatches) + "_pool" +
         std::to_string(s.pool_gb) + "_" + s.schedule + ".trace.json";
}

sim::ClusterSpec cluster_for(const bench::SweepCellSpec& s) {
  int devices = s.stages * s.replicas;
  if (s.link == "nvlink") return sim::nvlink_cluster_spec(devices);
  if (s.link == "pcie") return sim::pcie_cluster_spec(devices);
  throw std::invalid_argument("unknown link spec " + s.link);
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  const char* trace_dir = nullptr;
  std::string tier = "small";
  std::string staging_mode = "auto";
  int repeats = 3;
  int point = 9;
  uint64_t data_seed = 1234;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
    if (std::strcmp(argv[i], "--trace-out") == 0) trace_dir = argv[i + 1];
    if (std::strcmp(argv[i], "--tier") == 0) tier = argv[i + 1];
    if (std::strcmp(argv[i], "--repeats") == 0) repeats = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--point") == 0) point = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--seed") == 0) data_seed = std::strtoull(argv[i + 1], nullptr, 0);
    if (std::strcmp(argv[i], "--peer-staging") == 0) staging_mode = argv[i + 1];
  }
  if (repeats < 1) {
    std::fprintf(stderr, "--repeats must be >= 1\n");
    return 2;
  }
  if (staging_mode != "auto" && staging_mode != "on" && staging_mode != "off") {
    std::fprintf(stderr, "--peer-staging must be auto|on|off\n");
    return 2;
  }
  if (trace_dir) ::mkdir(trace_dir, 0755);  // existing directory is fine

  const int kGlobalBatch = 32, kIters = 2;
  std::vector<bench::SweepCellSpec> matrix;
  try {
    matrix = bench::sweep_matrix(tier);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  std::printf("=== config sweep: %zu cells, tier %s, %d repeat(s), global batch %d ===\n\n",
              matrix.size(), tier.c_str(), repeats, kGlobalBatch);
  util::Table t({"net", "link", "grid", "pool", "schedule", "iter (ms)", "img/s",
                 "bubble (ms)", "ar exposed (ms)", "staged"});

  std::vector<CellResult> results;
  for (const bench::SweepCellSpec& spec : matrix) {
    CellResult cell{spec, {}};
    for (const char* name : {"seconds", "img_per_s", "stall_seconds", "bubble_seconds",
                             "allreduce_seconds", "allreduce_exposed_seconds", "p2p_bytes",
                             "peer_stage_count"}) {
      cell.samples.emplace_back(name, std::vector<double>{});
    }
    // By-name append; late-appearing names (the per-link occupancy metrics)
    // register on first use. The simulator is deterministic, so every repeat
    // touches the same link set and the sample vectors stay rectangular.
    auto push = [&cell](const std::string& name, double v) {
      for (auto& [n, s] : cell.samples) {
        if (n == name) {
          s.push_back(v);
          return;
        }
      }
      cell.samples.emplace_back(name, std::vector<double>{v});
    };

    const int devices = spec.stages * spec.replicas;
    for (int rep = 0; rep < repeats; ++rep) {
      dist::HybridParallelConfig cfg;
      cfg.stages = spec.stages;
      cfg.replicas = spec.replicas;
      cfg.microbatches = spec.microbatches;
      cfg.global_batch = kGlobalBatch;
      cfg.cluster = cluster_for(spec);
      cfg.train.iterations = kIters;
      cfg.train.data_seed = data_seed;
      cfg.schedule =
          spec.schedule == "1f1b" ? dist::SchedulePolicy::k1F1B : dist::SchedulePolicy::kGPipe;
      cfg.peer_staging = staging_mode == "on"    ? devices > 1
                         : staging_mode == "off" ? false
                                                 : spec.peer_staging;
      core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons,
                                                 cfg.cluster.device);
      o.real = false;
      o.device_capacity = static_cast<uint64_t>(spec.pool_gb) << 30;
      auto factory = [&](int batch) { return bench::build_network(spec.net, batch); };
      dist::HybridParallelTrainer trainer(factory, o, cfg);
      // Per-cell iteration trace for the perf-gate's trace_diff attribution:
      // first repeat only (the virtual-clock export is deterministic, so one
      // capture represents every repeat byte-for-byte).
      obs::TraceSession trace_session;
      const bool capture = trace_dir != nullptr && rep == 0;
      if (capture) trainer.attach_trace(&trace_session);
      const auto report = trainer.run();
      if (capture) {
        trainer.attach_trace(nullptr);
        obs::ChromeTraceOptions topts;
        topts.include_wall = false;  // strip wall stamps: diffable across runs
        const std::string path = std::string(trace_dir) + "/" + cell_trace_name(spec);
        if (!obs::write_chrome_trace(trace_session, path, topts)) {
          std::fprintf(stderr, "cannot write %s\n", path.c_str());
          return 1;
        }
      }
      const auto& st = report.stats.back();
      push("seconds", st.seconds);
      push("img_per_s", kGlobalBatch / st.seconds);
      push("stall_seconds", st.stall_seconds);
      push("bubble_seconds", st.bubble_seconds);
      push("allreduce_seconds", st.allreduce_seconds);
      push("allreduce_exposed_seconds", st.allreduce_exposed_seconds);
      push("p2p_bytes", static_cast<double>(st.p2p_bytes));
      push("peer_stage_count", static_cast<double>(st.peer_stage_count));
      // Per-directed-link occupancy over the whole run: which links the
      // schedule (and the peer-staging router) actually used, as a fraction
      // of cluster virtual time. Idle links are omitted.
      const double total = trainer.cluster().now();
      for (int s = 0; s < devices && total > 0.0; ++s) {
        for (int d = 0; d < devices; ++d) {
          if (s == d) continue;
          double busy = trainer.cluster().link_busy_seconds(s, d);
          if (busy <= 0.0) continue;
          push("link_busy_frac_" + std::to_string(s) + "_" + std::to_string(d), busy / total);
        }
      }
    }
    results.push_back(cell);

    auto med = [&](const char* name) {
      for (const auto& [n, s] : cell.samples) {
        if (n == name) return median_of(s);
      }
      return 0.0;
    };
    std::string grid = std::to_string(spec.stages) + "x" + std::to_string(spec.replicas) + "x" +
                       std::to_string(spec.microbatches);
    t.add_row({spec.net, spec.link, grid, std::to_string(spec.pool_gb) + "G", spec.schedule,
               util::format_double(med("seconds") * 1e3, 1),
               util::format_double(med("img_per_s"), 1),
               util::format_double(med("bubble_seconds") * 1e3, 2),
               util::format_double(med("allreduce_exposed_seconds") * 1e3, 2),
               util::format_double(med("peer_stage_count"), 0)});
  }
  t.print();
  std::printf("\n%zu cells x %d repeat(s); medians above, full {median, lo, hi, n} per metric "
              "in the JSON output.\n",
              results.size(), repeats);

  if (json_path) {
    util::JsonWriter w;
    w.begin_object();
    w.key("schema_version").value(1);
    w.key("kind").value("sweep");
    w.key("trajectory_point").value(point);
    w.key("tier").value(tier);
    w.key("repeats").value(repeats);
    w.key("global_batch").value(kGlobalBatch);
    w.key("cells").begin_array();
    for (const CellResult& cell : results) {
      const bench::SweepCellSpec& s = cell.spec;
      w.begin_object();
      w.key("net").value(s.net);
      w.key("link").value(s.link);
      w.key("stages").value(s.stages);
      w.key("replicas").value(s.replicas);
      w.key("microbatches").value(s.microbatches);
      w.key("pool_gb").value(s.pool_gb);
      w.key("schedule").value(s.schedule);
      w.key("metrics").begin_object();
      for (const auto& [name, samples] : cell.samples) {
        w.key(name).begin_object(util::JsonWriter::kInline);
        w.key("median").value_sci(median_of(samples), 6);
        w.key("lo").value_sci(*std::min_element(samples.begin(), samples.end()), 6);
        w.key("hi").value_sci(*std::max_element(samples.begin(), samples.end()), 6);
        w.key("n").value(static_cast<int>(samples.size()));
        w.end_object();
      }
      w.end_object();
      w.end_object();
    }
    w.end_array().end_object();
    if (!w.save(json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
  }
  return 0;
}
