// Ablation — is LRU the right eviction order for training?
//
// The paper (§3.3.2) argues back-propagation's head-to-tail / tail-to-head
// pattern makes LRU a natural fit. This ablation replays a recorded access
// trace of a real training iteration through LRU, FIFO and MRU caches of
// equal capacity and compares miss counts.
//
// The --peer-staging {on,off} axis isolates the peer-memory staging
// contribution from the cache policy: the policy decides WHICH tensors
// evict, the staging router decides WHERE they go (host uplink vs idle P2P
// link). The second table replays the pool-constrained 2-device pipeline
// with the same eviction set and reports the destination split and the
// iteration-time delta. Without the flag both rows run (the axis); with it
// only the selected mode runs.
//
//   ./bench_ablate_eviction [--peer-staging on|off]
#include <cstdio>
#include <cstring>
#include <deque>
#include <list>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bench/common.hpp"
#include "core/liveness.hpp"
#include "dist/hybrid_parallel.hpp"

namespace {

using namespace sn;

enum class EvictPolicy { kLru, kFifo, kMru };

/// Simulate a fixed-capacity tensor cache over a (uid, bytes) access trace.
uint64_t misses_for(const std::vector<std::pair<uint64_t, uint64_t>>& trace, uint64_t capacity,
                    EvictPolicy policy) {
  std::list<uint64_t> order;  // front = newest
  std::unordered_map<uint64_t, std::pair<std::list<uint64_t>::iterator, uint64_t>> in_cache;
  uint64_t used = 0, misses = 0;
  for (const auto& [uid, bytes] : trace) {
    auto it = in_cache.find(uid);
    if (it != in_cache.end()) {
      if (policy == EvictPolicy::kLru || policy == EvictPolicy::kMru) {
        order.splice(order.begin(), order, it->second.first);  // refresh recency
        it->second.first = order.begin();
      }
      continue;  // hit
    }
    ++misses;
    while (used + bytes > capacity && !order.empty()) {
      uint64_t victim = policy == EvictPolicy::kMru ? order.front() : order.back();
      if (policy == EvictPolicy::kMru) {
        order.pop_front();
      } else {
        order.pop_back();
      }
      used -= in_cache[victim].second;
      in_cache.erase(victim);
    }
    if (bytes > capacity) continue;  // uncacheable
    order.push_front(uid);
    in_cache[uid] = {order.begin(), bytes};
    used += bytes;
  }
  return misses;
}

/// Record the tensor access sequence of one iteration (uses per step).
std::vector<std::pair<uint64_t, uint64_t>> record_trace(graph::Net& net) {
  core::Liveness lv(net);
  std::vector<std::pair<uint64_t, uint64_t>> trace;
  for (const auto& step : net.steps()) {
    for (uint64_t uid : lv.uses(step.index)) {
      const auto* t = net.registry().get(uid);
      trace.emplace_back(uid, t->bytes());
    }
  }
  return trace;
}

/// One pool-constrained 2-device pipeline run (the peer-staging demo
/// geometry: one microbatch pins stage 0's full activation set, a 2 GB pool
/// evicts mid-schedule). Returns the last-iteration stats.
core::IterationStats staging_run(const char* net_name, bool staging) {
  dist::HybridParallelConfig cfg;
  cfg.stages = 2;
  cfg.replicas = 1;
  cfg.microbatches = 1;
  cfg.global_batch = 32;
  cfg.cluster = sim::nvlink_cluster_spec(2);
  cfg.train.iterations = 2;
  cfg.peer_staging = staging;
  core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons,
                                             cfg.cluster.device);
  o.real = false;
  o.device_capacity = 2ull << 30;
  auto factory = [&](int batch) { return bench::build_network(net_name, batch); };
  dist::HybridParallelTrainer trainer(factory, o, cfg);
  return trainer.run().stats.back();
}

}  // namespace

int main(int argc, char** argv) {
  std::string staging_mode;  // empty = both rows
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--peer-staging") == 0) staging_mode = argv[i + 1];
  }
  if (!staging_mode.empty() && staging_mode != "on" && staging_mode != "off") {
    std::fprintf(stderr, "--peer-staging must be on|off\n");
    return 2;
  }

  std::printf("Ablation: eviction policy (misses on one iteration's access trace)\n\n");
  util::Table t({"Network", "cache", "LRU misses", "FIFO misses", "MRU misses"});
  struct Cfg {
    const char* name;
    int batch;
    double frac;  // cache capacity as a fraction of the trace's total bytes
  } cfgs[] = {{"AlexNet", 64, 0.3}, {"ResNet50", 16, 0.3}, {"VGG16", 16, 0.3},
              {"AlexNet", 64, 0.6}, {"ResNet50", 16, 0.6}};
  for (const auto& cfg : cfgs) {
    auto net = sn::bench::build_network(cfg.name, cfg.batch);
    auto trace = record_trace(*net);
    uint64_t distinct = 0;
    {
      std::unordered_set<uint64_t> seen;
      for (auto& [uid, b] : trace)
        if (seen.insert(uid).second) distinct += b;
    }
    uint64_t cap = static_cast<uint64_t>(distinct * cfg.frac);
    t.add_row({std::string(cfg.name) + " b" + std::to_string(cfg.batch),
               util::format_double(cfg.frac * 100, 0) + "%",
               std::to_string(misses_for(trace, cap, EvictPolicy::kLru)),
               std::to_string(misses_for(trace, cap, EvictPolicy::kFifo)),
               std::to_string(misses_for(trace, cap, EvictPolicy::kMru))});
  }
  t.print();
  std::printf("\nExpectation: LRU <= FIFO on training traces (tail-to-head reuse), supporting\n"
              "the paper's choice; MRU is the adversarial bound.\n");

  std::printf("\nAblation: eviction destination (peer-memory staging on the pool-constrained\n"
              "2-device pipeline, 2 GB pool, NVLink; same LRU eviction set either way)\n\n");
  util::Table st({"Network", "staging", "evictions", "staged", "d2h MB", "iter (ms)"});
  for (const char* net : {"VGG16", "ResNet50"}) {
    for (bool staging : {false, true}) {
      if (staging_mode == "on" && !staging) continue;
      if (staging_mode == "off" && staging) continue;
      core::IterationStats s = staging_run(net, staging);
      st.add_row({net, staging ? "on" : "off", std::to_string(s.evictions),
                  std::to_string(s.peer_stage_count),
                  util::format_double(static_cast<double>(s.bytes_d2h) / (1 << 20), 1),
                  util::format_double(s.seconds * 1e3, 1)});
    }
  }
  st.print();
  std::printf("\nExpectation: with staging on, evictions reroute to the idle P2P link (d2h -> 0)\n"
              "and the iteration shortens; the eviction count itself is policy-owned and does\n"
              "not move.\n");
  return 0;
}
