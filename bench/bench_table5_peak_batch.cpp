// Table 5 + Fig. 13 — Going wider: the largest trainable batch per framework
// policy per network on 12 GB, and the memory demand those peak batches
// translate to (baseline Σ l_f + Σ l_b, as the paper computes Fig. 13).
//
// Paper Table 5:
//              Caffe  MXNet  Torch  TF    SuperNeurons
//   AlexNet     768    768   1024  1408   1792
//   VGG16        48     64     48    80    224
//   InceptionV4  16    N/A    N/A    64    240
//   ResNet50     24     80     32   128    384
//   ResNet101    16     48     16    80    256
//   ResNet152    16     32     16    48    176
#include <cstdio>

#include "bench/common.hpp"

using namespace sn;

namespace {

bool batch_runs(const std::string& name, core::PolicyPreset preset, int batch) {
  return bench::runs_without_oom([&] { return bench::build_network(name, batch); },
                                 core::make_policy(preset));
}

}  // namespace

int main() {
  std::printf("Table 5: largest trainable batch on 12 GB per policy\n\n");
  const core::PolicyPreset presets[] = {core::PolicyPreset::kCaffeLike,
                                        core::PolicyPreset::kMxnetLike,
                                        core::PolicyPreset::kTorchLike,
                                        core::PolicyPreset::kTfLike,
                                        core::PolicyPreset::kSuperNeurons};
  const struct {
    const char* name;
    int hi;
  } nets[] = {{"AlexNet", 4096}, {"VGG16", 512},     {"InceptionV4", 512},
              {"ResNet50", 1024}, {"ResNet101", 512}, {"ResNet152", 512}};

  util::Table t({"peak batch", "Caffe", "MXNet", "Torch", "TensorFlow", "SuperNeurons"});
  util::Table f13({"memory demand (GB)", "Caffe", "MXNet", "Torch", "TensorFlow",
                   "SuperNeurons"});
  double sum_ratio = 0;
  int n_ratio = 0;
  for (const auto& nc : nets) {
    std::vector<std::string> row{nc.name}, mrow{nc.name};
    int second_best = 0, sn_batch = 0;
    for (auto preset : presets) {
      int b = bench::search_max(1, nc.hi,
                                [&](int batch) { return batch_runs(nc.name, preset, batch); });
      row.push_back(b >= 1 ? std::to_string(b) : "N/A");
      if (b >= 1) {
        // Fig. 13: memory the peak batch corresponds to, computed as the
        // baseline Σ l_f + Σ l_b exactly as the paper does.
        auto net = bench::build_network(nc.name, b);
        mrow.push_back(bench::gb(net->total_tensor_bytes()));
      } else {
        mrow.push_back("N/A");
      }
      if (preset == core::PolicyPreset::kSuperNeurons) {
        sn_batch = b;
      } else if (b > second_best) {
        second_best = b;
      }
    }
    if (second_best > 0) {
      sum_ratio += static_cast<double>(sn_batch) / second_best;
      ++n_ratio;
    }
    t.add_row(row);
    f13.add_row(mrow);
  }
  t.print();
  std::printf("\nFig. 13: corresponding memory demand at the peak batch\n\n");
  f13.print();
  std::printf(
      "\nShape check vs paper: SuperNeurons handles on average %.2fx larger batches than\n"
      "the second best policy (paper: 1.89x), and the implied model sizes exceed 12 GB by\n"
      "an order of magnitude (paper: up to 19.8x Caffe).\n",
      n_ratio ? sum_ratio / n_ratio : 0.0);
  return 0;
}
