// Table 3 — Communication volume (GB per iteration) with and without the
// Tensor Cache, AlexNet batch 256 -> 1024 on a 12 GB device.
//
// Paper: without the cache, traffic grows linearly with batch (2.56 ->
// 9.50 GB); with the cache, zero until DRAM is actually insufficient
// (0.88 GB at batch 1024).
#include <cstdio>

#include "bench/common.hpp"

using namespace sn;

namespace {

double comm_gb(int batch, bool cache) {
  auto net = graph::build_alexnet(batch);
  core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
  o.recompute = core::RecomputeMode::kNone;  // isolate the transfer behaviour
  o.tensor_cache = cache;
  o.offload = true;
  auto st = bench::run_sim_iteration(*net, o);
  return static_cast<double>(st.bytes_d2h + st.bytes_h2d) / (1024.0 * 1024.0 * 1024.0);
}

}  // namespace

int main() {
  std::printf("Table 3: communications (GB/iteration) with/without Tensor Cache\n");
  std::printf("(AlexNet on 12 GB K40c-sim)\n\n");
  util::Table t({"Batch", "Without Tensor Cache (GB)", "Tensor Cache (GB)"});
  for (int batch : {256, 384, 512, 640, 896, 1024}) {
    t.add_row({std::to_string(batch), util::format_double(comm_gb(batch, false), 2),
               util::format_double(comm_gb(batch, true), 2)});
  }
  t.print();
  std::printf(
      "\nShape check vs paper: without the cache traffic grows ~linearly in batch;\n"
      "with the cache it stays 0 until the working set exceeds 12 GB.\n");
  return 0;
}
