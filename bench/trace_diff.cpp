// trace_diff: align two Chrome-trace exports span by span (schedule-op
// identity: k-th occurrence of (device, stream, category, name) matches
// across files, since the column-schedule engine replays a deterministic op
// list) and attribute the wall-time delta to compute / transfer / collective
// / stall-by-source buckets. The CI perf-gate runs this whenever
// trajectory_diff flags an out-of-band regression, so the uploaded report
// names the bucket that moved, not just the cell.
//
// Usage:
//   trace_diff --baseline A.trace.json --candidate B.trace.json
//              [--report OUT.json] [--movers N] [--quiet]
//
// Exit codes: 0 = diff computed (a delta is information, not a failure —
// gating stays with trajectory_diff's noise bands); 2 = usage, I/O or parse
// error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/trace_diff.hpp"
#include "util/json_reader.hpp"

using namespace sn;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --baseline A.trace.json --candidate B.trace.json\n"
               "          [--report OUT.json] [--movers N] [--quiet]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline, candidate, report_path;
  size_t movers = 10;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s wants a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(a, "--baseline") == 0) {
      baseline = next(a);
    } else if (std::strcmp(a, "--candidate") == 0) {
      candidate = next(a);
    } else if (std::strcmp(a, "--report") == 0) {
      report_path = next(a);
    } else if (std::strcmp(a, "--movers") == 0) {
      movers = static_cast<size_t>(std::atoi(next(a)));
    } else if (std::strcmp(a, "--quiet") == 0) {
      quiet = true;
    } else {
      std::fprintf(stderr, "unknown arg: %s\n", a);
      return usage(argv[0]);
    }
  }
  if (baseline.empty() || candidate.empty()) return usage(argv[0]);

  obs::TraceDiffReport rep;
  try {
    rep = obs::diff_trace_files(baseline, candidate, movers);
  } catch (const util::JsonError& e) {
    std::fprintf(stderr, "trace_diff: %s\n", e.what());
    return 2;
  }

  if (!quiet) std::fputs(rep.render_table().c_str(), stdout);
  if (!report_path.empty()) {
    if (!rep.save(report_path)) {
      std::fprintf(stderr, "cannot write %s\n", report_path.c_str());
      return 2;
    }
    if (!quiet) std::printf("wrote %s\n", report_path.c_str());
  }
  return 0;
}
