// Declared sweep matrix for bench_sweep: the {net x grid geometry x link
// spec x pool budget x schedule policy} cells one trajectory point records.
//
// The matrix is data, not loops buried in a main(): the small tier is what
// the CI perf-gate runs on every PR (kept to tens of cells so the gate stays
// inside the smoke budget), the full tier is what --update-baseline sweeps
// when a PR claims a perf win and refreshes the committed BENCH_<n>.json.
// Every cell runs through dist::HybridParallelTrainer — S=1/R=1 degenerate
// to microbatched data parallelism / the plain pipeline / a single device,
// so one driver covers all four geometries with identical accounting.
#pragma once

#include <string>
#include <vector>

namespace sn::bench {

struct SweepCellSpec {
  std::string net;       ///< zoo name (build_network)
  std::string link;      ///< "nvlink" | "pcie" (sim cluster preset)
  int stages = 1;        ///< pipeline depth S
  int replicas = 1;      ///< replica width R
  int microbatches = 1;  ///< per replica column
  int pool_gb = 12;          ///< RuntimeOptions::device_capacity budget
  std::string schedule;      ///< "gpipe" | "1f1b" | "-" (S == 1)
  bool peer_staging = false; ///< route pool evictions over idle P2P links
};

/// Expand the declared matrix for a tier ("small" | "full" | "demo"); the
/// demo tier is just the pool-constrained peer-staging cells, cheap enough
/// for CI to run twice (--peer-staging off vs on) and diff the A/B pair.
/// Throws std::invalid_argument on an unknown tier.
inline std::vector<SweepCellSpec> sweep_matrix(const std::string& tier) {
  struct Geometry {
    int stages, replicas, microbatches;
  };
  std::vector<std::string> nets;
  std::vector<std::string> links;
  std::vector<Geometry> geometries;
  std::vector<int> pools_gb;
  if (tier == "small") {
    nets = {"VGG16", "ResNet50"};
    links = {"nvlink"};
    geometries = {{1, 1, 1}, {1, 2, 1}, {2, 1, 4}, {2, 2, 4}};
    pools_gb = {12, 6};
  } else if (tier == "full") {
    nets = {"VGG16", "ResNet50", "InceptionV4"};
    links = {"nvlink", "pcie"};
    geometries = {{1, 1, 1}, {1, 2, 1}, {2, 1, 4}, {2, 2, 4}, {2, 4, 4}, {4, 2, 4}};
    pools_gb = {12, 6};
  } else if (tier != "demo") {
    throw std::invalid_argument("unknown sweep tier " + tier + " (want small|full|demo)");
  }

  std::vector<SweepCellSpec> cells;
  for (const std::string& net : nets) {
    for (const std::string& link : links) {
      for (const Geometry& g : geometries) {
        for (int pool : pools_gb) {
          // The schedule axis only exists once there is a pipeline to
          // schedule; S == 1 cells carry the "-" placeholder the gated
          // benches use for their baseline rows.
          std::vector<std::string> schedules =
              g.stages > 1 ? std::vector<std::string>{"gpipe", "1f1b"}
                           : std::vector<std::string>{"-"};
          for (const std::string& sched : schedules) {
            cells.push_back(
                SweepCellSpec{net, link, g.stages, g.replicas, g.microbatches, pool, sched});
          }
        }
      }
    }
  }

  // Pool-constrained peer-staging demo cells: a single microbatch keeps the
  // whole activation set of stage 0 live across the forward, so a 2 GB pool
  // evicts mid-schedule while the peer stage has slack — the geometry the
  // peer-memory router is built for. peer_staging defaults ON here (the
  // bench's --peer-staging off forces the pure-host path for A/B diffs);
  // the m1/pool2 coordinates keep these cell keys disjoint from the grid
  // above, so committed baselines gain them as new cells.
  std::vector<std::string> demo_nets =
      tier == "small" ? std::vector<std::string>{"VGG16"}
                      : std::vector<std::string>{"VGG16", "ResNet50"};
  for (const std::string& net : demo_nets) {
    for (const char* sched : {"gpipe", "1f1b"}) {
      cells.push_back(SweepCellSpec{net, "nvlink", 2, 1, 1, 2, sched,
                                    /*peer_staging=*/true});
    }
  }
  return cells;
}

}  // namespace sn::bench
