// Ablation — pinned vs pageable staging, and synchronous vs overlapped DMA.
//
// Quantifies the paper's §2.2 claim that TensorFlow-style pageable swapping
// "compromises at least 50% of communication speed", and shows how much of
// the transfer cost overlap hides.
#include <cstdio>

#include "bench/common.hpp"

using namespace sn;

namespace {

double ips(const char* name, int batch, bool pinned, bool async) {
  auto net = sn::bench::build_network(name, batch);
  core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
  o.tensor_cache = false;  // force eager offload so transfers dominate
  o.recompute = core::RecomputeMode::kNone;
  o.pinned_host = pinned;
  o.async_transfers = async;
  return sn::bench::sim_img_per_s(*net, o);
}

}  // namespace

int main() {
  std::printf("Ablation: transfer staging (eager offload, no cache, 12 GB)\n\n");
  util::Table t({"Network", "pinned+async", "pageable+async", "pinned+sync", "pageable+sync"});
  struct Cfg {
    const char* name;
    int batch;
  } cfgs[] = {{"AlexNet", 256}, {"ResNet50", 32}, {"VGG16", 32}};
  for (const auto& cfg : cfgs) {
    double base = ips(cfg.name, cfg.batch, true, true);
    auto norm = [&](double v) { return util::format_double(v / base, 3); };
    t.add_row({cfg.name, norm(base), norm(ips(cfg.name, cfg.batch, false, true)),
               norm(ips(cfg.name, cfg.batch, true, false)),
               norm(ips(cfg.name, cfg.batch, false, false))});
  }
  t.print();
  std::printf("\nReading: pageable staging halves transfer bandwidth (paper §2.2's TF claim);\n"
              "losing overlap on top exposes the full transfer latency to the compute stream.\n");
  return 0;
}
