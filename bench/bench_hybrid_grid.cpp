// bench_hybrid_grid: sweep the S x R hybrid device grid over the zoo and
// compare against the pure-data-parallel (1 x R) and pure-pipeline (S x 1)
// baselines at matched and unmatched device counts.
//
// The hybrid grid's pitch: capacity (pipeline depth S) and throughput
// (replica width R) scale along INDEPENDENT axes. A 2x2 grid halves every
// device's batch relative to the 2x1 pipeline (less compute and less
// re-materialization per stage) and halves every device's net relative to
// the 1x2 data-parallel row (smaller stages, per-stage all-reduce over
// disjoint links) — so at 4 devices it must beat BOTH 2-device baselines on
// simulated throughput. The bench gates on exactly that for at least one
// zoo net (the acceptance criterion), and reports bubble fraction,
// all-reduce seconds and P2P volume per config.
//
// The schedule axis compares GPipe (all-reduce after the full drain) with
// 1F1B + gradient buckets (each stage's all-reduce issued bucket-by-bucket
// the moment its last microbatch retires, overlapping the upstream drain).
// allreduce_exposed_seconds is the collective time left sticking out past
// the drain; the bench gates on 1F1B exposing less than GPipe.
//
// With --repeats N every measured config runs N times and each JSON row
// carries {repeats, seconds_lo, seconds_hi} alongside the median "seconds",
// so the committed trajectory point records its own noise band for
// trajectory_diff to judge future deltas against.
//
//   ./bench_hybrid_grid [--json out.json] [--schedule gpipe|1f1b|both]
//                       [--repeats N]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "bench/common.hpp"
#include "dist/data_parallel.hpp"
#include "dist/hybrid_parallel.hpp"
#include "dist/pipeline_parallel.hpp"
#include "util/json_writer.hpp"

using namespace sn;

namespace {

struct Row {
  std::string net;
  std::string kind;  ///< "single" | "dp" | "pipeline" | "hybrid"
  std::string schedule;
  int stages = 1;
  int replicas = 1;
  int microbatches = 1;
  double seconds = 0.0;
  double img_per_s = 0.0;
  double bubble_seconds = 0.0;
  double allreduce_seconds = 0.0;
  double allreduce_exposed_seconds = 0.0;
  uint64_t p2p_bytes = 0;
  int repeats = 1;
  double seconds_lo = 0.0;
  double seconds_hi = 0.0;
};

/// Re-run the config repeats-1 more times via run_once (returning seconds),
/// then record median + extremes on the row. The table and gates use the
/// first run's full stats; the JSON row records the dispersion.
template <class RunOnce>
void add_dispersion(Row* r, int repeats, int global_batch, RunOnce run_once) {
  std::vector<double> samples{r->seconds};
  for (int i = 1; i < repeats; ++i) samples.push_back(run_once());
  std::sort(samples.begin(), samples.end());
  size_t n = samples.size();
  r->repeats = static_cast<int>(n);
  r->seconds = n % 2 == 1 ? samples[n / 2] : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  r->seconds_lo = samples.front();
  r->seconds_hi = samples.back();
  r->img_per_s = global_batch / r->seconds;
}

core::RuntimeOptions sim_options(const sim::ClusterSpec& cluster) {
  core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons, cluster.device);
  o.real = false;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  std::string sched_arg = "both";
  int repeats = 1;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
    if (std::strcmp(argv[i], "--schedule") == 0) sched_arg = argv[i + 1];
    if (std::strcmp(argv[i], "--repeats") == 0) repeats = std::atoi(argv[i + 1]);
  }
  if (repeats < 1) {
    std::fprintf(stderr, "--repeats must be >= 1\n");
    return 1;
  }
  std::vector<dist::SchedulePolicy> policies;
  if (sched_arg == "gpipe" || sched_arg == "both") {
    policies.push_back(dist::SchedulePolicy::kGPipe);
  }
  if (sched_arg == "1f1b" || sched_arg == "both") {
    policies.push_back(dist::SchedulePolicy::k1F1B);
  }
  if (policies.empty()) {
    std::fprintf(stderr, "unknown --schedule %s (want gpipe|1f1b|both)\n", sched_arg.c_str());
    return 1;
  }

  const int kGlobalBatch = 32, kIters = 2, kMicrobatches = 8;
  const char* nets[] = {"VGG16", "ResNet50", "InceptionV4"};
  struct GridCfg {
    int stages, replicas;
  };
  const GridCfg grids[] = {{2, 2}, {2, 4}, {4, 2}};

  std::printf(
      "=== hybrid S x R grid vs pure-DP / pure-pipeline (global batch %d, TITAN-Xp NVLink "
      "sim) ===\n\n",
      kGlobalBatch);
  util::Table t({"network", "config", "schedule", "devices", "iter (ms)", "img/s", "bubble_frac",
                 "allreduce (ms)", "ar exposed (ms)", "p2p_bytes (MB)"});
  std::vector<Row> rows;
  // allreduce_exposed_seconds keyed by (net, stages, replicas, schedule) for
  // the overlap gate.
  std::map<std::tuple<std::string, int, int, std::string>, double> exposed_by_cfg;
  bool grid_wins = false;

  for (const char* name : nets) {
    double dp2_imgs = 0.0, pipe2_imgs = 0.0;
    auto factory = [&](int batch) { return bench::build_network(name, batch); };

    // Single-device baseline: the same net over the combined batch.
    {
      sim::ClusterSpec cs = sim::nvlink_cluster_spec(1);
      auto net = bench::build_network(name, kGlobalBatch);
      auto st = bench::run_sim_iteration(*net, sim_options(cs));
      Row r{name, "single", "-", 1, 1, 1, st.seconds, kGlobalBatch / st.seconds,
            0.0,  0.0,      0.0, 0};
      add_dispersion(&r, repeats, kGlobalBatch, [&] {
        auto n2 = bench::build_network(name, kGlobalBatch);
        return bench::run_sim_iteration(*n2, sim_options(cs)).seconds;
      });
      rows.push_back(r);
      t.add_row({name, "1 device", "-", "1", util::format_double(r.seconds * 1e3, 1),
                 util::format_double(r.img_per_s, 1), "0.000", "0.00", "0.00", "0.0"});
    }
    // Pure data parallelism: 1 x 2.
    {
      dist::DataParallelConfig cfg;
      cfg.devices = 2;
      cfg.global_batch = kGlobalBatch;
      cfg.cluster = sim::nvlink_cluster_spec(2);
      cfg.train.iterations = kIters;
      dist::DataParallelTrainer dp(factory, sim_options(cfg.cluster), cfg);
      const auto rep = dp.run();
      const auto& st = rep.stats.back();
      Row r{name,       "dp", "-",
            1,          2,    1,
            st.seconds, kGlobalBatch / st.seconds,
            0.0,        st.allreduce_seconds,
            0.0,        st.p2p_bytes};
      add_dispersion(&r, repeats, kGlobalBatch, [&] {
        dist::DataParallelTrainer again(factory, sim_options(cfg.cluster), cfg);
        return again.run().stats.back().seconds;
      });
      rows.push_back(r);
      dp2_imgs = r.img_per_s;
      t.add_row({name, "1 x 2 (pure DP)", "-", "2", util::format_double(r.seconds * 1e3, 1),
                 util::format_double(r.img_per_s, 1), "0.000",
                 util::format_double(r.allreduce_seconds * 1e3, 2), "0.00",
                 util::format_double(static_cast<double>(r.p2p_bytes) / 1048576.0, 1)});
    }
    // Pure pipeline: 2 x 1.
    {
      dist::PipelineParallelConfig cfg;
      cfg.stages = 2;
      cfg.microbatches = kMicrobatches;
      cfg.global_batch = kGlobalBatch;
      cfg.cluster = sim::nvlink_cluster_spec(2);
      cfg.train.iterations = kIters;
      dist::PipelineParallelTrainer pipe(factory, sim_options(cfg.cluster), cfg);
      const auto rep = pipe.run();
      const auto& st = rep.stats.back();
      // Standard pipeline-bubble fraction: span in excess of the bottleneck
      // stage's own busy time (matches bench_pipeline_stages).
      double busy_max = 0.0;
      for (const auto& ss : rep.stage_stats.back()) {
        busy_max = std::max(busy_max, ss.seconds - ss.bubble_seconds);
      }
      Row r{name,       "pipeline", "-",
            2,          1,          kMicrobatches,
            st.seconds, kGlobalBatch / st.seconds,
            st.bubble_seconds, 0.0,
            0.0,        st.p2p_bytes};
      add_dispersion(&r, repeats, kGlobalBatch, [&] {
        dist::PipelineParallelTrainer again(factory, sim_options(cfg.cluster), cfg);
        return again.run().stats.back().seconds;
      });
      rows.push_back(r);
      pipe2_imgs = r.img_per_s;
      t.add_row({name, "2 x 1 (pure pipeline)", "-", "2",
                 util::format_double(r.seconds * 1e3, 1), util::format_double(r.img_per_s, 1),
                 util::format_double((st.seconds - busy_max) / st.seconds, 3), "0.00", "0.00",
                 util::format_double(static_cast<double>(r.p2p_bytes) / 1048576.0, 1)});
    }
    // Hybrid grids, one run per schedule policy.
    for (const GridCfg& g : grids) {
      for (dist::SchedulePolicy policy : policies) {
        const char* pname = dist::schedule_policy_name(policy);
        dist::HybridParallelConfig cfg;
        cfg.stages = g.stages;
        cfg.replicas = g.replicas;
        cfg.microbatches = kMicrobatches;
        cfg.global_batch = kGlobalBatch;
        cfg.cluster = sim::nvlink_cluster_spec(g.stages * g.replicas);
        cfg.train.iterations = kIters;
        cfg.schedule = policy;
        dist::HybridParallelTrainer hyb(factory, sim_options(cfg.cluster), cfg);
        const auto rep = hyb.run();
        const auto& st = rep.stats.back();
        // Bottleneck cell busy time across the grid (see pure-pipeline row).
        double busy_max = 0.0;
        for (const auto& row_st : rep.cell_stats.back()) {
          for (const auto& cs : row_st) {
            busy_max = std::max(busy_max, cs.seconds - cs.bubble_seconds);
          }
        }
        Row r{name,       "hybrid",  pname,
              g.stages,   g.replicas, kMicrobatches,
              st.seconds, kGlobalBatch / st.seconds,
              st.bubble_seconds, st.allreduce_seconds,
              st.allreduce_exposed_seconds, st.p2p_bytes};
        add_dispersion(&r, repeats, kGlobalBatch, [&] {
          dist::HybridParallelTrainer again(factory, sim_options(cfg.cluster), cfg);
          return again.run().stats.back().seconds;
        });
        rows.push_back(r);
        exposed_by_cfg[{name, g.stages, g.replicas, pname}] = r.allreduce_exposed_seconds;
        if (g.stages == 2 && g.replicas == 2 && r.img_per_s > dp2_imgs &&
            r.img_per_s > pipe2_imgs) {
          grid_wins = true;
        }
        t.add_row({name,
                   std::to_string(g.stages) + " x " + std::to_string(g.replicas) + " hybrid",
                   pname, std::to_string(g.stages * g.replicas),
                   util::format_double(r.seconds * 1e3, 1), util::format_double(r.img_per_s, 1),
                   util::format_double((st.seconds - busy_max) / st.seconds, 3),
                   util::format_double(r.allreduce_seconds * 1e3, 2),
                   util::format_double(r.allreduce_exposed_seconds * 1e3, 2),
                   util::format_double(static_cast<double>(r.p2p_bytes) / 1048576.0, 1)});
      }
    }
  }
  t.print();
  std::printf(
      "\n2 x 2 hybrid vs both 2-device baselines (shallower per-device batch than the\n"
      "pure pipeline, smaller per-device net than pure DP): %s\n",
      grid_wins ? "WINS for at least one net" : "NEVER WINS (gate violated)");

  // Overlap gate: bucketed 1F1B issues each stage's all-reduce as soon as
  // its last microbatch retires, so the collective time exposed past the
  // drain must come in below GPipe's post-drain synchronous pass.
  bool overlap_ok = true;
  if (policies.size() == 2) {
    bool strict_win = false;
    for (const char* name : nets) {
      for (const GridCfg& g : grids) {
        double eg = exposed_by_cfg[{name, g.stages, g.replicas, "gpipe"}];
        double e1 = exposed_by_cfg[{name, g.stages, g.replicas, "1f1b"}];
        if (e1 > eg) {
          overlap_ok = false;
          std::printf("!! %s %dx%d: 1f1b exposed %.3fms > gpipe %.3fms\n", name, g.stages,
                      g.replicas, e1 * 1e3, eg * 1e3);
        }
        if (eg > 0.0 && e1 < eg) strict_win = true;
      }
    }
    if (!strict_win) {
      overlap_ok = false;
      std::printf("!! no config with gpipe exposure showed a strict 1f1b reduction\n");
    }
    std::printf("1f1b bucket overlap exposes less all-reduce than gpipe: %s\n",
                overlap_ok ? "CONFIRMED" : "VIOLATED");
  }

  if (json_path) {
    util::JsonWriter w;
    w.begin_object();
    w.key("global_batch").value(kGlobalBatch);
    w.key("configs").begin_array();
    for (const Row& r : rows) {
      w.begin_object(util::JsonWriter::kInline);
      w.key("net").value(r.net);
      w.key("kind").value(r.kind);
      w.key("schedule").value(r.schedule);
      w.key("stages").value(r.stages);
      w.key("replicas").value(r.replicas);
      w.key("microbatches").value(r.microbatches);
      w.key("seconds").value_sci(r.seconds, 6);
      w.key("repeats").value(r.repeats);
      w.key("seconds_lo").value_sci(r.seconds_lo, 6);
      w.key("seconds_hi").value_sci(r.seconds_hi, 6);
      w.key("img_per_s").value_fixed(r.img_per_s, 2);
      w.key("bubble_seconds").value_sci(r.bubble_seconds, 6);
      w.key("allreduce_seconds").value_sci(r.allreduce_seconds, 6);
      w.key("allreduce_exposed_seconds").value_sci(r.allreduce_exposed_seconds, 6);
      w.key("p2p_bytes").value(r.p2p_bytes);
      w.end_object();
    }
    w.end_array().end_object();
    if (!w.save(json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
  }
  return (grid_wins && overlap_ok) ? 0 : 1;
}
