// Fig. 8 — Percentage of execution time (a) and memory usage (b) by layer
// type across the evaluated networks.
//
// The paper's takeaway this bench must reproduce: CONV dominates compute
// (>50% on most nets) while POOL/ACT/BN/LRN together hold ~50% of memory
// with ~20% of time — the asymmetry that justifies offloading CONV outputs
// and recomputing the cheap layers.
#include <cstdio>
#include <map>

#include "bench/common.hpp"
#include "sim/costmodel.hpp"

namespace {

using namespace sn;

const char* type_label(graph::LayerType t) {
  switch (t) {
    case graph::LayerType::kConv: return "CONV";
    case graph::LayerType::kFc: return "FC";
    case graph::LayerType::kDropout: return "DROPOUT";
    case graph::LayerType::kSoftmax: return "SOFTMAX";
    case graph::LayerType::kPool: return "POOL";
    case graph::LayerType::kAct: return "ACT";
    case graph::LayerType::kBn: return "BN";
    case graph::LayerType::kLrn: return "LRN";
    default: return nullptr;  // DATA / joins excluded, as in the paper
  }
}

}  // namespace

int main() {
  const char* kTypes[] = {"CONV", "FC", "DROPOUT", "SOFTMAX", "POOL", "ACT", "BN", "LRN"};
  const char* kNets[] = {"AlexNet", "InceptionV4", "ResNet101", "ResNet152",
                         "ResNet50", "VGG16", "VGG19"};
  sim::CostModel cost(sim::k40c_spec());

  std::printf("Fig. 8a: %% of compute time by layer type (fwd+bwd)\n\n");
  util::Table tt({"Network", "CONV", "FC", "DROPOUT", "SOFTMAX", "POOL", "ACT", "BN", "LRN"});
  util::Table tm({"Network", "CONV", "FC", "DROPOUT", "SOFTMAX", "POOL", "ACT", "BN", "LRN"});

  for (const char* name : kNets) {
    auto net = sn::bench::build_network(name, 32);
    std::map<std::string, double> time_by, mem_by;
    double time_total = 0, mem_total = 0;
    for (const auto& l : net->layers()) {
      const char* label = type_label(l->type());
      if (!label) continue;
      double eff = l->compute_efficiency();
      if (l->type() == graph::LayerType::kConv) {
        const auto* conv = static_cast<const graph::ConvLayer*>(l.get());
        eff = nn::conv_algo_efficiency(conv->desc(), nn::ConvAlgo::kIm2colGemm,
                                       nn::ConvPass::kForward);
      }
      double t = cost.compute_time(l->forward_flops(), static_cast<double>(l->forward_bytes()),
                                   eff) +
                 cost.compute_time(l->backward_flops(), static_cast<double>(l->backward_bytes()),
                                   eff * 0.9);
      double m = static_cast<double>(l->layer_tensor_bytes());
      time_by[label] += t;
      mem_by[label] += m;
      time_total += t;
      mem_total += m;
    }
    std::vector<std::string> trow{name}, mrow{name};
    for (const char* ty : kTypes) {
      trow.push_back(util::format_double(100.0 * time_by[ty] / time_total, 1));
      mrow.push_back(util::format_double(100.0 * mem_by[ty] / mem_total, 1));
    }
    tt.add_row(trow);
    tm.add_row(mrow);
  }
  tt.print();
  std::printf("\nFig. 8b: %% of memory usage by layer type\n\n");
  tm.print();
  std::printf(
      "\nShape check vs paper: CONV dominates time; POOL+ACT+BN+LRN hold roughly half the\n"
      "memory at a small fraction of the compute — the offload/recompute opportunity.\n");
  return 0;
}
