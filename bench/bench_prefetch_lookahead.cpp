// bench_prefetch_lookahead: sweep RuntimeOptions::prefetch_lookahead across
// the zoo networks and report DMA stall time, so per-net defaults can be
// picked empirically (ROADMAP "Prefetch policy search"; the paper always
// stages exactly the next checkpoint span, i.e. lookahead 1).
//
// Capacity is squeezed below each net's working set so offload/prefetch
// traffic actually flows — on an uncontended device every lookahead is
// trivially stall-free.
#include <cstdio>
#include <cstring>

#include "bench/common.hpp"
#include "util/json_writer.hpp"

using namespace sn;

namespace {

struct NetCase {
  const char* name;
  int batch;
  uint64_t capacity;
};

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }
  // Rows stream into the writer as the sweep runs; saved only with --json.
  util::JsonWriter w;
  w.begin_object();
  w.key("nets").begin_array();
  // Batches in paper-evaluation territory; capacity chosen to force the
  // unified tensor pool to swap (fractions of the 12 GB K40c).
  const NetCase cases[] = {
      {"AlexNet", 1024, 10ull << 30}, {"VGG16", 128, 8ull << 30},
      {"VGG19", 128, 8ull << 30},     {"InceptionV4", 128, 8ull << 30},
      {"ResNet50", 256, 8ull << 30},  {"ResNet101", 128, 8ull << 30},
  };
  const int kMaxLookahead = 4;

  std::printf("=== prefetch_lookahead sweep: stall seconds per iteration ===\n");
  std::printf("(lookahead 0 disables prefetch; the paper uses 1)\n\n");
  util::Table t({"network", "batch", "L=0 (ms)", "L=1 (ms)", "L=2 (ms)", "L=3 (ms)", "L=4 (ms)",
                 "best L", "iter@best (ms)"});
  for (const auto& c : cases) {
    // Per-depth results; a depth that OOMs (deeper staging raises the
    // resident footprint) gets an OOM cell, the rest still rank.
    std::vector<double> stalls(kMaxLookahead + 1), iters(kMaxLookahead + 1);
    std::vector<bool> ok(kMaxLookahead + 1, false);
    for (int lookahead = 0; lookahead <= kMaxLookahead; ++lookahead) {
      core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
      o.device_capacity = c.capacity;
      o.prefetch_lookahead = lookahead;
      auto net = bench::build_network(c.name, c.batch);
      try {
        auto st = bench::run_sim_iteration(*net, o);
        stalls[lookahead] = st.stall_seconds;
        iters[lookahead] = st.seconds;
        ok[lookahead] = true;
      } catch (const core::OomError&) {
      }
    }
    int best = -1;
    for (int l = 0; l <= kMaxLookahead; ++l) {
      if (ok[l] && (best < 0 || iters[l] < iters[best])) best = l;
    }
    auto cell = [&](int l) {
      return ok[l] ? util::format_double(stalls[l] * 1e3, 2) : std::string("OOM");
    };
    t.add_row({c.name, std::to_string(c.batch), cell(0), cell(1), cell(2), cell(3), cell(4),
               best < 0 ? "-" : std::to_string(best),
               best < 0 ? "-" : util::format_double(iters[best] * 1e3, 1)});
    w.begin_object(util::JsonWriter::kInline);
    w.key("name").value(c.name);
    w.key("batch").value(c.batch);
    w.key("best_lookahead").value(best);
    w.key("stall_ms").begin_array(util::JsonWriter::kInline);
    for (int l = 0; l <= kMaxLookahead; ++l) {
      // format_double tokens pass through raw() so the cells stay byte-for-
      // byte what the fprintf emitter produced.
      if (ok[l]) {
        w.raw(util::format_double(stalls[l] * 1e3, 4));
      } else {
        w.value_null();
      }
    }
    w.end_array().end_object();
  }
  t.print();
  std::printf("\nbest L = lookahead minimizing iteration time (stall is the driver;\n"
              "deeper staging can also displace resident tensors).\n");
  w.end_array().end_object();
  if (json_path && !w.save(json_path)) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  return 0;
}
