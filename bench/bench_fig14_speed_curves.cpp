// Fig. 14 — End-to-end training speed (img/s) vs batch size for each
// framework policy on six networks (TITAN-Xp-class device, 12 GB).
//
// The shape to reproduce: SuperNeurons leads at every batch size, keeps
// scaling to batches where the static policies have long OOM'd, and its
// speed decays gently at extreme batches as tensor swapping grows.
#include <cstdio>

#include "bench/common.hpp"

using namespace sn;

namespace {

/// img/s or 0 when the policy OOMs at this batch.
double ips_or_zero(const std::string& name, core::PolicyPreset preset, int batch) {
  try {
    auto net = bench::build_network(name, batch);
    auto opts = core::make_policy(preset, sim::titan_xp_spec());
    return bench::sim_img_per_s(*net, opts);
  } catch (const core::OomError&) {
    return 0.0;
  }
}

void curves_for(const std::string& name, const std::vector<double>& batches) {
  const struct {
    core::PolicyPreset preset;
    const char* label;
  } kSeries[] = {{core::PolicyPreset::kCaffeLike, "Caffe"},
                 {core::PolicyPreset::kTfLike, "TF"},
                 {core::PolicyPreset::kMxnetLike, "MXNet"},
                 {core::PolicyPreset::kTorchLike, "Torch"},
                 {core::PolicyPreset::kSuperNeurons, "Ours"}};
  std::vector<util::Series> series;
  for (const auto& s : kSeries) {
    util::Series ser{s.label, {}};
    for (double b : batches) {
      ser.y.push_back(ips_or_zero(name, s.preset, static_cast<int>(b)));
    }
    series.push_back(std::move(ser));
  }
  std::fputs(util::render_series(name + " speed (img/s; 0 = OOM)", "batch", batches, series, 1)
                 .c_str(),
             stdout);
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Fig. 14: img/s vs batch size per policy (TITANXp-sim, 12 GB)\n\n");
  curves_for("AlexNet", {128, 256, 512, 768, 1024, 1280, 1408});
  curves_for("ResNet50", {16, 32, 64, 96, 128, 160, 200});
  curves_for("VGG16", {16, 32, 48, 64, 96, 128, 160});
  curves_for("ResNet101", {16, 32, 48, 64, 96, 120});
  curves_for("InceptionV4", {8, 16, 24, 32, 48, 64, 80});
  curves_for("ResNet152", {8, 16, 24, 32, 48, 64, 80});
  std::printf(
      "Shape check vs paper: Ours dominates every curve and extends to batches where the\n"
      "others read 0 (OOM); speed decays slowly at extreme batches as swapping grows.\n");
  return 0;
}
