// Ablation — first-fit (the paper's pool) vs best-fit node selection.
//
// Replays a real training iteration's alloc/free churn at several capacity
// headrooms and compares external fragmentation (failed allocations when the
// pool is tight) and wall-clock per operation.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/liveness.hpp"
#include "mem/mem_pool.hpp"

namespace {

using namespace sn;

struct Result {
  uint64_t failed = 0;
  double ns_per_op = 0;
};

Result churn(graph::Net& net, uint64_t capacity, mem::FitPolicy fit) {
  core::Liveness lv(net);
  mem::MemoryPool pool(capacity, 1024, false, fit);
  std::vector<uint64_t> handle(net.registry().size(), 0);
  size_t ops = 0;
  auto t0 = std::chrono::steady_clock::now();
  // Three iterations of churn so fragmentation can build up.
  for (int iter = 0; iter < 3; ++iter) {
    for (const auto& step : net.steps()) {
      for (uint64_t uid : lv.defs(step.index)) {
        if (handle[uid]) continue;
        const auto* t = net.registry().get(uid);
        if (auto a = pool.allocate(t->bytes())) handle[uid] = a->id;
        ++ops;
      }
      for (uint64_t uid : lv.free_after(step.index)) {
        if (!handle[uid]) continue;
        pool.deallocate(handle[uid]);
        handle[uid] = 0;
        ++ops;
      }
    }
  }
  auto t1 = std::chrono::steady_clock::now();
  Result r;
  r.failed = pool.stats().failed_allocs;
  r.ns_per_op = std::chrono::duration<double, std::nano>(t1 - t0).count() / ops;
  return r;
}

}  // namespace

int main() {
  std::printf("Ablation: first-fit vs best-fit pool policy (ResNet50 b32 churn, 3 iters)\n\n");
  util::Table t({"capacity vs peak", "first-fit fails", "best-fit fails", "first-fit ns/op",
                 "best-fit ns/op"});
  auto net = sn::bench::build_network("ResNet50", 32);

  // Determine the churn's natural peak once.
  core::Liveness lv(*net);
  uint64_t peak = 0, used = 0;
  {
    std::vector<uint64_t> sz(net->registry().size(), 0);
    for (const auto& step : net->steps()) {
      for (uint64_t uid : lv.defs(step.index)) {
        if (sz[uid]) continue;
        sz[uid] = net->registry().get(uid)->bytes();
        used += sz[uid];
        peak = std::max(peak, used);
      }
      for (uint64_t uid : lv.free_after(step.index)) {
        used -= sz[uid];
        sz[uid] = 0;
      }
    }
  }

  for (double headroom : {1.02, 1.05, 1.10, 1.50}) {
    uint64_t cap = static_cast<uint64_t>(peak * headroom);
    auto ff = churn(*net, cap, mem::FitPolicy::kFirstFit);
    auto bf = churn(*net, cap, mem::FitPolicy::kBestFit);
    t.add_row({util::format_double(headroom, 2) + "x", std::to_string(ff.failed),
               std::to_string(bf.failed), util::format_double(ff.ns_per_op, 0),
               util::format_double(bf.ns_per_op, 0)});
  }
  t.print();
  std::printf("\nReading: at tight capacities fit policy matters for external fragmentation;\n"
              "with coalescing both stay near zero failures, supporting the paper's simple\n"
              "first-fit choice.\n");
  return 0;
}
