// HybridParallelTrainer tests. Flagship invariant: replicating pipeline
// stages over a 2D device grid NEVER changes training results — S-stage x
// R-replica x M-microbatch training is bit-identical to a single-device run
// over the combined batch (losses AND weights), composing the data-parallel
// and pipeline-parallel parity machinery (pairwise microbatch combine inside
// a replica, halving-doubling all-reduce across a stage's replicas). Plus:
// grid telemetry, degenerate axes, memory-pressure invariance, and sim-mode
// scale-out.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "dist/data_parallel.hpp"
#include "dist/hybrid_parallel.hpp"
#include "dist/pipeline_parallel.hpp"
#include "graph/zoo.hpp"
#include "train/trainer.hpp"

namespace {

using namespace sn;

core::RuntimeOptions parity_options() {
  core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
  o.real = true;
  o.device_capacity = 32ull << 20;
  // Pin convolutions to the workspace-free algorithm: the dynamic choice
  // depends on free device memory, which legitimately differs between the
  // full-batch and microbatch runs.
  o.allow_workspace = false;
  return o;
}

train::TrainConfig parity_train_config(int iterations) {
  train::TrainConfig tc;
  tc.iterations = iterations;
  tc.lr = 0.05f;
  tc.momentum = 0.9f;
  return tc;
}

dist::HybridParallelConfig hybrid_config(int stages, int replicas, int microbatches,
                                         int global_batch, int iterations) {
  dist::HybridParallelConfig cfg;
  cfg.stages = stages;
  cfg.replicas = replicas;
  cfg.microbatches = microbatches;
  cfg.global_batch = global_batch;
  cfg.cluster = sim::pcie_cluster_spec(stages * replicas);
  cfg.train = parity_train_config(iterations);
  return cfg;
}

void expect_params_match(core::Runtime& single, dist::HybridParallelTrainer& hyb) {
  // Every cell parameter must end bit-identical to its full-net namesake —
  // on every replica of every stage.
  for (int s = 0; s < hyb.stages(); ++s) {
    for (int r = 0; r < hyb.replicas(); ++r) {
      core::Runtime& rt = hyb.runtime(s, r);
      for (const auto& l : rt.net().layers()) {
        for (const auto* p : l->params()) {
          const tensor::Tensor* ref = nullptr;
          for (const auto& ol : single.net().layers()) {
            for (const auto* op : ol->params()) {
              if (op->name() == p->name()) ref = op;
            }
          }
          ASSERT_NE(ref, nullptr) << p->name();
          EXPECT_EQ(single.read_tensor(ref), rt.read_tensor(p))
              << "cell (" << s << ", " << r << ") param " << p->name();
        }
      }
    }
  }
}

TEST(HybridParallel, TwoByTwoGridFourMicrobatchesMatchSingleDeviceBitForBit) {
  const int kGlobalBatch = 8, kMicrobatches = 4, kIters = 5;
  auto factory = [](int batch) { return graph::build_tiny_linear(batch); };
  core::RuntimeOptions o = parity_options();
  train::TrainConfig tc = parity_train_config(kIters);

  // Single device, combined batch.
  auto net = factory(kGlobalBatch);
  core::Runtime rt(*net, o);
  train::Trainer trainer(rt, tc);
  auto single = trainer.run();

  // 2 stages x 2 replicas, each column microbatched 4 ways.
  dist::HybridParallelTrainer hyb(factory, o,
                                  hybrid_config(2, 2, kMicrobatches, kGlobalBatch, kIters));
  auto rep = hyb.run();

  ASSERT_EQ(single.losses.size(), rep.losses.size());
  for (size_t i = 0; i < single.losses.size(); ++i) {
    EXPECT_EQ(single.losses[i], rep.losses[i]) << "iteration " << i;
  }
  expect_params_match(rt, hyb);
}

TEST(HybridParallel, FourReplicaRowsUseHalvingDoublingAndStayExact) {
  // R = 4 exercises the >2-rank pairwise tree: only the halving-doubling
  // collective reproduces single-device bits at that width.
  const int kGlobalBatch = 8, kIters = 4;
  auto factory = [](int batch) { return graph::build_tiny_linear(batch); };
  core::RuntimeOptions o = parity_options();

  auto net = factory(kGlobalBatch);
  core::Runtime rt(*net, o);
  train::Trainer trainer(rt, parity_train_config(kIters));
  auto single = trainer.run();

  dist::HybridParallelTrainer hyb(factory, o, hybrid_config(2, 4, 2, kGlobalBatch, kIters));
  auto rep = hyb.run();
  ASSERT_EQ(single.losses.size(), rep.losses.size());
  for (size_t i = 0; i < single.losses.size(); ++i) {
    EXPECT_EQ(single.losses[i], rep.losses[i]) << "iteration " << i;
  }
  expect_params_match(rt, hyb);
}

TEST(HybridParallel, FanJoinNetMatchesSingleDevice) {
  const int kGlobalBatch = 8, kIters = 4;
  auto factory = [](int batch) { return graph::build_tiny_fanjoin(batch); };
  core::RuntimeOptions o = parity_options();
  auto net = factory(kGlobalBatch);
  core::Runtime rt(*net, o);
  train::Trainer trainer(rt, parity_train_config(kIters));
  auto single = trainer.run();

  dist::HybridParallelTrainer hyb(factory, o, hybrid_config(2, 2, 2, kGlobalBatch, kIters));
  auto rep = hyb.run();
  ASSERT_EQ(single.losses.size(), rep.losses.size());
  for (size_t i = 0; i < single.losses.size(); ++i) {
    EXPECT_EQ(single.losses[i], rep.losses[i]) << "iteration " << i;
  }
  EXPECT_LT(rep.last_loss(), rep.first_loss());
}

TEST(HybridParallel, DegenerateAxesReduceToThePureTrainers) {
  // S=1 is microbatched data parallelism; R=1 is the plain pipeline. Both
  // must reproduce the dedicated trainers' losses bit for bit.
  auto factory = [](int batch) { return graph::build_tiny_linear(batch); };
  core::RuntimeOptions o = parity_options();

  {
    dist::DataParallelConfig dp_cfg;
    dp_cfg.devices = 2;
    dp_cfg.global_batch = 8;
    dp_cfg.cluster = sim::pcie_cluster_spec(2);
    dp_cfg.train = parity_train_config(4);
    dist::DataParallelTrainer dp(factory, o, dp_cfg);
    dist::HybridParallelTrainer hyb(factory, o, hybrid_config(1, 2, 1, 8, 4));
    EXPECT_EQ(dp.run().losses, hyb.run().losses);
  }
  {
    dist::PipelineParallelConfig pp_cfg;
    pp_cfg.stages = 2;
    pp_cfg.microbatches = 4;
    pp_cfg.global_batch = 8;
    pp_cfg.cluster = sim::pcie_cluster_spec(2);
    pp_cfg.train = parity_train_config(4);
    dist::PipelineParallelTrainer pipe(factory, o, pp_cfg);
    dist::HybridParallelTrainer hyb(factory, o, hybrid_config(2, 1, 4, 8, 4));
    EXPECT_EQ(pipe.run().losses, hyb.run().losses);
  }
}

TEST(HybridParallel, ReplicasStayInBitwiseLockstep) {
  auto factory = [](int batch) { return graph::build_tiny_linear(batch, 16); };
  dist::HybridParallelTrainer hyb(factory, parity_options(), hybrid_config(2, 2, 2, 8, 12));
  auto rep = hyb.run();
  EXPECT_LT(rep.last_loss(), rep.first_loss());
  for (int s = 0; s < 2; ++s) {
    const auto& l0 = hyb.runtime(s, 0).net().layers();
    const auto& l1 = hyb.runtime(s, 1).net().layers();
    ASSERT_EQ(l0.size(), l1.size());
    for (size_t li = 0; li < l0.size(); ++li) {
      const auto& p0 = l0[li]->params();
      const auto& p1 = l1[li]->params();
      ASSERT_EQ(p0.size(), p1.size());
      for (size_t pi = 0; pi < p0.size(); ++pi) {
        EXPECT_EQ(hyb.runtime(s, 0).read_tensor(p0[pi]), hyb.runtime(s, 1).read_tensor(p1[pi]))
            << "stage " << s << " param " << p0[pi]->name();
      }
    }
  }
}

TEST(HybridParallel, MemoryPressureInsideCellsDoesNotChangeLosses) {
  // The paper's invariant, lifted across BOTH axes: squeezing every cell's
  // pool (forcing offload/eviction/recompute inside cells) must not change
  // training results.
  auto run = [](uint64_t capacity) {
    auto factory = [](int batch) { return graph::build_tiny_linear(batch, 16); };
    core::RuntimeOptions o = parity_options();
    o.device_capacity = capacity;
    dist::HybridParallelTrainer hyb(factory, o, hybrid_config(2, 2, 2, 8, 5));
    return hyb.run().losses;
  };
  EXPECT_EQ(run(64ull << 20), run(1ull << 20));
}

TEST(HybridParallel, GridTelemetryIsVisiblePerCell) {
  auto factory = [](int batch) { return graph::build_tiny_linear(batch); };
  dist::HybridParallelTrainer hyb(factory, parity_options(), hybrid_config(2, 2, 2, 8, 2));
  auto rep = hyb.run();
  ASSERT_EQ(rep.stats.size(), 2u);
  ASSERT_EQ(rep.cell_stats[0].size(), 2u);
  ASSERT_EQ(rep.cell_stats[0][0].size(), 2u);
  for (int s = 0; s < 2; ++s) {
    for (int r = 0; r < 2; ++r) {
      const auto& st = rep.cell_stats.back()[static_cast<size_t>(s)][static_cast<size_t>(r)];
      // Every cell streams activations or gradients AND all-reduce hops.
      EXPECT_GT(st.p2p_bytes, 0u) << "cell (" << s << ", " << r << ")";
      EXPECT_GT(st.allreduce_seconds, 0.0) << "cell (" << s << ", " << r << ")";
      EXPECT_GT(st.seconds, 0.0);
      // Per-step telemetry carries the full grid coordinates.
      const auto& tele = hyb.runtime(s, r).step_telemetry().front();
      EXPECT_EQ(tele.device_id, hyb.grid().device(s, r));
      EXPECT_EQ(tele.stage, s);
      EXPECT_EQ(tele.replica, r);
    }
  }
  // The downstream stage idles during fill: its bubble must be visible.
  EXPECT_GT(rep.stats[1].bubble_seconds, 0.0);
  EXPECT_GT(rep.stats[1].allreduce_seconds, 0.0);
}

TEST(HybridParallel, SimModeScalesToZooNets) {
  auto factory = [](int batch) { return graph::build_vgg(16, batch); };
  core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
  o.real = false;
  auto cfg = hybrid_config(2, 4, 2, 64, 1);
  cfg.cluster = sim::nvlink_cluster_spec(8);
  dist::HybridParallelTrainer hyb(factory, o, cfg);
  auto rep = hyb.run();
  EXPECT_EQ(rep.losses[0], 0.0);  // unbacked: no numerics
  EXPECT_GT(rep.stats[0].seconds, 0.0);
  EXPECT_GT(rep.stats[0].p2p_bytes, 0u);
  EXPECT_GT(rep.stats[0].allreduce_seconds, 0.0);
  ASSERT_EQ(rep.cell_stats[0].size(), 2u);
  ASSERT_EQ(rep.cell_stats[0][0].size(), 4u);
}

TEST(HybridParallel, OneF1BBucketedAllreduceMatchesSingleDeviceBitForBit) {
  // 2 x 2 x 4 under PipeDream-flush WITH asynchronous bucketed all-reduce:
  // the schedule engine changes execution order and the update splits into
  // chained sub-group collectives, yet losses AND weights must still be
  // bit-identical to the single-device run — bucketing slices the fused
  // vector, and each element's halving-doubling rank-combine tree is
  // independent of segmentation.
  const int kGlobalBatch = 8, kMicrobatches = 4, kIters = 5;
  auto factory = [](int batch) { return graph::build_tiny_linear(batch); };
  core::RuntimeOptions o = parity_options();

  auto net = factory(kGlobalBatch);
  core::Runtime rt(*net, o);
  train::Trainer trainer(rt, parity_train_config(kIters));
  auto single = trainer.run();

  auto cfg = hybrid_config(2, 2, kMicrobatches, kGlobalBatch, kIters);
  cfg.schedule = dist::SchedulePolicy::k1F1B;
  cfg.bucket_bytes = 256;  // tiny buckets: force a real multi-bucket chain
  dist::HybridParallelTrainer hyb(factory, o, cfg);
  auto rep = hyb.run();

  for (int s = 0; s < 2; ++s) EXPECT_GT(hyb.buckets(s), 1) << "stage " << s;
  ASSERT_EQ(single.losses.size(), rep.losses.size());
  for (size_t i = 0; i < single.losses.size(); ++i) {
    EXPECT_EQ(single.losses[i], rep.losses[i]) << "iteration " << i;
  }
  expect_params_match(rt, hyb);
}

TEST(HybridParallel, BucketSizeDoesNotChangeResults) {
  // One mega-bucket vs many tiny buckets: identical trajectories. The
  // bucket axis is pure overlap mechanics, never numerics.
  auto run = [](uint64_t bucket_bytes) {
    auto factory = [](int batch) { return graph::build_tiny_linear(batch, 16); };
    auto cfg = hybrid_config(2, 2, 4, 8, 4);
    cfg.schedule = dist::SchedulePolicy::k1F1B;
    cfg.bucket_bytes = bucket_bytes;
    dist::HybridParallelTrainer hyb(factory, parity_options(), cfg);
    return hyb.run().losses;
  };
  EXPECT_EQ(run(64ull << 20), run(128));
}

TEST(HybridParallel, OneF1BMatchesGPipeTrajectoryAndShrinksTheStash) {
  auto factory = [](int batch) { return graph::build_tiny_linear(batch); };
  auto make = [&](dist::SchedulePolicy pol) {
    auto cfg = hybrid_config(2, 2, 4, 8, 4);
    cfg.schedule = pol;
    return std::make_unique<dist::HybridParallelTrainer>(factory, parity_options(), cfg);
  };
  auto gpipe = make(dist::SchedulePolicy::kGPipe);
  auto f1b = make(dist::SchedulePolicy::k1F1B);
  // M=4 > S=2: 1F1B stashes min(M, S-s+1) = 2 slots, GPipe all 4.
  EXPECT_LT(f1b->stash_bytes(1), gpipe->stash_bytes(1));
  EXPECT_EQ(gpipe->run().losses, f1b->run().losses);
}

TEST(HybridParallel, OneF1BOverlapExposesLessAllreduceInSim) {
  // The overlap telemetry itself: with bucketed async all-reduce issued at
  // each stage's last backward, the exposed (non-overlapped) collective
  // time must not exceed the synchronous GPipe update's exposure.
  auto exposed = [](dist::SchedulePolicy pol) {
    auto factory = [](int batch) { return graph::build_vgg(16, batch); };
    core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
    o.real = false;
    dist::HybridParallelConfig cfg;
    cfg.stages = 4;
    cfg.replicas = 2;
    cfg.microbatches = 8;
    cfg.global_batch = 64;
    cfg.cluster = sim::pcie_cluster_spec(8);
    cfg.train = parity_train_config(2);
    cfg.schedule = pol;
    dist::HybridParallelTrainer hyb(factory, o, cfg);
    auto rep = hyb.run();
    return rep.stats.back().allreduce_exposed_seconds;
  };
  const double sync_exposed = exposed(dist::SchedulePolicy::kGPipe);
  const double overlap_exposed = exposed(dist::SchedulePolicy::k1F1B);
  EXPECT_GT(sync_exposed, 0.0);
  EXPECT_LT(overlap_exposed, sync_exposed);
}

TEST(HybridParallel, RejectsBadConfigs) {
  auto factory = [](int batch) { return graph::build_tiny_linear(batch); };
  core::RuntimeOptions o = parity_options();
  // Batch does not divide across replicas.
  EXPECT_THROW(dist::HybridParallelTrainer(factory, o, hybrid_config(2, 3, 1, 8, 1)),
               std::invalid_argument);
  // Shard does not divide into microbatches.
  EXPECT_THROW(dist::HybridParallelTrainer(factory, o, hybrid_config(2, 2, 3, 8, 1)),
               std::invalid_argument);
  // Boundary count must be stages - 1.
  auto cfg = hybrid_config(3, 2, 2, 8, 1);
  cfg.boundaries = {2};
  EXPECT_THROW(dist::HybridParallelTrainer(factory, o, cfg), std::invalid_argument);
  EXPECT_THROW(dist::HybridParallelTrainer(factory, o, hybrid_config(0, 2, 2, 8, 1)),
               std::invalid_argument);
}

}  // namespace
