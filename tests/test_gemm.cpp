// SGEMM correctness against a naive reference, over all transpose variants
// and alpha/beta combinations (parameterized sweep).
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "nn/gemm.hpp"
#include "util/rng.hpp"

namespace {

void reference_gemm(bool ta, bool tb, int m, int n, int k, float alpha, const float* a, int lda,
                    const float* b, int ldb, float beta, float* c, int ldc) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int kk = 0; kk < k; ++kk) {
        float av = ta ? a[kk * lda + i] : a[i * lda + kk];
        float bv = tb ? b[j * ldb + kk] : b[kk * ldb + j];
        acc += static_cast<double>(av) * bv;
      }
      c[i * ldc + j] = alpha * static_cast<float>(acc) + beta * c[i * ldc + j];
    }
  }
}

struct GemmCase {
  bool ta, tb;
  int m, n, k;
  float alpha, beta;
};

class GemmTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmTest, MatchesReference) {
  const auto p = GetParam();
  sn::util::Rng rng(42);
  int lda = p.ta ? p.m : p.k;
  int ldb = p.tb ? p.k : p.n;
  std::vector<float> a(static_cast<size_t>(p.ta ? p.k : p.m) * lda);
  std::vector<float> b(static_cast<size_t>(p.tb ? p.n : p.k) * ldb);
  std::vector<float> c(static_cast<size_t>(p.m) * p.n), ref;
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (auto& v : b) v = rng.uniform(-1, 1);
  for (auto& v : c) v = rng.uniform(-1, 1);
  ref = c;
  sn::nn::sgemm(p.ta, p.tb, p.m, p.n, p.k, p.alpha, a.data(), lda, b.data(), ldb, p.beta, c.data(),
                p.n);
  reference_gemm(p.ta, p.tb, p.m, p.n, p.k, p.alpha, a.data(), lda, b.data(), ldb, p.beta,
                 ref.data(), p.n);
  for (size_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c[i], ref[i], 1e-3f) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, GemmTest,
    ::testing::Values(GemmCase{false, false, 17, 23, 31, 1.0f, 0.0f},
                      GemmCase{false, false, 64, 64, 64, 1.0f, 1.0f},
                      GemmCase{false, false, 1, 1, 1, 2.0f, 0.5f},
                      GemmCase{true, false, 13, 19, 29, 1.0f, 0.0f},
                      GemmCase{false, true, 13, 19, 29, 1.0f, 0.0f},
                      GemmCase{true, true, 13, 19, 29, 1.0f, 0.0f},
                      GemmCase{false, false, 128, 3, 500, 1.0f, 0.0f},
                      GemmCase{true, false, 7, 300, 5, 0.5f, 1.0f},
                      GemmCase{false, true, 300, 7, 5, -1.0f, 0.0f}));

TEST(Gemm, ZeroSizeIsNoop) {
  float dummy = 3.0f;
  sn::nn::sgemm(false, false, 0, 0, 0, 1.0f, &dummy, 1, &dummy, 1, 0.0f, &dummy, 1);
  EXPECT_EQ(dummy, 3.0f);
}

TEST(Gemm, BetaZeroOverwritesGarbage) {
  // beta == 0 must not propagate NaNs from uninitialized C.
  std::vector<float> a{1, 2}, b{3, 4};
  std::vector<float> c{std::nanf(""), std::nanf("")};
  sn::nn::sgemm(false, false, 1, 2, 1, 1.0f, a.data(), 1, b.data(), 2, 0.0f, c.data(), 2);
  // a is 1x1 here (k=1): c = [1*3, 1*4]
  EXPECT_FLOAT_EQ(c[0], 3.0f);
  EXPECT_FLOAT_EQ(c[1], 4.0f);
}

}  // namespace
