// perf-trajectory gate semantics: an out-of-band regression fails and is
// named, an improvement passes, jitter inside the recorded noise band
// passes, dropped/renamed cells are named, malformed and mixed-schema input
// is rejected, and the legacy BENCH_6 shape normalizes into the same cell
// map as schema_version-1 points.
#include <gtest/gtest.h>

#include <string>

#include "perf/trajectory.hpp"
#include "util/json_reader.hpp"
#include "util/json_writer.hpp"

using namespace sn;
using perf::DeltaClass;
using perf::DiffOptions;
using perf::DiffReport;
using perf::TrajectoryError;
using perf::TrajectoryPoint;

namespace {

constexpr const char* kCellA = "sweep/VGG16/nvlink/s2r2m4/pool12/1f1b";
constexpr const char* kCellB = "sweep/ResNet50/nvlink/s2r2m4/pool12/gpipe";

/// One-cell metric block: {median, lo, hi, n} for seconds plus an info
/// byte counter.
std::string metrics(double sec, double lo, double hi, double bytes = 1e6) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                R"("metrics": {
  "seconds": { "median": %g, "lo": %g, "hi": %g, "n": 3 },
  "p2p_bytes": { "median": %g, "lo": %g, "hi": %g, "n": 3 }
})",
                sec, lo, hi, bytes, bytes, bytes);
  return buf;
}

/// A minimal schema_version-1 point with two sweep cells (VGG16 1f1b and
/// ResNet50 gpipe at s2r2m4/pool12).
std::string sweep_point(int point, const std::string& cell_a_metrics,
                        const std::string& cell_b_metrics, const char* b_net = "ResNet50") {
  std::string d = "{\n\"trajectory_point\": " + std::to_string(point) +
                  ",\n\"schema_version\": 1,\n\"sweep\": {\n"
                  "\"schema_version\": 1, \"kind\": \"sweep\", \"trajectory_point\": " +
                  std::to_string(point) +
                  ",\n\"tier\": \"small\", \"repeats\": 3, \"global_batch\": 32,\n"
                  "\"cells\": [\n"
                  "{ \"net\": \"VGG16\", \"link\": \"nvlink\", \"stages\": 2, \"replicas\": 2, "
                  "\"microbatches\": 4, \"pool_gb\": 12, \"schedule\": \"1f1b\", " +
                  cell_a_metrics +
                  " },\n"
                  "{ \"net\": \"" +
                  b_net +
                  "\", \"link\": \"nvlink\", \"stages\": 2, \"replicas\": 2, "
                  "\"microbatches\": 4, \"pool_gb\": 12, \"schedule\": \"gpipe\", " +
                  cell_b_metrics + " }\n]\n}\n}";
  return d;
}

TrajectoryPoint load(const std::string& text, const std::string& origin = "<test>") {
  return perf::load_trajectory(util::JsonValue::parse(text, origin), origin);
}

const std::string kBaseline =
    sweep_point(90, metrics(0.100, 0.099, 0.101), metrics(0.200, 0.198, 0.202));

}  // namespace

TEST(TrajectoryDiff, RegressionFailsAndNamesTheCell) {
  TrajectoryPoint base = load(kBaseline);
  TrajectoryPoint cand =
      load(sweep_point(91, metrics(0.130, 0.129, 0.131), metrics(0.200, 0.198, 0.202)));
  DiffReport rep = perf::diff_trajectories(base, cand, DiffOptions{});
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.regressions, 1);
  ASSERT_FALSE(rep.entries.empty());
  // Regressions rank first.
  EXPECT_EQ(rep.entries[0].cls, DeltaClass::kRegression);
  EXPECT_EQ(rep.entries[0].cell, kCellA);
  EXPECT_EQ(rep.entries[0].metric, "seconds");
  // The rendered table names both the cell and the verdict.
  std::string table = perf::render_diff_table(rep);
  EXPECT_NE(table.find(kCellA), std::string::npos);
  EXPECT_NE(table.find("TRAJECTORY REGRESSED"), std::string::npos);
}

TEST(TrajectoryDiff, ImprovementPasses) {
  TrajectoryPoint base = load(kBaseline);
  TrajectoryPoint cand =
      load(sweep_point(91, metrics(0.085, 0.0845, 0.0855), metrics(0.200, 0.198, 0.202)));
  DiffReport rep = perf::diff_trajectories(base, cand, DiffOptions{});
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.regressions, 0);
  EXPECT_EQ(rep.improvements, 1);
  EXPECT_NE(perf::render_diff_table(rep).find("TRAJECTORY OK"), std::string::npos);
}

TEST(TrajectoryDiff, JitterInsideRecordedDispersionPasses) {
  TrajectoryPoint base = load(kBaseline);
  // +0.5% moves on both cells: inside the 2% relative floor, and also inside
  // cell B's recorded 0.004 s spread.
  TrajectoryPoint cand =
      load(sweep_point(91, metrics(0.1005, 0.100, 0.101), metrics(0.2010, 0.199, 0.203)));
  DiffReport rep = perf::diff_trajectories(base, cand, DiffOptions{});
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.regressions, 0);
  EXPECT_EQ(rep.improvements, 0);
  EXPECT_EQ(rep.within_band, 2);
}

TEST(TrajectoryDiff, RecordedDispersionWidensTheBand) {
  // Baseline recorded a wide 10% envelope — a 6% move stays within band
  // even though it far exceeds the 2% relative floor.
  TrajectoryPoint base =
      load(sweep_point(90, metrics(0.100, 0.095, 0.105), metrics(0.200, 0.198, 0.202)));
  TrajectoryPoint cand =
      load(sweep_point(91, metrics(0.106, 0.105, 0.107), metrics(0.200, 0.198, 0.202)));
  DiffReport rep = perf::diff_trajectories(base, cand, DiffOptions{});
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.regressions, 0);
}

TEST(TrajectoryDiff, MissingCellFailsAndIsNamed) {
  TrajectoryPoint base = load(kBaseline);
  // Renamed net: cell B ("ResNet50") disappears, "ResNet50v2" appears.
  TrajectoryPoint cand = load(sweep_point(
      91, metrics(0.100, 0.099, 0.101), metrics(0.200, 0.198, 0.202), "ResNet50v2"));
  DiffReport rep = perf::diff_trajectories(base, cand, DiffOptions{});
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.removed, 1);
  EXPECT_EQ(rep.added, 1);
  bool named = false;
  for (const auto& e : rep.entries) {
    if (e.cls == DeltaClass::kRemoved && e.cell == kCellB) named = true;
  }
  EXPECT_TRUE(named) << "removed entry must carry the dropped cell key";
  // Baseline-refresh flows may intentionally drop coverage.
  DiffOptions tolerant;
  tolerant.allow_missing = true;
  EXPECT_TRUE(perf::diff_trajectories(base, cand, tolerant).ok);
}

TEST(TrajectoryDiff, InfoMetricsDriftWithoutFailing) {
  TrajectoryPoint base = load(kBaseline);
  TrajectoryPoint cand = load(sweep_point(91, metrics(0.100, 0.099, 0.101, 2e6),
                                          metrics(0.200, 0.198, 0.202)));
  DiffReport rep = perf::diff_trajectories(base, cand, DiffOptions{});
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.info_changed, 1);
}

TEST(TrajectoryDiff, MetricKindPolicy) {
  EXPECT_EQ(perf::metric_kind("seconds"), perf::MetricKind::kLowerBetter);
  EXPECT_EQ(perf::metric_kind("bubble_frac"), perf::MetricKind::kLowerBetter);
  EXPECT_EQ(perf::metric_kind("allreduce_exposed_seconds"), perf::MetricKind::kLowerBetter);
  EXPECT_EQ(perf::metric_kind("stall_ms_l3"), perf::MetricKind::kLowerBetter);
  EXPECT_EQ(perf::metric_kind("img_per_s"), perf::MetricKind::kHigherBetter);
  EXPECT_EQ(perf::metric_kind("overlap_ratio"), perf::MetricKind::kHigherBetter);
  EXPECT_EQ(perf::metric_kind("p2p_bytes"), perf::MetricKind::kInfo);
  EXPECT_EQ(perf::metric_kind("best_lookahead"), perf::MetricKind::kInfo);
}

TEST(TrajectoryDiff, MalformedInputRejected) {
  EXPECT_THROW(util::JsonValue::parse("{ truncated", "bad.json"), util::JsonError);
  // Well-formed JSON that is not a trajectory point: raw bench output must
  // be merged first, and the error says so.
  try {
    load(R"({"global_batch": 32, "configs": []})");
    FAIL() << "expected TrajectoryError";
  } catch (const TrajectoryError& e) {
    EXPECT_NE(std::string(e.what()).find("trajectory_point"), std::string::npos);
  }
}

TEST(TrajectoryDiff, MixedSchemaRejected) {
  // sweep section inside a legacy (unversioned) file.
  std::string mixed = sweep_point(90, metrics(0.1, 0.1, 0.1), metrics(0.2, 0.2, 0.2));
  mixed.replace(mixed.find("\"schema_version\": 1,\n"), 21, "");
  EXPECT_THROW(load(mixed), TrajectoryError);

  // v1 outer point whose sweep section claims a different generation.
  std::string skewed = sweep_point(90, metrics(0.1, 0.1, 0.1), metrics(0.2, 0.2, 0.2));
  skewed.replace(skewed.find("\"trajectory_point\": 90,\n\"schema_version\""), 23,
                 "\"trajectory_point\": 91,\n");
  EXPECT_THROW(load(skewed), TrajectoryError);

  // Future schema versions are rejected, not misread.
  std::string future = sweep_point(90, metrics(0.1, 0.1, 0.1), metrics(0.2, 0.2, 0.2));
  future.replace(future.find("\"schema_version\": 1"), 19, "\"schema_version\": 7");
  EXPECT_THROW(load(future), TrajectoryError);

  // schema_version 1 without the sweep section it promises.
  EXPECT_THROW(load(R"({"trajectory_point": 9, "schema_version": 1})"), TrajectoryError);

  // Unknown sections mean a newer or corrupted generation.
  EXPECT_THROW(load(R"({"trajectory_point": 6, "mystery": {}})"), TrajectoryError);
}

TEST(TrajectoryDiff, SweepStatsValidated) {
  // lo > median violates the dispersion invariant.
  EXPECT_THROW(load(sweep_point(90, metrics(0.1, 0.15, 0.2), metrics(0.2, 0.2, 0.2))),
               TrajectoryError);
}

TEST(TrajectoryDiff, LegacyBench6ShapeNormalizes) {
  const char* legacy = R"({
    "trajectory_point": 6,
    "pipeline_stages": {
      "global_batch": 32,
      "configs": [
        {"net": "VGG16", "schedule": "gpipe", "stages": 2, "microbatches": 4,
         "seconds": 2.0e-1, "bubble_seconds": 1.0e-2, "bubble_frac": 0.2,
         "p2p_bytes": 1000, "p2p_seconds": 1.0e-3},
        {"net": "VGG16", "schedule": "1f1b", "stages": 2, "microbatches": 4,
         "seconds": 1.8e-1, "bubble_seconds": 8.0e-3, "bubble_frac": 0.15,
         "p2p_bytes": 1000, "p2p_seconds": 1.0e-3}
      ]
    },
    "hybrid_grid": {
      "global_batch": 32,
      "configs": [
        {"net": "VGG16", "kind": "hybrid", "schedule": "1f1b", "stages": 2,
         "replicas": 2, "microbatches": 8, "seconds": 1.0e-1, "img_per_s": 320.0,
         "bubble_seconds": 5.0e-3, "allreduce_seconds": 2.0e-3,
         "allreduce_exposed_seconds": 0.0, "p2p_bytes": 2000}
      ]
    },
    "stream_overlap": {
      "micro": {"serialized_s": 1.0e-2, "dual_s": 6.0e-3, "d2h_seconds": 5.0e-3,
                "h2d_seconds": 5.0e-3, "overlap_ratio": 1.7},
      "nets": [
        {"name": "AlexNet", "batch": 128, "ok": true, "serialized_ms": 50.0,
         "dual_ms": 30.0, "d2h_seconds": 2.0e-2, "h2d_seconds": 2.0e-2}
      ]
    },
    "prefetch_lookahead": {
      "nets": [
        {"name": "AlexNet", "batch": 1024, "best_lookahead": 2,
         "stall_ms": [5.0, 2.0, 1.0, 1.5, 2.5]}
      ]
    }
  })";
  TrajectoryPoint p = load(legacy);
  EXPECT_EQ(p.point, 6);
  EXPECT_EQ(p.schema_version, 0);
  EXPECT_EQ(p.cells.count("pipeline_stages/VGG16/s2m4/1f1b"), 1u);
  EXPECT_EQ(p.cells.count("hybrid_grid/VGG16/hybrid/s2r2m8/1f1b"), 1u);
  EXPECT_EQ(p.cells.count("stream_overlap/micro"), 1u);
  EXPECT_EQ(p.cells.count("stream_overlap/AlexNet/b128"), 1u);
  EXPECT_EQ(p.cells.count("prefetch_lookahead/AlexNet/b1024"), 1u);
  // Legacy single-shot rows collapse to a degenerate envelope.
  const perf::MetricStat& s = p.cells["pipeline_stages/VGG16/s2m4/1f1b"]["seconds"];
  EXPECT_EQ(s.repeats, 1);
  EXPECT_DOUBLE_EQ(s.lo, s.hi);
  // Per-lookahead stalls fan out into gated stall_ms_l<k> metrics.
  EXPECT_EQ(p.cells["prefetch_lookahead/AlexNet/b1024"].count("stall_ms_l0"), 1u);
}

TEST(TrajectoryDiff, ReportRoundTripsAndPassesItsOwnSchemaCheck) {
  TrajectoryPoint base = load(kBaseline);
  TrajectoryPoint cand =
      load(sweep_point(91, metrics(0.130, 0.129, 0.131), metrics(0.200, 0.198, 0.202)));
  DiffReport rep = perf::diff_trajectories(base, cand, DiffOptions{});
  util::JsonWriter w;
  perf::write_diff_report(rep, DiffOptions{}, w);
  util::JsonValue doc = util::JsonValue::parse(w.str(), "<report>");
  EXPECT_EQ(doc.get("kind").as_string(), "trajectory_diff");
  EXPECT_EQ(doc.get("status").as_string(), "regressed");
  EXPECT_DOUBLE_EQ(doc.get("baseline_point").as_number(), 90.0);
  EXPECT_DOUBLE_EQ(doc.get("candidate_point").as_number(), 91.0);
  EXPECT_GE(doc.get("entries").size(), 1u);
  EXPECT_NO_THROW(perf::schema_check(doc, "diff_report", "<report>"));
}

TEST(TrajectoryDiff, SchemaCheckRejectsWrongKind) {
  util::JsonValue doc = util::JsonValue::parse(kBaseline, "<point>");
  EXPECT_NO_THROW(perf::schema_check(doc, "trajectory", "<point>"));
  EXPECT_THROW(perf::schema_check(doc, "pipeline_stages", "<point>"), TrajectoryError);
  EXPECT_THROW(perf::schema_check(doc, "nonsense_kind", "<point>"), TrajectoryError);
}
