// Unit tests for the util substrate: RNG determinism, stats, table printer,
// thread pool correctness.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/threadpool.hpp"

namespace {

using namespace sn::util;

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    float v = r.next_float();
    ASSERT_GE(v, 0.0f);
    ASSERT_LT(v, 1.0f);
  }
}

TEST(Rng, NormalMoments) {
  Rng r(11);
  Accumulator acc;
  for (int i = 0; i < 200000; ++i) acc.add(r.normal());
  EXPECT_NEAR(acc.mean(), 0.0, 0.02);
  EXPECT_NEAR(acc.stddev(), 1.0, 0.02);
}

TEST(Accumulator, BasicStats) {
  Accumulator a;
  for (double v : {1.0, 2.0, 3.0, 4.0}) a.add(v);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.5);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
  EXPECT_DOUBLE_EQ(a.sum(), 10.0);
  EXPECT_NEAR(a.stddev(), 1.2909944, 1e-6);
}

TEST(Stats, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1536), "1.50 KB");
  EXPECT_EQ(format_bytes(3ull << 30), "3.00 GB");
}

TEST(Stats, Percentile) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.5);
}

TEST(Table, RendersAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 22    |"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NE(t.to_string().find("| x |"), std::string::npos);
}

TEST(Series, RendersSharedAxis) {
  std::string s = render_series("title", "batch", {1, 2}, {{"y1", {0.5, 1.5}}, {"y2", {2.0, 3.0}}});
  EXPECT_NE(s.find("== title =="), std::string::npos);
  EXPECT_NE(s.find("batch"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, NestedInvocationsFromGlobal) {
  // Kernels call the global pool from bench/test threads repeatedly.
  auto& pool = ThreadPool::global();
  std::atomic<long> sum{0};
  for (int rep = 0; rep < 10; ++rep) {
    pool.parallel_for(0, 100, [&](size_t i) { sum.fetch_add(static_cast<long>(i)); });
  }
  EXPECT_EQ(sum.load(), 10 * 4950);
}

}  // namespace
