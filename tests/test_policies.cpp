// Policy preset tests: each framework-like preset must enable exactly the
// memory behaviours DESIGN.md attributes to it.
#include <gtest/gtest.h>

#include "core/options.hpp"

namespace {

using namespace sn::core;

TEST(Policies, SuperNeuronsEnablesEverything) {
  auto o = make_policy(PolicyPreset::kSuperNeurons);
  EXPECT_TRUE(o.use_liveness);
  EXPECT_TRUE(o.use_pool_allocator);
  EXPECT_TRUE(o.offload);
  EXPECT_TRUE(o.tensor_cache);
  EXPECT_EQ(o.recompute, RecomputeMode::kCostAware);
  EXPECT_TRUE(o.dynamic_workspace);
  EXPECT_TRUE(o.pinned_host);
  EXPECT_TRUE(o.async_transfers);
}

TEST(Policies, CaffeIsFullyStaticWithBufferReuse) {
  auto o = make_policy(PolicyPreset::kCaffeLike);
  EXPECT_FALSE(o.use_liveness);
  EXPECT_FALSE(o.use_pool_allocator);  // cudaMalloc model
  EXPECT_FALSE(o.offload);
  EXPECT_EQ(o.recompute, RecomputeMode::kNone);
  EXPECT_FALSE(o.dynamic_workspace);
  EXPECT_TRUE(o.reuse_grad_buffers);  // §2.2: fwd tensors reused for bwd
  EXPECT_FALSE(o.inplace_act);
}

TEST(Policies, TorchAddsInplaceActivations) {
  auto o = make_policy(PolicyPreset::kTorchLike);
  EXPECT_TRUE(o.reuse_grad_buffers);
  EXPECT_TRUE(o.inplace_act);
  EXPECT_FALSE(o.offload);
}

TEST(Policies, MxnetRecomputesButNeverSwaps) {
  auto o = make_policy(PolicyPreset::kMxnetLike);
  EXPECT_TRUE(o.use_liveness);
  EXPECT_EQ(o.recompute, RecomputeMode::kSpeedCentric);  // uniform, §2.2
  EXPECT_FALSE(o.offload);
  EXPECT_FALSE(o.tensor_cache);
}

TEST(Policies, TensorFlowSwapsThroughPageableMemory) {
  auto o = make_policy(PolicyPreset::kTfLike);
  EXPECT_TRUE(o.offload);
  EXPECT_FALSE(o.pinned_host);  // the ">= 50% of communication speed" claim
  EXPECT_FALSE(o.tensor_cache);
  EXPECT_EQ(o.recompute, RecomputeMode::kNone);
}

TEST(Policies, BaselineDisablesAllTechniques) {
  auto o = make_policy(PolicyPreset::kBaselineNaive);
  EXPECT_FALSE(o.use_liveness);
  EXPECT_FALSE(o.offload);
  EXPECT_FALSE(o.tensor_cache);
  EXPECT_EQ(o.recompute, RecomputeMode::kNone);
  EXPECT_FALSE(o.reuse_grad_buffers);
}

TEST(Policies, DeviceSpecPropagates) {
  auto spec = sn::sim::titan_xp_spec();
  auto o = make_policy(PolicyPreset::kSuperNeurons, spec);
  EXPECT_EQ(o.spec.name, "TITANXp-sim");
  EXPECT_EQ(o.device_capacity, spec.dram_bytes);
}

TEST(Policies, NamesAreStable) {
  EXPECT_STREQ(policy_name(PolicyPreset::kCaffeLike), "Caffe");
  EXPECT_STREQ(policy_name(PolicyPreset::kSuperNeurons), "SuperNeurons");
  EXPECT_STREQ(recompute_mode_name(RecomputeMode::kCostAware), "cost-aware");
  EXPECT_STREQ(recompute_mode_name(RecomputeMode::kNone), "none");
}

}  // namespace
