// Convolution algorithm tests: every algorithm must agree with the direct
// reference on its supported geometries (this is the property the paper's
// dynamic algorithm selection relies on — any feasible algorithm is
// interchangeable), plus workspace/efficiency metadata sanity.
#include <gtest/gtest.h>

#include <vector>

#include "nn/conv.hpp"
#include "util/rng.hpp"

namespace {

using namespace sn::nn;

struct ConvCase {
  int n, c, h, w, k, kh, kw, stride, pad;
};

std::vector<float> random_vec(size_t n, uint64_t seed) {
  sn::util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.uniform(-1, 1);
  return v;
}

ConvDesc make_desc(const ConvCase& p) {
  ConvDesc d;
  d.n = p.n;
  d.c = p.c;
  d.h = p.h;
  d.w = p.w;
  d.k = p.k;
  d.kh = p.kh;
  d.kw = p.kw;
  d.stride_h = d.stride_w = p.stride;
  d.pad_h = d.pad_w = p.pad;
  return d;
}

class ConvAlgoAgreement : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvAlgoAgreement, AllSupportedAlgosMatchDirect) {
  ConvDesc d = make_desc(GetParam());
  auto x = random_vec(d.in_elems(), 1);
  auto w = random_vec(d.weight_elems(), 2);
  auto b = random_vec(static_cast<size_t>(d.k), 3);
  std::vector<float> y_ref(d.out_elems());
  conv_forward(d, ConvAlgo::kDirect, x.data(), w.data(), b.data(), y_ref.data(), nullptr);

  for (ConvAlgo algo : {ConvAlgo::kIm2colGemm, ConvAlgo::kWinograd, ConvAlgo::kFftTiled}) {
    if (!conv_algo_supported(d, algo)) continue;
    std::vector<float> ws(conv_workspace_bytes(d, algo, ConvPass::kForward) / sizeof(float) + 1);
    std::vector<float> y(d.out_elems(), -99.0f);
    conv_forward(d, algo, x.data(), w.data(), b.data(), y.data(), ws.data());
    for (size_t i = 0; i < y.size(); ++i) {
      ASSERT_NEAR(y[i], y_ref[i], 2e-3f) << algo_name(algo) << " at " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvAlgoAgreement,
    ::testing::Values(ConvCase{1, 1, 5, 5, 1, 3, 3, 1, 1},      // minimal 3x3
                      ConvCase{2, 3, 8, 8, 4, 3, 3, 1, 1},      // winograd-eligible
                      ConvCase{2, 3, 9, 7, 4, 3, 3, 1, 0},      // odd sizes, no pad
                      ConvCase{1, 2, 8, 8, 3, 3, 3, 2, 1},      // strided (no winograd/fft)
                      ConvCase{2, 3, 11, 11, 4, 5, 5, 1, 2},    // 5x5
                      ConvCase{1, 4, 7, 7, 2, 1, 1, 1, 0},      // 1x1 pointwise
                      ConvCase{1, 2, 9, 9, 3, 7, 7, 1, 3},      // 7x7
                      ConvCase{1, 3, 6, 10, 2, 1, 7, 1, 0},     // asymmetric 1x7
                      ConvCase{1, 3, 10, 6, 2, 7, 1, 1, 0},     // asymmetric 7x1
                      ConvCase{3, 5, 13, 13, 7, 3, 3, 1, 1}));  // larger batch

TEST(ConvAlgo, SupportEnvelope) {
  ConvDesc d3 = make_desc({1, 3, 8, 8, 4, 3, 3, 1, 1});
  EXPECT_TRUE(conv_algo_supported(d3, ConvAlgo::kWinograd));
  EXPECT_TRUE(conv_algo_supported(d3, ConvAlgo::kFftTiled));

  ConvDesc strided = make_desc({1, 3, 8, 8, 4, 3, 3, 2, 1});
  EXPECT_FALSE(conv_algo_supported(strided, ConvAlgo::kWinograd));
  EXPECT_FALSE(conv_algo_supported(strided, ConvAlgo::kFftTiled));
  EXPECT_TRUE(conv_algo_supported(strided, ConvAlgo::kDirect));
  EXPECT_TRUE(conv_algo_supported(strided, ConvAlgo::kIm2colGemm));

  ConvDesc d5 = make_desc({1, 3, 8, 8, 4, 5, 5, 1, 2});
  EXPECT_FALSE(conv_algo_supported(d5, ConvAlgo::kWinograd));
}

TEST(ConvAlgo, WorkspaceOrdering) {
  // The paper's premise: direct needs none, FFT needs the most.
  ConvDesc d = make_desc({32, 64, 56, 56, 64, 3, 3, 1, 1});
  uint64_t ws_direct = conv_workspace_bytes(d, ConvAlgo::kDirect, ConvPass::kForward);
  uint64_t ws_im2col = conv_workspace_bytes(d, ConvAlgo::kIm2colGemm, ConvPass::kForward);
  uint64_t ws_fft = conv_workspace_bytes(d, ConvAlgo::kFftTiled, ConvPass::kForward);
  EXPECT_EQ(ws_direct, 0u);
  EXPECT_GT(ws_im2col, 0u);
  EXPECT_GE(ws_fft, ws_im2col);
}

TEST(ConvAlgo, EfficiencyOrdering) {
  ConvDesc d3 = make_desc({32, 64, 56, 56, 64, 3, 3, 1, 1});
  // 3x3: winograd > im2col > direct; fft beats im2col too but trails winograd.
  double direct = conv_algo_efficiency(d3, ConvAlgo::kDirect, ConvPass::kForward);
  double im2col = conv_algo_efficiency(d3, ConvAlgo::kIm2colGemm, ConvPass::kForward);
  double wino = conv_algo_efficiency(d3, ConvAlgo::kWinograd, ConvPass::kForward);
  double fft = conv_algo_efficiency(d3, ConvAlgo::kFftTiled, ConvPass::kForward);
  EXPECT_LT(direct, im2col);
  EXPECT_LT(im2col, wino);
  EXPECT_LT(fft, wino);
  // 7x7 stride 1: FFT becomes the fastest (cuDNN-like behaviour).
  ConvDesc d7 = make_desc({32, 64, 56, 56, 64, 7, 7, 1, 3});
  EXPECT_GT(conv_algo_efficiency(d7, ConvAlgo::kFftTiled, ConvPass::kForward),
            conv_algo_efficiency(d7, ConvAlgo::kIm2colGemm, ConvPass::kForward));
}

TEST(ConvAlgo, BackwardEfficiencyDiscounted) {
  ConvDesc d = make_desc({1, 3, 8, 8, 4, 3, 3, 1, 1});
  EXPECT_LT(conv_algo_efficiency(d, ConvAlgo::kIm2colGemm, ConvPass::kBackwardData),
            conv_algo_efficiency(d, ConvAlgo::kIm2colGemm, ConvPass::kForward));
}

TEST(ConvAlgo, FlopCount) {
  ConvDesc d = make_desc({2, 3, 8, 8, 4, 3, 3, 1, 1});
  // 2 * N*K*C*KH*KW*OH*OW = 2*2*4*3*3*3*8*8
  EXPECT_DOUBLE_EQ(conv_flops(d, ConvPass::kForward), 2.0 * 2 * 4 * 3 * 9 * 64);
}

TEST(ConvBackward, Im2colMatchesDirect) {
  ConvDesc d = make_desc({2, 3, 8, 8, 4, 3, 3, 1, 1});
  auto x = random_vec(d.in_elems(), 1);
  auto w = random_vec(d.weight_elems(), 2);
  auto dy = random_vec(d.out_elems(), 3);

  std::vector<float> dx_ref(d.in_elems(), 0.0f), dx(d.in_elems(), 0.0f);
  std::vector<float> dw_ref(d.weight_elems()), dw(d.weight_elems());
  std::vector<float> db_ref(d.k), db(d.k);
  std::vector<float> ws(conv_workspace_bytes(d, ConvAlgo::kIm2colGemm, ConvPass::kBackwardData) /
                            sizeof(float) +
                        1);

  conv_backward_data(d, ConvAlgo::kDirect, w.data(), dy.data(), dx_ref.data(), nullptr);
  conv_backward_data(d, ConvAlgo::kIm2colGemm, w.data(), dy.data(), dx.data(), ws.data());
  for (size_t i = 0; i < dx.size(); ++i) ASSERT_NEAR(dx[i], dx_ref[i], 2e-3f);

  conv_backward_filter(d, ConvAlgo::kDirect, x.data(), dy.data(), dw_ref.data(), db_ref.data(),
                       nullptr);
  conv_backward_filter(d, ConvAlgo::kIm2colGemm, x.data(), dy.data(), dw.data(), db.data(),
                       ws.data());
  for (size_t i = 0; i < dw.size(); ++i) ASSERT_NEAR(dw[i], dw_ref[i], 2e-3f);
  for (size_t i = 0; i < db.size(); ++i) ASSERT_NEAR(db[i], db_ref[i], 2e-3f);
}

class ConvBackwardSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvBackwardSweep, Im2colBackwardMatchesDirect) {
  ConvDesc d = make_desc(GetParam());
  auto x = random_vec(d.in_elems(), 5);
  auto w = random_vec(d.weight_elems(), 6);
  auto dy = random_vec(d.out_elems(), 7);
  std::vector<float> dx_ref(d.in_elems(), 0.0f), dx(d.in_elems(), 0.0f);
  std::vector<float> dw_ref(d.weight_elems()), dw(d.weight_elems());
  std::vector<float> db_ref(d.k), db(d.k);
  std::vector<float> ws(conv_workspace_bytes(d, ConvAlgo::kIm2colGemm, ConvPass::kBackwardData) /
                            sizeof(float) +
                        1);
  conv_backward_data(d, ConvAlgo::kDirect, w.data(), dy.data(), dx_ref.data(), nullptr);
  conv_backward_data(d, ConvAlgo::kIm2colGemm, w.data(), dy.data(), dx.data(), ws.data());
  conv_backward_filter(d, ConvAlgo::kDirect, x.data(), dy.data(), dw_ref.data(), db_ref.data(),
                       nullptr);
  conv_backward_filter(d, ConvAlgo::kIm2colGemm, x.data(), dy.data(), dw.data(), db.data(),
                       ws.data());
  for (size_t i = 0; i < dx.size(); ++i) ASSERT_NEAR(dx[i], dx_ref[i], 3e-3f) << "dx@" << i;
  for (size_t i = 0; i < dw.size(); ++i) ASSERT_NEAR(dw[i], dw_ref[i], 3e-3f) << "dw@" << i;
  for (size_t i = 0; i < db.size(); ++i) ASSERT_NEAR(db[i], db_ref[i], 3e-3f) << "db@" << i;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvBackwardSweep,
    ::testing::Values(ConvCase{1, 1, 5, 5, 1, 3, 3, 1, 1}, ConvCase{2, 3, 8, 8, 4, 3, 3, 1, 1},
                      ConvCase{1, 2, 8, 8, 3, 3, 3, 2, 1}, ConvCase{2, 3, 11, 11, 4, 5, 5, 1, 2},
                      ConvCase{1, 4, 7, 7, 2, 1, 1, 1, 0}, ConvCase{1, 3, 6, 10, 2, 1, 7, 1, 0},
                      ConvCase{3, 5, 9, 9, 7, 3, 3, 2, 0}));

TEST(Im2col, Col2imIsTheAdjoint) {
  // <im2col(x), c> == <x, col2im(c)> for all x, c — the defining property of
  // the backward-data lowering.
  Conv2dGeom g{3, 6, 7, 3, 3, 2, 1, 1, 2};
  const size_t xn = static_cast<size_t>(g.c) * g.h * g.w;
  const size_t cn = static_cast<size_t>(g.c) * g.kh * g.kw * g.out_h() * g.out_w();
  auto x = random_vec(xn, 31);
  auto c = random_vec(cn, 32);
  std::vector<float> col(cn, 0.0f), back(xn, 0.0f);
  im2col(g, x.data(), col.data());
  col2im(g, c.data(), back.data());
  double lhs = 0, rhs = 0;
  for (size_t i = 0; i < cn; ++i) lhs += static_cast<double>(col[i]) * c[i];
  for (size_t i = 0; i < xn; ++i) rhs += static_cast<double>(x[i]) * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-3 * std::max(1.0, std::abs(lhs)));
}

TEST(ConvBackward, DataGradAccumulates) {
  ConvDesc d = make_desc({1, 2, 6, 6, 2, 3, 3, 1, 1});
  auto w = random_vec(d.weight_elems(), 2);
  auto dy = random_vec(d.out_elems(), 3);
  std::vector<float> once(d.in_elems(), 0.0f), twice(d.in_elems(), 0.0f);
  conv_backward_data(d, ConvAlgo::kDirect, w.data(), dy.data(), once.data(), nullptr);
  conv_backward_data(d, ConvAlgo::kDirect, w.data(), dy.data(), twice.data(), nullptr);
  conv_backward_data(d, ConvAlgo::kDirect, w.data(), dy.data(), twice.data(), nullptr);
  for (size_t i = 0; i < once.size(); ++i) ASSERT_NEAR(twice[i], 2.0f * once[i], 1e-4f);
}

}  // namespace
