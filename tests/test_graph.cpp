// Graph tests: Algorithm 1 route construction (incl. the paper's Fig. 6
// nested-fan example), shape inference, dependency sets, step mirroring, and
// zoo structural properties (ResNet depth formula, AlexNet layer sequence).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/net.hpp"
#include "graph/zoo.hpp"

namespace {

using namespace sn::graph;
namespace tensor = sn::tensor;

// Paper Fig. 6: a -> {b, c, d} nested fans; e joins b/c; i joins e/g/h.
//   a -> b -> e ; a -> c -> e ; a -> d -> f -> {g,h} -> i ; e -> i ; i -> j
// Built with concat joins over identical spatial shapes.
TEST(Route, NestedFansFollowAlgorithm1) {
  Net net;
  Layer* a = net.data("a", tensor::Shape{1, 1, 4, 4});
  Layer* b = net.relu("b", a);
  Layer* c = net.relu("c", a);
  Layer* d = net.relu("d", a);
  Layer* e = net.concat("e", {b, c});
  Layer* f = net.relu("f", d);
  Layer* g = net.relu("g", f);
  Layer* h = net.relu("h", f);
  Layer* i = net.concat("i", {e, g, h});
  Layer* j = net.fc("j", i, 2);
  Layer* sm = net.softmax_loss("sm", j);
  net.finalize();

  const auto& route = net.route();
  ASSERT_EQ(route.size(), 11u);
  std::map<const Layer*, size_t> pos;
  for (size_t k = 0; k < route.size(); ++k) pos[route[k]] = k;

  // Join layers appear only after all of their inputs.
  EXPECT_GT(pos[e], pos[b]);
  EXPECT_GT(pos[e], pos[c]);
  EXPECT_GT(pos[i], pos[e]);
  EXPECT_GT(pos[i], pos[g]);
  EXPECT_GT(pos[i], pos[h]);
  EXPECT_GT(pos[j], pos[i]);
  EXPECT_GT(pos[sm], pos[j]);
  EXPECT_EQ(pos[a], 0u);
}

TEST(Route, DfsExploresFirstBranchFirst) {
  Net net;
  Layer* a = net.data("a", tensor::Shape{1, 1, 4, 4});
  Layer* b = net.relu("b", a);
  Layer* c = net.relu("c", b);
  Layer* d = net.relu("d", a);  // second branch
  Layer* e = net.concat("e", {c, d});
  net.softmax_loss("sm", net.fc("f", e, 2));
  net.finalize();
  const auto& r = net.route();
  // DFS: a, b, c, (e blocked), back to d, then e.
  EXPECT_EQ(r[0]->name(), "a");
  EXPECT_EQ(r[1]->name(), "b");
  EXPECT_EQ(r[2]->name(), "c");
  EXPECT_EQ(r[3]->name(), "d");
  EXPECT_EQ(r[4]->name(), "e");
}

TEST(Route, StepsMirrorForwardAndBackward) {
  auto net = build_tiny_linear(2);
  const auto& steps = net->steps();
  size_t n = net->num_layers();
  ASSERT_EQ(steps.size(), 2 * n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(steps[i].forward);
    EXPECT_FALSE(steps[2 * n - 1 - i].forward);
    EXPECT_EQ(steps[i].layer, steps[2 * n - 1 - i].layer);  // mirrored
    EXPECT_EQ(steps[i].index, static_cast<int>(i));
  }
}

TEST(Shapes, ConvPoolFcChain) {
  auto net = build_tiny_linear(4, 8, 10);
  // DATA (4,3,8,8) -> CONV 8ch 3x3 p1 -> (4,8,8,8) -> POOL 2 -> (4,8,4,4)
  // -> FC 10 -> (4,10,1,1)
  const auto& r = net->route();
  EXPECT_EQ(r[0]->out_shape(), (tensor::Shape{4, 3, 8, 8}));
  EXPECT_EQ(r[1]->out_shape(), (tensor::Shape{4, 8, 8, 8}));
  EXPECT_EQ(r[3]->out_shape(), (tensor::Shape{4, 8, 4, 4}));
  EXPECT_EQ(r[4]->out_shape(), (tensor::Shape{4, 10, 1, 1}));
}

TEST(Shapes, ConcatSumsChannels) {
  auto net = build_tiny_fanjoin(2, 8, 4);
  for (const auto& l : net->layers()) {
    if (l->type() == LayerType::kConcat) {
      EXPECT_EQ(l->out_shape().c, 16);  // 8 + 8
    }
  }
}

TEST(Deps, ConvBackwardUsesInputWeightAndGrad) {
  auto net = build_tiny_linear(2);
  Layer* conv = nullptr;
  for (const auto& l : net->layers())
    if (l->type() == LayerType::kConv) conv = l.get();
  ASSERT_NE(conv, nullptr);
  auto uses = conv->backward_uses();
  std::set<const sn::tensor::Tensor*> u(uses.begin(), uses.end());
  EXPECT_TRUE(u.count(conv->prevs()[0]->output()));   // x
  EXPECT_TRUE(u.count(conv->params()[0]));            // W
  EXPECT_TRUE(u.count(conv->output_grad()));          // dy
  EXPECT_FALSE(u.count(conv->output()));              // y NOT needed
}

TEST(Deps, DataAndLossHaveNoOutputGrad) {
  auto net = build_tiny_linear(2);
  EXPECT_EQ(net->input_layer()->output_grad(), nullptr);
  EXPECT_EQ(net->loss_layer()->output_grad(), nullptr);
  // But interior layers do.
  for (const auto& l : net->layers()) {
    if (l->type() != LayerType::kData && l->type() != LayerType::kSoftmax) {
      EXPECT_NE(l->output_grad(), nullptr) << l->name();
    }
  }
}

TEST(Deps, FanoutConsumersShareProducerGrad) {
  auto net = build_tiny_fanjoin(2);
  Layer* d = net->input_layer();
  ASSERT_EQ(d->nexts().size(), 2u);  // the fork
  // Both conv branches list DATA's output in forward_uses.
  for (Layer* consumer : d->nexts()) {
    auto uses = consumer->forward_uses();
    EXPECT_NE(std::find(uses.begin(), uses.end(), d->output()), uses.end());
  }
}

TEST(Zoo, AlexNetLayerSequence) {
  auto net = build_alexnet(2, 67, 10);  // small spatial size keeps it light
  // Paper footnote: 23 layers + DATA = 24.
  EXPECT_EQ(net->num_layers(), 24u);
  int convs = 0, fcs = 0, lrns = 0, dropouts = 0, pools = 0;
  for (const auto& l : net->layers()) {
    switch (l->type()) {
      case LayerType::kConv: ++convs; break;
      case LayerType::kFc: ++fcs; break;
      case LayerType::kLrn: ++lrns; break;
      case LayerType::kDropout: ++dropouts; break;
      case LayerType::kPool: ++pools; break;
      default: break;
    }
  }
  EXPECT_EQ(convs, 5);
  EXPECT_EQ(fcs, 3);
  EXPECT_EQ(lrns, 2);
  EXPECT_EQ(dropouts, 2);
  EXPECT_EQ(pools, 3);
}

TEST(Zoo, ResNetDepthFormula) {
  EXPECT_EQ(resnet_depth(3, 4, 6, 3), 50);
  EXPECT_EQ(resnet_depth(3, 4, 23, 3), 101);
  EXPECT_EQ(resnet_depth(3, 8, 36, 3), 152);
}

TEST(Zoo, ResNet50HasExpectedConvCount) {
  auto net = build_resnet_preset(50, 1, 64, 10);
  int convs = 0, elts = 0;
  for (const auto& l : net->layers()) {
    if (l->type() == LayerType::kConv) ++convs;
    if (l->type() == LayerType::kEltwise) ++elts;
  }
  // 16 bottlenecks * 3 convs + 4 projections + stem = 53; 16 joins.
  EXPECT_EQ(convs, 53);
  EXPECT_EQ(elts, 16);
}

TEST(Zoo, VggDepthVariants) {
  auto v16 = build_vgg(16, 1, 32, 10);
  auto v19 = build_vgg(19, 1, 32, 10);
  auto count_convs = [](const Net& n) {
    int c = 0;
    for (const auto& l : n.layers())
      if (l->type() == LayerType::kConv) ++c;
    return c;
  };
  EXPECT_EQ(count_convs(*v16), 13);
  EXPECT_EQ(count_convs(*v19), 16);
  EXPECT_THROW(build_vgg(11, 1), std::invalid_argument);
}

TEST(Zoo, InceptionV4IsDeeplyNonlinear) {
  auto net = build_inception_v4(1, 299, 10);
  int concats = 0;
  size_t basic = 0;
  for (const auto& l : net->layers()) {
    if (l->type() == LayerType::kConcat) ++concats;
    ++basic;
  }
  EXPECT_GT(concats, 15);   // stem(3) + 4A + 2 reductions + 7B + 3C
  EXPECT_GT(basic, 400u);   // paper: 515 basic layers
  // Every concat joins >= 2 branches.
  for (const auto& l : net->layers()) {
    if (l->type() == LayerType::kConcat) {
      EXPECT_GE(l->prevs().size(), 2u);
    }
  }
}

TEST(Zoo, DenseNetHasFullJoins) {
  auto net = build_densenet121(1, 64, 10);
  // Dense connectivity: concat layers whose input count grows with depth is
  // modeled here as chained concats; check the layer mix instead.
  int concats = 0;
  for (const auto& l : net->layers())
    if (l->type() == LayerType::kConcat) ++concats;
  EXPECT_EQ(concats, 6 + 12 + 24 + 16);
}

TEST(Zoo, DeepResNetScalesToThousandsOfLayers) {
  // Table 4 regime: n3 large. Keep it quick but prove route construction
  // and finalize() handle 10^3-layer graphs without recursion issues.
  auto net = build_resnet(6, 32, 100, 6, 1, 64, 10);
  EXPECT_GT(net->num_layers(), 1000u);
  EXPECT_EQ(net->route().size(), net->num_layers());
}

TEST(Net, BaselineAndMaxLayerBytes) {
  auto net = build_tiny_linear(2);
  EXPECT_GT(net->total_tensor_bytes(), 0u);
  EXPECT_GT(net->max_layer_bytes(), 0u);
  EXPECT_LT(net->max_layer_bytes(), net->total_tensor_bytes());
}

TEST(Net, ProducerStepsRecorded) {
  auto net = build_tiny_linear(2);
  for (const auto& step : net->steps()) {
    if (!step.forward) continue;
    for (auto* t : step.layer->forward_defs()) {
      EXPECT_EQ(t->producer_step, step.index);
    }
  }
}

}  // namespace
