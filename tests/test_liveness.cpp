// Liveness Analysis tests (paper §3.2, Fig. 5): in/out set semantics,
// free-after lists, persistence of parameters, and the O(N²) bookkeeping.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/liveness.hpp"
#include "graph/zoo.hpp"

namespace {

using namespace sn;
using core::Liveness;

bool contains(const std::vector<uint64_t>& v, uint64_t uid) {
  return std::find(v.begin(), v.end(), uid) != v.end();
}

TEST(Liveness, EveryUsedTensorHasAnInterval) {
  auto net = graph::build_mini_alexnet(2);
  Liveness lv(*net);
  for (const auto& t : net->registry().all()) {
    if (lv.is_persistent(t->uid())) continue;
    if (lv.first_occurrence(t->uid()) >= 0) {
      EXPECT_LE(lv.first_occurrence(t->uid()), lv.last_occurrence(t->uid()));
    }
  }
}

TEST(Liveness, ParamsArePersistent) {
  auto net = graph::build_mini_alexnet(2);
  Liveness lv(*net);
  for (const auto& t : net->registry().all()) {
    bool is_param = t->kind() == tensor::TensorKind::kParam ||
                    t->kind() == tensor::TensorKind::kParamGrad;
    EXPECT_EQ(lv.is_persistent(t->uid()), is_param) << t->name();
    if (is_param) {
      // Persistent tensors never appear in free lists.
      for (int s = 0; s < lv.num_steps(); ++s) {
        EXPECT_FALSE(contains(lv.free_after(s), t->uid()));
      }
    }
  }
}

TEST(Liveness, InitialInSetEmptyFinalOutSetEmpty) {
  // Fig. 5: step 0's in set and the last step's out set are empty.
  auto net = graph::build_tiny_fanjoin(2);
  Liveness lv(*net);
  EXPECT_TRUE(lv.in_set(0).empty());
  EXPECT_TRUE(lv.out_set(lv.num_steps() - 1).empty());
}

TEST(Liveness, InOutSetsEvolveConsistently) {
  auto net = graph::build_tiny_fanjoin(2);
  Liveness lv(*net);
  for (int s = 0; s < lv.num_steps(); ++s) {
    auto in = lv.in_set(s);
    auto out = lv.out_set(s);
    // out(s) = in(s) + defs(s) - freed(s); equivalently out(s) ⊆ in ∪ defs.
    std::set<uint64_t> allowed(in.begin(), in.end());
    for (uint64_t uid : lv.defs(s)) allowed.insert(uid);
    for (uint64_t uid : out) EXPECT_TRUE(allowed.count(uid)) << "step " << s;
    // in(s+1) == out(s) (liveness is a pure step function).
    if (s + 1 < lv.num_steps()) {
      auto in_next = lv.in_set(s + 1);
      EXPECT_EQ(std::set<uint64_t>(in_next.begin(), in_next.end()),
                std::set<uint64_t>(out.begin(), out.end()))
          << "step " << s;
    }
  }
}

TEST(Liveness, UsesAreLiveWhenUsed) {
  // No step may use a tensor outside its live interval (safety property).
  auto net = graph::build_tiny_resnet(2, 2);
  Liveness lv(*net);
  for (int s = 0; s < lv.num_steps(); ++s) {
    for (uint64_t uid : lv.uses(s)) {
      if (lv.is_persistent(uid)) continue;
      EXPECT_LE(lv.first_occurrence(uid), s);
      EXPECT_GE(lv.last_occurrence(uid), s);
    }
  }
}

TEST(Liveness, FreeAfterPartitionsTensors) {
  // Every non-persistent used tensor is freed exactly once.
  auto net = graph::build_mini_alexnet(2);
  Liveness lv(*net);
  std::set<uint64_t> freed;
  for (int s = 0; s < lv.num_steps(); ++s) {
    for (uint64_t uid : lv.free_after(s)) {
      EXPECT_TRUE(freed.insert(uid).second) << "double free of uid " << uid;
      EXPECT_EQ(lv.last_occurrence(uid), s);
    }
  }
  for (const auto& t : net->registry().all()) {
    if (!lv.is_persistent(t->uid()) && lv.first_occurrence(t->uid()) >= 0) {
      EXPECT_TRUE(freed.count(t->uid())) << t->name() << " never freed";
    }
  }
}

TEST(Liveness, JoinDependenciesExtendLifetimes) {
  // In the fan/join net, DATA's output is used by both branches, so it must
  // stay live past the first branch's forward step (paper Fig. 3c: t0 lives
  // until the join's backward completes).
  auto net = graph::build_tiny_fanjoin(2);
  Liveness lv(*net);
  uint64_t data_out = net->input_layer()->output()->uid();
  // Both CONV branches' backward passes use it (conv filter grad needs x).
  int n = static_cast<int>(net->route().size());
  EXPECT_GT(lv.last_occurrence(data_out), n) << "data tensor must survive into backward";
}

TEST(Liveness, QuadraticChecksMatchFormula) {
  auto net = graph::build_tiny_linear(2);
  Liveness lv(*net);
  uint64_t n = static_cast<uint64_t>(lv.num_steps());
  EXPECT_EQ(lv.quadratic_checks(), n * (n - 1) / 2);
}

}  // namespace
