// Forward-only (inference) scheduling tests, plus activation-kind dependency
// coverage: sigmoid/tanh keep their outputs alive into backward while ReLU
// keeps its input — the scheduler must honour both shapes.
#include <gtest/gtest.h>

#include <numeric>

#include "core/liveness.hpp"
#include "core/runtime.hpp"
#include "graph/zoo.hpp"
#include "train/dataset.hpp"
#include "train/trainer.hpp"

namespace {

using namespace sn;
namespace tensor = sn::tensor;

core::RuntimeOptions real_opts(uint64_t cap) {
  core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
  o.real = true;
  o.device_capacity = cap;
  o.host_capacity = 64ull << 20;
  return o;
}

TEST(Inference, ForwardPeakFarBelowTraining) {
  auto net1 = graph::build_alexnet(64);
  auto net2 = graph::build_alexnet(64);
  core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
  o.real = false;
  o.allow_workspace = false;
  o.device_capacity = 48ull << 30;
  uint64_t persistent = 0;
  for (const auto& t : net1->registry().all()) {
    if (t->kind() == tensor::TensorKind::kParam || t->kind() == tensor::TensorKind::kParamGrad)
      persistent += t->bytes();
  }
  core::Runtime train_rt(*net1, o);
  core::Runtime infer_rt(*net2, o);
  auto train_st = train_rt.train_iteration(nullptr, nullptr);
  auto infer_st = infer_rt.forward_iteration(nullptr, nullptr);
  // Compare the *scheduled* (non-persistent) footprint: params and their
  // grads stay resident in both modes by design.
  EXPECT_LT(infer_st.peak_mem - persistent, (train_st.peak_mem - persistent) / 2);
  EXPECT_LT(infer_st.seconds, train_st.seconds);
}

TEST(Inference, ProbabilitiesAreValidDistributions) {
  auto net = graph::build_tiny_linear(4, 8, 5);
  core::Runtime rt(*net, real_opts(16ull << 20));
  train::SyntheticDataset ds(tensor::Shape{1, 3, 8, 8}, 5, 7);
  std::vector<float> data(4 * 3 * 64);
  std::vector<int32_t> labels(4);
  ds.fill_batch(4, 0, data.data(), labels.data());
  std::vector<float> probs;
  auto st = rt.forward_iteration(data.data(), labels.data(), &probs);
  ASSERT_EQ(probs.size(), 4u * 5u);
  for (int i = 0; i < 4; ++i) {
    double row = 0;
    for (int c = 0; c < 5; ++c) {
      EXPECT_GE(probs[i * 5 + c], 0.0f);
      row += probs[i * 5 + c];
    }
    EXPECT_NEAR(row, 1.0, 1e-4);
  }
  EXPECT_GT(st.loss, 0.0);
}

TEST(Inference, MatchesTrainingForwardLoss) {
  // The forward pass of an iteration and a pure inference pass over the same
  // weights and batch must report the same loss.
  auto make = [] {
    auto net = graph::build_tiny_linear(4, 8, 5);
    auto rt = std::make_unique<core::Runtime>(*net, real_opts(16ull << 20));
    return std::pair(std::move(net), std::move(rt));
  };
  auto [net1, rt1] = make();
  auto [net2, rt2] = make();
  train::SyntheticDataset ds(tensor::Shape{1, 3, 8, 8}, 5, 7);
  std::vector<float> data(4 * 3 * 64);
  std::vector<int32_t> labels(4);
  ds.fill_batch(4, 0, data.data(), labels.data());
  auto t = rt1->train_iteration(data.data(), labels.data());
  auto f = rt2->forward_iteration(data.data(), labels.data());
  EXPECT_EQ(t.loss, f.loss);
}

TEST(Inference, RepeatedCallsAreStable) {
  auto net = graph::build_mini_alexnet(4);
  core::Runtime rt(*net, real_opts(32ull << 20));
  train::SyntheticDataset ds(tensor::Shape{1, 3, 16, 16}, 8, 7);
  std::vector<float> data(4 * 3 * 256);
  std::vector<int32_t> labels(4);
  ds.fill_batch(4, 0, data.data(), labels.data());
  auto a = rt.forward_iteration(data.data(), labels.data());
  auto b = rt.forward_iteration(data.data(), labels.data());
  EXPECT_EQ(a.loss, b.loss);
  EXPECT_EQ(a.peak_mem, b.peak_mem);
}

TEST(ActKinds, DependencyShapesDiffer) {
  graph::Net net;
  auto* d = net.data("d", tensor::Shape{2, 3, 8, 8});
  auto* c = net.conv("c", d, 4, 3, 1, 1);
  auto* r = net.relu("r", c);
  auto* s = net.sigmoid("s", r);
  auto* t = net.tanh_act("t", s);
  net.softmax_loss("sm", net.fc("f", t, 3));
  net.finalize();

  auto uses_of = [](const graph::Layer* l) {
    return const_cast<graph::Layer*>(l)->backward_uses();
  };
  // ReLU backward reads its input (conv output).
  auto ru = uses_of(r);
  EXPECT_NE(std::find(ru.begin(), ru.end(), c->output()), ru.end());
  EXPECT_EQ(std::find(ru.begin(), ru.end(), r->output()), ru.end());
  // Sigmoid/tanh backward read their own outputs.
  auto su = uses_of(s);
  EXPECT_NE(std::find(su.begin(), su.end(), s->output()), su.end());
  auto tu = uses_of(t);
  EXPECT_NE(std::find(tu.begin(), tu.end(), t->output()), tu.end());
}

TEST(ActKinds, SigmoidTanhNetworkTrains) {
  graph::Net net;
  auto* d = net.data("d", tensor::Shape{8, 3, 8, 8});
  auto* c = net.conv("c1", d, 8, 3, 1, 1);
  auto* s = net.sigmoid("sig", c);
  auto* p = net.pool_max("p", s, 2, 2);
  auto* f1 = net.fc("f1", p, 16);
  auto* th = net.tanh_act("tanh", f1);
  net.softmax_loss("sm", net.fc("f2", th, 4));
  net.finalize();

  core::Runtime rt(net, real_opts(16ull << 20));
  train::Trainer trainer(rt, {.iterations = 30, .lr = 0.1f, .momentum = 0.9f});
  auto rep = trainer.run();
  EXPECT_LT(rep.last_loss(), rep.first_loss());
}

TEST(ActKinds, SigmoidTanhInvariantUnderPressure) {
  auto build = [] {
    auto net = std::make_unique<graph::Net>();
    auto* d = net->data("d", tensor::Shape{4, 3, 8, 8});
    auto* c = net->conv("c1", d, 8, 3, 1, 1);
    auto* s = net->sigmoid("sig", c);
    auto* c2 = net->conv("c2", s, 8, 3, 1, 1);
    auto* th = net->tanh_act("tanh", c2);
    net->softmax_loss("sm", net->fc("f", th, 4));
    net->finalize();
    return net;
  };
  auto run = [&](uint64_t cap) {
    auto net = build();
    auto o = real_opts(cap);
    o.allow_workspace = false;
    core::Runtime rt(*net, o);
    train::Trainer trainer(rt, {.iterations = 4, .lr = 0.05f});
    auto rep = trainer.run();
    return rep.losses;
  };
  auto ample = run(32ull << 20);
  auto tight = run(300ull << 10);
  EXPECT_EQ(ample, tight);
}

}  // namespace
