// obs tracing tests (ISSUE 7): the recording hooks, the analyzer's
// reconciliation contract against IterationStats / machine counters, flow
// pairing, deterministic export, metrics pinning, the telemetry cap, and —
// load-bearing under TSan — concurrent DMA-worker wall-chunk recording.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "core/transfer_engine.hpp"
#include "dist/hybrid_parallel.hpp"
#include "dist/pipeline_parallel.hpp"
#include "graph/zoo.hpp"
#include "mem/host_pool.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_analyzer.hpp"
#include "train/trainer.hpp"

namespace {

using namespace sn;

core::RuntimeOptions parity_options() {
  core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
  o.real = true;
  o.device_capacity = 32ull << 20;
  o.allow_workspace = false;
  return o;
}

train::TrainConfig train_config(int iterations) {
  train::TrainConfig tc;
  tc.iterations = iterations;
  tc.lr = 0.05f;
  tc.momentum = 0.9f;
  return tc;
}

dist::PipelineParallelConfig pipe_config(int stages, int microbatches, int global_batch,
                                         int iterations, dist::SchedulePolicy policy) {
  dist::PipelineParallelConfig cfg;
  cfg.stages = stages;
  cfg.microbatches = microbatches;
  cfg.global_batch = global_batch;
  cfg.schedule = policy;
  cfg.cluster = sim::pcie_cluster_spec(stages);
  cfg.train = train_config(iterations);
  return cfg;
}

dist::HybridParallelConfig hybrid_config(int stages, int replicas, int microbatches,
                                         int global_batch, int iterations,
                                         dist::SchedulePolicy policy) {
  dist::HybridParallelConfig cfg;
  cfg.stages = stages;
  cfg.replicas = replicas;
  cfg.microbatches = microbatches;
  cfg.global_batch = global_batch;
  cfg.schedule = policy;
  cfg.cluster = sim::pcie_cluster_spec(stages * replicas);
  cfg.train = train_config(iterations);
  return cfg;
}

/// Sum span durations of one kind (optionally one stall source) per device.
double sum_spans(const std::vector<obs::TraceSpan>& spans, obs::SpanKind kind,
                 obs::StallSource src = obs::StallSource::kNone) {
  double s = 0.0;
  for (const auto& sp : spans) {
    if (sp.kind != kind) continue;
    if (kind == obs::SpanKind::kStall && src != obs::StallSource::kNone && sp.stall != src) {
      continue;
    }
    s += sp.vend - sp.vbegin;
  }
  return s;
}

}  // namespace

// --- recorder mechanics -----------------------------------------------------

TEST(TraceRecorder, RingEvictsOldestAndCountsDrops) {
  obs::TraceRecorder rec(/*capacity=*/8);  // 8 is also the enforced floor
  rec.set_ids(0, -1, -1);
  for (int i = 0; i < 12; ++i) {
    rec.record_compute(static_cast<double>(i), static_cast<double>(i) + 0.5);
  }
  const auto spans = rec.spans();
  ASSERT_EQ(spans.size(), 8u);
  EXPECT_EQ(rec.dropped(), 4u);
  // Oldest-first: the survivors are the last eight records.
  EXPECT_DOUBLE_EQ(spans.front().vbegin, 4.0);
  EXPECT_DOUBLE_EQ(spans.back().vbegin, 11.0);
}

TEST(TraceRecorder, ZeroDurationWaitRecordsOnlyWhenConsumingFlow) {
  obs::TraceRecorder rec;
  rec.set_ids(0, -1, -1);
  rec.record_wait(1.0, 1.0);  // no time passed, no flow: dropped
  EXPECT_TRUE(rec.spans().empty());
  rec.set_stall_context(obs::StallSource::kPipelineRecv, "recv_act", "steady", 3,
                        obs::flow_id_p2p(7, 0));
  rec.record_wait(2.0, 2.0);  // zero-duration but flow-consuming: recorded
  rec.clear_stall_context();
  const auto spans = rec.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].kind, obs::SpanKind::kStall);
  EXPECT_EQ(spans[0].stall, obs::StallSource::kPipelineRecv);
  EXPECT_EQ(spans[0].flow_in, obs::flow_id_p2p(7, 0));
  EXPECT_EQ(spans[0].microbatch, 3);
  EXPECT_EQ(spans[0].phase, "steady");
  // The flow is one-shot: a second zero-duration wait records nothing.
  rec.record_wait(3.0, 3.0);
  EXPECT_EQ(rec.spans().size(), 1u);
}

TEST(TraceRecorder, FlowIdNamespacesAreDisjoint) {
  // P2P ids live below the collective high bit, so a trainer tag can never
  // collide with a bucket flow.
  EXPECT_NE(obs::flow_id_p2p(5, 2), obs::flow_id_collective(5, 2));
  EXPECT_NE(obs::flow_id_p2p(1, 0), obs::flow_id_p2p(1, 1));
  EXPECT_NE(obs::flow_id_collective(0, 0), obs::flow_id_collective(0, 1));
}

// --- single-device reconciliation -------------------------------------------

TEST(TraceAnalyzer, SingleDeviceSpansAccountForEveryComputeStreamSecond) {
  // Capacity squeezed so offload/prefetch traffic flows and real stalls
  // occur; every compute-stream advance must land in exactly one span.
  auto net = graph::build_tiny_linear(8);
  core::RuntimeOptions o = parity_options();
  core::Runtime rt(*net, o);

  obs::TraceSession session;
  obs::TraceRecorder& rec = session.recorder_for(0);
  rec.set_ids(0, -1, -1);
  rt.machine().set_trace(&rec);
  const auto c0 = rt.machine().counters();
  const double t0 = rt.machine().now();

  core::IterationStats st = rt.train_iteration(nullptr, nullptr);

  const auto c1 = rt.machine().counters();
  const auto spans = rec.spans();
  EXPECT_NEAR(sum_spans(spans, obs::SpanKind::kCompute), c1.compute_time - c0.compute_time,
              1e-12);
  EXPECT_NEAR(sum_spans(spans, obs::SpanKind::kAlloc), c1.malloc_time - c0.malloc_time, 1e-12);
  EXPECT_NEAR(sum_spans(spans, obs::SpanKind::kStall), c1.stall_time - c0.stall_time, 1e-12);
  EXPECT_NEAR(sum_spans(spans, obs::SpanKind::kD2H), c1.seconds_d2h - c0.seconds_d2h, 1e-12);
  EXPECT_NEAR(sum_spans(spans, obs::SpanKind::kH2D), c1.seconds_h2d - c0.seconds_h2d, 1e-12);
  // IterationStats' own scalars are the same quantities.
  EXPECT_NEAR(sum_spans(spans, obs::SpanKind::kStall), st.stall_seconds, 1e-12);
  EXPECT_NEAR(sum_spans(spans, obs::SpanKind::kAlloc), st.malloc_seconds, 1e-12);
  // Completeness: compute + alloc + stall == total clock motion.
  const double motion = rt.machine().now() - t0;
  EXPECT_NEAR(sum_spans(spans, obs::SpanKind::kCompute) +
                  sum_spans(spans, obs::SpanKind::kAlloc) +
                  sum_spans(spans, obs::SpanKind::kStall),
              motion, 1e-12);
  rt.machine().set_trace(nullptr);
}

// --- pipeline / hybrid reconciliation ---------------------------------------

TEST(TraceAnalyzer, PipelineBubbleReconcilesWithIterationStats) {
  for (auto policy : {dist::SchedulePolicy::kGPipe, dist::SchedulePolicy::k1F1B}) {
    auto factory = [](int batch) { return graph::build_tiny_linear(batch); };
    dist::PipelineParallelTrainer pipe(factory, parity_options(),
                                       pipe_config(2, 4, 8, 2, policy));
    obs::TraceSession session;
    pipe.attach_trace(&session);
    auto rep = pipe.run();
    pipe.attach_trace(nullptr);

    obs::TraceAnalyzer an(session);
    const obs::Attribution total = an.total();
    double bubble = 0.0, fill = 0.0, steady = 0.0, drain = 0.0;
    for (const auto& st : rep.stats) {
      bubble += st.bubble_seconds;
      fill += st.bubble_fill_seconds;
      steady += st.bubble_steady_seconds;
      drain += st.bubble_drain_seconds;
    }
    EXPECT_NEAR(total.bubble_seconds, bubble, 1e-12) << dist::schedule_policy_name(policy);
    EXPECT_NEAR(total.bubble_fill_seconds, fill, 1e-12);
    EXPECT_NEAR(total.bubble_steady_seconds, steady, 1e-12);
    EXPECT_NEAR(total.bubble_drain_seconds, drain, 1e-12);
    EXPECT_TRUE(an.unmatched_flows().empty()) << dist::schedule_policy_name(policy);
    EXPECT_GT(an.flows_produced(), 0u);
  }
}

TEST(TraceAnalyzer, HybridGridReconcilesAndPairsEveryFlow) {
  // The acceptance geometry: 2x2 grid, 4 microbatches, 1F1B bucketed
  // all-reduce — P2P flows AND collective flows in one trace.
  auto factory = [](int batch) { return graph::build_tiny_linear(batch); };
  dist::HybridParallelTrainer hyb(factory, parity_options(),
                                  hybrid_config(2, 2, 4, 8, 2, dist::SchedulePolicy::k1F1B));
  obs::TraceSession session;
  hyb.attach_trace(&session);
  auto rep = hyb.run();
  hyb.attach_trace(nullptr);

  obs::TraceAnalyzer an(session);
  ASSERT_EQ(session.devices().size(), 4u);
  EXPECT_TRUE(an.unmatched_flows().empty());
  EXPECT_EQ(an.flows_produced(), an.flows_consumed());
  EXPECT_GT(an.flows_produced(), 0u);

  double bubble = 0.0;
  for (const auto& st : rep.stats) bubble += st.bubble_seconds;
  EXPECT_NEAR(an.total().bubble_seconds, bubble, 1e-12);
  // Exposed collective anchors on the LAST drain-end marker, so it matches
  // the final iteration's scalar exactly.
  EXPECT_NEAR(an.exposed_collective_seconds(), rep.stats.back().allreduce_exposed_seconds,
              1e-12);
  EXPECT_GT(an.drain_end(), 0.0);

  // The critical path must be non-empty and strictly time-ordered.
  const auto path = an.critical_path();
  ASSERT_FALSE(path.empty());
  for (size_t i = 1; i < path.size(); ++i) {
    EXPECT_LE(path[i - 1].vbegin, path[i].vbegin + 1e-12);
  }
}

TEST(TraceAnalyzer, GpipeExposesCollectiveAndOneFOneBOverlapsIt) {
  // The overlap audit the bench gates on, reproduced from spans alone:
  // GPipe's post-drain synchronous all-reduce is fully exposed; 1F1B's
  // bucketed issue overlaps the drain and must expose no more.
  auto factory = [](int batch) { return graph::build_tiny_linear(batch); };
  double exposed[2] = {0.0, 0.0};
  int i = 0;
  for (auto policy : {dist::SchedulePolicy::kGPipe, dist::SchedulePolicy::k1F1B}) {
    dist::HybridParallelTrainer hyb(factory, parity_options(),
                                    hybrid_config(2, 2, 4, 8, 1, policy));
    obs::TraceSession session;
    hyb.attach_trace(&session);
    auto rep = hyb.run();
    hyb.attach_trace(nullptr);
    obs::TraceAnalyzer an(session);
    EXPECT_NEAR(an.exposed_collective_seconds(), rep.stats.back().allreduce_exposed_seconds,
                1e-12)
        << dist::schedule_policy_name(policy);
    exposed[i++] = an.exposed_collective_seconds();
  }
  EXPECT_GT(exposed[0], 0.0);          // gpipe: all-reduce past the drain
  EXPECT_LE(exposed[1], exposed[0]);   // 1f1b: bucket overlap hides some/all
}

// --- determinism and parity -------------------------------------------------

TEST(ChromeTrace, VirtualClockExportIsByteIdenticalAcrossRuns) {
  auto run_once = [](std::string* out) {
    auto factory = [](int batch) { return graph::build_tiny_linear(batch); };
    dist::HybridParallelTrainer hyb(factory, parity_options(),
                                    hybrid_config(2, 2, 4, 8, 2, dist::SchedulePolicy::k1F1B));
    obs::TraceSession session;
    hyb.attach_trace(&session);
    hyb.run();
    hyb.attach_trace(nullptr);
    obs::ChromeTraceOptions opts;
    opts.include_wall = false;  // strip wall stamps + DMA chunk rows
    *out = obs::export_chrome_trace(session, opts);
  };
  std::string a, b;
  run_once(&a);
  run_once(&b);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.find("wall_us"), std::string::npos);
  EXPECT_EQ(a.find("dma_chunk"), std::string::npos);

  // Every flow start must have a matching finish, event for event.
  size_t starts = 0, finishes = 0, pos = 0;
  while ((pos = a.find("\"ph\": \"s\"", pos)) != std::string::npos) ++starts, pos += 9;
  pos = 0;
  while ((pos = a.find("\"ph\": \"f\"", pos)) != std::string::npos) ++finishes, pos += 9;
  EXPECT_GT(starts, 0u);
  EXPECT_EQ(starts, finishes);
}

TEST(Trace, RecordingDoesNotPerturbTrainingOrSchedule) {
  // Bit-parity guard: a traced run must produce the same losses AND the same
  // virtual-clock scalars as an untraced one.
  auto factory = [](int batch) { return graph::build_tiny_linear(batch); };
  auto cfg = hybrid_config(2, 2, 4, 8, 3, dist::SchedulePolicy::k1F1B);

  dist::HybridParallelTrainer plain(factory, parity_options(), cfg);
  auto rep_plain = plain.run();

  dist::HybridParallelTrainer traced(factory, parity_options(), cfg);
  obs::TraceSession session;
  traced.attach_trace(&session);
  auto rep_traced = traced.run();
  traced.attach_trace(nullptr);

  ASSERT_EQ(rep_plain.losses.size(), rep_traced.losses.size());
  for (size_t i = 0; i < rep_plain.losses.size(); ++i) {
    EXPECT_EQ(rep_plain.losses[i], rep_traced.losses[i]) << "iteration " << i;
    EXPECT_EQ(rep_plain.stats[i].seconds, rep_traced.stats[i].seconds);
    EXPECT_EQ(rep_plain.stats[i].bubble_seconds, rep_traced.stats[i].bubble_seconds);
    EXPECT_EQ(rep_plain.stats[i].allreduce_exposed_seconds,
              rep_traced.stats[i].allreduce_exposed_seconds);
  }
}

// --- metrics ----------------------------------------------------------------

TEST(Metrics, StallHistogramBoundsArePinned) {
  const auto& bounds = obs::TraceAnalyzer::stall_histogram_bounds();
  const std::vector<double> expect = {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1};
  ASSERT_EQ(bounds, expect);

  obs::MetricsRegistry m;
  m.histogram_observe("stall_duration_seconds", bounds, 5e-7);   // bucket 0
  m.histogram_observe("stall_duration_seconds", bounds, 5e-4);   // bucket 3
  m.histogram_observe("stall_duration_seconds", bounds, 0.5);    // overflow
  const obs::Histogram* h = m.histogram("stall_duration_seconds");
  ASSERT_NE(h, nullptr);
  ASSERT_EQ(h->counts.size(), bounds.size() + 1);
  EXPECT_EQ(h->counts[0], 1u);
  EXPECT_EQ(h->counts[3], 1u);
  EXPECT_EQ(h->counts[6], 1u);
  EXPECT_EQ(h->total, 3u);
  EXPECT_NEAR(h->sum, 5e-7 + 5e-4 + 0.5, 1e-15);
}

TEST(Metrics, AnalyzerFillsCountersGaugesAndHistogram) {
  auto factory = [](int batch) { return graph::build_tiny_linear(batch); };
  dist::PipelineParallelTrainer pipe(factory, parity_options(),
                                     pipe_config(2, 4, 8, 1, dist::SchedulePolicy::kGPipe));
  obs::TraceSession session;
  pipe.attach_trace(&session);
  pipe.run();
  pipe.attach_trace(nullptr);

  obs::TraceAnalyzer an(session);
  obs::MetricsRegistry m;
  an.fill_metrics(m);
  EXPECT_GT(m.counter("spans.compute"), 0u);
  EXPECT_GT(m.counter("flows.produced"), 0u);
  EXPECT_EQ(m.counter("flows.produced"), m.counter("flows.consumed"));
  EXPECT_EQ(m.counter("flows.unmatched"), 0u);
  EXPECT_NEAR(m.gauge("attr.bubble_seconds"), an.total().bubble_seconds, 0.0);
  const obs::Histogram* h = m.histogram("stall_duration_seconds");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->total, m.counter("spans.stall"));
}

TEST(Metrics, PrometheusExpositionIsPinned) {
  // The scrape surface (ISSUE 10): sn_ prefix, '.'->'_' sanitization, # TYPE
  // lines, and CUMULATIVE histogram buckets with the +Inf overflow row.
  EXPECT_EQ(obs::MetricsRegistry::prometheus_name("spans.compute"), "sn_spans_compute");
  EXPECT_EQ(obs::MetricsRegistry::prometheus_name("attr.bubble-s"), "sn_attr_bubble_s");

  obs::MetricsRegistry m;
  m.counter_add("spans.compute", 3);
  m.gauge_set("attr.bubble_seconds", 0.25);
  m.histogram_observe("stall_duration_seconds", {1e-3, 1e-2}, 5e-4);  // bucket 0
  m.histogram_observe("stall_duration_seconds", {1e-3, 1e-2}, 5e-4);  // bucket 0
  m.histogram_observe("stall_duration_seconds", {1e-3, 1e-2}, 5e-3);  // bucket 1
  m.histogram_observe("stall_duration_seconds", {1e-3, 1e-2}, 0.5);   // overflow
  const std::string text = m.to_prometheus();
  EXPECT_NE(text.find("# TYPE sn_spans_compute counter\nsn_spans_compute 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE sn_attr_bubble_seconds gauge\nsn_attr_bubble_seconds 0.25\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE sn_stall_duration_seconds histogram\n"), std::string::npos);
  // Cumulative: 2 at le=1e-3, 3 at le=1e-2, all 4 at +Inf.
  EXPECT_NE(text.find("sn_stall_duration_seconds_bucket{le=\"0.001\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("sn_stall_duration_seconds_bucket{le=\"0.01\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("sn_stall_duration_seconds_bucket{le=\"+Inf\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("sn_stall_duration_seconds_count 4\n"), std::string::npos);
  // Deterministic: a second render is byte-identical.
  EXPECT_EQ(m.to_prometheus(), text);
}

// --- telemetry cap (satellite) ----------------------------------------------

TEST(Telemetry, RetainedStepTelemetryHonorsCapacity) {
  auto net = graph::build_tiny_linear(8);
  core::Runtime rt(*net, parity_options());
  rt.set_retain_telemetry(true);
  rt.set_telemetry_capacity(10);
  rt.train_iteration(nullptr, nullptr);
  rt.train_iteration(nullptr, nullptr);
  EXPECT_LE(rt.step_telemetry().size(), 10u);
  EXPECT_GT(rt.telemetry_dropped(), 0u);
  // The cap keeps the NEWEST steps: the retained window is the tail.
  const auto& tele = rt.step_telemetry();
  for (size_t i = 1; i < tele.size(); ++i) {
    EXPECT_GE(tele[i].step, tele[i - 1].step);
  }

  // Default (capacity 0) is unbounded — current behavior preserved.
  auto net2 = graph::build_tiny_linear(8);
  core::Runtime rt2(*net2, parity_options());
  rt2.set_retain_telemetry(true);
  rt2.train_iteration(nullptr, nullptr);
  EXPECT_EQ(rt2.telemetry_dropped(), 0u);
}

// --- DMA-worker wall chunks (TSan target) ------------------------------------

TEST(Trace, DmaWorkersRecordWallChunksConcurrently) {
  // Tiny staging buffers force the pipelined chunk loop: both per-direction
  // DMA workers record wall-chunk spans concurrently with schedule-thread
  // machine spans — the data-race surface TSan pins down.
  sim::Machine m(sim::k40c_spec());
  mem::HostPool hp(64 << 20, /*pinned=*/true, /*backed=*/true);
  core::DmaTransferEngine eng(m, true, hp, /*staging_bytes=*/4096);
  obs::TraceSession session;
  obs::TraceRecorder& rec = session.recorder_for(0);
  rec.set_ids(0, -1, -1);
  m.set_trace(&rec);

  const size_t n = (1 << 18) / sizeof(float) + 13;
  std::vector<float> d2h_src(n, 1.0f), d2h_dst(n, 0.0f);
  std::vector<float> h2d_src(n, 2.0f), h2d_dst(n, 0.0f);
  eng.submit(core::TransferDir::kD2H, 1, d2h_src.data(), d2h_dst.data(), n * sizeof(float));
  eng.submit(core::TransferDir::kH2D, 2, h2d_src.data(), h2d_dst.data(), n * sizeof(float));
  m.run_compute(0.01);  // schedule-side recording in parallel with the workers
  eng.wait(core::TransferDir::kD2H, 1);
  eng.wait(core::TransferDir::kH2D, 2);
  m.set_trace(nullptr);
  EXPECT_EQ(d2h_dst, d2h_src);
  EXPECT_EQ(h2d_dst, h2d_src);

  const auto chunks = rec.wall_chunks();
  ASSERT_FALSE(chunks.empty());
  for (const auto& c : chunks) {
    EXPECT_GE(c.wend, c.wbegin);
    EXPECT_GT(c.bytes, 0u);
  }
  // Sorted (stream, seq, chunk) per the export contract.
  for (size_t i = 1; i < chunks.size(); ++i) {
    const auto &a = chunks[i - 1], &b = chunks[i];
    EXPECT_TRUE(a.stream < b.stream || (a.stream == b.stream && a.seq < b.seq) ||
                (a.stream == b.stream && a.seq == b.seq && a.chunk <= b.chunk));
  }
  // The wall ring never leaks into the deterministic export.
  obs::ChromeTraceOptions opts;
  opts.include_wall = false;
  EXPECT_EQ(obs::export_chrome_trace(session, opts).find("dma_chunk"), std::string::npos);
  // ...but the wall export carries them.
  EXPECT_NE(obs::export_chrome_trace(session).find("dma_chunk"), std::string::npos);
}
