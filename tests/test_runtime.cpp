// Runtime integration tests — the repository's central invariants:
//
//   1. Training works (loss decreases) under the full SuperNeurons policy.
//   2. NUMERICS INVARIANCE: scheduling (offload, eviction, recomputation,
//      workspace choices) never changes training results — final weights are
//      bit-identical between an unconstrained run and a memory-starved run.
//   3. Capacity safety: device in-use bytes never exceed the configured
//      capacity; impossible configurations raise OomError instead.
//   4. The paper's peak-memory laws: baseline > liveness > +offload >
//      +recomputation, with the final peak == max_i(l_i) at layer level.
//   5. Table-3 property: with the Tensor Cache and enough DRAM, an
//      iteration performs zero transfers.
#include <gtest/gtest.h>

#include <map>

#include "core/runtime.hpp"
#include "graph/zoo.hpp"
#include "train/trainer.hpp"

namespace {

using namespace sn;
using core::PolicyPreset;
using core::RuntimeOptions;

RuntimeOptions real_opts(uint64_t capacity) {
  RuntimeOptions o = core::make_policy(PolicyPreset::kSuperNeurons);
  o.real = true;
  o.device_capacity = capacity;
  o.host_capacity = 64ull << 20;
  return o;
}

/// Snapshot of every parameter after training.
std::map<std::string, std::vector<float>> param_snapshot(core::Runtime& rt) {
  std::map<std::string, std::vector<float>> snap;
  for (const auto& l : rt.net().layers()) {
    for (const auto* p : l->params()) snap[p->name()] = rt.read_tensor(p);
  }
  return snap;
}

TEST(Runtime, TrainingDecreasesLoss) {
  auto net = graph::build_mini_alexnet(8);
  core::Runtime rt(*net, real_opts(64ull << 20));
  train::Trainer trainer(rt, {.iterations = 30, .lr = 0.05f, .momentum = 0.9f});
  auto report = trainer.run();
  EXPECT_GT(report.first_loss(), 0.5 * std::log(8.0));  // near-chance at start
  EXPECT_LT(report.last_loss(), 0.7 * report.first_loss()) << "loss did not decrease";
}

TEST(Runtime, NumericsInvariantUnderMemoryPressure) {
  // The flagship property test. Identical seeds and data; wildly different
  // memory conditions; the final weights must match bit-for-bit.
  // The conv algorithm is pinned across runs: like cuDNN's algorithms, ours
  // have different summation orders, and the invariant under test is that
  // MEMORY SCHEDULING (offload/evict/recompute) changes nothing.
  auto run_with = [](RuntimeOptions opts) {
    opts.allow_workspace = false;
    auto net = graph::build_mini_alexnet(4);
    core::Runtime rt(*net, opts);
    train::Trainer trainer(rt, {.iterations = 5, .lr = 0.02f, .momentum = 0.9f});
    trainer.run();
    return param_snapshot(rt);
  };

  // Reference: effectively unlimited memory.
  auto reference = run_with(real_opts(64ull << 20));
  ASSERT_FALSE(reference.empty());

  // Starved: small capacity forces offload + eviction + recomputation.
  auto tight_opts = real_opts(0);
  {
    auto probe = graph::build_mini_alexnet(4);
    uint64_t params = 0;
    for (const auto& t : probe->registry().all()) {
      if (t->kind() == tensor::TensorKind::kParam ||
          t->kind() == tensor::TensorKind::kParamGrad)
        params += t->bytes();
    }
    tight_opts.device_capacity = params + 6 * probe->max_layer_bytes();
  }
  auto starved = run_with(tight_opts);

  ASSERT_EQ(reference.size(), starved.size());
  for (const auto& [name, ref] : reference) {
    const auto& got = starved.at(name);
    ASSERT_EQ(ref.size(), got.size()) << name;
    for (size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(ref[i], got[i]) << name << " diverged at element " << i;
    }
  }
}

TEST(Runtime, NumericsInvariantAcrossRecomputeModes) {
  auto run_mode = [](core::RecomputeMode mode) {
    auto net = graph::build_tiny_resnet(4, 2);
    RuntimeOptions o = real_opts(64ull << 20);
    o.recompute = mode;
    o.allow_workspace = false;  // pin conv algorithm; vary only scheduling
    core::Runtime rt(*net, o);
    train::Trainer trainer(rt, {.iterations = 4, .lr = 0.02f});
    trainer.run();
    return param_snapshot(rt);
  };
  auto none = run_mode(core::RecomputeMode::kNone);
  for (auto mode : {core::RecomputeMode::kSpeedCentric, core::RecomputeMode::kMemoryCentric,
                    core::RecomputeMode::kCostAware}) {
    auto got = run_mode(mode);
    for (const auto& [name, ref] : none) {
      const auto& g = got.at(name);
      for (size_t i = 0; i < ref.size(); ++i) {
        ASSERT_EQ(ref[i], g[i]) << core::recompute_mode_name(mode) << " " << name << "@" << i;
      }
    }
  }
}

TEST(Runtime, AlgoChoiceDivergenceIsBounded) {
  // With dynamic workspaces enabled, a memory-starved run may legitimately
  // pick different conv algorithms (different summation order, like cuDNN);
  // the results must still agree to float tolerance.
  auto run_with = [](uint64_t capacity) {
    auto net = graph::build_mini_alexnet(4);
    RuntimeOptions o = real_opts(capacity);
    core::Runtime rt(*net, o);
    train::Trainer trainer(rt, {.iterations = 4, .lr = 0.02f, .momentum = 0.9f});
    trainer.run();
    return param_snapshot(rt);
  };
  auto ample = run_with(64ull << 20);
  auto probe = graph::build_mini_alexnet(4);
  uint64_t params = 0;
  for (const auto& t : probe->registry().all()) {
    if (t->kind() == tensor::TensorKind::kParam || t->kind() == tensor::TensorKind::kParamGrad)
      params += t->bytes();
  }
  auto tight = run_with(params + 6 * probe->max_layer_bytes());
  for (const auto& [name, ref] : ample) {
    const auto& got = tight.at(name);
    for (size_t i = 0; i < ref.size(); ++i) {
      ASSERT_NEAR(ref[i], got[i], 1e-3f * std::max(1.0f, std::abs(ref[i]))) << name << "@" << i;
    }
  }
}

TEST(Runtime, MemoryPressureActuallyExercisesTransfers) {
  // Guard against the invariance test passing vacuously: the starved config
  // must really offload / recompute.
  auto net = graph::build_mini_alexnet(4);
  uint64_t params = 0;
  for (const auto& t : net->registry().all()) {
    if (t->kind() == tensor::TensorKind::kParam || t->kind() == tensor::TensorKind::kParamGrad)
      params += t->bytes();
  }
  auto opts = real_opts(params + 6 * net->max_layer_bytes());
  core::Runtime rt(*net, opts);
  train::Trainer trainer(rt, {.iterations = 2, .lr = 0.02f});
  auto report = trainer.run();
  uint64_t d2h = 0, extra = 0;
  for (const auto& st : report.stats) {
    d2h += st.bytes_d2h;
    extra += st.extra_forwards;
  }
  EXPECT_GT(d2h + extra, 0u) << "starved run did not exercise offload or recompute";
}

TEST(Runtime, CapacityIsNeverExceeded) {
  auto net = graph::build_mini_alexnet(4);
  uint64_t params = 0;
  for (const auto& t : net->registry().all()) {
    if (t->kind() == tensor::TensorKind::kParam || t->kind() == tensor::TensorKind::kParamGrad)
      params += t->bytes();
  }
  uint64_t cap = params + 6 * net->max_layer_bytes();
  core::Runtime rt(*net, real_opts(cap));
  train::Trainer trainer(rt, {.iterations = 3, .lr = 0.02f});
  auto report = trainer.run();
  for (const auto& st : report.stats) EXPECT_LE(st.peak_mem, cap);
}

TEST(Runtime, OomWhenParamsCannotFit) {
  auto net = graph::build_mini_alexnet(4);
  core::Runtime rt(*net, real_opts(16 << 10));  // 16 KB: params don't fit
  EXPECT_THROW(rt.initialize(), core::OomError);
}

TEST(Runtime, OomWhenWorkingSetCannotFit) {
  auto net = graph::build_mini_alexnet(8);
  uint64_t params = 0;
  for (const auto& t : net->registry().all()) {
    if (t->kind() == tensor::TensorKind::kParam || t->kind() == tensor::TensorKind::kParamGrad)
      params += t->bytes();
  }
  // Params fit but not even one big layer's working set does.
  core::Runtime rt(*net, real_opts(params + net->max_layer_bytes() / 8));
  train::Trainer trainer(rt, {.iterations = 1});
  EXPECT_THROW(trainer.run(), core::OomError);
}

TEST(Runtime, ZeroCommunicationWhenNetworkFits) {
  // Table 3: the Tensor Cache eliminates all transfers when GPU DRAM
  // suffices — offloading would be pure overhead.
  auto net = graph::build_mini_alexnet(8);
  core::Runtime rt(*net, real_opts(64ull << 20));
  train::Trainer trainer(rt, {.iterations = 2});
  auto report = trainer.run();
  EXPECT_EQ(report.stats[1].bytes_d2h, 0u);
  EXPECT_EQ(report.stats[1].bytes_h2d, 0u);
}

TEST(Runtime, EagerOffloadTransfersWithoutCache) {
  // Without the cache (vDNN/TF style), CONV outputs stream out every
  // iteration even when memory is ample — the contrast Table 3 draws.
  auto net = graph::build_mini_alexnet(8);
  RuntimeOptions o = real_opts(64ull << 20);
  o.tensor_cache = false;
  core::Runtime rt(*net, o);
  train::Trainer trainer(rt, {.iterations = 2});
  auto report = trainer.run();
  EXPECT_GT(report.stats[1].bytes_d2h, 0u);
  EXPECT_GT(report.stats[1].bytes_h2d, 0u);
}

TEST(Runtime, PeakMemoryLawsAcrossTechniques) {
  // Fig. 10: each technique strictly reduces peak memory, ending at
  // approximately max_i(l_i).
  auto peak_with = [](bool liveness, bool offload, core::RecomputeMode rc) {
    auto net = graph::build_alexnet(32, 67, 100);  // sim-mode AlexNet
    RuntimeOptions o;
    o.real = false;
    o.use_liveness = liveness;
    o.offload = offload;
    o.tensor_cache = false;
    o.recompute = rc;
    o.async_transfers = true;
    o.allow_workspace = false;  // isolate the memory techniques from workspaces
    o.device_capacity = 48ull << 30;  // ample: measure demand, not OOM
    core::Runtime rt(*net, o);
    auto st = rt.train_iteration(nullptr, nullptr);
    return st.peak_mem;
  };
  uint64_t baseline = peak_with(false, false, core::RecomputeMode::kNone);
  uint64_t live = peak_with(true, false, core::RecomputeMode::kNone);
  uint64_t offl = peak_with(true, true, core::RecomputeMode::kNone);
  uint64_t rec = peak_with(true, true, core::RecomputeMode::kCostAware);
  EXPECT_LT(live, baseline);
  EXPECT_LT(offl, live);
  EXPECT_LT(rec, offl);
}

TEST(Runtime, ExtraForwardCountsMatchPlanPrediction) {
  auto run_count = [](core::RecomputeMode mode) {
    auto net = graph::build_mini_alexnet(4);
    RuntimeOptions o = real_opts(64ull << 20);
    o.recompute = mode;
    o.offload = false;
    core::Runtime rt(*net, o);
    core::RecomputePlan plan(*net, mode);
    auto st = rt.train_iteration(nullptr, nullptr);
    return std::pair<uint64_t, uint64_t>(st.extra_forwards, plan.predicted_extra_forwards(mode));
  };
  // Real data isn't needed for counting; run in sim-of-real mode with null
  // input (DataLayer copies nothing).
  auto [speed_actual, speed_pred] = run_count(core::RecomputeMode::kSpeedCentric);
  EXPECT_EQ(speed_actual, speed_pred);
  auto [mem_actual, mem_pred] = run_count(core::RecomputeMode::kMemoryCentric);
  // The closed form is an upper bound: layers whose backward does not read
  // their own output (ReLU gates on its input) shorten the replay chains.
  EXPECT_LE(mem_actual, mem_pred);
  EXPECT_GT(mem_actual, speed_actual);
}

TEST(Runtime, SimModeMatchesPaperScaleWithoutBacking) {
  // Simulation mode schedules a 12 GB-scale network on a small machine:
  // no real memory is committed, but capacity accounting is exact.
  auto net = graph::build_resnet_preset(50, 16, 224, 1000);
  RuntimeOptions o = core::make_policy(PolicyPreset::kSuperNeurons);
  o.real = false;
  core::Runtime rt(*net, o);
  auto st = rt.train_iteration(nullptr, nullptr);
  EXPECT_GT(st.peak_mem, 1ull << 30);     // ResNet50/b16 needs GBs
  EXPECT_LE(st.peak_mem, o.device_capacity);
  EXPECT_GT(st.seconds, 0.0);
}

TEST(Runtime, FanJoinNetworksScheduleCorrectly) {
  auto net = graph::build_tiny_fanjoin(4);
  core::Runtime rt(*net, real_opts(64ull << 20));
  train::Trainer trainer(rt, {.iterations = 10, .lr = 0.05f});
  auto report = trainer.run();
  EXPECT_LT(report.last_loss(), report.first_loss());
}

TEST(Runtime, PolicyPresetsRunEndToEnd) {
  for (auto preset : {PolicyPreset::kBaselineNaive, PolicyPreset::kCaffeLike,
                      PolicyPreset::kTorchLike, PolicyPreset::kMxnetLike, PolicyPreset::kTfLike,
                      PolicyPreset::kSuperNeurons}) {
    auto net = graph::build_mini_alexnet(4);
    RuntimeOptions o = core::make_policy(preset);
    o.real = false;
    o.device_capacity = 1ull << 30;
    core::Runtime rt(*net, o);
    auto st = rt.train_iteration(nullptr, nullptr);
    EXPECT_GT(st.peak_mem, 0u) << core::policy_name(preset);
    EXPECT_GT(st.seconds, 0.0) << core::policy_name(preset);
  }
}

TEST(Runtime, SuperNeuronsRunsInLessMemoryThanOtherPolicies) {
  // The capability metric behind Tables 4/5: the minimum device capacity at
  // which a policy completes an iteration. The lazy Tensor Cache means
  // SuperNeurons' *demand* shows up under pressure, not at ample capacity.
  auto min_capacity = [](PolicyPreset preset) -> uint64_t {
    uint64_t lo = 1ull << 20, hi = 2ull << 30;
    while (lo + (1ull << 20) < hi) {
      uint64_t mid = (lo + hi) / 2;
      auto net = graph::build_alexnet(64, 67, 100);
      RuntimeOptions o = core::make_policy(preset);
      o.real = false;
      o.device_capacity = mid;
      try {
        core::Runtime rt(*net, o);
        rt.train_iteration(nullptr, nullptr);
        hi = mid;
      } catch (const core::OomError&) {
        lo = mid;
      }
    }
    return hi;
  };
  uint64_t sn = min_capacity(PolicyPreset::kSuperNeurons);
  EXPECT_LT(sn, min_capacity(PolicyPreset::kCaffeLike));
  EXPECT_LT(sn, min_capacity(PolicyPreset::kMxnetLike));
  EXPECT_LT(sn, min_capacity(PolicyPreset::kTfLike));
}

TEST(Runtime, StepTelemetryCoversAllSteps) {
  auto net = graph::build_mini_alexnet(4);
  core::Runtime rt(*net, real_opts(64ull << 20));
  rt.train_iteration(nullptr, nullptr);
  EXPECT_EQ(rt.step_telemetry().size(), net->steps().size());
  for (const auto& t : rt.step_telemetry()) {
    EXPECT_GT(t.mem_in_use, 0u);
    EXPECT_GT(t.live_tensors, 0u);
  }
}

}  // namespace
