// Forward-semantics tests for the non-conv kernels: pooling (incl. argmax),
// ReLU, LRN, BN statistics, dropout determinism, softmax, eltwise, concat.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "nn/activation.hpp"
#include "nn/batchnorm.hpp"
#include "nn/concat.hpp"
#include "nn/dropout.hpp"
#include "nn/eltwise.hpp"
#include "nn/fc.hpp"
#include "nn/lrn.hpp"
#include "nn/pool.hpp"
#include "nn/softmax.hpp"
#include "util/rng.hpp"

namespace {

using namespace sn::nn;

TEST(Pool, MaxPoolPicksMaxAndRecordsArgmax) {
  PoolDesc d;
  d.n = 1;
  d.c = 1;
  d.h = 4;
  d.w = 4;
  d.kh = d.kw = 2;
  d.stride_h = d.stride_w = 2;
  std::vector<float> x{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  std::vector<float> y(4);
  std::vector<int32_t> am(4);
  pool_forward(d, x.data(), y.data(), am.data());
  EXPECT_EQ(y, (std::vector<float>{6, 8, 14, 16}));
  EXPECT_EQ(am, (std::vector<int32_t>{5, 7, 13, 15}));
}

TEST(Pool, MaxPoolBackwardScattersToArgmax) {
  PoolDesc d;
  d.n = 1;
  d.c = 1;
  d.h = 4;
  d.w = 4;
  d.kh = d.kw = 2;
  d.stride_h = d.stride_w = 2;
  std::vector<int32_t> am{5, 7, 13, 15};
  std::vector<float> dy{1, 2, 3, 4};
  std::vector<float> dx(16, 0.0f);
  pool_backward(d, dy.data(), am.data(), dx.data());
  EXPECT_FLOAT_EQ(dx[5], 1);
  EXPECT_FLOAT_EQ(dx[7], 2);
  EXPECT_FLOAT_EQ(dx[13], 3);
  EXPECT_FLOAT_EQ(dx[15], 4);
  EXPECT_FLOAT_EQ(std::accumulate(dx.begin(), dx.end(), 0.0f), 10.0f);
}

TEST(Pool, AvgPoolAverages) {
  PoolDesc d;
  d.n = 1;
  d.c = 1;
  d.h = 2;
  d.w = 2;
  d.kh = d.kw = 2;
  d.stride_h = d.stride_w = 2;
  d.max_pool = false;
  std::vector<float> x{1, 2, 3, 4}, y(1);
  pool_forward(d, x.data(), y.data(), nullptr);
  EXPECT_FLOAT_EQ(y[0], 2.5f);
}

TEST(Pool, PaddedWindowsIgnorePadding) {
  PoolDesc d;
  d.n = 1;
  d.c = 1;
  d.h = 3;
  d.w = 3;
  d.kh = d.kw = 3;
  d.stride_h = d.stride_w = 2;
  d.pad_h = d.pad_w = 1;
  d.max_pool = false;
  std::vector<float> x(9, 6.0f), y(4);
  pool_forward(d, x.data(), y.data(), nullptr);
  // Average pooling divides by the count of *valid* taps, so constant input
  // stays constant even on padded windows.
  for (float v : y) EXPECT_FLOAT_EQ(v, 6.0f);
}

TEST(Relu, ForwardClampsNegatives) {
  std::vector<float> x{-1, 0, 2}, y(3);
  relu_forward(3, x.data(), y.data());
  EXPECT_EQ(y, (std::vector<float>{0, 0, 2}));
}

TEST(Relu, BackwardGatesOnInput) {
  std::vector<float> x{-1, 0, 2}, dy{5, 6, 7}, dx(3, 0.0f);
  relu_backward(3, x.data(), dy.data(), dx.data());
  EXPECT_EQ(dx, (std::vector<float>{0, 0, 7}));
}

TEST(Sigmoid, SaturatesAndCenters) {
  std::vector<float> x{-100, 0, 100}, y(3);
  sigmoid_forward(3, x.data(), y.data());
  EXPECT_NEAR(y[0], 0.0f, 1e-6f);
  EXPECT_FLOAT_EQ(y[1], 0.5f);
  EXPECT_NEAR(y[2], 1.0f, 1e-6f);
}

TEST(Tanh, OddAndBounded) {
  std::vector<float> x{-1.5f, 0, 1.5f}, y(3);
  tanh_forward(3, x.data(), y.data());
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[0], -y[2]);
  EXPECT_LT(std::abs(y[2]), 1.0f);
}

TEST(Lrn, IdentityWhenAlphaZero) {
  LrnDesc d;
  d.n = 1;
  d.c = 4;
  d.h = 2;
  d.w = 2;
  d.alpha = 0.0f;
  d.k = 1.0f;  // scale == 1 -> y == x
  std::vector<float> x(16), y(16), s(16);
  sn::util::Rng rng(5);
  for (auto& v : x) v = rng.uniform(-1, 1);
  lrn_forward(d, x.data(), y.data(), s.data());
  for (int i = 0; i < 16; ++i) EXPECT_NEAR(y[i], x[i], 1e-6f);
}

TEST(Lrn, ScaleMatchesFormula) {
  LrnDesc d;
  d.n = 1;
  d.c = 3;
  d.h = 1;
  d.w = 1;
  d.size = 3;
  d.alpha = 0.3f;
  d.beta = 0.75f;
  d.k = 2.0f;
  std::vector<float> x{1, 2, 3}, y(3), s(3);
  lrn_forward(d, x.data(), y.data(), s.data());
  // Channel 1 window = {0,1,2}: scale = 2 + 0.1*(1+4+9)
  EXPECT_NEAR(s[1], 2.0f + 0.1f * 14.0f, 1e-5f);
  EXPECT_NEAR(y[1], 2.0f * std::pow(s[1], -0.75f), 1e-5f);
}

TEST(BatchNorm, NormalizesPerChannel) {
  BnDesc d;
  d.n = 2;
  d.c = 2;
  d.h = 2;
  d.w = 2;
  std::vector<float> x(16);
  sn::util::Rng rng(9);
  for (auto& v : x) v = rng.uniform(-3, 3);
  std::vector<float> gamma{1, 1}, beta{0, 0}, y(16), mean(2), invstd(2);
  bn_forward(d, x.data(), gamma.data(), beta.data(), y.data(), mean.data(), invstd.data());
  // Per-channel output mean ~ 0, variance ~ 1.
  for (int c = 0; c < 2; ++c) {
    double sum = 0, sq = 0;
    for (int n = 0; n < 2; ++n)
      for (int s = 0; s < 4; ++s) {
        float v = y[(n * 2 + c) * 4 + s];
        sum += v;
        sq += v * v;
      }
    EXPECT_NEAR(sum / 8.0, 0.0, 1e-4);
    EXPECT_NEAR(sq / 8.0, 1.0, 1e-2);
  }
}

TEST(BatchNorm, GammaBetaAffine) {
  BnDesc d;
  d.n = 1;
  d.c = 1;
  d.h = 1;
  d.w = 4;
  std::vector<float> x{1, 2, 3, 4}, gamma{2}, beta{10}, y(4), mean(1), invstd(1);
  bn_forward(d, x.data(), gamma.data(), beta.data(), y.data(), mean.data(), invstd.data());
  double m = 0;
  for (float v : y) m += v;
  EXPECT_NEAR(m / 4.0, 10.0, 1e-4);  // beta shifts the mean
}

TEST(Dropout, DeterministicForSameSeed) {
  std::vector<float> x(1000, 1.0f), y1(1000), y2(1000), m1(1000), m2(1000);
  dropout_forward(1000, 0.5f, 1234, x.data(), y1.data(), m1.data());
  dropout_forward(1000, 0.5f, 1234, x.data(), y2.data(), m2.data());
  EXPECT_EQ(m1, m2);
  dropout_forward(1000, 0.5f, 999, x.data(), y2.data(), m2.data());
  EXPECT_NE(m1, m2);
}

TEST(Dropout, RatioAndScale) {
  const uint64_t n = 100000;
  std::vector<float> x(n, 1.0f), y(n), m(n);
  dropout_forward(n, 0.3f, 77, x.data(), y.data(), m.data());
  size_t zeros = 0;
  for (float v : m) {
    if (v == 0.0f)
      ++zeros;
    else
      EXPECT_NEAR(v, 1.0f / 0.7f, 1e-5f);
  }
  EXPECT_NEAR(static_cast<double>(zeros) / n, 0.3, 0.01);
}

TEST(Softmax, RowsSumToOne) {
  std::vector<float> x{1, 2, 3, 100, 100, 100}, p(6);
  softmax_forward(2, 3, x.data(), p.data());
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0f, 1e-5f);
  EXPECT_NEAR(p[3], 1.0f / 3.0f, 1e-5f);  // large-but-equal logits: stable
}

TEST(Softmax, LossOfPerfectPrediction) {
  std::vector<float> p{1.0f, 0.0f, 0.0f};
  std::vector<int32_t> labels{0};
  EXPECT_NEAR(nll_loss(1, 3, p.data(), labels.data()), 0.0, 1e-5);
}

TEST(Softmax, BackwardIsPMinusOnehot) {
  std::vector<float> p{0.2f, 0.3f, 0.5f};
  std::vector<int32_t> labels{2};
  std::vector<float> dx(3, 0.0f);
  softmax_nll_backward(1, 3, p.data(), labels.data(), dx.data());
  EXPECT_NEAR(dx[0], 0.2f, 1e-6f);
  EXPECT_NEAR(dx[1], 0.3f, 1e-6f);
  EXPECT_NEAR(dx[2], -0.5f, 1e-6f);
}

TEST(Eltwise, SumsBranches) {
  std::vector<float> a{1, 2}, b{10, 20}, c{100, 200}, y(2);
  eltwise_sum_forward(2, {a.data(), b.data(), c.data()}, y.data());
  EXPECT_EQ(y, (std::vector<float>{111, 222}));
}

TEST(Eltwise, BackwardAccumulates) {
  std::vector<float> dy{1, 2}, dx{10, 10};
  eltwise_sum_backward(2, dy.data(), dx.data());
  EXPECT_EQ(dx, (std::vector<float>{11, 12}));
}

TEST(Concat, RoundTripsChannels) {
  ConcatDesc d;
  d.n = 2;
  d.h = 1;
  d.w = 2;
  d.channels = {1, 2};
  // x0: (2,1,1,2), x1: (2,2,1,2)
  std::vector<float> x0{1, 2, 3, 4}, x1{10, 11, 12, 13, 14, 15, 16, 17};
  std::vector<float> y(12);
  concat_forward(d, {x0.data(), x1.data()}, y.data());
  // n=0: [1,2 | 10,11,12,13], n=1: [3,4 | 14,15,16,17]
  EXPECT_EQ(y, (std::vector<float>{1, 2, 10, 11, 12, 13, 3, 4, 14, 15, 16, 17}));

  std::vector<float> g0(4, 0.0f), g1(8, 0.0f);
  concat_backward(d, y.data(), 0, g0.data());
  concat_backward(d, y.data(), 1, g1.data());
  EXPECT_EQ(g0, x0);
  EXPECT_EQ(g1, x1);
}

TEST(Fc, ForwardMatchesManual) {
  FcDesc f{2, 3, 2, true};
  std::vector<float> x{1, 2, 3, 4, 5, 6};        // 2x3
  std::vector<float> w{1, 0, 0, 0, 1, 0};        // 2x3 (K x D)
  std::vector<float> b{0.5f, -0.5f};
  std::vector<float> y(4);
  fc_forward(f, x.data(), w.data(), b.data(), y.data());
  EXPECT_FLOAT_EQ(y[0], 1.5f);   // row0 . w0 + b0
  EXPECT_FLOAT_EQ(y[1], 1.5f);   // row0 . w1 + b1
  EXPECT_FLOAT_EQ(y[2], 4.5f);
  EXPECT_FLOAT_EQ(y[3], 4.5f);
}

}  // namespace
