// Prefetcher (§3.3.1) unit tests: staging order, checkpoint-span boundaries,
// and lookahead-depth scaling.
#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "core/prefetcher.hpp"
#include "core/recompute.hpp"
#include "core/runtime.hpp"
#include "graph/zoo.hpp"

namespace {

using namespace sn;

/// First backward step executed by a checkpoint layer (where the runtime
/// issues prefetches), excluding the route's very last step.
int first_checkpoint_backward_step(const graph::Net& net) {
  const int nfwd = static_cast<int>(net.route().size());
  for (const auto& st : net.steps()) {
    if (st.index < nfwd) continue;
    if (st.index + 1 >= static_cast<int>(net.steps().size())) continue;
    if (core::RecomputePlan::is_checkpoint_layer(st.layer)) return st.index;
  }
  return -1;
}

/// Reference implementation: deduplicated backward_uses of the steps after
/// `step`, in scan order, through `lookahead` checkpoint layers inclusive.
std::vector<tensor::Tensor*> naive_plan(const graph::Net& net, int step, int lookahead) {
  std::vector<tensor::Tensor*> out;
  std::unordered_set<uint64_t> seen;
  int checkpoints = 0;
  const auto& steps = net.steps();
  for (size_t s = static_cast<size_t>(step) + 1; s < steps.size(); ++s) {
    for (tensor::Tensor* u : steps[s].layer->backward_uses()) {
      if (seen.insert(u->uid()).second) out.push_back(u);
    }
    if (core::RecomputePlan::is_checkpoint_layer(steps[s].layer) && ++checkpoints >= lookahead)
      break;
  }
  return out;
}

TEST(Prefetcher, PlanMatchesScanOrderThroughNextCheckpoint) {
  auto net = graph::build_mini_alexnet(4);
  int step = first_checkpoint_backward_step(*net);
  ASSERT_GE(step, 0);
  core::Prefetcher pf(*net, /*lookahead=*/1);
  EXPECT_EQ(pf.plan(step), naive_plan(*net, step, 1));
  EXPECT_FALSE(pf.plan(step).empty());
}

TEST(Prefetcher, PlanHasNoDuplicates) {
  auto net = graph::build_tiny_resnet(4, 2);
  core::Prefetcher pf(*net, 2);
  const int nfwd = static_cast<int>(net->route().size());
  for (const auto& st : net->steps()) {
    if (st.index < nfwd) continue;
    auto plan = pf.plan(st.index);
    std::unordered_set<uint64_t> seen;
    for (tensor::Tensor* t : plan) EXPECT_TRUE(seen.insert(t->uid()).second) << t->name();
  }
}

TEST(Prefetcher, DeeperLookaheadExtendsThePlanAsAPrefix) {
  auto net = graph::build_mini_alexnet(4);
  int step = first_checkpoint_backward_step(*net);
  ASSERT_GE(step, 0);
  core::Prefetcher one(*net, 1);
  core::Prefetcher three(*net, 3);
  auto p1 = one.plan(step);
  auto p3 = three.plan(step);
  // Same scan, later stop: the shallow plan is a strict prefix of the deep
  // one (until the route runs out of checkpoints).
  ASSERT_GE(p3.size(), p1.size());
  for (size_t i = 0; i < p1.size(); ++i) EXPECT_EQ(p3[i], p1[i]) << i;
}

TEST(Prefetcher, LookaheadStopsAtCheckpointBoundaries) {
  auto net = graph::build_mini_alexnet(4);
  int step = first_checkpoint_backward_step(*net);
  ASSERT_GE(step, 0);
  core::Prefetcher pf(*net, 1);
  // Everything planned must be read by a backward step no further than the
  // first checkpoint layer after `step`.
  const auto& steps = net->steps();
  size_t boundary = static_cast<size_t>(step) + 1;
  while (boundary < steps.size() &&
         !core::RecomputePlan::is_checkpoint_layer(steps[boundary].layer)) {
    ++boundary;
  }
  std::unordered_set<uint64_t> in_span;
  for (size_t s = static_cast<size_t>(step) + 1; s <= boundary && s < steps.size(); ++s) {
    for (tensor::Tensor* u : steps[s].layer->backward_uses()) in_span.insert(u->uid());
  }
  for (tensor::Tensor* t : pf.plan(step)) {
    EXPECT_TRUE(in_span.count(t->uid())) << t->name() << " planned outside the lookahead span";
  }
}

TEST(Prefetcher, ZeroLookaheadDisablesPrefetching) {
  auto net = graph::build_mini_alexnet(2);
  core::Prefetcher pf(*net, 0);
  EXPECT_EQ(pf.lookahead(), 0);
  int step = first_checkpoint_backward_step(*net);
  ASSERT_GE(step, 0);
  EXPECT_TRUE(pf.plan(step).empty());
  core::Prefetcher neg(*net, -3);
  EXPECT_EQ(neg.lookahead(), 0);
}

TEST(Prefetcher, SpanAnnotatedPlanMatchesFlatPlan) {
  auto net = graph::build_mini_alexnet(4);
  int step = first_checkpoint_backward_step(*net);
  ASSERT_GE(step, 0);
  core::Prefetcher pf(*net, 3);
  auto flat = pf.plan(step);
  auto spans = pf.plan_spans(step);
  ASSERT_EQ(flat.size(), spans.size());
  for (size_t i = 0; i < flat.size(); ++i) EXPECT_EQ(flat[i], spans[i].tensor) << i;
  // Span distances are non-decreasing in scan order and start at 0.
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans.front().span, 0);
  for (size_t i = 1; i < spans.size(); ++i) EXPECT_GE(spans[i].span, spans[i - 1].span) << i;
  for (const auto& e : spans) EXPECT_LT(e.span, 3) << e.tensor->name();
}

TEST(Prefetcher, SpanZeroIsExactlyTheLookaheadOnePlan) {
  auto net = graph::build_mini_alexnet(4);
  int step = first_checkpoint_backward_step(*net);
  ASSERT_GE(step, 0);
  core::Prefetcher deep(*net, 4);
  core::Prefetcher shallow(*net, 1);
  std::vector<tensor::Tensor*> span0;
  for (const auto& e : deep.plan_spans(step)) {
    if (e.span == 0) span0.push_back(e.tensor);
  }
  // The nearest span of a deep plan is the paper's policy (lookahead 1):
  // that's what the runtime escalates to high priority under pressure.
  EXPECT_EQ(span0, shallow.plan(step));
}

TEST(Prefetcher, PlanAtLastStepIsEmpty) {
  auto net = graph::build_mini_alexnet(2);
  core::Prefetcher pf(*net, 1);
  EXPECT_TRUE(pf.plan(static_cast<int>(net->steps().size()) - 1).empty());
}

TEST(Prefetcher, RemoteGateDefersPendingExternalTensors) {
  // Pipeline stage boundaries are produced on a peer device: until their
  // P2P landing is waited out, plans must skip them — a host fetch would
  // stage the previous microbatch's bytes.
  auto net = graph::build_mini_alexnet(4);
  int step = first_checkpoint_backward_step(*net);
  ASSERT_GE(step, 0);
  core::Prefetcher pf(*net, 2);
  auto full = pf.plan(step);
  ASSERT_FALSE(full.empty());
  const uint64_t remote = full.front()->uid();

  std::unordered_set<uint64_t> pending{remote};
  pf.set_remote_gate([&](uint64_t uid) { return pending.count(uid) != 0; });
  for (tensor::Tensor* t : pf.plan(step)) EXPECT_NE(t->uid(), remote);
  EXPECT_EQ(pf.plan(step).size(), full.size() - 1);

  // Landing waited out: the plan includes it again.
  pending.clear();
  EXPECT_EQ(pf.plan(step), full);
}

TEST(Prefetcher, PerNetDefaultLookaheadTable) {
  // Pins the bench_prefetch_lookahead result the auto default encodes:
  // linear nets stick to the paper's 1, branchy/deep nets get 2.
  EXPECT_EQ(core::default_prefetch_lookahead(*graph::build_vgg(16, 1, 32, 4)), 1);
  EXPECT_EQ(core::default_prefetch_lookahead(*graph::build_vgg(19, 1, 32, 4)), 1);
  EXPECT_EQ(core::default_prefetch_lookahead(*graph::build_alexnet(1, 64, 8)), 1);
  EXPECT_EQ(core::default_prefetch_lookahead(*graph::build_resnet_preset(50, 1, 64, 4)), 2);
  EXPECT_EQ(core::default_prefetch_lookahead(*graph::build_resnet_preset(101, 1, 64, 4)), 2);
  EXPECT_EQ(core::default_prefetch_lookahead(*graph::build_inception_v4(1, 299, 4)), 2);
  EXPECT_EQ(core::default_prefetch_lookahead(*graph::build_densenet121(1, 64, 4)), 2);
  // Hand-built nets carry no arch tag: the paper's policy.
  EXPECT_EQ(core::default_prefetch_lookahead(*graph::build_tiny_linear(1)), 1);
}

TEST(Prefetcher, RuntimeAppliesAutoLookaheadUnlessSet) {
  core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
  ASSERT_EQ(o.prefetch_lookahead, core::kPrefetchLookaheadAuto);
  {
    auto net = graph::build_resnet_preset(50, 1, 64, 4);
    core::Runtime rt(*net, o);
    EXPECT_EQ(rt.prefetcher().lookahead(), 2);
  }
  {
    auto net = graph::build_vgg(16, 1, 32, 4);
    core::Runtime rt(*net, o);
    EXPECT_EQ(rt.prefetcher().lookahead(), 1);
  }
  {
    // An explicit user setting always wins over the table.
    auto net = graph::build_resnet_preset(50, 1, 64, 4);
    o.prefetch_lookahead = 4;
    core::Runtime rt(*net, o);
    EXPECT_EQ(rt.prefetcher().lookahead(), 4);
  }
}

}  // namespace
