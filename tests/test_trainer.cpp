// Trainer + synthetic dataset tests: determinism (the numerics-invariance
// property depends on it), label validity, and the end-to-end loop.
#include <gtest/gtest.h>

#include "core/runtime.hpp"
#include "graph/zoo.hpp"
#include "train/dataset.hpp"
#include "train/trainer.hpp"

namespace {

using namespace sn;
namespace tensor = sn::tensor;

TEST(Dataset, SameBatchIndexIsBitIdentical) {
  train::SyntheticDataset ds(tensor::Shape{1, 3, 8, 8}, 4, 99);
  std::vector<float> a(8 * 3 * 64), b(8 * 3 * 64);
  std::vector<int32_t> la(8), lb(8);
  ds.fill_batch(8, 5, a.data(), la.data());
  ds.fill_batch(8, 5, b.data(), lb.data());
  EXPECT_EQ(a, b);
  EXPECT_EQ(la, lb);
}

TEST(Dataset, DifferentBatchesDiffer) {
  train::SyntheticDataset ds(tensor::Shape{1, 3, 8, 8}, 4, 99);
  std::vector<float> a(4 * 3 * 64), b(4 * 3 * 64);
  std::vector<int32_t> la(4), lb(4);
  ds.fill_batch(4, 0, a.data(), la.data());
  ds.fill_batch(4, 1, b.data(), lb.data());
  EXPECT_NE(a, b);
}

TEST(Dataset, DifferentSeedsDiffer) {
  train::SyntheticDataset d1(tensor::Shape{1, 3, 8, 8}, 4, 1);
  train::SyntheticDataset d2(tensor::Shape{1, 3, 8, 8}, 4, 2);
  std::vector<float> a(2 * 3 * 64), b(2 * 3 * 64);
  std::vector<int32_t> l(2);
  d1.fill_batch(2, 0, a.data(), l.data());
  d2.fill_batch(2, 0, b.data(), l.data());
  EXPECT_NE(a, b);
}

TEST(Dataset, LabelsInRange) {
  const int classes = 7;
  train::SyntheticDataset ds(tensor::Shape{1, 1, 4, 4}, classes, 3);
  std::vector<float> data(64 * 16);
  std::vector<int32_t> labels(64);
  ds.fill_batch(64, 0, data.data(), labels.data());
  bool seen_multiple = false;
  for (int32_t l : labels) {
    ASSERT_GE(l, 0);
    ASSERT_LT(l, classes);
    if (l != labels[0]) seen_multiple = true;
  }
  EXPECT_TRUE(seen_multiple) << "degenerate labels";
}

TEST(Dataset, SamplesClusterAroundClassPrototypes) {
  train::SyntheticDataset ds(tensor::Shape{1, 1, 4, 4}, 2, 11);
  std::vector<float> data(256 * 16);
  std::vector<int32_t> labels(256);
  ds.fill_batch(256, 0, data.data(), labels.data());
  // Mean distance within a class must be well below across classes.
  std::vector<double> mean0(16, 0), mean1(16, 0);
  int n0 = 0, n1 = 0;
  for (int i = 0; i < 256; ++i) {
    auto& m = labels[i] == 0 ? mean0 : mean1;
    (labels[i] == 0 ? n0 : n1)++;
    for (int j = 0; j < 16; ++j) m[j] += data[i * 16 + j];
  }
  for (int j = 0; j < 16; ++j) {
    mean0[j] /= n0;
    mean1[j] /= n1;
  }
  double sep = 0;
  for (int j = 0; j < 16; ++j) sep += (mean0[j] - mean1[j]) * (mean0[j] - mean1[j]);
  EXPECT_GT(sep, 0.5) << "classes are not separable";
}

TEST(Trainer, RunsConfiguredIterations) {
  auto net = graph::build_tiny_linear(8);
  core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
  o.real = true;
  o.device_capacity = 16ull << 20;
  core::Runtime rt(*net, o);
  train::Trainer trainer(rt, {.iterations = 7, .lr = 0.05f});
  auto report = trainer.run();
  EXPECT_EQ(report.losses.size(), 7u);
  EXPECT_EQ(report.stats.size(), 7u);
  EXPECT_EQ(rt.current_iteration(), 7u);
}

TEST(Trainer, IdenticalConfigsTrainIdentically) {
  auto run = [] {
    auto net = graph::build_tiny_linear(8);
    core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
    o.real = true;
    o.device_capacity = 16ull << 20;
    core::Runtime rt(*net, o);
    train::Trainer trainer(rt, {.iterations = 5, .lr = 0.05f});
    return trainer.run().losses;
  };
  EXPECT_EQ(run(), run());
}

TEST(Trainer, StepAcceptsCallerData) {
  auto net = graph::build_tiny_linear(2, 8, 4);
  core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
  o.real = true;
  o.device_capacity = 16ull << 20;
  core::Runtime rt(*net, o);
  train::Trainer trainer(rt, {.iterations = 1, .lr = 0.1f});
  std::vector<float> data(2 * 3 * 64, 0.5f);
  std::vector<int32_t> labels{1, 3};
  auto st = trainer.step(data.data(), labels.data());
  EXPECT_GT(st.loss, 0.0);
}

TEST(Trainer, SgdMomentumAcceleratesOverPlainSgd) {
  auto run = [](float momentum) {
    auto net = graph::build_tiny_linear(16);
    core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
    o.real = true;
    o.device_capacity = 16ull << 20;
    core::Runtime rt(*net, o);
    train::Trainer trainer(rt, {.iterations = 25, .lr = 0.02f, .momentum = momentum});
    return trainer.run().last_loss();
  };
  // Not a strict theorem, but on this convex-ish tiny problem momentum should
  // not hurt and typically helps.
  EXPECT_LE(run(0.9f), run(0.0f) * 1.2);
}

TEST(Trainer, WeightDecayShrinksWeights) {
  auto norm_with = [](float wd) {
    auto net = graph::build_tiny_linear(8);
    core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
    o.real = true;
    o.device_capacity = 16ull << 20;
    core::Runtime rt(*net, o);
    train::Trainer trainer(rt, {.iterations = 20, .lr = 0.05f, .weight_decay = wd});
    trainer.run();
    double n = 0;
    for (const auto& l : rt.net().layers())
      for (const auto* p : l->params())
        for (float v : rt.read_tensor(p)) n += static_cast<double>(v) * v;
    return n;
  };
  EXPECT_LT(norm_with(0.05f), norm_with(0.0f));
}

}  // namespace
