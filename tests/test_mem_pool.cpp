// Tests for the heap-based GPU memory pool (paper §3.2.1): first-fit,
// 1KB-block rounding, coalescing, fragmentation behaviour, invariants under
// randomized churn, and the allocator wrappers' latency accounting.
#include <gtest/gtest.h>

#include <vector>

#include "mem/gpu_allocator.hpp"
#include "mem/host_pool.hpp"
#include "mem/mem_pool.hpp"
#include "sim/machine.hpp"
#include "util/rng.hpp"

namespace {

using namespace sn::mem;

TEST(MemoryPool, RoundsUpToBlockSize) {
  MemoryPool p(16 << 10, 1024);
  auto a = p.allocate(1);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->bytes, 1024u);
  auto b = p.allocate(1025);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->bytes, 2048u);
}

TEST(MemoryPool, FirstFitLowestOffset) {
  MemoryPool p(8 << 10, 1024);
  auto a = p.allocate(2048);
  auto b = p.allocate(2048);
  auto c = p.allocate(2048);
  ASSERT_TRUE(a && b && c);
  p.deallocate(a->id);  // hole at offset 0
  auto d = p.allocate(1024);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->offset, 0u);  // first fit reuses the lowest hole
}

TEST(MemoryPool, FailsWhenNoFit) {
  MemoryPool p(4 << 10, 1024);
  auto a = p.allocate(3 << 10);
  ASSERT_TRUE(a);
  EXPECT_FALSE(p.allocate(2 << 10).has_value());
  EXPECT_EQ(p.stats().failed_allocs, 1u);
}

TEST(MemoryPool, FragmentationBlocksLargeAlloc) {
  MemoryPool p(8 << 10, 1024);
  auto a = p.allocate(2048);
  auto b = p.allocate(2048);
  auto c = p.allocate(2048);
  auto d = p.allocate(2048);
  ASSERT_TRUE(a && b && c && d);
  p.deallocate(a->id);
  p.deallocate(c->id);
  // 4 KB free total but split into two 2 KB holes.
  EXPECT_EQ(p.free_bytes(), 4096u);
  EXPECT_EQ(p.largest_free(), 2048u);
  EXPECT_FALSE(p.allocate(4096).has_value());
}

TEST(MemoryPool, CoalescesNeighbours) {
  MemoryPool p(8 << 10, 1024);
  auto a = p.allocate(2048);
  auto b = p.allocate(2048);
  auto c = p.allocate(2048);
  ASSERT_TRUE(a && b && c);
  p.deallocate(a->id);
  p.deallocate(c->id);
  p.deallocate(b->id);  // middle free must merge with both neighbours
  EXPECT_EQ(p.largest_free(), p.capacity());
  EXPECT_TRUE(p.validate());
}

TEST(MemoryPool, InUseAccounting) {
  MemoryPool p(64 << 10, 1024);
  auto a = p.allocate(10 << 10);
  EXPECT_EQ(p.in_use(), 10u << 10);
  auto b = p.allocate(5 << 10);
  EXPECT_EQ(p.in_use(), 15u << 10);
  p.deallocate(a->id);
  EXPECT_EQ(p.in_use(), 5u << 10);
  p.deallocate(b->id);
  EXPECT_EQ(p.in_use(), 0u);
  EXPECT_EQ(p.stats().peak_in_use, 15u << 10);
}

TEST(MemoryPool, BackedPoolYieldsWritablePointers) {
  MemoryPool p(16 << 10, 1024, /*backed=*/true);
  auto a = p.allocate(4096);
  ASSERT_TRUE(a);
  float* f = static_cast<float*>(p.ptr(a->offset));
  ASSERT_NE(f, nullptr);
  f[0] = 42.0f;
  EXPECT_EQ(f[0], 42.0f);
}

TEST(MemoryPool, UnbackedPoolReturnsNull) {
  MemoryPool p(16 << 10, 1024, false);
  auto a = p.allocate(4096);
  ASSERT_TRUE(a);
  EXPECT_EQ(p.ptr(a->offset), nullptr);
}

// Property sweep: random alloc/free churn preserves structural invariants,
// across several block sizes (the ablation dimension).
class PoolChurnTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PoolChurnTest, InvariantsHoldUnderChurn) {
  const uint64_t block = GetParam();
  MemoryPool p(1 << 20, block);
  sn::util::Rng rng(block);
  std::vector<uint64_t> live;
  for (int step = 0; step < 5000; ++step) {
    if (live.empty() || rng.next_float() < 0.55f) {
      auto a = p.allocate(1 + rng.next_below(8192));
      if (a) live.push_back(a->id);
    } else {
      size_t i = rng.next_below(live.size());
      p.deallocate(live[i]);
      live[i] = live.back();
      live.pop_back();
    }
    if (step % 500 == 0) {
      ASSERT_TRUE(p.validate()) << "at step " << step;
    }
  }
  for (uint64_t id : live) p.deallocate(id);
  EXPECT_TRUE(p.validate());
  EXPECT_EQ(p.in_use(), 0u);
  EXPECT_EQ(p.largest_free(), p.capacity());
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, PoolChurnTest,
                         ::testing::Values(256u, 1024u, 4096u, 65536u));

TEST(MemoryPool, BestFitPrefersTightestHole) {
  // Layout: a[0,4K) b[4K,5K) c[5K,9K) d[9K,10K) e[10K,16K); free a and d so
  // two holes exist: 4K at offset 0 and 1K at offset 9K.
  MemoryPool p(16 << 10, 1024, false, FitPolicy::kBestFit);
  auto a = p.allocate(4096);
  auto b = p.allocate(1024);
  auto c = p.allocate(4096);
  auto d = p.allocate(1024);
  auto e = p.allocate(6144);
  ASSERT_TRUE(a && b && c && d && e);
  p.deallocate(a->id);
  p.deallocate(d->id);
  // Request 1K: best fit takes the tight 1K hole at 9K; first fit would
  // have taken offset 0.
  auto f = p.allocate(1024);
  ASSERT_TRUE(f);
  EXPECT_EQ(f->offset, 9u << 10);
  EXPECT_TRUE(p.validate());
}

TEST(MemoryPool, BestFitExactFitShortCircuits) {
  MemoryPool p(8 << 10, 1024, false, FitPolicy::kBestFit);
  auto a = p.allocate(2048);
  auto b = p.allocate(2048);
  auto c = p.allocate(2048);
  ASSERT_TRUE(a && b && c);
  p.deallocate(b->id);  // 2K hole in the middle
  auto d = p.allocate(2048);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->offset, b->offset);  // reused exactly
}

TEST(MemoryPool, FitPoliciesAgreeOnInUseAccounting) {
  for (FitPolicy fit : {FitPolicy::kFirstFit, FitPolicy::kBestFit}) {
    MemoryPool p(1 << 20, 1024, false, fit);
    sn::util::Rng rng(7);
    std::vector<uint64_t> live;
    for (int i = 0; i < 2000; ++i) {
      if (live.empty() || rng.next_float() < 0.5f) {
        if (auto a = p.allocate(1 + rng.next_below(4096))) live.push_back(a->id);
      } else {
        size_t j = rng.next_below(live.size());
        p.deallocate(live[j]);
        live[j] = live.back();
        live.pop_back();
      }
    }
    EXPECT_TRUE(p.validate());
    for (uint64_t id : live) p.deallocate(id);
    EXPECT_EQ(p.in_use(), 0u);
  }
}

TEST(GpuAllocator, PoolIsFasterThanNative) {
  sn::sim::Machine m1(sn::sim::k40c_spec());
  sn::sim::Machine m2(sn::sim::k40c_spec());
  NativeAllocator nat(m1, 1 << 20);
  PoolAllocator pool(m2, 1 << 20);
  for (int i = 0; i < 100; ++i) {
    auto a = nat.allocate(4096);
    ASSERT_TRUE(a);
    nat.deallocate(*a);
    auto b = pool.allocate(4096);
    ASSERT_TRUE(b);
    pool.deallocate(*b);
  }
  EXPECT_GT(m1.now(), 50.0 * m2.now());  // cudaMalloc model is orders slower
}

TEST(GpuAllocator, CapacityEnforced) {
  sn::sim::Machine m(sn::sim::k40c_spec());
  PoolAllocator a(m, 1 << 20);
  auto h = a.allocate(1 << 20);
  ASSERT_TRUE(h);
  EXPECT_FALSE(a.allocate(1024).has_value());
  a.deallocate(*h);
  EXPECT_TRUE(a.allocate(1024).has_value());
}

TEST(HostPool, AccountingAndBackedBuffers) {
  HostPool hp(1 << 20, /*pinned=*/true, /*backed=*/true);
  uint64_t a = hp.allocate(1000);
  ASSERT_NE(a, 0u);
  EXPECT_EQ(hp.in_use(), 1000u);
  ASSERT_NE(hp.ptr(a), nullptr);
  uint64_t b = hp.allocate(1 << 20);
  EXPECT_EQ(b, 0u);  // over capacity
  hp.deallocate(a);
  EXPECT_EQ(hp.in_use(), 0u);
  EXPECT_EQ(hp.peak_in_use(), 1000u);
}

}  // namespace
