// obs::CostProfile tests (ISSUE 10 tentpole): ProfileStat aggregation, the
// bit-exact JSON round trip, from_session span lifting, the schema gate, and
// profile-guided partitioning — a null/declining provider keeps the analytic
// cuts, a synthetic skew moves them, and a real observed profile never picks
// a cut that measures worse than the analytic one under observed costs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/runtime.hpp"
#include "dist/hybrid_parallel.hpp"
#include "graph/partitioner.hpp"
#include "graph/zoo.hpp"
#include "obs/cost_profile.hpp"
#include "obs/trace.hpp"
#include "perf/trajectory.hpp"
#include "util/json_reader.hpp"

namespace {

using namespace sn;

/// Wrap a profile as the partitioner's observed-cost provider — the same
/// lambda shape the trainers build from their cost_profile config field.
graph::LayerCostFn provider(const obs::CostProfile& prof) {
  return [&prof](const std::string& name, double* fwd, double* bwd) {
    return prof.layer_seconds(name, fwd, bwd);
  };
}

/// Synthetic profile: every route layer's analytic seconds, with layers in
/// [skew_begin, skew_end) scaled by `skew` (fwd/bwd split evenly; n=1).
obs::CostProfile synthetic_profile(const graph::Net& net, const graph::NetPartitioner& part,
                                   int skew_begin, int skew_end, double skew) {
  obs::CostProfile prof;
  const auto& route = net.route();
  std::vector<std::pair<std::string, double>> costs;
  for (int i = 0; i < static_cast<int>(route.size()); ++i) {
    double s = part.layer_seconds(route[static_cast<size_t>(i)]);
    if (i >= skew_begin && i < skew_end) s *= skew;
    costs.emplace_back(route[static_cast<size_t>(i)]->name(), s);
  }
  std::sort(costs.begin(), costs.end());  // add_layer wants sorted-by-name
  for (const auto& [name, s] : costs) {
    obs::LayerCost lc;
    lc.name = name;
    lc.fwd = obs::ProfileStat{s / 2, s / 2, s / 2, 1};
    lc.bwd = obs::ProfileStat{s / 2, s / 2, s / 2, 1};
    prof.add_layer(std::move(lc));
  }
  return prof;
}

TEST(ProfileStat, FromSamplesMedianLoHiN) {
  auto odd = obs::ProfileStat::from_samples({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(odd.median, 2.0);
  EXPECT_DOUBLE_EQ(odd.lo, 1.0);
  EXPECT_DOUBLE_EQ(odd.hi, 3.0);
  EXPECT_EQ(odd.n, 3u);

  auto even = obs::ProfileStat::from_samples({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(even.median, 2.5);
  EXPECT_DOUBLE_EQ(even.lo, 1.0);
  EXPECT_DOUBLE_EQ(even.hi, 4.0);
  EXPECT_EQ(even.n, 4u);

  auto empty = obs::ProfileStat::from_samples({});
  EXPECT_EQ(empty.n, 0u);
  EXPECT_DOUBLE_EQ(empty.median, 0.0);
}

TEST(CostProfile, JsonRoundTripIsBitExact) {
  // Awkward doubles: non-terminating binary fractions and tiny magnitudes
  // must survive write -> parse -> write byte-identically (value_sci at 17
  // significant digits).
  obs::CostProfile p;
  obs::LayerCost conv;
  conv.name = "conv1";
  conv.fwd = obs::ProfileStat{1.0 / 3.0, 1e-9, 0.1 + 0.2, 3};
  conv.bwd = obs::ProfileStat{2.0 / 7.0, 2.0 / 7.0, 2.0 / 7.0, 1};
  p.add_layer(conv);
  obs::LayerCost fc;
  fc.name = "fc2";
  fc.fwd = obs::ProfileStat{5.0e-4, 4.9e-4, 5.1e-4, 2};
  fc.bwd = obs::ProfileStat{0.0, 0.0, 0.0, 0};  // fwd-only observation
  p.add_layer(fc);
  obs::DeviceCost d;
  d.device = 0;
  d.stage = 1;
  d.replica = 0;
  d.iterations = 2;
  d.compute = obs::ProfileStat{0.125, 0.1, 0.15, 2};
  d.stall_pipeline = obs::ProfileStat{1.0 / 977.0, 0.0, 2.0 / 977.0, 2};
  p.add_device(d);

  const std::string a = p.to_json();
  obs::CostProfile q = obs::CostProfile::from_json(util::JsonValue::parse(a));
  EXPECT_EQ(q.to_json(), a);

  // Exact (==, not NEAR) doubles after the round trip.
  double fwd = 0.0, bwd = 0.0;
  ASSERT_TRUE(q.layer_seconds("conv1", &fwd, &bwd));
  EXPECT_EQ(fwd, 1.0 / 3.0);
  EXPECT_EQ(bwd, 2.0 / 7.0);
  // fc2 has no backward observation: the provider declines, outputs intact.
  fwd = bwd = -1.0;
  EXPECT_FALSE(q.layer_seconds("fc2", &fwd, &bwd));
  EXPECT_EQ(fwd, -1.0);
  EXPECT_FALSE(q.layer_seconds("nope", &fwd, &bwd));
  ASSERT_EQ(q.devices().size(), 1u);
  EXPECT_EQ(q.devices()[0].stage, 1);
  EXPECT_EQ(q.devices()[0].stall_pipeline.median, 1.0 / 977.0);

  // Wrong-kind documents are rejected, not half-parsed.
  EXPECT_THROW(obs::CostProfile::from_json(util::JsonValue::parse("{\"kind\": \"sweep\"}")),
               util::JsonError);
}

TEST(CostProfile, SavedProfilePassesSchemaCheck) {
  auto net = graph::build_mini_alexnet(4);
  graph::NetPartitioner part(*net);
  obs::CostProfile p = synthetic_profile(*net, part, 0, 0, 1.0);
  util::JsonValue doc = util::JsonValue::parse(p.to_json(), "<inline>");
  EXPECT_GT(perf::schema_check(doc, "cost_profile", "<inline>"), 0u);
}

TEST(CostProfile, FromSessionReconcilesWithMachineCounters) {
  // Single-device marker-free trace: exactly one occupancy sample, and the
  // compute bucket must equal the machine counter delta the span ring saw.
  auto net = graph::build_tiny_linear(8);
  core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
  o.real = true;
  o.device_capacity = 32ull << 20;
  o.allow_workspace = false;
  core::Runtime rt(*net, o);

  obs::TraceSession session;
  obs::TraceRecorder& rec = session.recorder_for(0);
  rec.set_ids(0, -1, -1);
  rt.machine().set_trace(&rec);
  const auto c0 = rt.machine().counters();
  rt.train_iteration(nullptr, nullptr);
  const auto c1 = rt.machine().counters();
  rt.machine().set_trace(nullptr);

  obs::CostProfile prof = obs::CostProfile::from_session(session);
  ASSERT_EQ(prof.devices().size(), 1u);
  const obs::DeviceCost& d = prof.devices()[0];
  EXPECT_EQ(d.device, 0);
  EXPECT_EQ(d.iterations, 1u);
  EXPECT_EQ(d.compute.n, 1u);
  EXPECT_NEAR(d.compute.median, c1.compute_time - c0.compute_time, 1e-12);
  EXPECT_NEAR(d.h2d.median, c1.seconds_h2d - c0.seconds_h2d, 1e-12);
  EXPECT_NEAR(d.d2h.median, c1.seconds_d2h - c0.seconds_d2h, 1e-12);

  // Per-layer samples: every profiled layer was seen in both directions
  // with a sane dispersion envelope, and fc kernels are really in there.
  ASSERT_FALSE(prof.layers().empty());
  for (const auto& lc : prof.layers()) {
    EXPECT_GT(lc.fwd.n, 0u) << lc.name;
    EXPECT_GT(lc.bwd.n, 0u) << lc.name;
    EXPECT_LE(lc.fwd.lo, lc.fwd.median) << lc.name;
    EXPECT_LE(lc.fwd.median, lc.fwd.hi) << lc.name;
  }
  EXPECT_EQ(prof.layer("sgd"), nullptr);  // optimizer is occupancy, not a layer
}

TEST(CostProfile, FromSessionSplitsIterationsAtDrainMarkers) {
  // Trainer traces carry "drain-end" markers: 3 iterations on a 2x2 grid
  // must aggregate to 3 occupancy samples on each of the 4 devices.
  auto factory = [](int batch) { return graph::build_tiny_linear(batch); };
  dist::HybridParallelConfig cfg;
  cfg.stages = 2;
  cfg.replicas = 2;
  cfg.microbatches = 4;
  cfg.global_batch = 8;
  cfg.schedule = dist::SchedulePolicy::k1F1B;
  cfg.cluster = sim::pcie_cluster_spec(4);
  cfg.train.iterations = 3;
  core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
  o.real = true;
  o.device_capacity = 32ull << 20;
  o.allow_workspace = false;
  dist::HybridParallelTrainer hyb(factory, o, cfg);
  obs::TraceSession session;
  hyb.attach_trace(&session);
  hyb.run();
  hyb.attach_trace(nullptr);

  obs::CostProfile prof = obs::CostProfile::from_session(session);
  ASSERT_EQ(prof.devices().size(), 4u);
  for (const obs::DeviceCost& d : prof.devices()) {
    EXPECT_EQ(d.iterations, 3u) << "device " << d.device;
    EXPECT_EQ(d.compute.n, 3u);
    EXPECT_GE(d.stage, 0);
    EXPECT_GE(d.replica, 0);
    EXPECT_GT(d.compute.median, 0.0);
  }
  ASSERT_FALSE(prof.layers().empty());
  // The whole thing survives persistence.
  obs::CostProfile back = obs::CostProfile::from_json(util::JsonValue::parse(prof.to_json()));
  EXPECT_EQ(back.to_json(), prof.to_json());
}

TEST(CostProfile, SyntheticSkewMovesTheCutAndStaysDpOptimal) {
  // Inflate stage 0 of the analytic 2-way plan by 4x: the balance must move
  // the boundary earlier, and re-evaluating the analytic cut under observed
  // costs must never beat the observed DP's own plan (min-max optimality).
  auto net = graph::build_mini_alexnet(4);
  graph::NetPartitioner analytic(*net);
  auto plan_a = analytic.partition(2);
  ASSERT_EQ(plan_a.cuts.size(), 1u);

  obs::CostProfile prof = synthetic_profile(*net, analytic, 0, plan_a.cuts[0], 4.0);
  graph::NetPartitioner observed(*net, sim::k40c_spec(), sim::pcie_p2p_link_spec(), 0,
                                 provider(prof));
  // The observed override only biases the balance; the per-layer roofline
  // accessor stays analytic for comparisons.
  EXPECT_EQ(observed.layer_seconds(net->route()[1]), analytic.layer_seconds(net->route()[1]));

  auto plan_o = observed.partition(2);
  EXPECT_NE(plan_o.cuts, plan_a.cuts) << "4x skew on a whole stage must move the boundary";
  EXPECT_LT(plan_o.cuts[0], plan_a.cuts[0]) << "inflated head stage must shrink";
  auto plan_a_under_o = observed.partition_at(plan_a.cuts);
  EXPECT_LE(plan_o.max_stage_seconds, plan_a_under_o.max_stage_seconds);
}

TEST(CostProfile, ObservedProfileNeverMeasuresWorseAndMovesSomeCut) {
  // The acceptance loop: capture a real single-device profile per bench net
  // (the runtime's dynamically chosen conv algorithms diverge from the
  // static analytic efficiency), re-partition under it, and measure BOTH cut
  // sets under observed costs. DP optimality guarantees the profile-guided
  // cut is never worse; at least one net must actually move its boundary.
  bool any_moved = false;
  for (const char* name : {"AlexNet", "VGG16"}) {
    auto net = bench::build_network(name, 8);
    core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
    o.real = false;
    core::Runtime rt(*net, o);
    obs::TraceSession session;
    obs::TraceRecorder& rec = session.recorder_for(0);
    rec.set_ids(0, -1, -1);
    rt.machine().set_trace(&rec);
    for (int i = 0; i < 2; ++i) rt.train_iteration(nullptr, nullptr);
    rt.machine().set_trace(nullptr);
    obs::CostProfile prof = obs::CostProfile::from_session(session);

    graph::NetPartitioner analytic(*net);
    graph::NetPartitioner observed(*net, sim::k40c_spec(), sim::pcie_p2p_link_spec(), 0,
                                   provider(prof));
    for (int stages : {2, 4}) {
      auto plan_a = analytic.partition(stages);
      auto plan_o = observed.partition(stages);
      auto plan_a_under_o = observed.partition_at(plan_a.cuts);
      EXPECT_LE(plan_o.max_stage_seconds, plan_a_under_o.max_stage_seconds)
          << name << " stages=" << stages;
      if (plan_o.cuts != plan_a.cuts) any_moved = true;
    }
  }
  EXPECT_TRUE(any_moved)
      << "observed conv costs diverge from the 0.45 analytic efficiency; some cut must move";
}

}  // namespace
