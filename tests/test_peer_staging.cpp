// Peer-memory staging (core::PeerStagingGroup + UnifiedTensorPool kPeer tier):
//
//   1. Round trip — stage-out over P2P, fetch-back, bytes bit-identical,
//      donation accounting returns to zero.
//   2. Routing fallbacks — no budget / no free space / peer under pressure
//      all degrade to the ordinary host path without moving anything.
//   3. Spill lattice — a host under its own allocation pressure reclaims
//      guests (oldest first, fetch-pending exempt) and the owner's tensor
//      degrades transparently to plain kHost with identical bytes.
//   4. Windowed pressure — under_pressure_now() decays as allocation traffic
//      moves past the last eviction; the latching under_pressure() does not.
//   5. Trainer integration — staging off, staging with zero budget and
//      staging on all train bit-identically; staging on actually stages on a
//      pool-constrained pipeline and every transfer drains by iteration end.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/peer_staging.hpp"
#include "core/tensor_pool.hpp"
#include "dist/pipeline_parallel.hpp"
#include "graph/zoo.hpp"
#include "sim/cluster.hpp"
#include "train/trainer.hpp"

namespace {

using namespace sn;
using core::PeerStagingGroup;
using core::TransferDir;
using core::UnifiedTensorPool;
using tensor::Residency;

/// Two pools on an NVLink pair sharing one staging group. Declaration order
/// matters: the group must outlive the pools (their destructors detach).
struct Rig {
  sim::Cluster cluster{sim::nvlink_cluster_spec(2)};
  PeerStagingGroup group;
  tensor::TensorRegistry reg_a, reg_b;
  UnifiedTensorPool a, b;

  static UnifiedTensorPool::Config config(bool real, bool async, uint64_t device_capacity,
                                          int device_id) {
    UnifiedTensorPool::Config cfg;
    cfg.real = real;
    cfg.async_transfers = async;
    cfg.device_capacity = device_capacity;
    cfg.host_capacity = 64ull << 20;
    cfg.device_id = device_id;
    return cfg;
  }

  Rig(bool real, bool async, uint64_t budget, uint64_t cap_a = 8ull << 20,
      uint64_t cap_b = 8ull << 20)
      : a(reg_a, cluster.machine(0), config(real, async, cap_a, 0), {}),
        b(reg_b, cluster.machine(1), config(real, async, cap_b, 1), {}) {
    group.add_member(a, budget);
    group.add_member(b, budget);
  }
};

tensor::Tensor* make_filled(tensor::TensorRegistry& reg, UnifiedTensorPool& pool,
                            const char* name, int hw) {
  tensor::Tensor* t = reg.create(name, tensor::Shape{1, 1, hw, hw}, tensor::TensorKind::kGrad);
  pool.alloc_device(t);
  t->residency = Residency::kDevice;
  if (float* p = pool.device_ptr(t)) {
    for (int64_t i = 0; i < t->shape().elems(); ++i) p[i] = 0.25f * static_cast<float>(i % 997);
  }
  return t;
}

std::vector<float> read_device(UnifiedTensorPool& pool, tensor::Tensor* t) {
  const float* p = pool.device_ptr(t);
  return std::vector<float>(p, p + t->shape().elems());
}

TEST(PeerStaging, StageAndFetchRoundTripPreservesBytes) {
  Rig rig(/*real=*/true, /*async=*/false, /*budget=*/4ull << 20);
  tensor::Tensor* t = make_filled(rig.reg_a, rig.a, "act", 128);
  const std::vector<float> before = read_device(rig.a, t);
  const uint64_t bytes = t->bytes();

  // NVLink arrival (5us + bytes/25GB/s) beats the idle D2H uplink
  // (10us + bytes/8GB/s), so routing picks the peer.
  ASSERT_TRUE(rig.a.stage_to_peer(t));
  EXPECT_EQ(t->residency, Residency::kPeer);
  EXPECT_EQ(t->peer_device, 1);
  EXPECT_FALSE(t->gpu_handle.has_value());
  EXPECT_EQ(t->host_handle, 0u) << "staging must not touch the host pool";
  EXPECT_EQ(rig.group.guest_count(), 1u);
  EXPECT_EQ(rig.group.donated_in_use(1), bytes);
  EXPECT_EQ(rig.a.peer_stage_count(), 1u);
  EXPECT_EQ(rig.a.peer_stage_bytes(), bytes);
  EXPECT_EQ(rig.b.live_count(), 0u) << "guests are invisible to the host's tensor bookkeeping";
  EXPECT_GT(rig.cluster.link_busy_seconds(0, 1), 0.0);

  rig.a.fetch_from_peer(t);
  EXPECT_EQ(t->residency, Residency::kDevice);
  EXPECT_EQ(t->peer_device, -1);
  EXPECT_EQ(t->peer_handle, 0u);
  EXPECT_EQ(read_device(rig.a, t), before);
  EXPECT_EQ(rig.group.guest_count(), 0u);
  EXPECT_EQ(rig.group.donated_in_use(1), 0u);
  EXPECT_EQ(rig.a.peer_fetch_count(), 1u);
  // Nothing left in flight on either engine.
  EXPECT_EQ(rig.a.engine().pending_count(TransferDir::kP2P), 0u);
  EXPECT_EQ(rig.b.engine().pending_count(TransferDir::kP2P), 0u);
}

TEST(PeerStaging, RoutingFallsBackToHostWithoutBudgetOrSpace) {
  {
    // Budget smaller than the tensor: the router must refuse.
    Rig rig(true, false, /*budget=*/1024);
    tensor::Tensor* t = make_filled(rig.reg_a, rig.a, "act", 64);
    EXPECT_FALSE(rig.a.stage_to_peer(t));
    EXPECT_EQ(t->residency, Residency::kDevice);
    EXPECT_EQ(rig.group.guest_count(), 0u);
  }
  {
    // Peer pool full: budget alone is not an entitlement to space.
    Rig rig(true, false, /*budget=*/64ull << 20, /*cap_a=*/8ull << 20, /*cap_b=*/1ull << 20);
    make_filled(rig.reg_b, rig.b, "hog", 512);  // 1 MB: fills B's pool
    tensor::Tensor* t = make_filled(rig.reg_a, rig.a, "act", 64);
    EXPECT_FALSE(rig.a.stage_to_peer(t));
    EXPECT_EQ(t->residency, Residency::kDevice);
  }
}

TEST(PeerStaging, RoutingSkipsPeersUnderRecentPressure) {
  // Squeeze B until it evicts: a pool that just fought for its own memory
  // must not accept guests.
  Rig rig(true, false, /*budget=*/64ull << 20, /*cap_a=*/8ull << 20, /*cap_b=*/100 << 10);
  tensor::Tensor* b1 = make_filled(rig.reg_b, rig.b, "b1", 128);
  b1->residency = Residency::kDevice;
  make_filled(rig.reg_b, rig.b, "b2", 128);  // 64 KB each: evicts b1
  ASSERT_GT(rig.b.evictions(), 0u);
  ASSERT_TRUE(rig.b.under_pressure_now());

  tensor::Tensor* t = make_filled(rig.reg_a, rig.a, "act", 64);
  EXPECT_FALSE(rig.a.stage_to_peer(t));
  EXPECT_EQ(t->residency, Residency::kDevice);
}

TEST(PeerStaging, WindowedPressureDecaysLatchedDoesNot) {
  Rig rig(true, false, /*budget=*/0, /*cap_a=*/100 << 10);
  tensor::Tensor* t1 = make_filled(rig.reg_a, rig.a, "t1", 128);
  t1->residency = Residency::kDevice;
  make_filled(rig.reg_a, rig.a, "t2", 128);  // 64 KB each: evicts t1
  ASSERT_GT(rig.a.evictions(), 0u);
  EXPECT_TRUE(rig.a.under_pressure());
  EXPECT_TRUE(rig.a.under_pressure_now());

  // Allocation traffic moves on without further evictions: the windowed
  // signal decays, the latched one keeps firing until the iteration reset.
  tensor::Tensor* s = rig.reg_a.create("small", tensor::Shape{1, 1, 16, 16},
                                       tensor::TensorKind::kGrad);
  for (uint64_t i = 0; i <= UnifiedTensorPool::kPressureWindowAllocs; ++i) {
    rig.a.alloc_device(s);
    s->residency = Residency::kDevice;
    rig.a.free_device(s);
    s->residency = Residency::kNone;
  }
  EXPECT_FALSE(rig.a.under_pressure_now());
  EXPECT_TRUE(rig.a.under_pressure());

  rig.a.reset_iteration_counters();
  EXPECT_FALSE(rig.a.under_pressure());
  EXPECT_FALSE(rig.a.under_pressure_now());
}

TEST(PeerStaging, HostSpillDegradesGuestToPlainHostResidency) {
  Rig rig(true, false, /*budget=*/4ull << 20);
  tensor::Tensor* t = make_filled(rig.reg_a, rig.a, "act", 128);
  const std::vector<float> before = read_device(rig.a, t);
  ASSERT_TRUE(rig.a.stage_to_peer(t));

  // B reclaims its donated space: the guest spills into A's host pool and
  // A's tensor degrades to the ordinary kHost state.
  ASSERT_TRUE(rig.group.spill_one_guest(rig.b));
  EXPECT_EQ(t->residency, Residency::kHost);
  EXPECT_NE(t->host_handle, 0u);
  EXPECT_EQ(t->peer_device, -1);
  EXPECT_EQ(rig.group.guest_count(), 0u);
  EXPECT_EQ(rig.group.donated_in_use(1), 0u);
  EXPECT_EQ(rig.a.peer_spill_count(), 1u);
  EXPECT_FALSE(rig.group.spill_one_guest(rig.b)) << "nothing left to spill";

  // The ordinary host fetch path takes over, bytes intact.
  rig.a.fetch_from_host(t);
  EXPECT_EQ(read_device(rig.a, t), before);
}

TEST(PeerStaging, GuestSpillTriggersUnderHostAllocationPressure) {
  // B's own allocation reclaims the guest via the alloc_device hook (B has
  // no cache victims of its own, so the guest is the only source of space).
  Rig rig(true, false, /*budget=*/4ull << 20, /*cap_a=*/8ull << 20, /*cap_b=*/1ull << 20);
  tensor::Tensor* t = make_filled(rig.reg_a, rig.a, "act", 128);  // 64 KB
  const std::vector<float> before = read_device(rig.a, t);
  ASSERT_TRUE(rig.a.stage_to_peer(t));

  make_filled(rig.reg_b, rig.b, "own", 512);  // 1 MB: only fits if the guest spills
  EXPECT_EQ(t->residency, Residency::kHost);
  EXPECT_EQ(rig.a.peer_spill_count(), 1u);
  rig.a.fetch_from_host(t);
  EXPECT_EQ(read_device(rig.a, t), before);
}

TEST(PeerStaging, AsyncFetchBackLandsOnTheDmaThreadAndSpillSkipsIt) {
  // Real + async: the fetch-back rides the peer's P2P DMA worker while the
  // tensor stays kPeer; a concurrent spill pass must leave it alone.
  Rig rig(true, /*async=*/true, /*budget=*/4ull << 20);
  tensor::Tensor* t = make_filled(rig.reg_a, rig.a, "act", 128);
  const std::vector<float> before = read_device(rig.a, t);
  ASSERT_TRUE(rig.a.stage_to_peer(t));

  ASSERT_TRUE(rig.a.prefetch_from_peer(t));
  EXPECT_TRUE(rig.a.peer_fetch_pending(t->uid()));
  EXPECT_EQ(t->residency, Residency::kPeer) << "kPeer until the landing retires";
  EXPECT_FALSE(rig.group.spill_one_guest(rig.b)) << "fetch-pending guests are not spillable";

  rig.a.finish_peer_fetch(t);
  EXPECT_EQ(t->residency, Residency::kDevice);
  EXPECT_FALSE(rig.a.peer_fetch_pending(t->uid()));
  EXPECT_EQ(read_device(rig.a, t), before);
  EXPECT_EQ(rig.group.guest_count(), 0u);

  // Dying mid-flight: drop_tensor discards an in-flight fetch-back cleanly.
  tensor::Tensor* u = make_filled(rig.reg_a, rig.a, "dying", 64);
  ASSERT_TRUE(rig.a.stage_to_peer(u));
  ASSERT_TRUE(rig.a.prefetch_from_peer(u));
  rig.a.drop_tensor(u);
  EXPECT_EQ(u->residency, Residency::kDropped);
  EXPECT_EQ(rig.group.guest_count(), 0u);
  EXPECT_EQ(rig.group.donated_in_use(1), 0u);
}

// ---------------------------------------------------------------------------
// Trainer integration: pool-constrained two-stage pipeline on NVLink.

/// Pool-constrained asymmetric pipeline: the explicit cut leaves stage 0 far
/// over its 768 KB pool (constant eviction traffic) while stage 1 has slack
/// to donate — the geometry the peer router exists for.
dist::PipelineParallelConfig staged_pipeline_config(bool staging, uint64_t budget) {
  dist::PipelineParallelConfig cfg;
  cfg.stages = 2;
  cfg.microbatches = 4;
  cfg.global_batch = 32;
  cfg.boundaries = {9};
  cfg.cluster = sim::nvlink_cluster_spec(2);
  cfg.peer_staging = staging;
  cfg.peer_donation_bytes = budget;
  cfg.train.iterations = 4;
  cfg.train.lr = 0.05f;
  cfg.train.momentum = 0.9f;
  return cfg;
}

core::RuntimeOptions pressured_options() {
  core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
  o.real = true;
  o.allow_workspace = false;
  o.recompute = core::RecomputeMode::kNone;
  o.use_liveness = false;
  o.device_capacity = 3ull << 18;
  return o;
}

TEST(PeerStaging, TrainerNumericsAreBitIdenticalAcrossStagingModes) {
  auto factory = [](int batch) { return graph::build_mini_alexnet(batch); };
  auto run = [&](bool staging, uint64_t budget) {
    dist::PipelineParallelTrainer pipe(factory, pressured_options(),
                                       staged_pipeline_config(staging, budget));
    auto rep = pipe.run();
    uint64_t staged = 0, stat_staged = 0;
    for (int s = 0; s < pipe.stages(); ++s) {
      staged += pipe.runtime(s).tensor_pool().peer_stage_count();
      // Engines end every iteration drained.
      EXPECT_EQ(pipe.runtime(s).transfer_engine().pending_count(TransferDir::kP2P), 0u);
    }
    for (const auto& it : rep.stage_stats) {
      for (const auto& st : it) stat_staged += st.peer_stage_count;
    }
    EXPECT_EQ(staged, stat_staged) << "IterationStats lost staging events";
    return std::tuple(rep.losses, staged, rep.stats.back().seconds);
  };
  auto [off_losses, off_staged, off_seconds] = run(false, 0);
  auto [zero_losses, zero_staged, zero_seconds] = run(true, 0);
  auto [on_losses, on_staged, on_seconds] = run(true, 1ull << 30);

  EXPECT_EQ(off_staged, 0u);
  EXPECT_EQ(zero_staged, 0u) << "zero donation budget must never stage";
  EXPECT_GT(on_staged, 0u) << "pressured pipeline never exercised staging";
  // Staging only re-routes copies: training results are bit-identical.
  EXPECT_EQ(off_losses, zero_losses);
  EXPECT_EQ(off_losses, on_losses);
  // Zero budget is the byte-identical no-op path: same virtual timeline too.
  EXPECT_EQ(off_seconds, zero_seconds);
  // The whole point: idle NVLink beats the backlogged D2H uplink.
  EXPECT_LT(on_seconds, off_seconds);
}

}  // namespace
