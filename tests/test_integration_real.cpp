// Real-numerics integration matrix: every miniature network trains (loss
// decreases) under every policy, and — with the conv algorithm pinned — every
// policy produces bit-identical weights to the reference run. This is the
// strongest statement of the repository's central invariant: none of the
// paper's memory techniques, nor any baseline's, alters training.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <tuple>

#include "core/runtime.hpp"
#include "graph/zoo.hpp"
#include "train/trainer.hpp"

namespace {

using namespace sn;

std::unique_ptr<graph::Net> build_tiny(const std::string& name) {
  if (name == "linear") return graph::build_tiny_linear(8);
  if (name == "fanjoin") return graph::build_tiny_fanjoin(8);
  if (name == "resnet") return graph::build_tiny_resnet(8, 3);
  if (name == "alexnet") return graph::build_mini_alexnet(8);
  throw std::invalid_argument(name);
}

struct RunResult {
  std::vector<double> losses;
  std::map<std::string, std::vector<float>> params;
  uint64_t d2h = 0;
  uint64_t replays = 0;
};

RunResult train_real(const std::string& net_name, core::PolicyPreset preset,
                     uint64_t capacity) {
  auto net = build_tiny(net_name);
  core::RuntimeOptions o = core::make_policy(preset);
  o.real = true;
  o.device_capacity = capacity;
  o.host_capacity = 128ull << 20;
  o.allow_workspace = false;  // pin the conv algorithm: vary scheduling only
  core::Runtime rt(*net, o);
  train::Trainer trainer(rt, {.iterations = 6, .lr = 0.02f, .momentum = 0.9f});
  auto rep = trainer.run();
  RunResult r;
  r.losses = rep.losses;
  for (const auto& st : rep.stats) {
    r.d2h += st.bytes_d2h;
    r.replays += st.extra_forwards;
  }
  for (const auto& l : rt.net().layers())
    for (const auto* p : l->params()) r.params[p->name()] = rt.read_tensor(p);
  return r;
}

class RealTrainingMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, core::PolicyPreset>> {};

TEST_P(RealTrainingMatrix, MatchesReferenceBitForBit) {
  auto [net_name, preset] = GetParam();
  // Reference: baseline policy, ample memory (nothing scheduled away).
  auto ref = train_real(net_name, core::PolicyPreset::kBaselineNaive, 256ull << 20);
  auto got = train_real(net_name, preset, 256ull << 20);
  ASSERT_EQ(ref.losses.size(), got.losses.size());
  for (size_t i = 0; i < ref.losses.size(); ++i) {
    ASSERT_EQ(ref.losses[i], got.losses[i]) << "loss diverged at iteration " << i;
  }
  for (const auto& [name, rv] : ref.params) {
    const auto& gv = got.params.at(name);
    ASSERT_EQ(rv.size(), gv.size());
    for (size_t i = 0; i < rv.size(); ++i) {
      ASSERT_EQ(rv[i], gv[i]) << name << "@" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, RealTrainingMatrix,
    ::testing::Combine(::testing::Values("linear", "fanjoin", "resnet", "alexnet"),
                       ::testing::Values(core::PolicyPreset::kCaffeLike,
                                         core::PolicyPreset::kMxnetLike,
                                         core::PolicyPreset::kTfLike,
                                         core::PolicyPreset::kSuperNeurons)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" +
             std::string(core::policy_name(std::get<1>(info.param)));
    });

class RealStarvedMatrix : public ::testing::TestWithParam<std::string> {};

TEST_P(RealStarvedMatrix, StarvedSuperNeuronsMatchesReference) {
  const std::string net_name = GetParam();
  auto ref = train_real(net_name, core::PolicyPreset::kBaselineNaive, 256ull << 20);

  // Find a capacity low enough to force scheduling: params + a couple of
  // working sets.
  auto probe = build_tiny(net_name);
  uint64_t params = 0;
  for (const auto& t : probe->registry().all()) {
    if (t->kind() == tensor::TensorKind::kParam || t->kind() == tensor::TensorKind::kParamGrad)
      params += t->bytes();
  }
  auto got = train_real(net_name, core::PolicyPreset::kSuperNeurons,
                        params + 2 * probe->max_layer_bytes());
  EXPECT_GT(got.d2h + got.replays, 0u) << "configuration was not actually starved";
  for (const auto& [name, rv] : ref.params) {
    const auto& gv = got.params.at(name);
    for (size_t i = 0; i < rv.size(); ++i) {
      ASSERT_EQ(rv[i], gv[i]) << name << "@" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(All, RealStarvedMatrix,
                         ::testing::Values("linear", "fanjoin", "resnet", "alexnet"));

TEST(RealTraining, EveryTinyNetLearns) {
  for (const char* name : {"linear", "fanjoin", "resnet", "alexnet"}) {
    auto net = build_tiny(name);
    core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
    o.real = true;
    o.device_capacity = 64ull << 20;
    core::Runtime rt(*net, o);
    train::Trainer trainer(rt, {.iterations = 25, .lr = 0.05f, .momentum = 0.9f});
    auto rep = trainer.run();
    EXPECT_LT(rep.last_loss(), rep.first_loss()) << name;
  }
}

}  // namespace
