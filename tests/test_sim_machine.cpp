// Tests for the simulated device: stream timelines, DMA overlap, event
// semantics, allocator latency accounting, and the cost model's roofline.
#include <gtest/gtest.h>

#include "sim/costmodel.hpp"
#include "sim/machine.hpp"

namespace {

using namespace sn::sim;

DeviceSpec tiny_spec() {
  DeviceSpec s = k40c_spec();
  s.dma_latency_s = 0.0;
  s.launch_overhead_s = 0.0;
  return s;
}

TEST(Machine, ComputeAdvancesClock) {
  Machine m(tiny_spec());
  EXPECT_DOUBLE_EQ(m.now(), 0.0);
  m.run_compute(1.5);
  EXPECT_DOUBLE_EQ(m.now(), 1.5);
  m.run_compute(0.5);
  EXPECT_DOUBLE_EQ(m.now(), 2.0);
}

TEST(Machine, AsyncCopyOverlapsWithCompute) {
  Machine m(tiny_spec());
  // 8 GB/s pinned: 8 MB takes 1 ms.
  Event e = m.async_copy(CopyDir::kD2H, 8000000ull, /*pinned=*/true);
  EXPECT_NEAR(e.done_at, 1e-3, 1e-9);
  m.run_compute(2e-3);  // compute longer than the copy
  EXPECT_TRUE(m.query_event(e));
  m.wait_event(e);  // already done: no stall
  EXPECT_NEAR(m.now(), 2e-3, 1e-12);
  EXPECT_DOUBLE_EQ(m.counters().stall_time, 0.0);
}

TEST(Machine, WaitStallsWhenCopyOutstandsCompute) {
  Machine m(tiny_spec());
  Event e = m.async_copy(CopyDir::kH2D, 16000000ull, true);  // 2 ms
  m.run_compute(0.5e-3);
  m.wait_event(e);
  EXPECT_NEAR(m.now(), 2e-3, 1e-9);
  EXPECT_NEAR(m.counters().stall_time, 1.5e-3, 1e-9);
}

TEST(Machine, PageableTransfersAreHalfSpeed) {
  Machine m(tiny_spec());
  double pinned = m.copy_seconds(CopyDir::kH2D, 8000000ull, true);
  double pageable = m.copy_seconds(CopyDir::kH2D, 8000000ull, false);
  EXPECT_NEAR(pageable, 2.0 * pinned, 1e-12);
}

TEST(Machine, CopiesOnSameStreamSerialize) {
  Machine m(tiny_spec());
  Event a = m.async_copy(CopyDir::kD2H, 8000000ull, true);
  Event b = m.async_copy(CopyDir::kD2H, 8000000ull, true);
  EXPECT_NEAR(b.done_at, a.done_at + 1e-3, 1e-9);
  // But the H2D engine is independent.
  Event c = m.async_copy(CopyDir::kH2D, 8000000ull, true);
  EXPECT_NEAR(c.done_at, 1e-3, 1e-9);
}

TEST(Machine, SingleCopyEngineSerializesBothDirections) {
  DeviceSpec spec = tiny_spec();
  spec.copy_engines = 1;  // the serialized-DMA baseline
  Machine m(spec);
  Event a = m.async_copy(CopyDir::kD2H, 8000000ull, true);  // 1 ms
  Event b = m.async_copy(CopyDir::kH2D, 8000000ull, true);  // queues behind it
  EXPECT_NEAR(a.done_at, 1e-3, 1e-9);
  EXPECT_NEAR(b.done_at, 2e-3, 1e-9);
  EXPECT_EQ(m.dma_streams().engines(), 1);
}

TEST(Machine, DualCopyEnginesOverlapMixedTraffic) {
  Machine m(tiny_spec());  // copy_engines = 2 (default)
  Event a = m.async_copy(CopyDir::kD2H, 8000000ull, true);
  Event b = m.async_copy(CopyDir::kH2D, 8000000ull, true);
  EXPECT_NEAR(a.done_at, 1e-3, 1e-9);
  EXPECT_NEAR(b.done_at, 1e-3, 1e-9);  // independent engine: no queueing
  EXPECT_EQ(m.dma_streams().engines(), 2);
}

TEST(Machine, PerStreamBusySecondsAccountedToDirection) {
  for (int engines : {1, 2}) {
    DeviceSpec spec = tiny_spec();
    spec.copy_engines = engines;
    Machine m(spec);
    m.async_copy(CopyDir::kD2H, 8000000ull, true);   // 1 ms
    m.async_copy(CopyDir::kH2D, 16000000ull, true);  // 2 ms
    // Occupancy lands on the submitting direction even on a shared engine.
    EXPECT_NEAR(m.counters().seconds_d2h, 1e-3, 1e-9) << engines;
    EXPECT_NEAR(m.counters().seconds_h2d, 2e-3, 1e-9) << engines;
  }
}

TEST(Machine, ResetClearsStreamOccupancy) {
  Machine m(tiny_spec());
  m.async_copy(CopyDir::kD2H, 8000000ull, true);
  m.reset();
  EXPECT_DOUBLE_EQ(m.counters().seconds_d2h, 0.0);
  EXPECT_DOUBLE_EQ(m.dma_streams().stream(CopyDir::kD2H).busy_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(m.dma_streams().stream(CopyDir::kD2H).busy_until(), 0.0);
}

TEST(Machine, CountersTrackTraffic) {
  Machine m(tiny_spec());
  m.async_copy(CopyDir::kD2H, 100, true);
  m.async_copy(CopyDir::kD2H, 200, true);
  m.async_copy(CopyDir::kH2D, 300, true);
  EXPECT_EQ(m.counters().bytes_d2h, 300u);
  EXPECT_EQ(m.counters().bytes_h2d, 300u);
  EXPECT_EQ(m.counters().copies_d2h, 2u);
  EXPECT_EQ(m.counters().copies_h2d, 1u);
}

TEST(Machine, NativeMallocCostsTime) {
  Machine m(k40c_spec());
  m.native_malloc(1ull << 30);
  double t1 = m.now();
  EXPECT_GT(t1, 0.0);
  m.native_free();
  EXPECT_GT(m.now(), t1);
  EXPECT_EQ(m.counters().native_mallocs, 1u);
  EXPECT_EQ(m.counters().native_frees, 1u);
  EXPECT_NEAR(m.counters().malloc_time, m.now(), 1e-12);
}

TEST(Machine, ResetClearsState) {
  Machine m(k40c_spec());
  m.run_compute(1.0);
  m.async_copy(CopyDir::kD2H, 1000, true);
  m.reset();
  EXPECT_DOUBLE_EQ(m.now(), 0.0);
  EXPECT_EQ(m.counters().bytes_d2h, 0u);
}

TEST(CostModel, RooflineFlopBound) {
  CostModel cm(tiny_spec());
  // 4.29e12 flops at eff 1.0 ~ 1 second; few bytes.
  double t = cm.compute_time(4.29e12, 1024, 1.0);
  EXPECT_NEAR(t, 1.0, 1e-6);
}

TEST(CostModel, RooflineBandwidthBound) {
  CostModel cm(tiny_spec());
  // Bandwidth-bound op: zero-ish flops, big bytes.
  double bytes = 288.0e9 * CostModel::kMemEfficiency;  // exactly 1 second
  double t = cm.compute_time(0.0, bytes, 0.5);
  EXPECT_NEAR(t, 1.0, 1e-6);
}

TEST(CostModel, EfficiencyScalesComputeTime) {
  CostModel cm(tiny_spec());
  double fast = cm.compute_time(1e12, 0, 0.6);
  double slow = cm.compute_time(1e12, 0, 0.3);
  EXPECT_NEAR(slow / fast, 2.0, 1e-9);
}

TEST(DeviceSpec, PresetsDiffer) {
  EXPECT_GT(titan_xp_spec().peak_flops, k40c_spec().peak_flops);
  EXPECT_EQ(k40c_spec().dram_bytes, 12ull << 30);
}

}  // namespace
