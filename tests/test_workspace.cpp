// Dynamic workspace allocator tests (paper §3.5): the chooser must pick the
// fastest algorithm whose scratch fits the budget, degrade gracefully to the
// zero-workspace algorithm, and report the unconstrained optimum.
#include <gtest/gtest.h>

#include "core/workspace.hpp"
#include "graph/net.hpp"

namespace {

using namespace sn;
namespace tensor = sn::tensor;

/// Build a single finalized conv layer over the given geometry.
struct ConvFixture {
  graph::Net net;
  graph::ConvLayer* conv = nullptr;

  ConvFixture(int c, int image, int k, int kernel, int stride, int pad) {
    auto* d = net.data("d", tensor::Shape{4, c, image, image});
    conv = static_cast<graph::ConvLayer*>(net.conv("c", d, k, kernel, stride, pad));
    net.softmax_loss("sm", net.fc("f", conv, 2));
    net.finalize();
  }
};

TEST(Workspace, UnlimitedBudgetPicksFastestSupported) {
  ConvFixture f(16, 32, 16, 3, 1, 1);  // 3x3/s1: winograd-eligible
  auto choice = core::choose_conv_algo(*f.conv, true, UINT64_MAX);
  EXPECT_EQ(choice.algo, nn::ConvAlgo::kWinograd);
  EXPECT_EQ(choice.best_algo, nn::ConvAlgo::kWinograd);
  EXPECT_EQ(choice.workspace_bytes, choice.best_workspace_bytes);
}

TEST(Workspace, ZeroBudgetFallsBackToDirect) {
  ConvFixture f(16, 32, 16, 3, 1, 1);
  auto choice = core::choose_conv_algo(*f.conv, true, 0);
  EXPECT_EQ(choice.algo, nn::ConvAlgo::kDirect);
  EXPECT_EQ(choice.workspace_bytes, 0u);
  // The unconstrained optimum is still reported (Fig. 12's second series).
  EXPECT_NE(choice.best_algo, nn::ConvAlgo::kDirect);
  EXPECT_GT(choice.best_workspace_bytes, 0u);
}

TEST(Workspace, IntermediateBudgetExcludesTheOptimum) {
  ConvFixture f(16, 32, 16, 3, 1, 1);
  uint64_t wino = f.conv->workspace_bytes(nn::ConvAlgo::kWinograd, true);
  // A budget one byte short of the optimum's demand must yield a different,
  // slower-but-fitting algorithm (paper: "skips convolution algorithms that
  // require more memory than it can provide").
  auto choice = core::choose_conv_algo(*f.conv, true, wino - 1);
  EXPECT_NE(choice.algo, nn::ConvAlgo::kWinograd);
  EXPECT_LT(choice.workspace_bytes, wino);
  EXPECT_EQ(choice.best_algo, nn::ConvAlgo::kWinograd);
  EXPECT_LT(choice.efficiency,
            nn::conv_algo_efficiency(f.conv->desc(), nn::ConvAlgo::kWinograd,
                                     nn::ConvPass::kForward));
}

TEST(Workspace, StridedConvNeverPicksWinogradOrFft) {
  ConvFixture f(8, 32, 8, 3, 2, 1);
  auto choice = core::choose_conv_algo(*f.conv, true, UINT64_MAX);
  EXPECT_TRUE(choice.algo == nn::ConvAlgo::kDirect || choice.algo == nn::ConvAlgo::kIm2colGemm);
}

TEST(Workspace, LargeKernelPrefersFft) {
  ConvFixture f(8, 64, 8, 7, 1, 3);
  auto choice = core::choose_conv_algo(*f.conv, true, UINT64_MAX);
  EXPECT_EQ(choice.algo, nn::ConvAlgo::kFftTiled);
}

TEST(Workspace, BackwardUsesBackwardWorkspaceSizing) {
  ConvFixture f(16, 32, 16, 3, 1, 1);
  auto fwd = core::choose_conv_algo(*f.conv, true, UINT64_MAX);
  auto bwd = core::choose_conv_algo(*f.conv, false, UINT64_MAX);
  // Backward winograd runs the im2col path, so its workspace differs.
  EXPECT_GT(fwd.workspace_bytes, 0u);
  EXPECT_GT(bwd.workspace_bytes, 0u);
  EXPECT_EQ(bwd.workspace_bytes, f.conv->workspace_bytes(bwd.algo, false));
}

TEST(Workspace, StaticChooserIgnoresFasterAlgos) {
  ConvFixture f(16, 32, 16, 3, 1, 1);
  auto choice = core::choose_conv_algo_static(*f.conv, true, UINT64_MAX);
  EXPECT_EQ(choice.algo, nn::ConvAlgo::kIm2colGemm);  // never winograd/fft
  auto starved = core::choose_conv_algo_static(*f.conv, true, 0);
  EXPECT_EQ(starved.algo, nn::ConvAlgo::kDirect);
}

TEST(Workspace, EfficiencyMonotoneInBudget) {
  // Property: more budget can never yield a slower choice.
  ConvFixture f(32, 28, 32, 3, 1, 1);
  double last_eff = -1.0;
  for (uint64_t budget = 0; budget < (512ull << 20); budget += 32ull << 20) {
    auto choice = core::choose_conv_algo(*f.conv, true, budget);
    EXPECT_GE(choice.efficiency + 1e-12, last_eff) << "budget " << budget;
    last_eff = choice.efficiency;
  }
}

class WorkspaceGeometrySweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(WorkspaceGeometrySweep, ChoiceAlwaysFitsBudget) {
  auto [kernel, stride, image] = GetParam();
  if (kernel > image) GTEST_SKIP();
  ConvFixture f(8, image, 8, kernel, stride, kernel / 2);
  for (uint64_t budget : {uint64_t{0}, uint64_t{1} << 16, uint64_t{1} << 20, uint64_t{1} << 24,
                          UINT64_MAX}) {
    for (bool fwd : {true, false}) {
      auto choice = core::choose_conv_algo(*f.conv, fwd, budget);
      EXPECT_LE(choice.workspace_bytes, budget == UINT64_MAX ? UINT64_MAX : budget);
      EXPECT_TRUE(nn::conv_algo_supported(f.conv->desc(), choice.algo));
      EXPECT_GT(choice.efficiency, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, WorkspaceGeometrySweep,
                         ::testing::Combine(::testing::Values(1, 3, 5, 7, 11),
                                            ::testing::Values(1, 2),
                                            ::testing::Values(16, 32)));

}  // namespace
