// dist/ subsystem tests: ring all-reduce numerics, data-parallel training
// parity (the flagship multi-device invariant: sharding a batch across
// replicas never changes training results), and collective telemetry.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "dist/communicator.hpp"
#include "dist/data_parallel.hpp"
#include "graph/zoo.hpp"
#include "train/trainer.hpp"
#include "util/pairwise.hpp"
#include "util/rng.hpp"

namespace {

using namespace sn;

std::vector<std::vector<float>> random_buffers(int devices, uint64_t elems, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<float>> bufs(static_cast<size_t>(devices));
  for (auto& b : bufs) {
    b.resize(elems);
    for (auto& v : b) v = rng.uniform(-1.0f, 1.0f);
  }
  return bufs;
}

std::unique_ptr<dist::Communicator> make_comm(sim::Cluster& cluster,
                                              std::vector<std::unique_ptr<core::TransferEngine>>& engines) {
  std::vector<core::TransferEngine*> ptrs;
  for (int d = 0; d < cluster.size(); ++d) {
    engines.push_back(std::make_unique<core::TransferEngine>(cluster.machine(d), true, d));
    ptrs.push_back(engines.back().get());
  }
  return std::make_unique<dist::Communicator>(cluster, std::move(ptrs));
}

TEST(Communicator, RingAllreduceMatchesSerialReduction) {
  const int kDevices = 4;
  const uint64_t kElems = 1037;  // deliberately not divisible by the ring
  sim::Cluster cluster(sim::pcie_cluster_spec(kDevices));
  std::vector<std::unique_ptr<core::TransferEngine>> engines;
  auto comm = make_comm(cluster, engines);

  auto bufs = random_buffers(kDevices, kElems, 42);
  std::vector<double> reference(kElems, 0.0);
  for (const auto& b : bufs) {
    for (uint64_t i = 0; i < kElems; ++i) reference[i] += static_cast<double>(b[i]);
  }

  std::vector<float*> ptrs;
  for (auto& b : bufs) ptrs.push_back(b.data());
  auto stats = comm->allreduce_sum(ptrs, kElems, dist::AllreduceAlgo::kRing);

  for (uint64_t i = 0; i < kElems; ++i) {
    EXPECT_NEAR(bufs[0][i], reference[i], 1e-4) << "element " << i;
  }
  // Every device finishes with bit-identical bytes.
  for (int d = 1; d < kDevices; ++d) EXPECT_EQ(bufs[0], bufs[static_cast<size_t>(d)]);
  EXPECT_EQ(stats.chunks, static_cast<uint64_t>(kDevices));
  EXPECT_EQ(stats.algo, dist::AllreduceAlgo::kRing);
  EXPECT_GT(stats.seconds, 0.0);
}

TEST(Communicator, HalvingDoublingMatchesThePairwiseTreeBitForBit) {
  // The exact-N>=4 invariant: for power-of-two groups the halving-doubling
  // all-reduce must reproduce the binary-counter pairwise tree
  // (util/pairwise.hpp) bit for bit — the tree a single device would build
  // over the concatenated shards.
  for (int devices : {2, 4, 8}) {
    const uint64_t kElems = 1037;  // odd, so segment halving hits uneven splits
    sim::Cluster cluster(sim::pcie_cluster_spec(devices));
    std::vector<std::unique_ptr<core::TransferEngine>> engines;
    auto comm = make_comm(cluster, engines);

    auto bufs = random_buffers(devices, kElems, 1234 + static_cast<uint64_t>(devices));
    std::vector<float> reference(kElems);
    for (uint64_t i = 0; i < kElems; ++i) {
      reference[i] = util::pairwise_sum<float>(
          static_cast<uint64_t>(devices),
          [&](uint64_t d) { return bufs[static_cast<size_t>(d)][i]; });
    }

    std::vector<float*> ptrs;
    for (auto& b : bufs) ptrs.push_back(b.data());
    auto stats = comm->allreduce_sum(ptrs, kElems);  // kAuto -> halving-doubling

    EXPECT_EQ(stats.algo, dist::AllreduceAlgo::kHalvingDoubling)
        << devices << " devices ran " << dist::allreduce_algo_name(stats.algo);
    for (int d = 0; d < devices; ++d) {
      EXPECT_EQ(bufs[static_cast<size_t>(d)], reference) << devices << " devices, rank " << d;
    }
    EXPECT_GT(stats.seconds, 0.0);
    // Same per-rank volume as the ring: 2 * (N-1)/N of the buffer.
    const uint64_t total = kElems * sizeof(float);
    EXPECT_NEAR(static_cast<double>(stats.p2p_bytes),
                2.0 * (devices - 1.0) / devices * static_cast<double>(total), total * 0.01);
  }
}

TEST(Communicator, AutoFallsBackToRingOffPowersOfTwo) {
  sim::Cluster cluster(sim::pcie_cluster_spec(3));
  std::vector<std::unique_ptr<core::TransferEngine>> engines;
  auto comm = make_comm(cluster, engines);
  std::vector<float*> bufs(3, nullptr);
  auto stats = comm->allreduce_sum(bufs, 1 << 16);
  EXPECT_EQ(stats.algo, dist::AllreduceAlgo::kRing)
      << "3 devices ran " << dist::allreduce_algo_name(stats.algo);
  EXPECT_THROW(comm->allreduce_sum(bufs, 1 << 16, dist::AllreduceAlgo::kHalvingDoubling),
               std::invalid_argument);
}

TEST(Communicator, SubGroupRunsOnItsDevicesOnly) {
  // A communicator over a device subset (a hybrid stage's replica row) must
  // reduce within the group and leave the rest of the cluster untouched.
  sim::Cluster cluster(sim::pcie_cluster_spec(4));
  std::vector<std::unique_ptr<core::TransferEngine>> engines;
  for (int d = 0; d < 4; ++d) {
    engines.push_back(std::make_unique<core::TransferEngine>(cluster.machine(d), true, d));
  }
  dist::Communicator sub(cluster, {1, 3}, {engines[1].get(), engines[3].get()});
  ASSERT_EQ(sub.devices(), 2);
  EXPECT_EQ(sub.device_id(0), 1);
  EXPECT_EQ(sub.device_id(1), 3);

  const uint64_t kElems = 257;
  auto bufs = random_buffers(2, kElems, 77);
  std::vector<float> expect(kElems);
  for (uint64_t i = 0; i < kElems; ++i) expect[i] = bufs[0][i] + bufs[1][i];
  std::vector<float*> ptrs{bufs[0].data(), bufs[1].data()};
  sub.allreduce_sum(ptrs, kElems);
  EXPECT_EQ(bufs[0], expect);
  EXPECT_EQ(bufs[1], expect);

  // Group members sent; bystanders did not.
  EXPECT_GT(cluster.machine(1).counters().bytes_p2p, 0u);
  EXPECT_GT(cluster.machine(3).counters().bytes_p2p, 0u);
  EXPECT_EQ(cluster.machine(0).counters().bytes_p2p, 0u);
  EXPECT_EQ(cluster.machine(2).counters().bytes_p2p, 0u);
}

TEST(Communicator, RejectsMalformedGroups) {
  sim::Cluster cluster(sim::pcie_cluster_spec(2));
  std::vector<std::unique_ptr<core::TransferEngine>> engines;
  for (int d = 0; d < 2; ++d) {
    engines.push_back(std::make_unique<core::TransferEngine>(cluster.machine(d), true, d));
  }
  // Duplicate device, out-of-range device, engine/device mismatch.
  EXPECT_THROW(dist::Communicator(cluster, {0, 0}, {engines[0].get(), engines[1].get()}),
               std::invalid_argument);
  EXPECT_THROW(dist::Communicator(cluster, {0, 5}, {engines[0].get(), engines[1].get()}),
               std::invalid_argument);
  EXPECT_THROW(dist::Communicator(cluster, {1}, {engines[0].get()}), std::invalid_argument);
}

TEST(Communicator, TwoDeviceAllreduceIsExact) {
  const uint64_t kElems = 513;
  sim::Cluster cluster(sim::pcie_cluster_spec(2));
  std::vector<std::unique_ptr<core::TransferEngine>> engines;
  auto comm = make_comm(cluster, engines);

  auto bufs = random_buffers(2, kElems, 7);
  std::vector<float> expect(kElems);
  for (uint64_t i = 0; i < kElems; ++i) expect[i] = bufs[0][i] + bufs[1][i];

  std::vector<float*> ptrs{bufs[0].data(), bufs[1].data()};
  comm->allreduce_sum(ptrs, kElems);
  // A two-operand float add is commutative in IEEE, so both chunk owners
  // compute the exact same bits.
  EXPECT_EQ(bufs[0], expect);
  EXPECT_EQ(bufs[1], expect);
}

TEST(Communicator, UnbackedAllreduceStillModelsTimeAndTelemetry) {
  sim::Cluster cluster(sim::nvlink_cluster_spec(4));
  std::vector<std::unique_ptr<core::TransferEngine>> engines;
  auto comm = make_comm(cluster, engines);

  std::vector<float*> bufs(4, nullptr);
  auto stats = comm->allreduce_sum(bufs, 1 << 20);
  EXPECT_GT(stats.seconds, 0.0);
  EXPECT_GT(stats.p2p_bytes, 0u);
  for (int d = 0; d < 4; ++d) {
    EXPECT_GT(cluster.machine(d).counters().bytes_p2p, 0u);
    EXPECT_GT(cluster.machine(d).counters().copies_p2p, 0u);
    EXPECT_GT(engines[static_cast<size_t>(d)]->stats().completed_p2p, 0u);
  }
  // Ring volume per device: 2 * (N-1)/N of the buffer.
  const uint64_t total = (1ull << 20) * sizeof(float);
  EXPECT_NEAR(static_cast<double>(stats.p2p_bytes), 2.0 * 3.0 / 4.0 * total, total * 0.01);
}

TEST(Communicator, NvlinkAllreduceBeatsPcie) {
  auto run = [](sim::ClusterSpec spec) {
    sim::Cluster cluster(spec);
    std::vector<std::unique_ptr<core::TransferEngine>> engines;
    auto comm = make_comm(cluster, engines);
    std::vector<float*> bufs(static_cast<size_t>(cluster.size()), nullptr);
    return comm->allreduce_sum(bufs, 25u << 20).seconds;
  };
  EXPECT_LT(run(sim::nvlink_cluster_spec(4)), run(sim::pcie_cluster_spec(4)));
}

TEST(Communicator, CombineLossSumsIsPairwise) {
  std::vector<double> sums{0.1, 0.2, 0.3, 0.4};
  double expect = (sums[0] + sums[1]) + (sums[2] + sums[3]);
  EXPECT_EQ(dist::Communicator::combine_loss_sums(sums), expect);
}

TEST(Pairwise, ShardSumsComposeToFullSum) {
  util::Rng rng(99);
  std::vector<float> vals(64);
  for (auto& v : vals) v = rng.uniform(-2.0f, 2.0f);
  float full = util::pairwise_sum<float>(64, [&](uint64_t i) { return vals[i]; });
  float lo = util::pairwise_sum<float>(32, [&](uint64_t i) { return vals[i]; });
  float hi = util::pairwise_sum<float>(32, [&](uint64_t i) { return vals[32 + i]; });
  EXPECT_EQ(full, lo + hi);
}

// ---------------------------------------------------------------------------
// Data-parallel training

core::RuntimeOptions parity_options() {
  core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
  o.real = true;
  o.device_capacity = 32ull << 20;
  // Pin convolutions to the workspace-free algorithm: the dynamic choice
  // depends on free device memory, which legitimately differs between a
  // batch-B and a batch-B/2 run.
  o.allow_workspace = false;
  return o;
}

train::TrainConfig parity_train_config(int iterations) {
  train::TrainConfig tc;
  tc.iterations = iterations;
  tc.lr = 0.05f;
  tc.momentum = 0.9f;
  return tc;
}

TEST(DataParallel, TwoDevicesMatchSingleDeviceBitForBit) {
  const int kGlobalBatch = 8, kIters = 5;
  auto factory = [](int batch) { return graph::build_tiny_linear(batch); };
  core::RuntimeOptions o = parity_options();
  train::TrainConfig tc = parity_train_config(kIters);

  // Single device, combined batch.
  auto net = factory(kGlobalBatch);
  core::Runtime rt(*net, o);
  train::Trainer trainer(rt, tc);
  auto single = trainer.run();

  // Two devices, sharded batch.
  dist::DataParallelConfig cfg;
  cfg.devices = 2;
  cfg.global_batch = kGlobalBatch;
  cfg.cluster = sim::pcie_cluster_spec(2);
  cfg.train = tc;
  dist::DataParallelTrainer dp(factory, o, cfg);
  auto multi = dp.run();

  ASSERT_EQ(single.losses.size(), multi.losses.size());
  for (size_t i = 0; i < single.losses.size(); ++i) {
    EXPECT_EQ(single.losses[i], multi.losses[i]) << "iteration " << i;
  }

  // Weights end bit-identical too — on every replica.
  const auto& single_layers = rt.net().layers();
  for (int d = 0; d < 2; ++d) {
    core::Runtime& rep = dp.runtime(d);
    const auto& rep_layers = rep.net().layers();
    ASSERT_EQ(single_layers.size(), rep_layers.size());
    for (size_t li = 0; li < single_layers.size(); ++li) {
      const auto& sp = single_layers[li]->params();
      const auto& rp = rep_layers[li]->params();
      ASSERT_EQ(sp.size(), rp.size());
      for (size_t pi = 0; pi < sp.size(); ++pi) {
        EXPECT_EQ(rt.read_tensor(sp[pi]), rep.read_tensor(rp[pi]))
            << "device " << d << " param " << sp[pi]->name();
      }
    }
  }
}

TEST(DataParallel, FourDevicesMatchSingleDeviceBitForBit) {
  // The ROADMAP's exact-N>=4 item: with the halving-doubling collective
  // (kAuto picks it for power-of-two groups) 4-replica training reproduces
  // the single-device pairwise tree exactly — losses AND weights.
  const int kGlobalBatch = 8, kIters = 4;
  auto factory = [](int batch) { return graph::build_tiny_linear(batch); };
  core::RuntimeOptions o = parity_options();
  train::TrainConfig tc = parity_train_config(kIters);

  auto net = factory(kGlobalBatch);
  core::Runtime rt(*net, o);
  train::Trainer trainer(rt, tc);
  auto single = trainer.run();

  dist::DataParallelConfig cfg;
  cfg.devices = 4;
  cfg.global_batch = kGlobalBatch;
  cfg.cluster = sim::pcie_cluster_spec(4);
  cfg.train = tc;
  dist::DataParallelTrainer dp(factory, o, cfg);
  auto multi = dp.run();

  ASSERT_EQ(single.losses.size(), multi.losses.size());
  for (size_t i = 0; i < single.losses.size(); ++i) {
    EXPECT_EQ(single.losses[i], multi.losses[i]) << "iteration " << i;
  }
  const auto& single_layers = rt.net().layers();
  for (int d = 0; d < 4; ++d) {
    core::Runtime& rep = dp.runtime(d);
    const auto& rep_layers = rep.net().layers();
    for (size_t li = 0; li < single_layers.size(); ++li) {
      const auto& sp = single_layers[li]->params();
      const auto& rp = rep_layers[li]->params();
      for (size_t pi = 0; pi < sp.size(); ++pi) {
        EXPECT_EQ(rt.read_tensor(sp[pi]), rep.read_tensor(rp[pi]))
            << "device " << d << " param " << sp[pi]->name();
      }
    }
  }
}

TEST(DataParallel, LossDecreasesAndReplicasStayInLockstep) {
  auto factory = [](int batch) { return graph::build_tiny_fanjoin(batch); };
  core::RuntimeOptions o = parity_options();
  dist::DataParallelConfig cfg;
  cfg.devices = 2;
  cfg.global_batch = 8;
  cfg.cluster = sim::nvlink_cluster_spec(2);
  cfg.train = parity_train_config(12);
  dist::DataParallelTrainer dp(factory, o, cfg);
  auto report = dp.run();
  EXPECT_LT(report.last_loss(), report.first_loss());

  const auto& l0 = dp.runtime(0).net().layers();
  const auto& l1 = dp.runtime(1).net().layers();
  for (size_t li = 0; li < l0.size(); ++li) {
    const auto& p0 = l0[li]->params();
    const auto& p1 = l1[li]->params();
    for (size_t pi = 0; pi < p0.size(); ++pi) {
      EXPECT_EQ(dp.runtime(0).read_tensor(p0[pi]), dp.runtime(1).read_tensor(p1[pi]));
    }
  }
}

TEST(DataParallel, MemoryPressureDoesNotChangeLosses) {
  // The single-GPU invariant, lifted to the cluster: squeezing device
  // capacity (forcing offload/eviction inside each replica) must not change
  // data-parallel training results.
  auto run = [](uint64_t capacity) {
    auto factory = [](int batch) { return graph::build_tiny_linear(batch, 16); };
    core::RuntimeOptions o = parity_options();
    o.device_capacity = capacity;
    dist::DataParallelConfig cfg;
    cfg.devices = 2;
    cfg.global_batch = 8;
    cfg.cluster = sim::pcie_cluster_spec(2);
    cfg.train = parity_train_config(6);
    dist::DataParallelTrainer dp(factory, o, cfg);
    return dp.run().losses;
  };
  EXPECT_EQ(run(64ull << 20), run(1ull << 20));
}

TEST(DataParallel, CollectiveTelemetryIsVisible) {
  auto factory = [](int batch) { return graph::build_tiny_linear(batch); };
  core::RuntimeOptions o = parity_options();
  dist::DataParallelConfig cfg;
  cfg.devices = 4;
  cfg.global_batch = 8;
  cfg.cluster = sim::nvlink_cluster_spec(4);
  cfg.train = parity_train_config(2);
  dist::DataParallelTrainer dp(factory, o, cfg);
  auto report = dp.run();

  ASSERT_EQ(report.stats.size(), 2u);
  ASSERT_EQ(report.device_stats[0].size(), 4u);
  for (const auto& agg : report.stats) {
    EXPECT_GT(agg.p2p_bytes, 0u);
    EXPECT_GT(agg.allreduce_seconds, 0.0);
    EXPECT_GT(agg.seconds, 0.0);
  }
  for (const auto& st : report.device_stats[0]) {
    EXPECT_GT(st.p2p_bytes, 0u);
    EXPECT_GT(st.allreduce_seconds, 0.0);
  }
  // Per-step telemetry is attributed to its device and replica column.
  EXPECT_EQ(dp.runtime(3).step_telemetry().front().device_id, 3);
  EXPECT_EQ(dp.runtime(3).step_telemetry().front().replica, 3);
  EXPECT_EQ(dp.runtime(3).step_telemetry().front().stage, 0);
}

TEST(DataParallel, SimModeScalesOut) {
  // Pure simulation (no backing): paper-scale replicas still schedule, and
  // the collective advances virtual time.
  auto factory = [](int batch) { return graph::build_mini_alexnet(batch); };
  core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
  o.real = false;
  dist::DataParallelConfig cfg;
  cfg.devices = 4;
  cfg.global_batch = 64;
  cfg.cluster = sim::nvlink_cluster_spec(4);
  cfg.train = parity_train_config(2);
  dist::DataParallelTrainer dp(factory, o, cfg);
  auto report = dp.run();
  EXPECT_EQ(report.losses[0], 0.0);  // unbacked: no numerics
  EXPECT_GT(report.stats[0].seconds, 0.0);
  EXPECT_GT(report.stats[0].p2p_bytes, 0u);
}

TEST(DataParallel, RejectsIndivisibleBatch) {
  auto factory = [](int batch) { return graph::build_tiny_linear(batch); };
  core::RuntimeOptions o = parity_options();
  dist::DataParallelConfig cfg;
  cfg.devices = 3;
  cfg.global_batch = 8;
  cfg.train = parity_train_config(1);
  EXPECT_THROW(dist::DataParallelTrainer(factory, o, cfg), std::invalid_argument);
}

}  // namespace
