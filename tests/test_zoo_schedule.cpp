// Zoo x policy scheduling matrix (simulation mode): every paper network must
// schedule under every framework policy without crashing — completing the
// iteration or raising a clean OomError — plus cross-cutting properties:
// capacity monotonicity, liveness safety on large non-linear graphs, and
// telemetry consistency.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/liveness.hpp"
#include "core/runtime.hpp"
#include "graph/zoo.hpp"

namespace {

using namespace sn;

std::unique_ptr<graph::Net> build_by_name(const std::string& name, int batch) {
  if (name == "AlexNet") return graph::build_alexnet(batch);
  if (name == "VGG16") return graph::build_vgg(16, batch);
  if (name == "VGG19") return graph::build_vgg(19, batch);
  if (name == "InceptionV4") return graph::build_inception_v4(batch);
  if (name == "ResNet50") return graph::build_resnet_preset(50, batch);
  if (name == "ResNet101") return graph::build_resnet_preset(101, batch);
  if (name == "DenseNet121") return graph::build_densenet121(batch);
  throw std::invalid_argument(name);
}

class ZooPolicyMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, core::PolicyPreset>> {};

TEST_P(ZooPolicyMatrix, SchedulesOrOomsCleanly) {
  auto [name, preset] = GetParam();
  auto net = build_by_name(name, /*batch=*/8);
  core::RuntimeOptions o = core::make_policy(preset);
  o.real = false;
  try {
    core::Runtime rt(*net, o);
    auto st = rt.train_iteration(nullptr, nullptr);
    EXPECT_GT(st.peak_mem, 0u);
    EXPECT_LE(st.peak_mem, o.device_capacity);
    EXPECT_GT(st.seconds, 0.0);
    EXPECT_EQ(rt.step_telemetry().size(), net->steps().size());
  } catch (const core::OomError& e) {
    EXPECT_GT(e.requested, 0u);  // clean OOM with diagnostics is acceptable
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, ZooPolicyMatrix,
    ::testing::Combine(::testing::Values("AlexNet", "VGG16", "VGG19", "InceptionV4", "ResNet50",
                                         "ResNet101", "DenseNet121"),
                       ::testing::Values(core::PolicyPreset::kBaselineNaive,
                                         core::PolicyPreset::kCaffeLike,
                                         core::PolicyPreset::kTorchLike,
                                         core::PolicyPreset::kMxnetLike,
                                         core::PolicyPreset::kTfLike,
                                         core::PolicyPreset::kSuperNeurons)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" +
             std::string(core::policy_name(std::get<1>(info.param)));
    });

class ZooLivenessSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooLivenessSweep, UsesAlwaysWithinLiveIntervals) {
  auto net = build_by_name(GetParam(), 4);
  core::Liveness lv(*net);
  for (int s = 0; s < lv.num_steps(); ++s) {
    for (uint64_t uid : lv.uses(s)) {
      if (lv.is_persistent(uid)) continue;
      ASSERT_LE(lv.first_occurrence(uid), s) << GetParam() << " step " << s;
      ASSERT_GE(lv.last_occurrence(uid), s) << GetParam() << " step " << s;
    }
  }
}

TEST_P(ZooLivenessSweep, RecomputeExtensionCoversReplayReads) {
  // With recompute enabled, every tensor a forward replay could read must be
  // live until its producer's backward step — the property that prevents
  // "use of never-defined tensor" failures during segment replay.
  auto net = build_by_name(GetParam(), 4);
  core::Liveness lv(*net, /*extend_for_recompute=*/true);
  int nsteps = lv.num_steps();
  for (const auto& t : net->registry().all()) {
    if (lv.is_persistent(t->uid()) || lv.first_occurrence(t->uid()) < 0) continue;
    if (t->kind() != tensor::TensorKind::kData && t->kind() != tensor::TensorKind::kAux)
      continue;
    ASSERT_GE(lv.last_occurrence(t->uid()), nsteps - 1 - t->producer_step) << t->name();
  }
}

INSTANTIATE_TEST_SUITE_P(All, ZooLivenessSweep,
                         ::testing::Values("AlexNet", "VGG16", "InceptionV4", "ResNet50",
                                           "DenseNet121"));

TEST(CapacityMonotonicity, MoreMemoryNeverBreaksAWorkingConfig) {
  // Property: if a policy completes at capacity C, it completes at 2C.
  for (auto preset : {core::PolicyPreset::kMxnetLike, core::PolicyPreset::kSuperNeurons}) {
    uint64_t c = 2ull << 30;
    bool ran_before = false;
    for (int step = 0; step < 4; ++step, c *= 2) {
      auto net = graph::build_alexnet(256);
      core::RuntimeOptions o = core::make_policy(preset);
      o.real = false;
      o.device_capacity = c;
      bool ran;
      try {
        core::Runtime rt(*net, o);
        rt.train_iteration(nullptr, nullptr);
        ran = true;
      } catch (const core::OomError&) {
        ran = false;
      }
      EXPECT_TRUE(!ran_before || ran) << core::policy_name(preset) << " regressed at " << c;
      ran_before = ran_before || ran;
    }
    EXPECT_TRUE(ran_before);
  }
}

TEST(ZooSchedule, DenseNetFullJoinsSchedule) {
  // DenseNet's chained concats are the paper's "full join" (Fig. 1b right):
  // every unit's input stays live until the block's last concat.
  auto net = graph::build_densenet121(4, 64, 10);
  core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
  o.real = false;
  core::Runtime rt(*net, o);
  auto st = rt.train_iteration(nullptr, nullptr);
  EXPECT_GT(st.peak_mem, 0u);
  EXPECT_LE(st.peak_mem, o.device_capacity);
}

TEST(ZooSchedule, SecondIterationIsSteadyState) {
  // Iteration 2 must not demand more memory than iteration 1 + params
  // residue, and its virtual time should be stable (within 20%).
  auto net = graph::build_resnet_preset(50, 16);
  core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
  o.real = false;
  core::Runtime rt(*net, o);
  auto s1 = rt.train_iteration(nullptr, nullptr);
  auto s2 = rt.train_iteration(nullptr, nullptr);
  auto s3 = rt.train_iteration(nullptr, nullptr);
  EXPECT_NEAR(s3.seconds, s2.seconds, 0.2 * s2.seconds);
  EXPECT_LE(s3.peak_mem, s2.peak_mem + (64ull << 20));
  EXPECT_GT(s1.seconds, 0.0);
}

TEST(ZooSchedule, TorchInplaceReducesPeakVsCaffe) {
  auto peak_of = [](core::PolicyPreset preset) {
    auto net = graph::build_vgg(16, 16);
    core::RuntimeOptions o = core::make_policy(preset);
    o.real = false;
    o.device_capacity = 64ull << 30;
    core::Runtime rt(*net, o);
    return rt.train_iteration(nullptr, nullptr).peak_mem;
  };
  // VGG is ReLU-heavy: in-place activations must show.
  EXPECT_LT(peak_of(core::PolicyPreset::kTorchLike), peak_of(core::PolicyPreset::kCaffeLike));
}

}  // namespace
