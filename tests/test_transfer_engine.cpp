// TransferEngine unit tests: tag-based submit/poll/wait semantics on both
// backends, virtual-time gating, per-direction DMA workers and the pipelined
// double-buffered staging pipeline, stream priorities, P2P stream isolation,
// and backend selection.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "core/transfer_engine.hpp"
#include "mem/host_pool.hpp"
#include "sim/cluster.hpp"

namespace {

using namespace sn;
using core::DmaTransferEngine;
using core::TransferDir;
using core::TransferEngine;
using core::TransferPriority;

std::vector<float> pattern(size_t n, float base) {
  std::vector<float> v(n);
  std::iota(v.begin(), v.end(), base);
  return v;
}

TEST(TransferEngine, SubmitPendsUntilVirtualEventCompletes) {
  sim::Machine m(sim::k40c_spec());
  TransferEngine eng(m, /*pinned=*/true);
  eng.submit(TransferDir::kD2H, 7, nullptr, nullptr, 1 << 20);
  EXPECT_TRUE(eng.pending(TransferDir::kD2H, 7));
  // The copy takes virtual time; at t=0 it cannot have completed.
  EXPECT_FALSE(eng.try_retire(TransferDir::kD2H, 7));
  EXPECT_TRUE(eng.pending(TransferDir::kD2H, 7));
  // Enough compute to hide the copy: now it retires without a wait.
  m.run_compute(1.0);
  EXPECT_TRUE(eng.try_retire(TransferDir::kD2H, 7));
  EXPECT_FALSE(eng.pending(TransferDir::kD2H, 7));
  auto s = eng.stats();
  EXPECT_EQ(s.submitted_d2h, 1u);
  EXPECT_EQ(s.completed_d2h, 1u);
}

TEST(TransferEngine, WaitStallsTheComputeStream) {
  sim::Machine m(sim::k40c_spec());
  TransferEngine eng(m, /*pinned=*/true);
  eng.submit(TransferDir::kH2D, 3, nullptr, nullptr, 8 << 20);
  const double stall0 = m.counters().stall_time;
  eng.wait(TransferDir::kH2D, 3);
  EXPECT_GT(m.counters().stall_time, stall0);
  EXPECT_FALSE(eng.pending(TransferDir::kH2D, 3));
  // Waiting again on a retired tag is a no-op.
  const double stall1 = m.counters().stall_time;
  eng.wait(TransferDir::kH2D, 3);
  EXPECT_EQ(m.counters().stall_time, stall1);
}

TEST(TransferEngine, TryRetireOnUnknownTagIsTrue) {
  sim::Machine m(sim::k40c_spec());
  TransferEngine eng(m, true);
  EXPECT_TRUE(eng.try_retire(TransferDir::kD2H, 99));
  EXPECT_TRUE(eng.try_retire(TransferDir::kH2D, 99));
}

TEST(TransferEngine, DiscardRetiresWithoutVirtualStall) {
  sim::Machine m(sim::k40c_spec());
  TransferEngine eng(m, true);
  eng.submit(TransferDir::kD2H, 1, nullptr, nullptr, 64 << 20);
  const double stall0 = m.counters().stall_time;
  eng.discard(TransferDir::kD2H, 1);
  EXPECT_EQ(m.counters().stall_time, stall0);
  EXPECT_FALSE(eng.pending(TransferDir::kD2H, 1));
  // A thrown-away transfer is not a completion.
  EXPECT_EQ(eng.stats().completed_d2h, 0u);
  EXPECT_EQ(eng.stats().discarded_d2h, 1u);
}

TEST(TransferEngine, InlineBackendMovesBytesAtSubmit) {
  sim::Machine m(sim::k40c_spec());
  TransferEngine eng(m, true);
  auto src = pattern(1024, 1.0f);
  std::vector<float> dst(1024, 0.0f);
  eng.submit(TransferDir::kD2H, 5, src.data(), dst.data(), src.size() * sizeof(float));
  // Synchronous backend: the bytes are there before any wait.
  EXPECT_EQ(dst, src);
  EXPECT_EQ(eng.stats().inline_copies, 1u);
  EXPECT_EQ(eng.stats().dma_copies, 0u);
  eng.drain();
}

TEST(TransferEngine, DrainRetiresEverythingBothDirections) {
  sim::Machine m(sim::k40c_spec());
  TransferEngine eng(m, true);
  for (uint64_t tag = 0; tag < 4; ++tag) {
    eng.submit(TransferDir::kD2H, tag, nullptr, nullptr, 1 << 20);
    eng.submit(TransferDir::kH2D, tag, nullptr, nullptr, 1 << 20);
  }
  EXPECT_EQ(eng.pending_count(TransferDir::kD2H), 4u);
  EXPECT_EQ(eng.pending_count(TransferDir::kH2D), 4u);
  eng.drain();
  EXPECT_EQ(eng.pending_count(TransferDir::kD2H), 0u);
  EXPECT_EQ(eng.pending_count(TransferDir::kH2D), 0u);
  auto s = eng.stats();
  EXPECT_EQ(s.completed_d2h, 4u);
  EXPECT_EQ(s.completed_h2d, 4u);
}

TEST(DmaTransferEngine, CopiesRunOnTheDmaWorker) {
  sim::Machine m(sim::k40c_spec());
  mem::HostPool hp(32 << 20, /*pinned=*/true, /*backed=*/true);
  DmaTransferEngine eng(m, true, hp);
  auto src = pattern(4096, 10.0f);
  std::vector<float> dst(4096, 0.0f);
  eng.submit(TransferDir::kD2H, 11, src.data(), dst.data(), src.size() * sizeof(float));
  eng.wait(TransferDir::kD2H, 11);  // ensure_landed: bytes must be there now
  EXPECT_EQ(dst, src);
  auto s = eng.stats();
  EXPECT_EQ(s.dma_copies, 1u);
  EXPECT_EQ(s.dma_copies_d2h, 1u);
  EXPECT_EQ(s.dma_copies_h2d, 0u);
  EXPECT_EQ(s.inline_copies, 0u);
}

TEST(DmaTransferEngine, ConcurrentDirectionsDrainOnSeparateWorkers) {
  sim::Machine m(sim::k40c_spec());
  mem::HostPool hp(64 << 20, /*pinned=*/true, /*backed=*/true);
  DmaTransferEngine eng(m, true, hp);
  const size_t n = (1 << 20) / sizeof(float);
  auto out_src = pattern(n, 1.0f);
  auto in_src = pattern(n, 1000.0f);
  std::vector<float> out_dst(n, 0.0f), in_dst(n, 0.0f);
  // Offload and prefetch in flight simultaneously.
  eng.submit(TransferDir::kD2H, 1, out_src.data(), out_dst.data(), n * sizeof(float));
  eng.submit(TransferDir::kH2D, 2, in_src.data(), in_dst.data(), n * sizeof(float));
  eng.drain();
  EXPECT_EQ(out_dst, out_src);
  EXPECT_EQ(in_dst, in_src);
  auto s = eng.stats();
  // One copy per direction, each on its own stream's worker.
  EXPECT_EQ(s.dma_copies_d2h, 1u);
  EXPECT_EQ(s.dma_copies_h2d, 1u);
  EXPECT_EQ(s.dma_copies, 2u);
}

TEST(DmaTransferEngine, ScheduleIsBitIdenticalToTheSynchronousEngine) {
  // The virtual-time schedule (completion events, stream occupancy, stalls)
  // must not depend on the backend: the multi-stream DMA engine merely moves
  // the same bytes on the wall clock.
  sim::Machine m_sync(sim::k40c_spec());
  sim::Machine m_async(sim::k40c_spec());
  mem::HostPool hp(32 << 20, /*pinned=*/true, /*backed=*/true);
  TransferEngine sync_eng(m_sync, true);
  DmaTransferEngine async_eng(m_async, true, hp);

  auto drive = [](TransferEngine& eng, sim::Machine& m, std::vector<double>& events) {
    for (uint64_t tag = 0; tag < 6; ++tag) {
      TransferDir dir = tag % 2 ? TransferDir::kH2D : TransferDir::kD2H;
      // Mixed priorities must not perturb virtual time either.
      TransferPriority prio = tag % 3 ? TransferPriority::kNormal : TransferPriority::kHigh;
      sim::Event e = eng.submit(dir, tag, nullptr, nullptr, (tag + 1) << 20, prio);
      events.push_back(e.done_at);
      m.run_compute(1e-4);
      eng.try_retire(dir, tag);
    }
    eng.drain();
    events.push_back(m.now());
  };
  std::vector<double> sync_events, async_events;
  drive(sync_eng, m_sync, sync_events);
  drive(async_eng, m_async, async_events);
  ASSERT_EQ(sync_events.size(), async_events.size());
  for (size_t i = 0; i < sync_events.size(); ++i) {
    EXPECT_DOUBLE_EQ(sync_events[i], async_events[i]) << i;
  }
  EXPECT_DOUBLE_EQ(m_sync.counters().stall_time, m_async.counters().stall_time);
  EXPECT_DOUBLE_EQ(m_sync.counters().seconds_d2h, m_async.counters().seconds_d2h);
  EXPECT_DOUBLE_EQ(m_sync.counters().seconds_h2d, m_async.counters().seconds_h2d);
}

TEST(DmaTransferEngine, PollFromComputeThreadWhileBothWorkersDrain) {
  sim::Machine m(sim::k40c_spec());
  mem::HostPool hp(64 << 20, /*pinned=*/true, /*backed=*/true);
  DmaTransferEngine eng(m, true, hp);
  constexpr int kPerDir = 8;
  const size_t n = 64 * 1024;
  std::vector<std::vector<float>> srcs, dsts;
  for (int i = 0; i < 2 * kPerDir; ++i) {
    srcs.push_back(pattern(n, static_cast<float>(i)));
    dsts.emplace_back(n, 0.0f);
  }
  for (int i = 0; i < kPerDir; ++i) {
    eng.submit(TransferDir::kD2H, static_cast<uint64_t>(i), srcs[i].data(), dsts[i].data(),
               n * sizeof(float));
    eng.submit(TransferDir::kH2D, static_cast<uint64_t>(i), srcs[kPerDir + i].data(),
               dsts[kPerDir + i].data(), n * sizeof(float));
  }
  // Poll from the compute thread while both workers drain; virtual compute
  // slices gate the retires deterministically.
  int guard = 0;
  while (eng.pending_count(TransferDir::kD2H) + eng.pending_count(TransferDir::kH2D) > 0) {
    m.run_compute(1e-3);
    for (int i = 0; i < kPerDir; ++i) {
      eng.try_retire(TransferDir::kD2H, static_cast<uint64_t>(i));
      eng.try_retire(TransferDir::kH2D, static_cast<uint64_t>(i));
    }
    ASSERT_LT(++guard, 1000) << "transfers never retired";
  }
  for (int i = 0; i < 2 * kPerDir; ++i) EXPECT_EQ(dsts[i], srcs[i]) << i;
  auto s = eng.stats();
  EXPECT_EQ(s.completed_d2h, static_cast<uint64_t>(kPerDir));
  EXPECT_EQ(s.completed_h2d, static_cast<uint64_t>(kPerDir));
}

TEST(DmaTransferEngine, P2PRunsOnPerLinkWorkersIsolatedFromPcieStreams) {
  sim::Cluster cluster(sim::pcie_cluster_spec(3));
  mem::HostPool hp(32 << 20, /*pinned=*/true, /*backed=*/true);
  DmaTransferEngine eng(cluster.machine(0), true, hp);
  const size_t n = 4096;
  auto d2h_src = pattern(n, 1.0f);
  auto p2p_src1 = pattern(n, 100.0f);
  auto p2p_src2 = pattern(n, 200.0f);
  std::vector<float> d2h_dst(n, 0.0f), p2p_dst1(n, 0.0f), p2p_dst2(n, 0.0f);
  // A big local offload must not delay the P2P hops in virtual time: they
  // ride their own per-link streams (and, physically, per-link workers).
  sim::Event big = eng.submit(TransferDir::kD2H, 1, d2h_src.data(), d2h_dst.data(),
                              n * sizeof(float));
  sim::Event hop1 = eng.submit_p2p(2, p2p_src1.data(), p2p_dst1.data(), n * sizeof(float),
                                   /*peer=*/1, /*not_before=*/0.0);
  sim::Event hop2 = eng.submit_p2p(3, p2p_src2.data(), p2p_dst2.data(), n * sizeof(float),
                                   /*peer=*/2, /*not_before=*/0.0);
  // Distinct links: the two hops do not queue on each other either, and
  // neither queues behind the D2H stream — each completes in exactly one
  // unqueued link transfer.
  EXPECT_DOUBLE_EQ(hop1.done_at, cluster.p2p_seconds(n * sizeof(float)));
  EXPECT_DOUBLE_EQ(hop1.done_at, hop2.done_at);
  (void)big;
  eng.drain();
  EXPECT_EQ(d2h_dst, d2h_src);
  EXPECT_EQ(p2p_dst1, p2p_src1);
  EXPECT_EQ(p2p_dst2, p2p_src2);
  auto s = eng.stats();
  EXPECT_EQ(s.dma_copies_p2p, 2u);
  EXPECT_EQ(s.dma_copies_d2h, 1u);
  EXPECT_EQ(s.completed_p2p, 2u);
}

TEST(DmaTransferEngine, HighPriorityOvertakesQueuedNormalJobs) {
  sim::Machine m(sim::k40c_spec());
  mem::HostPool hp(32 << 20, /*pinned=*/true, /*backed=*/true);
  DmaTransferEngine eng(m, true, hp);
  const size_t n = 1024;
  auto normal_src = pattern(n, 1.0f);
  auto urgent_src = pattern(n, 500.0f);
  std::vector<float> dst(n, 0.0f);
  // Freeze the H2D worker so both jobs are queued before anything runs, then
  // release: the high-priority job must run first, so the normal job's bytes
  // land last and win.
  eng.pause_workers_for_testing(true);
  eng.submit(TransferDir::kH2D, 1, normal_src.data(), dst.data(), n * sizeof(float),
             TransferPriority::kNormal);
  eng.submit(TransferDir::kH2D, 2, urgent_src.data(), dst.data(), n * sizeof(float),
             TransferPriority::kHigh);
  eng.pause_workers_for_testing(false);
  eng.drain();
  EXPECT_EQ(dst, normal_src) << "normal-priority job should have run AFTER the high one";
}

TEST(DmaTransferEngine, LargeCopyPipelinesThroughStagingCorrectly) {
  sim::Machine m(sim::k40c_spec());
  mem::HostPool hp(64 << 20, /*pinned=*/true, /*backed=*/true);
  // Staging buffers far smaller than the transfer: exercises the pipelined
  // double-buffered chunk loop (stager + drainer), incl. a ragged tail chunk.
  DmaTransferEngine eng(m, true, hp, /*staging_bytes=*/4096);
  const size_t n = (1 << 20) / sizeof(float) + 13;
  auto src = pattern(n, 0.5f);
  std::vector<float> dst(n, 0.0f);
  eng.submit(TransferDir::kH2D, 2, src.data(), dst.data(), n * sizeof(float));
  eng.wait(TransferDir::kH2D, 2);
  EXPECT_EQ(dst, src);
  // The chunks demonstrably went through the pinned staging pipeline.
  const uint64_t expect_chunks = (n * sizeof(float) + 4095) / 4096;
  EXPECT_EQ(eng.stats().staged_chunks, expect_chunks);
}

TEST(DmaTransferEngine, FifoOrderAcrossManyJobsOnOneStream) {
  sim::Machine m(sim::k40c_spec());
  mem::HostPool hp(32 << 20, /*pinned=*/true, /*backed=*/true);
  DmaTransferEngine eng(m, true, hp);
  // Chain: job k copies buf[k] -> buf[k+1]. Same-priority jobs on one stream
  // run FIFO (and a job only starts once its predecessor fully drained), so
  // after waiting the last job the first pattern has propagated to the end.
  constexpr int kJobs = 16;
  std::vector<std::vector<float>> bufs(kJobs + 1, std::vector<float>(256, 0.0f));
  bufs[0] = pattern(256, 42.0f);
  for (int k = 0; k < kJobs; ++k) {
    eng.submit(TransferDir::kD2H, static_cast<uint64_t>(k), bufs[k].data(), bufs[k + 1].data(),
               256 * sizeof(float));
  }
  eng.wait(TransferDir::kD2H, kJobs - 1);
  EXPECT_EQ(bufs[kJobs], bufs[0]);
  eng.drain();
  EXPECT_EQ(eng.stats().dma_copies, static_cast<uint64_t>(kJobs));
}

TEST(DmaTransferEngine, StagingPairsPerDirectionLiveInTheHostPool) {
  sim::Machine m(sim::k40c_spec());
  mem::HostPool hp(32 << 20, /*pinned=*/true, /*backed=*/true);
  {
    DmaTransferEngine eng(m, true, hp);
    // One pinned double-buffer pair per PCIe-direction worker (D2H + H2D).
    EXPECT_EQ(hp.in_use(), 4 * DmaTransferEngine::kDefaultStagingBytes);
  }
  // ...and returned when the engine shuts down.
  EXPECT_EQ(hp.in_use(), 0u);
  EXPECT_EQ(hp.stats().bad_frees, 0u);
}

TEST(DmaTransferEngine, PartialStagingAllocationFallsBackCleanly) {
  sim::Machine m(sim::k40c_spec());
  // Room for one staging block but not two: the engine must not hold a
  // single useless block out of the pinned budget.
  mem::HostPool hp(DmaTransferEngine::kDefaultStagingBytes + 1024, /*pinned=*/true,
                   /*backed=*/true);
  DmaTransferEngine eng(m, true, hp);
  EXPECT_EQ(hp.in_use(), 0u);
  auto src = pattern(512, 3.0f);
  std::vector<float> dst(512, 0.0f);
  eng.submit(TransferDir::kD2H, 1, src.data(), dst.data(), src.size() * sizeof(float));
  eng.wait(TransferDir::kD2H, 1);
  EXPECT_EQ(dst, src);  // direct memcpy path still moves the bytes
  EXPECT_EQ(eng.stats().dma_copies, 1u);
  EXPECT_EQ(eng.stats().staged_chunks, 0u);
}

TEST(DmaTransferEngine, TightPoolDegradesOneDirectionAtATime) {
  sim::Machine m(sim::k40c_spec());
  // Room for exactly one pair: the D2H (offload) worker keeps staging, the
  // H2D worker falls back to direct copies — deterministically.
  mem::HostPool hp(2 * DmaTransferEngine::kDefaultStagingBytes + 1024, /*pinned=*/true,
                   /*backed=*/true);
  DmaTransferEngine eng(m, true, hp);
  EXPECT_EQ(hp.in_use(), 2 * DmaTransferEngine::kDefaultStagingBytes);
  const size_t n = DmaTransferEngine::kDefaultStagingBytes / sizeof(float) * 3;
  auto out_src = pattern(n, 1.0f);
  auto in_src = pattern(n, 9.0f);
  std::vector<float> out_dst(n, 0.0f), in_dst(n, 0.0f);
  eng.submit(TransferDir::kD2H, 1, out_src.data(), out_dst.data(), n * sizeof(float));
  eng.submit(TransferDir::kH2D, 2, in_src.data(), in_dst.data(), n * sizeof(float));
  eng.drain();
  EXPECT_EQ(out_dst, out_src);
  EXPECT_EQ(in_dst, in_src);
  EXPECT_GT(eng.stats().staged_chunks, 0u);  // the D2H copy staged
}

TEST(DmaTransferEngine, P2PLargeCopyPipelinesThroughLinkStaging) {
  // The per-link workers run the same pinned double-buffer + drainer
  // pipeline as the PCIe directions: a bulk activation stream chunks
  // through the pair, ragged tail included.
  sim::Cluster cluster(sim::pcie_cluster_spec(2));
  mem::HostPool hp(64 << 20, /*pinned=*/true, /*backed=*/true);
  DmaTransferEngine eng(cluster.machine(0), true, hp, /*staging_bytes=*/4096);
  const size_t n = (1 << 20) / sizeof(float) + 13;
  auto src = pattern(n, 2.5f);
  std::vector<float> dst(n, 0.0f);
  eng.submit_p2p(7, src.data(), dst.data(), n * sizeof(float), /*peer=*/1, /*not_before=*/0.0);
  eng.wait(TransferDir::kP2P, 7);
  EXPECT_EQ(dst, src);
  const uint64_t expect_chunks = (n * sizeof(float) + 4095) / 4096;
  auto s = eng.stats();
  EXPECT_EQ(s.staged_chunks_p2p, expect_chunks);
  EXPECT_EQ(s.staged_chunks, expect_chunks);  // PCIe pairs idle: all chunks are P2P's
  EXPECT_EQ(s.dma_copies_p2p, 1u);
}

TEST(DmaTransferEngine, P2PStagingPairsCarveLazilyAndReturnToThePool) {
  sim::Cluster cluster(sim::pcie_cluster_spec(3));
  mem::HostPool hp(32 << 20, /*pinned=*/true, /*backed=*/true);
  {
    DmaTransferEngine eng(cluster.machine(0), true, hp);
    // Only the PCIe pairs exist up front; each link worker carves its pair
    // at the link's first submit.
    EXPECT_EQ(hp.in_use(), 4 * DmaTransferEngine::kDefaultStagingBytes);
    std::vector<float> src(256, 1.0f), dst(256, 0.0f);
    eng.submit_p2p(1, src.data(), dst.data(), 256 * sizeof(float), /*peer=*/1, 0.0);
    eng.wait(TransferDir::kP2P, 1);
    EXPECT_EQ(hp.in_use(), 6 * DmaTransferEngine::kDefaultStagingBytes);
    eng.submit_p2p(2, src.data(), dst.data(), 256 * sizeof(float), /*peer=*/2, 0.0);
    eng.wait(TransferDir::kP2P, 2);
    EXPECT_EQ(hp.in_use(), 8 * DmaTransferEngine::kDefaultStagingBytes);
  }
  EXPECT_EQ(hp.in_use(), 0u);
  EXPECT_EQ(hp.stats().bad_frees, 0u);
}

TEST(DmaTransferEngine, P2PHighPriorityLandsOutOfSubmitOrder) {
  // Mirror of the PCIe priority test on a link worker: freeze, queue a
  // normal then a high job to the same destination, release — the high job
  // runs first, so the normal job's bytes land last and win. The landing
  // bookkeeping (landed_floor + out-of-order set) must absorb the
  // reordering and still retire both.
  sim::Cluster cluster(sim::pcie_cluster_spec(2));
  mem::HostPool hp(32 << 20, /*pinned=*/true, /*backed=*/true);
  DmaTransferEngine eng(cluster.machine(0), true, hp);
  const size_t n = 1024;
  auto normal_src = pattern(n, 1.0f);
  auto urgent_src = pattern(n, 500.0f);
  std::vector<float> dst(n, 0.0f);
  eng.pause_workers_for_testing(true);
  eng.submit_p2p(1, normal_src.data(), dst.data(), n * sizeof(float), /*peer=*/1, 0.0,
                 TransferPriority::kNormal);
  eng.submit_p2p(2, urgent_src.data(), dst.data(), n * sizeof(float), /*peer=*/1, 0.0,
                 TransferPriority::kHigh);
  eng.pause_workers_for_testing(false);
  eng.drain();
  EXPECT_EQ(dst, normal_src) << "normal-priority job should have run AFTER the high one";
  EXPECT_EQ(eng.stats().completed_p2p, 2u);
}

TEST(DmaTransferEngine, P2PStagingIsolatedAcrossLinks) {
  // Concurrent bulk streams on distinct links each chunk through their own
  // staging pair — bytes must not interleave across links, and the virtual
  // events stay one unqueued link transfer each.
  sim::Cluster cluster(sim::pcie_cluster_spec(3));
  mem::HostPool hp(64 << 20, /*pinned=*/true, /*backed=*/true);
  DmaTransferEngine eng(cluster.machine(0), true, hp, /*staging_bytes=*/8192);
  const size_t n = 64 * 1024;
  auto src1 = pattern(n, 10.0f);
  auto src2 = pattern(n, 90.0f);
  std::vector<float> dst1(n, 0.0f), dst2(n, 0.0f);
  sim::Event e1 = eng.submit_p2p(1, src1.data(), dst1.data(), n * sizeof(float), 1, 0.0);
  sim::Event e2 = eng.submit_p2p(2, src2.data(), dst2.data(), n * sizeof(float), 2, 0.0);
  EXPECT_DOUBLE_EQ(e1.done_at, cluster.p2p_seconds(n * sizeof(float)));
  EXPECT_DOUBLE_EQ(e1.done_at, e2.done_at);
  eng.drain();
  EXPECT_EQ(dst1, src1);
  EXPECT_EQ(dst2, src2);
  const uint64_t per_stream = (n * sizeof(float) + 8191) / 8192;
  EXPECT_EQ(eng.stats().staged_chunks_p2p, 2 * per_stream);
}

TEST(TransferEngine, AwaitLandingDeliversBytesWithoutRetiringOrStalling) {
  // The pipeline receiver's physical gate: bytes are guaranteed present,
  // but the transfer stays pending (the virtual event still governs
  // scheduling) and the sender's compute stream is not stalled.
  sim::Cluster cluster(sim::pcie_cluster_spec(2));
  mem::HostPool hp(32 << 20, /*pinned=*/true, /*backed=*/true);
  DmaTransferEngine eng(cluster.machine(0), true, hp);
  const size_t n = 4096;
  auto src = pattern(n, 3.0f);
  std::vector<float> dst(n, 0.0f);
  eng.submit_p2p(5, src.data(), dst.data(), n * sizeof(float), /*peer=*/1, /*not_before=*/0.0);
  const double stall0 = cluster.machine(0).counters().stall_time;
  eng.await_landing(TransferDir::kP2P, 5);
  EXPECT_EQ(dst, src);
  EXPECT_EQ(cluster.machine(0).counters().stall_time, stall0);
  EXPECT_TRUE(eng.pending(TransferDir::kP2P, 5));
  EXPECT_EQ(eng.stats().completed_p2p, 0u);
  // Unknown tags are a no-op.
  eng.await_landing(TransferDir::kD2H, 999);
  // Once virtual time passes the event, the normal retire path completes it.
  cluster.machine(0).run_compute(1.0);
  EXPECT_TRUE(eng.try_retire(TransferDir::kP2P, 5));
  EXPECT_EQ(eng.stats().completed_p2p, 1u);
}

TEST(MakeTransferEngine, SelectsBackendFromMode) {
  sim::Machine m(sim::k40c_spec());
  mem::HostPool hp(32 << 20, true, true);
  EXPECT_FALSE(core::make_transfer_engine(m, hp, /*real=*/false, /*async=*/true)->async_backend());
  EXPECT_FALSE(core::make_transfer_engine(m, hp, /*real=*/true, /*async=*/false)->async_backend());
  EXPECT_TRUE(core::make_transfer_engine(m, hp, /*real=*/true, /*async=*/true)->async_backend());
}

}  // namespace
