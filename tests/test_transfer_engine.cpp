// TransferEngine unit tests: tag-based submit/poll/wait semantics on both
// backends, virtual-time gating, DMA-thread data movement through the
// double-buffered staging area, and backend selection.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "core/transfer_engine.hpp"
#include "mem/host_pool.hpp"

namespace {

using namespace sn;
using core::DmaTransferEngine;
using core::TransferDir;
using core::TransferEngine;

std::vector<float> pattern(size_t n, float base) {
  std::vector<float> v(n);
  std::iota(v.begin(), v.end(), base);
  return v;
}

TEST(TransferEngine, SubmitPendsUntilVirtualEventCompletes) {
  sim::Machine m(sim::k40c_spec());
  TransferEngine eng(m, /*pinned=*/true);
  eng.submit(TransferDir::kD2H, 7, nullptr, nullptr, 1 << 20);
  EXPECT_TRUE(eng.pending(TransferDir::kD2H, 7));
  // The copy takes virtual time; at t=0 it cannot have completed.
  EXPECT_FALSE(eng.try_retire(TransferDir::kD2H, 7));
  EXPECT_TRUE(eng.pending(TransferDir::kD2H, 7));
  // Enough compute to hide the copy: now it retires without a wait.
  m.run_compute(1.0);
  EXPECT_TRUE(eng.try_retire(TransferDir::kD2H, 7));
  EXPECT_FALSE(eng.pending(TransferDir::kD2H, 7));
  auto s = eng.stats();
  EXPECT_EQ(s.submitted_d2h, 1u);
  EXPECT_EQ(s.completed_d2h, 1u);
}

TEST(TransferEngine, WaitStallsTheComputeStream) {
  sim::Machine m(sim::k40c_spec());
  TransferEngine eng(m, /*pinned=*/true);
  eng.submit(TransferDir::kH2D, 3, nullptr, nullptr, 8 << 20);
  const double stall0 = m.counters().stall_time;
  eng.wait(TransferDir::kH2D, 3);
  EXPECT_GT(m.counters().stall_time, stall0);
  EXPECT_FALSE(eng.pending(TransferDir::kH2D, 3));
  // Waiting again on a retired tag is a no-op.
  const double stall1 = m.counters().stall_time;
  eng.wait(TransferDir::kH2D, 3);
  EXPECT_EQ(m.counters().stall_time, stall1);
}

TEST(TransferEngine, TryRetireOnUnknownTagIsTrue) {
  sim::Machine m(sim::k40c_spec());
  TransferEngine eng(m, true);
  EXPECT_TRUE(eng.try_retire(TransferDir::kD2H, 99));
  EXPECT_TRUE(eng.try_retire(TransferDir::kH2D, 99));
}

TEST(TransferEngine, DiscardRetiresWithoutVirtualStall) {
  sim::Machine m(sim::k40c_spec());
  TransferEngine eng(m, true);
  eng.submit(TransferDir::kD2H, 1, nullptr, nullptr, 64 << 20);
  const double stall0 = m.counters().stall_time;
  eng.discard(TransferDir::kD2H, 1);
  EXPECT_EQ(m.counters().stall_time, stall0);
  EXPECT_FALSE(eng.pending(TransferDir::kD2H, 1));
  // A thrown-away transfer is not a completion.
  EXPECT_EQ(eng.stats().completed_d2h, 0u);
  EXPECT_EQ(eng.stats().discarded_d2h, 1u);
}

TEST(TransferEngine, InlineBackendMovesBytesAtSubmit) {
  sim::Machine m(sim::k40c_spec());
  TransferEngine eng(m, true);
  auto src = pattern(1024, 1.0f);
  std::vector<float> dst(1024, 0.0f);
  eng.submit(TransferDir::kD2H, 5, src.data(), dst.data(), src.size() * sizeof(float));
  // Synchronous backend: the bytes are there before any wait.
  EXPECT_EQ(dst, src);
  EXPECT_EQ(eng.stats().inline_copies, 1u);
  EXPECT_EQ(eng.stats().dma_copies, 0u);
  eng.drain();
}

TEST(TransferEngine, DrainRetiresEverythingBothDirections) {
  sim::Machine m(sim::k40c_spec());
  TransferEngine eng(m, true);
  for (uint64_t tag = 0; tag < 4; ++tag) {
    eng.submit(TransferDir::kD2H, tag, nullptr, nullptr, 1 << 20);
    eng.submit(TransferDir::kH2D, tag, nullptr, nullptr, 1 << 20);
  }
  EXPECT_EQ(eng.pending_count(TransferDir::kD2H), 4u);
  EXPECT_EQ(eng.pending_count(TransferDir::kH2D), 4u);
  eng.drain();
  EXPECT_EQ(eng.pending_count(TransferDir::kD2H), 0u);
  EXPECT_EQ(eng.pending_count(TransferDir::kH2D), 0u);
  auto s = eng.stats();
  EXPECT_EQ(s.completed_d2h, 4u);
  EXPECT_EQ(s.completed_h2d, 4u);
}

TEST(DmaTransferEngine, CopiesRunOnTheDmaThread) {
  sim::Machine m(sim::k40c_spec());
  mem::HostPool hp(32 << 20, /*pinned=*/true, /*backed=*/true);
  DmaTransferEngine eng(m, true, hp);
  auto src = pattern(4096, 10.0f);
  std::vector<float> dst(4096, 0.0f);
  eng.submit(TransferDir::kD2H, 11, src.data(), dst.data(), src.size() * sizeof(float));
  eng.wait(TransferDir::kD2H, 11);  // ensure_landed: bytes must be there now
  EXPECT_EQ(dst, src);
  auto s = eng.stats();
  EXPECT_EQ(s.dma_copies, 1u);
  EXPECT_EQ(s.inline_copies, 0u);
}

TEST(DmaTransferEngine, LargeCopyChunksThroughStagingCorrectly) {
  sim::Machine m(sim::k40c_spec());
  mem::HostPool hp(64 << 20, /*pinned=*/true, /*backed=*/true);
  // Staging buffers far smaller than the transfer: exercises the
  // double-buffered chunk loop, including a ragged tail chunk.
  DmaTransferEngine eng(m, true, hp, /*staging_bytes=*/4096);
  const size_t n = (1 << 20) / sizeof(float) + 13;
  auto src = pattern(n, 0.5f);
  std::vector<float> dst(n, 0.0f);
  eng.submit(TransferDir::kH2D, 2, src.data(), dst.data(), n * sizeof(float));
  eng.wait(TransferDir::kH2D, 2);
  EXPECT_EQ(dst, src);
}

TEST(DmaTransferEngine, FifoOrderAcrossManyJobs) {
  sim::Machine m(sim::k40c_spec());
  mem::HostPool hp(32 << 20, /*pinned=*/true, /*backed=*/true);
  DmaTransferEngine eng(m, true, hp);
  // Chain: job k copies buf[k] -> buf[k+1]. FIFO execution means after
  // waiting the last job, the first pattern has propagated to the end.
  constexpr int kJobs = 16;
  std::vector<std::vector<float>> bufs(kJobs + 1, std::vector<float>(256, 0.0f));
  bufs[0] = pattern(256, 42.0f);
  for (int k = 0; k < kJobs; ++k) {
    eng.submit(TransferDir::kD2H, static_cast<uint64_t>(k), bufs[k].data(), bufs[k + 1].data(),
               256 * sizeof(float));
  }
  eng.wait(TransferDir::kD2H, kJobs - 1);
  EXPECT_EQ(bufs[kJobs], bufs[0]);
  eng.drain();
  EXPECT_EQ(eng.stats().dma_copies, static_cast<uint64_t>(kJobs));
}

TEST(DmaTransferEngine, StagingLivesInTheHostPool) {
  sim::Machine m(sim::k40c_spec());
  mem::HostPool hp(32 << 20, /*pinned=*/true, /*backed=*/true);
  {
    DmaTransferEngine eng(m, true, hp);
    // Two staging buffers are carved from the pinned pool.
    EXPECT_EQ(hp.in_use(), 2 * DmaTransferEngine::kDefaultStagingBytes);
  }
  // ...and returned when the engine shuts down.
  EXPECT_EQ(hp.in_use(), 0u);
  EXPECT_EQ(hp.stats().bad_frees, 0u);
}

TEST(DmaTransferEngine, PartialStagingAllocationFallsBackCleanly) {
  sim::Machine m(sim::k40c_spec());
  // Room for one staging block but not two: the engine must not hold a
  // single useless block out of the pinned budget.
  mem::HostPool hp(DmaTransferEngine::kDefaultStagingBytes + 1024, /*pinned=*/true,
                   /*backed=*/true);
  DmaTransferEngine eng(m, true, hp);
  EXPECT_EQ(hp.in_use(), 0u);
  auto src = pattern(512, 3.0f);
  std::vector<float> dst(512, 0.0f);
  eng.submit(TransferDir::kD2H, 1, src.data(), dst.data(), src.size() * sizeof(float));
  eng.wait(TransferDir::kD2H, 1);
  EXPECT_EQ(dst, src);  // direct memcpy path still moves the bytes
  EXPECT_EQ(eng.stats().dma_copies, 1u);
}

TEST(MakeTransferEngine, SelectsBackendFromMode) {
  sim::Machine m(sim::k40c_spec());
  mem::HostPool hp(32 << 20, true, true);
  EXPECT_FALSE(core::make_transfer_engine(m, hp, /*real=*/false, /*async=*/true)->async_backend());
  EXPECT_FALSE(core::make_transfer_engine(m, hp, /*real=*/true, /*async=*/false)->async_backend());
  EXPECT_TRUE(core::make_transfer_engine(m, hp, /*real=*/true, /*async=*/true)->async_backend());
}

}  // namespace
