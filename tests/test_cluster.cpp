// sim::Cluster + P2P transfer tests: link timing/serialization, per-device
// counters, and the TransferEngine's kP2P direction.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/transfer_engine.hpp"
#include "sim/cluster.hpp"

namespace {

using namespace sn;

TEST(LinkSpec, NvlinkBeatsPcie) {
  sim::LinkSpec nv = sim::nvlink_link_spec();
  sim::LinkSpec pcie = sim::pcie_p2p_link_spec();
  EXPECT_GT(nv.bandwidth, pcie.bandwidth);
  EXPECT_LT(nv.latency_s, pcie.latency_s);
}

TEST(Cluster, MachinesCarryDeviceIds) {
  sim::Cluster cluster(sim::pcie_cluster_spec(4));
  ASSERT_EQ(cluster.size(), 4);
  for (int d = 0; d < 4; ++d) {
    EXPECT_EQ(cluster.machine(d).device_id(), d);
    EXPECT_EQ(cluster.machine(d).now(), 0.0);
  }
}

TEST(GridView, MapsStageReplicaCoordinatesToDevices) {
  sim::Cluster cluster(sim::pcie_cluster_spec(6));
  sim::GridView grid(cluster, 3, 2);
  EXPECT_EQ(grid.stages(), 3);
  EXPECT_EQ(grid.replicas(), 2);
  // Stage-major layout: a stage's replica row is contiguous, a replica's
  // pipeline column strides by R.
  EXPECT_EQ(grid.device(0, 0), 0);
  EXPECT_EQ(grid.device(0, 1), 1);
  EXPECT_EQ(grid.device(2, 1), 5);
  EXPECT_EQ(grid.stage_of(5), 2);
  EXPECT_EQ(grid.replica_of(5), 1);
  EXPECT_EQ(grid.replica_group(1), (std::vector<int>{2, 3}));
  EXPECT_EQ(grid.pipeline_column(1), (std::vector<int>{1, 3, 5}));
  // The view shares the cluster's machines (no copies).
  EXPECT_EQ(&grid.machine(2, 1), &cluster.machine(5));
  // Round trip over the whole grid.
  for (int s = 0; s < 3; ++s) {
    for (int r = 0; r < 2; ++r) {
      const int d = grid.device(s, r);
      EXPECT_EQ(grid.stage_of(d), s);
      EXPECT_EQ(grid.replica_of(d), r);
    }
  }
}

TEST(GridView, RejectsMismatchedGeometry) {
  sim::Cluster cluster(sim::pcie_cluster_spec(4));
  EXPECT_THROW(sim::GridView(cluster, 3, 2), std::invalid_argument);
  EXPECT_THROW(sim::GridView(cluster, 0, 4), std::invalid_argument);
  EXPECT_NO_THROW(sim::GridView(cluster, 2, 2));
  EXPECT_NO_THROW(sim::GridView(cluster, 4, 1));
  EXPECT_NO_THROW(sim::GridView(cluster, 1, 4));
}

TEST(Cluster, P2pCopyModelsLatencyPlusBandwidth) {
  sim::Cluster cluster(sim::pcie_cluster_spec(2));
  const uint64_t bytes = 100 << 20;
  double expect = cluster.spec().link.latency_s +
                  static_cast<double>(bytes) / cluster.spec().link.bandwidth;
  EXPECT_DOUBLE_EQ(cluster.p2p_seconds(bytes), expect);
  sim::Event e = cluster.p2p_copy(0, 1, bytes, /*not_before=*/0.0);
  EXPECT_DOUBLE_EQ(e.done_at, expect);
}

TEST(Cluster, SameLinkSerializesDistinctLinksOverlap) {
  sim::Cluster cluster(sim::pcie_cluster_spec(3));
  const uint64_t bytes = 10 << 20;
  double dur = cluster.p2p_seconds(bytes);
  // Two copies on link 0->1 serialize.
  sim::Event a = cluster.p2p_copy(0, 1, bytes, 0.0);
  sim::Event b = cluster.p2p_copy(0, 1, bytes, 0.0);
  EXPECT_DOUBLE_EQ(a.done_at, dur);
  EXPECT_DOUBLE_EQ(b.done_at, 2 * dur);
  // A copy on an unrelated directed link is unaffected.
  sim::Event c = cluster.p2p_copy(1, 2, bytes, 0.0);
  EXPECT_DOUBLE_EQ(c.done_at, dur);
  // The reverse direction 1->0 is its own link too.
  sim::Event d = cluster.p2p_copy(1, 0, bytes, 0.0);
  EXPECT_DOUBLE_EQ(d.done_at, dur);
}

TEST(Cluster, NotBeforeDefersTheCopy) {
  sim::Cluster cluster(sim::pcie_cluster_spec(2));
  const uint64_t bytes = 1 << 20;
  sim::Event e = cluster.p2p_copy(0, 1, bytes, /*not_before=*/1.5);
  EXPECT_DOUBLE_EQ(e.done_at, 1.5 + cluster.p2p_seconds(bytes));
}

TEST(Cluster, SenderCountsP2pBytes) {
  sim::Cluster cluster(sim::pcie_cluster_spec(2));
  cluster.machine(0).p2p_copy(1, 4096, 0.0);
  cluster.machine(0).p2p_copy(1, 4096, 0.0);
  EXPECT_EQ(cluster.machine(0).counters().bytes_p2p, 8192u);
  EXPECT_EQ(cluster.machine(0).counters().copies_p2p, 2u);
  EXPECT_EQ(cluster.machine(1).counters().bytes_p2p, 0u);
  cluster.reset();
  EXPECT_EQ(cluster.machine(0).counters().bytes_p2p, 0u);
}

TEST(TransferEngine, P2pSubmissionsTrackAndRetire) {
  sim::Cluster cluster(sim::pcie_cluster_spec(2));
  core::TransferEngine engine(cluster.machine(0), /*pinned=*/true, /*device_id=*/0);
  EXPECT_EQ(engine.device_id(), 0);

  std::vector<float> src(256, 3.5f), dst(256, 0.0f);
  engine.submit_p2p(/*tag=*/7, src.data(), dst.data(), 256 * sizeof(float), /*peer=*/1,
                    /*not_before=*/0.0);
  EXPECT_TRUE(engine.pending(core::TransferDir::kP2P, 7));
  EXPECT_EQ(engine.pending_count(core::TransferDir::kP2P), 1u);
  EXPECT_EQ(engine.stats().submitted_p2p, 1u);
  // Inline backend: the bytes landed at submit.
  EXPECT_EQ(dst[0], 3.5f);
  EXPECT_EQ(dst[255], 3.5f);

  engine.wait(core::TransferDir::kP2P, 7);
  EXPECT_FALSE(engine.pending(core::TransferDir::kP2P, 7));
  EXPECT_EQ(engine.stats().completed_p2p, 1u);
  // Waiting charged the sender's compute stream up to the link completion.
  EXPECT_GE(cluster.machine(0).now(), cluster.p2p_seconds(256 * sizeof(float)));
}

TEST(TransferEngine, DrainCoversP2p) {
  sim::Cluster cluster(sim::pcie_cluster_spec(2));
  core::TransferEngine engine(cluster.machine(0), true);
  engine.submit_p2p(1, nullptr, nullptr, 1024, 1, 0.0);
  engine.submit_p2p(2, nullptr, nullptr, 1024, 1, 0.0);
  EXPECT_EQ(engine.pending_count(core::TransferDir::kP2P), 2u);
  engine.drain();
  EXPECT_EQ(engine.pending_count(core::TransferDir::kP2P), 0u);
  EXPECT_EQ(engine.stats().completed_p2p, 2u);
}

}  // namespace
