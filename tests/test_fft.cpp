// FFT substrate tests: 1-D/2-D transform identities (round-trip, impulse,
// Parseval) and the frequency-domain convolution against direct reference.
#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "nn/conv.hpp"
#include "nn/fft.hpp"
#include "util/rng.hpp"

namespace {

using namespace sn::nn;
using cf = std::complex<float>;

TEST(Fft, RoundTripRecoversSignal) {
  sn::util::Rng rng(1);
  std::vector<cf> sig(64);
  for (auto& v : sig) v = cf(rng.uniform(-1, 1), rng.uniform(-1, 1));
  auto orig = sig;
  fft_1d(sig.data(), sig.size(), false);
  fft_1d(sig.data(), sig.size(), true);
  for (size_t i = 0; i < sig.size(); ++i) {
    EXPECT_NEAR(sig[i].real() / 64.0f, orig[i].real(), 1e-4f);
    EXPECT_NEAR(sig[i].imag() / 64.0f, orig[i].imag(), 1e-4f);
  }
}

TEST(Fft, ImpulseHasFlatSpectrum) {
  std::vector<cf> sig(16, cf(0, 0));
  sig[0] = cf(1, 0);
  fft_1d(sig.data(), 16, false);
  for (const auto& v : sig) {
    EXPECT_NEAR(v.real(), 1.0f, 1e-5f);
    EXPECT_NEAR(v.imag(), 0.0f, 1e-5f);
  }
}

TEST(Fft, ParsevalHolds) {
  sn::util::Rng rng(2);
  std::vector<cf> sig(128);
  double time_energy = 0;
  for (auto& v : sig) {
    v = cf(rng.uniform(-1, 1), 0.0f);
    time_energy += std::norm(v);
  }
  fft_1d(sig.data(), sig.size(), false);
  double freq_energy = 0;
  for (const auto& v : sig) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / 128.0, time_energy, 1e-3 * time_energy);
}

TEST(Fft, TwoDSeparability) {
  // FFT2 of a separable outer product equals the outer product of FFTs.
  const uint64_t n = 8;
  std::vector<cf> row(n), col(n), plane(n * n);
  sn::util::Rng rng(3);
  for (auto& v : row) v = cf(rng.uniform(-1, 1), 0);
  for (auto& v : col) v = cf(rng.uniform(-1, 1), 0);
  for (uint64_t r = 0; r < n; ++r)
    for (uint64_t c = 0; c < n; ++c) plane[r * n + c] = col[r] * row[c];
  fft_2d(plane.data(), n, n, false);
  fft_1d(row.data(), n, false);
  fft_1d(col.data(), n, false);
  for (uint64_t r = 0; r < n; ++r) {
    for (uint64_t c = 0; c < n; ++c) {
      cf expect = col[r] * row[c];
      EXPECT_NEAR(plane[r * n + c].real(), expect.real(), 1e-3f);
      EXPECT_NEAR(plane[r * n + c].imag(), expect.imag(), 1e-3f);
    }
  }
}

TEST(FftConv, PlanCoversPaddedInputAndKernel) {
  Conv2dGeom g{3, 10, 6, 5, 5, 1, 1, 2, 2};
  FftPlan p = fft_plan(g);
  EXPECT_GE(p.hp, 14u);  // h + 2*pad = 14 -> 16
  EXPECT_EQ(p.hp, 16u);
  EXPECT_GE(p.wp, 10u);
  EXPECT_EQ(p.wp, 16u);
  EXPECT_EQ(fft_conv_workspace_floats(g), 2u * (3 + 2) * 16 * 16);
}

struct FftConvCase {
  int c, h, w, k, kh, kw, pad;
};

class FftConvSweep : public ::testing::TestWithParam<FftConvCase> {};

TEST_P(FftConvSweep, MatchesDirect) {
  const auto p = GetParam();
  ConvDesc d;
  d.n = 2;
  d.c = p.c;
  d.h = p.h;
  d.w = p.w;
  d.k = p.k;
  d.kh = p.kh;
  d.kw = p.kw;
  d.stride_h = d.stride_w = 1;
  d.pad_h = d.pad_w = p.pad;
  sn::util::Rng rng(11);
  std::vector<float> x(d.in_elems()), w(d.weight_elems()), b(d.k);
  for (auto& v : x) v = rng.uniform(-1, 1);
  for (auto& v : w) v = rng.uniform(-1, 1);
  for (auto& v : b) v = rng.uniform(-1, 1);
  std::vector<float> y_ref(d.out_elems()), y(d.out_elems());
  conv_forward(d, ConvAlgo::kDirect, x.data(), w.data(), b.data(), y_ref.data(), nullptr);
  std::vector<float> ws(conv_workspace_bytes(d, ConvAlgo::kFftTiled, ConvPass::kForward) /
                        sizeof(float));
  conv_forward(d, ConvAlgo::kFftTiled, x.data(), w.data(), b.data(), y.data(), ws.data());
  for (size_t i = 0; i < y.size(); ++i) ASSERT_NEAR(y[i], y_ref[i], 5e-3f) << i;
}

INSTANTIATE_TEST_SUITE_P(Geometries, FftConvSweep,
                         ::testing::Values(FftConvCase{1, 5, 5, 1, 3, 3, 1},   // small same-pad
                                           FftConvCase{3, 8, 8, 4, 3, 3, 1},   // multi-channel
                                           FftConvCase{2, 9, 7, 3, 5, 5, 2},   // 5x5 odd sizes
                                           FftConvCase{2, 12, 12, 2, 7, 7, 3}, // big kernel
                                           FftConvCase{4, 6, 6, 2, 1, 1, 0},   // pointwise
                                           FftConvCase{2, 6, 10, 2, 1, 7, 0},  // asymmetric
                                           FftConvCase{1, 16, 16, 1, 3, 3, 0}  // valid conv
                                           ));

}  // namespace
