// NetPartitioner tests: valid-cut discovery on linear and fan/join graphs,
// cost-balanced and explicit partitions, and stage extraction (structure,
// boundary gradient plumbing, name preservation for seeded init).
#include <gtest/gtest.h>

#include <stdexcept>
#include <unordered_set>

#include "graph/partitioner.hpp"
#include "graph/zoo.hpp"

namespace {

using namespace sn;
using graph::NetPartitioner;

TEST(NetPartitioner, LinearNetCutsEverywhere) {
  auto net = graph::build_tiny_linear(4);
  NetPartitioner part(*net);
  const int n = static_cast<int>(net->route().size());
  ASSERT_EQ(static_cast<int>(part.valid_cuts().size()), n - 1);
  for (int cut = 1; cut < n; ++cut) {
    // On a chain the crossing tensor is always the previous layer's output.
    EXPECT_EQ(part.boundary_producer(cut), cut - 1);
  }
}

TEST(NetPartitioner, FanJoinRestrictsCutsToArticulationPoints) {
  auto net = graph::build_tiny_fanjoin(4);
  NetPartitioner part(*net);
  const auto& route = net->route();
  const int n = static_cast<int>(route.size());
  std::unordered_set<int> valid(part.valid_cuts().begin(), part.valid_cuts().end());
  ASSERT_FALSE(valid.empty());

  // While both branches of the fork are live, two tensors cross: invalid.
  bool found_invalid = false;
  for (int cut = 1; cut < n; ++cut) {
    if (!valid.count(cut)) {
      EXPECT_EQ(part.boundary_producer(cut), -1);
      found_invalid = true;
    } else {
      EXPECT_GE(part.boundary_producer(cut), 0);
    }
  }
  EXPECT_TRUE(found_invalid) << "a fan/join net must have uncuttable positions";
}

TEST(NetPartitioner, ResidualNetHasCutsBetweenUnits) {
  auto net = graph::build_tiny_resnet(2, 3);
  NetPartitioner part(*net);
  EXPECT_FALSE(part.valid_cuts().empty());
  EXPECT_LT(part.valid_cuts().size(), net->route().size() - 1)
      << "cuts inside a residual unit must be rejected";
  auto plan = part.partition(2);
  ASSERT_EQ(plan.stages.size(), 2u);
  EXPECT_EQ(plan.stages[0].begin, 0);
  EXPECT_EQ(plan.stages[0].end, plan.stages[1].begin);
  EXPECT_EQ(plan.stages[1].end, static_cast<int>(net->route().size()));
}

TEST(NetPartitioner, BalancedPartitionMinimizesTheSlowestStage) {
  auto net = graph::build_mini_alexnet(4);
  NetPartitioner part(*net);
  auto best = part.partition(2);
  ASSERT_EQ(best.cuts.size(), 1u);
  // Exhaustive check: no single valid cut beats the DP's bottleneck stage.
  for (int cut : part.valid_cuts()) {
    auto plan = part.partition_at({cut});
    EXPECT_GE(plan.max_stage_seconds, best.max_stage_seconds) << "cut " << cut;
  }
}

TEST(NetPartitioner, StageComputeSecondsPartitionTheRoute) {
  auto net = graph::build_tiny_linear(4);
  NetPartitioner part(*net);
  auto plan = part.partition(3);
  ASSERT_EQ(plan.stages.size(), 3u);
  double total = 0.0;
  for (const auto& s : plan.stages) total += s.compute_seconds;
  double direct = 0.0;
  for (const auto* l : net->route()) direct += part.layer_seconds(l);
  EXPECT_NEAR(total, direct, 1e-12);
  // Every stage but the last ships a boundary tensor.
  EXPECT_GT(plan.stages[0].boundary_bytes, 0u);
  EXPECT_GT(plan.stages[1].boundary_bytes, 0u);
  EXPECT_EQ(plan.stages[2].boundary_bytes, 0u);
  EXPECT_EQ(plan.stages[2].boundary_layer, -1);
}

TEST(NetPartitioner, ExplicitBoundariesAreRespectedAndValidated) {
  auto net = graph::build_tiny_linear(4);
  NetPartitioner part(*net);
  const int cut = part.valid_cuts()[part.valid_cuts().size() / 2];
  auto plan = part.partition_at({cut});
  ASSERT_EQ(plan.cuts.size(), 1u);
  EXPECT_EQ(plan.cuts[0], cut);
  EXPECT_EQ(plan.stages[0].end, cut);
  EXPECT_EQ(plan.stages[1].begin, cut);

  EXPECT_THROW(part.partition_at({0}), std::invalid_argument);
  EXPECT_THROW(part.partition_at({static_cast<int>(net->route().size()) + 1}),
               std::invalid_argument);
  EXPECT_THROW(part.partition_at({cut, cut}), std::invalid_argument);
}

TEST(NetPartitioner, InvalidFanCutThrows) {
  auto net = graph::build_tiny_fanjoin(4);
  NetPartitioner part(*net);
  std::unordered_set<int> valid(part.valid_cuts().begin(), part.valid_cuts().end());
  int bad = -1;
  for (int cut = 1; cut < static_cast<int>(net->route().size()); ++cut) {
    if (!valid.count(cut)) {
      bad = cut;
      break;
    }
  }
  ASSERT_GE(bad, 0);
  EXPECT_THROW(part.partition_at({bad}), std::invalid_argument);
}

TEST(NetPartitioner, TooManyStagesThrows) {
  auto net = graph::build_tiny_linear(4);
  NetPartitioner part(*net);
  const int n = static_cast<int>(net->route().size());
  EXPECT_THROW(part.partition(n + 1), std::invalid_argument);
  EXPECT_THROW(part.partition(0), std::invalid_argument);
}

TEST(NetPartitioner, StageMinBytesCoverPersistentPlusPeakLayer) {
  auto net = graph::build_mini_alexnet(4);
  NetPartitioner part(*net);
  const int n = static_cast<int>(net->route().size());
  // The whole-net floor: every param + param grad persists, plus at least
  // the biggest layer's own operand set.
  uint64_t persist = 0;
  for (const auto* l : net->route()) {
    for (const auto* p : l->params()) persist += p->bytes();
    for (const auto* g : l->param_grads()) persist += g->bytes();
  }
  EXPECT_GT(part.stage_min_bytes(0, n), persist);
  // Sub-stages need no more than the whole net.
  const int cut = part.valid_cuts()[part.valid_cuts().size() / 2];
  EXPECT_LE(part.stage_min_bytes(0, cut), part.stage_min_bytes(0, n));
  EXPECT_LE(part.stage_min_bytes(cut, n), part.stage_min_bytes(0, n));
  // Plans report the floor per stage.
  auto plan = part.partition(2);
  EXPECT_EQ(plan.stages[0].min_bytes, part.stage_min_bytes(plan.stages[0].begin,
                                                           plan.stages[0].end));
  EXPECT_GT(plan.stages[1].min_bytes, 0u);
}

TEST(NetPartitioner, CapacityRejectsCutsWhoseStageCannotFit) {
  auto net = graph::build_mini_alexnet(4);
  NetPartitioner unlimited(*net);
  const int n = static_cast<int>(net->route().size());
  const uint64_t whole = unlimited.stage_min_bytes(0, n);

  // A pool below the single-stage floor: partition(1) must be rejected, and
  // any explicit cut producing an oversized stage must throw.
  uint64_t max_stage2 = 0;
  {
    NetPartitioner part(*net, sim::k40c_spec(), sim::pcie_p2p_link_spec(), whole - 1);
    EXPECT_FALSE(part.stage_fits(0, n));
    EXPECT_THROW(part.partition(1), std::invalid_argument);
    // Memory-aware 2-stage partition still succeeds (each half fits)...
    auto plan = part.partition(2);
    for (const auto& s : plan.stages) {
      EXPECT_LE(s.min_bytes, whole - 1);
      max_stage2 = std::max(max_stage2, s.min_bytes);
    }
    // ...but pinning the boundary right behind the input leaves an
    // oversized tail stage: rejected.
    EXPECT_THROW(part.partition_at({part.valid_cuts().front()}), std::invalid_argument);
  }

  // A pool no stage can satisfy: the DP must report infeasibility instead
  // of returning an over-capacity plan.
  {
    NetPartitioner part(*net, sim::k40c_spec(), sim::pcie_p2p_link_spec(), 1);
    EXPECT_THROW(part.partition(2), std::invalid_argument);
  }

  // Capacity can steer the balance away from the pure-throughput optimum:
  // with a pool just under the throughput-optimal bottleneck stage, the DP
  // picks a feasible (if slower) plan rather than failing.
  {
    NetPartitioner part(*net, sim::k40c_spec(), sim::pcie_p2p_link_spec(), max_stage2);
    auto plan = part.partition(2);
    for (const auto& s : plan.stages) EXPECT_LE(s.min_bytes, max_stage2);
  }
}

TEST(NetPartitioner, NullObservedProviderKeepsCutsByteIdentical) {
  // The profile-guided seam (ISSUE 10) must be invisible when unused: a null
  // LayerCostFn — and a provider that declines every layer — produce the
  // exact plan of the legacy analytic ctor, down to the last double bit, so
  // every downstream schedule stays byte-identical.
  auto net = graph::build_mini_alexnet(4);
  NetPartitioner legacy(*net);
  NetPartitioner null_provider(*net, sim::k40c_spec(), sim::pcie_p2p_link_spec(), 0, nullptr);
  NetPartitioner declining(*net, sim::k40c_spec(), sim::pcie_p2p_link_spec(), 0,
                           [](const std::string&, double*, double*) { return false; });
  for (int stages : {1, 2}) {
    auto a = legacy.partition(stages);
    for (NetPartitioner* p : {&null_provider, &declining}) {
      auto b = p->partition(stages);
      EXPECT_EQ(a.cuts, b.cuts);
      EXPECT_EQ(a.max_stage_seconds, b.max_stage_seconds);  // exact, not NEAR
      ASSERT_EQ(a.stages.size(), b.stages.size());
      for (size_t s = 0; s < a.stages.size(); ++s) {
        EXPECT_EQ(a.stages[s].compute_seconds, b.stages[s].compute_seconds);
      }
    }
  }
  // Remat weighting flows through the same prefixes: parity there too.
  auto a = legacy.partition(2, graph::StageRecompute::kAllButLast);
  auto b = null_provider.partition(2, graph::StageRecompute::kAllButLast);
  EXPECT_EQ(a.cuts, b.cuts);
  EXPECT_EQ(a.max_stage_seconds, b.max_stage_seconds);
}

TEST(ExtractStage, SplitsLayersAndPreservesNames) {
  auto net = graph::build_mini_alexnet(4);
  NetPartitioner part(*net);
  auto plan = part.partition(2);
  auto s0 = graph::extract_stage(*net, plan, 0);
  auto s1 = graph::extract_stage(*net, plan, 1);

  // Stage 1 adds one synthetic input; every original layer appears once.
  EXPECT_EQ(s0->num_layers() + s1->num_layers(), net->num_layers() + 1);
  std::unordered_set<std::string> names;
  for (const auto& l : s0->layers()) names.insert(l->name());
  for (const auto& l : s1->layers()) names.insert(l->name());
  for (const auto& l : net->layers()) {
    EXPECT_TRUE(names.count(l->name())) << l->name() << " lost in extraction";
  }

  // The boundary handshake: stage 0's last-produced boundary tensor matches
  // stage 1's synthetic input, which carries a gradient for the backstream.
  const graph::Layer* producer = net->route()[static_cast<size_t>(plan.stages[0].boundary_layer)];
  graph::Layer* input = s1->input_layer();
  EXPECT_EQ(input->out_shape(), producer->out_shape());
  EXPECT_NE(input->output_grad(), nullptr);
  EXPECT_EQ(s1->input_layer()->name(), "STAGE_IN");
  // The original data layer never carries one.
  EXPECT_EQ(s0->input_layer()->output_grad(), nullptr);
  // Loss lives in (only) the last stage.
  EXPECT_EQ(s0->loss_layer(), nullptr);
  ASSERT_NE(s1->loss_layer(), nullptr);
}

TEST(ExtractStage, StageShapesMatchTheFullNet) {
  auto net = graph::build_tiny_resnet(2, 2);
  NetPartitioner part(*net);
  auto plan = part.partition(2);
  for (int s = 0; s < 2; ++s) {
    auto stage = graph::extract_stage(*net, plan, s);
    for (const auto& l : stage->layers()) {
      if (l.get() == stage->input_layer() && s > 0) continue;
      // Find the original by name; shapes must agree layer by layer.
      for (const auto& o : net->layers()) {
        if (o->name() == l->name()) {
          EXPECT_EQ(o->out_shape(), l->out_shape()) << l->name();
        }
      }
    }
  }
}

TEST(ExtractStage, ThreeStagePipelineChainsBoundaries) {
  auto net = graph::build_tiny_linear(4, 16);
  NetPartitioner part(*net);
  auto plan = part.partition(3);
  auto s1 = graph::extract_stage(*net, plan, 1);
  auto s2 = graph::extract_stage(*net, plan, 2);
  // Middle stage: synthetic input AND an outgoing boundary; its input shape
  // chains from stage 0's boundary, its output to stage 2's input.
  const auto& r = net->route();
  EXPECT_EQ(s1->input_layer()->out_shape(),
            r[static_cast<size_t>(plan.stages[0].boundary_layer)]->out_shape());
  EXPECT_EQ(s2->input_layer()->out_shape(),
            r[static_cast<size_t>(plan.stages[1].boundary_layer)]->out_shape());
  EXPECT_EQ(s1->loss_layer(), nullptr);
  EXPECT_NE(s2->loss_layer(), nullptr);
}

}  // namespace
