// util::JsonValue — the reader counterpart of util::JsonWriter. The
// round-trip tests feed writer output back through the parser; the error
// tests pin the line:column diagnostics the trajectory tools rely on to
// name the exact byte that broke a hand-edited baseline.
#include <gtest/gtest.h>

#include <string>

#include "util/json_reader.hpp"
#include "util/json_writer.hpp"

using sn::util::JsonError;
using sn::util::JsonValue;

TEST(JsonReader, ScalarsAndContainers) {
  JsonValue v = JsonValue::parse(
      R"({"a": 1.5, "b": -2e3, "c": "hi", "d": true, "e": false, "f": null,
          "g": [1, 2, 3], "h": {"x": 0}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.get("a").as_number(), 1.5);
  EXPECT_DOUBLE_EQ(v.get("b").as_number(), -2000.0);
  EXPECT_EQ(v.get("c").as_string(), "hi");
  EXPECT_TRUE(v.get("d").as_bool());
  EXPECT_FALSE(v.get("e").as_bool());
  EXPECT_TRUE(v.get("f").is_null());
  ASSERT_EQ(v.get("g").size(), 3u);
  EXPECT_DOUBLE_EQ(v.get("g").at(2).as_number(), 3.0);
  EXPECT_TRUE(v.get("h").is_object());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonReader, ObjectKeepsInsertionOrder) {
  JsonValue v = JsonValue::parse(R"({"z": 1, "a": 2, "m": 3})");
  const auto& e = v.entries();
  ASSERT_EQ(e.size(), 3u);
  EXPECT_EQ(e[0].first, "z");
  EXPECT_EQ(e[1].first, "a");
  EXPECT_EQ(e[2].first, "m");
}

TEST(JsonReader, StringEscapes) {
  JsonValue v = JsonValue::parse(R"({"s": "a\"b\\c\n\tA"})");
  EXPECT_EQ(v.get("s").as_string(), "a\"b\\c\n\tA");
}

TEST(JsonReader, RoundTripsWriterOutput) {
  sn::util::JsonWriter w;
  w.begin_object();
  w.key("name").value("bench \"quoted\"\n");
  w.key("seconds").value_sci(1.234567e-3, 6);
  w.key("count").value(42);
  w.key("rows").begin_array();
  w.begin_object(sn::util::JsonWriter::kInline);
  w.key("ok").value(true);
  w.end_object();
  w.end_array();
  w.end_object();

  JsonValue v = JsonValue::parse(w.str());
  EXPECT_EQ(v.get("name").as_string(), "bench \"quoted\"\n");
  EXPECT_NEAR(v.get("seconds").as_number(), 1.234567e-3, 1e-12);
  EXPECT_DOUBLE_EQ(v.get("count").as_number(), 42.0);
  EXPECT_TRUE(v.get("rows").at(0).get("ok").as_bool());
}

TEST(JsonReader, ErrorsCarryLineAndColumn) {
  try {
    JsonValue::parse("{\n  \"a\": 1,\n  \"b\": }\n", "bad.json");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("bad.json"), std::string::npos) << msg;
    EXPECT_NE(msg.find("3:"), std::string::npos) << msg;  // error on line 3
  }
}

TEST(JsonReader, RejectsMalformedDocuments) {
  EXPECT_THROW(JsonValue::parse("{"), JsonError);
  EXPECT_THROW(JsonValue::parse("[1, 2"), JsonError);
  EXPECT_THROW(JsonValue::parse("{\"a\" 1}"), JsonError);
  EXPECT_THROW(JsonValue::parse("{\"a\": 1} extra"), JsonError);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), JsonError);
  EXPECT_THROW(JsonValue::parse("nul"), JsonError);
  EXPECT_THROW(JsonValue::parse(""), JsonError);
  // Non-finite numbers are not JSON and never appear in writer output.
  EXPECT_THROW(JsonValue::parse("1e999"), JsonError);
}

TEST(JsonReader, TypedAccessorsNameTheMismatch) {
  JsonValue v = JsonValue::parse(R"({"a": "text"})");
  EXPECT_THROW(v.get("a").as_number(), JsonError);
  EXPECT_THROW(v.get("a").as_bool(), JsonError);
  EXPECT_THROW(v.get("b"), JsonError);  // missing key via get()
  EXPECT_THROW(v.at(0), JsonError);     // array access on an object
}

TEST(JsonReader, ParseFileReportsMissingPath) {
  EXPECT_THROW(sn::util::parse_json_file("/nonexistent/certainly_absent.json"), JsonError);
}
