// Winograd F(2x2, 3x3) unit tests: workspace sizing, simple analytic
// filters, padding behaviour, and a parameterized agreement sweep against
// direct convolution (complementing test_conv's integration coverage).
#include <gtest/gtest.h>

#include <vector>

#include "nn/conv.hpp"
#include "nn/winograd.hpp"
#include "util/rng.hpp"

namespace {

using namespace sn::nn;

TEST(Winograd, WorkspaceFormula) {
  // U: 16*K*C, V: 16*C*T, M: 16*K*T with T = ceil(OH/2)*ceil(OW/2).
  EXPECT_EQ(winograd_workspace_floats(2, 3, 4, 4), 16u * (2 * 3 + 3 * 4 + 2 * 4));
  EXPECT_EQ(winograd_workspace_floats(1, 1, 1, 1), 16u * (1 + 1 + 1));
  // Odd outputs round tiles up.
  EXPECT_EQ(winograd_workspace_floats(1, 1, 5, 5), 16u * (1 + 9 + 9));
}

TEST(Winograd, IdentityFilterReproducesInput) {
  // 3x3 filter with a single 1 at the center and pad 1 = identity map.
  Conv2dGeom g{1, 6, 6, 3, 3, 1, 1, 1, 1};
  std::vector<float> x(36);
  sn::util::Rng rng(3);
  for (auto& v : x) v = rng.uniform(-2, 2);
  std::vector<float> w(9, 0.0f);
  w[4] = 1.0f;
  std::vector<float> y(36, -1.0f);
  std::vector<float> ws(winograd_workspace_floats(1, 1, 6, 6));
  winograd_forward_image(g, 1, x.data(), w.data(), nullptr, y.data(), ws.data());
  for (int i = 0; i < 36; ++i) EXPECT_NEAR(y[i], x[i], 1e-4f) << i;
}

TEST(Winograd, BoxFilterSumsNeighbourhood) {
  Conv2dGeom g{1, 4, 4, 3, 3, 1, 1, 0, 0};  // valid conv: 2x2 output
  std::vector<float> x(16);
  for (int i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  std::vector<float> w(9, 1.0f);
  std::vector<float> y(4);
  std::vector<float> ws(winograd_workspace_floats(1, 1, 2, 2));
  winograd_forward_image(g, 1, x.data(), w.data(), nullptr, y.data(), ws.data());
  // y[0] = sum of x[0..2],x[4..6],x[8..10] = 45
  EXPECT_NEAR(y[0], 45.0f, 1e-3f);
  EXPECT_NEAR(y[1], 54.0f, 1e-3f);
  EXPECT_NEAR(y[2], 81.0f, 1e-3f);
  EXPECT_NEAR(y[3], 90.0f, 1e-3f);
}

TEST(Winograd, BiasIsAdded) {
  Conv2dGeom g{1, 4, 4, 3, 3, 1, 1, 1, 1};
  std::vector<float> x(16, 0.0f), w(9, 0.0f), y(16);
  float bias = 2.5f;
  std::vector<float> ws(winograd_workspace_floats(1, 1, 4, 4));
  winograd_forward_image(g, 1, x.data(), w.data(), &bias, y.data(), ws.data());
  for (float v : y) EXPECT_FLOAT_EQ(v, 2.5f);
}

struct WinoCase {
  int c, h, w, k, pad;
};

class WinogradSweep : public ::testing::TestWithParam<WinoCase> {};

TEST_P(WinogradSweep, AgreesWithDirect) {
  const auto p = GetParam();
  ConvDesc d;
  d.n = 2;
  d.c = p.c;
  d.h = p.h;
  d.w = p.w;
  d.k = p.k;
  d.kh = d.kw = 3;
  d.stride_h = d.stride_w = 1;
  d.pad_h = d.pad_w = p.pad;
  sn::util::Rng rng(17);
  std::vector<float> x(d.in_elems()), w(d.weight_elems()), b(d.k);
  for (auto& v : x) v = rng.uniform(-1, 1);
  for (auto& v : w) v = rng.uniform(-1, 1);
  for (auto& v : b) v = rng.uniform(-1, 1);
  std::vector<float> y_ref(d.out_elems()), y(d.out_elems());
  conv_forward(d, ConvAlgo::kDirect, x.data(), w.data(), b.data(), y_ref.data(), nullptr);
  std::vector<float> ws(conv_workspace_bytes(d, ConvAlgo::kWinograd, ConvPass::kForward) /
                        sizeof(float));
  conv_forward(d, ConvAlgo::kWinograd, x.data(), w.data(), b.data(), y.data(), ws.data());
  for (size_t i = 0; i < y.size(); ++i) ASSERT_NEAR(y[i], y_ref[i], 3e-3f) << i;
}

INSTANTIATE_TEST_SUITE_P(Geometries, WinogradSweep,
                         ::testing::Values(WinoCase{1, 4, 4, 1, 0},    // minimal valid
                                           WinoCase{1, 4, 4, 1, 1},    // same-pad
                                           WinoCase{3, 7, 9, 5, 1},    // odd spatial
                                           WinoCase{4, 5, 5, 4, 0},    // odd output (clip)
                                           WinoCase{8, 14, 14, 8, 1},  // resnet-ish tile grid
                                           WinoCase{2, 3, 3, 2, 1}));  // single tile w/ pad

}  // namespace
