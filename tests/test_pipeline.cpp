// PipelineParallelTrainer tests. Flagship invariant: cutting a net across
// pool-backed pipeline stages and microbatching the batch NEVER changes
// training results — 2-stage x M-microbatch training is bit-identical to a
// single-device run over the combined batch (losses AND weights), extending
// the paper's "memory scheduling never changes training results" across the
// P2P fabric. Plus: fill/drain bubble telemetry, memory-pressure
// invariance inside stages, explicit boundaries, and sim-mode scale-out.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "dist/pipeline_parallel.hpp"
#include "graph/zoo.hpp"
#include "train/trainer.hpp"

namespace {

using namespace sn;

core::RuntimeOptions parity_options() {
  core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
  o.real = true;
  o.device_capacity = 32ull << 20;
  // Pin convolutions to the workspace-free algorithm: the dynamic choice
  // depends on free device memory, which legitimately differs between the
  // full-batch and microbatch runs.
  o.allow_workspace = false;
  return o;
}

train::TrainConfig parity_train_config(int iterations) {
  train::TrainConfig tc;
  tc.iterations = iterations;
  tc.lr = 0.05f;
  tc.momentum = 0.9f;
  return tc;
}

dist::PipelineParallelConfig pipe_config(int stages, int microbatches, int global_batch,
                                         int iterations) {
  dist::PipelineParallelConfig cfg;
  cfg.stages = stages;
  cfg.microbatches = microbatches;
  cfg.global_batch = global_batch;
  cfg.cluster = sim::pcie_cluster_spec(stages);
  cfg.train = parity_train_config(iterations);
  return cfg;
}

void expect_params_match(core::Runtime& single, dist::PipelineParallelTrainer& pipe) {
  // Every stage parameter must end bit-identical to its full-net namesake.
  for (int s = 0; s < pipe.stages(); ++s) {
    core::Runtime& rt = pipe.runtime(s);
    for (const auto& l : rt.net().layers()) {
      for (const auto* p : l->params()) {
        const tensor::Tensor* ref = nullptr;
        for (const auto& ol : single.net().layers()) {
          for (const auto* op : ol->params()) {
            if (op->name() == p->name()) ref = op;
          }
        }
        ASSERT_NE(ref, nullptr) << p->name();
        EXPECT_EQ(single.read_tensor(ref), rt.read_tensor(p))
            << "stage " << s << " param " << p->name();
      }
    }
  }
}

TEST(PipelineParallel, TwoStagesFourMicrobatchesMatchSingleDeviceBitForBit) {
  const int kGlobalBatch = 8, kMicrobatches = 4, kIters = 5;
  auto factory = [](int batch) { return graph::build_tiny_linear(batch); };
  core::RuntimeOptions o = parity_options();
  train::TrainConfig tc = parity_train_config(kIters);

  // Single device, combined batch.
  auto net = factory(kGlobalBatch);
  core::Runtime rt(*net, o);
  train::Trainer trainer(rt, tc);
  auto single = trainer.run();

  // Two pipeline stages, microbatched.
  dist::PipelineParallelTrainer pipe(factory, o,
                                     pipe_config(2, kMicrobatches, kGlobalBatch, kIters));
  auto piped = pipe.run();

  ASSERT_EQ(single.losses.size(), piped.losses.size());
  for (size_t i = 0; i < single.losses.size(); ++i) {
    EXPECT_EQ(single.losses[i], piped.losses[i]) << "iteration " << i;
  }
  expect_params_match(rt, pipe);
}

TEST(PipelineParallel, MicrobatchCountDoesNotChangeResults) {
  // Power-of-two microbatch sizes are subtrees of the same pairwise
  // reduction: M=2 and M=4 must produce identical trajectories.
  auto run = [&](int microbatches) {
    auto factory = [](int batch) { return graph::build_tiny_linear(batch); };
    dist::PipelineParallelTrainer pipe(factory, parity_options(),
                                       pipe_config(2, microbatches, 8, 4));
    return pipe.run().losses;
  };
  EXPECT_EQ(run(2), run(4));
}

TEST(PipelineParallel, FanJoinNetMatchesSingleDevice) {
  const int kGlobalBatch = 8, kIters = 4;
  auto factory = [](int batch) { return graph::build_tiny_fanjoin(batch); };
  core::RuntimeOptions o = parity_options();
  auto net = factory(kGlobalBatch);
  core::Runtime rt(*net, o);
  train::Trainer trainer(rt, parity_train_config(kIters));
  auto single = trainer.run();

  dist::PipelineParallelTrainer pipe(factory, o, pipe_config(2, 2, kGlobalBatch, kIters));
  auto piped = pipe.run();
  ASSERT_EQ(single.losses.size(), piped.losses.size());
  for (size_t i = 0; i < single.losses.size(); ++i) {
    EXPECT_EQ(single.losses[i], piped.losses[i]) << "iteration " << i;
  }
  EXPECT_LT(piped.last_loss(), piped.first_loss());
}

TEST(PipelineParallel, ThreeStagesTrainAndLearn) {
  auto factory = [](int batch) { return graph::build_tiny_linear(batch, 16); };
  dist::PipelineParallelTrainer pipe(factory, parity_options(), pipe_config(3, 4, 8, 10));
  auto rep = pipe.run();
  EXPECT_LT(rep.last_loss(), rep.first_loss());
  // All three stages moved activations/gradients over the fabric.
  for (const auto& st : rep.stage_stats.back()) EXPECT_GT(st.p2p_bytes, 0u);
}

TEST(PipelineParallel, MemoryPressureInsideStagesDoesNotChangeLosses) {
  // The paper's invariant, lifted across the pipeline: squeezing each
  // stage's pool (forcing offload/eviction/recompute inside stages) must
  // not change training results.
  auto run = [](uint64_t capacity) {
    auto factory = [](int batch) { return graph::build_tiny_linear(batch, 16); };
    core::RuntimeOptions o = parity_options();
    o.device_capacity = capacity;
    dist::PipelineParallelTrainer pipe(factory, o, pipe_config(2, 2, 8, 5));
    return pipe.run().losses;
  };
  EXPECT_EQ(run(64ull << 20), run(1ull << 20));
}

TEST(PipelineParallel, ExplicitBoundaryOverrideIsUsed) {
  auto factory = [](int batch) { return graph::build_tiny_linear(batch); };
  auto probe = factory(4);
  graph::NetPartitioner part(*probe);
  const int cut = part.valid_cuts().front();

  auto cfg = pipe_config(2, 2, 8, 1);
  cfg.boundaries = {cut};
  dist::PipelineParallelTrainer pipe(factory, parity_options(), cfg);
  ASSERT_EQ(pipe.plan().cuts.size(), 1u);
  EXPECT_EQ(pipe.plan().cuts[0], cut);
  EXPECT_EQ(static_cast<int>(pipe.stage_net(0).num_layers()), cut);
  auto rep = pipe.run();
  EXPECT_EQ(rep.losses.size(), 1u);
}

TEST(PipelineParallel, BubbleFractionShrinksAsMicrobatchesGrow) {
  // GPipe bubble law: the fill/drain ramps cost ~(S-1) microbatch slots
  // regardless of M, so their fraction of the iteration falls as M rises.
  auto bubble_fraction = [](int microbatches) {
    auto factory = [](int batch) { return graph::build_mini_alexnet(batch); };
    core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
    o.real = false;
    auto cfg = dist::PipelineParallelConfig();
    cfg.stages = 2;
    cfg.microbatches = microbatches;
    cfg.global_batch = 32;
    cfg.cluster = sim::nvlink_cluster_spec(2);
    cfg.train = parity_train_config(2);
    dist::PipelineParallelTrainer pipe(factory, o, cfg);
    auto rep = pipe.run();
    const auto& agg = rep.stats.back();
    EXPECT_GT(agg.bubble_seconds, 0.0);
    return agg.bubble_seconds / (2.0 * agg.seconds);
  };
  EXPECT_LT(bubble_fraction(8), bubble_fraction(2));
}

TEST(PipelineParallel, SimModeScalesToZooNets) {
  auto factory = [](int batch) { return graph::build_vgg(16, batch); };
  core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
  o.real = false;
  auto cfg = pipe_config(4, 4, 64, 1);
  cfg.cluster = sim::nvlink_cluster_spec(4);
  dist::PipelineParallelTrainer pipe(factory, o, cfg);
  auto rep = pipe.run();
  EXPECT_EQ(rep.losses[0], 0.0);  // unbacked: no numerics
  EXPECT_GT(rep.stats[0].seconds, 0.0);
  EXPECT_GT(rep.stats[0].p2p_bytes, 0u);
  EXPECT_GT(rep.stats[0].p2p_seconds, 0.0);
  ASSERT_EQ(rep.stage_stats[0].size(), 4u);
}

TEST(PipelineParallel, TelemetryIsVisiblePerStage) {
  auto factory = [](int batch) { return graph::build_tiny_linear(batch); };
  dist::PipelineParallelTrainer pipe(factory, parity_options(), pipe_config(2, 4, 8, 2));
  auto rep = pipe.run();
  ASSERT_EQ(rep.stats.size(), 2u);
  ASSERT_EQ(rep.stage_stats[0].size(), 2u);
  // Stage 0 streams activations, stage 1 streams gradients: both send.
  for (const auto& st : rep.stage_stats[1]) {
    EXPECT_GT(st.p2p_bytes, 0u);
    EXPECT_GT(st.seconds, 0.0);
  }
  // The downstream stage idles during fill: its bubble must be visible.
  EXPECT_GT(rep.stage_stats[1][1].bubble_seconds, 0.0);
  EXPECT_GT(rep.stats[1].bubble_seconds, 0.0);
  // Per-step telemetry is attributed to its cluster device and grid row.
  EXPECT_EQ(pipe.runtime(1).step_telemetry().front().device_id, 1);
  EXPECT_EQ(pipe.runtime(1).step_telemetry().front().stage, 1);
  EXPECT_EQ(pipe.runtime(1).step_telemetry().front().replica, 0);
}

TEST(PipelineParallel, OneF1BMatchesSingleDeviceBitForBit) {
  // The schedule engine's flagship invariant: changing the EXECUTION ORDER
  // (PipeDream-flush instead of fill/drain) never changes training results
  // — gradients are snapshotted per microbatch and combined in ascending-m
  // pairwise order regardless of when each backward ran.
  const int kGlobalBatch = 8, kMicrobatches = 4, kIters = 5;
  auto factory = [](int batch) { return graph::build_tiny_linear(batch); };
  core::RuntimeOptions o = parity_options();

  auto net = factory(kGlobalBatch);
  core::Runtime rt(*net, o);
  train::Trainer trainer(rt, parity_train_config(kIters));
  auto single = trainer.run();

  auto cfg = pipe_config(2, kMicrobatches, kGlobalBatch, kIters);
  cfg.schedule = dist::SchedulePolicy::k1F1B;
  dist::PipelineParallelTrainer pipe(factory, o, cfg);
  auto piped = pipe.run();

  ASSERT_EQ(single.losses.size(), piped.losses.size());
  for (size_t i = 0; i < single.losses.size(); ++i) {
    EXPECT_EQ(single.losses[i], piped.losses[i]) << "iteration " << i;
  }
  expect_params_match(rt, pipe);
}

TEST(PipelineParallel, OneF1BThreeStagesMatchGPipeBitForBit) {
  // Same net, same data, both policies: identical loss trajectories. A
  // deeper pipe (S=3) exercises warmup depths 2/1/0 and cooldown remat.
  auto run = [&](dist::SchedulePolicy pol) {
    auto factory = [](int batch) { return graph::build_tiny_linear(batch, 16); };
    auto cfg = pipe_config(3, 4, 8, 5);
    cfg.schedule = pol;
    dist::PipelineParallelTrainer pipe(factory, parity_options(), cfg);
    return pipe.run().losses;
  };
  EXPECT_EQ(run(dist::SchedulePolicy::kGPipe), run(dist::SchedulePolicy::k1F1B));
}

TEST(PipelineParallel, OneF1BStashStaysStrictlyBelowGPipe) {
  // M > S: 1F1B's peak stashed-input footprint must be STRICTLY below
  // GPipe's all-M stash on every consuming stage — the memory half of the
  // PipeDream-flush win, measured on the trainer's real allocation.
  auto build = [&](dist::SchedulePolicy pol) {
    auto factory = [](int batch) { return graph::build_tiny_linear(batch); };
    auto cfg = pipe_config(3, 8, 16, 1);
    cfg.schedule = pol;
    return std::make_unique<dist::PipelineParallelTrainer>(factory, parity_options(), cfg);
  };
  auto gpipe = build(dist::SchedulePolicy::kGPipe);
  auto f1b = build(dist::SchedulePolicy::k1F1B);
  EXPECT_EQ(gpipe->stash_bytes(0), 0u);
  EXPECT_EQ(f1b->stash_bytes(0), 0u);
  for (int s = 1; s < 3; ++s) {
    EXPECT_GT(f1b->stash_bytes(s), 0u);
    EXPECT_LT(f1b->stash_bytes(s), gpipe->stash_bytes(s)) << "stage " << s;
  }
  // min(M, S - s + 1) slots vs M.
  EXPECT_EQ(f1b->schedule().peak_stash_slots(1), 3);
  EXPECT_EQ(f1b->schedule().peak_stash_slots(2), 2);
  EXPECT_EQ(gpipe->schedule().peak_stash_slots(1), 8);
}

TEST(PipelineParallel, OneF1BShrinksTheBubble) {
  // Steady-state 1F1B keeps every stage busy between warmup and cooldown:
  // with M >= 2S its bubble fraction lands strictly below GPipe's.
  auto bubble_fraction = [](dist::SchedulePolicy pol) {
    auto factory = [](int batch) { return graph::build_mini_alexnet(batch); };
    core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
    o.real = false;
    auto cfg = pipe_config(4, 8, 64, 2);
    cfg.cluster = sim::nvlink_cluster_spec(4);
    cfg.schedule = pol;
    dist::PipelineParallelTrainer pipe(factory, o, cfg);
    auto rep = pipe.run();
    const auto& st = rep.stats.back();
    return st.bubble_seconds / (st.seconds * 4);
  };
  EXPECT_LT(bubble_fraction(dist::SchedulePolicy::k1F1B),
            bubble_fraction(dist::SchedulePolicy::kGPipe));
}

TEST(PipelineParallel, PhaseTelemetryAttributesTheBubble) {
  // The per-phase split must (a) sum to the total bubble and (b) show the
  // 1F1B steady state: the last stage never waits in fill under 1F1B once
  // warmup is folded into steady ops, while GPipe's fill wait is all kFill.
  auto factory = [](int batch) { return graph::build_tiny_linear(batch); };
  auto cfg = pipe_config(2, 4, 8, 2);
  cfg.schedule = dist::SchedulePolicy::k1F1B;
  dist::PipelineParallelTrainer pipe(factory, parity_options(), cfg);
  auto rep = pipe.run();
  for (const auto& st : rep.stage_stats.back()) {
    EXPECT_DOUBLE_EQ(
        st.bubble_seconds,
        st.bubble_fill_seconds + st.bubble_steady_seconds + st.bubble_drain_seconds);
  }
  // Per-step telemetry carries the schedule phase and microbatch stamps.
  bool saw_phase = false;
  for (const auto& t : pipe.runtime(1).step_telemetry()) {
    if (t.sched_phase >= 0) {
      saw_phase = true;
      EXPECT_GE(t.microbatch, 0);
    }
  }
  EXPECT_TRUE(saw_phase);
}

TEST(PipelineParallel, OneF1BWithPeerStagingKeepsResultsAndStages) {
  // Peer-memory staging under PipeDream-flush: the 1F1B stash retirement
  // (ascending-m backwards, stash slots recycled mid-iteration) interleaves
  // with stage-outs and fetch-backs on the same link, and neither training
  // results nor the staging bookkeeping may notice. mini-alexnet with an
  // early explicit cut leaves stage 0 pool-constrained and stage 1 with
  // donation slack.
  auto run = [](dist::SchedulePolicy pol, bool staging) {
    auto factory = [](int batch) { return graph::build_mini_alexnet(batch); };
    core::RuntimeOptions o = parity_options();
    o.recompute = core::RecomputeMode::kNone;
    o.use_liveness = false;
    o.device_capacity = 3ull << 18;
    auto cfg = pipe_config(2, 4, 32, 3);
    cfg.cluster = sim::nvlink_cluster_spec(2);
    cfg.boundaries = {9};
    cfg.schedule = pol;
    cfg.peer_staging = staging;
    dist::PipelineParallelTrainer pipe(factory, o, cfg);
    auto rep = pipe.run();
    uint64_t staged = 0;
    for (int s = 0; s < pipe.stages(); ++s) {
      staged += pipe.runtime(s).tensor_pool().peer_stage_count();
    }
    return std::tuple(rep.losses, staged);
  };
  auto [f1b_off, f1b_off_staged] = run(dist::SchedulePolicy::k1F1B, false);
  auto [f1b_on, f1b_on_staged] = run(dist::SchedulePolicy::k1F1B, true);
  auto [gpipe_on, gpipe_on_staged] = run(dist::SchedulePolicy::kGPipe, true);

  EXPECT_EQ(f1b_off_staged, 0u);
  EXPECT_GT(f1b_on_staged, 0u) << "1F1B run never exercised staging";
  EXPECT_GT(gpipe_on_staged, 0u) << "GPipe run never exercised staging";
  EXPECT_EQ(f1b_off, f1b_on) << "staging changed 1F1B training results";
  EXPECT_EQ(f1b_on, gpipe_on) << "schedules diverged under staging";
}

TEST(PipelineParallel, RejectsBadConfigs) {
  auto factory = [](int batch) { return graph::build_tiny_linear(batch); };
  core::RuntimeOptions o = parity_options();
  EXPECT_THROW(dist::PipelineParallelTrainer(factory, o, pipe_config(2, 3, 8, 1)),
               std::invalid_argument);
  auto cfg = pipe_config(3, 2, 8, 1);
  cfg.boundaries = {2};  // 3 stages need 2 boundaries
  EXPECT_THROW(dist::PipelineParallelTrainer(factory, o, cfg), std::invalid_argument);
  EXPECT_THROW(dist::PipelineParallelTrainer(factory, o, pipe_config(0, 2, 8, 1)),
               std::invalid_argument);
}

}  // namespace
