// ScheduleEngine tests: the op streams are load-bearing contracts. kGPipe
// must reproduce the legacy fill/drain loop nests byte for byte (the
// trainers' bit-parity and schedule telemetry depend on it); k1F1B must
// reproduce the hand-derived PipeDream-flush wavefront, including recompute
// flags, phase stamps, stash-slot reuse, and kBucketReady placement. The
// exact sequences below were derived by hand from the dependency rules
// (Forward(s,m) needs fwd_done[s-1][m]; Backward(s,m) needs
// bwd_done[s+1][m]) and the greedy ascending-stage round-robin.
#include <gtest/gtest.h>

#include <vector>

#include "dist/schedule_engine.hpp"

namespace {

using namespace sn::dist;

using Kind = ScheduleOpKind;

struct OpPin {
  Kind kind;
  int stage;
  int mb;  ///< microbatch, or bucket index for kBucketReady
};

std::vector<OpPin> pins_of(const ScheduleEngine& eng) {
  std::vector<OpPin> out;
  for (const ScheduleOp& op : eng.ops()) {
    out.push_back({op.kind, op.stage,
                   op.kind == Kind::kBucketReady ? op.bucket : op.microbatch});
  }
  return out;
}

void expect_ops(const ScheduleEngine& eng, const std::vector<OpPin>& want) {
  auto got = pins_of(eng);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(static_cast<int>(got[i].kind), static_cast<int>(want[i].kind)) << "op " << i;
    EXPECT_EQ(got[i].stage, want[i].stage) << "op " << i;
    EXPECT_EQ(got[i].mb, want[i].mb) << "op " << i;
  }
}

constexpr Kind F = Kind::kForward, B = Kind::kBackward, R = Kind::kBucketReady;

TEST(ScheduleEngine, GPipeTwoStagesFourMicrobatchesIsTheLegacyLoopNest) {
  ScheduleEngine eng(SchedulePolicy::kGPipe, 2, 4);
  // fill: for m: for s;  drain: for m desc: for s desc.
  expect_ops(eng, {{F, 0, 0}, {F, 1, 0}, {F, 0, 1}, {F, 1, 1},
                   {F, 0, 2}, {F, 1, 2}, {F, 0, 3}, {F, 1, 3},
                   {B, 1, 3}, {B, 0, 3}, {B, 1, 2}, {B, 0, 2},
                   {B, 1, 1}, {B, 0, 1}, {B, 1, 0}, {B, 0, 0}});
  for (const ScheduleOp& op : eng.ops()) {
    if (op.kind == Kind::kForward) {
      EXPECT_EQ(op.phase, SchedulePhase::kFill);
      EXPECT_FALSE(op.recompute);
      // GPipe stash degenerates to slot == microbatch.
      EXPECT_EQ(op.stash_slot, op.stage > 0 ? op.microbatch : -1);
    } else {
      EXPECT_EQ(op.phase, SchedulePhase::kDrain);
      // Every non-newest microbatch re-materializes its forward.
      EXPECT_EQ(op.recompute, op.microbatch < 3);
    }
  }
  EXPECT_EQ(eng.peak_stash_slots(0), 0);
  EXPECT_EQ(eng.peak_stash_slots(1), 4);
}

TEST(ScheduleEngine, OneF1BTwoStagesFourMicrobatches) {
  ScheduleEngine eng(SchedulePolicy::k1F1B, 2, 4);
  expect_ops(eng, {{F, 0, 0}, {F, 1, 0}, {F, 0, 1}, {B, 1, 0},
                   {B, 0, 0}, {F, 1, 1}, {F, 0, 2}, {B, 1, 1},
                   {B, 0, 1}, {F, 1, 2}, {F, 0, 3}, {B, 1, 2},
                   {B, 0, 2}, {F, 1, 3}, {B, 1, 3}, {B, 0, 3}});
  for (const ScheduleOp& op : eng.ops()) {
    if (op.kind != Kind::kBackward) continue;
    // The last stage runs backward right after its own forward (resident
    // activations); every other stage interleaved a NEWER forward in
    // between and must re-materialize.
    EXPECT_EQ(op.recompute, op.stage != 1) << "B(" << op.stage << ", " << op.microbatch << ")";
  }
  // Peak stash: min(M, S - s + 1) = 2 slots, not GPipe's 4; slots alternate.
  EXPECT_EQ(eng.peak_stash_slots(1), 2);
  EXPECT_EQ(eng.stash_slot(1, 0), 0);
  EXPECT_EQ(eng.stash_slot(1, 1), 1);
  EXPECT_EQ(eng.stash_slot(1, 2), 0);
  EXPECT_EQ(eng.stash_slot(1, 3), 1);
  EXPECT_EQ(eng.stash_slot(0, 2), -1);  // stage 0 reads the dataset
}

TEST(ScheduleEngine, OneF1BThreeStagesSixMicrobatches) {
  ScheduleEngine eng(SchedulePolicy::k1F1B, 3, 6);
  expect_ops(eng, {{F, 0, 0}, {F, 1, 0}, {F, 2, 0}, {F, 0, 1}, {F, 1, 1}, {B, 2, 0},
                   {F, 0, 2}, {B, 1, 0}, {F, 2, 1}, {B, 0, 0}, {F, 1, 2}, {B, 2, 1},
                   {F, 0, 3}, {B, 1, 1}, {F, 2, 2}, {B, 0, 1}, {F, 1, 3}, {B, 2, 2},
                   {F, 0, 4}, {B, 1, 2}, {F, 2, 3}, {B, 0, 2}, {F, 1, 4}, {B, 2, 3},
                   {F, 0, 5}, {B, 1, 3}, {F, 2, 4}, {B, 0, 3}, {F, 1, 5}, {B, 2, 4},
                   {B, 1, 4}, {F, 2, 5}, {B, 0, 4}, {B, 2, 5}, {B, 1, 5}, {B, 0, 5}});
  // Peak stash min(M, S - s + 1): stage 1 -> 3, stage 2 -> 2 (GPipe: 6 each).
  EXPECT_EQ(eng.peak_stash_slots(1), 3);
  EXPECT_EQ(eng.peak_stash_slots(2), 2);
  // Last stage never re-materializes; upstream stages always do.
  for (const ScheduleOp& op : eng.ops()) {
    if (op.kind != Kind::kBackward) continue;
    EXPECT_EQ(op.recompute, op.stage != 2) << "B(" << op.stage << ", " << op.microbatch << ")";
  }
}

TEST(ScheduleEngine, PhasesPartitionWarmupSteadyCooldown) {
  ScheduleEngine eng(SchedulePolicy::k1F1B, 3, 6);
  // Stage s: w = min(M, S-1-s) warmup forwards (kFill), w cooldown
  // backwards (kDrain), everything else kSteady.
  int fill[3] = {0, 0, 0}, drain[3] = {0, 0, 0}, steady[3] = {0, 0, 0};
  for (const ScheduleOp& op : eng.ops()) {
    const size_t s = static_cast<size_t>(op.stage);
    switch (op.phase) {
      case SchedulePhase::kFill: ++fill[s]; EXPECT_EQ(op.kind, Kind::kForward); break;
      case SchedulePhase::kDrain: ++drain[s]; EXPECT_EQ(op.kind, Kind::kBackward); break;
      case SchedulePhase::kSteady: ++steady[s]; break;
    }
  }
  EXPECT_EQ(fill[0], 2); EXPECT_EQ(drain[0], 2); EXPECT_EQ(steady[0], 8);
  EXPECT_EQ(fill[1], 1); EXPECT_EQ(drain[1], 1); EXPECT_EQ(steady[1], 10);
  EXPECT_EQ(fill[2], 0); EXPECT_EQ(drain[2], 0); EXPECT_EQ(steady[2], 12);
}

TEST(ScheduleEngine, BucketReadyOpsFollowEachStagesLastBackward) {
  ScheduleEngine eng(SchedulePolicy::k1F1B, 2, 4, {2, 3});
  // Stage 1's last backward B(1,3) precedes stage 0's B(0,3), so its
  // buckets issue FIRST — that is the whole overlap: the row's all-reduce
  // starts while upstream stages are still draining.
  expect_ops(eng, {{F, 0, 0}, {F, 1, 0}, {F, 0, 1}, {B, 1, 0},
                   {B, 0, 0}, {F, 1, 1}, {F, 0, 2}, {B, 1, 1},
                   {B, 0, 1}, {F, 1, 2}, {F, 0, 3}, {B, 1, 2},
                   {B, 0, 2}, {F, 1, 3}, {B, 1, 3},
                   {R, 1, 0}, {R, 1, 1}, {R, 1, 2},
                   {B, 0, 3}, {R, 0, 0}, {R, 0, 1}});
  for (const ScheduleOp& op : eng.ops()) {
    if (op.kind == Kind::kBucketReady) {
      EXPECT_EQ(op.microbatch, -1);
      EXPECT_GE(op.bucket, 0);
    } else {
      EXPECT_EQ(op.bucket, -1);
    }
  }
}

TEST(ScheduleEngine, GPipeNeverEmitsBuckets) {
  // GPipe trainers keep the legacy post-drain synchronous update; the op
  // stream must be unchanged even when bucket counts are passed.
  ScheduleEngine plain(SchedulePolicy::kGPipe, 3, 4);
  ScheduleEngine bucketed(SchedulePolicy::kGPipe, 3, 4, {2, 2, 2});
  ASSERT_EQ(plain.ops().size(), bucketed.ops().size());
  for (size_t i = 0; i < plain.ops().size(); ++i) {
    EXPECT_TRUE(plain.ops()[i] == bucketed.ops()[i]) << "op " << i;
  }
}

TEST(ScheduleEngine, DegenerateShapes) {
  {
    // S=1: no links, no stash; 1F1B degenerates to F B F B ... per microbatch.
    ScheduleEngine eng(SchedulePolicy::k1F1B, 1, 3);
    expect_ops(eng, {{F, 0, 0}, {B, 0, 0}, {F, 0, 1}, {B, 0, 1}, {F, 0, 2}, {B, 0, 2}});
    EXPECT_EQ(eng.peak_stash_slots(0), 0);
    for (const ScheduleOp& op : eng.ops()) EXPECT_FALSE(op.recompute);
  }
  {
    // M=1: both policies collapse to one fill column and one drain column.
    ScheduleEngine g(SchedulePolicy::kGPipe, 3, 1);
    ScheduleEngine p(SchedulePolicy::k1F1B, 3, 1);
    ASSERT_EQ(g.ops().size(), p.ops().size());
    for (size_t i = 0; i < g.ops().size(); ++i) {
      EXPECT_EQ(static_cast<int>(g.ops()[i].kind), static_cast<int>(p.ops()[i].kind)) << i;
      EXPECT_EQ(g.ops()[i].stage, p.ops()[i].stage) << i;
    }
    EXPECT_EQ(p.peak_stash_slots(1), 1);
    EXPECT_EQ(p.peak_stash_slots(2), 1);
  }
}

TEST(ScheduleEngine, EveryScheduleIsDependencyValid) {
  // Structural sanity over a sweep: each microbatch forwards down then
  // backwards up, receives matching earlier sends, and every (stage,
  // microbatch) appears exactly once per direction.
  for (SchedulePolicy pol : {SchedulePolicy::kGPipe, SchedulePolicy::k1F1B}) {
    for (int S : {1, 2, 3, 4, 5}) {
      for (int M : {1, 2, 3, 4, 6, 8}) {
        ScheduleEngine eng(pol, S, M);
        std::vector<std::vector<bool>> fwd(static_cast<size_t>(S),
                                           std::vector<bool>(static_cast<size_t>(M), false));
        auto bwd = fwd;
        for (const ScheduleOp& op : eng.ops()) {
          const size_t s = static_cast<size_t>(op.stage), m = static_cast<size_t>(op.microbatch);
          if (op.kind == Kind::kForward) {
            ASSERT_FALSE(fwd[s][m]);
            if (op.stage > 0) {
              ASSERT_TRUE(fwd[s - 1][m]) << schedule_policy_name(pol);
            }
            fwd[s][m] = true;
          } else {
            ASSERT_FALSE(bwd[s][m]);
            ASSERT_TRUE(fwd[s][m]);
            if (op.stage + 1 < S) {
              ASSERT_TRUE(bwd[s + 1][m]) << schedule_policy_name(pol);
            }
            bwd[s][m] = true;
          }
        }
        for (int s = 0; s < S; ++s) {
          for (int m = 0; m < M; ++m) {
            ASSERT_TRUE(fwd[static_cast<size_t>(s)][static_cast<size_t>(m)]);
            ASSERT_TRUE(bwd[static_cast<size_t>(s)][static_cast<size_t>(m)]);
          }
        }
        // 1F1B's stash never exceeds GPipe's, and beats it when M > S.
        for (int s = 1; s < S; ++s) {
          if (pol == SchedulePolicy::k1F1B) {
            EXPECT_LE(eng.peak_stash_slots(s), M);
            if (M > S) {
              EXPECT_LT(eng.peak_stash_slots(s), M);
            }
          } else {
            EXPECT_EQ(eng.peak_stash_slots(s), M);
          }
        }
      }
    }
  }
}

TEST(ScheduleEngine, RejectsBadShapes) {
  EXPECT_THROW(ScheduleEngine(SchedulePolicy::kGPipe, 0, 2), std::invalid_argument);
  EXPECT_THROW(ScheduleEngine(SchedulePolicy::k1F1B, 2, 0), std::invalid_argument);
  // Bucket vector must cover every stage with a positive count.
  EXPECT_THROW(ScheduleEngine(SchedulePolicy::k1F1B, 2, 2, {1}), std::invalid_argument);
  EXPECT_THROW(ScheduleEngine(SchedulePolicy::k1F1B, 2, 2, {1, 0}), std::invalid_argument);
}

}  // namespace
