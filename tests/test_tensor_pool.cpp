// UnifiedTensorPool + async TransferEngine integration tests:
//
//   1. Real/sim parity — identical options produce the identical transfer
//      schedule (telemetry-visible byte and submission counts) whether the
//      runtime is backed or accounting-only.
//   2. NUMERICS INVARIANCE of the async engine — training with the DMA
//      thread is bit-identical, loss and weights, to synchronous transfers,
//      while the transfers demonstrably complete on the DMA thread.
//   3. StepTelemetry exposes the host-pool and transfer-engine state.
//   4. Bad frees are counted (release) / fatal (debug) in both pools.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/runtime.hpp"
#include "graph/zoo.hpp"
#include "mem/host_pool.hpp"
#include "train/trainer.hpp"

namespace {

using namespace sn;
using core::PolicyPreset;
using core::RuntimeOptions;

uint64_t param_bytes(const graph::Net& net) {
  uint64_t params = 0;
  for (const auto& t : net.registry().all()) {
    if (t->kind() == tensor::TensorKind::kParam || t->kind() == tensor::TensorKind::kParamGrad)
      params += t->bytes();
  }
  return params;
}

/// Options under which mini-alexnet training must offload: tight device
/// capacity, recompute disabled (so eviction cannot drop — it must
/// transfer), liveness off (so tensors accumulate and create pressure),
/// conv algorithm pinned so only scheduling varies.
RuntimeOptions starved_opts(bool real) {
  auto probe = graph::build_mini_alexnet(4);
  RuntimeOptions o = core::make_policy(PolicyPreset::kSuperNeurons);
  o.real = real;
  o.allow_workspace = false;
  o.recompute = core::RecomputeMode::kNone;
  o.use_liveness = false;
  o.device_capacity = param_bytes(*probe) + 2 * probe->max_layer_bytes();
  o.host_capacity = 64ull << 20;
  return o;
}

std::map<std::string, std::vector<float>> param_snapshot(core::Runtime& rt) {
  std::map<std::string, std::vector<float>> snap;
  for (const auto& l : rt.net().layers()) {
    for (const auto* p : l->params()) snap[p->name()] = rt.read_tensor(p);
  }
  return snap;
}

TEST(TensorPool, RealAndSimModesProduceTheSameTransferSchedule) {
  // The engine's completion decisions are gated on virtual time in both
  // backends, so backing the buffers must not change a single scheduling
  // decision: byte counts, submissions, evictions and allocation counts all
  // match between real and sim runs of the same configuration.
  auto run = [](bool real) {
    auto net = graph::build_mini_alexnet(4);
    core::Runtime rt(*net, starved_opts(real));
    std::vector<core::IterationStats> stats;
    for (int i = 0; i < 3; ++i) stats.push_back(rt.train_iteration(nullptr, nullptr));
    return stats;
  };
  auto sim = run(false);
  auto real = run(true);
  ASSERT_EQ(sim.size(), real.size());
  uint64_t total_d2h = 0;
  for (size_t i = 0; i < sim.size(); ++i) {
    EXPECT_EQ(sim[i].bytes_d2h, real[i].bytes_d2h) << "iteration " << i;
    EXPECT_EQ(sim[i].bytes_h2d, real[i].bytes_h2d) << "iteration " << i;
    EXPECT_EQ(sim[i].evictions, real[i].evictions) << "iteration " << i;
    EXPECT_EQ(sim[i].allocs, real[i].allocs) << "iteration " << i;
    EXPECT_EQ(sim[i].peak_mem, real[i].peak_mem) << "iteration " << i;
    total_d2h += real[i].bytes_d2h;
  }
  EXPECT_GT(total_d2h, 0u) << "parity test ran without exercising transfers";
}

TEST(TensorPool, AsyncEngineIsBitIdenticalToSyncTransfers) {
  // The flagship property extended to the threaded engine: per-iteration
  // losses and final weights must match the synchronous run bit-for-bit
  // while the copies really run on the DMA thread.
  auto run = [](bool async) {
    auto net = graph::build_mini_alexnet(4);
    RuntimeOptions o = starved_opts(/*real=*/true);
    o.async_transfers = async;
    core::Runtime rt(*net, o);
    train::Trainer trainer(rt, {.iterations = 6, .lr = 0.02f, .momentum = 0.9f});
    auto report = trainer.run();
    uint64_t d2h = 0, dma = 0;
    for (const auto& st : report.stats) {
      d2h += st.bytes_d2h;
      dma += st.dma_copies;  // per-iteration delta
    }
    return std::tuple(report.losses, param_snapshot(rt), d2h, dma);
  };
  auto [sync_losses, sync_params, sync_d2h, sync_dma] = run(false);
  auto [async_losses, async_params, async_d2h, async_dma] = run(true);

  EXPECT_GT(sync_d2h, 0u) << "sync run did not offload";
  EXPECT_GT(async_d2h, 0u) << "async run did not offload";
  EXPECT_EQ(sync_dma, 0u) << "sync engine must not use the DMA thread";
  EXPECT_GT(async_dma, 0u) << "async engine never used the DMA thread";

  ASSERT_EQ(sync_losses.size(), async_losses.size());
  for (size_t i = 0; i < sync_losses.size(); ++i) {
    ASSERT_EQ(sync_losses[i], async_losses[i]) << "loss diverged at iteration " << i;
  }
  ASSERT_EQ(sync_params.size(), async_params.size());
  for (const auto& [name, ref] : sync_params) {
    const auto& got = async_params.at(name);
    ASSERT_EQ(ref.size(), got.size()) << name;
    for (size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(ref[i], got[i]) << name << " diverged at element " << i;
    }
  }
}

TEST(TensorPool, AsyncEngineStressManyIterationsStaysIdentical) {
  // Longer threaded soak: repeated pressure-driven evict/offload/prefetch
  // cycles through the DMA thread must never corrupt an offloaded tensor.
  auto losses = [](bool async) {
    auto net = graph::build_tiny_resnet(4, 2);
    RuntimeOptions o = core::make_policy(PolicyPreset::kSuperNeurons);
    o.real = true;
    o.allow_workspace = false;
    o.recompute = core::RecomputeMode::kNone;
    o.use_liveness = false;
    o.host_capacity = 64ull << 20;
    {
      auto probe = graph::build_tiny_resnet(4, 2);
      o.device_capacity = param_bytes(*probe) + 4 * probe->max_layer_bytes();
    }
    o.async_transfers = async;
    core::Runtime rt(*net, o);
    train::Trainer trainer(rt, {.iterations = 12, .lr = 0.02f, .momentum = 0.9f});
    return trainer.run().losses;
  };
  auto sync = losses(false);
  auto async = losses(true);
  ASSERT_EQ(sync.size(), async.size());
  for (size_t i = 0; i < sync.size(); ++i) {
    ASSERT_EQ(sync[i], async[i]) << "loss diverged at iteration " << i;
  }
}

TEST(TensorPool, StepTelemetryExposesHostPoolAndTransferState) {
  auto net = graph::build_mini_alexnet(4);
  RuntimeOptions o = starved_opts(/*real=*/true);
  core::Runtime rt(*net, o);
  rt.train_iteration(nullptr, nullptr);
  rt.train_iteration(nullptr, nullptr);

  uint64_t max_host_in_use = 0, max_host_peak = 0;
  uint64_t last_d2h_submitted = 0, last_d2h_completed = 0, last_dma = 0;
  for (const auto& t : rt.step_telemetry()) {
    max_host_in_use = std::max(max_host_in_use, t.host_in_use);
    max_host_peak = std::max(max_host_peak, t.host_peak);
    // Cumulative counters are monotone within the iteration.
    EXPECT_GE(t.d2h_submitted, last_d2h_submitted);
    EXPECT_GE(t.d2h_completed, last_d2h_completed);
    EXPECT_GE(t.d2h_submitted, t.d2h_completed);
    last_d2h_submitted = t.d2h_submitted;
    last_d2h_completed = t.d2h_completed;
    last_dma = std::max(last_dma, t.dma_copies);
  }
  EXPECT_GT(max_host_in_use, 0u) << "offloaded bytes never visible in telemetry";
  EXPECT_GE(max_host_peak, max_host_in_use);
  EXPECT_GT(last_d2h_completed, 0u) << "no offload completion visible in telemetry";
  EXPECT_GT(last_dma, 0u) << "no DMA-thread completion visible in telemetry";
  EXPECT_EQ(rt.tensor_pool().host_pool().stats().bad_frees, 0u);

  // After the end-of-iteration drain nothing may remain in flight.
  EXPECT_EQ(rt.transfer_engine().pending_count(core::TransferDir::kD2H), 0u);
  EXPECT_EQ(rt.transfer_engine().pending_count(core::TransferDir::kH2D), 0u);
}

TEST(TensorPool, PrefetchLookaheadDepthDoesNotChangeNumerics) {
  auto run = [](int lookahead) {
    auto net = graph::build_mini_alexnet(4);
    RuntimeOptions o = starved_opts(/*real=*/true);
    o.prefetch_lookahead = lookahead;
    core::Runtime rt(*net, o);
    train::Trainer trainer(rt, {.iterations = 4, .lr = 0.02f});
    trainer.run();
    return param_snapshot(rt);
  };
  auto shallow = run(1);
  auto deep = run(3);
  for (const auto& [name, ref] : shallow) {
    const auto& got = deep.at(name);
    for (size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(ref[i], got[i]) << name << " diverged at element " << i;
    }
  }
}

TEST(TensorPool, MarkDirtyInvalidatesTheCleanStateButKeepsTheHostBuffer) {
  // A def fetched back from host (partially accumulated gradient) is about
  // to be rewritten by a kernel: the kBoth "clean" state must drop so
  // pass-0 eviction cannot resurrect the stale host bytes — but the host
  // allocation stays, ready for the re-offload.
  tensor::TensorRegistry reg;
  sim::Machine m(sim::k40c_spec());
  core::UnifiedTensorPool::Config cfg;
  cfg.real = true;
  cfg.device_capacity = 1 << 20;
  cfg.host_capacity = 4 << 20;
  core::UnifiedTensorPool pool(reg, m, cfg, {});
  tensor::Tensor* t = reg.create("grad", tensor::Shape{1, 1, 8, 8}, tensor::TensorKind::kGrad);

  pool.alloc_device(t);
  t->residency = tensor::Residency::kDevice;
  pool.offload_to_host(t, /*async=*/false);
  ASSERT_EQ(t->residency, tensor::Residency::kHost);
  const uint64_t host_handle = t->host_handle;
  ASSERT_NE(host_handle, 0u);

  pool.fetch_from_host(t);
  ASSERT_EQ(t->residency, tensor::Residency::kBoth);

  pool.mark_dirty(t);
  EXPECT_EQ(t->residency, tensor::Residency::kDevice);
  EXPECT_EQ(t->host_handle, host_handle) << "host buffer should be kept for reuse";

  // Re-offload after the rewrite reuses the same host allocation.
  pool.offload_to_host(t, /*async=*/false);
  EXPECT_EQ(t->residency, tensor::Residency::kHost);
  EXPECT_EQ(t->host_handle, host_handle);
  EXPECT_EQ(pool.host_pool().stats().bad_frees, 0u);
}

TEST(HostPoolContract, BadFreeIsCountedOrFatal) {
  mem::HostPool hp(1 << 20, true, true);
  uint64_t h = hp.allocate(512);
  ASSERT_NE(h, 0u);
  hp.deallocate(h);
#ifdef NDEBUG
  hp.deallocate(h);  // double free: counted, not corrupting
  EXPECT_EQ(hp.stats().bad_frees, 1u);
  EXPECT_EQ(hp.in_use(), 0u);
#else
  EXPECT_DEATH(hp.deallocate(h), "");
#endif
  EXPECT_EQ(hp.stats().alloc_calls, 1u);
}

TEST(MemPoolContract, BadFreeIsCountedOrFatal) {
  mem::MemoryPool pool(1 << 20);
  auto a = pool.allocate(1024);
  ASSERT_TRUE(a);
  pool.deallocate(a->id);
#ifdef NDEBUG
  pool.deallocate(a->id);
  EXPECT_EQ(pool.stats().bad_frees, 1u);
  EXPECT_TRUE(pool.validate());
#else
  EXPECT_DEATH(pool.deallocate(a->id), "");
#endif
}

}  // namespace
