// Cost-Aware Recomputation planner tests (paper §3.4, Table 1): segment
// construction, droppability, analytic replay counts, and the peak-memcost
// guarantees of each strategy.
#include <gtest/gtest.h>

#include "core/recompute.hpp"
#include "graph/zoo.hpp"

namespace {

using namespace sn;
using core::RecomputeMode;
using core::RecomputePlan;

TEST(Recompute, CheckpointClassification) {
  auto net = graph::build_mini_alexnet(2);
  for (const auto& l : net->layers()) {
    bool expect = l->type() == graph::LayerType::kConv || l->type() == graph::LayerType::kFc ||
                  l->type() == graph::LayerType::kData ||
                  l->type() == graph::LayerType::kSoftmax;
    EXPECT_EQ(RecomputePlan::is_checkpoint_layer(l.get()), expect) << l->name();
  }
}

TEST(Recompute, SegmentsPartitionNonCheckpoints) {
  auto net = graph::build_mini_alexnet(2);
  RecomputePlan plan(*net, RecomputeMode::kCostAware);
  size_t in_segments = 0;
  for (const auto& seg : plan.segments()) in_segments += seg.layers.size();
  size_t non_ckpt = 0;
  for (const auto& l : net->layers()) {
    if (!RecomputePlan::is_checkpoint_layer(l.get())) ++non_ckpt;
  }
  EXPECT_EQ(in_segments, non_ckpt);
  // Every non-checkpoint maps to exactly one segment; checkpoints to none.
  for (const auto& l : net->layers()) {
    if (RecomputePlan::is_checkpoint_layer(l.get())) {
      EXPECT_EQ(plan.segment_of(l.get()), -1) << l->name();
    } else {
      EXPECT_GE(plan.segment_of(l.get()), 0) << l->name();
    }
  }
}

TEST(Recompute, MiniAlexNetSegmentStructure) {
  // mini AlexNet: CONV1 [RELU1 LRN1 POOL1] CONV2 [RELU2 LRN2 POOL2] CONV3
  // [RELU3] FC1 [RELU6 DROPOUT1] FC2 [] SOFTMAX -> 4 segments of 3,3,1,2.
  auto net = graph::build_mini_alexnet(2);
  RecomputePlan plan(*net, RecomputeMode::kCostAware);
  ASSERT_EQ(plan.segments().size(), 4u);
  EXPECT_EQ(plan.segments()[0].layers.size(), 3u);
  EXPECT_EQ(plan.segments()[1].layers.size(), 3u);
  EXPECT_EQ(plan.segments()[2].layers.size(), 1u);
  EXPECT_EQ(plan.segments()[3].layers.size(), 2u);
}

TEST(Recompute, AnalyticCountsFollowClosedForms) {
  // Speed-centric: Σ|seg| = 3+3+1+2 = 9.
  // Memory-centric: Σ (n + n(n+1)/2) = 9+9+2+5 = 25.
  auto net = graph::build_mini_alexnet(2);
  RecomputePlan plan(*net, RecomputeMode::kCostAware);
  EXPECT_EQ(plan.predicted_extra_forwards(RecomputeMode::kSpeedCentric), 9u);
  EXPECT_EQ(plan.predicted_extra_forwards(RecomputeMode::kMemoryCentric), 25u);
  EXPECT_EQ(plan.predicted_extra_forwards(RecomputeMode::kNone), 0u);
  // Cost-aware lies between the two.
  uint64_t ca = plan.predicted_extra_forwards(RecomputeMode::kCostAware);
  EXPECT_GE(ca, 9u);
  EXPECT_LE(ca, 25u);
}

TEST(Recompute, CostAwarePeakNeverExceedsLPeak) {
  // The paper's central claim: cost-aware recomputation keeps recompute
  // memcost at l_peak while memory-centric matches it and speed-centric
  // may exceed it (Table 1).
  for (int batch : {2, 4}) {
    auto net = graph::build_mini_alexnet(batch);
    RecomputePlan plan(*net, RecomputeMode::kCostAware);
    uint64_t lp = plan.l_peak();
    EXPECT_EQ(plan.predicted_peak_memcost(RecomputeMode::kCostAware), lp);
    EXPECT_EQ(plan.predicted_peak_memcost(RecomputeMode::kMemoryCentric), lp);
    EXPECT_GE(plan.predicted_peak_memcost(RecomputeMode::kSpeedCentric), lp);
  }
}

TEST(Recompute, DroppableTensorsAreCheapOnes) {
  auto net = graph::build_mini_alexnet(2);
  RecomputePlan plan(*net, RecomputeMode::kCostAware);
  for (const auto& l : net->layers()) {
    bool ckpt = RecomputePlan::is_checkpoint_layer(l.get());
    EXPECT_EQ(plan.droppable(l->output()), !ckpt) << l->name();
    // Gradients and params are never droppable.
    if (l->output_grad()) {
      EXPECT_FALSE(plan.droppable(l->output_grad()));
    }
    for (auto* p : l->params()) EXPECT_FALSE(plan.droppable(p));
  }
}

TEST(Recompute, ModeNoneHasNoSegments) {
  auto net = graph::build_mini_alexnet(2);
  RecomputePlan plan(*net, RecomputeMode::kNone);
  EXPECT_TRUE(plan.segments().empty());
  for (const auto& t : net->registry().all()) EXPECT_FALSE(plan.droppable(t.get()));
}

TEST(Recompute, SpeedCentricSelectedWhenSegmentsFitUnderLPeak) {
  // mini-alexnet segments are small relative to the largest layer, so
  // cost-aware should choose speed-centric nearly everywhere — the paper's
  // observation that most segments fit under l_peak.
  auto net = graph::build_mini_alexnet(4);
  RecomputePlan plan(*net, RecomputeMode::kCostAware);
  int speed = 0;
  for (const auto& seg : plan.segments())
    if (seg.speed_centric) ++speed;
  EXPECT_GT(speed, 0);
}

TEST(Recompute, ResNetSegmentsCoverBnReluJoins) {
  auto net = graph::build_tiny_resnet(2, 2);
  RecomputePlan plan(*net, RecomputeMode::kCostAware);
  // BN, ReLU and eltwise layers are all droppable segment members.
  for (const auto& l : net->layers()) {
    if (l->type() == graph::LayerType::kBn || l->type() == graph::LayerType::kEltwise) {
      EXPECT_GE(plan.segment_of(l.get()), 0) << l->name();
    }
  }
}

}  // namespace
