// Tensor Cache (Alg. 2) unit tests: LRU ordering, touch-to-front, victim
// selection, hit/miss counters.
#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "core/tensor_cache.hpp"

namespace {

using sn::core::TensorCache;

/// Victims in the order repeated find_victim queries would evict them
/// (each accepted victim is excluded from the next query, as eviction
/// erases it from the cache).
std::vector<uint64_t> drain_order(const TensorCache& c) {
  std::vector<uint64_t> order;
  std::unordered_set<uint64_t> taken;
  while (auto v = c.find_victim([&](uint64_t uid) { return !taken.count(uid); })) {
    order.push_back(*v);
    taken.insert(*v);
  }
  return order;
}

TEST(TensorCache, FindVictimIsLruFirst) {
  TensorCache c;
  c.insert(1);
  c.insert(2);
  c.insert(3);  // MRU
  auto v = c.find_victim([](uint64_t) { return true; });
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1u);  // least recently used evicts first
  auto order = drain_order(c);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 3u);
}

TEST(TensorCache, FindVictimSkipsRejected) {
  // The pool rejects locked / wrong-residency tensors; the walk continues
  // from the tail past them (Alg. 2 getLastUnlockedTensor).
  TensorCache c;
  c.insert(1);
  c.insert(2);
  c.insert(3);
  auto v = c.find_victim([](uint64_t uid) { return uid != 1; });
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 2u);
  EXPECT_FALSE(c.find_victim([](uint64_t) { return false; }).has_value());
}

TEST(TensorCache, FindVictimOnEmptyCache) {
  TensorCache c;
  EXPECT_FALSE(c.find_victim([](uint64_t) { return true; }).has_value());
}

TEST(TensorCache, TouchMovesToFront) {
  TensorCache c;
  c.insert(1);
  c.insert(2);
  c.insert(3);
  c.touch(1);  // 1 becomes MRU
  auto order = drain_order(c);
  EXPECT_EQ(order[0], 2u);
  EXPECT_EQ(order[1], 3u);
  EXPECT_EQ(order[2], 1u);
}

TEST(TensorCache, ReinsertActsAsTouch) {
  TensorCache c;
  c.insert(1);
  c.insert(2);
  c.insert(1);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(drain_order(c)[0], 2u);
}

TEST(TensorCache, EraseRemoves) {
  TensorCache c;
  c.insert(1);
  c.insert(2);
  c.erase(1);
  EXPECT_FALSE(c.contains(1));
  EXPECT_EQ(c.size(), 1u);
  c.erase(42);  // unknown uid is a no-op
  EXPECT_EQ(c.size(), 1u);
}

TEST(TensorCache, TouchUnknownIsNoop) {
  TensorCache c;
  c.touch(7);
  EXPECT_EQ(c.size(), 0u);
}

TEST(TensorCache, HitMissCounters) {
  TensorCache c;
  c.count_hit();
  c.count_hit();
  c.count_miss();
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(TensorCache, BackpropPatternFavoursLru) {
  // Head-to-tail forward then tail-to-head backward: the most recently used
  // tensors are reused earliest (paper §3.3.2) — so under LRU, the *early*
  // forward tensors are the ones evicted, exactly what backward wants
  // (it needs the late ones first).
  TensorCache c;
  for (uint64_t uid = 0; uid < 10; ++uid) c.insert(uid);
  auto order = drain_order(c);
  for (uint64_t uid = 0; uid < 10; ++uid) EXPECT_EQ(order[uid], uid);
}

}  // namespace
