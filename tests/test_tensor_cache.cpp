// Tensor Cache (Alg. 2) unit tests: LRU ordering, touch-to-front, eviction
// order, hit/miss counters.
#include <gtest/gtest.h>

#include "core/tensor_cache.hpp"

namespace {

using sn::core::TensorCache;

TEST(TensorCache, EvictionOrderIsLruFirst) {
  TensorCache c;
  c.insert(1);
  c.insert(2);
  c.insert(3);  // MRU
  auto order = c.eviction_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);  // least recently used evicts first
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 3u);
}

TEST(TensorCache, TouchMovesToFront) {
  TensorCache c;
  c.insert(1);
  c.insert(2);
  c.insert(3);
  c.touch(1);  // 1 becomes MRU
  auto order = c.eviction_order();
  EXPECT_EQ(order[0], 2u);
  EXPECT_EQ(order[1], 3u);
  EXPECT_EQ(order[2], 1u);
}

TEST(TensorCache, ReinsertActsAsTouch) {
  TensorCache c;
  c.insert(1);
  c.insert(2);
  c.insert(1);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.eviction_order()[0], 2u);
}

TEST(TensorCache, EraseRemoves) {
  TensorCache c;
  c.insert(1);
  c.insert(2);
  c.erase(1);
  EXPECT_FALSE(c.contains(1));
  EXPECT_EQ(c.size(), 1u);
  c.erase(42);  // unknown uid is a no-op
  EXPECT_EQ(c.size(), 1u);
}

TEST(TensorCache, TouchUnknownIsNoop) {
  TensorCache c;
  c.touch(7);
  EXPECT_EQ(c.size(), 0u);
}

TEST(TensorCache, HitMissCounters) {
  TensorCache c;
  c.count_hit();
  c.count_hit();
  c.count_miss();
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(TensorCache, BackpropPatternFavoursLru) {
  // Head-to-tail forward then tail-to-head backward: the most recently used
  // tensors are reused earliest (paper §3.3.2) — so under LRU, the *early*
  // forward tensors are the ones evicted, exactly what backward wants
  // (it needs the late ones first).
  TensorCache c;
  for (uint64_t uid = 0; uid < 10; ++uid) c.insert(uid);
  auto order = c.eviction_order();
  for (uint64_t uid = 0; uid < 10; ++uid) EXPECT_EQ(order[uid], uid);
}

}  // namespace
