// Runtime edge cases and failure injection: host-pool exhaustion, the
// native-allocator (cudaMalloc-model) path, offload release ordering,
// prefetch effectiveness, reuse-alias accounting, and construction errors.
#include <gtest/gtest.h>

#include "core/runtime.hpp"
#include "graph/zoo.hpp"
#include "train/trainer.hpp"

namespace {

using namespace sn;

TEST(RuntimeEdges, HostPoolExhaustionIsACleanOom) {
  // Device far too small AND host pool too small to absorb the offloads.
  auto net = graph::build_alexnet(32);  // full-size images: activations dominate
  core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
  o.real = false;
  o.recompute = core::RecomputeMode::kNone;  // force offloads, not drops
  uint64_t params = 0;
  for (const auto& t : net->registry().all()) {
    if (t->kind() == tensor::TensorKind::kParam || t->kind() == tensor::TensorKind::kParamGrad)
      params += t->bytes();
  }
  o.device_capacity = params + net->max_layer_bytes() / 2;
  o.host_capacity = 1 << 20;  // 1 MB host pool: offload targets can't fit
  core::Runtime rt(*net, o);
  EXPECT_THROW(rt.train_iteration(nullptr, nullptr), core::OomError);
}

TEST(RuntimeEdges, NativeAllocatorPathSchedulesCorrectly) {
  // The cudaMalloc-model allocator must produce the same scheduling
  // decisions, just slower — Table 2's premise.
  auto run_with = [](bool pool) {
    auto net = graph::build_mini_alexnet(4);
    core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
    o.real = false;
    o.use_pool_allocator = pool;
    core::Runtime rt(*net, o);
    auto st = rt.train_iteration(nullptr, nullptr);
    return st;
  };
  auto with_pool = run_with(true);
  auto native = run_with(false);
  EXPECT_GT(native.malloc_seconds, with_pool.malloc_seconds * 10);
  EXPECT_GT(native.seconds, with_pool.seconds);
  // Identical structural schedule: same peak within rounding differences of
  // the two allocators' block sizes (256 B vs 1 KB).
  EXPECT_NEAR(static_cast<double>(native.peak_mem), static_cast<double>(with_pool.peak_mem),
              0.05 * with_pool.peak_mem);
}

TEST(RuntimeEdges, PrefetchOverlapsBackwardTransfers) {
  // With eager offload + prefetch enabled, steady-state stall time should be
  // a small fraction of the iteration (most transfer latency hidden).
  auto net = graph::build_alexnet(128);
  core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
  o.real = false;
  o.tensor_cache = false;  // force the transfer path
  o.recompute = core::RecomputeMode::kNone;
  core::Runtime rt(*net, o);
  rt.train_iteration(nullptr, nullptr);
  auto st = rt.train_iteration(nullptr, nullptr);
  ASSERT_GT(st.bytes_d2h, 0u);
  ASSERT_GT(st.bytes_h2d, 0u);
  EXPECT_LT(st.stall_seconds, 0.35 * st.seconds);
}

TEST(RuntimeEdges, SyncTransfersStallMore) {
  auto stall_frac = [](bool async) {
    auto net = graph::build_alexnet(128);
    core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
    o.real = false;
    o.tensor_cache = false;
    o.recompute = core::RecomputeMode::kNone;
    o.async_transfers = async;
    core::Runtime rt(*net, o);
    rt.train_iteration(nullptr, nullptr);
    auto st = rt.train_iteration(nullptr, nullptr);
    return st.stall_seconds / st.seconds;
  };
  EXPECT_LT(stall_frac(true), stall_frac(false));
}

TEST(RuntimeEdges, ReuseGradBuffersShrinksCaffePeak) {
  auto peak_with = [](bool reuse) {
    auto net = graph::build_vgg(16, 8);
    core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kCaffeLike);
    o.real = false;
    o.reuse_grad_buffers = reuse;
    o.device_capacity = 64ull << 30;
    core::Runtime rt(*net, o);
    return rt.train_iteration(nullptr, nullptr).peak_mem;
  };
  uint64_t with = peak_with(true);
  uint64_t without = peak_with(false);
  EXPECT_LT(with, without);
  // §2.2: "saves up to 50% of memory on a linear network".
  EXPECT_LT(with, static_cast<uint64_t>(0.8 * without));
}

TEST(RuntimeEdges, UnfinalizedNetIsRejected) {
  graph::Net net;
  net.data("d", tensor::Shape{1, 1, 4, 4});
  core::RuntimeOptions o;
  EXPECT_THROW(core::Runtime rt(net, o), std::logic_error);
}

TEST(RuntimeEdges, DisconnectedGraphFailsFinalize) {
  graph::Net net;
  auto* d = net.data("d", tensor::Shape{1, 1, 4, 4});
  net.relu("r", d);
  // A layer wired to nothing reachable from DATA.
  net.add(std::make_unique<graph::ActLayer>("orphan_src"), {});
  EXPECT_THROW(net.finalize(), std::logic_error);
}

TEST(RuntimeEdges, OomErrorCarriesDiagnostics) {
  auto net = graph::build_mini_alexnet(8);
  core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
  o.real = false;
  o.device_capacity = 64 << 10;
  core::Runtime rt(*net, o);
  try {
    rt.train_iteration(nullptr, nullptr);
    FAIL() << "expected OomError";
  } catch (const core::OomError& e) {
    EXPECT_GT(e.requested, 0u);
    EXPECT_FALSE(e.what.empty());
  }
}

TEST(RuntimeEdges, BaselinePeakEqualsTotalTensorDemand) {
  // The paper's baseline formula: every tensor allocated, nothing freed.
  auto net = graph::build_mini_alexnet(8);
  core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kBaselineNaive);
  o.real = false;
  o.allow_workspace = false;  // exclude conv scratch from the comparison
  o.device_capacity = 4ull << 30;
  core::Runtime rt(*net, o);
  auto st = rt.train_iteration(nullptr, nullptr);
  // Allocator rounding (tiny tensors on 256 B blocks) adds a few percent.
  double total = static_cast<double>(net->total_tensor_bytes());
  EXPECT_NEAR(static_cast<double>(st.peak_mem), total, 0.06 * total);
}

TEST(RuntimeEdges, TelemetryClockIsMonotone) {
  auto net = graph::build_mini_alexnet(4);
  core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
  o.real = false;
  core::Runtime rt(*net, o);
  rt.train_iteration(nullptr, nullptr);
  double last = -1.0;
  for (const auto& t : rt.step_telemetry()) {
    EXPECT_GE(t.clock, last);
    last = t.clock;
  }
}

}  // namespace
