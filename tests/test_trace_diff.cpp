// obs::trace_diff tests (ISSUE 10 tentpole): schedule-op alignment across
// two Chrome-trace exports, per-bucket attribution of a synthetically
// injected slowdown, unmatched-span accounting, row filtering, the report's
// schema gate, and a clean self-diff of a real deterministic export.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "dist/hybrid_parallel.hpp"
#include "graph/zoo.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/trace.hpp"
#include "obs/trace_diff.hpp"
#include "perf/trajectory.hpp"
#include "util/json_reader.hpp"

namespace {

using namespace sn;

/// One synthetic duration event in the deterministic export's shape.
std::string span(int pid, int tid, const std::string& cat, const std::string& name,
                 double ts_us, double dur_us, const char* stall = nullptr) {
  char buf[320];
  if (stall) {
    std::snprintf(buf, sizeof buf,
                  "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \"pid\": %d, "
                  "\"tid\": %d, \"ts\": %.3f, \"dur\": %.3f, \"args\": {\"stall\": \"%s\"}}",
                  name.c_str(), cat.c_str(), pid, tid, ts_us, dur_us, stall);
  } else {
    std::snprintf(buf, sizeof buf,
                  "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \"pid\": %d, "
                  "\"tid\": %d, \"ts\": %.3f, \"dur\": %.3f}",
                  name.c_str(), cat.c_str(), pid, tid, ts_us, dur_us);
  }
  return buf;
}

std::string trace(const std::vector<std::string>& events) {
  std::string out = "{\"traceEvents\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    if (i) out += ", ";
    out += events[i];
  }
  return out + "]}";
}

util::JsonValue parse(const std::string& text) { return util::JsonValue::parse(text); }

const obs::TraceDiffBucket& bucket(const obs::TraceDiffReport& rep, const std::string& name) {
  for (const auto& b : rep.buckets) {
    if (b.bucket == name) return b;
  }
  ADD_FAILURE() << "bucket " << name << " missing from report";
  static obs::TraceDiffBucket none;
  return none;
}

TEST(TraceDiff, IdenticalTracesDiffToZero) {
  const std::string t = trace({
      span(0, 0, "compute", "conv1:f", 0, 100),
      span(0, 0, "compute", "conv1:b", 100, 200),
      span(0, 2, "h2d", "prefetch", 50, 40),
      span(0, 0, "stall", "recv_act", 300, 25, "pipeline_recv"),
  });
  auto rep = obs::diff_traces(parse(t), parse(t));
  EXPECT_EQ(rep.matched, 4u);
  EXPECT_EQ(rep.base_only, 0u);
  EXPECT_EQ(rep.cand_only, 0u);
  EXPECT_EQ(rep.delta(), 0.0);
  for (const auto& b : rep.buckets) EXPECT_EQ(b.delta(), 0.0) << b.bucket;
  EXPECT_TRUE(rep.top_movers.empty());
}

TEST(TraceDiff, AttributesInjectedSlowdownToItsBucket) {
  // Candidate = baseline with exactly one injected change: conv1:f runs
  // 50us longer. The compute bucket must absorb precisely that delta and
  // every other bucket must stay at zero.
  const std::string base = trace({
      span(0, 0, "compute", "conv1:f", 0, 100),
      span(0, 0, "compute", "conv1:b", 100, 200),
      span(0, 2, "h2d", "prefetch", 50, 40),
      span(1, 0, "stall", "recv_act", 300, 25, "pipeline_recv"),
  });
  const std::string cand = trace({
      span(0, 0, "compute", "conv1:f", 0, 150),  // +50us injected
      span(0, 0, "compute", "conv1:b", 150, 200),
      span(0, 2, "h2d", "prefetch", 50, 40),
      span(1, 0, "stall", "recv_act", 350, 25, "pipeline_recv"),
  });
  auto rep = obs::diff_traces(parse(base), parse(cand));
  EXPECT_EQ(rep.matched, 4u);
  EXPECT_NEAR(rep.delta(), 50e-6, 1e-12);
  EXPECT_NEAR(bucket(rep, "compute").delta(), 50e-6, 1e-12);
  EXPECT_EQ(bucket(rep, "h2d").delta(), 0.0);
  EXPECT_EQ(bucket(rep, "stall:pipeline_recv").delta(), 0.0);
  EXPECT_EQ(bucket(rep, "collective").delta(), 0.0);
  // Timestamps shifted for conv1:b and the stall, but durations did not:
  // alignment is by identity, not by ts.
  ASSERT_EQ(rep.top_movers.size(), 1u);
  EXPECT_EQ(rep.top_movers[0].name, "conv1:f");
  EXPECT_EQ(rep.top_movers[0].bucket, "compute");
  EXPECT_EQ(rep.top_movers[0].device, 0);
  EXPECT_NEAR(rep.top_movers[0].delta(), 50e-6, 1e-12);
  // The rendered artifact names the mover too.
  EXPECT_NE(rep.render_table().find("conv1:f"), std::string::npos);
}

TEST(TraceDiff, StallBucketsSplitBySource) {
  const std::string base = trace({
      span(0, 0, "stall", "recv_act", 0, 10, "pipeline_recv"),
      span(0, 0, "stall", "prefetch_wait", 20, 10, "transfer"),
      span(0, 0, "stall", "ar_await", 40, 10, "collective"),
      span(0, 0, "stall", "mystery", 60, 10),  // no args: stall:none
  });
  const std::string cand = trace({
      span(0, 0, "stall", "recv_act", 0, 30, "pipeline_recv"),  // +20us
      span(0, 0, "stall", "prefetch_wait", 40, 10, "transfer"),
      span(0, 0, "stall", "ar_await", 60, 10, "collective"),
      span(0, 0, "stall", "mystery", 80, 10),
  });
  auto rep = obs::diff_traces(parse(base), parse(cand));
  EXPECT_NEAR(bucket(rep, "stall:pipeline_recv").delta(), 20e-6, 1e-12);
  EXPECT_EQ(bucket(rep, "stall:transfer").delta(), 0.0);
  EXPECT_EQ(bucket(rep, "stall:collective").delta(), 0.0);
  EXPECT_EQ(bucket(rep, "stall:none").matched, 1u);
  EXPECT_EQ(bucket(rep, "stall:none").delta(), 0.0);
}

TEST(TraceDiff, UnmatchedOccurrencesCountPerSideAndInTheDelta) {
  // Same identity, different occurrence counts: the k-th occurrences pair
  // up in order; the candidate's extra span is cand_only and still lands in
  // the bucket delta (a schedule that runs MORE spans costs real time).
  const std::string base = trace({
      span(0, 0, "compute", "fc:f", 0, 100),
      span(0, 0, "compute", "fc:f", 100, 300),
  });
  const std::string cand = trace({
      span(0, 0, "compute", "fc:f", 0, 100),
      span(0, 0, "compute", "fc:f", 100, 400),  // k=2 pairs with base k=2
      span(0, 0, "compute", "fc:f", 500, 50),   // extra occurrence
      span(0, 1, "d2h", "offload", 0, 70),      // identity absent from base
  });
  auto rep = obs::diff_traces(parse(base), parse(cand));
  EXPECT_EQ(rep.matched, 2u);
  EXPECT_EQ(rep.base_only, 0u);
  EXPECT_EQ(rep.cand_only, 2u);
  const auto& comp = bucket(rep, "compute");
  EXPECT_EQ(comp.matched, 2u);
  EXPECT_EQ(comp.cand_only, 1u);
  EXPECT_NEAR(comp.cand_only_seconds, 50e-6, 1e-12);
  EXPECT_NEAR(comp.delta(), (100 + 50) * 1e-6, 1e-12);  // +100 matched, +50 extra
  const auto& d2h = bucket(rep, "d2h");
  EXPECT_EQ(d2h.matched, 0u);
  EXPECT_EQ(d2h.cand_only, 1u);
  EXPECT_NEAR(d2h.delta(), 70e-6, 1e-12);
  EXPECT_NEAR(rep.delta(), (100 + 50 + 70) * 1e-6, 1e-12);
  // Matched movers only: the per-identity mover reports the paired deltas.
  ASSERT_EQ(rep.top_movers.size(), 1u);
  EXPECT_EQ(rep.top_movers[0].occurrences, 2u);
  EXPECT_NEAR(rep.top_movers[0].delta(), 100e-6, 1e-12);
}

TEST(TraceDiff, IgnoresMetaFlowAndWallRows) {
  const std::string with_noise = trace({
      "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
      "\"args\": {\"name\": \"device 0\"}}",
      span(0, 0, "compute", "conv1:f", 0, 100),
      "{\"name\": \"flow\", \"cat\": \"flow\", \"ph\": \"s\", \"id\": 7, \"pid\": 0, "
      "\"tid\": 0, \"ts\": 10.0}",
      "{\"name\": \"flow\", \"cat\": \"flow\", \"ph\": \"f\", \"id\": 7, \"pid\": 1, "
      "\"tid\": 0, \"ts\": 20.0}",
      span(0, 1, "dma_chunk", "chunk", 0, 999),  // wall-only row: excluded
  });
  const std::string clean = trace({span(0, 0, "compute", "conv1:f", 0, 100)});
  auto rep = obs::diff_traces(parse(with_noise), parse(clean));
  EXPECT_EQ(rep.matched, 1u);
  EXPECT_EQ(rep.base_only, 0u);
  EXPECT_EQ(rep.cand_only, 0u);
  EXPECT_EQ(rep.delta(), 0.0);
}

TEST(TraceDiff, RejectsNonTraceDocuments) {
  EXPECT_THROW(obs::diff_traces(parse("{\"foo\": 1}"), parse("{\"traceEvents\": []}")),
               util::JsonError);
}

TEST(TraceDiff, RealSelfDiffIsCleanAndReportPassesSchemaCheck) {
  // Two identical runs export byte-identical deterministic traces; their
  // diff must be exactly empty — and the report document must satisfy the
  // same schema gate CI runs on the uploaded artifact.
  auto run_once = [](std::string* out) {
    auto factory = [](int batch) { return graph::build_tiny_linear(batch); };
    dist::HybridParallelConfig cfg;
    cfg.stages = 2;
    cfg.replicas = 2;
    cfg.microbatches = 4;
    cfg.global_batch = 8;
    cfg.schedule = dist::SchedulePolicy::k1F1B;
    cfg.cluster = sim::pcie_cluster_spec(4);
    cfg.train.iterations = 2;
    core::RuntimeOptions o = core::make_policy(core::PolicyPreset::kSuperNeurons);
    o.real = true;
    o.device_capacity = 32ull << 20;
    o.allow_workspace = false;
    dist::HybridParallelTrainer hyb(factory, o, cfg);
    obs::TraceSession session;
    hyb.attach_trace(&session);
    hyb.run();
    hyb.attach_trace(nullptr);
    obs::ChromeTraceOptions opts;
    opts.include_wall = false;
    *out = obs::export_chrome_trace(session, opts);
  };
  std::string a, b;
  run_once(&a);
  run_once(&b);
  auto rep = obs::diff_traces(parse(a), parse(b));
  EXPECT_GT(rep.matched, 0u);
  EXPECT_EQ(rep.base_only, 0u);
  EXPECT_EQ(rep.cand_only, 0u);
  EXPECT_EQ(rep.delta(), 0.0);
  EXPECT_TRUE(rep.top_movers.empty());
  // A real trace exercises every taxonomy row the report carries.
  EXPECT_GT(bucket(rep, "compute").matched, 0u);
  EXPECT_GT(bucket(rep, "p2p").matched, 0u);

  util::JsonValue doc = util::JsonValue::parse(rep.to_json(), "<inline>");
  EXPECT_GT(perf::schema_check(doc, "trace_diff_report", "<inline>"), 0u);
}

}  // namespace
