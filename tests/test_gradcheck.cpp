// Finite-difference gradient checks for every backward kernel.
//
// Scheme: loss L(x) = <forward(x), r> for a fixed random r, so dL/dy = r.
// The analytic gradient from the backward kernel must match the central
// difference (L(x+eps) - L(x-eps)) / (2 eps) elementwise.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "nn/activation.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/fc.hpp"
#include "nn/lrn.hpp"
#include "nn/pool.hpp"
#include "nn/softmax.hpp"
#include "util/rng.hpp"

namespace {

using namespace sn::nn;

std::vector<float> random_vec(size_t n, uint64_t seed, float lo = -1.0f, float hi = 1.0f) {
  sn::util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.uniform(lo, hi);
  return v;
}

double dot(const std::vector<float>& a, const std::vector<float>& b) {
  double s = 0;
  for (size_t i = 0; i < a.size(); ++i) s += static_cast<double>(a[i]) * b[i];
  return s;
}

/// Numerically check d<f(x), r>/dx against `analytic` at a sample of indices.
void check_grad(std::vector<float>& x, const std::vector<float>& r,
                const std::function<std::vector<float>()>& forward,
                const std::vector<float>& analytic, float eps = 1e-2f, float tol = 2e-2f) {
  sn::util::Rng rng(4242);
  size_t samples = std::min<size_t>(x.size(), 40);
  for (size_t s = 0; s < samples; ++s) {
    size_t i = rng.next_below(x.size());
    float orig = x[i];
    x[i] = orig + eps;
    double lp = dot(forward(), r);
    x[i] = orig - eps;
    double lm = dot(forward(), r);
    x[i] = orig;
    double num = (lp - lm) / (2.0 * eps);
    ASSERT_NEAR(analytic[i], num, tol * std::max(1.0, std::abs(num))) << "index " << i;
  }
}

TEST(GradCheck, ConvDataAndFilter) {
  ConvDesc d;
  d.n = 2;
  d.c = 3;
  d.h = 6;
  d.w = 6;
  d.k = 4;
  d.kh = d.kw = 3;
  d.stride_h = d.stride_w = 1;
  d.pad_h = d.pad_w = 1;
  auto x = random_vec(d.in_elems(), 1);
  auto w = random_vec(d.weight_elems(), 2);
  auto b = random_vec(d.k, 3);
  auto r = random_vec(d.out_elems(), 4);

  auto fwd = [&] {
    std::vector<float> y(d.out_elems());
    std::vector<float> ws(conv_workspace_bytes(d, ConvAlgo::kIm2colGemm, ConvPass::kForward) /
                          sizeof(float));
    conv_forward(d, ConvAlgo::kIm2colGemm, x.data(), w.data(), b.data(), y.data(), ws.data());
    return y;
  };

  std::vector<float> dx(d.in_elems(), 0.0f), dw(d.weight_elems()), db(d.k);
  std::vector<float> ws(conv_workspace_bytes(d, ConvAlgo::kIm2colGemm, ConvPass::kBackwardData) /
                        sizeof(float));
  conv_backward_data(d, ConvAlgo::kIm2colGemm, w.data(), r.data(), dx.data(), ws.data());
  conv_backward_filter(d, ConvAlgo::kIm2colGemm, x.data(), r.data(), dw.data(), db.data(),
                       ws.data());

  check_grad(x, r, fwd, dx);
  check_grad(w, r, fwd, dw);
  check_grad(b, r, fwd, db);
}

TEST(GradCheck, FcDataAndFilter) {
  FcDesc f{3, 5, 4, true};
  auto x = random_vec(15, 1);
  auto w = random_vec(20, 2);
  auto b = random_vec(4, 3);
  auto r = random_vec(12, 4);
  auto fwd = [&] {
    std::vector<float> y(12);
    fc_forward(f, x.data(), w.data(), b.data(), y.data());
    return y;
  };
  std::vector<float> dx(15, 0.0f), dw(20), db(4);
  fc_backward_data(f, w.data(), r.data(), dx.data());
  fc_backward_filter(f, x.data(), r.data(), dw.data(), db.data());
  check_grad(x, r, fwd, dx);
  check_grad(w, r, fwd, dw);
  check_grad(b, r, fwd, db);
}

TEST(GradCheck, MaxPool) {
  PoolDesc d;
  d.n = 1;
  d.c = 2;
  d.h = 6;
  d.w = 6;
  d.kh = d.kw = 2;
  d.stride_h = d.stride_w = 2;
  // Well-separated values avoid argmax ties under the finite-difference nudge.
  auto x = random_vec(d.in_elems(), 7, -10.0f, 10.0f);
  auto r = random_vec(d.out_elems(), 8);
  auto fwd = [&] {
    std::vector<float> y(d.out_elems());
    std::vector<int32_t> am(d.out_elems());
    pool_forward(d, x.data(), y.data(), am.data());
    return y;
  };
  std::vector<float> y(d.out_elems());
  std::vector<int32_t> am(d.out_elems());
  pool_forward(d, x.data(), y.data(), am.data());
  std::vector<float> dx(d.in_elems(), 0.0f);
  pool_backward(d, r.data(), am.data(), dx.data());
  check_grad(x, r, fwd, dx, 1e-3f);
}

TEST(GradCheck, AvgPool) {
  PoolDesc d;
  d.n = 1;
  d.c = 2;
  d.h = 4;
  d.w = 4;
  d.kh = d.kw = 2;
  d.stride_h = d.stride_w = 2;
  d.max_pool = false;
  auto x = random_vec(d.in_elems(), 7);
  auto r = random_vec(d.out_elems(), 8);
  auto fwd = [&] {
    std::vector<float> y(d.out_elems());
    pool_forward(d, x.data(), y.data(), nullptr);
    return y;
  };
  std::vector<float> dx(d.in_elems(), 0.0f);
  pool_backward(d, r.data(), nullptr, dx.data());
  check_grad(x, r, fwd, dx);
}

TEST(GradCheck, Relu) {
  const uint64_t n = 64;
  // Keep values away from the kink at 0.
  auto x = random_vec(n, 1);
  for (auto& v : x) v = v > 0 ? v + 0.5f : v - 0.5f;
  auto r = random_vec(n, 2);
  auto fwd = [&] {
    std::vector<float> y(n);
    relu_forward(n, x.data(), y.data());
    return y;
  };
  std::vector<float> dx(n, 0.0f);
  relu_backward(n, x.data(), r.data(), dx.data());
  check_grad(x, r, fwd, dx);
}

TEST(GradCheck, Sigmoid) {
  const uint64_t n = 64;
  auto x = random_vec(n, 21, -3.0f, 3.0f);
  auto r = random_vec(n, 22);
  auto fwd = [&] {
    std::vector<float> y(n);
    sigmoid_forward(n, x.data(), y.data());
    return y;
  };
  auto y = fwd();
  std::vector<float> dx(n, 0.0f);
  sigmoid_backward(n, y.data(), r.data(), dx.data());
  check_grad(x, r, fwd, dx, 1e-3f);
}

TEST(GradCheck, Tanh) {
  const uint64_t n = 64;
  auto x = random_vec(n, 23, -2.0f, 2.0f);
  auto r = random_vec(n, 24);
  auto fwd = [&] {
    std::vector<float> y(n);
    tanh_forward(n, x.data(), y.data());
    return y;
  };
  auto y = fwd();
  std::vector<float> dx(n, 0.0f);
  tanh_backward(n, y.data(), r.data(), dx.data());
  check_grad(x, r, fwd, dx, 1e-3f);
}

TEST(GradCheck, Lrn) {
  LrnDesc d;
  d.n = 1;
  d.c = 6;
  d.h = 3;
  d.w = 3;
  d.size = 3;
  d.alpha = 0.2f;
  d.beta = 0.75f;
  d.k = 2.0f;
  auto x = random_vec(d.elems(), 3);
  auto r = random_vec(d.elems(), 4);
  auto fwd = [&] {
    std::vector<float> y(d.elems()), s(d.elems());
    lrn_forward(d, x.data(), y.data(), s.data());
    return y;
  };
  std::vector<float> y(d.elems()), s(d.elems());
  lrn_forward(d, x.data(), y.data(), s.data());
  std::vector<float> dx(d.elems(), 0.0f);
  lrn_backward(d, x.data(), y.data(), s.data(), r.data(), dx.data());
  check_grad(x, r, fwd, dx, 1e-3f);
}

TEST(GradCheck, BatchNorm) {
  BnDesc d;
  d.n = 3;
  d.c = 2;
  d.h = 2;
  d.w = 2;
  auto x = random_vec(d.elems(), 5, -2.0f, 2.0f);
  std::vector<float> gamma{1.3f, 0.7f}, beta{0.1f, -0.2f};
  auto r = random_vec(d.elems(), 6);
  auto fwd = [&] {
    std::vector<float> y(d.elems()), m(2), is(2);
    bn_forward(d, x.data(), gamma.data(), beta.data(), y.data(), m.data(), is.data());
    return y;
  };
  std::vector<float> y(d.elems()), m(2), is(2);
  bn_forward(d, x.data(), gamma.data(), beta.data(), y.data(), m.data(), is.data());
  std::vector<float> dx(d.elems(), 0.0f), dg(2), db(2);
  bn_backward(d, x.data(), gamma.data(), m.data(), is.data(), r.data(), dx.data(), dg.data(),
              db.data());
  check_grad(x, r, fwd, dx, 1e-2f, 4e-2f);
}

TEST(GradCheck, SoftmaxNll) {
  const int n = 4, c = 5;
  auto x = random_vec(n * c, 9, -2.0f, 2.0f);
  std::vector<int32_t> labels{0, 3, 2, 4};
  // Loss is scalar; emulate via r = {1} on a 1-element "output".
  auto fwd = [&] {
    std::vector<float> p(n * c);
    softmax_forward(n, c, x.data(), p.data());
    return std::vector<float>{static_cast<float>(nll_loss(n, c, p.data(), labels.data()))};
  };
  std::vector<float> p(n * c);
  softmax_forward(n, c, x.data(), p.data());
  std::vector<float> dx(n * c, 0.0f);
  softmax_nll_backward(n, c, p.data(), labels.data(), dx.data());
  std::vector<float> r{1.0f};
  check_grad(x, r, fwd, dx, 1e-2f, 2e-2f);
}

}  // namespace
