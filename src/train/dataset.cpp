#include "train/dataset.hpp"

namespace sn::train {

SyntheticDataset::SyntheticDataset(tensor::Shape sample_shape, int classes, uint64_t seed)
    : classes_(classes),
      sample_elems_(sample_shape.c * sample_shape.h * sample_shape.w),
      seed_(seed) {
  util::Rng rng(seed);
  prototypes_.resize(static_cast<size_t>(classes));
  for (auto& proto : prototypes_) {
    proto.resize(static_cast<size_t>(sample_elems_));
    for (auto& v : proto) v = rng.uniform(-1.0f, 1.0f);
  }
}

void SyntheticDataset::fill_batch(int batch, uint64_t batch_index, float* data,
                                  int32_t* labels) const {
  util::Rng rng(seed_ ^ (0x9E3779B97F4A7C15ull * (batch_index + 1)));
  for (int i = 0; i < batch; ++i) {
    int32_t label = static_cast<int32_t>(rng.next_below(static_cast<uint64_t>(classes_)));
    labels[i] = label;
    const auto& proto = prototypes_[static_cast<size_t>(label)];
    float* row = data + static_cast<int64_t>(i) * sample_elems_;
    for (int64_t j = 0; j < sample_elems_; ++j) row[j] = proto[j] + 0.3f * rng.normal();
  }
}

}  // namespace sn::train
