// Synthetic classification dataset (see DESIGN.md, Substitutions).
//
// Each class has a fixed random prototype image; samples are the prototype
// plus Gaussian noise. Deterministic given the seed, linearly separable
// enough that a small net's loss visibly decreases within a few dozen
// iterations — which is all the memory-scheduling experiments need from the
// input pipeline.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace sn::train {

class SyntheticDataset {
 public:
  /// `sample_shape` is a single image's (1, C, H, W).
  SyntheticDataset(tensor::Shape sample_shape, int classes, uint64_t seed = 1234);

  /// Fill a batch: `data` holds batch*C*H*W floats, `labels` batch int32s.
  /// Batch contents are a pure function of (seed, batch_index).
  void fill_batch(int batch, uint64_t batch_index, float* data, int32_t* labels) const;

  int classes() const { return classes_; }
  int64_t sample_elems() const { return sample_elems_; }

 private:
  int classes_;
  int64_t sample_elems_;
  uint64_t seed_;
  std::vector<std::vector<float>> prototypes_;
};

}  // namespace sn::train
