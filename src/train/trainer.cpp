#include "train/trainer.hpp"

namespace sn::train {

namespace {
tensor::Shape sample_shape_of(const graph::Net& net) {
  tensor::Shape s = net.input_layer()->out_shape();
  s.n = 1;
  return s;
}

int classes_of(const graph::Net& net) {
  return static_cast<int>(net.loss_layer()->out_shape().c);
}
}  // namespace

Trainer::Trainer(core::Runtime& runtime, TrainConfig config)
    : runtime_(runtime),
      config_(config),
      dataset_(sample_shape_of(runtime.net()), classes_of(runtime.net()), config.data_seed),
      batch_(static_cast<int>(runtime.net().input_layer()->out_shape().n)) {
  batch_data_.resize(static_cast<size_t>(batch_) * dataset_.sample_elems());
  batch_labels_.resize(static_cast<size_t>(batch_));
}

core::IterationStats Trainer::step(const float* data, const int32_t* labels) {
  auto st = runtime_.train_iteration(data, labels);
  runtime_.apply_sgd(config_.lr, config_.momentum, config_.weight_decay);
  return st;
}

TrainReport Trainer::run() {
  TrainReport report;
  for (int it = 0; it < config_.iterations; ++it) {
    dataset_.fill_batch(batch_, static_cast<uint64_t>(it), batch_data_.data(),
                        batch_labels_.data());
    auto st = step(batch_data_.data(), batch_labels_.data());
    report.losses.push_back(st.loss);
    report.stats.push_back(st);
  }
  return report;
}

}  // namespace sn::train
