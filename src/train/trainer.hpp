// Trainer: the thin user-facing loop over Runtime + SyntheticDataset.
//
// This is the public API a downstream user touches first (see
// examples/quickstart.cpp): build a Net, pick a policy, train.
#pragma once

#include <vector>

#include "core/runtime.hpp"
#include "train/dataset.hpp"

namespace sn::train {

struct TrainConfig {
  int iterations = 20;
  float lr = 0.05f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
  uint64_t data_seed = 1234;
};

struct TrainReport {
  std::vector<double> losses;            ///< per-iteration loss
  std::vector<core::IterationStats> stats;
  double first_loss() const { return losses.empty() ? 0.0 : losses.front(); }
  double last_loss() const { return losses.empty() ? 0.0 : losses.back(); }
};

class Trainer {
 public:
  /// `runtime` must wrap a finalized net; the trainer derives batch geometry
  /// from the net's data layer.
  Trainer(core::Runtime& runtime, TrainConfig config);

  /// Run `config.iterations` forward/backward/SGD rounds on synthetic data.
  TrainReport run();

  /// Run a single iteration with caller-supplied data (advanced use).
  core::IterationStats step(const float* data, const int32_t* labels);

 private:
  core::Runtime& runtime_;
  TrainConfig config_;
  SyntheticDataset dataset_;
  std::vector<float> batch_data_;
  std::vector<int32_t> batch_labels_;
  int batch_;
};

}  // namespace sn::train
