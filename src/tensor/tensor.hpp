// Tensors: the runtime's fundamental scheduling unit (paper §3.1).
//
// A tensor is a 4-D NCHW fp32 array plus the placement state the Unified
// Tensor Pool manages: a GPU address (allocator handle, the paper's `T.GA`),
// a CPU address (host-pool handle, `T.CA`), a lock bit (layers lock their
// dependencies during computation, Alg. 2), and a dropped flag (cost-aware
// recomputation frees cheap tensors entirely and reconstructs them later).
//
// The Tensor itself carries no behaviour: placement transitions are the
// runtime's job, numerical content lives in allocator-backed storage.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace sn::tensor {

/// NCHW shape. FC activations use (N, D, 1, 1).
struct Shape {
  int64_t n = 1, c = 1, h = 1, w = 1;

  int64_t elems() const { return n * c * h * w; }
  uint64_t bytes() const { return static_cast<uint64_t>(elems()) * sizeof(float); }
  bool operator==(const Shape&) const = default;
  std::string to_string() const;
};

/// What role a tensor plays; the scheduler treats roles differently
/// (parameters are never offloaded — they are small, §3.3.1; data tensors of
/// checkpoint layers are the offload targets; etc.).
enum class TensorKind {
  kData,       ///< a layer's forward output
  kGrad,       ///< gradient w.r.t. a layer's output
  kParam,      ///< weights / biases
  kParamGrad,  ///< gradient w.r.t. weights
  kAux,        ///< per-layer auxiliary state (pool argmax, BN stats, dropout mask)
  kWorkspace,  ///< convolution scratch space
};

const char* kind_name(TensorKind k);

/// Where the authoritative copy of a tensor's contents currently lives.
enum class Residency {
  kNone,     ///< never materialized (or freed without preservation)
  kDevice,   ///< on GPU
  kHost,     ///< offloaded to host pool
  kBoth,     ///< valid on GPU and host (clean cache entry)
  kDropped,  ///< freed; reconstructible only by recomputation
  kPeer,     ///< staged in a peer device's pool (core::PeerStagingGroup)
};

class Tensor {
 public:
  Tensor(uint64_t uid, std::string name, Shape shape, TensorKind kind)
      : uid_(uid), name_(std::move(name)), shape_(shape), kind_(kind) {}

  uint64_t uid() const { return uid_; }
  const std::string& name() const { return name_; }
  const Shape& shape() const { return shape_; }
  TensorKind kind() const { return kind_; }
  uint64_t bytes() const { return shape_.bytes(); }

  // --- placement state (written only by the runtime's memory managers) ---

  /// GPU allocation handle (the paper's T.GA); nullopt when not resident.
  std::optional<uint64_t> gpu_handle;

  /// Host pool handle (the paper's T.CA); 0 when no host copy exists.
  uint64_t host_handle = 0;

  /// Locked tensors are in use by the executing layer and must not be
  /// evicted or freed (Alg. 2: "a layer will lock its dependent tensors").
  /// A count rather than a flag: recomputation replays layers while the
  /// triggering layer's own dependencies are still locked, so locks nest.
  int lock_count = 0;

  bool locked() const { return lock_count > 0; }
  void lock() { ++lock_count; }
  void unlock() {
    if (lock_count > 0) --lock_count;
  }

  Residency residency = Residency::kNone;

  /// Peer staging (kPeer only): cluster device whose pool holds the staged
  /// copy, and the allocation handle inside that pool's device allocator.
  int peer_device = -1;
  uint64_t peer_handle = 0;

  /// Forward step that (re)defines this tensor; recomputation replays from
  /// the owning segment's checkpoint to reconstruct it.
  int producer_step = -1;

  /// kPeer is deliberately neither on_device nor on_host: the copy is usable
  /// only after a fetch-back, and eviction must never victimize it.
  bool on_device() const {
    return residency == Residency::kDevice || residency == Residency::kBoth;
  }
  bool on_host() const {
    return residency == Residency::kHost || residency == Residency::kBoth;
  }

 private:
  uint64_t uid_;
  std::string name_;
  Shape shape_;
  TensorKind kind_;
};

/// Owns every tensor in a network; uids are dense and stable so per-step
/// dependency tables can index by uid.
class TensorRegistry {
 public:
  Tensor* create(std::string name, Shape shape, TensorKind kind);
  Tensor* get(uint64_t uid);
  const Tensor* get(uint64_t uid) const;
  size_t size() const { return tensors_.size(); }

  /// Iterate over all tensors (ordered by uid).
  const std::vector<std::unique_ptr<Tensor>>& all() const { return tensors_; }

 private:
  std::vector<std::unique_ptr<Tensor>> tensors_;
};

}  // namespace sn::tensor
