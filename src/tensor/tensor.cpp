#include "tensor/tensor.hpp"

#include <sstream>

namespace sn::tensor {

std::string Shape::to_string() const {
  std::ostringstream os;
  os << "(" << n << "," << c << "," << h << "," << w << ")";
  return os.str();
}

const char* kind_name(TensorKind k) {
  switch (k) {
    case TensorKind::kData: return "data";
    case TensorKind::kGrad: return "grad";
    case TensorKind::kParam: return "param";
    case TensorKind::kParamGrad: return "param_grad";
    case TensorKind::kAux: return "aux";
    case TensorKind::kWorkspace: return "workspace";
  }
  return "?";
}

Tensor* TensorRegistry::create(std::string name, Shape shape, TensorKind kind) {
  uint64_t uid = tensors_.size();
  tensors_.push_back(std::make_unique<Tensor>(uid, std::move(name), shape, kind));
  return tensors_.back().get();
}

Tensor* TensorRegistry::get(uint64_t uid) {
  return uid < tensors_.size() ? tensors_[uid].get() : nullptr;
}

const Tensor* TensorRegistry::get(uint64_t uid) const {
  return uid < tensors_.size() ? tensors_[uid].get() : nullptr;
}

}  // namespace sn::tensor
