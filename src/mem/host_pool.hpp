// Pinned host-memory pool: the offload target of the Unified Tensor Pool.
//
// The paper pre-allocates pinned CPU DRAM so that offload/prefetch transfers
// run at full PCIe speed (TensorFlow's pageable transfers lose >= 50%,
// paper §2.2). We model the pool as capacity accounting plus, in backed mode,
// per-allocation real buffers that hold offloaded tensor contents for the
// real execution engine. The async TransferEngine additionally carves its
// double-buffered staging area out of this pool, so staging bytes count
// against the same pinned budget.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace sn::mem {

struct HostPoolStats {
  uint64_t capacity = 0;
  uint64_t in_use = 0;
  uint64_t peak_in_use = 0;
  uint64_t alloc_calls = 0;
  uint64_t free_calls = 0;
  uint64_t failed_allocs = 0;  ///< over-capacity requests (returned handle 0)
  uint64_t bad_frees = 0;      ///< deallocate() of an unknown handle
};

class HostPool {
 public:
  /// `pinned` determines the transfer speed tensors offloaded here get.
  explicit HostPool(uint64_t capacity, bool pinned = true, bool backed = false)
      : capacity_(capacity), pinned_(pinned), backed_(backed) {}

  /// Reserve `bytes`; returns a handle (0 is never returned) or 0 on OOM.
  uint64_t allocate(uint64_t bytes);

  /// Release a handle. Unknown handles are a programming error: they abort
  /// in debug builds and are counted in stats().bad_frees in release builds
  /// (mirroring MemoryPool::deallocate).
  void deallocate(uint64_t handle);

  /// Buffer for a backed allocation (nullptr otherwise).
  void* ptr(uint64_t handle);

  bool pinned() const { return pinned_; }
  uint64_t capacity() const { return capacity_; }
  uint64_t in_use() const { return in_use_; }
  uint64_t peak_in_use() const { return peak_in_use_; }
  uint64_t free_bytes() const { return capacity_ - in_use_; }

  HostPoolStats stats() const;

 private:
  uint64_t capacity_;
  bool pinned_;
  bool backed_;
  uint64_t in_use_ = 0;
  uint64_t peak_in_use_ = 0;
  uint64_t next_id_ = 1;
  uint64_t alloc_calls_ = 0;
  uint64_t free_calls_ = 0;
  uint64_t failed_allocs_ = 0;
  uint64_t bad_frees_ = 0;
  std::unordered_map<uint64_t, uint64_t> sizes_;
  std::unordered_map<uint64_t, std::vector<std::byte>> buffers_;
};

}  // namespace sn::mem
