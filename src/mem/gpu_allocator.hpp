// Device-memory allocator interface with two implementations:
//
//   * NativeAllocator — models cudaMalloc/cudaFree: every call synchronizes
//     the device and costs latency on the simulated Machine's compute stream.
//   * PoolAllocator — wraps the pre-allocated MemoryPool; alloc/free are
//     near-free (sub-microsecond bookkeeping), which is the paper's §3.2.1
//     optimization and the subject of Table 2.
//
// Both enforce the device capacity: allocation fails (nullopt) rather than
// overcommitting, so callers (UTP / Tensor Cache) must evict or recompute.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mem/mem_pool.hpp"
#include "sim/machine.hpp"

namespace sn::mem {

class GpuAllocator {
 public:
  virtual ~GpuAllocator() = default;

  /// Allocate `bytes`; returns an opaque handle or nullopt on OOM.
  virtual std::optional<uint64_t> allocate(uint64_t bytes) = 0;
  virtual void deallocate(uint64_t handle) = 0;

  virtual uint64_t capacity() const = 0;
  virtual uint64_t in_use() const = 0;
  virtual uint64_t peak_in_use() const = 0;
  /// Largest satisfiable single allocation (capacity-fragmentation aware).
  virtual uint64_t largest_free() const = 0;

  uint64_t free_bytes() const { return capacity() - in_use(); }

  /// Backing pointer for real execution; nullptr when running unbacked.
  virtual void* ptr(uint64_t handle) = 0;
};

/// cudaMalloc/cudaFree model: first-fit over the raw device address space with
/// per-call device-synchronizing latency charged to the Machine.
class NativeAllocator final : public GpuAllocator {
 public:
  NativeAllocator(sim::Machine& machine, uint64_t capacity, bool backed = false);

  std::optional<uint64_t> allocate(uint64_t bytes) override;
  void deallocate(uint64_t handle) override;

  uint64_t capacity() const override { return pool_.capacity(); }
  uint64_t in_use() const override { return pool_.in_use(); }
  uint64_t peak_in_use() const override { return pool_.stats().peak_in_use; }
  uint64_t largest_free() const override { return pool_.largest_free(); }
  void* ptr(uint64_t handle) override;

 private:
  sim::Machine& machine_;
  MemoryPool pool_;  ///< reused purely as an address-space manager
  std::unordered_map<uint64_t, PoolAllocation> live_;
};

/// The paper's pre-allocated heap: constant small bookkeeping cost per op.
class PoolAllocator final : public GpuAllocator {
 public:
  PoolAllocator(sim::Machine& machine, uint64_t capacity,
                uint64_t block_bytes = MemoryPool::kDefaultBlockBytes, bool backed = false);

  std::optional<uint64_t> allocate(uint64_t bytes) override;
  void deallocate(uint64_t handle) override;

  uint64_t capacity() const override { return pool_.capacity(); }
  uint64_t in_use() const override { return pool_.in_use(); }
  uint64_t peak_in_use() const override { return pool_.stats().peak_in_use; }
  uint64_t largest_free() const override { return pool_.largest_free(); }
  void* ptr(uint64_t handle) override;

  const MemoryPool& pool() const { return pool_; }

  /// Bookkeeping cost per pool op charged to the compute stream.
  static constexpr double kPoolOpSeconds = 0.5e-6;

 private:
  sim::Machine& machine_;
  MemoryPool pool_;
  std::unordered_map<uint64_t, PoolAllocation> live_;
};

}  // namespace sn::mem
