#include "mem/gpu_allocator.hpp"

namespace sn::mem {

NativeAllocator::NativeAllocator(sim::Machine& machine, uint64_t capacity, bool backed)
    : machine_(machine), pool_(capacity, /*block_bytes=*/256, backed) {}

std::optional<uint64_t> NativeAllocator::allocate(uint64_t bytes) {
  machine_.native_malloc(bytes);
  auto a = pool_.allocate(bytes);
  if (!a) return std::nullopt;
  uint64_t handle = a->id;
  live_.emplace(handle, *a);
  return handle;
}

void NativeAllocator::deallocate(uint64_t handle) {
  machine_.native_free();
  auto it = live_.find(handle);
  if (it == live_.end()) return;
  pool_.deallocate(it->second.id);
  live_.erase(it);
}

void* NativeAllocator::ptr(uint64_t handle) {
  auto it = live_.find(handle);
  return it == live_.end() ? nullptr : pool_.ptr(it->second.offset);
}

PoolAllocator::PoolAllocator(sim::Machine& machine, uint64_t capacity, uint64_t block_bytes,
                             bool backed)
    : machine_(machine), pool_(capacity, block_bytes, backed) {}

std::optional<uint64_t> PoolAllocator::allocate(uint64_t bytes) {
  machine_.run_compute(kPoolOpSeconds);
  auto a = pool_.allocate(bytes);
  if (!a) return std::nullopt;
  uint64_t handle = a->id;
  live_.emplace(handle, *a);
  return handle;
}

void PoolAllocator::deallocate(uint64_t handle) {
  machine_.run_compute(kPoolOpSeconds);
  auto it = live_.find(handle);
  if (it == live_.end()) return;
  pool_.deallocate(it->second.id);
  live_.erase(it);
}

void* PoolAllocator::ptr(uint64_t handle) {
  auto it = live_.find(handle);
  return it == live_.end() ? nullptr : pool_.ptr(it->second.offset);
}

}  // namespace sn::mem
