#include "mem/host_pool.hpp"

namespace sn::mem {

uint64_t HostPool::allocate(uint64_t bytes) {
  if (in_use_ + bytes > capacity_) return 0;
  uint64_t id = next_id_++;
  sizes_.emplace(id, bytes);
  in_use_ += bytes;
  if (in_use_ > peak_in_use_) peak_in_use_ = in_use_;
  if (backed_) buffers_[id].resize(bytes);
  return id;
}

void HostPool::deallocate(uint64_t handle) {
  auto it = sizes_.find(handle);
  if (it == sizes_.end()) return;
  in_use_ -= it->second;
  sizes_.erase(it);
  buffers_.erase(handle);
}

void* HostPool::ptr(uint64_t handle) {
  auto it = buffers_.find(handle);
  return it == buffers_.end() ? nullptr : it->second.data();
}

}  // namespace sn::mem
