#include "mem/host_pool.hpp"

#include <cassert>

#include "util/logging.hpp"

namespace sn::mem {

uint64_t HostPool::allocate(uint64_t bytes) {
  ++alloc_calls_;
  if (in_use_ + bytes > capacity_) {
    ++failed_allocs_;
    return 0;
  }
  uint64_t id = next_id_++;
  sizes_.emplace(id, bytes);
  in_use_ += bytes;
  if (in_use_ > peak_in_use_) peak_in_use_ = in_use_;
  if (backed_) buffers_[id].resize(bytes);
  return id;
}

void HostPool::deallocate(uint64_t handle) {
  ++free_calls_;
  auto it = sizes_.find(handle);
  if (it == sizes_.end()) {
    SN_ERROR << "HostPool::deallocate: unknown handle " << handle;
    ++bad_frees_;
    assert(false && "double free or bad handle");
    return;
  }
  in_use_ -= it->second;
  sizes_.erase(it);
  buffers_.erase(handle);
}

void* HostPool::ptr(uint64_t handle) {
  auto it = buffers_.find(handle);
  return it == buffers_.end() ? nullptr : it->second.data();
}

HostPoolStats HostPool::stats() const {
  HostPoolStats s;
  s.capacity = capacity_;
  s.in_use = in_use_;
  s.peak_in_use = peak_in_use_;
  s.alloc_calls = alloc_calls_;
  s.free_calls = free_calls_;
  s.failed_allocs = failed_allocs_;
  s.bad_frees = bad_frees_;
  return s;
}

}  // namespace sn::mem
