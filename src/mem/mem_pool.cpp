#include "mem/mem_pool.hpp"

#include <cassert>

#include "util/logging.hpp"

namespace sn::mem {

MemoryPool::MemoryPool(uint64_t capacity, uint64_t block_bytes, bool backed, FitPolicy fit)
    : capacity_(capacity / block_bytes * block_bytes), block_bytes_(block_bytes), fit_(fit) {
  assert(block_bytes_ > 0);
  if (capacity_ > 0) free_by_offset_.emplace(0, capacity_);
  if (backed) slab_.resize(capacity_);
}

std::optional<PoolAllocation> MemoryPool::allocate(uint64_t bytes) {
  ++alloc_calls_;
  uint64_t need = round_up(bytes == 0 ? 1 : bytes);
  auto chosen = free_by_offset_.end();
  if (fit_ == FitPolicy::kFirstFit) {
    // First fit: lowest-offset free node large enough (paper §3.2.1).
    for (auto it = free_by_offset_.begin(); it != free_by_offset_.end(); ++it) {
      if (it->second >= need) {
        chosen = it;
        break;
      }
    }
  } else {
    // Best fit: the smallest node that still fits (ties -> lowest offset).
    for (auto it = free_by_offset_.begin(); it != free_by_offset_.end(); ++it) {
      if (it->second < need) continue;
      if (chosen == free_by_offset_.end() || it->second < chosen->second) chosen = it;
      if (it->second == need) break;  // exact fit: cannot do better
    }
  }
  if (chosen == free_by_offset_.end()) {
    ++failed_allocs_;
    return std::nullopt;
  }
  uint64_t offset = chosen->first;
  uint64_t remaining = chosen->second - need;
  free_by_offset_.erase(chosen);
  if (remaining > 0) free_by_offset_.emplace(offset + need, remaining);
  uint64_t id = next_id_++;
  allocated_.emplace(id, std::make_pair(offset, need));
  in_use_ += need;
  if (in_use_ > peak_in_use_) peak_in_use_ = in_use_;
  return PoolAllocation{id, offset, need};
}

void MemoryPool::deallocate(uint64_t id) {
  ++free_calls_;
  auto it = allocated_.find(id);
  if (it == allocated_.end()) {
    SN_ERROR << "MemoryPool::deallocate: unknown id " << id;
    ++bad_frees_;
    assert(false && "double free or bad id");
    return;
  }
  auto [offset, bytes] = it->second;
  allocated_.erase(it);
  in_use_ -= bytes;

  // Insert and coalesce with the previous / next free nodes when adjacent.
  auto [pos, inserted] = free_by_offset_.emplace(offset, bytes);
  assert(inserted);
  if (pos != free_by_offset_.begin()) {
    auto prev = std::prev(pos);
    if (prev->first + prev->second == pos->first) {
      prev->second += pos->second;
      free_by_offset_.erase(pos);
      pos = prev;
    }
  }
  auto next = std::next(pos);
  if (next != free_by_offset_.end() && pos->first + pos->second == next->first) {
    pos->second += next->second;
    free_by_offset_.erase(next);
  }
}

uint64_t MemoryPool::largest_free() const {
  uint64_t best = 0;
  for (const auto& [off, sz] : free_by_offset_)
    if (sz > best) best = sz;
  return best;
}

PoolStats MemoryPool::stats() const {
  PoolStats s;
  s.capacity = capacity_;
  s.in_use = in_use_;
  s.peak_in_use = peak_in_use_;
  s.alloc_calls = alloc_calls_;
  s.free_calls = free_calls_;
  s.failed_allocs = failed_allocs_;
  s.bad_frees = bad_frees_;
  s.largest_free = largest_free();
  s.free_nodes = free_by_offset_.size();
  s.allocated_nodes = allocated_.size();
  return s;
}

void* MemoryPool::ptr(uint64_t offset) {
  if (slab_.empty()) return nullptr;
  return slab_.data() + offset;
}

const void* MemoryPool::ptr(uint64_t offset) const {
  if (slab_.empty()) return nullptr;
  return slab_.data() + offset;
}

bool MemoryPool::validate() const {
  // Collect all nodes (free + allocated), sort by offset, check exact tiling.
  std::map<uint64_t, std::pair<uint64_t, bool>> nodes;  // offset -> (size, is_free)
  for (const auto& [off, sz] : free_by_offset_) {
    if (!nodes.emplace(off, std::make_pair(sz, true)).second) return false;
  }
  uint64_t allocated_total = 0;
  for (const auto& [id, node] : allocated_) {
    (void)id;
    if (!nodes.emplace(node.first, std::make_pair(node.second, false)).second) return false;
    allocated_total += node.second;
  }
  if (allocated_total != in_use_) return false;
  uint64_t cursor = 0;
  bool prev_free = false;
  for (const auto& [off, node] : nodes) {
    if (off != cursor) return false;                  // gap or overlap
    if (node.first % block_bytes_ != 0) return false; // unaligned node
    if (node.second && prev_free) return false;       // un-coalesced neighbours
    prev_free = node.second;
    cursor += node.first;
  }
  return cursor == capacity_;
}

}  // namespace sn::mem
