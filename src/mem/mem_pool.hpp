// Heap-based GPU memory pool (paper §3.2.1).
//
// The pool pre-allocates one big chunk of device memory, divides it into
// fixed-size blocks (1 KB in the paper), and services allocations from an
// ordered free list with first-fit, tracking live allocations in an
// ID -> node hash. This removes the cudaMalloc/cudaFree latency from the
// high-frequency tensor churn that Liveness Analysis creates (the paper
// measures ResNet50 losing 36.28% of step time to native allocation).
//
// Beyond the paper's description we coalesce adjacent free nodes on
// deallocation; without coalescing, the alternating alloc/free pattern of
// back-propagation fragments the chunk within one iteration.
//
// The pool can optionally be *backed* by real host memory, in which case
// `ptr()` yields a usable buffer for the real execution engine; unbacked
// pools manage pure address space (used when simulating 12 GB devices on
// small machines).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

namespace sn::mem {

/// One serviced allocation.
struct PoolAllocation {
  uint64_t id = 0;      ///< handle for deallocate()
  uint64_t offset = 0;  ///< byte offset inside the chunk
  uint64_t bytes = 0;   ///< rounded-up size actually reserved
};

struct PoolStats {
  uint64_t capacity = 0;
  uint64_t in_use = 0;
  uint64_t peak_in_use = 0;
  uint64_t alloc_calls = 0;
  uint64_t free_calls = 0;
  uint64_t failed_allocs = 0;
  uint64_t bad_frees = 0;  ///< deallocate() of an unknown id
  uint64_t largest_free = 0;
  size_t free_nodes = 0;
  size_t allocated_nodes = 0;
};

/// Free-node selection strategy. The paper's pool uses first-fit ("finds the
/// first node with enough free memory"); best-fit is provided for the
/// fragmentation ablation.
enum class FitPolicy { kFirstFit, kBestFit };

class MemoryPool {
 public:
  /// `capacity` is rounded down to a whole number of `block_bytes` blocks.
  /// `backed == true` allocates a real slab so ptr() works.
  MemoryPool(uint64_t capacity, uint64_t block_bytes = kDefaultBlockBytes, bool backed = false,
             FitPolicy fit = FitPolicy::kFirstFit);

  MemoryPool(const MemoryPool&) = delete;
  MemoryPool& operator=(const MemoryPool&) = delete;

  /// First-fit allocation; nullopt when no free node is large enough (the
  /// caller decides whether that is an OOM or a trigger for eviction).
  std::optional<PoolAllocation> allocate(uint64_t bytes);

  /// Return an allocation to the free list (coalescing neighbours).
  /// Unknown ids are a programming error: they abort in debug builds and are
  /// counted in stats().bad_frees in release builds (same contract as
  /// HostPool::deallocate).
  void deallocate(uint64_t id);

  uint64_t capacity() const { return capacity_; }
  uint64_t block_bytes() const { return block_bytes_; }
  uint64_t in_use() const { return in_use_; }
  uint64_t free_bytes() const { return capacity_ - in_use_; }
  uint64_t largest_free() const;

  PoolStats stats() const;

  /// Real pointer for a backed pool; nullptr when unbacked.
  void* ptr(uint64_t offset);
  const void* ptr(uint64_t offset) const;
  bool backed() const { return !slab_.empty(); }

  /// Structural invariant check used by tests: nodes tile the chunk exactly,
  /// no overlap, free map consistent with in_use accounting.
  bool validate() const;

  static constexpr uint64_t kDefaultBlockBytes = 1024;  // paper's 1 KB unit

 private:
  uint64_t round_up(uint64_t bytes) const {
    return (bytes + block_bytes_ - 1) / block_bytes_ * block_bytes_;
  }

  uint64_t capacity_;
  uint64_t block_bytes_;
  FitPolicy fit_;
  uint64_t in_use_ = 0;
  uint64_t peak_in_use_ = 0;
  uint64_t next_id_ = 1;
  uint64_t alloc_calls_ = 0;
  uint64_t free_calls_ = 0;
  uint64_t failed_allocs_ = 0;
  uint64_t bad_frees_ = 0;

  /// Free nodes keyed by offset (ordered => first-fit scan + O(log n)
  /// neighbour lookup for coalescing). Value = node size in bytes.
  std::map<uint64_t, uint64_t> free_by_offset_;

  /// Live allocations: id -> (offset, bytes).
  std::unordered_map<uint64_t, std::pair<uint64_t, uint64_t>> allocated_;

  std::vector<std::byte> slab_;
};

}  // namespace sn::mem
