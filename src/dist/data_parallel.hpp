// dist::DataParallelTrainer — synchronous data-parallel training over a
// simulated multi-device cluster.
//
// One replica Runtime per cluster device runs the paper's full single-GPU
// schedule (liveness, unified tensor pool, tensor cache, recompute, dynamic
// workspaces) on its shard of the global batch; gradients are summed with the
// Communicator's ring all-reduce before every SGD step, so replicas stay
// bitwise in lockstep.
//
// Loss gradients are scaled by the GLOBAL batch (RuntimeOptions::loss_batch)
// and every batch reduction in the kernels is a pairwise tree
// (util/pairwise.hpp), so each replica's gradient is exactly one subtree of
// the full-batch reduction. The Communicator's kAuto all-reduce combines
// those subtrees with the recursive halving-doubling algorithm for
// power-of-two device counts — the same pairwise tree, so ANY power-of-two
// replica count produces bit-identical per-iteration losses and weights to
// a single-device run over the combined batch (non-power-of-two counts fall
// back to the ring: deterministic, replicas bitwise lockstep, final-ulp
// rounding vs single-device may differ). This is the multi-device extension
// of the paper's "memory scheduling never changes training results"
// invariant, and holds for nets whose kernels are per-sample (no BatchNorm
// batch statistics, no dropout — both couple results to the position of a
// sample inside the local batch).
//
// The trainer is the trivial one-group case of the sub-group Communicator:
// its collective group is the whole cluster. dist::HybridParallelTrainer
// builds one group per pipeline stage instead.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/runtime.hpp"
#include "dist/communicator.hpp"
#include "train/dataset.hpp"
#include "train/trainer.hpp"

namespace sn::dist {

struct DataParallelConfig {
  int devices = 2;
  int global_batch = 8;        ///< must divide evenly across devices
  sim::ClusterSpec cluster;    ///< device + link preset; .devices is overridden
  train::TrainConfig train;    ///< iterations / lr / momentum / seed
};

struct DataParallelReport {
  std::vector<double> losses;               ///< combined global-batch loss
  std::vector<core::IterationStats> stats;  ///< cluster-aggregate per iteration
  std::vector<std::vector<core::IterationStats>> device_stats;  ///< [iter][device]

  double first_loss() const { return losses.empty() ? 0.0 : losses.front(); }
  double last_loss() const { return losses.empty() ? 0.0 : losses.back(); }
};

class DataParallelTrainer {
 public:
  /// Builds one replica net per device at the shard batch size.
  using NetFactory = std::function<std::unique_ptr<graph::Net>(int batch)>;

  /// `base` supplies the runtime policy for every replica; its spec / cluster
  /// / device_id / loss_batch fields are overwritten per device.
  DataParallelTrainer(const NetFactory& factory, core::RuntimeOptions base,
                      DataParallelConfig cfg);

  /// Run `cfg.train.iterations` sharded forward/backward + all-reduce + SGD
  /// rounds on synthetic data.
  DataParallelReport run();

  int devices() const { return cfg_.devices; }
  int shard_batch() const { return shard_; }
  uint64_t grad_elems() const { return grad_elems_; }
  core::Runtime& runtime(int device) { return *runtimes_[static_cast<size_t>(device)]; }
  sim::Cluster& cluster() { return cluster_; }
  Communicator& communicator() { return *comm_; }

 private:
  void gather_grads();
  void scatter_grads();

  DataParallelConfig cfg_;
  bool real_;
  int shard_;
  sim::Cluster cluster_;
  std::vector<std::unique_ptr<graph::Net>> nets_;
  std::vector<std::unique_ptr<core::Runtime>> runtimes_;
  std::unique_ptr<Communicator> comm_;
  train::SyntheticDataset dataset_;
  std::vector<float> batch_data_;
  std::vector<int32_t> batch_labels_;
  /// Per-device param-grad tensors in net order (identical across replicas)
  /// and the fused flat buffers the all-reduce runs over (real mode).
  std::vector<std::vector<tensor::Tensor*>> grads_;
  std::vector<std::vector<float>> fused_;
  uint64_t grad_elems_ = 0;
};

}  // namespace sn::dist
