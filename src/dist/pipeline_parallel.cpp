#include "dist/pipeline_parallel.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "dist/trainer_common.hpp"
#include "util/pairwise.hpp"

namespace sn::dist {

using detail::accumulate;
using detail::classes_of;
using detail::layer_by_name;
using detail::sample_shape_of;

PipelineParallelTrainer::PipelineParallelTrainer(const NetFactory& factory,
                                                 core::RuntimeOptions base,
                                                 PipelineParallelConfig cfg)
    : cfg_([&] {
        if (cfg.stages < 1) throw std::invalid_argument("pipeline: stages >= 1");
        if (cfg.microbatches < 1) throw std::invalid_argument("pipeline: microbatches >= 1");
        if (cfg.global_batch <= 0 || cfg.global_batch % cfg.microbatches != 0) {
          throw std::invalid_argument(
              "pipeline: global_batch must divide evenly into microbatches");
        }
        if (!cfg.boundaries.empty() &&
            static_cast<int>(cfg.boundaries.size()) + 1 != cfg.stages) {
          throw std::invalid_argument("pipeline: need stages-1 explicit boundaries");
        }
        cfg.cluster.devices = cfg.stages;
        return cfg;
      }()),
      real_(base.real),
      microbatch_(cfg_.global_batch / cfg_.microbatches),
      full_([&] {
        auto net = factory(microbatch_);
        if (!net->finalized()) net->finalize();
        return net;
      }()),
      plan_([&] {
        // Memory-aware partition: stages must fit the per-device pool even
        // at the full-offload floor. 1F1B never re-materializes the last
        // stage, so its balance discounts that stage's remat forward
        // (StageRecompute::kAllButLast); GPipe keeps the legacy weighting
        // and therefore the legacy cuts.
        // Profile-guided balance: a loaded CostProfile's observed medians
        // replace the roofline per layer (null = analytic, legacy cuts).
        graph::LayerCostFn observed;
        if (const obs::CostProfile* prof = cfg_.cost_profile) {
          observed = [prof](const std::string& name, double* fwd, double* bwd) {
            return prof->layer_seconds(name, fwd, bwd);
          };
        }
        graph::NetPartitioner part(*full_, cfg_.cluster.device, cfg_.cluster.link,
                                   base.device_capacity, std::move(observed));
        const graph::StageRecompute rc = cfg_.schedule == SchedulePolicy::k1F1B
                                             ? graph::StageRecompute::kAllButLast
                                             : graph::StageRecompute::kNone;
        return cfg_.boundaries.empty() ? part.partition(cfg_.stages, rc)
                                       : part.partition_at(cfg_.boundaries);
      }()),
      cluster_(cfg_.cluster),
      dataset_(sample_shape_of(*full_), classes_of(*full_), cfg_.train.data_seed),
      sched_(cfg_.schedule, cfg_.stages, cfg_.microbatches) {
  const int S = cfg_.stages;
  base.spec = cfg_.cluster.device;
  base.cluster = &cluster_;
  base.loss_batch = cfg_.global_batch;
  for (int s = 0; s < S; ++s) {
    stage_nets_.push_back(graph::extract_stage(*full_, plan_, s));
    base.device_id = s;
    base.stage = s;  // S x 1 grid: telemetry groups by stage row
    runtimes_.push_back(std::make_unique<core::Runtime>(*stage_nets_.back(), base));
    runtimes_.back()->initialize();
  }

  // Peer-memory staging: enroll every stage's pool after parameters are
  // placed, so donation headroom reflects the steady-state footprint.
  if (cfg_.peer_staging) {
    for (auto& rt : runtimes_) {
      staging_group_.add_member(rt->tensor_pool(), cfg_.peer_donation_bytes);
    }
  }

  // Boundary tensors per link s -> s+1. The producers/landing sites are
  // pinned: no in-stage layer re-defines a landing site, so liveness and
  // eviction must never reclaim it mid-stream.
  out_t_.assign(static_cast<size_t>(S), nullptr);
  out_grad_t_.assign(static_cast<size_t>(S), nullptr);
  in_t_.assign(static_cast<size_t>(S), nullptr);
  in_grad_t_.assign(static_cast<size_t>(S), nullptr);
  act_q_.assign(static_cast<size_t>(S), {});
  grad_q_.assign(static_cast<size_t>(S), {});
  stash_.resize(static_cast<size_t>(S));
  for (int s = 0; s + 1 < S; ++s) {
    const std::string& pname =
        full_->route()[static_cast<size_t>(plan_.stages[static_cast<size_t>(s)].boundary_layer)]
            ->name();
    graph::Layer* prod = layer_by_name(*stage_nets_[static_cast<size_t>(s)], pname);
    out_t_[static_cast<size_t>(s)] = prod->output();
    out_grad_t_[static_cast<size_t>(s)] = prod->output_grad();
    assert(out_grad_t_[static_cast<size_t>(s)] && "boundary producer must carry a gradient");
    runtimes_[static_cast<size_t>(s)]->pin_external(out_t_[static_cast<size_t>(s)]);
    runtimes_[static_cast<size_t>(s)]->pin_external(out_grad_t_[static_cast<size_t>(s)]);
    runtimes_[static_cast<size_t>(s)]->mark_external_pending(out_grad_t_[static_cast<size_t>(s)]);

    graph::Layer* in = stage_nets_[static_cast<size_t>(s) + 1]->input_layer();
    in_t_[static_cast<size_t>(s) + 1] = in->output();
    in_grad_t_[static_cast<size_t>(s) + 1] = in->output_grad();
    assert(in_grad_t_[static_cast<size_t>(s) + 1] && "stage input must carry a gradient");
    runtimes_[static_cast<size_t>(s) + 1]->pin_external(in_grad_t_[static_cast<size_t>(s) + 1]);
    runtimes_[static_cast<size_t>(s) + 1]->mark_external_pending(in_t_[static_cast<size_t>(s) + 1]);
    if (real_) {
      // The engine's peak is the real footprint: GPipe stashes all M
      // microbatch inputs, 1F1B at most min(M, S-s+1).
      stash_[static_cast<size_t>(s) + 1].assign(
          static_cast<size_t>(sched_.peak_stash_slots(s + 1)),
          std::vector<float>(
              static_cast<size_t>(in_t_[static_cast<size_t>(s) + 1]->shape().elems())));
    }
  }

  // Param-grad tensors in net order; per-stage fused gradient geometry.
  grads_.resize(static_cast<size_t>(S));
  grad_elems_.assign(static_cast<size_t>(S), 0);
  grad_stash_.resize(static_cast<size_t>(S));
  for (int s = 0; s < S; ++s) {
    for (const auto& l : stage_nets_[static_cast<size_t>(s)]->layers()) {
      for (tensor::Tensor* g : l->param_grads()) grads_[static_cast<size_t>(s)].push_back(g);
    }
    for (const tensor::Tensor* g : grads_[static_cast<size_t>(s)]) {
      grad_elems_[static_cast<size_t>(s)] += static_cast<uint64_t>(g->shape().elems());
    }
    if (real_) {
      grad_stash_[static_cast<size_t>(s)].assign(
          static_cast<size_t>(cfg_.microbatches),
          std::vector<float>(static_cast<size_t>(grad_elems_[static_cast<size_t>(s)])));
    }
  }

  if (real_) {
    batch_data_.resize(static_cast<size_t>(cfg_.global_batch) * dataset_.sample_elems());
    batch_labels_.resize(static_cast<size_t>(cfg_.global_batch));
  }
}

void PipelineParallelTrainer::attach_trace(obs::TraceSession* session) {
  for (int s = 0; s < cfg_.stages; ++s) {
    if (session) {
      obs::TraceRecorder& rec = session->recorder_for(s);
      rec.set_ids(s, s, -1);
      cluster_.machine(s).set_trace(&rec);
    } else {
      cluster_.machine(s).set_trace(nullptr);
    }
  }
}

uint64_t PipelineParallelTrainer::stash_bytes(int stage) const {
  if (stage == 0) return 0;
  return static_cast<uint64_t>(sched_.peak_stash_slots(stage)) *
         static_cast<uint64_t>(in_t_[static_cast<size_t>(stage)]->shape().elems()) *
         sizeof(float);
}

void PipelineParallelTrainer::send_activation(int s, int m, int slot) {
  (void)m;
  const uint64_t tag = next_tag_++;
  const float* src = device_ptr(s, out_t_[static_cast<size_t>(s)]);
  float* dst = real_ ? stash_[static_cast<size_t>(s) + 1][static_cast<size_t>(slot)].data()
                     : nullptr;
  // Activation streaming rides the critical path: high priority, like the
  // Communicator's collective hops.
  sim::Event ev =
      engine(s).submit_p2p(tag, src, dst, out_t_[static_cast<size_t>(s)]->bytes(), s + 1,
                           cluster_.machine(s).now(), core::TransferPriority::kHigh,
                           obs::flow_id_p2p(tag, s));
  act_q_[static_cast<size_t>(s) + 1].push_back({ev, tag});
  in_flight_.push_back({s, tag});
}

double PipelineParallelTrainer::receive_activation(int s, int phase, int m) {
  sim::Machine& mach = cluster_.machine(s);
  auto [ev, tag] = act_q_[static_cast<size_t>(s)].front();
  act_q_[static_cast<size_t>(s)].pop_front();
  if (auto* rec = mach.trace()) {
    rec->set_stall_context(obs::StallSource::kPipelineRecv, "recv_act",
                           obs::schedule_phase_name(phase), m, obs::flow_id_p2p(tag, s - 1));
  }
  const double stall0 = mach.counters().stall_time;
  mach.wait_event(ev);  // virtual gate (deterministic)
  const double stalled = mach.counters().stall_time - stall0;
  if (auto* rec = mach.trace()) rec->clear_stall_context();
  // Physical gate: the sender's DMA worker must have let go of the bytes.
  engine(s - 1).await_landing(core::TransferDir::kP2P, tag);
  runtimes_[static_cast<size_t>(s)]->mark_external_landed(in_t_[static_cast<size_t>(s)]);
  return stalled;
}

void PipelineParallelTrainer::send_gradient(int s) {
  const uint64_t tag = next_tag_++;
  const float* src = device_ptr(s, in_grad_t_[static_cast<size_t>(s)]);
  float* dst = device_ptr(s - 1, out_grad_t_[static_cast<size_t>(s) - 1]);
  sim::Event ev =
      engine(s).submit_p2p(tag, src, dst, in_grad_t_[static_cast<size_t>(s)]->bytes(), s - 1,
                           cluster_.machine(s).now(), core::TransferPriority::kHigh,
                           obs::flow_id_p2p(tag, s));
  grad_q_[static_cast<size_t>(s) - 1].push_back({ev, tag});
  in_flight_.push_back({s, tag});
}

double PipelineParallelTrainer::receive_gradient(int s, int phase, int m) {
  sim::Machine& mach = cluster_.machine(s);
  auto [ev, tag] = grad_q_[static_cast<size_t>(s)].front();
  grad_q_[static_cast<size_t>(s)].pop_front();
  if (auto* rec = mach.trace()) {
    rec->set_stall_context(obs::StallSource::kPipelineRecv, "recv_grad",
                           obs::schedule_phase_name(phase), m, obs::flow_id_p2p(tag, s + 1));
  }
  const double stall0 = mach.counters().stall_time;
  mach.wait_event(ev);
  const double stalled = mach.counters().stall_time - stall0;
  if (auto* rec = mach.trace()) rec->clear_stall_context();
  engine(s + 1).await_landing(core::TransferDir::kP2P, tag);
  runtimes_[static_cast<size_t>(s)]->mark_external_landed(out_grad_t_[static_cast<size_t>(s)]);
  return stalled;
}

void PipelineParallelTrainer::retire_streams(bool force) {
  auto it = in_flight_.begin();
  while (it != in_flight_.end()) {
    core::TransferEngine& eng = engine(it->first);
    if (eng.try_retire(core::TransferDir::kP2P, it->second)) {
      it = in_flight_.erase(it);
    } else if (force) {
      // Iteration boundary: the receiver consumed the bytes long ago; only
      // the sender's lagging clock keeps the ticket open. Wait it out.
      eng.wait(core::TransferDir::kP2P, it->second);
      it = in_flight_.erase(it);
    } else {
      ++it;
    }
  }
}

PipelineParallelReport PipelineParallelTrainer::run() {
  PipelineParallelReport report;
  const int S = cfg_.stages, M = cfg_.microbatches;
  const int64_t mb_elems = static_cast<int64_t>(microbatch_) * dataset_.sample_elems();

  for (int it = 0; it < cfg_.train.iterations; ++it) {
    if (real_) {
      dataset_.fill_batch(cfg_.global_batch, static_cast<uint64_t>(it), batch_data_.data(),
                          batch_labels_.data());
    }
    std::vector<double> bubble(static_cast<size_t>(S), 0.0);
    /// bubble split by schedule phase: [stage][fill/steady/drain].
    std::vector<std::array<double, 3>> bubble_ph(static_cast<size_t>(S), {0.0, 0.0, 0.0});
    std::vector<core::IterationStats> stage_st(static_cast<size_t>(S));
    std::vector<sim::MachineCounters> c0(static_cast<size_t>(S));
    std::vector<double> now0(static_cast<size_t>(S));
    for (int s = 0; s < S; ++s) {
      c0[static_cast<size_t>(s)] = cluster_.machine(s).counters();
      now0[static_cast<size_t>(s)] = cluster_.machine(s).now();
    }
    std::vector<double> loss_sums(static_cast<size_t>(M), 0.0);

    auto stage_input = [&](int s, int m) -> const float* {
      if (!real_) return nullptr;
      if (s == 0) return batch_data_.data() + static_cast<int64_t>(m) * mb_elems;
      return stash_[static_cast<size_t>(s)][static_cast<size_t>(sched_.stash_slot(s, m))]
          .data();
    };
    auto stage_labels = [&](int s, int m) -> const int32_t* {
      if (!real_ || s != S - 1) return nullptr;
      return batch_labels_.data() + static_cast<int64_t>(m) * microbatch_;
    };

    // --- replay the engine's op list -----------------------------------------
    // Under kGPipe this walks the exact historical fill/drain nest; under
    // k1F1B the PipeDream-flush interleaving. Cross-stage data dependencies
    // ride the per-link FIFOs either way.
    for (const ScheduleOp& op : sched_.ops()) {
      const int s = op.stage, m = op.microbatch;
      const size_t ph = static_cast<size_t>(op.phase);
      core::Runtime& rt = *runtimes_[static_cast<size_t>(s)];
      rt.set_schedule_phase(static_cast<int>(op.phase), m);
      const double op_v0 = cluster_.machine(s).now();
      // Physical write-after-read gate: a forward overwrites out_t_ and a
      // backward overwrites in_grad_t_ — both may still be feeding an
      // in-flight send's DMA read (1F1B runs stage s's backward while its
      // next activation is still streaming; GPipe never does, so these are
      // no-ops there). The worker queue is FIFO, so landing the NEWEST
      // outstanding tag lands them all. Wall-clock only: virtual time and
      // the schedule are untouched.
      if (s + 1 < S && !act_q_[static_cast<size_t>(s) + 1].empty()) {
        engine(s).await_landing(core::TransferDir::kP2P,
                                act_q_[static_cast<size_t>(s) + 1].back().second);
      }
      if (op.kind == ScheduleOpKind::kBackward && s > 0 &&
          !grad_q_[static_cast<size_t>(s) - 1].empty()) {
        engine(s).await_landing(core::TransferDir::kP2P,
                                grad_q_[static_cast<size_t>(s) - 1].back().second);
      }
      if (op.kind == ScheduleOpKind::kForward) {
        double stalled = 0.0;
        if (s > 0) stalled = receive_activation(s, static_cast<int>(op.phase), m);
        core::IterationStats f = rt.forward_pass(stage_input(s, m), stage_labels(s, m));
        accumulate(stage_st[static_cast<size_t>(s)], f);
        if (s == S - 1) loss_sums[static_cast<size_t>(m)] = f.loss_sum;
        if (s > 0) {
          // Until the next microbatch's activation lands, the stage input's
          // authoritative bytes live upstream.
          rt.mark_external_pending(in_t_[static_cast<size_t>(s)]);
        }
        if (s + 1 < S) send_activation(s, m, sched_.stash_slot(s + 1, m));
        bubble[static_cast<size_t>(s)] += stalled;
        bubble_ph[static_cast<size_t>(s)][ph] += stalled;
      } else {
        double stalled = 0.0;
        if (op.recompute) {
          if (s > 0) {
            // Re-materialization reads the locally stashed input: valid.
            rt.mark_external_landed(in_t_[static_cast<size_t>(s)]);
          }
          core::IterationStats rf = rt.forward_pass(stage_input(s, m), stage_labels(s, m));
          accumulate(stage_st[static_cast<size_t>(s)], rf);
        }
        if (s + 1 < S) stalled = receive_gradient(s, static_cast<int>(op.phase), m);
        core::IterationStats b = rt.backward_pass(stage_labels(s, m));
        accumulate(stage_st[static_cast<size_t>(s)], b);
        if (s + 1 < S) rt.mark_external_pending(out_grad_t_[static_cast<size_t>(s)]);
        if (s > 0) {
          send_gradient(s);
          rt.mark_external_pending(in_t_[static_cast<size_t>(s)]);
        }
        if (real_) {
          // Snapshot this microbatch's gradients; combined pairwise below in
          // ascending microbatch order whatever order backwards retired in.
          auto& snap = grad_stash_[static_cast<size_t>(s)][static_cast<size_t>(m)];
          uint64_t off = 0;
          for (tensor::Tensor* g : grads_[static_cast<size_t>(s)]) {
            std::memcpy(snap.data() + off, device_ptr(s, g), g->bytes());
            off += static_cast<uint64_t>(g->shape().elems());
          }
        }
        bubble[static_cast<size_t>(s)] += stalled;
        bubble_ph[static_cast<size_t>(s)][ph] += stalled;
      }
      if (auto* rec = cluster_.machine(s).trace()) {
        char opname[16];
        std::snprintf(opname, sizeof(opname), "%s%d",
                      op.kind == ScheduleOpKind::kForward ? "F" : "B", m);
        rec->record_schedule_op(opname, op_v0, cluster_.machine(s).now(),
                                obs::schedule_phase_name(static_cast<int>(op.phase)), m);
      }
      retire_streams(false);
    }
    retire_streams(true);
    for (int s = 0; s < S; ++s) {
      if (auto* rec = cluster_.machine(s).trace()) {
        rec->record_marker("drain-end", cluster_.machine(s).now());
      }
    }
    for (int s = 0; s < S; ++s) runtimes_[static_cast<size_t>(s)]->set_schedule_phase(-1, -1);

    // --- per-stage update: pairwise-combine microbatch grads, then SGD -------
    // Microbatch m holds the contiguous samples [m*b, (m+1)*b); combining the
    // M snapshots in ascending order with the binary-counter accumulator
    // reproduces the full-batch per-sample pairwise tree bit for bit when b
    // and M are powers of two (util/pairwise.hpp).
    for (int s = 0; s < S; ++s) {
      if (real_ && grad_elems_[static_cast<size_t>(s)] > 0) {
        util::PairwiseVecAccumulator acc(static_cast<size_t>(grad_elems_[static_cast<size_t>(s)]));
        for (int m = 0; m < M; ++m) {
          // push() consumes the leaf in place; the stash is fully rewritten
          // by next iteration's snapshots, so no defensive copy is needed.
          acc.push(grad_stash_[static_cast<size_t>(s)][static_cast<size_t>(m)].data());
        }
        std::vector<float> combined(static_cast<size_t>(grad_elems_[static_cast<size_t>(s)]));
        acc.finish(combined.data());
        uint64_t off = 0;
        for (tensor::Tensor* g : grads_[static_cast<size_t>(s)]) {
          std::memcpy(device_ptr(s, g), combined.data() + off, g->bytes());
          off += static_cast<uint64_t>(g->shape().elems());
        }
      }
      runtimes_[static_cast<size_t>(s)]->apply_sgd(cfg_.train.lr, cfg_.train.momentum,
                                                   cfg_.train.weight_decay);
      runtimes_[static_cast<size_t>(s)]->advance_iteration();
    }

    // --- telemetry -----------------------------------------------------------
    const double loss_sum =
        real_ ? util::pairwise_sum<double>(static_cast<uint64_t>(M),
                                           [&](uint64_t i) { return loss_sums[i]; })
              : 0.0;
    const double loss = loss_sum / cfg_.global_batch;
    core::IterationStats agg;
    agg.loss = loss;
    agg.loss_sum = loss_sum;
    for (int s = 0; s < S; ++s) {
      auto& st = stage_st[static_cast<size_t>(s)];
      const auto& c1 = cluster_.machine(s).counters();
      st.loss = loss;
      st.loss_sum = loss_sum;
      st.seconds = cluster_.machine(s).now() - now0[static_cast<size_t>(s)];
      st.stall_seconds = c1.stall_time - c0[static_cast<size_t>(s)].stall_time;
      st.bubble_seconds = bubble[static_cast<size_t>(s)];
      st.bubble_fill_seconds = bubble_ph[static_cast<size_t>(s)][0];
      st.bubble_steady_seconds = bubble_ph[static_cast<size_t>(s)][1];
      st.bubble_drain_seconds = bubble_ph[static_cast<size_t>(s)][2];
      st.p2p_bytes = c1.bytes_p2p - c0[static_cast<size_t>(s)].bytes_p2p;
      st.p2p_seconds = c1.seconds_p2p - c0[static_cast<size_t>(s)].seconds_p2p;

      agg.seconds = std::max(agg.seconds, st.seconds);
      agg.stall_seconds = std::max(agg.stall_seconds, st.stall_seconds);
      agg.bubble_seconds += st.bubble_seconds;
      agg.bubble_fill_seconds += st.bubble_fill_seconds;
      agg.bubble_steady_seconds += st.bubble_steady_seconds;
      agg.bubble_drain_seconds += st.bubble_drain_seconds;
      agg.peak_mem = std::max(agg.peak_mem, st.peak_mem);
      agg.host_peak = std::max(agg.host_peak, st.host_peak);
      agg.p2p_bytes += st.p2p_bytes;
      agg.p2p_seconds += st.p2p_seconds;
      agg.bytes_d2h += st.bytes_d2h;
      agg.bytes_h2d += st.bytes_h2d;
      agg.evictions += st.evictions;
      agg.extra_forwards += st.extra_forwards;
      agg.allocs += st.allocs;
      agg.dma_copies += st.dma_copies;
    }
    report.losses.push_back(loss);
    report.stats.push_back(agg);
    report.stage_stats.push_back(std::move(stage_st));
  }
  return report;
}

}  // namespace sn::dist
