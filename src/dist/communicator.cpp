#include "dist/communicator.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/pairwise.hpp"

namespace sn::dist {

Communicator::Communicator(sim::Cluster& cluster, std::vector<core::TransferEngine*> engines)
    : cluster_(cluster), engines_(std::move(engines)) {
  if (static_cast<int>(engines_.size()) != cluster_.size()) {
    throw std::invalid_argument("Communicator: need one TransferEngine per cluster device");
  }
  scratch_.resize(engines_.size());
}

double Communicator::combine_loss_sums(const std::vector<double>& sums) {
  return util::pairwise_sum<double>(sums.size(), [&](uint64_t i) { return sums[i]; });
}

AllreduceStats Communicator::allreduce_sum(const std::vector<float*>& bufs, uint64_t elems) {
  const int n = cluster_.size();
  assert(static_cast<int>(bufs.size()) == n && "one buffer (or null) per device");

  AllreduceStats stats;
  stats.device_seconds.assign(static_cast<size_t>(n), 0.0);
  stats.chunks = static_cast<uint64_t>(n);
  if (n <= 1 || elems == 0) return stats;

  // Ring chunking: chunk c = [off[c], off[c] + len[c]).
  const uint64_t base = elems / n, rem = elems % n;
  std::vector<uint64_t> off(static_cast<size_t>(n)), len(static_cast<size_t>(n));
  uint64_t o = 0;
  for (int c = 0; c < n; ++c) {
    off[c] = o;
    len[c] = base + (static_cast<uint64_t>(c) < rem ? 1 : 0);
    o += len[c];
  }
  const uint64_t max_len = *std::max_element(len.begin(), len.end());

  // All-or-nothing backing: a mix of null and real buffers would silently
  // sum garbage into the backed replicas.
  const bool backed = bufs[0] != nullptr;
  for (const float* b : bufs) {
    if ((b != nullptr) != backed) {
      throw std::invalid_argument("allreduce_sum: buffers must be uniformly backed or null");
    }
  }
  if (backed) {
    for (auto& s : scratch_) s.resize(max_len);
  }

  // Per-device virtual time through the collective. ready[d] advances on
  // receives (+ the local reduction add); the engines charge sends to the
  // machine as stalls, and the final wait_event below tops every device up to
  // its receive chain, so stall telemetry covers the whole collective.
  std::vector<double> start(static_cast<size_t>(n)), ready(static_cast<size_t>(n));
  std::vector<uint64_t> sent0(static_cast<size_t>(n));
  for (int d = 0; d < n; ++d) {
    start[d] = cluster_.machine(d).now();
    ready[d] = start[d];
    sent0[d] = cluster_.machine(d).counters().bytes_p2p;
  }
  auto add_seconds = [&](int d, uint64_t bytes) {
    // Elementwise sum: read two operands, write one.
    return 3.0 * static_cast<double>(bytes) / cluster_.machine(d).spec().mem_bw;
  };

  // --- reduce-scatter: N-1 hops; device d ends up owning chunk (d+1) % N ---
  for (int s = 0; s < n - 1; ++s) {
    std::vector<sim::Event> ev(static_cast<size_t>(n));
    std::vector<uint64_t> tags(static_cast<size_t>(n));
    std::vector<int> chunk(static_cast<size_t>(n));
    for (int d = 0; d < n; ++d) {
      const int c = ((d - s) % n + n) % n;
      const int dst = (d + 1) % n;
      chunk[d] = c;
      tags[d] = next_tag_++;
      const float* src = backed ? bufs[d] + off[c] : nullptr;
      float* rcv = backed ? scratch_[static_cast<size_t>(dst)].data() : nullptr;
      // Collective hops are waited immediately below: on the async backend
      // they route to the per-link P2P workers at high priority, ahead of
      // any eager offload traffic sharing the engine.
      ev[d] = engines_[d]->submit_p2p(tags[d], src, rcv, len[c] * sizeof(float), dst, ready[d],
                                      core::TransferPriority::kHigh);
    }
    for (int d = 0; d < n; ++d) engines_[d]->wait(core::TransferDir::kP2P, tags[d]);
    std::vector<double> next(ready);
    for (int d = 0; d < n; ++d) {
      const int dst = (d + 1) % n;
      const int c = chunk[d];
      if (backed) {
        float* acc = bufs[dst] + off[c];
        const float* in = scratch_[static_cast<size_t>(dst)].data();
        for (uint64_t i = 0; i < len[c]; ++i) acc[i] += in[i];
      }
      next[dst] = std::max(ready[dst], ev[d].done_at) + add_seconds(dst, len[c] * sizeof(float));
    }
    ready = next;
  }

  // --- all-gather: N-1 hops broadcasting the reduced chunks ----------------
  for (int s = 0; s < n - 1; ++s) {
    std::vector<sim::Event> ev(static_cast<size_t>(n));
    std::vector<uint64_t> tags(static_cast<size_t>(n));
    std::vector<int> chunk(static_cast<size_t>(n));
    for (int d = 0; d < n; ++d) {
      const int c = ((d + 1 - s) % n + n) % n;
      const int dst = (d + 1) % n;
      chunk[d] = c;
      tags[d] = next_tag_++;
      const float* src = backed ? bufs[d] + off[c] : nullptr;
      float* rcv = backed ? bufs[dst] + off[c] : nullptr;
      ev[d] = engines_[d]->submit_p2p(tags[d], src, rcv, len[c] * sizeof(float), dst, ready[d],
                                      core::TransferPriority::kHigh);
    }
    for (int d = 0; d < n; ++d) engines_[d]->wait(core::TransferDir::kP2P, tags[d]);
    for (int d = 0; d < n; ++d) {
      const int dst = (d + 1) % n;
      ready[dst] = std::max(ready[dst], ev[d].done_at);
    }
  }

  for (int d = 0; d < n; ++d) {
    cluster_.machine(d).wait_event(sim::Event{ready[d]});
    stats.device_seconds[d] = cluster_.machine(d).now() - start[d];
    stats.seconds = std::max(stats.seconds, stats.device_seconds[d]);
    stats.p2p_bytes =
        std::max(stats.p2p_bytes, cluster_.machine(d).counters().bytes_p2p - sent0[d]);
  }
  return stats;
}

}  // namespace sn::dist
