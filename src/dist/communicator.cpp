#include "dist/communicator.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_set>

#include "obs/trace.hpp"
#include "util/pairwise.hpp"

namespace sn::dist {

const char* allreduce_algo_name(AllreduceAlgo a) {
  switch (a) {
    case AllreduceAlgo::kAuto: return "auto";
    case AllreduceAlgo::kRing: return "ring";
    case AllreduceAlgo::kHalvingDoubling: return "halving-doubling";
  }
  return "?";
}

namespace {

bool is_pow2(int n) { return n > 0 && (n & (n - 1)) == 0; }

std::vector<int> identity_ids(int n) {
  std::vector<int> ids(static_cast<size_t>(n));
  for (int d = 0; d < n; ++d) ids[static_cast<size_t>(d)] = d;
  return ids;
}

}  // namespace

Communicator::Communicator(sim::Cluster& cluster, std::vector<core::TransferEngine*> engines)
    : Communicator(cluster, identity_ids(cluster.size()), std::move(engines)) {}

Communicator::Communicator(sim::Cluster& cluster, std::vector<int> device_ids,
                           std::vector<core::TransferEngine*> engines)
    : cluster_(cluster), devices_(std::move(device_ids)), engines_(std::move(engines)) {
  if (devices_.empty()) throw std::invalid_argument("Communicator: empty device group");
  if (engines_.size() != devices_.size()) {
    throw std::invalid_argument("Communicator: need one TransferEngine per group device");
  }
  std::unordered_set<int> seen;
  for (size_t r = 0; r < devices_.size(); ++r) {
    const int d = devices_[r];
    if (d < 0 || d >= cluster_.size()) {
      throw std::invalid_argument("Communicator: device id out of cluster range");
    }
    if (!seen.insert(d).second) {
      throw std::invalid_argument("Communicator: duplicate device in group");
    }
    if (engines_[r]->device_id() != d) {
      throw std::invalid_argument("Communicator: engine/device mismatch at rank " +
                                  std::to_string(r));
    }
  }
  scratch_.resize(devices_.size());
}

double Communicator::combine_loss_sums(const std::vector<double>& sums) {
  return util::pairwise_sum<double>(sums.size(), [&](uint64_t i) { return sums[i]; });
}

AllreduceStats Communicator::allreduce_sum(const std::vector<float*>& bufs, uint64_t elems,
                                           AllreduceAlgo algo) {
  // Issue + immediate await: identical hop chain, identical per-rank
  // wait_event — the same virtual timeline the collective always had.
  AllreduceHandle h = all_reduce_async(bufs, elems, algo);
  return await(h);
}

AllreduceHandle Communicator::all_reduce_async(const std::vector<float*>& bufs, uint64_t elems,
                                               AllreduceAlgo algo) {
  const int n = devices();
  assert(static_cast<int>(bufs.size()) == n && "one buffer (or null) per rank");
  if (algo == AllreduceAlgo::kAuto) {
    algo = is_pow2(n) ? AllreduceAlgo::kHalvingDoubling : AllreduceAlgo::kRing;
  }
  if (algo == AllreduceAlgo::kHalvingDoubling && !is_pow2(n)) {
    throw std::invalid_argument("allreduce_sum: halving-doubling needs a power-of-two group");
  }

  AllreduceHandle h;
  h.stats.device_seconds.assign(static_cast<size_t>(n), 0.0);
  h.stats.chunks = static_cast<uint64_t>(n);
  h.stats.algo = algo;
  if (n <= 1 || elems == 0) {
    h.done = true;
    return h;
  }

  // All-or-nothing backing: a mix of null and real buffers would silently
  // sum garbage into the backed replicas.
  const bool backed = bufs[0] != nullptr;
  for (const float* b : bufs) {
    if ((b != nullptr) != backed) {
      throw std::invalid_argument("allreduce_sum: buffers must be uniformly backed or null");
    }
  }

  // Leave from each rank's current time — or the previous async issue's
  // completion on this communicator, whichever is later (bucket chaining).
  if (chain_ready_.size() != static_cast<size_t>(n)) {
    chain_ready_.assign(static_cast<size_t>(n), 0.0);
  }
  h.start.resize(static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) {
    h.start[static_cast<size_t>(r)] =
        std::max(mach(r).now(), chain_ready_[static_cast<size_t>(r)]);
  }
  h.trace_seq = bucket_seq_++;
  // Hop sends stall the SENDING machine at issue (engines_[r]->wait inside
  // run_*): tag those stalls as collective time, not generic transfer time.
  for (int r = 0; r < n; ++r) {
    if (auto* rec = mach(r).trace()) {
      rec->set_stall_context(obs::StallSource::kCollective, "ar_hop", "", -1, 0);
    }
  }
  if (algo == AllreduceAlgo::kHalvingDoubling) {
    run_halving_doubling(bufs, elems, h);
  } else {
    run_ring(bufs, elems, h);
  }
  for (int r = 0; r < n; ++r) {
    if (auto* rec = mach(r).trace()) {
      rec->clear_stall_context();
      // One chain span per rank: submit -> hop chain complete, flow-linked to
      // the await that will consume it.
      rec->record_copy(obs::SpanKind::kCollective, obs::kStreamCollective,
                       h.start[static_cast<size_t>(r)], h.ready[static_cast<size_t>(r)],
                       h.stats.p2p_bytes,
                       obs::flow_id_collective(h.trace_seq, devices_[static_cast<size_t>(r)]),
                       "allreduce");
    }
  }
  chain_ready_ = h.ready;
  return h;
}

AllreduceStats Communicator::await(AllreduceHandle& h) {
  const int n = devices();
  if (!h.done) {
    for (int r = 0; r < n; ++r) {
      if (auto* rec = mach(r).trace()) {
        rec->set_stall_context(
            obs::StallSource::kCollective, "ar_await", "", -1,
            obs::flow_id_collective(h.trace_seq, devices_[static_cast<size_t>(r)]));
      }
      mach(r).wait_event(sim::Event{h.ready[static_cast<size_t>(r)]});
      if (auto* rec = mach(r).trace()) rec->clear_stall_context();
      // In-flight latency of the rank's hop chain (submit -> reduction
      // complete), NOT now() - start: when the collective was issued async,
      // the machine keeps computing through the window and now() would
      // charge that unrelated progress to the collective. For the
      // synchronous path the two are identical (the machine sits at the
      // submit point until wait_event tops it up to the chain).
      h.stats.device_seconds[static_cast<size_t>(r)] =
          h.ready[static_cast<size_t>(r)] - h.start[static_cast<size_t>(r)];
      h.stats.seconds = std::max(h.stats.seconds, h.stats.device_seconds[static_cast<size_t>(r)]);
    }
    h.done = true;
  }
  return h.stats;
}

void Communicator::run_ring(const std::vector<float*>& bufs, uint64_t elems,
                            AllreduceHandle& h) {
  const int n = devices();
  const bool backed = bufs[0] != nullptr;

  // Ring chunking: chunk c = [off[c], off[c] + len[c]).
  const uint64_t base = elems / n, rem = elems % n;
  std::vector<uint64_t> off(static_cast<size_t>(n)), len(static_cast<size_t>(n));
  uint64_t o = 0;
  for (int c = 0; c < n; ++c) {
    off[c] = o;
    len[c] = base + (static_cast<uint64_t>(c) < rem ? 1 : 0);
    o += len[c];
  }
  const uint64_t max_len = *std::max_element(len.begin(), len.end());
  if (backed) {
    for (auto& s : scratch_) s.resize(max_len);
  }

  // Per-rank virtual time through the collective. ready[r] advances on
  // receives (+ the local reduction add); the engines charge sends to the
  // machine as stalls, and await()'s wait_event tops every rank up to its
  // receive chain, so stall telemetry covers the whole collective.
  std::vector<double> ready(h.start);
  std::vector<uint64_t> sent0(static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) sent0[r] = mach(r).counters().bytes_p2p;

  // --- reduce-scatter: N-1 hops; rank r ends up owning chunk (r+1) % N -----
  for (int s = 0; s < n - 1; ++s) {
    std::vector<sim::Event> ev(static_cast<size_t>(n));
    std::vector<uint64_t> tags(static_cast<size_t>(n));
    std::vector<int> chunk(static_cast<size_t>(n));
    for (int r = 0; r < n; ++r) {
      const int c = ((r - s) % n + n) % n;
      const int dst = (r + 1) % n;
      chunk[r] = c;
      tags[r] = next_tag_++;
      const float* src = backed ? bufs[r] + off[c] : nullptr;
      float* rcv = backed ? scratch_[static_cast<size_t>(dst)].data() : nullptr;
      // Collective hops are waited immediately below: on the async backend
      // they route to the per-link P2P workers at high priority, ahead of
      // any eager offload traffic sharing the engine.
      ev[r] = engines_[r]->submit_p2p(tags[r], src, rcv, len[c] * sizeof(float),
                                      devices_[static_cast<size_t>(dst)], ready[r],
                                      core::TransferPriority::kHigh);
    }
    for (int r = 0; r < n; ++r) engines_[r]->wait(core::TransferDir::kP2P, tags[r]);
    std::vector<double> next(ready);
    for (int r = 0; r < n; ++r) {
      const int dst = (r + 1) % n;
      const int c = chunk[r];
      if (backed) {
        float* acc = bufs[dst] + off[c];
        const float* in = scratch_[static_cast<size_t>(dst)].data();
        for (uint64_t i = 0; i < len[c]; ++i) acc[i] += in[i];
      }
      next[dst] = std::max(ready[dst], ev[r].done_at) + add_seconds(dst, len[c] * sizeof(float));
    }
    ready = next;
  }

  // --- all-gather: N-1 hops broadcasting the reduced chunks ----------------
  for (int s = 0; s < n - 1; ++s) {
    std::vector<sim::Event> ev(static_cast<size_t>(n));
    std::vector<uint64_t> tags(static_cast<size_t>(n));
    for (int r = 0; r < n; ++r) {
      const int c = ((r + 1 - s) % n + n) % n;
      const int dst = (r + 1) % n;
      tags[r] = next_tag_++;
      const float* src = backed ? bufs[r] + off[c] : nullptr;
      float* rcv = backed ? bufs[dst] + off[c] : nullptr;
      ev[r] = engines_[r]->submit_p2p(tags[r], src, rcv, len[c] * sizeof(float),
                                      devices_[static_cast<size_t>(dst)], ready[r],
                                      core::TransferPriority::kHigh);
    }
    for (int r = 0; r < n; ++r) engines_[r]->wait(core::TransferDir::kP2P, tags[r]);
    for (int r = 0; r < n; ++r) {
      const int dst = (r + 1) % n;
      ready[dst] = std::max(ready[dst], ev[r].done_at);
    }
  }

  for (int r = 0; r < n; ++r) {
    h.stats.p2p_bytes = std::max(h.stats.p2p_bytes, mach(r).counters().bytes_p2p - sent0[r]);
  }
  h.ready = std::move(ready);
}

void Communicator::run_halving_doubling(const std::vector<float*>& bufs, uint64_t elems,
                                        AllreduceHandle& h) {
  const int n = devices();
  const bool backed = bufs[0] != nullptr;
  assert(is_pow2(n) && n >= 2);

  int k = 0;
  while ((1 << k) < n) ++k;
  if (backed) {
    // Largest receive is the first halving: ceil(elems / 2).
    for (auto& s : scratch_) s.resize((elems + 1) / 2);
  }

  std::vector<double> ready(h.start);
  std::vector<uint64_t> sent0(static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) sent0[r] = mach(r).counters().bytes_p2p;

  // Per-rank owned segment [lo, hi). Partners always hold identical segments
  // (the keep decision at step t depends only on rank bits < t), so the half
  // a rank sends is exactly the half its partner keeps.
  std::vector<uint64_t> lo(static_cast<size_t>(n), 0), hi(static_cast<size_t>(n), elems);

  // --- reduce-scatter: vector halving, distance doubling -------------------
  // Step t pairs rank r with r ^ 2^t, so the sum it materializes covers the
  // aligned rank group of size 2^(t+1) — the binary-counter pairwise tree in
  // ascending rank order, one two-operand (commutative) add per node.
  for (int t = 0; t < k; ++t) {
    const int bit = 1 << t;
    std::vector<sim::Event> ev(static_cast<size_t>(n));
    std::vector<uint64_t> tags(static_cast<size_t>(n), 0);
    std::vector<uint64_t> keep_lo(static_cast<size_t>(n)), keep_hi(static_cast<size_t>(n));
    for (int r = 0; r < n; ++r) {
      const int p = r ^ bit;
      const uint64_t mid = lo[r] + (hi[r] - lo[r]) / 2;
      const bool keep_lower = (r & bit) == 0;
      keep_lo[r] = keep_lower ? lo[r] : mid;
      keep_hi[r] = keep_lower ? mid : hi[r];
      const uint64_t send_lo = keep_lower ? mid : lo[r];
      const uint64_t send_hi = keep_lower ? hi[r] : mid;
      if (send_hi == send_lo) continue;  // degenerate (elems < group): nothing to ship
      tags[r] = next_tag_++;
      const float* src = backed ? bufs[r] + send_lo : nullptr;
      float* rcv = backed ? scratch_[static_cast<size_t>(p)].data() : nullptr;
      ev[r] = engines_[r]->submit_p2p(tags[r], src, rcv, (send_hi - send_lo) * sizeof(float),
                                      devices_[static_cast<size_t>(p)], ready[r],
                                      core::TransferPriority::kHigh);
    }
    for (int r = 0; r < n; ++r) {
      if (tags[r]) engines_[r]->wait(core::TransferDir::kP2P, tags[r]);
    }
    std::vector<double> next(ready);
    for (int r = 0; r < n; ++r) {
      if (!tags[r]) continue;
      const int p = r ^ bit;
      const uint64_t len = keep_hi[p] - keep_lo[p];  // == r's send length
      if (backed) {
        float* acc = bufs[p] + keep_lo[p];
        const float* in = scratch_[static_cast<size_t>(p)].data();
        for (uint64_t i = 0; i < len; ++i) acc[i] += in[i];
      }
      next[p] = std::max(ready[p], ev[r].done_at) + add_seconds(p, len * sizeof(float));
    }
    for (int r = 0; r < n; ++r) {
      lo[r] = keep_lo[r];
      hi[r] = keep_hi[r];
    }
    ready = next;
  }

  // --- all-gather: distance halving, vector doubling -----------------------
  // Unwinds the scatter: each rank ships its whole reduced segment to the
  // step's partner; partners end the step owning the (contiguous) union.
  for (int t = k - 1; t >= 0; --t) {
    const int bit = 1 << t;
    std::vector<sim::Event> ev(static_cast<size_t>(n));
    std::vector<uint64_t> tags(static_cast<size_t>(n), 0);
    for (int r = 0; r < n; ++r) {
      const int p = r ^ bit;
      const uint64_t len = hi[r] - lo[r];
      if (len == 0) continue;
      tags[r] = next_tag_++;
      const float* src = backed ? bufs[r] + lo[r] : nullptr;
      float* rcv = backed ? bufs[p] + lo[r] : nullptr;
      ev[r] = engines_[r]->submit_p2p(tags[r], src, rcv, len * sizeof(float),
                                      devices_[static_cast<size_t>(p)], ready[r],
                                      core::TransferPriority::kHigh);
    }
    for (int r = 0; r < n; ++r) {
      if (tags[r]) engines_[r]->wait(core::TransferDir::kP2P, tags[r]);
    }
    std::vector<double> next(ready);
    for (int r = 0; r < n; ++r) {
      if (!tags[r]) continue;
      const int p = r ^ bit;
      next[p] = std::max(next[p], ev[r].done_at);
    }
    for (int r = 0; r < n; ++r) {
      const int p = r ^ bit;
      if (r < p) {
        const uint64_t nlo = std::min(lo[r], lo[p]);
        const uint64_t nhi = std::max(hi[r], hi[p]);
        lo[r] = lo[p] = nlo;
        hi[r] = hi[p] = nhi;
      }
    }
    ready = next;
  }

  for (int r = 0; r < n; ++r) {
    h.stats.p2p_bytes = std::max(h.stats.p2p_bytes, mach(r).counters().bytes_p2p - sent0[r]);
  }
  h.ready = std::move(ready);
}

}  // namespace sn::dist
