// dist::ScheduleEngine — the shared column-schedule engine behind the
// pipeline and hybrid trainers.
//
// Both trainers drive the same abstract machine: S pipeline stages, M
// microbatches per column, activations streaming down stage links and
// gradients streaming back up. What differs between scheduling policies is
// only the ORDER of per-stage forward/backward ops (and therefore how many
// microbatch inputs a stage must keep stashed at once). The engine emits
// that order as a flat, single-threaded op list the trainers replay
// verbatim, binding each op to Runtime::forward_pass / backward_pass plus
// TransferEngine::submit_p2p streaming:
//
//   * kGPipe — fill then drain. Forwards sweep m ascending through every
//     stage; backwards retire m descending, newest first. A stage stashes
//     ALL M boundary inputs; every non-final backward re-materializes its
//     forward first (GPipe re-materialization). The emitted list is exactly
//     the loop nest the trainers ran before the engine existed — byte-
//     identical schedules, slot-identical stash layout.
//   * k1F1B — PipeDream-flush. Stage s runs w_s = min(M, S-1-s) warmup
//     forwards, then alternates one-forward-one-backward (backwards retire
//     m ASCENDING), then w_s cooldown backwards. The bubble shrinks (stage
//     S-1 never idles after its first activation arrives) and so does the
//     stash: at most min(M, S-s+1) microbatch inputs are ever live per
//     stage, versus GPipe's M. Backwards retiring ascending does not change
//     numerics — the trainers snapshot each microbatch's gradients and
//     combine them with the ascending-m binary-counter pairwise tree
//     (util/pairwise.hpp) regardless of execution order, so the bit-parity
//     invariant holds under both policies.
//
// The global interleaving is a deterministic greedy round-robin: repeatedly
// scan stages in ascending order and emit each stage's next op when its
// cross-stage dependency (activation from s-1 for a forward, gradient from
// s+1 for a backward) has already been emitted. This reproduces the classic
// 1F1B wavefront and guarantees sends precede their receives in list order.
//
// Stash slots: the engine assigns every (stage, microbatch) a reusable slot
// index with an interval walk over the emitted list — a slot is live from
// the producing send (the forward at stage s-1) until the backward at stage
// s retires it; allocation is lowest-free-slot. peak_stash_slots() is what
// the trainers size their stash arrays with, making 1F1B's smaller
// footprint real, not just theoretical. Under kGPipe the walk degenerates
// to slot == microbatch.
//
// Gradient buckets: under k1F1B the engine emits kBucketReady(s, b) ops for
// each of the caller-declared buckets of stage s immediately after that
// stage's last backward — the earliest point the stage's fused gradient is
// complete. The hybrid trainer binds these to Communicator::
// all_reduce_async, overlapping each stage row's collective with the
// stages still draining below it. kGPipe emits none (its trainers keep the
// legacy post-drain synchronous update).
#pragma once

#include <stdexcept>
#include <vector>

namespace sn::dist {

enum class SchedulePolicy {
  kGPipe,  ///< fill/drain: all forwards, then backwards newest-first
  k1F1B,   ///< PipeDream-flush: warmup, one-forward-one-backward, cooldown
};

const char* schedule_policy_name(SchedulePolicy p);

enum class ScheduleOpKind {
  kForward,      ///< run forward of (stage, microbatch); stream activation down
  kBackward,     ///< run backward of (stage, microbatch); stream gradient up
  kBucketReady,  ///< stage's fused-gradient bucket complete: issue its all-reduce
};

/// Where an op falls in its stage's timeline (telemetry only; kFill ops are
/// warmup forwards, kDrain ops are cooldown backwards, everything between is
/// kSteady). GPipe has no steady state: forwards are kFill, backwards kDrain.
enum class SchedulePhase { kFill = 0, kSteady = 1, kDrain = 2 };

struct ScheduleOp {
  ScheduleOpKind kind = ScheduleOpKind::kForward;
  int stage = 0;
  int microbatch = -1;  ///< -1 for kBucketReady
  int bucket = -1;      ///< -1 except kBucketReady
  /// kBackward only: the stage's resident activations belong to a different
  /// microbatch, so the trainer must re-materialize forward(microbatch) from
  /// the stashed input before running the backward.
  bool recompute = false;
  /// kForward on stages >= 1: stash slot this microbatch's boundary input
  /// lands in (and is re-materialized from); -1 otherwise.
  int stash_slot = -1;
  SchedulePhase phase = SchedulePhase::kFill;

  bool operator==(const ScheduleOp& o) const {
    return kind == o.kind && stage == o.stage && microbatch == o.microbatch &&
           bucket == o.bucket && recompute == o.recompute && stash_slot == o.stash_slot &&
           phase == o.phase;
  }
};

class ScheduleEngine {
 public:
  /// `buckets` declares how many fused-gradient buckets each stage splits
  /// into (size S, every entry >= 1); empty = no kBucketReady ops. Buckets
  /// are only emitted under k1F1B — GPipe callers run the legacy
  /// synchronous update and must see an unchanged op stream.
  ScheduleEngine(SchedulePolicy policy, int stages, int microbatches,
                 std::vector<int> buckets = {});

  const std::vector<ScheduleOp>& ops() const { return ops_; }
  SchedulePolicy policy() const { return policy_; }
  int stages() const { return stages_; }
  int microbatches() const { return microbatches_; }

  /// Max stash slots ever live at `stage` (0 for stage 0: it reads the
  /// dataset, not a streamed input). GPipe: M; 1F1B: min(M, S - stage + 1).
  int peak_stash_slots(int stage) const {
    return peak_slots_[static_cast<size_t>(stage)];
  }
  /// Slot assigned to (stage, microbatch); -1 for stage 0.
  int stash_slot(int stage, int microbatch) const {
    if (stage == 0) return -1;
    return slot_[static_cast<size_t>(stage)][static_cast<size_t>(microbatch)];
  }

 private:
  void emit_gpipe();
  void emit_1f1b();
  void assign_stash_slots();

  SchedulePolicy policy_;
  int stages_;
  int microbatches_;
  std::vector<int> buckets_;
  std::vector<ScheduleOp> ops_;
  std::vector<std::vector<int>> slot_;  ///< [stage][microbatch] -> stash slot
  std::vector<int> peak_slots_;         ///< [stage]
};

}  // namespace sn::dist
