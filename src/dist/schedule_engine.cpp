#include "dist/schedule_engine.hpp"

#include <algorithm>

namespace sn::dist {

const char* schedule_policy_name(SchedulePolicy p) {
  switch (p) {
    case SchedulePolicy::kGPipe: return "gpipe";
    case SchedulePolicy::k1F1B: return "1f1b";
  }
  return "?";
}

ScheduleEngine::ScheduleEngine(SchedulePolicy policy, int stages, int microbatches,
                               std::vector<int> buckets)
    : policy_(policy), stages_(stages), microbatches_(microbatches),
      buckets_(std::move(buckets)) {
  if (stages_ < 1) throw std::invalid_argument("schedule: stages >= 1");
  if (microbatches_ < 1) throw std::invalid_argument("schedule: microbatches >= 1");
  if (!buckets_.empty()) {
    if (static_cast<int>(buckets_.size()) != stages_) {
      throw std::invalid_argument("schedule: need one bucket count per stage");
    }
    for (int b : buckets_) {
      if (b < 1) throw std::invalid_argument("schedule: bucket counts >= 1");
    }
  }
  if (policy_ == SchedulePolicy::kGPipe) {
    emit_gpipe();
  } else {
    emit_1f1b();
  }
  assign_stash_slots();
}

void ScheduleEngine::emit_gpipe() {
  const int S = stages_, M = microbatches_;
  // Exactly the trainers' historical loop nest: fill sweeps (m, s) ascending,
  // drain retires (m, s) descending. The last microbatch's activations are
  // still resident when its backward runs; every older backward recomputes.
  for (int m = 0; m < M; ++m) {
    for (int s = 0; s < S; ++s) {
      ScheduleOp op;
      op.kind = ScheduleOpKind::kForward;
      op.stage = s;
      op.microbatch = m;
      op.phase = SchedulePhase::kFill;
      ops_.push_back(op);
    }
  }
  for (int m = M - 1; m >= 0; --m) {
    for (int s = S - 1; s >= 0; --s) {
      ScheduleOp op;
      op.kind = ScheduleOpKind::kBackward;
      op.stage = s;
      op.microbatch = m;
      op.recompute = m < M - 1;
      op.phase = SchedulePhase::kDrain;
      ops_.push_back(op);
    }
  }
}

void ScheduleEngine::emit_1f1b() {
  const int S = stages_, M = microbatches_;
  // Per-stage 1F1B sequence: w_s warmup forwards, then alternate
  // forward(w_s + i) / backward(i), then the w_s cooldown backwards.
  struct StageOp {
    bool forward;
    int m;
    SchedulePhase phase;
  };
  std::vector<std::vector<StageOp>> seq(static_cast<size_t>(S));
  for (int s = 0; s < S; ++s) {
    const int w = std::min(M, S - 1 - s);
    auto& q = seq[static_cast<size_t>(s)];
    for (int i = 0; i < w; ++i) q.push_back({true, i, SchedulePhase::kFill});
    int f = w, b = 0;
    while (f < M || b < M) {
      if (f < M) q.push_back({true, f++, SchedulePhase::kSteady});
      if (b < M) {
        // Cooldown = the backwards left after the stage's last forward.
        const SchedulePhase ph = f >= M && b >= M - w && w > 0 ? SchedulePhase::kDrain
                                                               : SchedulePhase::kSteady;
        q.push_back({false, b++, ph});
      }
    }
  }

  // Greedy round-robin interleave: each round scans stages ascending and
  // emits a stage's next op when its upstream activation (forward) or
  // downstream gradient (backward) is already emitted. Sends land in list
  // order before their receives, so single-link FIFO streaming is safe.
  std::vector<size_t> next(static_cast<size_t>(S), 0);
  std::vector<std::vector<bool>> fwd_done(
      static_cast<size_t>(S), std::vector<bool>(static_cast<size_t>(M), false));
  std::vector<std::vector<bool>> bwd_done(
      static_cast<size_t>(S), std::vector<bool>(static_cast<size_t>(M), false));
  // Resident forward state per stage: backward(m) needs a re-materialization
  // unless forward(m) ran last AND no backward consumed it since.
  std::vector<int> last_forward(static_cast<size_t>(S), -1);
  size_t remaining = 0;
  for (const auto& q : seq) remaining += q.size();

  while (remaining > 0) {
    bool progressed = false;
    for (int s = 0; s < S; ++s) {
      auto& q = seq[static_cast<size_t>(s)];
      size_t& n = next[static_cast<size_t>(s)];
      if (n >= q.size()) continue;
      const StageOp& so = q[n];
      const bool ready =
          so.forward ? (s == 0 || fwd_done[static_cast<size_t>(s) - 1][static_cast<size_t>(so.m)])
                     : (s == S - 1 ||
                        bwd_done[static_cast<size_t>(s) + 1][static_cast<size_t>(so.m)]);
      if (!ready) continue;

      ScheduleOp op;
      op.stage = s;
      op.microbatch = so.m;
      op.phase = so.phase;
      if (so.forward) {
        op.kind = ScheduleOpKind::kForward;
        fwd_done[static_cast<size_t>(s)][static_cast<size_t>(so.m)] = true;
        last_forward[static_cast<size_t>(s)] = so.m;
      } else {
        op.kind = ScheduleOpKind::kBackward;
        op.recompute = last_forward[static_cast<size_t>(s)] != so.m;
        last_forward[static_cast<size_t>(s)] = -1;  // backward consumes the activations
        bwd_done[static_cast<size_t>(s)][static_cast<size_t>(so.m)] = true;
      }
      ops_.push_back(op);
      ++n;
      --remaining;
      progressed = true;

      // A stage's fused gradient is complete at its last backward: its
      // buckets' all-reduces can launch while other stages still drain.
      if (!so.forward && so.m == M - 1 && !buckets_.empty()) {
        for (int b = 0; b < buckets_[static_cast<size_t>(s)]; ++b) {
          ScheduleOp br;
          br.kind = ScheduleOpKind::kBucketReady;
          br.stage = s;
          br.bucket = b;
          br.phase = SchedulePhase::kDrain;
          ops_.push_back(br);
        }
      }
    }
    if (!progressed) throw std::logic_error("schedule: deadlocked emission (engine bug)");
  }
}

void ScheduleEngine::assign_stash_slots() {
  const int S = stages_, M = microbatches_;
  slot_.assign(static_cast<size_t>(S), std::vector<int>(static_cast<size_t>(M), -1));
  peak_slots_.assign(static_cast<size_t>(S), 0);
  // Interval walk: a stage's slot for microbatch m is live from the send
  // (the forward at stage s-1, whose submit starts writing the slot) until
  // the backward at stage s (whose re-materialization reads it last).
  // Lowest-free-slot allocation; GPipe degenerates to slot == m.
  std::vector<std::vector<bool>> in_use(static_cast<size_t>(S));
  for (auto& v : in_use) v.assign(static_cast<size_t>(M), false);
  for (const ScheduleOp& op : ops_) {
    if (op.kind == ScheduleOpKind::kForward && op.stage + 1 < S) {
      auto& used = in_use[static_cast<size_t>(op.stage) + 1];
      int sl = 0;
      while (used[static_cast<size_t>(sl)]) ++sl;
      used[static_cast<size_t>(sl)] = true;
      slot_[static_cast<size_t>(op.stage) + 1][static_cast<size_t>(op.microbatch)] = sl;
      int live = 0;
      for (bool u : used) live += u ? 1 : 0;
      peak_slots_[static_cast<size_t>(op.stage) + 1] =
          std::max(peak_slots_[static_cast<size_t>(op.stage) + 1], live);
    } else if (op.kind == ScheduleOpKind::kBackward && op.stage > 0) {
      const int sl = slot_[static_cast<size_t>(op.stage)][static_cast<size_t>(op.microbatch)];
      in_use[static_cast<size_t>(op.stage)][static_cast<size_t>(sl)] = false;
    }
  }
  // Stamp the assigned slot into the forward ops (receiver-side index).
  for (ScheduleOp& op : ops_) {
    if (op.kind == ScheduleOpKind::kForward && op.stage > 0) {
      op.stash_slot = slot_[static_cast<size_t>(op.stage)][static_cast<size_t>(op.microbatch)];
    }
  }
}

}  // namespace sn::dist
