// dist::PipelineParallelTrainer — pipeline parallelism over the simulated
// multi-device cluster, scheduled by the shared dist::ScheduleEngine.
//
// A net whose working set exceeds one device's pool is cut into contiguous
// stages (graph::NetPartitioner), one Runtime per stage on its own
// sim::Cluster device. Each global batch is split into M microbatches and
// driven through the engine's op list under the configured SchedulePolicy:
//
//   kGPipe: fill (every stage forwards microbatch 0..M-1, streaming the
//          boundary activation to its successor over
//          TransferEngine::submit_p2p; a stage's forward for microbatch m is
//          gated on the virtual landing event of that activation, so the
//          classic fill ramp and its bubble fall out of virtual time) then
//          drain (microbatches retire newest-first; a stage REMATERIALIZES
//          older forwards from its stashed boundary input — GPipe
//          re-materialization — receives the output gradient, runs backward,
//          and streams the input gradient upstream).
//   k1F1B: PipeDream-flush — warmup forwards, then one-forward-one-backward
//          steady state (backwards retire in ASCENDING microbatch order),
//          then cooldown. Smaller bubble, and the stash holds at most
//          min(M, S-s+1) microbatch inputs instead of all M (the trainer
//          sizes it from ScheduleEngine::peak_stash_slots).
//
// Weights update per stage after the drain: per-microbatch gradients are
// combined with the binary-counter pairwise machinery (util/pairwise.hpp)
// in ascending microbatch order REGARDLESS of backward execution order, so
// for power-of-two microbatch counts and sizes the combined gradient is
// bit-identical to a single-device pass over the whole batch under BOTH
// policies — the paper's "scheduling never changes training results"
// invariant, extended across the pipeline (same restriction as data
// parallelism: per-sample kernels; no BatchNorm batch statistics, no
// dropout).
//
// Determinism: the trainer is single-threaded; every cross-stage dependency
// is an explicit virtual event (receivers machine-wait it; the wall-clock
// bytes are gated separately with TransferEngine::await_landing, which never
// touches virtual time), so the schedule is bit-reproducible regardless of
// DMA-worker timing.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/peer_staging.hpp"
#include "core/runtime.hpp"
#include "dist/schedule_engine.hpp"
#include "graph/partitioner.hpp"
#include "obs/cost_profile.hpp"
#include "obs/trace.hpp"
#include "sim/cluster.hpp"
#include "train/dataset.hpp"
#include "train/trainer.hpp"

namespace sn::dist {

struct PipelineParallelConfig {
  int stages = 2;
  int microbatches = 2;        ///< must divide global_batch
  int global_batch = 8;
  SchedulePolicy schedule = SchedulePolicy::kGPipe;
  /// Explicit route cut positions (NetPartitioner::partition_at); empty =
  /// cost-balanced automatic partition.
  std::vector<int> boundaries;
  /// Profile-guided partitioning: observed per-layer seconds from a prior
  /// traced run replace the analytic roofline in the cut balance. Must
  /// outlive the trainer. Null (default) keeps cuts — and therefore every
  /// schedule — byte-identical to the analytic path.
  const obs::CostProfile* cost_profile = nullptr;
  /// Peer-memory staging (core::PeerStagingGroup): evictions may ride idle
  /// P2P links into a peer stage's pool instead of the D2H uplink, each
  /// stage donating at most peer_donation_bytes of its pool to guests. Off
  /// by default (byte-identical legacy schedules); on, numerics stay
  /// bit-identical — staging only re-routes copies.
  bool peer_staging = false;
  uint64_t peer_donation_bytes = 1ull << 30;
  sim::ClusterSpec cluster;    ///< device + link preset; .devices is overridden
  train::TrainConfig train;    ///< iterations / lr / momentum / seed
};

struct PipelineParallelReport {
  std::vector<double> losses;               ///< combined global-batch loss
  std::vector<core::IterationStats> stats;  ///< cluster-aggregate per iteration
  std::vector<std::vector<core::IterationStats>> stage_stats;  ///< [iter][stage]

  double first_loss() const { return losses.empty() ? 0.0 : losses.front(); }
  double last_loss() const { return losses.empty() ? 0.0 : losses.back(); }
};

class PipelineParallelTrainer {
 public:
  /// Builds the FULL net at a given batch size; the trainer partitions it
  /// and rebuilds per-stage nets at the microbatch size.
  using NetFactory = std::function<std::unique_ptr<graph::Net>(int batch)>;

  /// `base` supplies the runtime policy for every stage; its spec / cluster
  /// / device_id / loss_batch fields are overwritten per stage.
  PipelineParallelTrainer(const NetFactory& factory, core::RuntimeOptions base,
                          PipelineParallelConfig cfg);

  /// Run cfg.train.iterations fill/drain pipeline rounds on synthetic data.
  PipelineParallelReport run();

  int stages() const { return cfg_.stages; }
  int microbatches() const { return cfg_.microbatches; }
  int microbatch_size() const { return microbatch_; }
  const ScheduleEngine& schedule() const { return sched_; }
  /// Bytes of stashed boundary-input stash allocated for `stage` (0 for
  /// stage 0). 1F1B's peak is strictly below GPipe's for M > S.
  uint64_t stash_bytes(int stage) const;
  const graph::PartitionPlan& plan() const { return plan_; }
  core::Runtime& runtime(int stage) { return *runtimes_[static_cast<size_t>(stage)]; }
  graph::Net& stage_net(int stage) { return *stage_nets_[static_cast<size_t>(stage)]; }
  sim::Cluster& cluster() { return cluster_; }
  core::PeerStagingGroup& staging_group() { return staging_group_; }

  /// Attach a trace session: one recorder per stage device, hooked into the
  /// stage machines. Pass nullptr to detach. Recording is wall-clock-only —
  /// the replayed schedule and all numerics are unchanged (pinned by
  /// test_trace).
  void attach_trace(obs::TraceSession* session);

 private:
  core::TransferEngine& engine(int stage) {
    return runtimes_[static_cast<size_t>(stage)]->tensor_pool().engine();
  }
  float* device_ptr(int stage, const tensor::Tensor* t) {
    return runtimes_[static_cast<size_t>(stage)]->tensor_pool().device_ptr(t);
  }
  /// Stream stage `s`'s boundary activation of microbatch `m` downstream
  /// into the successor's stash slot `slot`.
  void send_activation(int s, int m, int slot);
  /// Gate stage `s`'s forward on the activation landing; returns the
  /// compute-stall delta (the bubble share of this wait). `phase`/`m` label
  /// the recorded stall span (SchedulePhase as int; trace-only).
  double receive_activation(int s, int phase, int m);
  void send_gradient(int s);
  double receive_gradient(int s, int phase, int m);
  /// Retire sender-side bookkeeping of streamed transfers (opportunistic;
  /// forced at iteration end).
  void retire_streams(bool force);

  PipelineParallelConfig cfg_;
  bool real_;
  int microbatch_;
  std::unique_ptr<graph::Net> full_;  ///< probe net (microbatch size) the plan is cut from
  graph::PartitionPlan plan_;
  sim::Cluster cluster_;
  /// Declared before runtimes_: pools detach from the group in their
  /// destructors, so the group must outlive them.
  core::PeerStagingGroup staging_group_;
  std::vector<std::unique_ptr<graph::Net>> stage_nets_;
  std::vector<std::unique_ptr<core::Runtime>> runtimes_;
  train::SyntheticDataset dataset_;
  std::vector<float> batch_data_;
  std::vector<int32_t> batch_labels_;

  // Boundary tensors per link s -> s+1 (index s in [0, stages-1)):
  std::vector<tensor::Tensor*> out_t_;       ///< stage s: boundary activation (pinned)
  std::vector<tensor::Tensor*> out_grad_t_;  ///< stage s: its gradient, landed from s+1 (pinned)
  std::vector<tensor::Tensor*> in_t_;        ///< stage s+1: synthetic input tensor
  std::vector<tensor::Tensor*> in_grad_t_;   ///< stage s+1: input gradient, streamed to s (pinned)
  /// Stage s+1's stashed boundary inputs, one per live stash SLOT (sized by
  /// ScheduleEngine::peak_stash_slots) — both the P2P landing site and the
  /// re-materialization source (real mode). Slot == microbatch under GPipe.
  std::vector<std::vector<std::vector<float>>> stash_;  ///< [stage][slot]

  /// In-flight (event, tag) FIFOs per link: sends push, receives pop — a
  /// link's transfers are consumed in ascending microbatch order under both
  /// policies.
  std::vector<std::deque<std::pair<sim::Event, uint64_t>>> act_q_, grad_q_;
  std::vector<std::pair<int, uint64_t>> in_flight_;  ///< (sender stage, tag) to retire

  ScheduleEngine sched_;

  /// Param-grad tensors per stage in net order, and per-microbatch gradient
  /// snapshots combined pairwise at drain end (real mode).
  std::vector<std::vector<tensor::Tensor*>> grads_;
  std::vector<uint64_t> grad_elems_;
  std::vector<std::vector<std::vector<float>>> grad_stash_;  ///< [stage][microbatch]

  uint64_t next_tag_ = 1;
};

}  // namespace sn::dist
