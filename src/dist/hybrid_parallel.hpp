// dist::HybridParallelTrainer — 2D hybrid parallelism: pipeline stages
// replicated across a second cluster axis.
//
// The cluster's S*R devices form a sim::GridView — S pipeline-stage rows by
// R replica columns. The net is cut into S stages (graph::NetPartitioner,
// memory-aware: every stage must fit its pool even at the full-offload
// floor) and each stage is instantiated R times, one Runtime per grid cell:
//
//                     replica 0   replica 1  ...  replica R-1
//        stage 0      dev 0       dev 1           dev R-1       ─┐ activations
//        stage 1      dev R       dev R+1          ...           ─┘ stream down
//          ...                                                      columns
//        stage S-1    ...                          dev S*R-1
//                     └────────── per-stage all-reduce ───────┘
//
// Each global batch is split across the R replica columns (contiguous
// shards, like data parallelism), and each shard into M microbatches driven
// through the column's GPipe fill/drain schedule (like pipeline
// parallelism): activations/gradients stream between corresponding stage
// replicas — cell (s, r) talks only to (s±1, r) — via
// TransferEngine::submit_p2p, gated on virtual landing events exactly as in
// dist::PipelineParallelTrainer (re-materialization at drain, per-microbatch
// pairwise gradient combination). After the drain, each stage's R replicas
// all-reduce their fused gradients over a SUB-GROUP Communicator spanning
// just that stage's row — S independent collectives on disjoint links — and
// then every cell steps SGD.
//
// Bit-parity: a replica's pairwise-combined microbatch gradient is one
// contiguous-shard subtree of the full-batch reduction; the per-stage
// all-reduce (kAuto: recursive halving-doubling for power-of-two R) combines
// the R subtrees in ascending rank order — the same binary-counter pairwise
// tree a single device builds. So S x R x M training is bit-identical
// (losses AND weights) to single-device training on the combined batch for
// power-of-two microbatch geometry — the paper's "scheduling never changes
// training results" invariant, extended across BOTH cluster axes at once.
// Same restriction as the 1D trainers: per-sample kernels only (no BatchNorm
// batch statistics, no dropout).
//
// Determinism: the trainer is single-threaded; every cross-cell dependency
// is an explicit virtual event (receivers machine-wait it; wall-clock bytes
// gate separately on TransferEngine::await_landing), so the schedule is
// bit-reproducible regardless of DMA-worker timing.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/peer_staging.hpp"
#include "core/runtime.hpp"
#include "dist/communicator.hpp"
#include "dist/schedule_engine.hpp"
#include "graph/partitioner.hpp"
#include "obs/cost_profile.hpp"
#include "obs/trace.hpp"
#include "sim/cluster.hpp"
#include "train/dataset.hpp"
#include "train/trainer.hpp"

namespace sn::dist {

struct HybridParallelConfig {
  int stages = 2;              ///< pipeline depth S (grid rows)
  int replicas = 2;            ///< replication width R (grid columns)
  int microbatches = 2;        ///< per replica column; must divide the shard
  int global_batch = 8;        ///< split across replicas, then microbatches
  SchedulePolicy schedule = SchedulePolicy::kGPipe;
  /// k1F1B only: a stage's fused gradient splits into ceil(bytes /
  /// bucket_bytes) buckets whose row all-reduces issue asynchronously as
  /// the stage's last microbatch retires, overlapping the remaining drain
  /// (DDP-style bucketing). kGPipe keeps the legacy post-drain synchronous
  /// update regardless.
  uint64_t bucket_bytes = 4ull << 20;
  /// Explicit route cut positions (NetPartitioner::partition_at); empty =
  /// cost- and memory-balanced automatic partition.
  std::vector<int> boundaries;
  /// Profile-guided partitioning: observed per-layer seconds from a prior
  /// traced run replace the analytic roofline in the cut balance. Must
  /// outlive the trainer. Null (default) keeps cuts — and therefore every
  /// schedule — byte-identical to the analytic path.
  const obs::CostProfile* cost_profile = nullptr;
  /// Peer-memory staging (core::PeerStagingGroup): evictions may ride idle
  /// P2P links into a peer cell's pool instead of the D2H uplink, each cell
  /// donating at most peer_donation_bytes of its pool to staged guests.
  /// Off by default: with it off, every existing schedule is byte-identical
  /// to previous releases; with it on, numerics are still bit-identical
  /// (staging only re-routes copies), only the virtual timeline changes.
  bool peer_staging = false;
  uint64_t peer_donation_bytes = 1ull << 30;
  sim::ClusterSpec cluster;    ///< device + link preset; .devices is overridden to S*R
  train::TrainConfig train;    ///< iterations / lr / momentum / seed
};

struct HybridParallelReport {
  std::vector<double> losses;               ///< combined global-batch loss
  std::vector<core::IterationStats> stats;  ///< grid-aggregate per iteration
  /// Per-cell stats: cell_stats[iter][stage][replica].
  std::vector<std::vector<std::vector<core::IterationStats>>> cell_stats;

  double first_loss() const { return losses.empty() ? 0.0 : losses.front(); }
  double last_loss() const { return losses.empty() ? 0.0 : losses.back(); }
};

class HybridParallelTrainer {
 public:
  /// Builds the FULL net at a given batch size; the trainer partitions it
  /// and rebuilds per-stage nets at the microbatch size, R copies each.
  using NetFactory = std::function<std::unique_ptr<graph::Net>(int batch)>;

  /// `base` supplies the runtime policy for every cell; its spec / cluster /
  /// device_id / stage / replica / loss_batch fields are overwritten per
  /// cell. S=1 degenerates to microbatched data parallelism, R=1 to the
  /// plain pipeline.
  HybridParallelTrainer(const NetFactory& factory, core::RuntimeOptions base,
                        HybridParallelConfig cfg);

  /// Run cfg.train.iterations hybrid rounds on synthetic data.
  HybridParallelReport run();

  int stages() const { return cfg_.stages; }
  int replicas() const { return cfg_.replicas; }
  int microbatches() const { return cfg_.microbatches; }
  int microbatch_size() const { return microbatch_; }
  int shard_batch() const { return shard_; }
  const ScheduleEngine& schedule() const { return *sched_; }
  /// Fused-gradient bucket count for `stage` (1 even when empty).
  int buckets(int stage) const { return buckets_[static_cast<size_t>(stage)]; }
  /// Stash bytes allocated per cell of `stage` (0 for stage 0).
  uint64_t stash_bytes(int stage) const;
  const graph::PartitionPlan& plan() const { return plan_; }
  core::Runtime& runtime(int stage, int replica) { return *runtimes_[cell(stage, replica)]; }
  graph::Net& stage_net(int stage, int replica) { return *stage_nets_[cell(stage, replica)]; }
  sim::Cluster& cluster() { return cluster_; }
  sim::GridView& grid() { return grid_; }
  Communicator& stage_communicator(int stage) { return *comms_[static_cast<size_t>(stage)]; }
  core::PeerStagingGroup& staging_group() { return staging_group_; }

  /// Attach a trace session: one recorder per grid device (ids stamped with
  /// the cell's stage/replica), hooked into the cell machines. Pass nullptr
  /// to detach. Recording is wall-clock-only — the replayed schedule and all
  /// numerics are unchanged (pinned by test_trace).
  void attach_trace(obs::TraceSession* session);

 private:
  /// Flat cell index, stage-major — matches sim::GridView device numbering.
  size_t cell(int stage, int replica) const {
    return static_cast<size_t>(stage) * static_cast<size_t>(cfg_.replicas) +
           static_cast<size_t>(replica);
  }
  core::TransferEngine& engine(int s, int r) {
    return runtimes_[cell(s, r)]->tensor_pool().engine();
  }
  float* device_ptr(int s, int r, const tensor::Tensor* t) {
    return runtimes_[cell(s, r)]->tensor_pool().device_ptr(t);
  }
  /// Stream cell (s, r)'s boundary activation of microbatch `m` down its
  /// column into the successor cell's stash slot `slot`.
  void send_activation(int s, int r, int m, int slot);
  /// Gate cell (s, r)'s forward on the activation landing; returns the
  /// compute-stall delta (the bubble share of this wait). `phase`/`m` label
  /// the recorded stall span (SchedulePhase as int; trace-only).
  double receive_activation(int s, int r, int phase, int m);
  void send_gradient(int s, int r);
  double receive_gradient(int s, int r, int phase, int m);
  /// Retire sender-side bookkeeping of streamed transfers (opportunistic;
  /// forced at iteration end).
  void retire_streams(bool force);

  HybridParallelConfig cfg_;
  bool real_;
  int shard_;       ///< per-replica batch = global_batch / replicas
  int microbatch_;  ///< per-microbatch batch = shard / microbatches
  std::unique_ptr<graph::Net> full_;  ///< probe net (microbatch size) the plan is cut from
  graph::PartitionPlan plan_;
  sim::Cluster cluster_;
  sim::GridView grid_;
  /// Declared before runtimes_: pools detach from the group in their
  /// destructors, so the group must outlive them.
  core::PeerStagingGroup staging_group_;
  std::vector<std::unique_ptr<graph::Net>> stage_nets_;      ///< [cell]
  std::vector<std::unique_ptr<core::Runtime>> runtimes_;     ///< [cell]
  std::vector<std::unique_ptr<Communicator>> comms_;         ///< [stage] replica-row groups
  train::SyntheticDataset dataset_;
  std::vector<float> batch_data_;
  std::vector<int32_t> batch_labels_;

  // Boundary tensors per cell (link s -> s+1 within a column; null on the
  // last stage row / first stage row respectively):
  std::vector<tensor::Tensor*> out_t_;       ///< cell (s,r): boundary activation (pinned)
  std::vector<tensor::Tensor*> out_grad_t_;  ///< cell (s,r): its gradient, landed from (s+1,r)
  std::vector<tensor::Tensor*> in_t_;        ///< cell (s,r): synthetic STAGE_IN tensor
  std::vector<tensor::Tensor*> in_grad_t_;   ///< cell (s,r): input gradient, streamed to (s-1,r)
  /// Cell (s,r)'s stashed boundary inputs, one per live stash SLOT (sized
  /// by ScheduleEngine::peak_stash_slots) — both the P2P landing site and
  /// the re-materialization source (real mode). Slot == microbatch under
  /// GPipe.
  std::vector<std::vector<std::vector<float>>> stash_;  ///< [cell][slot]

  /// In-flight (event, tag) FIFOs per cell link: sends push, receives pop —
  /// a link's transfers are consumed in ascending microbatch order under
  /// both policies.
  std::vector<std::deque<std::pair<sim::Event, uint64_t>>> act_q_, grad_q_;
  std::vector<std::pair<size_t, uint64_t>> in_flight_;  ///< (sender cell, tag) to retire

  /// Shared column-schedule engine (built once grad geometry fixes the
  /// per-stage bucket counts).
  std::unique_ptr<ScheduleEngine> sched_;
  std::vector<int> buckets_;  ///< [stage] fused-gradient bucket count

  /// Param-grad tensors per cell in net order (identical across a stage's
  /// replicas), per-microbatch gradient snapshots combined pairwise at drain
  /// end, and the fused flat buffers the per-stage all-reduce runs over
  /// (real mode).
  std::vector<std::vector<tensor::Tensor*>> grads_;          ///< [cell]
  std::vector<uint64_t> grad_elems_;                         ///< [stage]
  std::vector<std::vector<std::vector<float>>> grad_stash_;  ///< [cell][microbatch]
  std::vector<std::vector<float>> fused_;                    ///< [cell]

  uint64_t next_tag_ = 1;
};

}  // namespace sn::dist
