#include "dist/hybrid_parallel.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "dist/trainer_common.hpp"
#include "util/pairwise.hpp"

namespace sn::dist {

using detail::accumulate;
using detail::classes_of;
using detail::layer_by_name;
using detail::sample_shape_of;

HybridParallelTrainer::HybridParallelTrainer(const NetFactory& factory,
                                             core::RuntimeOptions base,
                                             HybridParallelConfig cfg)
    : cfg_([&] {
        if (cfg.stages < 1) throw std::invalid_argument("hybrid: stages >= 1");
        if (cfg.replicas < 1) throw std::invalid_argument("hybrid: replicas >= 1");
        if (cfg.microbatches < 1) throw std::invalid_argument("hybrid: microbatches >= 1");
        if (cfg.global_batch <= 0 || cfg.global_batch % cfg.replicas != 0) {
          throw std::invalid_argument(
              "hybrid: global_batch must divide evenly across replicas");
        }
        if ((cfg.global_batch / cfg.replicas) % cfg.microbatches != 0) {
          throw std::invalid_argument(
              "hybrid: the replica shard must divide evenly into microbatches");
        }
        if (!cfg.boundaries.empty() &&
            static_cast<int>(cfg.boundaries.size()) + 1 != cfg.stages) {
          throw std::invalid_argument("hybrid: need stages-1 explicit boundaries");
        }
        cfg.cluster.devices = cfg.stages * cfg.replicas;
        return cfg;
      }()),
      real_(base.real),
      shard_(cfg_.global_batch / cfg_.replicas),
      microbatch_(shard_ / cfg_.microbatches),
      full_([&] {
        auto net = factory(microbatch_);
        if (!net->finalized()) net->finalize();
        return net;
      }()),
      plan_([&] {
        // Memory-aware partition: every stage must fit the per-device pool
        // even at the full-offload floor. 1F1B never re-materializes the
        // last stage, so its balance discounts that stage's remat forward
        // (StageRecompute::kAllButLast); GPipe keeps the legacy weighting
        // and therefore the legacy cuts.
        // Profile-guided balance: a loaded CostProfile's observed medians
        // replace the roofline per layer (null = analytic, legacy cuts).
        graph::LayerCostFn observed;
        if (const obs::CostProfile* prof = cfg_.cost_profile) {
          observed = [prof](const std::string& name, double* fwd, double* bwd) {
            return prof->layer_seconds(name, fwd, bwd);
          };
        }
        graph::NetPartitioner part(*full_, cfg_.cluster.device, cfg_.cluster.link,
                                   base.device_capacity, std::move(observed));
        const graph::StageRecompute rc = cfg_.schedule == SchedulePolicy::k1F1B
                                             ? graph::StageRecompute::kAllButLast
                                             : graph::StageRecompute::kNone;
        return cfg_.boundaries.empty() ? part.partition(cfg_.stages, rc)
                                       : part.partition_at(cfg_.boundaries);
      }()),
      cluster_(cfg_.cluster),
      grid_(cluster_, cfg_.stages, cfg_.replicas),
      dataset_(sample_shape_of(*full_), classes_of(*full_), cfg_.train.data_seed) {
  const int S = cfg_.stages, R = cfg_.replicas;
  const size_t cells = static_cast<size_t>(S) * static_cast<size_t>(R);
  base.spec = cfg_.cluster.device;
  base.cluster = &cluster_;
  base.loss_batch = cfg_.global_batch;
  for (int s = 0; s < S; ++s) {
    for (int r = 0; r < R; ++r) {
      // Each cell gets its own stage-net clone: replicas share topology and
      // (via per-tensor-name seeded init) starting weights, never tensors.
      stage_nets_.push_back(graph::extract_stage(*full_, plan_, s));
      base.device_id = grid_.device(s, r);
      base.stage = s;
      base.replica = r;
      runtimes_.push_back(std::make_unique<core::Runtime>(*stage_nets_.back(), base));
      runtimes_.back()->initialize();
    }
  }

  // Peer-memory staging: enroll every cell's pool after parameters are
  // placed, so donation headroom reflects the steady-state footprint.
  if (cfg_.peer_staging) {
    for (auto& rt : runtimes_) {
      staging_group_.add_member(rt->tensor_pool(), cfg_.peer_donation_bytes);
    }
  }

  // Boundary tensors per column link (s, r) -> (s+1, r). The producers /
  // landing sites are pinned: no in-stage layer re-defines a landing site,
  // so liveness and eviction must never reclaim it mid-stream.
  out_t_.assign(cells, nullptr);
  out_grad_t_.assign(cells, nullptr);
  in_t_.assign(cells, nullptr);
  in_grad_t_.assign(cells, nullptr);
  act_q_.assign(cells, {});
  grad_q_.assign(cells, {});
  stash_.resize(cells);
  for (int s = 0; s + 1 < S; ++s) {
    const std::string& pname =
        full_->route()[static_cast<size_t>(plan_.stages[static_cast<size_t>(s)].boundary_layer)]
            ->name();
    for (int r = 0; r < R; ++r) {
      const size_t c = cell(s, r), cn = cell(s + 1, r);
      graph::Layer* prod = layer_by_name(*stage_nets_[c], pname);
      out_t_[c] = prod->output();
      out_grad_t_[c] = prod->output_grad();
      assert(out_grad_t_[c] && "boundary producer must carry a gradient");
      runtimes_[c]->pin_external(out_t_[c]);
      runtimes_[c]->pin_external(out_grad_t_[c]);
      runtimes_[c]->mark_external_pending(out_grad_t_[c]);

      graph::Layer* in = stage_nets_[cn]->input_layer();
      in_t_[cn] = in->output();
      in_grad_t_[cn] = in->output_grad();
      assert(in_grad_t_[cn] && "stage input must carry a gradient");
      runtimes_[cn]->pin_external(in_grad_t_[cn]);
      runtimes_[cn]->mark_external_pending(in_t_[cn]);
    }
  }

  // Param-grad tensors in net order — identical topology across a stage's
  // replicas, so index i refers to the same logical gradient row-wide.
  grads_.resize(cells);
  grad_elems_.assign(static_cast<size_t>(S), 0);
  grad_stash_.resize(cells);
  if (real_) fused_.resize(cells);
  for (int s = 0; s < S; ++s) {
    for (int r = 0; r < R; ++r) {
      const size_t c = cell(s, r);
      for (const auto& l : stage_nets_[c]->layers()) {
        for (tensor::Tensor* g : l->param_grads()) grads_[c].push_back(g);
      }
      assert(grads_[c].size() == grads_[cell(s, 0)].size() &&
             "stage replicas must be topologically identical");
    }
    for (const tensor::Tensor* g : grads_[cell(s, 0)]) {
      grad_elems_[static_cast<size_t>(s)] += static_cast<uint64_t>(g->shape().elems());
    }
    if (real_) {
      for (int r = 0; r < R; ++r) {
        grad_stash_[cell(s, r)].assign(
            static_cast<size_t>(cfg_.microbatches),
            std::vector<float>(static_cast<size_t>(grad_elems_[static_cast<size_t>(s)])));
        fused_[cell(s, r)].resize(static_cast<size_t>(grad_elems_[static_cast<size_t>(s)]));
      }
    }
  }

  // Fused-gradient bucket counts (k1F1B's async all-reduce granularity; the
  // engine emits a kBucketReady per bucket after each stage's last backward).
  buckets_.assign(static_cast<size_t>(S), 1);
  for (int s = 0; s < S; ++s) {
    const uint64_t bytes = grad_elems_[static_cast<size_t>(s)] * sizeof(float);
    if (cfg_.bucket_bytes > 0 && bytes > 0) {
      buckets_[static_cast<size_t>(s)] =
          static_cast<int>((bytes + cfg_.bucket_bytes - 1) / cfg_.bucket_bytes);
    }
  }
  sched_ = std::make_unique<ScheduleEngine>(
      cfg_.schedule, S, cfg_.microbatches,
      cfg_.schedule == SchedulePolicy::k1F1B ? buckets_ : std::vector<int>{});

  // Stash sized to the engine's real peak: all M slots under GPipe, at most
  // min(M, S-s+1) under 1F1B.
  if (real_) {
    for (int s = 1; s < S; ++s) {
      for (int r = 0; r < R; ++r) {
        const size_t c = cell(s, r);
        stash_[c].assign(static_cast<size_t>(sched_->peak_stash_slots(s)),
                         std::vector<float>(static_cast<size_t>(in_t_[c]->shape().elems())));
      }
    }
  }

  // One sub-group Communicator per stage row: ranks are replicas 0..R-1, on
  // the row's grid devices, sending through the row cells' own engines.
  for (int s = 0; s < S; ++s) {
    std::vector<core::TransferEngine*> row;
    for (int r = 0; r < R; ++r) row.push_back(&engine(s, r));
    comms_.push_back(
        std::make_unique<Communicator>(cluster_, grid_.replica_group(s), std::move(row)));
  }

  if (real_) {
    batch_data_.resize(static_cast<size_t>(cfg_.global_batch) * dataset_.sample_elems());
    batch_labels_.resize(static_cast<size_t>(cfg_.global_batch));
  }
}

void HybridParallelTrainer::attach_trace(obs::TraceSession* session) {
  for (int s = 0; s < cfg_.stages; ++s) {
    for (int r = 0; r < cfg_.replicas; ++r) {
      const int d = grid_.device(s, r);
      if (session) {
        obs::TraceRecorder& rec = session->recorder_for(d);
        rec.set_ids(d, s, r);
        grid_.machine(s, r).set_trace(&rec);
      } else {
        grid_.machine(s, r).set_trace(nullptr);
      }
    }
  }
}

uint64_t HybridParallelTrainer::stash_bytes(int stage) const {
  if (stage == 0) return 0;
  const size_t c = cell(stage, 0);
  return static_cast<uint64_t>(sched_->peak_stash_slots(stage)) *
         static_cast<uint64_t>(in_t_[c]->shape().elems()) * sizeof(float);
}

void HybridParallelTrainer::send_activation(int s, int r, int m, int slot) {
  (void)m;
  const size_t c = cell(s, r), cn = cell(s + 1, r);
  const uint64_t tag = next_tag_++;
  const float* src = device_ptr(s, r, out_t_[c]);
  float* dst = real_ ? stash_[cn][static_cast<size_t>(slot)].data() : nullptr;
  // Activation streaming rides the critical path: high priority, like the
  // Communicator's collective hops.
  sim::Event ev = engine(s, r).submit_p2p(tag, src, dst, out_t_[c]->bytes(),
                                          grid_.device(s + 1, r), grid_.machine(s, r).now(),
                                          core::TransferPriority::kHigh,
                                          obs::flow_id_p2p(tag, grid_.device(s, r)));
  act_q_[cn].push_back({ev, tag});
  in_flight_.push_back({c, tag});
}

double HybridParallelTrainer::receive_activation(int s, int r, int phase, int m) {
  const size_t c = cell(s, r);
  sim::Machine& mach = grid_.machine(s, r);
  auto [ev, tag] = act_q_[c].front();
  act_q_[c].pop_front();
  if (auto* rec = mach.trace()) {
    rec->set_stall_context(obs::StallSource::kPipelineRecv, "recv_act",
                           obs::schedule_phase_name(phase), m,
                           obs::flow_id_p2p(tag, grid_.device(s - 1, r)));
  }
  const double stall0 = mach.counters().stall_time;
  mach.wait_event(ev);  // virtual gate (deterministic)
  const double stalled = mach.counters().stall_time - stall0;
  if (auto* rec = mach.trace()) rec->clear_stall_context();
  // Physical gate: the sender's DMA worker must have let go of the bytes.
  engine(s - 1, r).await_landing(core::TransferDir::kP2P, tag);
  runtimes_[c]->mark_external_landed(in_t_[c]);
  return stalled;
}

void HybridParallelTrainer::send_gradient(int s, int r) {
  const size_t c = cell(s, r), cp = cell(s - 1, r);
  const uint64_t tag = next_tag_++;
  const float* src = device_ptr(s, r, in_grad_t_[c]);
  float* dst = device_ptr(s - 1, r, out_grad_t_[cp]);
  sim::Event ev = engine(s, r).submit_p2p(tag, src, dst, in_grad_t_[c]->bytes(),
                                          grid_.device(s - 1, r), grid_.machine(s, r).now(),
                                          core::TransferPriority::kHigh,
                                          obs::flow_id_p2p(tag, grid_.device(s, r)));
  grad_q_[cp].push_back({ev, tag});
  in_flight_.push_back({c, tag});
}

double HybridParallelTrainer::receive_gradient(int s, int r, int phase, int m) {
  const size_t c = cell(s, r);
  sim::Machine& mach = grid_.machine(s, r);
  auto [ev, tag] = grad_q_[c].front();
  grad_q_[c].pop_front();
  if (auto* rec = mach.trace()) {
    rec->set_stall_context(obs::StallSource::kPipelineRecv, "recv_grad",
                           obs::schedule_phase_name(phase), m,
                           obs::flow_id_p2p(tag, grid_.device(s + 1, r)));
  }
  const double stall0 = mach.counters().stall_time;
  mach.wait_event(ev);
  const double stalled = mach.counters().stall_time - stall0;
  if (auto* rec = mach.trace()) rec->clear_stall_context();
  engine(s + 1, r).await_landing(core::TransferDir::kP2P, tag);
  runtimes_[c]->mark_external_landed(out_grad_t_[c]);
  return stalled;
}

void HybridParallelTrainer::retire_streams(bool force) {
  auto it = in_flight_.begin();
  while (it != in_flight_.end()) {
    core::TransferEngine& eng = runtimes_[it->first]->tensor_pool().engine();
    if (eng.try_retire(core::TransferDir::kP2P, it->second)) {
      it = in_flight_.erase(it);
    } else if (force) {
      // Iteration boundary: the receiver consumed the bytes long ago; only
      // the sender's lagging clock keeps the ticket open. Wait it out.
      eng.wait(core::TransferDir::kP2P, it->second);
      it = in_flight_.erase(it);
    } else {
      ++it;
    }
  }
}

HybridParallelReport HybridParallelTrainer::run() {
  HybridParallelReport report;
  const int S = cfg_.stages, R = cfg_.replicas, M = cfg_.microbatches;
  const size_t cells = static_cast<size_t>(S) * static_cast<size_t>(R);
  const int64_t mb_elems = static_cast<int64_t>(microbatch_) * dataset_.sample_elems();

  for (int it = 0; it < cfg_.train.iterations; ++it) {
    if (real_) {
      dataset_.fill_batch(cfg_.global_batch, static_cast<uint64_t>(it), batch_data_.data(),
                          batch_labels_.data());
    }
    std::vector<std::array<double, 3>> bubble_ph(cells, {0.0, 0.0, 0.0});
    std::vector<core::IterationStats> cell_st(cells);
    std::vector<sim::MachineCounters> c0(cells);
    std::vector<double> now0(cells);
    for (int s = 0; s < S; ++s) {
      for (int r = 0; r < R; ++r) {
        const size_t c = cell(s, r);
        c0[c] = grid_.machine(s, r).counters();
        now0[c] = grid_.machine(s, r).now();
      }
    }
    /// loss_sums[r][m]: raw NLL sum of replica r's microbatch m.
    std::vector<std::vector<double>> loss_sums(
        static_cast<size_t>(R), std::vector<double>(static_cast<size_t>(M), 0.0));

    // Replica r's microbatch m holds the contiguous global samples
    // [r*shard + m*b, r*shard + (m+1)*b) — microbatches nest inside the
    // replica shard, so the pairwise combine below mirrors the full-batch
    // reduction tree (see header).
    auto stage_input = [&](int s, int r, int m) -> const float* {
      if (!real_) return nullptr;
      if (s == 0) {
        return batch_data_.data() +
               (static_cast<int64_t>(r) * shard_ * dataset_.sample_elems()) +
               static_cast<int64_t>(m) * mb_elems;
      }
      return stash_[cell(s, r)][static_cast<size_t>(sched_->stash_slot(s, m))].data();
    };
    auto stage_labels = [&](int s, int r, int m) -> const int32_t* {
      if (!real_ || s != S - 1) return nullptr;
      return batch_labels_.data() + static_cast<int64_t>(r) * shard_ +
             static_cast<int64_t>(m) * microbatch_;
    };

    // --- schedule replay: the engine's op list drives every replica column.
    // Columns are independent until the per-stage all-reduce; each op
    // executes across r = 0..R-1 (disjoint links) before the next, which
    // keeps the schedule deterministic and — under kGPipe — reproduces the
    // legacy (m, s, r) fill and (m desc, s desc, r) drain nests byte for
    // byte.
    std::vector<std::vector<AllreduceHandle>> ar_handles(static_cast<size_t>(S));
    for (const ScheduleOp& op : sched_->ops()) {
      const int s = op.stage, m = op.microbatch;
      const size_t ph = static_cast<size_t>(op.phase);
      switch (op.kind) {
        case ScheduleOpKind::kForward: {
          for (int r = 0; r < R; ++r) {
            const size_t c = cell(s, r);
            const double op_v0 = grid_.machine(s, r).now();
            runtimes_[c]->set_schedule_phase(static_cast<int>(op.phase), m);
            // Physical write-after-read gate: the forward overwrites out_t_,
            // which an in-flight activation send may still be reading (see
            // pipeline_parallel.cpp — 1F1B only; a no-op under GPipe).
            if (s + 1 < S && !act_q_[cell(s + 1, r)].empty()) {
              engine(s, r).await_landing(core::TransferDir::kP2P,
                                         act_q_[cell(s + 1, r)].back().second);
            }
            if (s > 0) {
              bubble_ph[c][ph] += receive_activation(s, r, static_cast<int>(op.phase), m);
            }
            core::IterationStats f =
                runtimes_[c]->forward_pass(stage_input(s, r, m), stage_labels(s, r, m));
            accumulate(cell_st[c], f);
            if (s == S - 1) {
              loss_sums[static_cast<size_t>(r)][static_cast<size_t>(m)] = f.loss_sum;
            }
            if (s > 0) {
              // Until the next activation lands in this slot, the stage
              // input's authoritative bytes live upstream.
              runtimes_[c]->mark_external_pending(in_t_[c]);
            }
            if (s + 1 < S) send_activation(s, r, m, sched_->stash_slot(s + 1, m));
            retire_streams(false);
            if (auto* rec = grid_.machine(s, r).trace()) {
              char opname[16];
              std::snprintf(opname, sizeof(opname), "F%d", m);
              rec->record_schedule_op(opname, op_v0, grid_.machine(s, r).now(),
                                      obs::schedule_phase_name(static_cast<int>(op.phase)), m);
            }
          }
          break;
        }
        case ScheduleOpKind::kBackward: {
          for (int r = 0; r < R; ++r) {
            const size_t c = cell(s, r);
            const double op_v0 = grid_.machine(s, r).now();
            runtimes_[c]->set_schedule_phase(static_cast<int>(op.phase), m);
            // Physical write-after-read gates: the re-materialization forward
            // overwrites out_t_ and the backward overwrites in_grad_t_ —
            // either may still be feeding an in-flight send's DMA read.
            if (s + 1 < S && !act_q_[cell(s + 1, r)].empty()) {
              engine(s, r).await_landing(core::TransferDir::kP2P,
                                         act_q_[cell(s + 1, r)].back().second);
            }
            if (s > 0 && !grad_q_[cell(s - 1, r)].empty()) {
              engine(s, r).await_landing(core::TransferDir::kP2P,
                                         grad_q_[cell(s - 1, r)].back().second);
            }
            if (op.recompute) {
              if (s > 0) {
                // Re-materialization reads the locally stashed input: valid.
                runtimes_[c]->mark_external_landed(in_t_[c]);
              }
              core::IterationStats rf =
                  runtimes_[c]->forward_pass(stage_input(s, r, m), stage_labels(s, r, m));
              accumulate(cell_st[c], rf);
            }
            if (s + 1 < S) {
              bubble_ph[c][ph] += receive_gradient(s, r, static_cast<int>(op.phase), m);
            }
            core::IterationStats b = runtimes_[c]->backward_pass(stage_labels(s, r, m));
            accumulate(cell_st[c], b);
            if (s + 1 < S) runtimes_[c]->mark_external_pending(out_grad_t_[c]);
            if (s > 0) {
              send_gradient(s, r);
              runtimes_[c]->mark_external_pending(in_t_[c]);
            }
            if (real_) {
              // Snapshot this microbatch's gradients; combined pairwise at
              // the stage's kBucketReady (k1F1B) or post-drain (kGPipe).
              auto& snap = grad_stash_[c][static_cast<size_t>(m)];
              uint64_t off = 0;
              for (tensor::Tensor* g : grads_[c]) {
                std::memcpy(snap.data() + off, device_ptr(s, r, g), g->bytes());
                off += static_cast<uint64_t>(g->shape().elems());
              }
            }
            retire_streams(false);
            if (auto* rec = grid_.machine(s, r).trace()) {
              char opname[16];
              std::snprintf(opname, sizeof(opname), "B%d", m);
              rec->record_schedule_op(opname, op_v0, grid_.machine(s, r).now(),
                                      obs::schedule_phase_name(static_cast<int>(op.phase)), m);
            }
          }
          break;
        }
        case ScheduleOpKind::kBucketReady: {
          // Stage s's last backward just retired (k1F1B only): combine its
          // microbatch gradients and issue this bucket's row all-reduce
          // ASYNCHRONOUSLY — upstream stages keep draining while the
          // collective's link/add chain plays out in virtual time.
          // Consecutive buckets chain on the row Communicator.
          const uint64_t elems = grad_elems_[static_cast<size_t>(s)];
          if (op.bucket == 0 && real_ && elems > 0) {
            for (int r = 0; r < R; ++r) {
              const size_t c = cell(s, r);
              util::PairwiseVecAccumulator acc(static_cast<size_t>(elems));
              for (int mm = 0; mm < M; ++mm) {
                // push() consumes the leaf in place; the stash is fully
                // rewritten by next iteration's snapshots.
                acc.push(grad_stash_[c][static_cast<size_t>(mm)].data());
              }
              acc.finish(fused_[c].data());
            }
          }
          // Even split, front-loaded remainder — same carving as the ring
          // algorithm's chunks. Bucketing is element-wise bit-identical to
          // the unbucketed collective (each element's rank-combine tree is
          // independent of segmentation).
          const uint64_t nb = static_cast<uint64_t>(buckets_[static_cast<size_t>(s)]);
          const uint64_t base = elems / nb, rem = elems % nb;
          const uint64_t b = static_cast<uint64_t>(op.bucket);
          const uint64_t off = b * base + std::min(b, rem);
          const uint64_t len = base + (b < rem ? 1 : 0);
          std::vector<float*> bufs(static_cast<size_t>(R), nullptr);
          if (real_ && len > 0) {
            for (int r = 0; r < R; ++r) {
              bufs[static_cast<size_t>(r)] = fused_[cell(s, r)].data() + off;
            }
          }
          std::vector<double> ar_v0(static_cast<size_t>(R));
          for (int r = 0; r < R; ++r) {
            ar_v0[static_cast<size_t>(r)] = grid_.machine(s, r).now();
          }
          ar_handles[static_cast<size_t>(s)].push_back(
              comms_[static_cast<size_t>(s)]->all_reduce_async(bufs, len));
          for (int r = 0; r < R; ++r) {
            if (auto* rec = grid_.machine(s, r).trace()) {
              char opname[16];
              std::snprintf(opname, sizeof(opname), "AR%d", op.bucket);
              rec->record_schedule_op(opname, ar_v0[static_cast<size_t>(r)],
                                      grid_.machine(s, r).now(),
                                      obs::schedule_phase_name(static_cast<int>(op.phase)), -1);
            }
          }
          break;
        }
      }
    }
    retire_streams(true);
    for (size_t c = 0; c < cells; ++c) runtimes_[c]->set_schedule_phase(-1, -1);

    // Drain end: the moment the last cell finishes its column schedule. Any
    // all-reduce virtual time past this point is EXPOSED (not overlapped).
    double drain_end = 0.0;
    for (int s = 0; s < S; ++s) {
      for (int r = 0; r < R; ++r) {
        const double t = grid_.machine(s, r).now();
        drain_end = std::max(drain_end, t);
        if (auto* rec = grid_.machine(s, r).trace()) rec->record_marker("drain-end", t);
      }
    }
    double ar_end_max = drain_end;

    // --- per-stage update: pairwise microbatch combine, replica all-reduce,
    // SGD. Replica r's M snapshots combine (binary counter, ascending m)
    // into its shard subtree; the row all-reduce (kAuto: halving-doubling
    // for power-of-two R) combines the R subtrees in ascending rank order —
    // together exactly the full-batch per-sample pairwise tree when b, M
    // and R are powers of two (util/pairwise.hpp).
    std::vector<double> allreduce_max(static_cast<size_t>(S), 0.0);
    if (cfg_.schedule == SchedulePolicy::k1F1B) {
      // Buckets were combined and issued inside the op loop; settle the
      // virtual completions (await) and measure exposure BEFORE any SGD
      // advances the clocks (stage rows are disjoint machine sets).
      for (int s = 0; s < S; ++s) {
        for (AllreduceHandle& h : ar_handles[static_cast<size_t>(s)]) {
          AllreduceStats ar = comms_[static_cast<size_t>(s)]->await(h);
          allreduce_max[static_cast<size_t>(s)] += ar.seconds;
          for (int r = 0; r < R; ++r) {
            cell_st[cell(s, r)].allreduce_seconds += ar.device_seconds[static_cast<size_t>(r)];
          }
        }
        for (int r = 0; r < R; ++r) {
          ar_end_max = std::max(ar_end_max, grid_.machine(s, r).now());
        }
      }
      for (int s = 0; s < S; ++s) {
        for (int r = 0; r < R; ++r) {
          const size_t c = cell(s, r);
          if (real_ && grad_elems_[static_cast<size_t>(s)] > 0) {
            uint64_t off = 0;
            for (tensor::Tensor* g : grads_[c]) {
              std::memcpy(device_ptr(s, r, g), fused_[c].data() + off, g->bytes());
              off += static_cast<uint64_t>(g->shape().elems());
            }
          }
          runtimes_[c]->apply_sgd(cfg_.train.lr, cfg_.train.momentum, cfg_.train.weight_decay);
          runtimes_[c]->advance_iteration();
        }
      }
    } else {
      // kGPipe: legacy fully synchronous post-drain update, byte-identical
      // to the pre-engine trainer (allreduce_sum = issue + immediate await).
      for (int s = 0; s < S; ++s) {
        std::vector<float*> bufs(static_cast<size_t>(R), nullptr);
        if (real_ && grad_elems_[static_cast<size_t>(s)] > 0) {
          for (int r = 0; r < R; ++r) {
            const size_t c = cell(s, r);
            util::PairwiseVecAccumulator acc(
                static_cast<size_t>(grad_elems_[static_cast<size_t>(s)]));
            for (int m = 0; m < M; ++m) {
              // push() consumes the leaf in place; the stash is fully
              // rewritten by next iteration's snapshots.
              acc.push(grad_stash_[c][static_cast<size_t>(m)].data());
            }
            acc.finish(fused_[c].data());
            bufs[static_cast<size_t>(r)] = fused_[c].data();
          }
        }
        AllreduceStats ar = comms_[static_cast<size_t>(s)]->allreduce_sum(
            bufs, grad_elems_[static_cast<size_t>(s)]);
        allreduce_max[static_cast<size_t>(s)] = ar.seconds;
        for (int r = 0; r < R; ++r) {
          ar_end_max = std::max(ar_end_max, grid_.machine(s, r).now());
        }
        for (int r = 0; r < R; ++r) {
          const size_t c = cell(s, r);
          cell_st[c].allreduce_seconds = ar.device_seconds[static_cast<size_t>(r)];
          if (real_ && grad_elems_[static_cast<size_t>(s)] > 0) {
            uint64_t off = 0;
            for (tensor::Tensor* g : grads_[c]) {
              std::memcpy(device_ptr(s, r, g), fused_[c].data() + off, g->bytes());
              off += static_cast<uint64_t>(g->shape().elems());
            }
          }
          runtimes_[c]->apply_sgd(cfg_.train.lr, cfg_.train.momentum, cfg_.train.weight_decay);
          runtimes_[c]->advance_iteration();
        }
      }
    }
    const double allreduce_exposed = std::max(0.0, ar_end_max - drain_end);

    // --- telemetry ----------------------------------------------------------
    // Global loss tree: microbatches nest in replica shards, shards combine
    // in rank order — the same grouping the gradients used.
    double loss_sum = 0.0;
    if (real_) {
      std::vector<double> replica_sums(static_cast<size_t>(R), 0.0);
      for (int r = 0; r < R; ++r) {
        replica_sums[static_cast<size_t>(r)] = util::pairwise_sum<double>(
            static_cast<uint64_t>(M),
            [&](uint64_t i) { return loss_sums[static_cast<size_t>(r)][i]; });
      }
      loss_sum = Communicator::combine_loss_sums(replica_sums);
    }
    const double loss = loss_sum / cfg_.global_batch;
    core::IterationStats agg;
    agg.loss = loss;
    agg.loss_sum = loss_sum;
    agg.allreduce_exposed_seconds = allreduce_exposed;
    for (int s = 0; s < S; ++s) {
      agg.allreduce_seconds = std::max(agg.allreduce_seconds, allreduce_max[static_cast<size_t>(s)]);
    }
    std::vector<std::vector<core::IterationStats>> grid_st(
        static_cast<size_t>(S), std::vector<core::IterationStats>(static_cast<size_t>(R)));
    for (int s = 0; s < S; ++s) {
      for (int r = 0; r < R; ++r) {
        const size_t c = cell(s, r);
        auto& st = cell_st[c];
        const int d = grid_.device(s, r);
        const auto& c1 = cluster_.machine(d).counters();
        st.loss = loss;
        st.loss_sum = loss_sum;
        st.seconds = cluster_.machine(d).now() - now0[c];
        st.stall_seconds = c1.stall_time - c0[c].stall_time;
        st.bubble_fill_seconds = bubble_ph[c][0];
        st.bubble_steady_seconds = bubble_ph[c][1];
        st.bubble_drain_seconds = bubble_ph[c][2];
        st.bubble_seconds = bubble_ph[c][0] + bubble_ph[c][1] + bubble_ph[c][2];
        st.p2p_bytes = c1.bytes_p2p - c0[c].bytes_p2p;
        st.p2p_seconds = c1.seconds_p2p - c0[c].seconds_p2p;

        agg.seconds = std::max(agg.seconds, st.seconds);
        agg.stall_seconds = std::max(agg.stall_seconds, st.stall_seconds);
        agg.bubble_seconds += st.bubble_seconds;
        agg.bubble_fill_seconds += st.bubble_fill_seconds;
        agg.bubble_steady_seconds += st.bubble_steady_seconds;
        agg.bubble_drain_seconds += st.bubble_drain_seconds;
        agg.peak_mem = std::max(agg.peak_mem, st.peak_mem);
        agg.host_peak = std::max(agg.host_peak, st.host_peak);
        agg.p2p_bytes += st.p2p_bytes;
        agg.p2p_seconds += st.p2p_seconds;
        agg.bytes_d2h += st.bytes_d2h;
        agg.bytes_h2d += st.bytes_h2d;
        agg.evictions += st.evictions;
        agg.peer_stage_count += st.peer_stage_count;
        agg.peer_stage_bytes += st.peer_stage_bytes;
        agg.peer_fetch_count += st.peer_fetch_count;
        agg.peer_spill_count += st.peer_spill_count;
        agg.extra_forwards += st.extra_forwards;
        agg.allocs += st.allocs;
        agg.dma_copies += st.dma_copies;
        grid_st[static_cast<size_t>(s)][static_cast<size_t>(r)] = st;
      }
    }
    report.losses.push_back(loss);
    report.stats.push_back(agg);
    report.cell_stats.push_back(std::move(grid_st));
  }
  return report;
}

}  // namespace sn::dist
