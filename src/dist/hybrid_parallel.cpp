#include "dist/hybrid_parallel.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "dist/trainer_common.hpp"
#include "util/pairwise.hpp"

namespace sn::dist {

using detail::accumulate;
using detail::classes_of;
using detail::layer_by_name;
using detail::sample_shape_of;

HybridParallelTrainer::HybridParallelTrainer(const NetFactory& factory,
                                             core::RuntimeOptions base,
                                             HybridParallelConfig cfg)
    : cfg_([&] {
        if (cfg.stages < 1) throw std::invalid_argument("hybrid: stages >= 1");
        if (cfg.replicas < 1) throw std::invalid_argument("hybrid: replicas >= 1");
        if (cfg.microbatches < 1) throw std::invalid_argument("hybrid: microbatches >= 1");
        if (cfg.global_batch <= 0 || cfg.global_batch % cfg.replicas != 0) {
          throw std::invalid_argument(
              "hybrid: global_batch must divide evenly across replicas");
        }
        if ((cfg.global_batch / cfg.replicas) % cfg.microbatches != 0) {
          throw std::invalid_argument(
              "hybrid: the replica shard must divide evenly into microbatches");
        }
        if (!cfg.boundaries.empty() &&
            static_cast<int>(cfg.boundaries.size()) + 1 != cfg.stages) {
          throw std::invalid_argument("hybrid: need stages-1 explicit boundaries");
        }
        cfg.cluster.devices = cfg.stages * cfg.replicas;
        return cfg;
      }()),
      real_(base.real),
      shard_(cfg_.global_batch / cfg_.replicas),
      microbatch_(shard_ / cfg_.microbatches),
      full_([&] {
        auto net = factory(microbatch_);
        if (!net->finalized()) net->finalize();
        return net;
      }()),
      plan_([&] {
        // Memory-aware partition: every stage must fit the per-device pool
        // even at the full-offload floor.
        graph::NetPartitioner part(*full_, cfg_.cluster.device, cfg_.cluster.link,
                                   base.device_capacity);
        return cfg_.boundaries.empty() ? part.partition(cfg_.stages)
                                       : part.partition_at(cfg_.boundaries);
      }()),
      cluster_(cfg_.cluster),
      grid_(cluster_, cfg_.stages, cfg_.replicas),
      dataset_(sample_shape_of(*full_), classes_of(*full_), cfg_.train.data_seed) {
  const int S = cfg_.stages, R = cfg_.replicas;
  const size_t cells = static_cast<size_t>(S) * static_cast<size_t>(R);
  base.spec = cfg_.cluster.device;
  base.cluster = &cluster_;
  base.loss_batch = cfg_.global_batch;
  for (int s = 0; s < S; ++s) {
    for (int r = 0; r < R; ++r) {
      // Each cell gets its own stage-net clone: replicas share topology and
      // (via per-tensor-name seeded init) starting weights, never tensors.
      stage_nets_.push_back(graph::extract_stage(*full_, plan_, s));
      base.device_id = grid_.device(s, r);
      base.stage = s;
      base.replica = r;
      runtimes_.push_back(std::make_unique<core::Runtime>(*stage_nets_.back(), base));
      runtimes_.back()->initialize();
    }
  }

  // Boundary tensors per column link (s, r) -> (s+1, r). The producers /
  // landing sites are pinned: no in-stage layer re-defines a landing site,
  // so liveness and eviction must never reclaim it mid-stream.
  out_t_.assign(cells, nullptr);
  out_grad_t_.assign(cells, nullptr);
  in_t_.assign(cells, nullptr);
  in_grad_t_.assign(cells, nullptr);
  act_ev_.assign(cells, {});
  grad_ev_.assign(cells, {});
  act_tag_.assign(cells, 0);
  grad_tag_.assign(cells, 0);
  stash_.resize(cells);
  for (int s = 0; s + 1 < S; ++s) {
    const std::string& pname =
        full_->route()[static_cast<size_t>(plan_.stages[static_cast<size_t>(s)].boundary_layer)]
            ->name();
    for (int r = 0; r < R; ++r) {
      const size_t c = cell(s, r), cn = cell(s + 1, r);
      graph::Layer* prod = layer_by_name(*stage_nets_[c], pname);
      out_t_[c] = prod->output();
      out_grad_t_[c] = prod->output_grad();
      assert(out_grad_t_[c] && "boundary producer must carry a gradient");
      runtimes_[c]->pin_external(out_t_[c]);
      runtimes_[c]->pin_external(out_grad_t_[c]);
      runtimes_[c]->mark_external_pending(out_grad_t_[c]);

      graph::Layer* in = stage_nets_[cn]->input_layer();
      in_t_[cn] = in->output();
      in_grad_t_[cn] = in->output_grad();
      assert(in_grad_t_[cn] && "stage input must carry a gradient");
      runtimes_[cn]->pin_external(in_grad_t_[cn]);
      runtimes_[cn]->mark_external_pending(in_t_[cn]);
      if (real_) {
        stash_[cn].assign(static_cast<size_t>(cfg_.microbatches),
                          std::vector<float>(static_cast<size_t>(in_t_[cn]->shape().elems())));
      }
    }
  }

  // Param-grad tensors in net order — identical topology across a stage's
  // replicas, so index i refers to the same logical gradient row-wide.
  grads_.resize(cells);
  grad_elems_.assign(static_cast<size_t>(S), 0);
  grad_stash_.resize(cells);
  if (real_) fused_.resize(cells);
  for (int s = 0; s < S; ++s) {
    for (int r = 0; r < R; ++r) {
      const size_t c = cell(s, r);
      for (const auto& l : stage_nets_[c]->layers()) {
        for (tensor::Tensor* g : l->param_grads()) grads_[c].push_back(g);
      }
      assert(grads_[c].size() == grads_[cell(s, 0)].size() &&
             "stage replicas must be topologically identical");
    }
    for (const tensor::Tensor* g : grads_[cell(s, 0)]) {
      grad_elems_[static_cast<size_t>(s)] += static_cast<uint64_t>(g->shape().elems());
    }
    if (real_) {
      for (int r = 0; r < R; ++r) {
        grad_stash_[cell(s, r)].assign(
            static_cast<size_t>(cfg_.microbatches),
            std::vector<float>(static_cast<size_t>(grad_elems_[static_cast<size_t>(s)])));
        fused_[cell(s, r)].resize(static_cast<size_t>(grad_elems_[static_cast<size_t>(s)]));
      }
    }
  }

  // One sub-group Communicator per stage row: ranks are replicas 0..R-1, on
  // the row's grid devices, sending through the row cells' own engines.
  for (int s = 0; s < S; ++s) {
    std::vector<core::TransferEngine*> row;
    for (int r = 0; r < R; ++r) row.push_back(&engine(s, r));
    comms_.push_back(
        std::make_unique<Communicator>(cluster_, grid_.replica_group(s), std::move(row)));
  }

  if (real_) {
    batch_data_.resize(static_cast<size_t>(cfg_.global_batch) * dataset_.sample_elems());
    batch_labels_.resize(static_cast<size_t>(cfg_.global_batch));
  }
}

void HybridParallelTrainer::send_activation(int s, int r, int m) {
  const size_t c = cell(s, r), cn = cell(s + 1, r);
  const uint64_t tag = next_tag_++;
  const float* src = device_ptr(s, r, out_t_[c]);
  float* dst = real_ ? stash_[cn][static_cast<size_t>(m)].data() : nullptr;
  // Activation streaming rides the critical path: high priority, like the
  // Communicator's collective hops.
  act_ev_[cn] = engine(s, r).submit_p2p(tag, src, dst, out_t_[c]->bytes(),
                                        grid_.device(s + 1, r), grid_.machine(s, r).now(),
                                        core::TransferPriority::kHigh);
  act_tag_[cn] = tag;
  in_flight_.push_back({c, tag});
}

void HybridParallelTrainer::receive_activation(int s, int r, std::vector<double>& bubble) {
  const size_t c = cell(s, r);
  sim::Machine& mach = grid_.machine(s, r);
  const double stall0 = mach.counters().stall_time;
  mach.wait_event(act_ev_[c]);  // virtual gate (deterministic)
  bubble[c] += mach.counters().stall_time - stall0;
  // Physical gate: the sender's DMA worker must have let go of the bytes.
  engine(s - 1, r).await_landing(core::TransferDir::kP2P, act_tag_[c]);
  runtimes_[c]->mark_external_landed(in_t_[c]);
}

void HybridParallelTrainer::send_gradient(int s, int r) {
  const size_t c = cell(s, r), cp = cell(s - 1, r);
  const uint64_t tag = next_tag_++;
  const float* src = device_ptr(s, r, in_grad_t_[c]);
  float* dst = device_ptr(s - 1, r, out_grad_t_[cp]);
  grad_ev_[cp] = engine(s, r).submit_p2p(tag, src, dst, in_grad_t_[c]->bytes(),
                                         grid_.device(s - 1, r), grid_.machine(s, r).now(),
                                         core::TransferPriority::kHigh);
  grad_tag_[cp] = tag;
  in_flight_.push_back({c, tag});
}

void HybridParallelTrainer::receive_gradient(int s, int r, std::vector<double>& bubble) {
  const size_t c = cell(s, r);
  sim::Machine& mach = grid_.machine(s, r);
  const double stall0 = mach.counters().stall_time;
  mach.wait_event(grad_ev_[c]);
  bubble[c] += mach.counters().stall_time - stall0;
  engine(s + 1, r).await_landing(core::TransferDir::kP2P, grad_tag_[c]);
  runtimes_[c]->mark_external_landed(out_grad_t_[c]);
}

void HybridParallelTrainer::retire_streams(bool force) {
  auto it = in_flight_.begin();
  while (it != in_flight_.end()) {
    core::TransferEngine& eng = runtimes_[it->first]->tensor_pool().engine();
    if (eng.try_retire(core::TransferDir::kP2P, it->second)) {
      it = in_flight_.erase(it);
    } else if (force) {
      // Iteration boundary: the receiver consumed the bytes long ago; only
      // the sender's lagging clock keeps the ticket open. Wait it out.
      eng.wait(core::TransferDir::kP2P, it->second);
      it = in_flight_.erase(it);
    } else {
      ++it;
    }
  }
}

HybridParallelReport HybridParallelTrainer::run() {
  HybridParallelReport report;
  const int S = cfg_.stages, R = cfg_.replicas, M = cfg_.microbatches;
  const size_t cells = static_cast<size_t>(S) * static_cast<size_t>(R);
  const int64_t mb_elems = static_cast<int64_t>(microbatch_) * dataset_.sample_elems();

  for (int it = 0; it < cfg_.train.iterations; ++it) {
    if (real_) {
      dataset_.fill_batch(cfg_.global_batch, static_cast<uint64_t>(it), batch_data_.data(),
                          batch_labels_.data());
    }
    std::vector<double> bubble(cells, 0.0);
    std::vector<core::IterationStats> cell_st(cells);
    std::vector<sim::MachineCounters> c0(cells);
    std::vector<double> now0(cells);
    for (int s = 0; s < S; ++s) {
      for (int r = 0; r < R; ++r) {
        const size_t c = cell(s, r);
        c0[c] = grid_.machine(s, r).counters();
        now0[c] = grid_.machine(s, r).now();
      }
    }
    /// loss_sums[r][m]: raw NLL sum of replica r's microbatch m.
    std::vector<std::vector<double>> loss_sums(
        static_cast<size_t>(R), std::vector<double>(static_cast<size_t>(M), 0.0));

    // Replica r's microbatch m holds the contiguous global samples
    // [r*shard + m*b, r*shard + (m+1)*b) — microbatches nest inside the
    // replica shard, so the pairwise combine below mirrors the full-batch
    // reduction tree (see header).
    auto stage_input = [&](int s, int r, int m) -> const float* {
      if (!real_) return nullptr;
      if (s == 0) {
        return batch_data_.data() +
               (static_cast<int64_t>(r) * shard_ * dataset_.sample_elems()) +
               static_cast<int64_t>(m) * mb_elems;
      }
      return stash_[cell(s, r)][static_cast<size_t>(m)].data();
    };
    auto stage_labels = [&](int s, int r, int m) -> const int32_t* {
      if (!real_ || s != S - 1) return nullptr;
      return batch_labels_.data() + static_cast<int64_t>(r) * shard_ +
             static_cast<int64_t>(m) * microbatch_;
    };

    // --- fill: forward every microbatch down every replica column ----------
    // Columns are independent until the post-drain all-reduce; interleaving
    // them stage-by-stage keeps the schedule deterministic while their
    // transfers ride disjoint links.
    for (int m = 0; m < M; ++m) {
      for (int s = 0; s < S; ++s) {
        for (int r = 0; r < R; ++r) {
          const size_t c = cell(s, r);
          if (s > 0) receive_activation(s, r, bubble);
          core::IterationStats f =
              runtimes_[c]->forward_pass(stage_input(s, r, m), stage_labels(s, r, m));
          accumulate(cell_st[c], f);
          if (s == S - 1) loss_sums[static_cast<size_t>(r)][static_cast<size_t>(m)] = f.loss_sum;
          if (s > 0) {
            // Until the next microbatch's activation lands, the stage
            // input's authoritative bytes live upstream.
            runtimes_[c]->mark_external_pending(in_t_[c]);
          }
          if (s + 1 < S) send_activation(s, r, m);
          retire_streams(false);
        }
      }
    }

    // --- drain: retire microbatches newest-first ----------------------------
    // The newest microbatch's activations are still resident in every cell;
    // older ones are re-materialized from the stashed stage input (GPipe
    // re-materialization) before their backward runs.
    for (int m = M - 1; m >= 0; --m) {
      for (int s = S - 1; s >= 0; --s) {
        for (int r = 0; r < R; ++r) {
          const size_t c = cell(s, r);
          if (m < M - 1) {
            if (s > 0) {
              // Re-materialization reads the locally stashed input: valid.
              runtimes_[c]->mark_external_landed(in_t_[c]);
            }
            core::IterationStats rf =
                runtimes_[c]->forward_pass(stage_input(s, r, m), stage_labels(s, r, m));
            accumulate(cell_st[c], rf);
          }
          if (s + 1 < S) receive_gradient(s, r, bubble);
          core::IterationStats b = runtimes_[c]->backward_pass(stage_labels(s, r, m));
          accumulate(cell_st[c], b);
          if (s + 1 < S) runtimes_[c]->mark_external_pending(out_grad_t_[c]);
          if (s > 0) {
            send_gradient(s, r);
            runtimes_[c]->mark_external_pending(in_t_[c]);
          }
          if (real_) {
            // Snapshot this microbatch's gradients; combined pairwise below.
            auto& snap = grad_stash_[c][static_cast<size_t>(m)];
            uint64_t off = 0;
            for (tensor::Tensor* g : grads_[c]) {
              std::memcpy(snap.data() + off, device_ptr(s, r, g), g->bytes());
              off += static_cast<uint64_t>(g->shape().elems());
            }
          }
          retire_streams(false);
        }
      }
    }
    retire_streams(true);

    // --- per-stage update: pairwise microbatch combine, replica all-reduce,
    // SGD. Replica r's M snapshots combine (binary counter, ascending m)
    // into its shard subtree; the row all-reduce (kAuto: halving-doubling
    // for power-of-two R) combines the R subtrees in ascending rank order —
    // together exactly the full-batch per-sample pairwise tree when b, M
    // and R are powers of two (util/pairwise.hpp).
    std::vector<double> allreduce_max(static_cast<size_t>(S), 0.0);
    for (int s = 0; s < S; ++s) {
      std::vector<float*> bufs(static_cast<size_t>(R), nullptr);
      if (real_ && grad_elems_[static_cast<size_t>(s)] > 0) {
        for (int r = 0; r < R; ++r) {
          const size_t c = cell(s, r);
          util::PairwiseVecAccumulator acc(
              static_cast<size_t>(grad_elems_[static_cast<size_t>(s)]));
          for (int m = 0; m < M; ++m) {
            // push() consumes the leaf in place; the stash is fully
            // rewritten by next iteration's snapshots.
            acc.push(grad_stash_[c][static_cast<size_t>(m)].data());
          }
          acc.finish(fused_[c].data());
          bufs[static_cast<size_t>(r)] = fused_[c].data();
        }
      }
      AllreduceStats ar =
          comms_[static_cast<size_t>(s)]->allreduce_sum(bufs, grad_elems_[static_cast<size_t>(s)]);
      allreduce_max[static_cast<size_t>(s)] = ar.seconds;
      for (int r = 0; r < R; ++r) {
        const size_t c = cell(s, r);
        cell_st[c].allreduce_seconds = ar.device_seconds[static_cast<size_t>(r)];
        if (real_ && grad_elems_[static_cast<size_t>(s)] > 0) {
          uint64_t off = 0;
          for (tensor::Tensor* g : grads_[c]) {
            std::memcpy(device_ptr(s, r, g), fused_[c].data() + off, g->bytes());
            off += static_cast<uint64_t>(g->shape().elems());
          }
        }
        runtimes_[c]->apply_sgd(cfg_.train.lr, cfg_.train.momentum, cfg_.train.weight_decay);
        runtimes_[c]->advance_iteration();
      }
    }

    // --- telemetry ----------------------------------------------------------
    // Global loss tree: microbatches nest in replica shards, shards combine
    // in rank order — the same grouping the gradients used.
    double loss_sum = 0.0;
    if (real_) {
      std::vector<double> replica_sums(static_cast<size_t>(R), 0.0);
      for (int r = 0; r < R; ++r) {
        replica_sums[static_cast<size_t>(r)] = util::pairwise_sum<double>(
            static_cast<uint64_t>(M),
            [&](uint64_t i) { return loss_sums[static_cast<size_t>(r)][i]; });
      }
      loss_sum = Communicator::combine_loss_sums(replica_sums);
    }
    const double loss = loss_sum / cfg_.global_batch;
    core::IterationStats agg;
    agg.loss = loss;
    agg.loss_sum = loss_sum;
    for (int s = 0; s < S; ++s) {
      agg.allreduce_seconds = std::max(agg.allreduce_seconds, allreduce_max[static_cast<size_t>(s)]);
    }
    std::vector<std::vector<core::IterationStats>> grid_st(
        static_cast<size_t>(S), std::vector<core::IterationStats>(static_cast<size_t>(R)));
    for (int s = 0; s < S; ++s) {
      for (int r = 0; r < R; ++r) {
        const size_t c = cell(s, r);
        auto& st = cell_st[c];
        const int d = grid_.device(s, r);
        const auto& c1 = cluster_.machine(d).counters();
        st.loss = loss;
        st.loss_sum = loss_sum;
        st.seconds = cluster_.machine(d).now() - now0[c];
        st.stall_seconds = c1.stall_time - c0[c].stall_time;
        st.bubble_seconds = bubble[c];
        st.p2p_bytes = c1.bytes_p2p - c0[c].bytes_p2p;
        st.p2p_seconds = c1.seconds_p2p - c0[c].seconds_p2p;

        agg.seconds = std::max(agg.seconds, st.seconds);
        agg.stall_seconds = std::max(agg.stall_seconds, st.stall_seconds);
        agg.bubble_seconds += st.bubble_seconds;
        agg.peak_mem = std::max(agg.peak_mem, st.peak_mem);
        agg.host_peak = std::max(agg.host_peak, st.host_peak);
        agg.p2p_bytes += st.p2p_bytes;
        agg.p2p_seconds += st.p2p_seconds;
        agg.bytes_d2h += st.bytes_d2h;
        agg.bytes_h2d += st.bytes_h2d;
        agg.evictions += st.evictions;
        agg.extra_forwards += st.extra_forwards;
        agg.allocs += st.allocs;
        agg.dma_copies += st.dma_copies;
        grid_st[static_cast<size_t>(s)][static_cast<size_t>(r)] = st;
      }
    }
    report.losses.push_back(loss);
    report.stats.push_back(agg);
    report.cell_stats.push_back(std::move(grid_st));
  }
  return report;
}

}  // namespace sn::dist
