// Internal helpers shared by the dist/ trainers (data-parallel, pipeline,
// hybrid). Not part of the public dist/ surface.
#pragma once

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/telemetry.hpp"
#include "graph/net.hpp"
#include "tensor/tensor.hpp"

namespace sn::dist::detail {

inline tensor::Shape sample_shape_of(const graph::Net& net) {
  tensor::Shape s = net.input_layer()->out_shape();
  s.n = 1;
  return s;
}

/// Class count for the synthetic dataset; stage nets without a loss layer
/// (every pipeline stage but the last) fall back to a placeholder.
inline int classes_of(const graph::Net& net) {
  const graph::Layer* loss = net.loss_layer();
  return loss ? static_cast<int>(loss->out_shape().c) : 2;
}

inline graph::Layer* layer_by_name(graph::Net& net, const std::string& name) {
  for (const auto& l : net.layers()) {
    if (l->name() == name) return l.get();
  }
  throw std::logic_error("dist: stage net lost layer " + name);
}

/// Sum the additive per-pass counters into a per-device iteration aggregate
/// (time/stall/bubble/p2p are recomputed from machine counters at iteration
/// end — the spans do not cover the trainer's own waits).
inline void accumulate(core::IterationStats& a, const core::IterationStats& p) {
  a.peak_mem = std::max(a.peak_mem, p.peak_mem);
  a.host_peak = std::max(a.host_peak, p.host_peak);
  a.bytes_d2h += p.bytes_d2h;
  a.bytes_h2d += p.bytes_h2d;
  a.extra_forwards += p.extra_forwards;
  a.evictions += p.evictions;
  a.cache_hits += p.cache_hits;
  a.cache_misses += p.cache_misses;
  a.allocs += p.allocs;
  a.malloc_seconds += p.malloc_seconds;
  a.dma_copies += p.dma_copies;
  a.d2h_seconds += p.d2h_seconds;
  a.h2d_seconds += p.h2d_seconds;
  a.peer_stage_count += p.peer_stage_count;
  a.peer_stage_bytes += p.peer_stage_bytes;
  a.peer_fetch_count += p.peer_fetch_count;
  a.peer_spill_count += p.peer_spill_count;
}

}  // namespace sn::dist::detail
