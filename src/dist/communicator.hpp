// dist::Communicator — collective operations over the simulated P2P fabric.
//
// Implements the classic bandwidth-optimal ring all-reduce: a chunked
// reduce-scatter (N-1 hops; after it device d owns the fully reduced chunk
// (d+1) mod N) followed by a ring all-gather (N-1 hops broadcasting the
// reduced chunks). Every hop is a TransferEngine::submit_p2p on the SENDING
// device's engine, so collectives share the tag-based submit/poll/wait layer
// (and its telemetry) with offload/prefetch traffic, and virtual time falls
// out of the link streams: hop k+1 chains on hop k's arrival through the
// explicit not_before dependency. On the async backend each directed link
// additionally gets its own DMA worker, so ring-neighbor hops drain
// physically in parallel and never queue behind offload/prefetch copies.
//
// Numerics: when the buffers are backed, the adds really execute, and every
// device finishes with bit-identical bytes for any N (each chunk is reduced
// once, on its owner, then broadcast). For N = 2 the reduction is a single
// two-operand float add per element — commutative in IEEE — which is what
// makes 2-device data-parallel gradients match a single-device run over the
// combined batch bit for bit (the per-device partials are pairwise subtrees;
// see util/pairwise.hpp). For N >= 4 the ring accumulates chunks in rotated
// rank order, which is deterministic but can differ from the single-device
// pairwise tree in final-ulp rounding.
#pragma once

#include <cstdint>
#include <vector>

#include "core/transfer_engine.hpp"
#include "sim/cluster.hpp"

namespace sn::dist {

struct AllreduceStats {
  double seconds = 0.0;                ///< slowest device's time in the collective
  std::vector<double> device_seconds;  ///< per-device time in the collective
  uint64_t p2p_bytes = 0;              ///< bytes sent per device (ring: symmetric)
  uint64_t chunks = 0;                 ///< ring chunks (= devices)
};

class Communicator {
 public:
  /// `engines[d]` must be device d's TransferEngine on `cluster`'s machine d.
  Communicator(sim::Cluster& cluster, std::vector<core::TransferEngine*> engines);

  /// In-place sum all-reduce: after the call every bufs[d][0..elems) holds the
  /// elementwise sum over devices. bufs[d] may be null when running unbacked
  /// (simulation) — virtual time and telemetry advance, no bytes move.
  AllreduceStats allreduce_sum(const std::vector<float*>& bufs, uint64_t elems);

  /// Pairwise (rank-ordered) combination of per-replica loss sums; matches
  /// the single-device pairwise loss tree bit for bit for power-of-two
  /// device counts. Pure host arithmetic — the driver reads losses, devices
  /// do not.
  static double combine_loss_sums(const std::vector<double>& sums);

  int devices() const { return cluster_.size(); }

 private:
  sim::Cluster& cluster_;
  std::vector<core::TransferEngine*> engines_;
  std::vector<std::vector<float>> scratch_;  ///< per-device receive staging
  uint64_t next_tag_ = 1;
};

}  // namespace sn::dist
