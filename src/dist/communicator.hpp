// dist::Communicator — collective operations over the simulated P2P fabric.
//
// A communicator spans a GROUP: any subset of a cluster's devices (rank i of
// the group lives on device_ids[i]). Whole-cluster communicators are the
// trivial identity group (dist::DataParallelTrainer); hybrid parallelism
// builds one communicator per pipeline stage over that stage's replica
// devices, so collectives within different stages ride disjoint links.
//
// Two all-reduce algorithms implement the same in-place sum contract:
//
//   * Ring — the classic bandwidth-optimal chunked reduce-scatter (N-1 hops;
//     after it rank r owns the fully reduced chunk (r+1) mod N) followed by a
//     ring all-gather (N-1 hops broadcasting the reduced chunks). Works for
//     any group size; accumulates chunks in rotated rank order, which is
//     deterministic but can differ from the single-device pairwise tree in
//     final-ulp rounding for N >= 4.
//   * Recursive halving-doubling — for power-of-two groups. Reduce-scatter
//     by vector halving with distance DOUBLING (partner = rank ^ 2^t), so
//     step t combines complete sums over aligned rank groups of size 2^t:
//     exactly the binary-counter pairwise tree of util/pairwise.hpp, in
//     ascending rank order. Every combine is a single two-operand IEEE add
//     (commutative), so the result is BIT-IDENTICAL to combining the rank
//     buffers pairwise on one device — which is what extends the "scheduling
//     never changes training results" invariant to 4+-replica training.
//     Same per-rank volume as the ring: 2 * (N-1)/N of the buffer.
//
// kAuto picks halving-doubling for power-of-two groups and falls back to the
// ring otherwise. Every hop is a TransferEngine::submit_p2p on the SENDING
// rank's engine, so collectives share the tag-based submit/poll/wait layer
// (and its telemetry) with offload/prefetch traffic, and virtual time falls
// out of the link streams: step k+1 chains on step k's arrival through the
// explicit not_before dependency. On the async backend each directed link
// additionally gets its own DMA worker, so neighbor hops drain physically in
// parallel and never queue behind offload/prefetch copies.
#pragma once

#include <cstdint>
#include <vector>

#include "core/transfer_engine.hpp"
#include "sim/cluster.hpp"

namespace sn::dist {

enum class AllreduceAlgo {
  kAuto,             ///< halving-doubling when the group is a power of two, else ring
  kRing,             ///< chunked ring (any group size; rotated-rank-order rounding)
  kHalvingDoubling,  ///< pairwise-tree-exact; group size must be a power of two
};

const char* allreduce_algo_name(AllreduceAlgo a);

struct AllreduceStats {
  double seconds = 0.0;                ///< slowest rank's time in the collective
  std::vector<double> device_seconds;  ///< per-rank time in the collective
  uint64_t p2p_bytes = 0;              ///< bytes sent per rank (both algos: symmetric)
  uint64_t chunks = 0;                 ///< ring chunks / halving-doubling segments (= ranks)
  AllreduceAlgo algo = AllreduceAlgo::kRing;  ///< algorithm actually run
};

/// An issued-but-not-awaited all-reduce. The summed bytes are already final
/// when all_reduce_async returns (hop memcpys and reduction adds execute at
/// issue, exactly as in the synchronous call); what is deferred is the
/// VIRTUAL completion: no rank's compute stream waits until await(). Ranks
/// therefore keep draining pipeline work while the collective's link/add
/// chain plays out in virtual time — the DDP-style bucket overlap.
struct AllreduceHandle {
  AllreduceStats stats;        ///< bytes/chunks/algo filled at issue;
                               ///< seconds filled at await
  std::vector<double> start;   ///< per-rank virtual time the collective left from
  std::vector<double> ready;   ///< per-rank virtual completion time
  bool done = false;           ///< degenerate (1 rank / 0 elems) or awaited
  uint64_t trace_seq = 0;      ///< bucket sequence (obs flow linkage)
};

class Communicator {
 public:
  /// Whole-cluster group: `engines[d]` must be device d's TransferEngine on
  /// `cluster`'s machine d. Equivalent to the sub-group ctor with the
  /// identity device list.
  Communicator(sim::Cluster& cluster, std::vector<core::TransferEngine*> engines);

  /// Sub-group: rank i lives on cluster device `device_ids[i]` and sends
  /// through `engines[i]` (which must belong to that device). Device ids
  /// must be distinct; they need not be contiguous or sorted — a pipeline
  /// stage's replica group is whatever the grid says it is.
  Communicator(sim::Cluster& cluster, std::vector<int> device_ids,
               std::vector<core::TransferEngine*> engines);

  /// In-place sum all-reduce: after the call every bufs[r][0..elems) holds
  /// the elementwise sum over ranks. bufs[r] may be null when running
  /// unbacked (simulation) — virtual time and telemetry advance, no bytes
  /// move. kAuto resolves per the group size (see file comment).
  AllreduceStats allreduce_sum(const std::vector<float*>& bufs, uint64_t elems,
                               AllreduceAlgo algo = AllreduceAlgo::kAuto);

  /// Issue an all-reduce without blocking any rank's compute stream: the
  /// bytes are summed eagerly (bufs hold the result on return) but virtual
  /// completion is deferred to await(). Consecutive async calls on the same
  /// communicator chain: each starts no earlier than the previous one's
  /// per-rank ready time, so per-bucket collectives serialize on the group's
  /// links exactly as the one fused collective would.
  AllreduceHandle all_reduce_async(const std::vector<float*>& bufs, uint64_t elems,
                                   AllreduceAlgo algo = AllreduceAlgo::kAuto);

  /// Block every rank's compute stream until `h` completes; fills and
  /// returns the per-rank timing stats. Idempotent per handle.
  AllreduceStats await(AllreduceHandle& h);

  /// Pairwise (rank-ordered) combination of per-replica loss sums; matches
  /// the single-device pairwise loss tree bit for bit for power-of-two
  /// group sizes. Pure host arithmetic — the driver reads losses, devices
  /// do not.
  static double combine_loss_sums(const std::vector<double>& sums);

  int devices() const { return static_cast<int>(devices_.size()); }
  /// Cluster device id of group rank `rank`.
  int device_id(int rank) const { return devices_[static_cast<size_t>(rank)]; }

 private:
  /// Run the hop/add chain of one collective from the per-rank times in
  /// h.start, leaving per-rank completion in h.ready. Physical bytes move at
  /// call time; no machine's compute stream is touched (that is await()'s
  /// job — or the sync wrapper's, immediately).
  void run_ring(const std::vector<float*>& bufs, uint64_t elems, AllreduceHandle& h);
  void run_halving_doubling(const std::vector<float*>& bufs, uint64_t elems,
                            AllreduceHandle& h);

  sim::Machine& mach(int rank) { return cluster_.machine(devices_[static_cast<size_t>(rank)]); }
  /// Elementwise-sum time charged to a rank (read two operands, write one).
  double add_seconds(int rank, uint64_t bytes) {
    return 3.0 * static_cast<double>(bytes) / mach(rank).spec().mem_bw;
  }

  sim::Cluster& cluster_;
  std::vector<int> devices_;  ///< rank -> cluster device id
  std::vector<core::TransferEngine*> engines_;
  std::vector<std::vector<float>> scratch_;  ///< per-rank receive staging
  /// Per-rank ready time of the last async issue: back-to-back buckets chain
  /// on the group's links instead of teleporting to the machines' now().
  std::vector<double> chain_ready_;
  /// Collective hops share each rank's TransferEngine with the trainer's
  /// activation/gradient streams, and a tag collision silently replaces the
  /// older transfer's ticket in the engine's pending map — its landing is
  /// then never awaited. Trainers own the low tag space, so collectives
  /// allocate from a disjoint high range (async buckets overlap the drain
  /// and DO coexist with in-flight P2P streams).
  uint64_t next_tag_ = uint64_t{1} << 48;
  /// Monotone bucket counter: keys the obs collective flow ids (chain span →
  /// await stall) of each issued all-reduce.
  uint64_t bucket_seq_ = 0;
};

}  // namespace sn::dist
