#include "dist/data_parallel.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "dist/trainer_common.hpp"

namespace sn::dist {

using detail::classes_of;
using detail::sample_shape_of;

DataParallelTrainer::DataParallelTrainer(const NetFactory& factory, core::RuntimeOptions base,
                                         DataParallelConfig cfg)
    : cfg_([&] {
        cfg.cluster.devices = cfg.devices;
        return cfg;
      }()),
      real_(base.real),
      shard_(cfg.devices > 0 ? cfg.global_batch / cfg.devices : 0),
      cluster_(cfg_.cluster),
      dataset_([&] {
        if (cfg_.devices < 1) throw std::invalid_argument("DataParallelTrainer: devices >= 1");
        if (cfg_.global_batch <= 0 || cfg_.global_batch % cfg_.devices != 0) {
          throw std::invalid_argument(
              "DataParallelTrainer: global_batch must divide evenly across devices");
        }
        auto probe = factory(shard_);
        return train::SyntheticDataset(sample_shape_of(*probe), classes_of(*probe),
                                       cfg_.train.data_seed);
      }()) {
  base.spec = cfg_.cluster.device;
  base.cluster = &cluster_;
  base.loss_batch = cfg_.global_batch;
  for (int d = 0; d < cfg_.devices; ++d) {
    base.device_id = d;
    base.replica = d;  // 1 x N grid: telemetry groups by replica column
    nets_.push_back(factory(shard_));
    if (!nets_.back()->finalized()) nets_.back()->finalize();
    runtimes_.push_back(std::make_unique<core::Runtime>(*nets_.back(), base));
  }

  // Param-grad tensors in net order — identical topology on every replica, so
  // index i refers to the same logical gradient everywhere.
  grads_.resize(static_cast<size_t>(cfg_.devices));
  for (int d = 0; d < cfg_.devices; ++d) {
    for (const auto& l : nets_[static_cast<size_t>(d)]->layers()) {
      for (tensor::Tensor* g : l->param_grads()) grads_[static_cast<size_t>(d)].push_back(g);
    }
    assert(grads_[static_cast<size_t>(d)].size() == grads_[0].size() &&
           "replica nets must be topologically identical");
  }
  for (const tensor::Tensor* g : grads_[0]) grad_elems_ += static_cast<uint64_t>(g->shape().elems());

  std::vector<core::TransferEngine*> engines;
  for (auto& rt : runtimes_) engines.push_back(&rt->tensor_pool().engine());
  comm_ = std::make_unique<Communicator>(cluster_, std::move(engines));

  batch_data_.resize(static_cast<size_t>(cfg_.global_batch) * dataset_.sample_elems());
  batch_labels_.resize(static_cast<size_t>(cfg_.global_batch));
  if (real_) fused_.resize(static_cast<size_t>(cfg_.devices));
}

void DataParallelTrainer::gather_grads() {
  for (int d = 0; d < cfg_.devices; ++d) {
    auto& buf = fused_[static_cast<size_t>(d)];
    buf.resize(grad_elems_);
    uint64_t off = 0;
    for (tensor::Tensor* g : grads_[static_cast<size_t>(d)]) {
      float* p = runtimes_[static_cast<size_t>(d)]->tensor_pool().device_ptr(g);
      assert(p && "param grads stay device-resident");
      std::memcpy(buf.data() + off, p, g->bytes());
      off += static_cast<uint64_t>(g->shape().elems());
    }
  }
}

void DataParallelTrainer::scatter_grads() {
  for (int d = 0; d < cfg_.devices; ++d) {
    const auto& buf = fused_[static_cast<size_t>(d)];
    uint64_t off = 0;
    for (tensor::Tensor* g : grads_[static_cast<size_t>(d)]) {
      float* p = runtimes_[static_cast<size_t>(d)]->tensor_pool().device_ptr(g);
      std::memcpy(p, buf.data() + off, g->bytes());
      off += static_cast<uint64_t>(g->shape().elems());
    }
  }
}

DataParallelReport DataParallelTrainer::run() {
  DataParallelReport report;
  const int n = cfg_.devices;
  for (int it = 0; it < cfg_.train.iterations; ++it) {
    if (real_) {
      dataset_.fill_batch(cfg_.global_batch, static_cast<uint64_t>(it), batch_data_.data(),
                          batch_labels_.data());
    }

    std::vector<core::IterationStats> sts(static_cast<size_t>(n));
    std::vector<double> loss_sums(static_cast<size_t>(n));
    for (int d = 0; d < n; ++d) {
      const float* data =
          real_ ? batch_data_.data() + static_cast<int64_t>(d) * shard_ * dataset_.sample_elems()
                : nullptr;
      const int32_t* labels = real_ ? batch_labels_.data() + static_cast<int64_t>(d) * shard_
                                    : nullptr;
      sts[static_cast<size_t>(d)] = runtimes_[static_cast<size_t>(d)]->train_iteration(data, labels);
      loss_sums[static_cast<size_t>(d)] = sts[static_cast<size_t>(d)].loss_sum;
    }

    // Gradient all-reduce, then the (identical) SGD step on every replica.
    std::vector<uint64_t> sent0(static_cast<size_t>(n));
    for (int d = 0; d < n; ++d) sent0[d] = cluster_.machine(d).counters().bytes_p2p;
    std::vector<float*> bufs(static_cast<size_t>(n), nullptr);
    if (real_) {
      gather_grads();
      for (int d = 0; d < n; ++d) bufs[static_cast<size_t>(d)] = fused_[static_cast<size_t>(d)].data();
    }
    AllreduceStats ar = comm_->allreduce_sum(bufs, grad_elems_);
    if (real_) scatter_grads();
    for (int d = 0; d < n; ++d) {
      runtimes_[static_cast<size_t>(d)]->apply_sgd(cfg_.train.lr, cfg_.train.momentum,
                                                   cfg_.train.weight_decay);
    }

    const double loss_sum = real_ ? Communicator::combine_loss_sums(loss_sums) : 0.0;
    const double loss = loss_sum / cfg_.global_batch;
    core::IterationStats agg;
    agg.loss = loss;
    agg.loss_sum = loss_sum;
    agg.allreduce_seconds = ar.seconds;
    for (int d = 0; d < n; ++d) {
      auto& st = sts[static_cast<size_t>(d)];
      st.allreduce_seconds = ar.device_seconds[static_cast<size_t>(d)];
      st.p2p_bytes = cluster_.machine(d).counters().bytes_p2p - sent0[static_cast<size_t>(d)];
      agg.seconds = std::max(agg.seconds, st.seconds + st.allreduce_seconds);
      agg.stall_seconds = std::max(agg.stall_seconds, st.stall_seconds);
      agg.peak_mem = std::max(agg.peak_mem, st.peak_mem);
      agg.host_peak = std::max(agg.host_peak, st.host_peak);
      agg.p2p_bytes += st.p2p_bytes;
      agg.bytes_d2h += st.bytes_d2h;
      agg.bytes_h2d += st.bytes_h2d;
      agg.evictions += st.evictions;
      agg.extra_forwards += st.extra_forwards;
      agg.allocs += st.allocs;
      agg.dma_copies += st.dma_copies;
    }
    report.losses.push_back(loss);
    report.stats.push_back(agg);
    report.device_stats.push_back(std::move(sts));
  }
  return report;
}

}  // namespace sn::dist
