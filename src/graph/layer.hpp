// Layer: the computation unit of the network graph (paper §3.1).
//
// cuDNN enforces layer-wise computation, so the runtime schedules memory at
// tensor granularity but executes at layer granularity. Each layer:
//   * infers its output shape from its predecessors,
//   * registers its tensors (output, output-grad, params, aux) with the
//     network's TensorRegistry,
//   * executes real forward/backward arithmetic through the nn kernels, and
//   * reports its dependency sets (uses/defs per pass) — the raw material of
//     liveness analysis — plus the FLOP/byte quantities the cost model needs.
//
// Data-gradient kernels ACCUMULATE (see nn/), so fan-out joins sum naturally;
// the runtime zeroes each gradient tensor at its first backward definition.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "nn/conv.hpp"
#include "tensor/tensor.hpp"

namespace sn::graph {

enum class LayerType {
  kData,
  kConv,
  kPool,
  kAct,
  kLrn,
  kBn,
  kFc,
  kDropout,
  kSoftmax,
  kEltwise,
  kConcat,
};

const char* layer_type_name(LayerType t);

/// Everything a layer needs to execute one pass. The runtime resolves tensor
/// device buffers through `buf`; in simulation-only runs `real` is false and
/// kernels are skipped (only time/memory effects are modeled).
struct ExecContext {
  /// Resolve a tensor's device buffer. Must return a valid pointer for every
  /// tensor in the executing pass's uses/defs when `real` is true.
  std::function<float*(const tensor::Tensor*)> buf;

  /// Convolution scratch; sized by the runtime's workspace allocator.
  float* workspace = nullptr;
  uint64_t workspace_bytes = 0;

  /// Per-layer algorithm choice the workspace allocator made for this pass.
  nn::ConvAlgo conv_algo = nn::ConvAlgo::kIm2colGemm;

  /// Training-iteration index; dropout seeds derive from it so recomputation
  /// replays bit-identical masks.
  uint64_t iter = 0;
  uint64_t seed = 0x5EEDBA5Eull;

  /// Current mini-batch (Data layer) and labels (Softmax loss).
  const float* input_data = nullptr;
  const int32_t* labels = nullptr;
  double* loss_out = nullptr;

  /// Raw (unnormalized) NLL sum over the local batch — data-parallel replicas
  /// combine these pairwise so the global loss matches a single-device run
  /// bit for bit (normalized means cannot be recombined exactly).
  double* loss_sum_out = nullptr;

  /// Batch the loss is averaged over; 0 means the local batch. Data-parallel
  /// training sets this to the GLOBAL batch so per-sample gradients are
  /// independent of how the batch is sharded across devices.
  int loss_batch = 0;

  bool real = true;

  /// Forward-only evaluation: dropout becomes identity (standard inference
  /// semantics); BN keeps batch statistics (running stats are not tracked).
  bool inference = false;
};

class Layer {
 public:
  Layer(LayerType type, std::string name) : type_(type), name_(std::move(name)) {}
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  int id() const { return id_; }
  LayerType type() const { return type_; }
  const std::string& name() const { return name_; }

  const std::vector<Layer*>& prevs() const { return prevs_; }
  const std::vector<Layer*>& nexts() const { return nexts_; }
  const tensor::Shape& out_shape() const { return out_shape_; }

  tensor::Tensor* output() const { return output_; }
  tensor::Tensor* output_grad() const { return output_grad_; }
  const std::vector<tensor::Tensor*>& params() const { return params_; }
  const std::vector<tensor::Tensor*>& param_grads() const { return param_grads_; }
  const std::vector<tensor::Tensor*>& aux() const { return aux_; }

  /// Compute out_shape_ from predecessors (already shaped).
  virtual void infer_shape() = 0;

  /// Register output/grad plus subclass params and aux with the registry.
  /// Base implementation creates output and (when needs_output_grad())
  /// output-grad; subclasses extend.
  virtual void create_tensors(tensor::TensorRegistry& reg);

  /// Loss and data layers receive no upstream gradient.
  virtual bool needs_output_grad() const { return true; }

  virtual void forward(ExecContext& ctx) = 0;
  virtual void backward(ExecContext& ctx) = 0;

  // --- dependency sets (liveness input) --------------------------------

  /// Tensors read by forward: predecessor outputs + own params by default.
  virtual std::vector<tensor::Tensor*> forward_uses() const;
  /// Tensors written by forward: own output + aux by default.
  virtual std::vector<tensor::Tensor*> forward_defs() const;
  /// Tensors read by backward (per layer type; must include output_grad when
  /// it exists).
  virtual std::vector<tensor::Tensor*> backward_uses() const = 0;
  /// Tensors written by backward: existing predecessor grads + param grads.
  virtual std::vector<tensor::Tensor*> backward_defs() const;

  // --- cost-model quantities --------------------------------------------

  /// FLOPs of one forward execution (0 for bandwidth-bound layers).
  virtual double forward_flops() const { return 0.0; }
  virtual double backward_flops() const { return 2.0 * forward_flops(); }

  /// Bytes streamed by forward / backward (drives bandwidth-bound timing).
  virtual uint64_t forward_bytes() const;
  virtual uint64_t backward_bytes() const { return 2 * forward_bytes(); }

  /// Sustained fraction of peak FLOP/s; 0 marks a bandwidth-bound layer.
  /// CONV layers are costed per-algorithm by the runtime instead.
  virtual double compute_efficiency() const { return 0.0; }

  /// Convolution scratch demand for this pass (0 for non-conv layers).
  virtual uint64_t workspace_bytes(nn::ConvAlgo, bool /*forward*/) const { return 0; }

  /// l_i: total bytes of all tensors this layer's computation stashes —
  /// its output, output-grad, aux, params and param grads PLUS its inputs
  /// and the input gradients it writes (cuDNN needs all of them resident to
  /// run the layer). max_i(l_i) is the layer-wise lower bound on peak
  /// memory the paper's cost-aware recomputation targets.
  uint64_t layer_tensor_bytes() const;

 protected:
  friend class Net;

  /// First predecessor's output buffer (the common single-input case).
  /// Only valid after create_tensors(); shape inference must use in_shape().
  tensor::Tensor* in_tensor() const { return prevs_.at(0)->output(); }

  /// First predecessor's inferred shape (valid during infer_shape()).
  const tensor::Shape& in_shape() const { return prevs_.at(0)->out_shape(); }

  int id_ = -1;
  LayerType type_;
  std::string name_;
  std::vector<Layer*> prevs_;
  std::vector<Layer*> nexts_;
  tensor::Shape out_shape_;
  tensor::Tensor* output_ = nullptr;
  tensor::Tensor* output_grad_ = nullptr;
  std::vector<tensor::Tensor*> params_;
  std::vector<tensor::Tensor*> param_grads_;
  std::vector<tensor::Tensor*> aux_;
};

}  // namespace sn::graph
