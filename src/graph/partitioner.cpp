#include "graph/partitioner.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>
#include <unordered_set>

namespace sn::graph {

NetPartitioner::NetPartitioner(const Net& net, sim::DeviceSpec spec, sim::LinkSpec link,
                               uint64_t device_capacity, LayerCostFn observed)
    : net_(net), cost_(std::move(spec)), link_(std::move(link)),
      device_capacity_(device_capacity), observed_(std::move(observed)) {
  if (!net.finalized()) throw std::logic_error("NetPartitioner: net must be finalized");
  const auto& route = net_.route();
  const int n = static_cast<int>(route.size());

  pos_.assign(net_.num_layers(), -1);
  for (int i = 0; i < n; ++i) pos_[static_cast<size_t>(route[i]->id())] = i;

  // Balance prefixes: observed per-layer seconds when a profile provides
  // them (profile-guided partitioning), the analytic roofline otherwise.
  // With observed_ null this is exactly the legacy computation, so the cuts
  // stay byte-identical.
  prefix_.assign(static_cast<size_t>(n) + 1, 0.0);
  fwd_prefix_.assign(static_cast<size_t>(n) + 1, 0.0);
  for (int i = 0; i < n; ++i) {
    const Layer* l = route[i];
    double fwd = cost_.compute_time(l->forward_flops(), static_cast<double>(l->forward_bytes()),
                                    l->compute_efficiency());
    double bwd = cost_.compute_time(l->backward_flops(),
                                    static_cast<double>(l->backward_bytes()),
                                    l->compute_efficiency());
    if (observed_) {
      double ofwd = 0.0, obwd = 0.0;
      if (observed_(l->name(), &ofwd, &obwd)) {
        fwd = ofwd;
        bwd = obwd;
      }
    }
    // Parenthesized (fwd + bwd) first: the same association layer_seconds()
    // used, so analytic prefixes stay bit-identical to the legacy ctor.
    prefix_[i + 1] = prefix_[i] + (fwd + bwd);
    fwd_prefix_[i + 1] = fwd_prefix_[i] + fwd;
  }

  persist_prefix_.assign(static_cast<size_t>(n) + 1, 0);
  nonparam_peak_.assign(static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    const Layer* l = route[i];
    uint64_t persist = 0;
    for (const tensor::Tensor* p : l->params()) persist += p->bytes();
    for (const tensor::Tensor* g : l->param_grads()) persist += g->bytes();
    persist_prefix_[i + 1] = persist_prefix_[i] + persist;
    // l_i counts everything the layer's kernels need resident; its own
    // params/grads are already covered by the stage's persistent term.
    const uint64_t li = l->layer_tensor_bytes();
    nonparam_peak_[static_cast<size_t>(i)] = li > persist ? li - persist : 0;
  }
  // Sparse table over nonparam_peak_: level k holds window-2^k maxima.
  if (n > 0) {
    peak_table_.push_back(nonparam_peak_);
    for (int k = 1; (1 << k) <= n; ++k) {
      const auto& prev = peak_table_.back();
      const int half = 1 << (k - 1);
      std::vector<uint64_t> cur(static_cast<size_t>(n - (1 << k) + 1));
      for (int i = 0; i + (1 << k) <= n; ++i) {
        cur[static_cast<size_t>(i)] =
            std::max(prev[static_cast<size_t>(i)], prev[static_cast<size_t>(i + half)]);
      }
      peak_table_.push_back(std::move(cur));
    }
  }

  // One O(route * fan-in) scan per position, cached: the partition DP and
  // make_plan consult producers per (i, j) pair and must not rescan.
  producer_.assign(static_cast<size_t>(n) + 1, -1);
  for (int cut = 1; cut < n; ++cut) {
    producer_[static_cast<size_t>(cut)] = scan_boundary_producer(cut);
    if (producer_[static_cast<size_t>(cut)] >= 0) valid_cuts_.push_back(cut);
  }
}

double NetPartitioner::layer_seconds(const Layer* l) const {
  // Same roofline form the Runtime charges; convolutions use their default
  // (im2col-class) efficiency — the balance only needs relative weight, not
  // the per-step dynamic algorithm choice.
  double fwd = cost_.compute_time(l->forward_flops(), static_cast<double>(l->forward_bytes()),
                                  l->compute_efficiency());
  double bwd = cost_.compute_time(l->backward_flops(), static_cast<double>(l->backward_bytes()),
                                  l->compute_efficiency());
  return fwd + bwd;
}

int NetPartitioner::boundary_producer(int cut) const {
  if (cut <= 0 || cut >= static_cast<int>(net_.route().size())) return -1;
  return producer_[static_cast<size_t>(cut)];
}

int NetPartitioner::scan_boundary_producer(int cut) const {
  const auto& route = net_.route();
  const int n = static_cast<int>(route.size());
  int producer = -1;
  for (int j = cut; j < n; ++j) {
    for (const Layer* prev : route[j]->prevs()) {
      int p = pos_[static_cast<size_t>(prev->id())];
      if (p >= cut) continue;       // in-stage edge downstream of the cut
      if (producer < 0) {
        producer = p;
      } else if (producer != p) {
        return -1;                  // two distinct tensors cross: invalid cut
      }
    }
  }
  return producer;
}

uint64_t NetPartitioner::stage_min_bytes(int begin, int end) const {
  uint64_t peak = 0;
  if (end > begin) {
    // O(1) range max: two overlapping power-of-two windows.
    const int k = std::bit_width(static_cast<unsigned>(end - begin)) - 1;
    peak = std::max(peak_table_[static_cast<size_t>(k)][static_cast<size_t>(begin)],
                    peak_table_[static_cast<size_t>(k)][static_cast<size_t>(end - (1 << k))]);
  }
  // The trainers PIN stage-boundary tensors for the whole run (the outgoing
  // activation + its gradient landing site, and the incoming gradient the
  // stage streams upstream): eviction can never reclaim them, so they are a
  // second lower bound on residency. Taken as max — not a sum — with the
  // per-layer peak, because the boundary producer/consumer layers' own l_i
  // already contains these tensors (adding would double-count and could
  // falsely reject a fitting stage).
  const int n = static_cast<int>(net_.route().size());
  uint64_t pinned = 0;
  if (begin > 0) {
    const int prod = boundary_producer(begin);
    if (prod >= 0) pinned += net_.route()[static_cast<size_t>(prod)]->output()->bytes();
  }
  if (end < n) {
    const int prod = boundary_producer(end);
    if (prod >= 0) pinned += 2 * net_.route()[static_cast<size_t>(prod)]->output()->bytes();
  }
  peak = std::max(peak, pinned);
  return persist_prefix_[static_cast<size_t>(end)] - persist_prefix_[static_cast<size_t>(begin)] +
         peak;
}

double NetPartitioner::stage_cost(int begin, int end, bool remat) const {
  double c = prefix_[end] - prefix_[begin];
  if (remat) c += fwd_prefix_[end] - fwd_prefix_[begin];
  const int n = static_cast<int>(net_.route().size());
  if (end < n) {
    int prod = boundary_producer(end);
    if (prod >= 0) {
      uint64_t bytes = net_.route()[prod]->output()->bytes();
      c += link_.latency_s + static_cast<double>(bytes) / link_.bandwidth;
    }
  }
  return c;
}

PartitionPlan NetPartitioner::make_plan(const std::vector<int>& cuts) const {
  const auto& route = net_.route();
  const int n = static_cast<int>(route.size());
  std::unordered_set<int> valid(valid_cuts_.begin(), valid_cuts_.end());

  PartitionPlan plan;
  plan.cuts = cuts;
  int begin = 0;
  for (size_t s = 0; s <= cuts.size(); ++s) {
    const int end = s < cuts.size() ? cuts[s] : n;
    if (end <= begin || end > n) {
      throw std::invalid_argument("NetPartitioner: cuts must be ascending route positions");
    }
    if (s < cuts.size() && !valid.count(end)) {
      throw std::invalid_argument("NetPartitioner: cut " + std::to_string(end) +
                                  " splits more than one crossing tensor");
    }
    StageSpec spec;
    spec.begin = begin;
    spec.end = end;
    spec.compute_seconds = prefix_[end] - prefix_[begin];
    spec.min_bytes = stage_min_bytes(begin, end);
    if (!stage_fits(begin, end)) {
      throw std::invalid_argument(
          "NetPartitioner: stage [" + std::to_string(begin) + ", " + std::to_string(end) +
          ") needs " + std::to_string(spec.min_bytes) +
          " bytes even with full offload; device pool holds " +
          std::to_string(device_capacity_));
    }
    if (end < n) {
      spec.boundary_layer = boundary_producer(end);
      // Chained stages hand activations neighbor to neighbor: the tensor
      // crossing cut s must be produced inside stage s, not skip a stage.
      if (spec.boundary_layer < begin) {
        throw std::invalid_argument(
            "NetPartitioner: boundary producer of cut " + std::to_string(end) +
            " lies before the stage (stage-skipping edge)");
      }
      spec.boundary_bytes = route[spec.boundary_layer]->output()->bytes();
    }
    plan.max_stage_seconds = std::max(plan.max_stage_seconds, stage_cost(begin, end));
    plan.stages.push_back(spec);
    begin = end;
  }
  return plan;
}

PartitionPlan NetPartitioner::partition_at(const std::vector<int>& cuts) const {
  return make_plan(cuts);
}

PartitionPlan NetPartitioner::partition(int stages, StageRecompute recompute) const {
  const int n = static_cast<int>(net_.route().size());
  if (stages < 1) throw std::invalid_argument("NetPartitioner: stages >= 1");
  if (stages == 1) return make_plan({});
  const int c = static_cast<int>(valid_cuts_.size());
  if (c < stages - 1) {
    throw std::invalid_argument("NetPartitioner: net has " + std::to_string(c) +
                                " valid cuts, cannot make " + std::to_string(stages) +
                                " stages");
  }

  // Min-max DP over the valid-cut lattice: f[s][j] = best achievable slowest
  // stage over the route prefix ending at cut j using s stages. Positions:
  // 0 (start), valid_cuts_[0..c), n (end).
  auto cut_at = [&](int j) { return j < c ? valid_cuts_[static_cast<size_t>(j)] : n; };
  const double inf = std::numeric_limits<double>::infinity();
  // f[j] for the current stage count; choice[s][j] = predecessor index.
  // Memory awareness: a segment that cannot fit its pool even at the
  // full-offload floor costs infinity, so the DP routes around it.
  // StageRecompute::kAllButLast charges every stage but the final one its
  // forward a second time (1F1B steady state: interior stages re-materialize
  // before each backward, the last never does). Stages >= 2 here, so the
  // first-stage seeds below are never the last stage.
  const bool remat_mid = recompute == StageRecompute::kAllButLast;
  auto seg_cost = [&](int begin, int end, bool last) {
    return stage_fits(begin, end) ? stage_cost(begin, end, remat_mid && !last) : inf;
  };
  std::vector<std::vector<int>> choice(static_cast<size_t>(stages),
                                       std::vector<int>(static_cast<size_t>(c) + 1, -1));
  std::vector<double> f(static_cast<size_t>(c) + 1, inf);
  for (int j = 0; j <= c; ++j) f[j] = seg_cost(0, cut_at(j), /*last=*/false);
  for (int s = 1; s < stages; ++s) {
    std::vector<double> g(static_cast<size_t>(c) + 1, inf);
    for (int j = s; j <= c; ++j) {
      // Only j == c may be the route end; earlier stages end at real cuts.
      if (s == stages - 1 && j != c) continue;
      if (s < stages - 1 && j == c) continue;
      for (int i = s - 1; i < j; ++i) {
        if (i == c) continue;
        if (f[i] == inf) continue;
        double v = std::max(f[i], seg_cost(cut_at(i), cut_at(j), s == stages - 1));
        if (v < g[j]) {
          g[j] = v;
          choice[s][j] = i;
        }
      }
    }
    f = std::move(g);
  }
  if (f[static_cast<size_t>(c)] == inf) {
    throw std::invalid_argument("NetPartitioner: no " + std::to_string(stages) +
                                "-stage partition fits the device pool of " +
                                std::to_string(device_capacity_) +
                                " bytes even with full offload");
  }

  std::vector<int> cuts;
  int j = c;
  for (int s = stages - 1; s >= 1; --s) {
    j = choice[static_cast<size_t>(s)][static_cast<size_t>(j)];
    if (j < 0) throw std::logic_error("NetPartitioner: partition DP found no path");
    cuts.push_back(cut_at(j));
  }
  std::reverse(cuts.begin(), cuts.end());
  return make_plan(cuts);
}

// ---------------------------------------------------------------------------
// extract_stage

namespace {

std::unique_ptr<Layer> clone_layer(const Layer* l) {
  const std::string& name = l->name();
  switch (l->type()) {
    case LayerType::kData:
      return std::make_unique<DataLayer>(name, l->out_shape());
    case LayerType::kConv: {
      const auto& d = static_cast<const ConvLayer*>(l)->desc();
      return std::make_unique<ConvLayer>(name, d.k, d.kh, d.kw, d.stride_h, d.pad_h, d.pad_w,
                                         d.has_bias);
    }
    case LayerType::kPool: {
      const auto& d = static_cast<const PoolLayer*>(l)->desc();
      return std::make_unique<PoolLayer>(name, d.kh, d.kw, d.stride_h, d.pad_h, d.max_pool);
    }
    case LayerType::kAct:
      return std::make_unique<ActLayer>(name, static_cast<const ActLayer*>(l)->kind());
    case LayerType::kLrn: {
      const auto* lrn = static_cast<const LrnLayer*>(l);
      return std::make_unique<LrnLayer>(name, lrn->size(), lrn->alpha(), lrn->beta(), lrn->k());
    }
    case LayerType::kBn:
      return std::make_unique<BnLayer>(name, static_cast<const BnLayer*>(l)->eps());
    case LayerType::kFc: {
      const auto* fc = static_cast<const FcLayer*>(l);
      return std::make_unique<FcLayer>(name, fc->out_features(), fc->has_bias());
    }
    case LayerType::kDropout:
      return std::make_unique<DropoutLayer>(name, static_cast<const DropoutLayer*>(l)->ratio());
    case LayerType::kSoftmax:
      return std::make_unique<SoftmaxLossLayer>(name);
    case LayerType::kEltwise:
      return std::make_unique<EltwiseLayer>(name);
    case LayerType::kConcat:
      return std::make_unique<ConcatLayer>(name);
  }
  throw std::logic_error("clone_layer: unknown layer type");
}

}  // namespace

std::unique_ptr<Net> extract_stage(const Net& src, const PartitionPlan& plan, int stage) {
  if (stage < 0 || stage >= static_cast<int>(plan.stages.size())) {
    throw std::invalid_argument("extract_stage: stage out of range");
  }
  const StageSpec& spec = plan.stages[static_cast<size_t>(stage)];
  const auto& route = src.route();

  auto net = std::make_unique<Net>();
  net->set_arch(src.arch());

  // The upstream boundary producer this stage replaces with a synthetic,
  // gradient-carrying input (null for stage 0 — it keeps the real DataLayer).
  const Layer* in_producer =
      stage > 0 ? route[static_cast<size_t>(plan.stages[static_cast<size_t>(stage) - 1].boundary_layer)]
                : nullptr;

  std::vector<Layer*> mapped(src.num_layers(), nullptr);
  Layer* stage_in = nullptr;
  if (in_producer) {
    auto data = std::make_unique<DataLayer>("STAGE_IN", in_producer->out_shape());
    data->set_input_grad(true);
    stage_in = net->add(std::move(data), {});
  }

  for (int i = spec.begin; i < spec.end; ++i) {
    const Layer* l = route[static_cast<size_t>(i)];
    std::vector<Layer*> inputs;
    for (const Layer* prev : l->prevs()) {
      if (Layer* m = mapped[static_cast<size_t>(prev->id())]) {
        inputs.push_back(m);
      } else if (prev == in_producer) {
        inputs.push_back(stage_in);
      } else {
        throw std::invalid_argument("extract_stage: layer " + l->name() +
                                    " consumes a tensor from a non-adjacent stage");
      }
    }
    mapped[static_cast<size_t>(l->id())] = net->add(clone_layer(l), inputs);
  }

  // The outgoing boundary tensor needs a gradient for the backstream. Every
  // layer type carries one except DataLayer — which IS the boundary when the
  // stage is cut directly behind the net's input.
  if (spec.boundary_layer >= 0) {
    Layer* prod = mapped[static_cast<size_t>(route[static_cast<size_t>(spec.boundary_layer)]->id())];
    if (prod && prod->type() == LayerType::kData) {
      static_cast<DataLayer*>(prod)->set_input_grad(true);
    }
  }

  net->finalize();
  return net;
}

}  // namespace sn::graph
