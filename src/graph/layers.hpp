// Concrete layer types: the eight building blocks the paper lists (§2.1) —
// CONV, POOL, ACT, Softmax, FC, LRN, BN, Dropout — plus DATA and the two
// non-linear join primitives (element-wise sum, channel concat).
#pragma once

#include "graph/layer.hpp"
#include "nn/batchnorm.hpp"
#include "nn/lrn.hpp"
#include "nn/pool.hpp"

namespace sn::graph {

/// Source layer: owns the input batch tensor the runtime fills each
/// iteration. Never receives a gradient — except as a pipeline-stage
/// boundary, where the consumers' backward must accumulate the gradient
/// w.r.t. the stage input so it can be streamed to the upstream stage.
class DataLayer final : public Layer {
 public:
  DataLayer(std::string name, tensor::Shape shape) : Layer(LayerType::kData, std::move(name)) {
    out_shape_ = shape;
  }
  void infer_shape() override {}
  bool needs_output_grad() const override { return input_grad_; }
  void forward(ExecContext& ctx) override;
  void backward(ExecContext&) override {}
  std::vector<tensor::Tensor*> backward_uses() const override { return {}; }
  uint64_t forward_bytes() const override { return 2 * output()->bytes(); }

  /// Must be called before Net::finalize(); graph::extract_stage() sets it
  /// on the synthetic input of every stage after the first.
  void set_input_grad(bool v) { input_grad_ = v; }
  bool input_grad() const { return input_grad_; }

 private:
  bool input_grad_ = false;
};

class ConvLayer final : public Layer {
 public:
  ConvLayer(std::string name, int out_channels, int kh, int kw, int stride, int pad_h, int pad_w,
            bool has_bias = true)
      : Layer(LayerType::kConv, std::move(name)),
        k_(out_channels),
        kh_(kh),
        kw_(kw),
        stride_(stride),
        pad_h_(pad_h),
        pad_w_(pad_w),
        has_bias_(has_bias) {}

  /// Square-kernel convenience constructor.
  ConvLayer(std::string name, int out_channels, int k, int stride, int pad, bool has_bias = true)
      : ConvLayer(std::move(name), out_channels, k, k, stride, pad, pad, has_bias) {}

  void infer_shape() override;
  void create_tensors(tensor::TensorRegistry& reg) override;
  void forward(ExecContext& ctx) override;
  void backward(ExecContext& ctx) override;
  std::vector<tensor::Tensor*> backward_uses() const override;

  double forward_flops() const override { return nn::conv_flops(desc_, nn::ConvPass::kForward); }
  uint64_t forward_bytes() const override;
  double compute_efficiency() const override { return 0.45; }  // default algo; runtime refines
  uint64_t workspace_bytes(nn::ConvAlgo algo, bool forward) const override;

  const nn::ConvDesc& desc() const { return desc_; }

 private:
  int k_, kh_, kw_, stride_, pad_h_, pad_w_;
  bool has_bias_;
  nn::ConvDesc desc_;
};

class PoolLayer final : public Layer {
 public:
  PoolLayer(std::string name, int kh, int kw, int stride, int pad, bool max_pool = true)
      : Layer(LayerType::kPool, std::move(name)),
        kh_(kh),
        kw_(kw),
        stride_(stride),
        pad_(pad),
        max_(max_pool) {}

  void infer_shape() override;
  void create_tensors(tensor::TensorRegistry& reg) override;
  void forward(ExecContext& ctx) override;
  void backward(ExecContext& ctx) override;
  std::vector<tensor::Tensor*> backward_uses() const override;

  const nn::PoolDesc& desc() const { return desc_; }

 private:
  int kh_, kw_, stride_, pad_;
  bool max_;
  nn::PoolDesc desc_;
};

enum class ActKind { kRelu, kSigmoid, kTanh };

/// Elementwise activation. ReLU's backward gates on the forward *input*
/// (Caffe convention — see nn/activation.hpp); sigmoid/tanh backwards are
/// functions of the forward *output*. The dependency sets reflect that, so
/// the scheduler keeps exactly the right tensor alive per kind.
class ActLayer final : public Layer {
 public:
  explicit ActLayer(std::string name, ActKind kind = ActKind::kRelu)
      : Layer(LayerType::kAct, std::move(name)), kind_(kind) {}
  void infer_shape() override { out_shape_ = in_shape(); }
  void forward(ExecContext& ctx) override;
  void backward(ExecContext& ctx) override;
  std::vector<tensor::Tensor*> backward_uses() const override;
  ActKind kind() const { return kind_; }

 private:
  ActKind kind_;
};

class LrnLayer final : public Layer {
 public:
  LrnLayer(std::string name, int size = 5, float alpha = 1e-4f, float beta = 0.75f, float k = 2.0f)
      : Layer(LayerType::kLrn, std::move(name)), size_(size), alpha_(alpha), beta_(beta), k_(k) {}

  void infer_shape() override { out_shape_ = in_shape(); }
  void create_tensors(tensor::TensorRegistry& reg) override;
  void forward(ExecContext& ctx) override;
  void backward(ExecContext& ctx) override;
  std::vector<tensor::Tensor*> backward_uses() const override;
  uint64_t forward_bytes() const override { return 4 * output()->bytes(); }
  int size() const { return size_; }
  float alpha() const { return alpha_; }
  float beta() const { return beta_; }
  float k() const { return k_; }

 private:
  nn::LrnDesc make_desc() const;
  int size_;
  float alpha_, beta_, k_;
};

class BnLayer final : public Layer {
 public:
  explicit BnLayer(std::string name, float eps = 1e-5f)
      : Layer(LayerType::kBn, std::move(name)), eps_(eps) {}

  void infer_shape() override { out_shape_ = in_shape(); }
  void create_tensors(tensor::TensorRegistry& reg) override;
  void forward(ExecContext& ctx) override;
  void backward(ExecContext& ctx) override;
  std::vector<tensor::Tensor*> backward_uses() const override;
  uint64_t forward_bytes() const override { return 4 * output()->bytes(); }
  float eps() const { return eps_; }

 private:
  nn::BnDesc make_desc() const;
  float eps_;
};

class FcLayer final : public Layer {
 public:
  FcLayer(std::string name, int out_features, bool has_bias = true)
      : Layer(LayerType::kFc, std::move(name)), k_(out_features), has_bias_(has_bias) {}

  void infer_shape() override;
  void create_tensors(tensor::TensorRegistry& reg) override;
  void forward(ExecContext& ctx) override;
  void backward(ExecContext& ctx) override;
  std::vector<tensor::Tensor*> backward_uses() const override;

  double forward_flops() const override {
    return 2.0 * out_shape_.n * in_features_ * k_;
  }
  double compute_efficiency() const override { return 0.55; }
  int out_features() const { return k_; }
  bool has_bias() const { return has_bias_; }

 private:
  int k_;
  bool has_bias_;
  int64_t in_features_ = 0;
};

class DropoutLayer final : public Layer {
 public:
  DropoutLayer(std::string name, float ratio = 0.5f)
      : Layer(LayerType::kDropout, std::move(name)), ratio_(ratio) {}

  void infer_shape() override { out_shape_ = in_shape(); }
  void create_tensors(tensor::TensorRegistry& reg) override;
  void forward(ExecContext& ctx) override;
  void backward(ExecContext& ctx) override;
  std::vector<tensor::Tensor*> backward_uses() const override;
  float ratio() const { return ratio_; }

 private:
  float ratio_;
};

/// Fused softmax + mean NLL loss. The network sink: no output gradient; its
/// backward seeds the whole gradient flow from (p, labels).
class SoftmaxLossLayer final : public Layer {
 public:
  explicit SoftmaxLossLayer(std::string name) : Layer(LayerType::kSoftmax, std::move(name)) {}

  void infer_shape() override;
  bool needs_output_grad() const override { return false; }
  void forward(ExecContext& ctx) override;
  void backward(ExecContext& ctx) override;
  std::vector<tensor::Tensor*> backward_uses() const override;
};

/// Element-wise sum join (ResNet shortcut).
class EltwiseLayer final : public Layer {
 public:
  explicit EltwiseLayer(std::string name) : Layer(LayerType::kEltwise, std::move(name)) {}
  void infer_shape() override;
  void forward(ExecContext& ctx) override;
  void backward(ExecContext& ctx) override;
  std::vector<tensor::Tensor*> backward_uses() const override;
};

/// Channel-wise concat join (Inception / DenseNet fan-in).
class ConcatLayer final : public Layer {
 public:
  explicit ConcatLayer(std::string name) : Layer(LayerType::kConcat, std::move(name)) {}
  void infer_shape() override;
  void forward(ExecContext& ctx) override;
  void backward(ExecContext& ctx) override;
  std::vector<tensor::Tensor*> backward_uses() const override;
};

}  // namespace sn::graph
