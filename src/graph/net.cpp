#include "graph/net.hpp"

#include <cassert>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.hpp"

namespace sn::graph {

Layer* Net::add(std::unique_ptr<Layer> layer, const std::vector<Layer*>& inputs) {
  assert(!finalized_ && "cannot add layers after finalize()");
  Layer* l = layer.get();
  l->id_ = static_cast<int>(layers_.size());
  layers_.push_back(std::move(layer));
  for (Layer* in : inputs) {
    l->prevs_.push_back(in);
    in->nexts_.push_back(l);
  }
  if (l->type() == LayerType::kData) {
    assert(!input_ && "a Net supports a single data layer");
    input_ = l;
  }
  if (l->type() == LayerType::kSoftmax) loss_ = l;
  return l;
}

Layer* Net::data(const std::string& name, tensor::Shape shape) {
  return add(std::make_unique<DataLayer>(name, shape), {});
}
Layer* Net::conv(const std::string& name, Layer* in, int k, int kh, int stride, int pad,
                 bool bias) {
  return add(std::make_unique<ConvLayer>(name, k, kh, kh, stride, pad, pad, bias), {in});
}
Layer* Net::pool_max(const std::string& name, Layer* in, int kh, int stride, int pad) {
  return add(std::make_unique<PoolLayer>(name, kh, kh, stride, pad, true), {in});
}
Layer* Net::pool_avg(const std::string& name, Layer* in, int kh, int stride, int pad) {
  return add(std::make_unique<PoolLayer>(name, kh, kh, stride, pad, false), {in});
}
Layer* Net::relu(const std::string& name, Layer* in) {
  return add(std::make_unique<ActLayer>(name, ActKind::kRelu), {in});
}
Layer* Net::sigmoid(const std::string& name, Layer* in) {
  return add(std::make_unique<ActLayer>(name, ActKind::kSigmoid), {in});
}
Layer* Net::tanh_act(const std::string& name, Layer* in) {
  return add(std::make_unique<ActLayer>(name, ActKind::kTanh), {in});
}
Layer* Net::lrn(const std::string& name, Layer* in, int size) {
  return add(std::make_unique<LrnLayer>(name, size), {in});
}
Layer* Net::bn(const std::string& name, Layer* in) {
  return add(std::make_unique<BnLayer>(name), {in});
}
Layer* Net::fc(const std::string& name, Layer* in, int k, bool bias) {
  return add(std::make_unique<FcLayer>(name, k, bias), {in});
}
Layer* Net::dropout(const std::string& name, Layer* in, float ratio) {
  return add(std::make_unique<DropoutLayer>(name, ratio), {in});
}
Layer* Net::softmax_loss(const std::string& name, Layer* in) {
  return add(std::make_unique<SoftmaxLossLayer>(name), {in});
}
Layer* Net::eltwise(const std::string& name, const std::vector<Layer*>& ins) {
  return add(std::make_unique<EltwiseLayer>(name), ins);
}
Layer* Net::concat(const std::string& name, const std::vector<Layer*>& ins) {
  return add(std::make_unique<ConcatLayer>(name), ins);
}

// Algorithm 1 (paper §3.1): DFS from the data layer; a layer enters the route
// only once all of its predecessors have been visited (join counter).
// Implemented with an explicit stack so ResNet-2500-scale graphs (10^4
// layers) cannot overflow the call stack.
void Net::build_route() {
  route_.clear();
  route_.reserve(layers_.size());
  std::unordered_map<const Layer*, size_t> counter;
  std::vector<Layer*> stack{input_};
  while (!stack.empty()) {
    Layer* l = stack.back();
    stack.pop_back();
    size_t& cnt = counter[l];
    ++cnt;  // paper: layer->counter_inc()
    if (cnt < l->prevs().size()) continue;  // join: wait for remaining branches
    route_.push_back(l);
    // Push nexts in reverse so the first-listed branch is explored first,
    // matching the recursive DFS order of Algorithm 1.
    const auto& nexts = l->nexts();
    for (auto it = nexts.rbegin(); it != nexts.rend(); ++it) stack.push_back(*it);
  }
  if (route_.size() != layers_.size()) {
    SN_ERROR << "route covers " << route_.size() << " of " << layers_.size()
             << " layers; graph is disconnected or has an unreachable join";
    throw std::logic_error("Net::build_route: incomplete route");
  }
}

void Net::finalize() {
  assert(!finalized_);
  if (!input_) throw std::logic_error("Net::finalize: no data layer");
  // Layer (and therefore tensor) names must be unique: per-tensor-name
  // seeded weight initialization would hand duplicate names bit-identical
  // draws (parallel branches could never break symmetry), and pipeline
  // stage extraction matches layers across nets by name.
  {
    std::unordered_set<std::string> names;
    for (const auto& l : layers_) {
      if (!names.insert(l->name()).second) {
        throw std::logic_error("Net::finalize: duplicate layer name " + l->name());
      }
    }
  }
  build_route();
  for (Layer* l : route_) l->infer_shape();
  for (Layer* l : route_) l->create_tensors(registry_);
  // Record producer steps (used by recomputation to replay segments).
  steps_.clear();
  steps_.reserve(route_.size() * 2);
  int idx = 0;
  for (Layer* l : route_) {
    for (tensor::Tensor* t : l->forward_defs()) t->producer_step = idx;
    steps_.push_back(Step{l, true, idx++});
  }
  for (auto it = route_.rbegin(); it != route_.rend(); ++it) {
    steps_.push_back(Step{*it, false, idx++});
  }
  finalized_ = true;
}

uint64_t Net::total_tensor_bytes() const {
  uint64_t b = 0;
  for (const auto& t : registry_.all()) b += t->bytes();
  return b;
}

uint64_t Net::max_layer_bytes() const {
  uint64_t best = 0;
  for (const auto& l : layers_) {
    uint64_t b = l->layer_tensor_bytes();
    if (b > best) best = b;
  }
  return best;
}

}  // namespace sn::graph
