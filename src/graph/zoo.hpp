// Network zoo: every architecture the paper evaluates.
//
//   * AlexNet     — the 23-layer structure from the paper's footnote 3
//   * VGG16/19    — linear deep nets
//   * ResNet-N    — bottleneck residual nets with the paper's Table-4
//                   parameterization depth = 3*(n1+n2+n3+n4) + 2
//   * InceptionV4 — fan/join heavy (stem + A/B/C blocks + reductions)
//   * DenseNet    — full-join connectivity (Fig. 1b right)
//
// Plus tiny nets with the same structural motifs for real-numerics tests.
// Builders return finalized networks.
#pragma once

#include <memory>

#include "graph/net.hpp"

namespace sn::graph {

std::unique_ptr<Net> build_alexnet(int batch, int image = 227, int classes = 1000);

/// depth must be 16 or 19.
std::unique_ptr<Net> build_vgg(int depth, int batch, int image = 224, int classes = 1000);

/// Bottleneck ResNet; depth = 3*(n1+n2+n3+n4) + 2 (paper Table 4).
std::unique_ptr<Net> build_resnet(int n1, int n2, int n3, int n4, int batch, int image = 224,
                                  int classes = 1000);

/// Standard presets: depth in {50, 101, 152}.
std::unique_ptr<Net> build_resnet_preset(int depth, int batch, int image = 224,
                                         int classes = 1000);

int resnet_depth(int n1, int n2, int n3, int n4);

std::unique_ptr<Net> build_inception_v4(int batch, int image = 299, int classes = 1000);

/// DenseNet-BC; `block_sizes` defaults to DenseNet-121's (6,12,24,16).
std::unique_ptr<Net> build_densenet121(int batch, int image = 224, int classes = 1000,
                                       int growth = 32);

// --- miniature networks for real-numerics tests and examples -------------

/// DATA-CONV-RELU-POOL-FC-SOFTMAX on small images.
std::unique_ptr<Net> build_tiny_linear(int batch, int image = 8, int classes = 4);

/// The fan network of paper Fig. 3c: DATA forks a CONV branch and a POOL
/// branch, concat-joins them, then FC + Softmax.
std::unique_ptr<Net> build_tiny_fanjoin(int batch, int image = 8, int classes = 4);

/// A small residual net: `units` bottleneck-free residual blocks with
/// eltwise joins, plus BN and dropout coverage.
std::unique_ptr<Net> build_tiny_resnet(int batch, int units, int image = 8, int classes = 4);

/// AlexNet's exact layer sequence at miniature scale (LRN + dropout
/// included) — used to exercise the paper's Fig. 10 pipeline in real mode.
std::unique_ptr<Net> build_mini_alexnet(int batch, int image = 16, int classes = 8);

}  // namespace sn::graph
