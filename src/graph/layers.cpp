#include "graph/layers.hpp"

#include <cassert>
#include <cstring>

#include "nn/activation.hpp"
#include "nn/concat.hpp"
#include "nn/dropout.hpp"
#include "nn/eltwise.hpp"
#include "nn/fc.hpp"
#include "nn/softmax.hpp"

namespace sn::graph {

namespace {
/// Mixes a stable per-layer, per-iteration dropout seed.
uint64_t mix_seed(uint64_t base, int layer_id, uint64_t iter) {
  uint64_t z = base ^ (0x9E3779B97F4A7C15ull * static_cast<uint64_t>(layer_id + 1));
  z ^= 0xBF58476D1CE4E5B9ull * (iter + 1);
  z = (z ^ (z >> 30)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

// ---------------------------------------------------------------- DataLayer

void DataLayer::forward(ExecContext& ctx) {
  if (!ctx.real) return;
  float* y = ctx.buf(output());
  if (ctx.input_data) {
    std::memcpy(y, ctx.input_data, output()->bytes());
  }
}

// ---------------------------------------------------------------- ConvLayer

void ConvLayer::infer_shape() {
  const tensor::Shape& in = in_shape();
  desc_ = nn::ConvDesc{};
  desc_.n = static_cast<int>(in.n);
  desc_.c = static_cast<int>(in.c);
  desc_.h = static_cast<int>(in.h);
  desc_.w = static_cast<int>(in.w);
  desc_.k = k_;
  desc_.kh = kh_;
  desc_.kw = kw_;
  desc_.stride_h = stride_;
  desc_.stride_w = stride_;
  desc_.pad_h = pad_h_;
  desc_.pad_w = pad_w_;
  desc_.has_bias = has_bias_;
  out_shape_ = tensor::Shape{in.n, k_, desc_.out_h(), desc_.out_w()};
}

void ConvLayer::create_tensors(tensor::TensorRegistry& reg) {
  Layer::create_tensors(reg);
  tensor::Shape wshape{k_, static_cast<int64_t>(desc_.c), kh_, kw_};
  params_.push_back(reg.create(name_ + ":W", wshape, tensor::TensorKind::kParam));
  param_grads_.push_back(reg.create(name_ + ":dW", wshape, tensor::TensorKind::kParamGrad));
  if (has_bias_) {
    tensor::Shape bshape{1, k_, 1, 1};
    params_.push_back(reg.create(name_ + ":b", bshape, tensor::TensorKind::kParam));
    param_grads_.push_back(reg.create(name_ + ":db", bshape, tensor::TensorKind::kParamGrad));
  }
}

void ConvLayer::forward(ExecContext& ctx) {
  if (!ctx.real) return;
  const float* x = ctx.buf(in_tensor());
  const float* w = ctx.buf(params_[0]);
  const float* b = has_bias_ ? ctx.buf(params_[1]) : nullptr;
  float* y = ctx.buf(output());
  assert(ctx.workspace_bytes >= nn::conv_workspace_bytes(desc_, ctx.conv_algo, nn::ConvPass::kForward));
  nn::conv_forward(desc_, ctx.conv_algo, x, w, b, y, ctx.workspace);
}

void ConvLayer::backward(ExecContext& ctx) {
  if (!ctx.real) return;
  const float* x = ctx.buf(in_tensor());
  const float* w = ctx.buf(params_[0]);
  const float* dy = ctx.buf(output_grad());
  if (tensor::Tensor* dxt = prevs_[0]->output_grad()) {
    nn::conv_backward_data(desc_, ctx.conv_algo, w, dy, ctx.buf(dxt), ctx.workspace);
  }
  float* dw = ctx.buf(param_grads_[0]);
  float* db = has_bias_ ? ctx.buf(param_grads_[1]) : nullptr;
  nn::conv_backward_filter(desc_, ctx.conv_algo, x, dy, dw, db, ctx.workspace);
}

std::vector<tensor::Tensor*> ConvLayer::backward_uses() const {
  std::vector<tensor::Tensor*> uses{in_tensor(), params_[0], output_grad_};
  return uses;
}

uint64_t ConvLayer::forward_bytes() const {
  return in_tensor()->bytes() + output()->bytes() + params_[0]->bytes();
}

uint64_t ConvLayer::workspace_bytes(nn::ConvAlgo algo, bool forward) const {
  if (forward) return nn::conv_workspace_bytes(desc_, algo, nn::ConvPass::kForward);
  uint64_t bd = nn::conv_workspace_bytes(desc_, algo, nn::ConvPass::kBackwardData);
  uint64_t bf = nn::conv_workspace_bytes(desc_, algo, nn::ConvPass::kBackwardFilter);
  return bd > bf ? bd : bf;
}

// ---------------------------------------------------------------- PoolLayer

void PoolLayer::infer_shape() {
  const tensor::Shape& in = in_shape();
  desc_ = nn::PoolDesc{};
  desc_.n = static_cast<int>(in.n);
  desc_.c = static_cast<int>(in.c);
  desc_.h = static_cast<int>(in.h);
  desc_.w = static_cast<int>(in.w);
  desc_.kh = kh_;
  desc_.kw = kw_;
  desc_.stride_h = stride_;
  desc_.stride_w = stride_;
  desc_.pad_h = pad_;
  desc_.pad_w = pad_;
  desc_.max_pool = max_;
  out_shape_ = tensor::Shape{in.n, in.c, desc_.out_h(), desc_.out_w()};
}

void PoolLayer::create_tensors(tensor::TensorRegistry& reg) {
  Layer::create_tensors(reg);
  if (max_) {
    // int32 argmax indices, one per output element (stored as a same-shape
    // 4-byte-per-element aux tensor).
    aux_.push_back(reg.create(name_ + ":argmax", out_shape_, tensor::TensorKind::kAux));
  }
}

void PoolLayer::forward(ExecContext& ctx) {
  if (!ctx.real) return;
  const float* x = ctx.buf(in_tensor());
  float* y = ctx.buf(output());
  int32_t* am = max_ ? reinterpret_cast<int32_t*>(ctx.buf(aux_[0])) : nullptr;
  nn::pool_forward(desc_, x, y, am);
}

void PoolLayer::backward(ExecContext& ctx) {
  if (!ctx.real) return;
  tensor::Tensor* dxt = prevs_[0]->output_grad();
  if (!dxt) return;
  const float* dy = ctx.buf(output_grad());
  const int32_t* am = max_ ? reinterpret_cast<const int32_t*>(ctx.buf(aux_[0])) : nullptr;
  nn::pool_backward(desc_, dy, am, ctx.buf(dxt));
}

std::vector<tensor::Tensor*> PoolLayer::backward_uses() const {
  std::vector<tensor::Tensor*> uses{output_grad_};
  if (max_) uses.push_back(aux_[0]);
  return uses;
}

// ----------------------------------------------------------------- ActLayer

void ActLayer::forward(ExecContext& ctx) {
  if (!ctx.real) return;
  uint64_t n = static_cast<uint64_t>(out_shape_.elems());
  const float* x = ctx.buf(in_tensor());
  float* y = ctx.buf(output());
  switch (kind_) {
    case ActKind::kRelu: nn::relu_forward(n, x, y); break;
    case ActKind::kSigmoid: nn::sigmoid_forward(n, x, y); break;
    case ActKind::kTanh: nn::tanh_forward(n, x, y); break;
  }
}

void ActLayer::backward(ExecContext& ctx) {
  if (!ctx.real) return;
  tensor::Tensor* dxt = prevs_[0]->output_grad();
  if (!dxt) return;
  uint64_t n = static_cast<uint64_t>(out_shape_.elems());
  const float* dy = ctx.buf(output_grad());
  float* dx = ctx.buf(dxt);
  switch (kind_) {
    case ActKind::kRelu: nn::relu_backward(n, ctx.buf(in_tensor()), dy, dx); break;
    case ActKind::kSigmoid: nn::sigmoid_backward(n, ctx.buf(output()), dy, dx); break;
    case ActKind::kTanh: nn::tanh_backward(n, ctx.buf(output()), dy, dx); break;
  }
}

std::vector<tensor::Tensor*> ActLayer::backward_uses() const {
  // ReLU reads its input; sigmoid/tanh read their output (nn/activation.hpp).
  if (kind_ == ActKind::kRelu) return {in_tensor(), output_grad_};
  return {output_, output_grad_};
}

// ----------------------------------------------------------------- LrnLayer

nn::LrnDesc LrnLayer::make_desc() const {
  nn::LrnDesc d;
  d.n = static_cast<int>(out_shape_.n);
  d.c = static_cast<int>(out_shape_.c);
  d.h = static_cast<int>(out_shape_.h);
  d.w = static_cast<int>(out_shape_.w);
  d.size = size_;
  d.alpha = alpha_;
  d.beta = beta_;
  d.k = k_;
  return d;
}

void LrnLayer::create_tensors(tensor::TensorRegistry& reg) {
  Layer::create_tensors(reg);
  aux_.push_back(reg.create(name_ + ":scale", out_shape_, tensor::TensorKind::kAux));
}

void LrnLayer::forward(ExecContext& ctx) {
  if (!ctx.real) return;
  nn::lrn_forward(make_desc(), ctx.buf(in_tensor()), ctx.buf(output()), ctx.buf(aux_[0]));
}

void LrnLayer::backward(ExecContext& ctx) {
  if (!ctx.real) return;
  tensor::Tensor* dxt = prevs_[0]->output_grad();
  if (!dxt) return;
  nn::lrn_backward(make_desc(), ctx.buf(in_tensor()), ctx.buf(output()), ctx.buf(aux_[0]),
                   ctx.buf(output_grad()), ctx.buf(dxt));
}

std::vector<tensor::Tensor*> LrnLayer::backward_uses() const {
  return {in_tensor(), output_, aux_[0], output_grad_};
}

// ------------------------------------------------------------------ BnLayer

nn::BnDesc BnLayer::make_desc() const {
  nn::BnDesc d;
  d.n = static_cast<int>(out_shape_.n);
  d.c = static_cast<int>(out_shape_.c);
  d.h = static_cast<int>(out_shape_.h);
  d.w = static_cast<int>(out_shape_.w);
  d.eps = eps_;
  return d;
}

void BnLayer::create_tensors(tensor::TensorRegistry& reg) {
  Layer::create_tensors(reg);
  tensor::Shape cshape{1, out_shape_.c, 1, 1};
  params_.push_back(reg.create(name_ + ":gamma", cshape, tensor::TensorKind::kParam));
  params_.push_back(reg.create(name_ + ":beta", cshape, tensor::TensorKind::kParam));
  param_grads_.push_back(reg.create(name_ + ":dgamma", cshape, tensor::TensorKind::kParamGrad));
  param_grads_.push_back(reg.create(name_ + ":dbeta", cshape, tensor::TensorKind::kParamGrad));
  aux_.push_back(reg.create(name_ + ":mean", cshape, tensor::TensorKind::kAux));
  aux_.push_back(reg.create(name_ + ":invstd", cshape, tensor::TensorKind::kAux));
}

void BnLayer::forward(ExecContext& ctx) {
  if (!ctx.real) return;
  nn::bn_forward(make_desc(), ctx.buf(in_tensor()), ctx.buf(params_[0]), ctx.buf(params_[1]),
                 ctx.buf(output()), ctx.buf(aux_[0]), ctx.buf(aux_[1]));
}

void BnLayer::backward(ExecContext& ctx) {
  if (!ctx.real) return;
  tensor::Tensor* dxt = prevs_[0]->output_grad();
  float* dx = dxt ? ctx.buf(dxt) : nullptr;
  if (!dx) return;  // BN directly after data is unusual; skip data grad
  nn::bn_backward(make_desc(), ctx.buf(in_tensor()), ctx.buf(params_[0]), ctx.buf(aux_[0]),
                  ctx.buf(aux_[1]), ctx.buf(output_grad()), dx, ctx.buf(param_grads_[0]),
                  ctx.buf(param_grads_[1]));
}

std::vector<tensor::Tensor*> BnLayer::backward_uses() const {
  return {in_tensor(), params_[0], aux_[0], aux_[1], output_grad_};
}

// ------------------------------------------------------------------ FcLayer

void FcLayer::infer_shape() {
  const tensor::Shape& in = in_shape();
  in_features_ = in.c * in.h * in.w;
  out_shape_ = tensor::Shape{in.n, k_, 1, 1};
}

void FcLayer::create_tensors(tensor::TensorRegistry& reg) {
  Layer::create_tensors(reg);
  tensor::Shape wshape{k_, in_features_, 1, 1};
  params_.push_back(reg.create(name_ + ":W", wshape, tensor::TensorKind::kParam));
  param_grads_.push_back(reg.create(name_ + ":dW", wshape, tensor::TensorKind::kParamGrad));
  if (has_bias_) {
    tensor::Shape bshape{1, k_, 1, 1};
    params_.push_back(reg.create(name_ + ":b", bshape, tensor::TensorKind::kParam));
    param_grads_.push_back(reg.create(name_ + ":db", bshape, tensor::TensorKind::kParamGrad));
  }
}

void FcLayer::forward(ExecContext& ctx) {
  if (!ctx.real) return;
  nn::FcDesc f{static_cast<int>(out_shape_.n), static_cast<int>(in_features_), k_, has_bias_};
  nn::fc_forward(f, ctx.buf(in_tensor()), ctx.buf(params_[0]),
                 has_bias_ ? ctx.buf(params_[1]) : nullptr, ctx.buf(output()));
}

void FcLayer::backward(ExecContext& ctx) {
  if (!ctx.real) return;
  nn::FcDesc f{static_cast<int>(out_shape_.n), static_cast<int>(in_features_), k_, has_bias_};
  const float* dy = ctx.buf(output_grad());
  if (tensor::Tensor* dxt = prevs_[0]->output_grad()) {
    nn::fc_backward_data(f, ctx.buf(params_[0]), dy, ctx.buf(dxt));
  }
  nn::fc_backward_filter(f, ctx.buf(in_tensor()), dy, ctx.buf(param_grads_[0]),
                         has_bias_ ? ctx.buf(param_grads_[1]) : nullptr);
}

std::vector<tensor::Tensor*> FcLayer::backward_uses() const {
  return {in_tensor(), params_[0], output_grad_};
}

// ------------------------------------------------------------- DropoutLayer

void DropoutLayer::create_tensors(tensor::TensorRegistry& reg) {
  Layer::create_tensors(reg);
  aux_.push_back(reg.create(name_ + ":mask", out_shape_, tensor::TensorKind::kAux));
}

void DropoutLayer::forward(ExecContext& ctx) {
  if (!ctx.real) return;
  if (ctx.inference) {
    // Inverted dropout is identity at inference time.
    std::memcpy(ctx.buf(output()), ctx.buf(in_tensor()), output()->bytes());
    return;
  }
  uint64_t seed = mix_seed(ctx.seed, id_, ctx.iter);
  nn::dropout_forward(static_cast<uint64_t>(out_shape_.elems()), ratio_, seed,
                      ctx.buf(in_tensor()), ctx.buf(output()), ctx.buf(aux_[0]));
}

void DropoutLayer::backward(ExecContext& ctx) {
  if (!ctx.real) return;
  tensor::Tensor* dxt = prevs_[0]->output_grad();
  if (!dxt) return;
  nn::dropout_backward(static_cast<uint64_t>(out_shape_.elems()), ctx.buf(aux_[0]),
                       ctx.buf(output_grad()), ctx.buf(dxt));
}

std::vector<tensor::Tensor*> DropoutLayer::backward_uses() const {
  return {aux_[0], output_grad_};
}

// --------------------------------------------------------- SoftmaxLossLayer

void SoftmaxLossLayer::infer_shape() {
  const tensor::Shape& in = in_shape();
  out_shape_ = tensor::Shape{in.n, in.c * in.h * in.w, 1, 1};
}

void SoftmaxLossLayer::forward(ExecContext& ctx) {
  if (!ctx.real) return;
  int n = static_cast<int>(out_shape_.n), c = static_cast<int>(out_shape_.c);
  float* p = ctx.buf(output());
  nn::softmax_forward(n, c, ctx.buf(in_tensor()), p);
  if (ctx.labels && (ctx.loss_out || ctx.loss_sum_out)) {
    double sum = nn::nll_loss_sum(n, c, p, ctx.labels);
    if (ctx.loss_sum_out) *ctx.loss_sum_out = sum;
    if (ctx.loss_out) *ctx.loss_out = sum / (ctx.loss_batch > 0 ? ctx.loss_batch : n);
  }
}

void SoftmaxLossLayer::backward(ExecContext& ctx) {
  if (!ctx.real || !ctx.labels) return;
  tensor::Tensor* dxt = prevs_[0]->output_grad();
  if (!dxt) return;
  int n = static_cast<int>(out_shape_.n), c = static_cast<int>(out_shape_.c);
  nn::softmax_nll_backward(n, c, ctx.buf(output()), ctx.labels, ctx.buf(dxt), ctx.loss_batch);
}

std::vector<tensor::Tensor*> SoftmaxLossLayer::backward_uses() const { return {output_}; }

// --------------------------------------------------------------- EltwiseLayer

void EltwiseLayer::infer_shape() {
  out_shape_ = in_shape();
  for (const Layer* p : prevs_) {
    assert(p->out_shape() == out_shape_ && "eltwise inputs must match");
    (void)p;
  }
}

void EltwiseLayer::forward(ExecContext& ctx) {
  if (!ctx.real) return;
  std::vector<const float*> xs;
  xs.reserve(prevs_.size());
  for (const Layer* p : prevs_) xs.push_back(ctx.buf(p->output()));
  nn::eltwise_sum_forward(static_cast<uint64_t>(out_shape_.elems()), xs, ctx.buf(output()));
}

void EltwiseLayer::backward(ExecContext& ctx) {
  if (!ctx.real) return;
  const float* dy = ctx.buf(output_grad());
  for (Layer* p : prevs_) {
    if (tensor::Tensor* dxt = p->output_grad()) {
      nn::eltwise_sum_backward(static_cast<uint64_t>(out_shape_.elems()), dy, ctx.buf(dxt));
    }
  }
}

std::vector<tensor::Tensor*> EltwiseLayer::backward_uses() const { return {output_grad_}; }

// ---------------------------------------------------------------- ConcatLayer

void ConcatLayer::infer_shape() {
  const tensor::Shape& first = in_shape();
  int64_t total_c = 0;
  for (const Layer* p : prevs_) {
    const tensor::Shape& s = p->out_shape();
    assert(s.n == first.n && s.h == first.h && s.w == first.w && "concat spatial mismatch");
    total_c += s.c;
  }
  out_shape_ = tensor::Shape{first.n, total_c, first.h, first.w};
}

void ConcatLayer::forward(ExecContext& ctx) {
  if (!ctx.real) return;
  nn::ConcatDesc d;
  d.n = static_cast<int>(out_shape_.n);
  d.h = static_cast<int>(out_shape_.h);
  d.w = static_cast<int>(out_shape_.w);
  std::vector<const float*> xs;
  for (const Layer* p : prevs_) {
    d.channels.push_back(static_cast<int>(p->output()->shape().c));
    xs.push_back(ctx.buf(p->output()));
  }
  nn::concat_forward(d, xs, ctx.buf(output()));
}

void ConcatLayer::backward(ExecContext& ctx) {
  if (!ctx.real) return;
  nn::ConcatDesc d;
  d.n = static_cast<int>(out_shape_.n);
  d.h = static_cast<int>(out_shape_.h);
  d.w = static_cast<int>(out_shape_.w);
  for (const Layer* p : prevs_) d.channels.push_back(static_cast<int>(p->output()->shape().c));
  const float* dy = ctx.buf(output_grad());
  for (size_t i = 0; i < prevs_.size(); ++i) {
    if (tensor::Tensor* dxt = prevs_[i]->output_grad()) {
      nn::concat_backward(d, dy, static_cast<int>(i), ctx.buf(dxt));
    }
  }
}

std::vector<tensor::Tensor*> ConcatLayer::backward_uses() const { return {output_grad_}; }

}  // namespace sn::graph
