#include "graph/layer.hpp"

namespace sn::graph {

const char* layer_type_name(LayerType t) {
  switch (t) {
    case LayerType::kData: return "DATA";
    case LayerType::kConv: return "CONV";
    case LayerType::kPool: return "POOL";
    case LayerType::kAct: return "ACT";
    case LayerType::kLrn: return "LRN";
    case LayerType::kBn: return "BN";
    case LayerType::kFc: return "FC";
    case LayerType::kDropout: return "DROPOUT";
    case LayerType::kSoftmax: return "SOFTMAX";
    case LayerType::kEltwise: return "ELTWISE";
    case LayerType::kConcat: return "CONCAT";
  }
  return "?";
}

void Layer::create_tensors(tensor::TensorRegistry& reg) {
  output_ = reg.create(name_ + ":y", out_shape_, tensor::TensorKind::kData);
  if (needs_output_grad()) {
    output_grad_ = reg.create(name_ + ":dy", out_shape_, tensor::TensorKind::kGrad);
  }
}

std::vector<tensor::Tensor*> Layer::forward_uses() const {
  std::vector<tensor::Tensor*> uses;
  for (const Layer* p : prevs_) uses.push_back(p->output());
  for (tensor::Tensor* t : params_) uses.push_back(t);
  return uses;
}

std::vector<tensor::Tensor*> Layer::forward_defs() const {
  std::vector<tensor::Tensor*> defs{output_};
  for (tensor::Tensor* t : aux_) defs.push_back(t);
  return defs;
}

std::vector<tensor::Tensor*> Layer::backward_defs() const {
  std::vector<tensor::Tensor*> defs;
  for (const Layer* p : prevs_) {
    if (p->output_grad()) defs.push_back(p->output_grad());
  }
  for (tensor::Tensor* t : param_grads_) defs.push_back(t);
  return defs;
}

uint64_t Layer::forward_bytes() const {
  uint64_t b = output_ ? output_->bytes() : 0;
  for (const Layer* p : prevs_) b += p->output()->bytes();
  return b;
}

uint64_t Layer::layer_tensor_bytes() const {
  uint64_t b = 0;
  if (output_) b += output_->bytes();
  if (output_grad_) b += output_grad_->bytes();
  for (const tensor::Tensor* t : params_) b += t->bytes();
  for (const tensor::Tensor* t : param_grads_) b += t->bytes();
  for (const tensor::Tensor* t : aux_) b += t->bytes();
  for (const Layer* p : prevs_) {
    b += p->output()->bytes();
    if (p->output_grad()) b += p->output_grad()->bytes();
  }
  return b;
}

}  // namespace sn::graph
