#include "graph/zoo.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

namespace sn::graph {

namespace {

std::string nm(const std::string& base, int i) { return base + std::to_string(i); }

/// conv -> BN -> ReLU, the standard modern block (rectangular kernels OK).
Layer* conv_bn_relu(Net& net, const std::string& name, Layer* in, int k, int kh, int kw,
                    int stride, int pad_h, int pad_w) {
  Layer* c = net.add(
      std::make_unique<ConvLayer>(name, k, kh, kw, stride, pad_h, pad_w, /*has_bias=*/false),
      {in});
  Layer* b = net.bn(name + "_bn", c);
  return net.relu(name + "_relu", b);
}

Layer* conv_bn_relu_sq(Net& net, const std::string& name, Layer* in, int k, int kh, int stride,
                       int pad) {
  return conv_bn_relu(net, name, in, k, kh, kh, stride, pad, pad);
}

}  // namespace

// ------------------------------------------------------------------ AlexNet

std::unique_ptr<Net> build_alexnet(int batch, int image, int classes) {
  auto net = std::make_unique<Net>();
  net->set_arch("alexnet");
  Layer* d = net->data("DATA", tensor::Shape{batch, 3, image, image});
  Layer* x = net->conv("CONV1", d, 96, 11, 4, 0);
  x = net->relu("RELU1", x);
  x = net->lrn("LRN1", x);
  x = net->pool_max("POOL1", x, 3, 2);
  x = net->conv("CONV2", x, 256, 5, 1, 2);
  x = net->relu("RELU2", x);
  x = net->lrn("LRN2", x);
  x = net->pool_max("POOL2", x, 3, 2);
  x = net->conv("CONV3", x, 384, 3, 1, 1);
  x = net->relu("RELU3", x);
  x = net->conv("CONV4", x, 384, 3, 1, 1);
  x = net->relu("RELU4", x);
  x = net->conv("CONV5", x, 256, 3, 1, 1);
  x = net->relu("RELU5", x);
  x = net->pool_max("POOL5", x, 3, 2);
  x = net->fc("FC1", x, 4096);
  x = net->relu("RELU6", x);
  x = net->dropout("DROPOUT1", x, 0.5f);
  x = net->fc("FC2", x, 4096);
  x = net->relu("RELU7", x);
  x = net->dropout("DROPOUT2", x, 0.5f);
  x = net->fc("FC3", x, classes);
  net->softmax_loss("SOFTMAX", x);
  net->finalize();
  return net;
}

// --------------------------------------------------------------------- VGG

std::unique_ptr<Net> build_vgg(int depth, int batch, int image, int classes) {
  if (depth != 16 && depth != 19) throw std::invalid_argument("VGG depth must be 16 or 19");
  // Convs per block: VGG16 = 2,2,3,3,3; VGG19 = 2,2,4,4,4.
  const int convs3 = depth == 16 ? 3 : 4;
  const int block_convs[5] = {2, 2, convs3, convs3, convs3};
  const int block_ch[5] = {64, 128, 256, 512, 512};

  auto net = std::make_unique<Net>();
  net->set_arch(depth == 16 ? "vgg16" : "vgg19");
  Layer* x = net->data("DATA", tensor::Shape{batch, 3, image, image});
  int ci = 1;
  for (int b = 0; b < 5; ++b) {
    for (int i = 0; i < block_convs[b]; ++i, ++ci) {
      x = net->conv(nm("CONV", ci), x, block_ch[b], 3, 1, 1);
      x = net->relu(nm("RELU", ci), x);
    }
    x = net->pool_max(nm("POOL", b + 1), x, 2, 2);
  }
  x = net->fc("FC1", x, 4096);
  x = net->relu("RELU_FC1", x);
  x = net->dropout("DROPOUT1", x, 0.5f);
  x = net->fc("FC2", x, 4096);
  x = net->relu("RELU_FC2", x);
  x = net->dropout("DROPOUT2", x, 0.5f);
  x = net->fc("FC3", x, classes);
  net->softmax_loss("SOFTMAX", x);
  net->finalize();
  return net;
}

// ------------------------------------------------------------------ ResNet

namespace {

/// Bottleneck unit: 1x1/m -> 3x3/m -> 1x1/4m with BN+ReLU, eltwise shortcut.
Layer* bottleneck(Net& net, const std::string& name, Layer* in, int mid, int stride) {
  const int out_ch = 4 * mid;
  const int in_ch = static_cast<int>(in->output() ? in->output()->shape().c : 0);
  // Shapes are not inferred yet at build time; track channels via the conv
  // params instead: rely on caller passing correct `stride` and project the
  // shortcut whenever stride != 1 or this is the first unit of a stage
  // (signalled by mid*4 != previous out channels, which the caller knows).
  (void)in_ch;

  Layer* b = conv_bn_relu_sq(net, name + "_1x1a", in, mid, 1, stride, 0);
  b = conv_bn_relu_sq(net, name + "_3x3", b, mid, 3, 1, 1);
  b = net.add(std::make_unique<ConvLayer>(name + "_1x1b", out_ch, 1, 1, 1, 0, 0, false), {b});
  b = net.bn(name + "_1x1b_bn", b);
  return b;
}

Layer* residual_stage(Net& net, const std::string& name, Layer* x, int mid, int units,
                      int first_stride, bool project_first) {
  for (int u = 0; u < units; ++u) {
    int stride = u == 0 ? first_stride : 1;
    Layer* branch = bottleneck(net, name + "_u" + std::to_string(u), x, mid, stride);
    Layer* shortcut = x;
    if (u == 0 && (project_first || first_stride != 1)) {
      shortcut = net.add(
          std::make_unique<ConvLayer>(name + "_u0_proj", 4 * mid, 1, 1, stride, 0, 0, false), {x});
      shortcut = net.bn(name + "_u0_proj_bn", shortcut);
    }
    x = net.eltwise(name + "_u" + std::to_string(u) + "_add", {branch, shortcut});
    x = net.relu(name + "_u" + std::to_string(u) + "_relu", x);
  }
  return x;
}

}  // namespace

int resnet_depth(int n1, int n2, int n3, int n4) { return 3 * (n1 + n2 + n3 + n4) + 2; }

std::unique_ptr<Net> build_resnet(int n1, int n2, int n3, int n4, int batch, int image,
                                  int classes) {
  auto net = std::make_unique<Net>();
  net->set_arch("resnet" + std::to_string(resnet_depth(n1, n2, n3, n4)));
  Layer* x = net->data("DATA", tensor::Shape{batch, 3, image, image});
  x = conv_bn_relu_sq(*net, "CONV1", x, 64, 7, 2, 3);
  x = net->pool_max("POOL1", x, 3, 2, 1);
  x = residual_stage(*net, "stage1", x, 64, n1, 1, /*project_first=*/true);
  x = residual_stage(*net, "stage2", x, 128, n2, 2, true);
  x = residual_stage(*net, "stage3", x, 256, n3, 2, true);
  x = residual_stage(*net, "stage4", x, 512, n4, 2, true);
  // Global average pool (kernel = remaining spatial extent).
  int spatial = image / 32;  // 224 -> 7
  if (spatial < 1) spatial = 1;
  x = net->pool_avg("POOL5", x, spatial, 1);
  x = net->fc("FC", x, classes);
  net->softmax_loss("SOFTMAX", x);
  net->finalize();
  return net;
}

std::unique_ptr<Net> build_resnet_preset(int depth, int batch, int image, int classes) {
  switch (depth) {
    case 50: return build_resnet(3, 4, 6, 3, batch, image, classes);
    case 101: return build_resnet(3, 4, 23, 3, batch, image, classes);
    case 152: return build_resnet(3, 8, 36, 3, batch, image, classes);
    default: throw std::invalid_argument("resnet preset must be 50/101/152");
  }
}

// -------------------------------------------------------------- InceptionV4

namespace {

/// Inception-A: four branches at 35x35, 96 channels each -> concat 384.
Layer* inception_a(Net& net, const std::string& name, Layer* in) {
  Layer* b0 = net.pool_avg(name + "_b0_pool", in, 3, 1, 1);
  b0 = conv_bn_relu_sq(net, name + "_b0_1x1", b0, 96, 1, 1, 0);
  Layer* b1 = conv_bn_relu_sq(net, name + "_b1_1x1", in, 96, 1, 1, 0);
  Layer* b2 = conv_bn_relu_sq(net, name + "_b2_1x1", in, 64, 1, 1, 0);
  b2 = conv_bn_relu_sq(net, name + "_b2_3x3", b2, 96, 3, 1, 1);
  Layer* b3 = conv_bn_relu_sq(net, name + "_b3_1x1", in, 64, 1, 1, 0);
  b3 = conv_bn_relu_sq(net, name + "_b3_3x3a", b3, 96, 3, 1, 1);
  b3 = conv_bn_relu_sq(net, name + "_b3_3x3b", b3, 96, 3, 1, 1);
  return net.concat(name + "_concat", {b0, b1, b2, b3});
}

/// Reduction-A: 35x35 -> 17x17.
Layer* reduction_a(Net& net, const std::string& name, Layer* in) {
  Layer* b0 = net.pool_max(name + "_b0_pool", in, 3, 2, 0);
  Layer* b1 = conv_bn_relu_sq(net, name + "_b1_3x3", in, 384, 3, 2, 0);
  Layer* b2 = conv_bn_relu_sq(net, name + "_b2_1x1", in, 192, 1, 1, 0);
  b2 = conv_bn_relu_sq(net, name + "_b2_3x3a", b2, 224, 3, 1, 1);
  b2 = conv_bn_relu_sq(net, name + "_b2_3x3b", b2, 256, 3, 2, 0);
  return net.concat(name + "_concat", {b0, b1, b2});
}

/// Inception-B with 7x1/1x7 factorized convolutions at 17x17.
Layer* inception_b(Net& net, const std::string& name, Layer* in) {
  Layer* b0 = net.pool_avg(name + "_b0_pool", in, 3, 1, 1);
  b0 = conv_bn_relu_sq(net, name + "_b0_1x1", b0, 128, 1, 1, 0);
  Layer* b1 = conv_bn_relu_sq(net, name + "_b1_1x1", in, 384, 1, 1, 0);
  Layer* b2 = conv_bn_relu_sq(net, name + "_b2_1x1", in, 192, 1, 1, 0);
  b2 = conv_bn_relu(net, name + "_b2_1x7", b2, 224, 1, 7, 1, 0, 3);
  b2 = conv_bn_relu(net, name + "_b2_7x1", b2, 256, 7, 1, 1, 3, 0);
  Layer* b3 = conv_bn_relu_sq(net, name + "_b3_1x1", in, 192, 1, 1, 0);
  b3 = conv_bn_relu_sq(net, name + "_b3_7x7a", b3, 224, 7, 1, 3);
  b3 = conv_bn_relu_sq(net, name + "_b3_7x7b", b3, 256, 7, 1, 3);
  return net.concat(name + "_concat", {b0, b1, b2, b3});
}

/// Reduction-B: 17x17 -> 8x8.
Layer* reduction_b(Net& net, const std::string& name, Layer* in) {
  Layer* b0 = net.pool_max(name + "_b0_pool", in, 3, 2, 0);
  Layer* b1 = conv_bn_relu_sq(net, name + "_b1_1x1", in, 192, 1, 1, 0);
  b1 = conv_bn_relu_sq(net, name + "_b1_3x3", b1, 192, 3, 2, 0);
  Layer* b2 = conv_bn_relu_sq(net, name + "_b2_1x1", in, 256, 1, 1, 0);
  b2 = conv_bn_relu_sq(net, name + "_b2_7x7", b2, 320, 7, 1, 3);
  b2 = conv_bn_relu_sq(net, name + "_b2_3x3", b2, 320, 3, 2, 0);
  return net.concat(name + "_concat", {b0, b1, b2});
}

/// Inception-C at 8x8.
Layer* inception_c(Net& net, const std::string& name, Layer* in) {
  Layer* b0 = net.pool_avg(name + "_b0_pool", in, 3, 1, 1);
  b0 = conv_bn_relu_sq(net, name + "_b0_1x1", b0, 256, 1, 1, 0);
  Layer* b1 = conv_bn_relu_sq(net, name + "_b1_1x1", in, 256, 1, 1, 0);
  Layer* b2 = conv_bn_relu_sq(net, name + "_b2_1x1", in, 384, 1, 1, 0);
  Layer* b2a = conv_bn_relu(net, name + "_b2_1x3", b2, 256, 1, 3, 1, 0, 1);
  Layer* b2b = conv_bn_relu(net, name + "_b2_3x1", b2, 256, 3, 1, 1, 1, 0);
  Layer* b3 = conv_bn_relu_sq(net, name + "_b3_1x1", in, 384, 1, 1, 0);
  b3 = conv_bn_relu_sq(net, name + "_b3_3x3", b3, 512, 3, 1, 1);
  Layer* b3a = conv_bn_relu(net, name + "_b3_1x3", b3, 256, 1, 3, 1, 0, 1);
  Layer* b3b = conv_bn_relu(net, name + "_b3_3x1", b3, 256, 3, 1, 1, 1, 0);
  return net.concat(name + "_concat", {b0, b1, b2a, b2b, b3a, b3b});
}

}  // namespace

std::unique_ptr<Net> build_inception_v4(int batch, int image, int classes) {
  auto net = std::make_unique<Net>();
  net->set_arch("inception_v4");
  Layer* x = net->data("DATA", tensor::Shape{batch, 3, image, image});
  // Stem: 299 -> 35x35x384.
  x = conv_bn_relu_sq(*net, "stem_conv1", x, 32, 3, 2, 0);   // 149
  x = conv_bn_relu_sq(*net, "stem_conv2", x, 32, 3, 1, 0);   // 147
  x = conv_bn_relu_sq(*net, "stem_conv3", x, 64, 3, 1, 1);   // 147
  {
    Layer* p = net->pool_max("stem_pool1", x, 3, 2, 0);                 // 73
    Layer* c = conv_bn_relu_sq(*net, "stem_conv4", x, 96, 3, 2, 0);     // 73
    x = net->concat("stem_cat1", {p, c});                               // 160ch
  }
  {
    Layer* a = conv_bn_relu_sq(*net, "stem_a_1x1", x, 64, 1, 1, 0);
    a = conv_bn_relu_sq(*net, "stem_a_3x3", a, 96, 3, 1, 0);            // 71
    Layer* b = conv_bn_relu_sq(*net, "stem_b_1x1", x, 64, 1, 1, 0);
    b = conv_bn_relu_sq(*net, "stem_b_7x7", b, 64, 7, 1, 3);
    b = conv_bn_relu_sq(*net, "stem_b_3x3", b, 96, 3, 1, 0);            // 71
    x = net->concat("stem_cat2", {a, b});                               // 192ch
  }
  {
    Layer* c = conv_bn_relu_sq(*net, "stem_conv5", x, 192, 3, 2, 0);    // 35
    Layer* p = net->pool_max("stem_pool2", x, 3, 2, 0);                 // 35
    x = net->concat("stem_cat3", {c, p});                               // 384ch
  }
  for (int i = 0; i < 4; ++i) x = inception_a(*net, nm("inceptA", i), x);
  x = reduction_a(*net, "reductA", x);
  for (int i = 0; i < 7; ++i) x = inception_b(*net, nm("inceptB", i), x);
  x = reduction_b(*net, "reductB", x);
  for (int i = 0; i < 3; ++i) x = inception_c(*net, nm("inceptC", i), x);
  int spatial = 8;
  x = net->pool_avg("POOL_FINAL", x, spatial, 1);
  x = net->dropout("DROPOUT", x, 0.2f);
  x = net->fc("FC", x, classes);
  net->softmax_loss("SOFTMAX", x);
  net->finalize();
  return net;
}

// ---------------------------------------------------------------- DenseNet

std::unique_ptr<Net> build_densenet121(int batch, int image, int classes, int growth) {
  auto net = std::make_unique<Net>();
  net->set_arch("densenet121");
  Layer* x = net->data("DATA", tensor::Shape{batch, 3, image, image});
  x = conv_bn_relu_sq(*net, "CONV1", x, 2 * growth, 7, 2, 3);
  x = net->pool_max("POOL1", x, 3, 2, 1);
  const int blocks[4] = {6, 12, 24, 16};
  int channels = 2 * growth;
  for (int b = 0; b < 4; ++b) {
    for (int u = 0; u < blocks[b]; ++u) {
      std::string name = "dense" + std::to_string(b) + "_u" + std::to_string(u);
      Layer* y = net->bn(name + "_bn1", x);
      y = net->relu(name + "_relu1", y);
      y = net->conv(name + "_1x1", y, 4 * growth, 1, 1, 0, false);
      y = net->bn(name + "_bn2", y);
      y = net->relu(name + "_relu2", y);
      y = net->conv(name + "_3x3", y, growth, 3, 1, 1, false);
      x = net->concat(name + "_cat", {x, y});  // full join: concat everything so far
      channels += growth;
    }
    if (b < 3) {
      std::string name = "trans" + std::to_string(b);
      channels /= 2;
      Layer* t = net->bn(name + "_bn", x);
      t = net->relu(name + "_relu", t);
      t = net->conv(name + "_1x1", t, channels, 1, 1, 0, false);
      x = net->pool_avg(name + "_pool", t, 2, 2);
    }
  }
  int spatial = image / 32;
  if (spatial < 1) spatial = 1;
  x = net->pool_avg("POOL_FINAL", x, spatial, 1);
  x = net->fc("FC", x, classes);
  net->softmax_loss("SOFTMAX", x);
  net->finalize();
  return net;
}

// ------------------------------------------------------------- tiny models

std::unique_ptr<Net> build_tiny_linear(int batch, int image, int classes) {
  auto net = std::make_unique<Net>();
  Layer* x = net->data("DATA", tensor::Shape{batch, 3, image, image});
  x = net->conv("CONV1", x, 8, 3, 1, 1);
  x = net->relu("RELU1", x);
  x = net->pool_max("POOL1", x, 2, 2);
  x = net->fc("FC1", x, classes);
  net->softmax_loss("SOFTMAX", x);
  net->finalize();
  return net;
}

std::unique_ptr<Net> build_tiny_fanjoin(int batch, int image, int classes) {
  auto net = std::make_unique<Net>();
  Layer* d = net->data("DATA", tensor::Shape{batch, 3, image, image});
  // Fig. 3c: DATA forks two branches that join before FC.
  Layer* a = net->conv("CONV_A", d, 8, 3, 1, 1);
  a = net->relu("RELU_A", a);
  Layer* b = net->conv("CONV_B", d, 8, 3, 1, 1);
  Layer* j = net->concat("JOIN", {a, b});
  Layer* p = net->pool_max("POOL", j, 2, 2);
  Layer* f = net->fc("FC", p, classes);
  net->softmax_loss("SOFTMAX", f);
  net->finalize();
  return net;
}

std::unique_ptr<Net> build_tiny_resnet(int batch, int units, int image, int classes) {
  auto net = std::make_unique<Net>();
  Layer* x = net->data("DATA", tensor::Shape{batch, 3, image, image});
  x = net->conv("CONV0", x, 8, 3, 1, 1, false);
  x = net->bn("BN0", x);
  x = net->relu("RELU0", x);
  for (int u = 0; u < units; ++u) {
    std::string name = "res" + std::to_string(u);
    Layer* b = net->conv(name + "_conv1", x, 8, 3, 1, 1, false);
    b = net->bn(name + "_bn1", b);
    b = net->relu(name + "_relu1", b);
    b = net->conv(name + "_conv2", b, 8, 3, 1, 1, false);
    b = net->bn(name + "_bn2", b);
    x = net->eltwise(name + "_add", {b, x});
    x = net->relu(name + "_relu2", x);
  }
  x = net->pool_avg("POOL", x, 2, 2);
  x = net->dropout("DROPOUT", x, 0.3f);
  x = net->fc("FC", x, classes);
  net->softmax_loss("SOFTMAX", x);
  net->finalize();
  return net;
}

std::unique_ptr<Net> build_mini_alexnet(int batch, int image, int classes) {
  auto net = std::make_unique<Net>();
  Layer* x = net->data("DATA", tensor::Shape{batch, 3, image, image});
  x = net->conv("CONV1", x, 8, 3, 1, 1);
  x = net->relu("RELU1", x);
  x = net->lrn("LRN1", x, 3);
  x = net->pool_max("POOL1", x, 2, 2);
  x = net->conv("CONV2", x, 16, 3, 1, 1);
  x = net->relu("RELU2", x);
  x = net->lrn("LRN2", x, 3);
  x = net->pool_max("POOL2", x, 2, 2);
  x = net->conv("CONV3", x, 16, 3, 1, 1);
  x = net->relu("RELU3", x);
  x = net->fc("FC1", x, 32);
  x = net->relu("RELU6", x);
  x = net->dropout("DROPOUT1", x, 0.5f);
  x = net->fc("FC2", x, classes);
  net->softmax_loss("SOFTMAX", x);
  net->finalize();
  return net;
}

}  // namespace sn::graph
