// Net: a non-linear layer graph plus its execution route.
//
// Networks are DAGs with fan (one output consumed by several layers) and
// join (a layer with several inputs) connections — Fig. 1/3 of the paper.
// `finalize()` runs the paper's Algorithm 1 (DFS with join counters) to
// linearize the graph into forward steps, mirrors them into backward steps,
// infers shapes, and registers every tensor.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/layers.hpp"
#include "tensor/tensor.hpp"

namespace sn::graph {

/// One scheduling step: a layer pass. A training iteration is the forward
/// route (steps 0..N-1) followed by the mirrored backward route (N..2N-1).
struct Step {
  Layer* layer = nullptr;
  bool forward = true;
  int index = -1;  ///< position in the 2N-step iteration
};

class Net {
 public:
  Net() = default;

  /// Add a layer; `inputs` wires prev/next edges (empty only for DataLayer).
  Layer* add(std::unique_ptr<Layer> layer, const std::vector<Layer*>& inputs);

  // Convenience builders (thin wrappers over add()).
  Layer* data(const std::string& name, tensor::Shape shape);
  Layer* conv(const std::string& name, Layer* in, int k, int kh, int stride, int pad,
              bool bias = true);
  Layer* pool_max(const std::string& name, Layer* in, int kh, int stride, int pad = 0);
  Layer* pool_avg(const std::string& name, Layer* in, int kh, int stride, int pad = 0);
  Layer* relu(const std::string& name, Layer* in);
  Layer* sigmoid(const std::string& name, Layer* in);
  Layer* tanh_act(const std::string& name, Layer* in);
  Layer* lrn(const std::string& name, Layer* in, int size = 5);
  Layer* bn(const std::string& name, Layer* in);
  Layer* fc(const std::string& name, Layer* in, int k, bool bias = true);
  Layer* dropout(const std::string& name, Layer* in, float ratio = 0.5f);
  Layer* softmax_loss(const std::string& name, Layer* in);
  Layer* eltwise(const std::string& name, const std::vector<Layer*>& ins);
  Layer* concat(const std::string& name, const std::vector<Layer*>& ins);

  /// Build the execution route (Algorithm 1), infer shapes, create tensors.
  /// Must be called exactly once after the full graph is wired.
  void finalize();

  bool finalized() const { return finalized_; }
  size_t num_layers() const { return layers_.size(); }
  const std::vector<std::unique_ptr<Layer>>& layers() const { return layers_; }

  /// Forward execution order (Algorithm 1 output).
  const std::vector<Layer*>& route() const { return route_; }

  /// The 2N-step iteration: forward route then mirrored backward route
  /// (paper Fig. 6: left digit = forward step, right digit = backward step).
  const std::vector<Step>& steps() const { return steps_; }

  Layer* input_layer() const { return input_; }
  Layer* loss_layer() const { return loss_; }

  /// Architecture tag (e.g. "vgg16", "resnet50") set by the zoo builders.
  /// Policy tables key off it (per-net prefetch-lookahead defaults); empty
  /// for hand-built nets, which fall back to the generic default.
  const std::string& arch() const { return arch_; }
  void set_arch(std::string arch) { arch_ = std::move(arch); }

  tensor::TensorRegistry& registry() { return registry_; }
  const tensor::TensorRegistry& registry() const { return registry_; }

  /// Total bytes of all registered tensors (the paper's baseline peak_m:
  /// every tensor allocated independently, nothing freed).
  uint64_t total_tensor_bytes() const;

  /// max_i(l_i): the layer-wise lower bound on peak memory (paper §3).
  uint64_t max_layer_bytes() const;

 private:
  void build_route();

  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<Layer*> route_;
  std::vector<Step> steps_;
  tensor::TensorRegistry registry_;
  Layer* input_ = nullptr;
  Layer* loss_ = nullptr;
  std::string arch_;
  bool finalized_ = false;
};

}  // namespace sn::graph
