// NetPartitioner: cut a Net's route into contiguous pipeline stages.
//
// Pipeline parallelism (dist::PipelineParallelTrainer) places each stage on
// its own cluster device and streams the boundary activation forward (and
// its gradient backward) over the P2P fabric. A cut position is *valid* only
// when exactly ONE layer's output crosses it — the stage boundary must be a
// single tensor, or the downstream stage would need several synthetic
// inputs. Linear nets (AlexNet, VGG) can cut anywhere; fan/join nets
// (ResNet, Inception, DenseNet) can cut only at articulation points between
// blocks, which this class discovers from the graph.
//
// Stage balance uses the same analytic cost model the simulator runs on:
// a stage's cost is its layers' modeled forward+backward seconds plus the
// link seconds of the boundary activation it ships downstream. partition()
// minimizes the maximum stage cost over all valid cut combinations (the
// pipeline's steady-state throughput is set by its slowest stage);
// partition_at() takes explicit boundaries so tests (and users who know
// their net) can pin exact cuts.
//
// Memory awareness: when a device capacity is given, each candidate stage is
// charged its working-set FLOOR under full offload — the stage's persistent
// bytes (params + param grads stay device-resident for SGD) plus the largest
// single layer's non-param tensor set (the paper's l_i: everything cuDNN
// needs resident to run one layer; offload can spill everything else, but
// never below one layer's own operands). The min-max DP skips cuts whose
// stage cannot fit even at that floor, so partition() targets capacity as
// well as throughput; partition_at() rejects explicitly-pinned infeasible
// cuts with std::invalid_argument.
//
// extract_stage() materializes one stage as a standalone Net: stages after
// the first replace the boundary producer with a synthetic DataLayer whose
// output carries a gradient (DataLayer::set_input_grad), so the stage's
// backward accumulates the gradient w.r.t. its input for streaming upstream.
// Layer (and therefore parameter-tensor) names are preserved, which is what
// lets per-tensor-seeded weight initialization reproduce the full net's
// parameters stage-locally.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "graph/net.hpp"
#include "sim/costmodel.hpp"
#include "sim/device_spec.hpp"

namespace sn::graph {

/// Observed-cost override for the stage balance: fill `*fwd_seconds` /
/// `*bwd_seconds` with measured per-execution kernel seconds for the layer
/// named `name` and return true, or return false (outputs untouched) to fall
/// back to the analytic roofline for that layer. obs::CostProfile's
/// layer_seconds has exactly this shape — wrap it in a lambda to keep the
/// graph layer free of an obs dependency.
using LayerCostFn =
    std::function<bool(const std::string& name, double* fwd_seconds, double* bwd_seconds)>;

/// How the partition cost model charges stash-and-recompute forwards.
/// kNone is the legacy balance (forward + backward only) that GPipe-era
/// cuts were chosen with — kept as the default so existing schedules stay
/// byte-identical. kAllButLast models the 1F1B steady state: every stage
/// re-materializes its forward before each backward EXCEPT the last, whose
/// backward always directly follows its forward (src/dist/schedule_engine).
/// Without this weighting the last stage runs systematically light and its
/// saved remat time turns into pipeline idle instead of wall-clock.
enum class StageRecompute { kNone, kAllButLast };

struct StageSpec {
  int begin = 0;                 ///< first route index of the stage
  int end = 0;                   ///< one past the last route index
  double compute_seconds = 0.0;  ///< modeled fwd+bwd seconds of the stage's layers
  uint64_t boundary_bytes = 0;   ///< activation bytes shipped downstream (0 for the last stage)
  int boundary_layer = -1;       ///< route index producing the outgoing boundary (-1 for last)
  uint64_t min_bytes = 0;        ///< peak working-set floor under full offload
};

struct PartitionPlan {
  std::vector<StageSpec> stages;
  std::vector<int> cuts;            ///< route positions; stage s is [cuts[s-1], cuts[s])
  double max_stage_seconds = 0.0;   ///< cost of the slowest stage (incl. boundary link time)
};

class NetPartitioner {
 public:
  /// `net` must be finalized. `spec`/`link` calibrate the cost model the
  /// balance is computed against (defaults match the single-device sim).
  /// `device_capacity` > 0 enables memory awareness: stages whose working-set
  /// floor exceeds it are rejected (0 = unlimited, the pre-capacity default).
  /// `observed` (profile-guided partitioning) overrides per-layer seconds in
  /// the balance; null keeps the analytic roofline and cuts byte-identical
  /// to the pre-profile releases (pinned by test_partitioner).
  explicit NetPartitioner(const Net& net, sim::DeviceSpec spec = sim::k40c_spec(),
                          sim::LinkSpec link = sim::pcie_p2p_link_spec(),
                          uint64_t device_capacity = 0, LayerCostFn observed = nullptr);

  /// Route positions i (0 < i < route size) where the net may be cut between
  /// route[i-1] and route[i]: exactly one layer output crosses. Ascending.
  const std::vector<int>& valid_cuts() const { return valid_cuts_; }

  /// Route index of the unique producer whose output crosses `cut`
  /// (-1 when the cut is not valid).
  int boundary_producer(int cut) const;

  /// Modeled forward+backward seconds of one layer (roofline cost model).
  /// Always analytic — the observed override applies only to the balance
  /// prefixes, so callers can compare analytic vs profile-guided weight.
  double layer_seconds(const Layer* l) const;

  /// Peak working-set floor of stage [begin, end) under full offload:
  /// persistent (param + param-grad) bytes plus the larger of (a) the
  /// largest single layer's non-param tensor set and (b) the pinned
  /// stage-boundary tensors the trainers keep device-resident for the whole
  /// run. Offload cannot shrink a stage below this.
  uint64_t stage_min_bytes(int begin, int end) const;

  /// False when a capacity is set and stage [begin, end) cannot fit its pool
  /// even with everything offloadable offloaded.
  bool stage_fits(int begin, int end) const {
    return device_capacity_ == 0 || stage_min_bytes(begin, end) <= device_capacity_;
  }

  uint64_t device_capacity() const { return device_capacity_; }

  /// Cost-balanced partition into `stages` contiguous stages over the valid
  /// cuts: minimizes the slowest stage's compute + boundary-link seconds.
  /// `recompute` selects how re-materialization weights the balance (see
  /// StageRecompute). Throws std::invalid_argument when fewer than
  /// `stages`-1 valid cuts exist.
  PartitionPlan partition(int stages, StageRecompute recompute = StageRecompute::kNone) const;

  /// Explicit-boundary override: `cuts` must be ascending valid cut
  /// positions, each boundary produced inside the immediately preceding
  /// stage. Throws std::invalid_argument otherwise.
  PartitionPlan partition_at(const std::vector<int>& cuts) const;

 private:
  PartitionPlan make_plan(const std::vector<int>& cuts) const;
  /// Compute + outgoing boundary link seconds; `remat` adds the stage's
  /// forward seconds once more (stash-and-recompute steady state).
  double stage_cost(int begin, int end, bool remat = false) const;
  int scan_boundary_producer(int cut) const;    ///< O(route * fan-in); ctor fills producer_

  const Net& net_;
  sim::CostModel cost_;
  sim::LinkSpec link_;
  uint64_t device_capacity_ = 0;
  LayerCostFn observed_;  ///< null = analytic balance
  std::vector<int> pos_;         ///< layer id -> route position
  std::vector<double> prefix_;   ///< prefix_[i] = sum of layer_seconds(route[0..i))
  std::vector<double> fwd_prefix_;  ///< forward-only seconds prefix (remat weighting)
  std::vector<int> producer_;    ///< cut position -> crossing producer (-1 = invalid cut)
  std::vector<int> valid_cuts_;
  /// Memory-awareness inputs per route position: persistent (param +
  /// param-grad) byte prefix sums, and each layer's non-param l_i term with
  /// a sparse range-max table so stage_min_bytes is O(1) inside the
  /// partition DP (like prefix_, cached: the DP must not rescan).
  std::vector<uint64_t> persist_prefix_;
  std::vector<uint64_t> nonparam_peak_;
  std::vector<std::vector<uint64_t>> peak_table_;  ///< [k][i] = max of [i, i + 2^k)
};

/// Materialize stage `stage` of `plan` as a standalone finalized Net at the
/// source net's batch size. Preserves layer names; stages after the first
/// get a gradient-carrying DataLayer named "STAGE_IN" in place of the
/// upstream boundary producer.
std::unique_ptr<Net> extract_stage(const Net& src, const PartitionPlan& plan, int stage);

}  // namespace sn::graph
