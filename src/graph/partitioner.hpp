// NetPartitioner: cut a Net's route into contiguous pipeline stages.
//
// Pipeline parallelism (dist::PipelineParallelTrainer) places each stage on
// its own cluster device and streams the boundary activation forward (and
// its gradient backward) over the P2P fabric. A cut position is *valid* only
// when exactly ONE layer's output crosses it — the stage boundary must be a
// single tensor, or the downstream stage would need several synthetic
// inputs. Linear nets (AlexNet, VGG) can cut anywhere; fan/join nets
// (ResNet, Inception, DenseNet) can cut only at articulation points between
// blocks, which this class discovers from the graph.
//
// Stage balance uses the same analytic cost model the simulator runs on:
// a stage's cost is its layers' modeled forward+backward seconds plus the
// link seconds of the boundary activation it ships downstream. partition()
// minimizes the maximum stage cost over all valid cut combinations (the
// pipeline's steady-state throughput is set by its slowest stage);
// partition_at() takes explicit boundaries so tests (and users who know
// their net) can pin exact cuts.
//
// extract_stage() materializes one stage as a standalone Net: stages after
// the first replace the boundary producer with a synthetic DataLayer whose
// output carries a gradient (DataLayer::set_input_grad), so the stage's
// backward accumulates the gradient w.r.t. its input for streaming upstream.
// Layer (and therefore parameter-tensor) names are preserved, which is what
// lets per-tensor-seeded weight initialization reproduce the full net's
// parameters stage-locally.
#pragma once

#include <memory>
#include <vector>

#include "graph/net.hpp"
#include "sim/costmodel.hpp"
#include "sim/device_spec.hpp"

namespace sn::graph {

struct StageSpec {
  int begin = 0;                 ///< first route index of the stage
  int end = 0;                   ///< one past the last route index
  double compute_seconds = 0.0;  ///< modeled fwd+bwd seconds of the stage's layers
  uint64_t boundary_bytes = 0;   ///< activation bytes shipped downstream (0 for the last stage)
  int boundary_layer = -1;       ///< route index producing the outgoing boundary (-1 for last)
};

struct PartitionPlan {
  std::vector<StageSpec> stages;
  std::vector<int> cuts;            ///< route positions; stage s is [cuts[s-1], cuts[s])
  double max_stage_seconds = 0.0;   ///< cost of the slowest stage (incl. boundary link time)
};

class NetPartitioner {
 public:
  /// `net` must be finalized. `spec`/`link` calibrate the cost model the
  /// balance is computed against (defaults match the single-device sim).
  explicit NetPartitioner(const Net& net, sim::DeviceSpec spec = sim::k40c_spec(),
                          sim::LinkSpec link = sim::pcie_p2p_link_spec());

  /// Route positions i (0 < i < route size) where the net may be cut between
  /// route[i-1] and route[i]: exactly one layer output crosses. Ascending.
  const std::vector<int>& valid_cuts() const { return valid_cuts_; }

  /// Route index of the unique producer whose output crosses `cut`
  /// (-1 when the cut is not valid).
  int boundary_producer(int cut) const;

  /// Modeled forward+backward seconds of one layer (roofline cost model).
  double layer_seconds(const Layer* l) const;

  /// Cost-balanced partition into `stages` contiguous stages over the valid
  /// cuts: minimizes the slowest stage's compute + boundary-link seconds.
  /// Throws std::invalid_argument when fewer than `stages`-1 valid cuts exist.
  PartitionPlan partition(int stages) const;

  /// Explicit-boundary override: `cuts` must be ascending valid cut
  /// positions, each boundary produced inside the immediately preceding
  /// stage. Throws std::invalid_argument otherwise.
  PartitionPlan partition_at(const std::vector<int>& cuts) const;

 private:
  PartitionPlan make_plan(const std::vector<int>& cuts) const;
  double stage_cost(int begin, int end) const;  ///< compute + outgoing boundary link seconds
  int scan_boundary_producer(int cut) const;    ///< O(route * fan-in); ctor fills producer_

  const Net& net_;
  sim::CostModel cost_;
  sim::LinkSpec link_;
  std::vector<int> pos_;         ///< layer id -> route position
  std::vector<double> prefix_;   ///< prefix_[i] = sum of layer_seconds(route[0..i))
  std::vector<int> producer_;    ///< cut position -> crossing producer (-1 = invalid cut)
  std::vector<int> valid_cuts_;
};

/// Materialize stage `stage` of `plan` as a standalone finalized Net at the
/// source net's batch size. Preserves layer names; stages after the first
/// get a gradient-carrying DataLayer named "STAGE_IN" in place of the
/// upstream boundary producer.
std::unique_ptr<Net> extract_stage(const Net& src, const PartitionPlan& plan, int stage);

}  // namespace sn::graph
