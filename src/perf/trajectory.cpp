#include "perf/trajectory.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

#include "util/json_writer.hpp"
#include "util/table.hpp"

namespace sn::perf {

namespace {

[[noreturn]] void fail(const std::string& origin, const std::string& what) {
  throw TrajectoryError(origin + ": " + what);
}

double req_number(const util::JsonValue& obj, const std::string& key, const std::string& origin,
                  const std::string& ctx) {
  const util::JsonValue* v = obj.find(key);
  if (!v || !v->is_number()) fail(origin, ctx + ": missing numeric \"" + key + "\"");
  return v->as_number();
}

std::string req_string(const util::JsonValue& obj, const std::string& key,
                       const std::string& origin, const std::string& ctx) {
  const util::JsonValue* v = obj.find(key);
  if (!v || !v->is_string()) fail(origin, ctx + ": missing string \"" + key + "\"");
  return v->as_string();
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

using CellMap = std::map<std::string, std::map<std::string, MetricStat>>;

void add_cell(CellMap* cells, const std::string& origin, const std::string& key,
              std::map<std::string, MetricStat> metrics) {
  if (!cells) return;
  if (!cells->emplace(key, std::move(metrics)).second) {
    fail(origin, "duplicate cell key \"" + key + "\"");
  }
}

/// Read a row's optional {repeats, <m>_lo, <m>_hi} dispersion trio for the
/// primary metric `m`; all-or-nothing, lo <= median <= hi enforced. Returns
/// the stat for the row's already-read median value.
MetricStat row_stat(const util::JsonValue& row, const std::string& metric, double median,
                    const std::string& origin, const std::string& ctx) {
  MetricStat s{median, median, median, 1};
  const util::JsonValue* rep = row.find("repeats");
  const util::JsonValue* lo = row.find(metric + "_lo");
  const util::JsonValue* hi = row.find(metric + "_hi");
  if (!rep && !lo && !hi) return s;
  if (!rep || !lo || !hi || !rep->is_number() || !lo->is_number() || !hi->is_number()) {
    fail(origin, ctx + ": dispersion fields must come as the full {repeats, " + metric +
                     "_lo, " + metric + "_hi} trio");
  }
  s.repeats = static_cast<int>(rep->as_number());
  s.lo = lo->as_number();
  s.hi = hi->as_number();
  if (s.repeats < 1) fail(origin, ctx + ": repeats must be >= 1");
  if (!(s.lo <= median && median <= s.hi)) {
    fail(origin, ctx + ": dispersion violates " + metric + "_lo <= " + metric + " <= " +
                     metric + "_hi");
  }
  return s;
}

size_t load_pipeline_stages(const util::JsonValue& sec, const std::string& origin,
                            CellMap* cells) {
  const std::string kSec = "pipeline_stages";
  req_number(sec, "global_batch", origin, kSec);
  const util::JsonValue* configs = sec.find("configs");
  if (!configs || !configs->is_array() || configs->size() == 0) {
    fail(origin, kSec + ": missing non-empty \"configs\" array");
  }
  bool saw_1f1b = false;
  for (size_t i = 0; i < configs->size(); ++i) {
    const util::JsonValue& row = configs->at(i);
    std::string ctx = kSec + " row " + std::to_string(i);
    std::string net = req_string(row, "net", origin, ctx);
    std::string sched = req_string(row, "schedule", origin, ctx);
    int stages = static_cast<int>(req_number(row, "stages", origin, ctx));
    int mb = static_cast<int>(req_number(row, "microbatches", origin, ctx));
    saw_1f1b = saw_1f1b || sched == "1f1b";
    std::map<std::string, MetricStat> m;
    double seconds = req_number(row, "seconds", origin, ctx);
    m["seconds"] = row_stat(row, "seconds", seconds, origin, ctx);
    for (const char* k : {"bubble_seconds", "bubble_frac", "p2p_bytes", "p2p_seconds"}) {
      double v = req_number(row, k, origin, ctx);
      m[k] = MetricStat{v, v, v, 1};
    }
    add_cell(cells, origin,
             kSec + "/" + net + "/s" + std::to_string(stages) + "m" + std::to_string(mb) + "/" +
                 sched,
             std::move(m));
  }
  if (!saw_1f1b) fail(origin, kSec + ": no row with schedule \"1f1b\" (axis missing)");
  return configs->size();
}

size_t load_hybrid_grid(const util::JsonValue& sec, const std::string& origin, CellMap* cells) {
  const std::string kSec = "hybrid_grid";
  req_number(sec, "global_batch", origin, kSec);
  const util::JsonValue* configs = sec.find("configs");
  if (!configs || !configs->is_array() || configs->size() == 0) {
    fail(origin, kSec + ": missing non-empty \"configs\" array");
  }
  bool saw_hybrid_1f1b = false;
  for (size_t i = 0; i < configs->size(); ++i) {
    const util::JsonValue& row = configs->at(i);
    std::string ctx = kSec + " row " + std::to_string(i);
    std::string net = req_string(row, "net", origin, ctx);
    std::string kind = req_string(row, "kind", origin, ctx);
    std::string sched = req_string(row, "schedule", origin, ctx);
    int stages = static_cast<int>(req_number(row, "stages", origin, ctx));
    int replicas = static_cast<int>(req_number(row, "replicas", origin, ctx));
    int mb = static_cast<int>(req_number(row, "microbatches", origin, ctx));
    saw_hybrid_1f1b = saw_hybrid_1f1b || (kind == "hybrid" && sched == "1f1b");
    std::map<std::string, MetricStat> m;
    double seconds = req_number(row, "seconds", origin, ctx);
    m["seconds"] = row_stat(row, "seconds", seconds, origin, ctx);
    for (const char* k : {"img_per_s", "bubble_seconds", "allreduce_seconds",
                          "allreduce_exposed_seconds", "p2p_bytes"}) {
      double v = req_number(row, k, origin, ctx);
      m[k] = MetricStat{v, v, v, 1};
    }
    add_cell(cells, origin,
             kSec + "/" + net + "/" + kind + "/s" + std::to_string(stages) + "r" +
                 std::to_string(replicas) + "m" + std::to_string(mb) + "/" + sched,
             std::move(m));
  }
  if (!saw_hybrid_1f1b) fail(origin, kSec + ": no hybrid row with schedule \"1f1b\"");
  return configs->size();
}

size_t load_stream_overlap(const util::JsonValue& sec, const std::string& origin,
                           CellMap* cells) {
  const std::string kSec = "stream_overlap";
  const util::JsonValue* micro = sec.find("micro");
  if (!micro || !micro->is_object()) fail(origin, kSec + ": missing \"micro\" object");
  {
    std::map<std::string, MetricStat> m;
    for (const char* k :
         {"serialized_s", "dual_s", "d2h_seconds", "h2d_seconds", "overlap_ratio"}) {
      double v = req_number(*micro, k, origin, kSec + " micro");
      m[k] = MetricStat{v, v, v, 1};
    }
    add_cell(cells, origin, kSec + "/micro", std::move(m));
  }
  const util::JsonValue* nets = sec.find("nets");
  if (!nets || !nets->is_array() || nets->size() == 0) {
    fail(origin, kSec + ": missing non-empty \"nets\" array");
  }
  for (size_t i = 0; i < nets->size(); ++i) {
    const util::JsonValue& row = nets->at(i);
    std::string ctx = kSec + " net row " + std::to_string(i);
    std::string name = req_string(row, "name", origin, ctx);
    int batch = static_cast<int>(req_number(row, "batch", origin, ctx));
    const util::JsonValue* ok = row.find("ok");
    if (!ok || !ok->is_bool()) fail(origin, ctx + ": missing bool \"ok\"");
    std::map<std::string, MetricStat> m;
    double okv = ok->as_bool() ? 1.0 : 0.0;
    m["ok"] = MetricStat{okv, okv, okv, 1};
    for (const char* k : {"serialized_ms", "dual_ms", "d2h_seconds", "h2d_seconds"}) {
      double v = req_number(row, k, origin, ctx);
      m[k] = MetricStat{v, v, v, 1};
    }
    add_cell(cells, origin, kSec + "/" + name + "/b" + std::to_string(batch), std::move(m));
  }
  return nets->size() + 1;
}

size_t load_prefetch_lookahead(const util::JsonValue& sec, const std::string& origin,
                               CellMap* cells) {
  const std::string kSec = "prefetch_lookahead";
  const util::JsonValue* nets = sec.find("nets");
  if (!nets || !nets->is_array() || nets->size() == 0) {
    fail(origin, kSec + ": missing non-empty \"nets\" array");
  }
  for (size_t i = 0; i < nets->size(); ++i) {
    const util::JsonValue& row = nets->at(i);
    std::string ctx = kSec + " row " + std::to_string(i);
    std::string name = req_string(row, "name", origin, ctx);
    int batch = static_cast<int>(req_number(row, "batch", origin, ctx));
    std::map<std::string, MetricStat> m;
    double best = req_number(row, "best_lookahead", origin, ctx);
    m["best_lookahead"] = MetricStat{best, best, best, 1};
    const util::JsonValue* stalls = row.find("stall_ms");
    if (!stalls || !stalls->is_array() || stalls->size() == 0) {
      fail(origin, ctx + ": missing non-empty \"stall_ms\" array");
    }
    for (size_t l = 0; l < stalls->size(); ++l) {
      if (!stalls->at(l).is_number()) fail(origin, ctx + ": stall_ms entries must be numbers");
      double v = stalls->at(l).as_number();
      m["stall_ms_l" + std::to_string(l)] = MetricStat{v, v, v, 1};
    }
    add_cell(cells, origin, kSec + "/" + name + "/b" + std::to_string(batch), std::move(m));
  }
  return nets->size();
}

size_t load_sweep(const util::JsonValue& sec, const std::string& origin, CellMap* cells,
                  int outer_point) {
  const std::string kSec = "sweep";
  double sv = req_number(sec, "schema_version", origin, kSec);
  if (sv != 1.0) fail(origin, kSec + ": unsupported schema_version " + fmt(sv));
  std::string kind = req_string(sec, "kind", origin, kSec);
  if (kind != "sweep") fail(origin, kSec + ": kind must be \"sweep\", got \"" + kind + "\"");
  int point = static_cast<int>(req_number(sec, "trajectory_point", origin, kSec));
  if (outer_point != 0 && point != outer_point) {
    fail(origin, kSec + ": sweep trajectory_point " + std::to_string(point) +
                     " disagrees with enclosing point " + std::to_string(outer_point) +
                     " (mixed-generation merge)");
  }
  req_string(sec, "tier", origin, kSec);
  if (req_number(sec, "repeats", origin, kSec) < 1) fail(origin, kSec + ": repeats must be >= 1");
  req_number(sec, "global_batch", origin, kSec);
  const util::JsonValue* cells_arr = sec.find("cells");
  if (!cells_arr || !cells_arr->is_array() || cells_arr->size() == 0) {
    fail(origin, kSec + ": missing non-empty \"cells\" array");
  }
  for (size_t i = 0; i < cells_arr->size(); ++i) {
    const util::JsonValue& c = cells_arr->at(i);
    std::string ctx = kSec + " cell " + std::to_string(i);
    std::string net = req_string(c, "net", origin, ctx);
    std::string link = req_string(c, "link", origin, ctx);
    std::string sched = req_string(c, "schedule", origin, ctx);
    int stages = static_cast<int>(req_number(c, "stages", origin, ctx));
    int replicas = static_cast<int>(req_number(c, "replicas", origin, ctx));
    int mb = static_cast<int>(req_number(c, "microbatches", origin, ctx));
    int pool = static_cast<int>(req_number(c, "pool_gb", origin, ctx));
    const util::JsonValue* metrics = c.find("metrics");
    if (!metrics || !metrics->is_object() || metrics->size() == 0) {
      fail(origin, ctx + ": missing non-empty \"metrics\" object");
    }
    std::map<std::string, MetricStat> m;
    for (const auto& [name, stat] : metrics->entries()) {
      std::string mctx = ctx + " metric \"" + name + "\"";
      if (!stat.is_object()) fail(origin, mctx + ": must be a {median, lo, hi, n} object");
      MetricStat s;
      s.median = req_number(stat, "median", origin, mctx);
      s.lo = req_number(stat, "lo", origin, mctx);
      s.hi = req_number(stat, "hi", origin, mctx);
      s.repeats = static_cast<int>(req_number(stat, "n", origin, mctx));
      if (s.repeats < 1) fail(origin, mctx + ": n must be >= 1");
      if (!(s.lo <= s.median && s.median <= s.hi)) {
        fail(origin, mctx + ": requires lo <= median <= hi");
      }
      if (!m.emplace(name, s).second) fail(origin, mctx + ": duplicate metric");
    }
    add_cell(cells, origin,
             kSec + "/" + net + "/" + link + "/s" + std::to_string(stages) + "r" +
                 std::to_string(replicas) + "m" + std::to_string(mb) + "/pool" +
                 std::to_string(pool) + "/" + sched,
             std::move(m));
  }
  return cells_arr->size();
}

/// Shared by load_trajectory and schema_check("trajectory").
size_t load_point(const util::JsonValue& doc, const std::string& origin, TrajectoryPoint* out) {
  if (!doc.is_object()) fail(origin, "trajectory point must be a JSON object");
  const util::JsonValue* tp = doc.find("trajectory_point");
  if (!tp || !tp->is_number()) {
    fail(origin, "not a trajectory point: missing numeric \"trajectory_point\" (raw bench "
                 "output and sweep files cannot be diffed directly — merge them with "
                 "bench/run_trajectory.sh first)");
  }
  int point = static_cast<int>(tp->as_number());
  int version = 0;
  if (const util::JsonValue* sv = doc.find("schema_version")) {
    if (!sv->is_number() || sv->as_number() != 1.0) {
      fail(origin, "unsupported schema_version (this tool understands legacy files and "
                   "version 1)");
    }
    version = 1;
  }
  CellMap cells;
  size_t rows = 0;
  bool saw_sweep = false;
  for (const auto& [key, sec] : doc.entries()) {
    if (key == "trajectory_point" || key == "schema_version") continue;
    if (key == "pipeline_stages") {
      rows += load_pipeline_stages(sec, origin, &cells);
    } else if (key == "hybrid_grid") {
      rows += load_hybrid_grid(sec, origin, &cells);
    } else if (key == "stream_overlap") {
      rows += load_stream_overlap(sec, origin, &cells);
    } else if (key == "prefetch_lookahead") {
      rows += load_prefetch_lookahead(sec, origin, &cells);
    } else if (key == "sweep") {
      if (version == 0) {
        fail(origin, "mixed schema: \"sweep\" section in a legacy (unversioned) file");
      }
      saw_sweep = true;
      rows += load_sweep(sec, origin, &cells, point);
    } else {
      fail(origin, "unknown section \"" + key + "\" (mixed or newer schema?)");
    }
  }
  if (version == 1 && !saw_sweep) {
    fail(origin, "schema_version 1 requires a \"sweep\" section");
  }
  if (cells.empty()) fail(origin, "trajectory point has no bench sections");
  if (out) {
    out->point = point;
    out->schema_version = version;
    out->origin = origin;
    out->cells = std::move(cells);
  }
  return rows;
}

size_t check_chrome_trace(const util::JsonValue& doc, const std::string& origin) {
  if (!doc.is_object()) fail(origin, "chrome trace must be a JSON object");
  req_string(doc, "displayTimeUnit", origin, "trace");
  const util::JsonValue* events = doc.find("traceEvents");
  if (!events || !events->is_array() || events->size() == 0) {
    fail(origin, "trace: missing non-empty \"traceEvents\" array");
  }
  std::multiset<double> starts, finishes;
  for (size_t i = 0; i < events->size(); ++i) {
    const util::JsonValue& e = events->at(i);
    std::string ctx = "trace event " + std::to_string(i);
    req_string(e, "name", origin, ctx);
    std::string ph = req_string(e, "ph", origin, ctx);
    req_number(e, "pid", origin, ctx);
    if (ph == "s") starts.insert(req_number(e, "id", origin, ctx));
    if (ph == "f") finishes.insert(req_number(e, "id", origin, ctx));
  }
  if (starts.empty()) fail(origin, "trace: no flow-start (\"s\") events");
  if (starts != finishes) {
    fail(origin, "trace: flow-start ids do not pair with flow-finish ids (" +
                     std::to_string(starts.size()) + " s vs " + std::to_string(finishes.size()) +
                     " f)");
  }
  return events->size();
}

size_t check_metrics(const util::JsonValue& root, const std::string& origin) {
  if (!root.is_object()) fail(origin, "metrics must be a JSON object");
  // MetricsRegistry::to_json wraps the three sections in a "metrics" object.
  const util::JsonValue* inner = root.find("metrics");
  const util::JsonValue& doc = inner && inner->is_object() ? *inner : root;
  for (const char* sec : {"counters", "gauges", "histograms"}) {
    const util::JsonValue* v = doc.find(sec);
    if (!v || !v->is_object()) fail(origin, std::string("metrics: missing object \"") + sec + "\"");
  }
  const util::JsonValue& hists = doc.get("histograms");
  if (hists.size() == 0) fail(origin, "metrics: no histograms recorded");
  size_t n = 0;
  for (const auto& [name, h] : hists.entries()) {
    std::string ctx = "histogram \"" + name + "\"";
    const util::JsonValue* bounds = h.find("bounds");
    const util::JsonValue* counts = h.find("counts");
    if (!bounds || !bounds->is_array() || !counts || !counts->is_array()) {
      fail(origin, ctx + ": missing bounds/counts arrays");
    }
    if (counts->size() != bounds->size() + 1) {
      fail(origin, ctx + ": counts must have bounds+1 buckets");
    }
    req_number(h, "total", origin, ctx);
    req_number(h, "sum", origin, ctx);
    ++n;
  }
  return n + doc.get("counters").size() + doc.get("gauges").size();
}

size_t check_diff_report(const util::JsonValue& doc, const std::string& origin) {
  if (!doc.is_object()) fail(origin, "diff report must be a JSON object");
  if (req_number(doc, "schema_version", origin, "report") != 1.0) {
    fail(origin, "report: unsupported schema_version");
  }
  if (req_string(doc, "kind", origin, "report") != "trajectory_diff") {
    fail(origin, "report: kind must be \"trajectory_diff\"");
  }
  std::string status = req_string(doc, "status", origin, "report");
  if (status != "ok" && status != "regressed") fail(origin, "report: bad status");
  const util::JsonValue* counts = doc.find("counts");
  if (!counts || !counts->is_object()) fail(origin, "report: missing \"counts\" object");
  const util::JsonValue* entries = doc.find("entries");
  if (!entries || !entries->is_array()) fail(origin, "report: missing \"entries\" array");
  for (size_t i = 0; i < entries->size(); ++i) {
    const util::JsonValue& e = entries->at(i);
    std::string ctx = "report entry " + std::to_string(i);
    req_string(e, "cell", origin, ctx);
    req_string(e, "metric", origin, ctx);
    req_string(e, "class", origin, ctx);
  }
  return entries->size();
}

size_t check_trace_diff_report(const util::JsonValue& doc, const std::string& origin) {
  if (!doc.is_object()) fail(origin, "trace diff report must be a JSON object");
  if (req_number(doc, "schema_version", origin, "report") != 1.0) {
    fail(origin, "report: unsupported schema_version");
  }
  if (req_string(doc, "kind", origin, "report") != "trace_diff_report") {
    fail(origin, "report: kind must be \"trace_diff_report\"");
  }
  req_string(doc, "baseline", origin, "report");
  req_string(doc, "candidate", origin, "report");
  const util::JsonValue* spans = doc.find("spans");
  if (!spans || !spans->is_object()) fail(origin, "report: missing \"spans\" object");
  for (const char* k : {"matched", "base_only", "cand_only"}) {
    req_number(*spans, k, origin, "spans");
  }
  const util::JsonValue* total = doc.find("total");
  if (!total || !total->is_object()) fail(origin, "report: missing \"total\" object");
  for (const char* k : {"base_seconds", "cand_seconds", "delta_seconds"}) {
    req_number(*total, k, origin, "total");
  }
  const util::JsonValue* buckets = doc.find("buckets");
  if (!buckets || !buckets->is_array() || buckets->size() == 0) {
    fail(origin, "report: missing \"buckets\" array");
  }
  for (size_t i = 0; i < buckets->size(); ++i) {
    const util::JsonValue& b = buckets->at(i);
    std::string ctx = "bucket " + std::to_string(i);
    req_string(b, "bucket", origin, ctx);
    for (const char* k : {"matched", "base_seconds", "cand_seconds", "delta_seconds"}) {
      req_number(b, k, origin, ctx);
    }
  }
  const util::JsonValue* movers = doc.find("top_movers");
  if (!movers || !movers->is_array()) fail(origin, "report: missing \"top_movers\" array");
  for (size_t i = 0; i < movers->size(); ++i) {
    const util::JsonValue& m = movers->at(i);
    std::string ctx = "mover " + std::to_string(i);
    req_string(m, "bucket", origin, ctx);
    req_string(m, "name", origin, ctx);
    req_number(m, "delta_seconds", origin, ctx);
  }
  return buckets->size();
}

size_t check_cost_profile(const util::JsonValue& doc, const std::string& origin) {
  if (!doc.is_object()) fail(origin, "cost profile must be a JSON object");
  if (req_number(doc, "schema_version", origin, "profile") != 1.0) {
    fail(origin, "profile: unsupported schema_version");
  }
  if (req_string(doc, "kind", origin, "profile") != "cost_profile") {
    fail(origin, "profile: kind must be \"cost_profile\"");
  }
  auto check_stat = [&](const util::JsonValue& holder, const char* key,
                        const std::string& ctx) {
    const util::JsonValue* s = holder.find(key);
    if (!s || !s->is_object()) fail(origin, ctx + ": missing stat \"" + key + "\"");
    const double lo = req_number(*s, "lo", origin, ctx);
    const double med = req_number(*s, "median", origin, ctx);
    const double hi = req_number(*s, "hi", origin, ctx);
    req_number(*s, "n", origin, ctx);
    if (!(lo <= med && med <= hi)) fail(origin, ctx + ": requires lo <= median <= hi");
  };
  const util::JsonValue* layers = doc.find("layers");
  if (!layers || !layers->is_array()) fail(origin, "profile: missing \"layers\" array");
  for (size_t i = 0; i < layers->size(); ++i) {
    const util::JsonValue& l = layers->at(i);
    std::string ctx = "layer \"" + req_string(l, "name", origin, "layer") + "\"";
    check_stat(l, "fwd", ctx);
    check_stat(l, "bwd", ctx);
  }
  const util::JsonValue* devices = doc.find("devices");
  if (!devices || !devices->is_array()) fail(origin, "profile: missing \"devices\" array");
  for (size_t i = 0; i < devices->size(); ++i) {
    const util::JsonValue& d = devices->at(i);
    std::string ctx = "device " + std::to_string(i);
    req_number(d, "device", origin, ctx);
    req_number(d, "iterations", origin, ctx);
    for (const char* k : {"compute", "h2d", "d2h", "p2p", "collective", "stall_transfer",
                          "stall_pipeline", "stall_collective"}) {
      check_stat(d, k, ctx);
    }
  }
  if (layers->size() + devices->size() == 0) fail(origin, "profile: empty profile");
  return layers->size() + devices->size();
}

int class_rank(DeltaClass c) {
  switch (c) {
    case DeltaClass::kRegression: return 0;
    case DeltaClass::kRemoved: return 1;
    case DeltaClass::kImprovement: return 2;
    case DeltaClass::kInfoChanged: return 3;
    case DeltaClass::kAdded: return 4;
    case DeltaClass::kWithinBand: return 5;
    case DeltaClass::kUnchanged: return 6;
  }
  return 7;
}

}  // namespace

MetricKind metric_kind(const std::string& name) {
  static const char* kLower[] = {"seconds",       "bubble_frac", "serialized_s",
                                "dual_s",        "serialized_ms", "dual_ms",
                                "allreduce_exposed_seconds", "stall_seconds"};
  for (const char* k : kLower) {
    if (name == k) return MetricKind::kLowerBetter;
  }
  if (name.rfind("stall_ms", 0) == 0) return MetricKind::kLowerBetter;
  if (name == "img_per_s" || name == "overlap_ratio") return MetricKind::kHigherBetter;
  // Attribution metrics, not gates: per-directed-link occupancy fractions
  // (link_busy_frac_<src>_<dst>) and the peer-staging activity counter move
  // by design when routing changes — classify as info drift, never as a
  // regression.
  if (name.rfind("link_busy_frac", 0) == 0) return MetricKind::kInfo;
  if (name == "peer_stage_count") return MetricKind::kInfo;
  return MetricKind::kInfo;
}

const char* delta_class_name(DeltaClass c) {
  switch (c) {
    case DeltaClass::kRegression: return "REGRESSION";
    case DeltaClass::kRemoved: return "removed";
    case DeltaClass::kImprovement: return "improvement";
    case DeltaClass::kInfoChanged: return "info";
    case DeltaClass::kAdded: return "added";
    case DeltaClass::kWithinBand: return "within_band";
    case DeltaClass::kUnchanged: return "unchanged";
  }
  return "?";
}

TrajectoryPoint load_trajectory(const util::JsonValue& doc, const std::string& origin) {
  TrajectoryPoint p;
  load_point(doc, origin, &p);
  return p;
}

DiffReport diff_trajectories(const TrajectoryPoint& base, const TrajectoryPoint& cand,
                             const DiffOptions& opt) {
  DiffReport rep;
  rep.baseline_point = base.point;
  rep.candidate_point = cand.point;

  auto record = [&rep](DiffEntry e) {
    switch (e.cls) {
      case DeltaClass::kRegression: ++rep.regressions; break;
      case DeltaClass::kRemoved: ++rep.removed; break;
      case DeltaClass::kImprovement: ++rep.improvements; break;
      case DeltaClass::kInfoChanged: ++rep.info_changed; break;
      case DeltaClass::kAdded: ++rep.added; break;
      case DeltaClass::kWithinBand: ++rep.within_band; break;
      case DeltaClass::kUnchanged: ++rep.unchanged; return;  // counted, not stored
    }
    rep.entries.push_back(std::move(e));
  };

  for (const auto& [cell, base_metrics] : base.cells) {
    auto it = cand.cells.find(cell);
    if (it == cand.cells.end()) {
      record(DiffEntry{cell, "*", DeltaClass::kRemoved, 0, 0, 0, 0, 0});
      continue;
    }
    const auto& cand_metrics = it->second;
    for (const auto& [name, b] : base_metrics) {
      auto mit = cand_metrics.find(name);
      if (mit == cand_metrics.end()) {
        record(DiffEntry{cell, name, DeltaClass::kRemoved, b.median, 0, 0, 0, 0});
        continue;
      }
      const MetricStat& c = mit->second;
      DiffEntry e;
      e.cell = cell;
      e.metric = name;
      e.base = b.median;
      e.cand = c.median;
      e.delta = c.median - b.median;
      e.rel = b.median != 0.0 ? e.delta / std::fabs(b.median) : 0.0;
      MetricKind kind = metric_kind(name);
      if (kind == MetricKind::kInfo) {
        double scale = std::max({std::fabs(b.median), std::fabs(c.median), 1.0});
        e.cls = std::fabs(e.delta) <= 1e-12 * scale ? DeltaClass::kUnchanged
                                                    : DeltaClass::kInfoChanged;
        record(e);
        continue;
      }
      // Noise band: the recorded dispersion of EITHER side, with a relative
      // floor on the baseline median and an absolute floor for near-zero
      // baselines. The band is carried data — a jittery cell widens its own
      // gate; a deterministic one stays tight.
      e.band = std::max({opt.rel_band * std::fabs(b.median), b.spread(), c.spread(),
                         opt.abs_band});
      if (e.delta == 0.0) {
        e.cls = DeltaClass::kUnchanged;
      } else if (std::fabs(e.delta) <= e.band) {
        e.cls = DeltaClass::kWithinBand;
      } else {
        bool good = kind == MetricKind::kLowerBetter ? e.delta < 0.0 : e.delta > 0.0;
        e.cls = good ? DeltaClass::kImprovement : DeltaClass::kRegression;
      }
      record(e);
    }
    for (const auto& [name, c] : cand_metrics) {
      if (!base_metrics.count(name)) {
        record(DiffEntry{cell, name, DeltaClass::kAdded, 0, c.median, 0, 0, 0});
      }
    }
  }
  for (const auto& [cell, metrics] : cand.cells) {
    (void)metrics;
    if (!base.cells.count(cell)) {
      record(DiffEntry{cell, "*", DeltaClass::kAdded, 0, 0, 0, 0, 0});
    }
  }

  std::sort(rep.entries.begin(), rep.entries.end(), [](const DiffEntry& a, const DiffEntry& b) {
    int ra = class_rank(a.cls), rb = class_rank(b.cls);
    if (ra != rb) return ra < rb;
    double ma = std::fabs(a.rel), mb = std::fabs(b.rel);
    if (ma != mb) return ma > mb;
    if (a.cell != b.cell) return a.cell < b.cell;
    return a.metric < b.metric;
  });
  rep.ok = rep.regressions == 0 && (opt.allow_missing || rep.removed == 0);
  return rep;
}

std::string render_diff_table(const DiffReport& rep) {
  util::Table t({"class", "cell", "metric", "baseline", "candidate", "delta", "rel %", "band"});
  for (const DiffEntry& e : rep.entries) {
    if (e.cls == DeltaClass::kWithinBand || e.cls == DeltaClass::kUnchanged) continue;
    bool whole_cell = e.metric == "*";
    t.add_row({delta_class_name(e.cls), e.cell, e.metric,
               whole_cell ? "-" : fmt(e.base),
               whole_cell || e.cls == DeltaClass::kRemoved ? "-" : fmt(e.cand),
               e.cls == DeltaClass::kRegression || e.cls == DeltaClass::kImprovement ||
                       e.cls == DeltaClass::kInfoChanged
                   ? fmt(e.delta)
                   : "-",
               e.cls == DeltaClass::kRegression || e.cls == DeltaClass::kImprovement ||
                       e.cls == DeltaClass::kInfoChanged
                   ? fmt(100.0 * e.rel)
                   : "-",
               e.band > 0.0 ? fmt(e.band) : "-"});
  }
  std::string out;
  if (t.rows() > 0) {
    out = t.to_string();
  } else {
    out = "(no deltas outside the noise band)\n";
  }
  char line[256];
  std::snprintf(line, sizeof(line),
                "\npoint %d -> %d: %d regression(s), %d removed, %d improvement(s), %d info "
                "drift(s), %d added, %d within-band, %d unchanged\n",
                rep.baseline_point, rep.candidate_point, rep.regressions, rep.removed,
                rep.improvements, rep.info_changed, rep.added, rep.within_band, rep.unchanged);
  out += line;
  out += rep.ok ? "TRAJECTORY OK\n" : "TRAJECTORY REGRESSED\n";
  return out;
}

void write_diff_report(const DiffReport& rep, const DiffOptions& opt, util::JsonWriter& w) {
  w.begin_object();
  w.key("schema_version").value(1);
  w.key("kind").value("trajectory_diff");
  w.key("baseline_point").value(rep.baseline_point);
  w.key("candidate_point").value(rep.candidate_point);
  w.key("rel_band").value_sci(opt.rel_band, 6);
  w.key("abs_band").value_sci(opt.abs_band, 6);
  w.key("status").value(rep.ok ? "ok" : "regressed");
  w.key("counts").begin_object(util::JsonWriter::kInline);
  w.key("regressions").value(rep.regressions);
  w.key("removed").value(rep.removed);
  w.key("improvements").value(rep.improvements);
  w.key("info_changed").value(rep.info_changed);
  w.key("added").value(rep.added);
  w.key("within_band").value(rep.within_band);
  w.key("unchanged").value(rep.unchanged);
  w.end_object();
  w.key("entries").begin_array();
  for (const DiffEntry& e : rep.entries) {
    w.begin_object(util::JsonWriter::kInline);
    w.key("cell").value(e.cell);
    w.key("metric").value(e.metric);
    w.key("class").value(delta_class_name(e.cls));
    w.key("base").value_sci(e.base, 6);
    w.key("cand").value_sci(e.cand, 6);
    w.key("delta").value_sci(e.delta, 6);
    w.key("rel").value_sci(e.rel, 6);
    w.key("band").value_sci(e.band, 6);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

size_t schema_check(const util::JsonValue& doc, const std::string& kind,
                    const std::string& origin) {
  if (kind == "pipeline_stages") return load_pipeline_stages(doc, origin, nullptr);
  if (kind == "hybrid_grid") return load_hybrid_grid(doc, origin, nullptr);
  if (kind == "stream_overlap") return load_stream_overlap(doc, origin, nullptr);
  if (kind == "prefetch_lookahead") return load_prefetch_lookahead(doc, origin, nullptr);
  if (kind == "sweep") return load_sweep(doc, origin, nullptr, 0);
  if (kind == "trajectory") return load_point(doc, origin, nullptr);
  if (kind == "chrome_trace") return check_chrome_trace(doc, origin);
  if (kind == "metrics") return check_metrics(doc, origin);
  if (kind == "diff_report") return check_diff_report(doc, origin);
  if (kind == "trace_diff_report") return check_trace_diff_report(doc, origin);
  if (kind == "cost_profile") return check_cost_profile(doc, origin);
  fail(origin, "unknown schema kind \"" + kind + "\"");
}

}  // namespace sn::perf
