// Perf-trajectory model: normalized view of committed BENCH_<n>.json points,
// the noise-banded diff between two points, and the schema checks CI runs on
// every bench emitter's output.
//
// A trajectory point (one file per PR that moved a gated number) merges the
// CI-gated benches' --json output plus the bench_sweep matrix. Two on-disk
// generations exist:
//   * legacy (BENCH_6.json, schema_version absent = 0): the four bench
//     sections only, rows single-shot;
//   * v1 (BENCH_8.json onward, "schema_version": 1): same sections, rows
//     carry repeats + seconds_lo/seconds_hi dispersion, plus a "sweep"
//     section of {net x grid x link x pool budget x schedule} cells whose
//     every metric records {median, lo, hi, n} over R repeats.
// Both normalize into the same flat cell-key -> metric -> stat map, so the
// diff joins across generations.
//
// The diff classifies each gated metric's delta against a noise band built
// from the RECORDED dispersion (max of both sides' hi-lo spreads) with a
// relative floor — the band is data carried by the baseline, not a constant
// baked into CI. Lower-is-better metrics (seconds, bubble_frac, exposed
// collective, stalls) and higher-is-better ones (img_per_s, overlap_ratio)
// gate; bookkeeping metrics (byte counters, busy-seconds occupancy, picked
// lookahead) are reported as info drift but never fail the gate — a byte
// count is a behaviour change to read about, not a regression by itself.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "util/json_reader.hpp"

namespace sn::util {
class JsonWriter;
}

namespace sn::perf {

/// Raised on malformed / mixed-schema trajectory input; the message names
/// the file, the offending cell/section and what was expected.
class TrajectoryError : public std::runtime_error {
 public:
  explicit TrajectoryError(const std::string& what) : std::runtime_error(what) {}
};

/// One metric's recorded statistics: median over n repeats plus the min/max
/// dispersion envelope. Single-shot legacy rows collapse to lo == hi.
struct MetricStat {
  double median = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  int repeats = 1;

  double spread() const { return hi - lo; }
};

enum class MetricKind {
  kLowerBetter,   ///< gated: smaller is an improvement (seconds, stalls, ...)
  kHigherBetter,  ///< gated: larger is an improvement (img_per_s, overlap)
  kInfo,          ///< reported drift only (byte counters, occupancy, picks)
};

/// Gate direction for a metric name (see file comment for the policy).
MetricKind metric_kind(const std::string& name);

struct TrajectoryPoint {
  int point = 0;           ///< "trajectory_point"
  int schema_version = 0;  ///< 0 = legacy merged file
  std::string origin;      ///< file name, for error messages
  /// Canonical cell key (e.g. "hybrid_grid/VGG16/hybrid/s2r2m8/1f1b",
  /// "sweep/ResNet50/pcie/s2r2m4/pool6/gpipe") -> metric -> stat.
  std::map<std::string, std::map<std::string, MetricStat>> cells;
};

/// Normalize a parsed BENCH_<n>.json document. Throws TrajectoryError on
/// malformed or mixed-schema input (unknown sections, sweep cells in a
/// legacy file, unsupported schema_version, missing required fields).
TrajectoryPoint load_trajectory(const util::JsonValue& doc, const std::string& origin);

enum class DeltaClass {
  kRegression,   ///< gated metric moved the bad way beyond the band
  kRemoved,      ///< baseline cell/metric missing from the candidate
  kImprovement,  ///< gated metric moved the good way beyond the band
  kInfoChanged,  ///< info metric drifted (reported, never fails)
  kAdded,        ///< new cell/metric (new sweep coverage; never fails)
  kWithinBand,   ///< gated metric moved inside the noise band
  kUnchanged,
};

const char* delta_class_name(DeltaClass c);

struct DiffEntry {
  std::string cell;
  std::string metric;  ///< "*" for whole-cell added/removed entries
  DeltaClass cls = DeltaClass::kUnchanged;
  double base = 0.0;
  double cand = 0.0;
  double delta = 0.0;  ///< cand - base
  double rel = 0.0;    ///< delta / |base| (0 when base == 0)
  double band = 0.0;   ///< noise band the delta was judged against
};

struct DiffOptions {
  /// Relative noise-band floor: band >= rel_band * |baseline median|. The
  /// recorded dispersion widens the band beyond this, never narrows it.
  double rel_band = 0.02;
  /// Absolute band floor — keeps near-zero baselines (exposed collective
  /// seconds ~ 0) from flagging sub-microsecond jitter.
  double abs_band = 1e-4;
  /// Tolerate baseline cells/metrics missing from the candidate (baseline
  /// refresh flows that intentionally drop coverage).
  bool allow_missing = false;
};

struct DiffReport {
  std::vector<DiffEntry> entries;  ///< ranked: regressions first, then by |rel|
  int regressions = 0;
  int removed = 0;
  int improvements = 0;
  int info_changed = 0;
  int added = 0;
  int within_band = 0;
  int unchanged = 0;
  int baseline_point = 0;
  int candidate_point = 0;

  /// Gate verdict: no regression and (unless allowed) nothing removed.
  bool ok = true;
};

/// Join baseline and candidate by cell key and classify every metric delta.
DiffReport diff_trajectories(const TrajectoryPoint& base, const TrajectoryPoint& cand,
                             const DiffOptions& opt);

/// Ranked ASCII table of the report's notable entries (everything except
/// within-band / unchanged), plus a counts summary line.
std::string render_diff_table(const DiffReport& rep);

/// Machine-readable report ("kind": "trajectory_diff", schema_version 1).
void write_diff_report(const DiffReport& rep, const DiffOptions& opt, util::JsonWriter& w);

/// Validate a bench/tool JSON document against its expected shape; returns
/// the row/cell/event count, throws TrajectoryError naming the violation.
/// Kinds: pipeline_stages, hybrid_grid, stream_overlap, prefetch_lookahead,
/// sweep, trajectory, chrome_trace, metrics, diff_report, trace_diff_report,
/// cost_profile.
size_t schema_check(const util::JsonValue& doc, const std::string& kind,
                    const std::string& origin);

}  // namespace sn::perf
