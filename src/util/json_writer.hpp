// Streaming JSON writer shared by the bench emitters and the obs trace /
// metrics exporters. One escaping + nesting implementation instead of the
// hand-rolled fprintf blocks each bench used to carry.
//
// Containers open in one of two styles:
//   * kBlock  — every element on its own line, indented (the outer shape the
//     benches emit: readable diffs in committed BENCH_*.json files).
//   * kInline — elements joined by ", " on one line (the per-row objects and
//     small numeric arrays). A container nested inside an inline container is
//     forced inline.
// Keys always render as `"key": value` — a space after the colon — because
// CI greps gate on that exact byte shape (e.g. '"schedule": "1f1b"').
//
// Number formatting is explicit (value_fixed / value_sci) so emitters stay
// byte-stable across runs and compilers; raw() passes through a token that
// was formatted elsewhere (util::format_double cells, "null").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sn::util {

class JsonWriter {
 public:
  enum Style { kBlock, kInline };

  explicit JsonWriter(int indent_width = 2) : indent_width_(indent_width) {}

  JsonWriter& begin_object(Style style = kBlock);
  JsonWriter& end_object();
  JsonWriter& begin_array(Style style = kBlock);
  JsonWriter& end_array();

  /// Emit `"k": ` — must be inside an object, directly before the value.
  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& v);  ///< escaped, quoted
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(int v) { return value(static_cast<int64_t>(v)); }
  JsonWriter& value(int64_t v);
  JsonWriter& value(uint64_t v);
  JsonWriter& value_fixed(double v, int precision);  ///< printf %.Nf
  JsonWriter& value_sci(double v, int precision);    ///< printf %.Ne
  JsonWriter& value_null();
  /// Pre-formatted token (a number formatted elsewhere); emitted verbatim.
  JsonWriter& raw(const std::string& token);

  /// The document so far; complete once every container is closed.
  const std::string& str() const { return out_; }

  /// Write str() plus a trailing newline to `path`; false on I/O failure.
  bool save(const std::string& path) const;

  static std::string escape(const std::string& s);

 private:
  struct Frame {
    bool is_object = false;
    bool inline_style = false;
    size_t count = 0;
  };

  void pre_value();  ///< separator + newline/indent bookkeeping
  void indent(size_t depth);

  std::string out_;
  std::vector<Frame> stack_;
  int indent_width_;
  bool pending_key_ = false;
};

}  // namespace sn::util
