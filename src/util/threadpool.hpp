// Fixed-size thread pool with a parallel_for used by the CPU kernel library.
//
// The nn kernels (GEMM, im2col convolutions, pooling) split their outermost
// loop across workers; determinism is preserved because each index writes a
// disjoint output slice.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sn::util {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Run fn(i) for i in [begin, end), split into contiguous chunks across the
  /// pool, and block until all chunks complete. Runs inline when the range is
  /// tiny or the pool has a single worker.
  void parallel_for(size_t begin, size_t end, const std::function<void(size_t)>& fn);

  /// Process-wide pool shared by the nn kernels.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace sn::util
