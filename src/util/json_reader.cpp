#include "util/json_reader.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace sn::util {

namespace {

std::string type_name(JsonValue::Type t) {
  switch (t) {
    case JsonValue::Type::kNull: return "null";
    case JsonValue::Type::kBool: return "bool";
    case JsonValue::Type::kNumber: return "number";
    case JsonValue::Type::kString: return "string";
    case JsonValue::Type::kArray: return "array";
    case JsonValue::Type::kObject: return "object";
  }
  return "?";
}

}  // namespace

class JsonParser {
 public:
  JsonParser(const std::string& text, const std::string& origin)
      : text_(text), origin_(origin) {}

  JsonValue run() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    size_t line = 1, col = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw JsonError(origin_ + ":" + std::to_string(line) + ":" + std::to_string(col) + ": " +
                    what);
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    size_t n = 0;
    while (lit[n]) ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type_ = JsonValue::Type::kString;
        v.str_ = parse_string();
        return v;
      }
      case 't':
        if (consume_literal("true")) {
          JsonValue v;
          v.type_ = JsonValue::Type::kBool;
          v.bool_ = true;
          return v;
        }
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) {
          JsonValue v;
          v.type_ = JsonValue::Type::kBool;
          v.bool_ = false;
          return v;
        }
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue{};
        fail("bad literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.obj_.emplace_back(std::move(key), parse_value());
      skip_ws();
      char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.arr_.push_back(parse_value());
      skip_ws();
      char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    if (peek() != '"') fail("expected string");
    ++pos_;
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad hex digit in \\u escape");
              }
            }
            // The writer only escapes control bytes (< 0x20); decode the
            // BMP point as UTF-8 so round-trips preserve it.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("unknown escape");
        }
        continue;
      }
      out += c;
    }
  }

  JsonValue parse_number() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) fail("expected value");
    char* end = nullptr;
    std::string tok = text_.substr(start, pos_ - start);
    double d = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(d)) {
      pos_ = start;
      fail("bad number '" + tok + "'");
    }
    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    v.num_ = d;
    return v;
  }

  const std::string& text_;
  std::string origin_;
  size_t pos_ = 0;
};

JsonValue JsonValue::parse(const std::string& text, const std::string& origin) {
  return JsonParser(text, origin).run();
}

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) throw JsonError("expected bool, got " + type_name(type_));
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) throw JsonError("expected number, got " + type_name(type_));
  return num_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) throw JsonError("expected string, got " + type_name(type_));
  return str_;
}

size_t JsonValue::size() const {
  if (type_ == Type::kArray) return arr_.size();
  if (type_ == Type::kObject) return obj_.size();
  return 0;
}

const JsonValue& JsonValue::at(size_t i) const {
  if (type_ != Type::kArray) throw JsonError("expected array, got " + type_name(type_));
  if (i >= arr_.size()) {
    throw JsonError("array index " + std::to_string(i) + " out of range (size " +
                    std::to_string(arr_.size()) + ")");
  }
  return arr_[i];
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::get(const std::string& key) const {
  if (type_ != Type::kObject) throw JsonError("expected object, got " + type_name(type_));
  const JsonValue* v = find(key);
  if (!v) throw JsonError("missing key \"" + key + "\"");
  return *v;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::entries() const {
  static const std::vector<std::pair<std::string, JsonValue>> kEmpty;
  return type_ == Type::kObject ? obj_ : kEmpty;
}

JsonValue parse_json_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw JsonError(path + ": cannot open");
  std::string text;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) throw JsonError(path + ": read error");
  return JsonValue::parse(text, path);
}

}  // namespace sn::util
