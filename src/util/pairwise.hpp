// Shard-composable pairwise (binary-counter) summation.
//
// Data-parallel training shards a batch across replicas and sums the
// per-replica gradients with an all-reduce. For the result to be bit-identical
// to a single-device run over the combined batch, every reduction across the
// batch dimension must form the SAME floating-point expression tree in both
// executions. Sequential accumulation (((c0+c1)+c2)+c3 does not decompose at a
// shard boundary; the balanced pairwise tree ((c0+c1)+(c2+c3)) does: a shard
// of 2^k contiguous samples is exactly one subtree, and combining shard roots
// in rank order reproduces the full-batch root bit for bit (IEEE addition is
// commutative, so per-node operand order is free).
//
// The binary-counter scheme below builds that balanced tree in one sequential
// pass with O(log n) state: partial sums are held per level; pushing a new
// leaf "carries" up the levels exactly like binary increment. For n a power of
// two this is the perfect balanced tree; for other n the remaining levels are
// folded lowest-first (deterministic, but only power-of-two shards compose).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace sn::util {

/// Pairwise sum of f(0..n-1); T is the accumulation type (float or double).
template <typename T, typename F>
T pairwise_sum(uint64_t n, F&& f) {
  if (n == 0) return T(0);
  T level[64];
  uint64_t occupied = 0;  // bitmask of occupied levels
  for (uint64_t i = 0; i < n; ++i) {
    T v = static_cast<T>(f(i));
    int lv = 0;
    while (occupied & (1ull << lv)) {
      v += level[lv];
      occupied &= ~(1ull << lv);
      ++lv;
    }
    level[lv] = v;
    occupied |= 1ull << lv;
  }
  // Fold leftovers lowest-level-first (single level when n is a power of two).
  T acc = T(0);
  bool first = true;
  for (int lv = 0; lv < 64; ++lv) {
    if (!(occupied & (1ull << lv))) continue;
    acc = first ? level[lv] : level[lv] + acc;
    first = false;
  }
  return acc;
}

/// Pairwise accumulation of fixed-size float vectors (per-sample gradient
/// contributions). push() consumes one leaf; finish() writes the tree root.
/// Levels are allocated lazily, so memory is dim * ceil(log2(count)) floats.
class PairwiseVecAccumulator {
 public:
  explicit PairwiseVecAccumulator(size_t dim) : dim_(dim) {}

  /// `leaf` must hold dim() floats; its contents are consumed.
  void push(float* leaf) {
    size_t lv = 0;
    while (lv < occupied_.size() && occupied_[lv]) {
      float* stored = levels_[lv].data();
      for (size_t i = 0; i < dim_; ++i) leaf[i] += stored[i];
      occupied_[lv] = false;
      ++lv;
    }
    if (lv >= levels_.size()) {
      levels_.emplace_back(dim_);
      occupied_.push_back(false);
    }
    std::copy(leaf, leaf + dim_, levels_[lv].begin());
    occupied_[lv] = true;
  }

  /// Fold remaining levels (lowest first) into `out`; resets the accumulator.
  void finish(float* out) {
    bool first = true;
    for (size_t lv = 0; lv < levels_.size(); ++lv) {
      if (!occupied_[lv]) continue;
      const float* stored = levels_[lv].data();
      if (first) {
        std::copy(stored, stored + dim_, out);
        first = false;
      } else {
        for (size_t i = 0; i < dim_; ++i) out[i] = stored[i] + out[i];
      }
      occupied_[lv] = false;
    }
    if (first) std::fill(out, out + dim_, 0.0f);
  }

  size_t dim() const { return dim_; }

 private:
  size_t dim_;
  std::vector<std::vector<float>> levels_;
  std::vector<bool> occupied_;
};

}  // namespace sn::util
