// Recursive-descent JSON reader — the counterpart of util::JsonWriter, used
// by the perf-trajectory tools to load committed BENCH_<n>.json points, bench
// emitter output and diff reports back into memory.
//
// Scope matches what the emitters produce: null / bool / finite numbers /
// strings (with the writer's escape set) / arrays / objects. Objects keep
// insertion order (the writer emits deterministically ordered keys, and the
// diff tool's reports should render in that order) with linear-scan lookup —
// trajectory documents are a few hundred keys, not millions. Parse errors
// carry line:column so a truncated or hand-edited baseline names the exact
// byte that broke it.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace sn::util {

/// Thrown by JsonValue::parse (malformed text) and the typed accessors
/// (wrong-type / missing-key access), always with a "where" in the message.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parse a complete document; trailing non-whitespace is an error.
  /// `origin` labels error messages (a file name, "<inline>", ...).
  static JsonValue parse(const std::string& text, const std::string& origin = "<json>");

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw JsonError naming the expected type on mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  /// Array access. size() is 0 for non-containers.
  size_t size() const;
  const JsonValue& at(size_t i) const;

  /// Object lookup: find() returns nullptr when absent, get() throws.
  const JsonValue* find(const std::string& key) const;
  const JsonValue& get(const std::string& key) const;
  /// Object entries in document order (empty for non-objects).
  const std::vector<std::pair<std::string, JsonValue>>& entries() const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

/// Read a whole file and parse it; JsonError on I/O failure or bad JSON.
JsonValue parse_json_file(const std::string& path);

}  // namespace sn::util
