// Deterministic random number generation.
//
// Every stochastic component in the repo (weight init, synthetic data,
// dropout masks) draws from an explicitly seeded Rng so that runs are
// bit-reproducible — a prerequisite for the numerics-invariance property test
// (scheduling must not change training results).
#pragma once

#include <cstdint>
#include <cmath>

namespace sn::util {

/// xoshiro256** — fast, high-quality, and trivially seedable.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(uint64_t seed) {
    // SplitMix64 to expand the seed into the full state.
    uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      si = z ^ (z >> 31);
    }
  }

  uint64_t next_u64() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform in [0, 1).
  float next_float() { return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f; }

  /// Uniform integer in [0, n).
  uint64_t next_below(uint64_t n) { return next_u64() % n; }

  /// Uniform in [lo, hi).
  float uniform(float lo, float hi) { return lo + (hi - lo) * next_float(); }

  /// Standard normal via Box–Muller (one value per call; simple and exact).
  float normal() {
    float u1 = next_float();
    float u2 = next_float();
    if (u1 < 1e-12f) u1 = 1e-12f;
    return std::sqrt(-2.0f * std::log(u1)) * std::cos(6.2831853071795864769f * u2);
  }

  float normal(float mean, float stddev) { return mean + stddev * normal(); }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace sn::util
