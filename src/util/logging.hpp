// Minimal leveled logging for the SuperNeurons runtime.
//
// The runtime is a scheduler: most of what it does is invisible unless traced.
// Logging is compiled in at all levels and filtered at runtime so tests can
// raise verbosity for a single scenario without rebuilding.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>

namespace sn::util {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global log threshold; messages below it are dropped. Defaults to kWarn so
/// test and bench output stays clean.
LogLevel log_level() noexcept;
void set_log_level(LogLevel lvl) noexcept;

/// Emit one formatted line to stderr. Used via the SN_LOG macro.
void log_line(LogLevel lvl, const char* file, int line, const std::string& msg);

namespace detail {
struct LogStream {
  LogLevel lvl;
  const char* file;
  int line;
  std::ostringstream os;
  LogStream(LogLevel l, const char* f, int ln) : lvl(l), file(f), line(ln) {}
  ~LogStream() { log_line(lvl, file, line, os.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    os << v;
    return *this;
  }
};
}  // namespace detail

}  // namespace sn::util

#define SN_LOG(level)                                              \
  if (static_cast<int>(level) < static_cast<int>(::sn::util::log_level())) { \
  } else                                                           \
    ::sn::util::detail::LogStream(level, __FILE__, __LINE__)

#define SN_TRACE SN_LOG(::sn::util::LogLevel::kTrace)
#define SN_DEBUG SN_LOG(::sn::util::LogLevel::kDebug)
#define SN_INFO SN_LOG(::sn::util::LogLevel::kInfo)
#define SN_WARN SN_LOG(::sn::util::LogLevel::kWarn)
#define SN_ERROR SN_LOG(::sn::util::LogLevel::kError)
