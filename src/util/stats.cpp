#include "util/stats.hpp"

#include <cmath>
#include <cstdio>

namespace sn::util {

double Accumulator::stddev() const { return std::sqrt(variance()); }

std::string format_bytes(uint64_t bytes) {
  static const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[64];
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, units[u]);
  }
  return buf;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  double idx = p / 100.0 * static_cast<double>(samples.size() - 1);
  size_t lo = static_cast<size_t>(idx);
  size_t hi = lo + 1 < samples.size() ? lo + 1 : lo;
  double frac = idx - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace sn::util
