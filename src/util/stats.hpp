// Small statistics accumulators used by runtime telemetry and benches.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace sn::util {

/// Streaming accumulator: count / mean / min / max / stddev without storing
/// samples (Welford's algorithm).
class Accumulator {
 public:
  void add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  size_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const;

  void reset() { *this = Accumulator{}; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Byte-count pretty printing: 1536 -> "1.5 KB", used by benches and logs.
std::string format_bytes(uint64_t bytes);

/// Format a double with fixed precision (helper for table cells).
std::string format_double(double v, int precision = 2);

/// Percentile of a sample vector (copies + sorts; fine for telemetry sizes).
double percentile(std::vector<double> samples, double p);

}  // namespace sn::util
