// ASCII table / series printers used by every bench binary.
//
// Each bench regenerates one table or figure from the paper; the Table class
// renders rows the way the paper reports them, and Series renders the (x, y)
// data behind a figure as aligned columns so shapes (crossovers, trends) can
// be read straight off the terminal.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sn::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; the row is padded/truncated to the header width.
  void add_row(std::vector<std::string> cells);

  /// Render with column alignment and a header separator.
  std::string to_string() const;

  /// Convenience: render straight to stdout.
  void print() const;

  size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// One named data series of a "figure": y values over a shared x axis.
struct Series {
  std::string name;
  std::vector<double> y;
};

/// Render several series over a shared x axis as aligned numeric columns,
/// preceded by a title line. `x_label` names the first column.
std::string render_series(const std::string& title, const std::string& x_label,
                          const std::vector<double>& x, const std::vector<Series>& series,
                          int precision = 2);

}  // namespace sn::util
