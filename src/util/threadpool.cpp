#include "util/threadpool.hpp"

#include <algorithm>
#include <atomic>

namespace sn::util {

namespace {
// Set while a pool worker executes a task; nested parallel_for calls from
// inside a kernel (e.g. a per-image conv loop calling sgemm) then run inline
// instead of deadlocking on the same pool.
thread_local bool tl_in_worker = false;
}  // namespace

ThreadPool::ThreadPool(size_t threads) {
  size_t n = threads ? threads : std::max<size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    tl_in_worker = true;
    task();
    tl_in_worker = false;
  }
}

void ThreadPool::parallel_for(size_t begin, size_t end, const std::function<void(size_t)>& fn) {
  if (end <= begin) return;
  size_t range = end - begin;
  size_t nthreads = std::min(workers_.size(), range);
  if (tl_in_worker || nthreads <= 1 || range < 2) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  std::atomic<size_t> remaining{nthreads};
  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t chunk = (range + nthreads - 1) / nthreads;

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t t = 0; t < nthreads; ++t) {
      size_t lo = begin + t * chunk;
      size_t hi = std::min(end, lo + chunk);
      tasks_.push([&, lo, hi] {
        for (size_t i = lo; i < hi; ++i) fn(i);
        if (remaining.fetch_sub(1) == 1) {
          std::lock_guard<std::mutex> dl(done_mu);
          done_cv.notify_one();
        }
      });
    }
  }
  cv_.notify_all();

  std::unique_lock<std::mutex> dl(done_mu);
  done_cv.wait(dl, [&] { return remaining.load() == 0; });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace sn::util
