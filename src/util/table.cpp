#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/stats.hpp"

namespace sn::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<size_t> width(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  auto emit_row = [&](std::ostringstream& os, const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << " " << cell << std::string(width[c] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };

  std::ostringstream os;
  emit_row(os, headers_);
  os << "|";
  for (size_t c = 0; c < headers_.size(); ++c) os << std::string(width[c] + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) emit_row(os, row);
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string render_series(const std::string& title, const std::string& x_label,
                          const std::vector<double>& x, const std::vector<Series>& series,
                          int precision) {
  std::vector<std::string> headers{x_label};
  for (const auto& s : series) headers.push_back(s.name);
  Table t(headers);
  for (size_t i = 0; i < x.size(); ++i) {
    std::vector<std::string> row{format_double(x[i], 0)};
    for (const auto& s : series)
      row.push_back(i < s.y.size() ? format_double(s.y[i], precision) : std::string("-"));
    t.add_row(std::move(row));
  }
  std::ostringstream os;
  os << "== " << title << " ==\n" << t.to_string();
  return os.str();
}

}  // namespace sn::util
