#include "util/json_writer.hpp"

#include <cassert>
#include <cstdio>

namespace sn::util {

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::indent(size_t depth) {
  out_ += '\n';
  out_.append(depth * static_cast<size_t>(indent_width_), ' ');
}

void JsonWriter::pre_value() {
  if (pending_key_) {
    pending_key_ = false;  // `"key": ` already emitted
    return;
  }
  if (stack_.empty()) return;  // top-level value
  Frame& f = stack_.back();
  assert(!f.is_object && "object members need key() before the value");
  if (f.inline_style) {
    if (f.count > 0) out_ += ", ";
  } else {
    if (f.count > 0) out_ += ',';
    indent(stack_.size());
  }
  f.count++;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  assert(!stack_.empty() && stack_.back().is_object && "key() outside an object");
  Frame& f = stack_.back();
  if (f.inline_style) {
    if (f.count > 0) out_ += ", ";
  } else {
    if (f.count > 0) out_ += ',';
    indent(stack_.size());
  }
  f.count++;
  out_ += '"';
  out_ += escape(k);
  out_ += "\": ";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object(Style style) {
  bool parent_inline = !stack_.empty() && stack_.back().inline_style;
  pre_value();
  stack_.push_back(Frame{true, style == kInline || parent_inline, 0});
  out_ += '{';
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(!stack_.empty() && stack_.back().is_object);
  Frame f = stack_.back();
  stack_.pop_back();
  if (!f.inline_style && f.count > 0) indent(stack_.size());
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array(Style style) {
  bool parent_inline = !stack_.empty() && stack_.back().inline_style;
  pre_value();
  stack_.push_back(Frame{false, style == kInline || parent_inline, 0});
  out_ += '[';
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(!stack_.empty() && !stack_.back().is_object);
  Frame f = stack_.back();
  stack_.pop_back();
  if (!f.inline_style && f.count > 0) indent(stack_.size());
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  pre_value();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(int64_t v) {
  pre_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(uint64_t v) {
  pre_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value_fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  pre_value();
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value_sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  pre_value();
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value_null() {
  pre_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(const std::string& token) {
  pre_value();
  out_ += token;
  return *this;
}

bool JsonWriter::save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  bool ok = std::fwrite(out_.data(), 1, out_.size(), f) == out_.size();
  ok = std::fputc('\n', f) != EOF && ok;
  return std::fclose(f) == 0 && ok;
}

}  // namespace sn::util
