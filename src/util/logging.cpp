#include "util/logging.hpp"

#include <atomic>
#include <cstring>
#include <mutex>

namespace sn::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mu;

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

LogLevel log_level() noexcept { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void set_log_level(LogLevel lvl) noexcept { g_level.store(static_cast<int>(lvl), std::memory_order_relaxed); }

void log_line(LogLevel lvl, const char* file, int line, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_mu);
  std::fprintf(stderr, "[%s %s:%d] %s\n", level_name(lvl), basename_of(file), line, msg.c_str());
}

}  // namespace sn::util
