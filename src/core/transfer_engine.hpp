// TransferEngine: the uniform submit / poll / wait layer every D2H offload,
// H2D prefetch and P2P collective hop flows through (paper §3.3.1).
//
// The engine separates *when a transfer is decided* (the Unified Tensor
// Pool's policy) from *how its bytes move*. Two backends implement the same
// tag-based API:
//
//   * TransferEngine (base)   — the simulation / synchronous backend. Virtual
//     time advances on the sim::Machine's per-direction DMA streams (and the
//     cluster's per-directed-link streams for P2P); when buffers are backed
//     the memcpy runs inline on the compute thread at submit (exactly the
//     seed's behaviour, and the reference the async engine must match
//     bit-for-bit).
//   * DmaTransferEngine       — a StreamSet of dedicated DMA workers: one
//     thread per direction (H2D, D2H) plus one per directed P2P link, each
//     draining its own two-level priority queue, so offload and prefetch
//     traffic overlap each other as well as compute. Every worker (PCIe
//     directions and P2P links alike) copies through a pinned
//     double-buffered staging pair carved out of the mem::HostPool,
//     pipelined: a drainer helper thread flushes chunk k to the destination
//     while the worker stages chunk k+1. Completion
//     *decisions* are still gated on the virtual event, which keeps the
//     schedule deterministic and identical to the synchronous backend; the
//     wall-clock memcpy merely has to have landed by the time the decision
//     point is reached (ensure_landed()).
//
// Priorities are wall-clock-only by construction: a high-priority job may
// overtake queued normal jobs on its own stream (urgent fetches bypass
// speculative prefetch backlog; eviction offloads bypass eager ones), but
// the virtual completion event — the only thing scheduling decisions read —
// is computed at submit and cannot be affected. That is what lets the
// multi-stream engine stay bit-identical to the serialized one.
//
// Transfers are tagged by tensor uid; at most one transfer per (direction,
// tag) is in flight — the same invariant the seed's pending_d2h_/pending_h2d_
// maps enforced, now owned by the engine instead of the Runtime.
#pragma once

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sim/machine.hpp"

namespace sn::mem {
class HostPool;
}

namespace sn::core {

enum class TransferDir { kD2H, kH2D, kP2P };

/// Wall-clock queue priority on the owning stream. Never affects virtual
/// time (see file comment): kHigh only overtakes kNormal jobs that have not
/// started copying yet.
enum class TransferPriority { kNormal, kHigh };

/// Counters the pool snapshots into StepTelemetry (and tests assert on).
struct TransferStats {
  uint64_t submitted_d2h = 0;
  uint64_t submitted_h2d = 0;
  uint64_t submitted_p2p = 0;  ///< peer-to-peer sends (dist collectives)
  uint64_t completed_d2h = 0;  ///< retired with a valid result (waited/polled)
  uint64_t completed_h2d = 0;
  uint64_t completed_p2p = 0;
  uint64_t discarded_d2h = 0;  ///< retired with the result thrown away
  uint64_t discarded_h2d = 0;
  uint64_t discarded_p2p = 0;
  uint64_t inline_copies = 0;  ///< memcpys executed on the compute thread
  uint64_t dma_copies = 0;     ///< memcpys executed on DMA worker threads (total)
  // Per-stream breakdown of dma_copies (multi-stream backend; all P2P link
  // workers aggregate into dma_copies_p2p).
  uint64_t dma_copies_d2h = 0;
  uint64_t dma_copies_h2d = 0;
  uint64_t dma_copies_p2p = 0;
  /// Chunks pipelined through the pinned double-buffered staging pairs
  /// (all streams; P2P link workers broken out below).
  uint64_t staged_chunks = 0;
  uint64_t staged_chunks_p2p = 0;
};

/// Base class doubles as the simulation / synchronous backend.
///
/// Thread-ownership invariants (per-stream single-writer):
///   * Submit-side bookkeeping — the pending_[] maps, stats_ and every
///     stream's sequence counter — is owned by the thread that constructed
///     the engine (the compute thread). submit / retire / pending queries
///     must all come from it; assert_submit_owner() makes a violation loud
///     in debug builds.
///   * Execution-side state is owned per stream: each DMA worker thread is
///     the only consumer of its own queue and the only stager of its pinned
///     buffers, and its drainer helper is the only thread flushing staged
///     chunks. The workers never touch pending_[] or another stream's state.
class TransferEngine {
 public:
  /// `pinned` is the host-staging property charged to the sim DMA streams;
  /// `device_id` identifies the owning device in multi-device setups.
  TransferEngine(sim::Machine& machine, bool pinned, int device_id = 0);
  virtual ~TransferEngine();

  TransferEngine(const TransferEngine&) = delete;
  TransferEngine& operator=(const TransferEngine&) = delete;

  int device_id() const { return device_id_; }

  /// Enqueue a copy of `bytes` for tensor `tag`. `src`/`dst` may be null when
  /// running unbacked (simulation): virtual time still advances, no bytes
  /// move. Exactly one transfer per (dir, tag) may be outstanding.
  /// Returns the sim completion event (tests inspect it; clients use the
  /// tag-based calls below). P2P submissions go through submit_p2p (they
  /// need a peer and an explicit data dependency).
  sim::Event submit(TransferDir dir, uint64_t tag, const void* src, void* dst, uint64_t bytes,
                    TransferPriority prio = TransferPriority::kNormal);

  /// Enqueue a peer-to-peer copy to device `peer` over the cluster link,
  /// starting no earlier than `not_before` (virtual time; collectives chain
  /// hop k+1 on hop k's arrival this way). Tracked under TransferDir::kP2P;
  /// the async backend runs it on the per-link worker for `peer`, so hops on
  /// distinct links drain concurrently. Requires the machine to be a
  /// sim::Cluster member. `flow` tags the recorded span as a flow producer
  /// (obs::flow_id_p2p / obs::flow_id_peer_stage) so the consumer's stall
  /// span links back to it; 0 records no arrow (collective hops). `span_name`
  /// labels the recorded kP2P span ("p2p" for schedule sends; peer staging
  /// passes "peer_stage" / "peer_fetch" so traces attribute the variant).
  sim::Event submit_p2p(uint64_t tag, const void* src, void* dst, uint64_t bytes, int peer,
                        double not_before, TransferPriority prio = TransferPriority::kNormal,
                        uint64_t flow = 0, const char* span_name = "p2p");

  /// Retire the transfer if it has completed in virtual time (blocking, if
  /// needed, until the bytes have physically landed). Returns true when no
  /// transfer for (dir, tag) remains in flight — including "never submitted".
  bool try_retire(TransferDir dir, uint64_t tag);

  /// Stall the compute stream until (dir, tag) completes, then retire it.
  /// No-op when nothing is pending.
  void wait(TransferDir dir, uint64_t tag);

  /// Retire (dir, tag) without charging a virtual-time stall — used when the
  /// tensor is being freed and the result no longer matters. Still blocks
  /// until the owning DMA worker is done touching the buffers (use-after-free
  /// safety); the seed erased the event with no wait, which was only safe
  /// because its copies were inline.
  void discard(TransferDir dir, uint64_t tag);

  /// Block (wall clock only) until the bytes of (dir, tag) have physically
  /// landed, WITHOUT stalling the compute stream and WITHOUT retiring the
  /// transfer. Pipeline receivers use this before reading a P2P landing
  /// site: the RECEIVER's machine gates on the virtual event, so the
  /// sender's clock — which try_retire/wait consult — must not be touched.
  /// No-op when nothing is pending for the tag.
  void await_landing(TransferDir dir, uint64_t tag);

  /// Retire (dir, tag) as COMPLETED once its bytes have landed, without
  /// touching the submitting machine's clock. For transfers whose completion
  /// was already gated on ANOTHER machine's timeline (a peer-staging
  /// fetch-back: the owner waited the virtual event on its own machine), so
  /// neither wait() — which would stall the sender — nor discard() — which
  /// miscounts a consumed result as thrown away — fits. No-op when nothing
  /// is pending.
  void retire_landed(TransferDir dir, uint64_t tag);

  /// Deterministic ETA of a hypothetical D2H copy submitted now: the stream's
  /// backlog head plus the copy's own duration. Fed (with eta_p2p) into the
  /// peer-staging route decision; reads only compute-thread bookkeeping, so
  /// the decision is bit-reproducible.
  double eta_d2h(uint64_t bytes) const;

  /// Deterministic ETA of a hypothetical P2P copy to `peer` submitted now:
  /// the directed link's backlog head plus the transfer duration. Requires
  /// cluster membership.
  double eta_p2p(uint64_t bytes, int peer) const;

  bool pending(TransferDir dir, uint64_t tag) const;
  size_t pending_count(TransferDir dir) const {
    assert_submit_owner();
    return pending_[index(dir)].size();
  }

  /// Snapshot of in-flight tags (stable iteration while retiring).
  std::vector<uint64_t> pending_tags(TransferDir dir) const;

  /// Wait out every in-flight transfer on every stream.
  void drain();

  TransferStats stats() const;

  /// True when copies run on dedicated DMA worker threads.
  virtual bool async_backend() const { return false; }

 protected:
  /// Physical-copy ticket: which stream worker took the job, and the job's
  /// per-stream sequence number. The base backend copies inline at submit,
  /// so its tickets are inert.
  struct Ticket {
    int stream = 0;
    uint64_t seq = 0;
  };

  struct Pending {
    sim::Event event;
    Ticket ticket;
  };

  static size_t index(TransferDir dir) {
    switch (dir) {
      case TransferDir::kD2H: return 0;
      case TransferDir::kH2D: return 1;
      case TransferDir::kP2P: return 2;
    }
    return 0;
  }

  /// pending_[] / stats_ / stream sequence counters are single-threaded by
  /// contract (see class comment); this makes a violation loud in debug
  /// builds instead of a silent race.
  void assert_submit_owner() const {
#ifndef NDEBUG
    assert(std::this_thread::get_id() == owner_ &&
           "TransferEngine submit-side bookkeeping must stay on the constructing "
           "(compute) thread");
#endif
  }

  /// Move the bytes (or hand them to the owning stream's worker). `peer` is
  /// meaningful for kP2P only. Base: inline memcpy on the compute thread.
  virtual Ticket dispatch(TransferDir dir, int peer, const void* src, void* dst, uint64_t bytes,
                          TransferPriority prio);

  /// Block until the copy behind `ticket` has physically landed on its
  /// stream. Base backend copies inline, so everything submitted has landed.
  virtual void ensure_landed(const Ticket& ticket);

  /// Per-stream DMA-thread counters (zeros for the base backend).
  virtual void fill_dma_stats(TransferStats& s) const;

  sim::Machine& machine_;
  bool pinned_;
  int device_id_ = 0;
  std::unordered_map<uint64_t, Pending> pending_[3];  ///< [dir] tag -> op
  TransferStats stats_;
#ifndef NDEBUG
  std::thread::id owner_ = std::this_thread::get_id();
#endif

 private:
  sim::Event track(TransferDir dir, int peer, uint64_t tag, sim::Event e, const void* src,
                   void* dst, uint64_t bytes, TransferPriority prio);
  void retire(TransferDir dir, uint64_t tag, bool discarded);
};

/// Asynchronous backend: a StreamSet of DMA workers — one per direction plus
/// one per P2P peer — each with a two-level priority queue. Every worker —
/// the H2D/D2H PCIe directions and, since pipeline parallelism streams bulk
/// activations over the links, the per-link P2P workers too — owns a pinned
/// double-buffered staging pair carved from the host pool and pipelines it
/// with a drainer helper thread (chunk k+1 stages while chunk k drains).
class DmaTransferEngine final : public TransferEngine {
 public:
  /// Each worker carves two blocks of `staging_bytes` from `staging_pool`
  /// (PCIe pairs at construction, P2P pairs lazily at a link's first
  /// submit); a worker whose pair does not fit (or when the pool is
  /// unbacked) falls back to a single direct memcpy per job.
  DmaTransferEngine(sim::Machine& machine, bool pinned, mem::HostPool& staging_pool,
                    uint64_t staging_bytes = kDefaultStagingBytes, int device_id = 0);
  ~DmaTransferEngine() override;

  bool async_backend() const override { return true; }

  /// Freeze / unfreeze every worker's queue pop. Unit tests use this to
  /// enqueue a deterministic mix of priorities before anything runs.
  void pause_workers_for_testing(bool paused);

  static constexpr uint64_t kDefaultStagingBytes = 256 << 10;

 protected:
  Ticket dispatch(TransferDir dir, int peer, const void* src, void* dst, uint64_t bytes,
                  TransferPriority prio) override;
  void ensure_landed(const Ticket& ticket) override;
  void fill_dma_stats(TransferStats& s) const override;

 private:
  struct Job {
    const void* src = nullptr;
    void* dst = nullptr;
    uint64_t bytes = 0;
    uint64_t seq = 0;
  };

  /// One DMA stream: worker thread + queue + (optionally) the pinned staging
  /// pipeline. Single-writer ownership: the compute thread pushes jobs and
  /// advances next_seq; the worker thread is the only consumer and the only
  /// stager; the drainer is the only flusher of full slots.
  struct Worker {
    int stream = 0;             ///< ticket stream id (kStreamD2H/kStreamH2D/2+peer)
    bool use_staging = false;

    // --- submit side (compute thread only) --------------------------------
    uint64_t next_seq = 0;

    // --- queue state (guarded by mu) --------------------------------------
    std::mutex mu;
    std::condition_variable cv;       ///< wakes the worker: job / stop / unpause
    std::condition_variable done_cv;  ///< wakes ensure_landed: a job landed
    std::deque<Job> high, normal;     ///< two-level priority, FIFO within level
    bool stop = false;
    bool paused = false;
    /// Landed tracking that survives priority reordering: every seq <= floor
    /// has landed; out-of-order completions park in `landed` until the floor
    /// catches up.
    uint64_t landed_floor = 0;
    std::set<uint64_t> landed;

    // --- staging pipeline (worker = stager, drainer = flusher) ------------
    uint64_t staging_handle[2] = {0, 0};
    void* staging_buf[2] = {nullptr, nullptr};
    std::mutex smu;
    std::condition_variable scv;
    struct Slot {
      std::byte* dst = nullptr;  ///< destination of the staged chunk
      uint64_t len = 0;
      bool full = false;
    } slot[2];
    bool staging_stop = false;

    std::atomic<uint64_t> dma_copies{0};
    std::atomic<uint64_t> staged_chunks{0};

    std::thread thread;   ///< pops jobs, stages chunks
    std::thread drainer;  ///< flushes staged chunks to their destination
#ifndef NDEBUG
    std::atomic<std::thread::id> worker_tid{};
#endif
  };

  static constexpr int kStreamD2H = 0;
  static constexpr int kStreamH2D = 1;

  Worker& worker_for(TransferDir dir, int peer);
  Worker* worker_by_stream(int stream);
  void start_worker(Worker& w, bool with_staging);
  void stop_worker(Worker& w);
  void worker_loop(Worker& w);
  void drainer_loop(Worker& w);
  void run_job(Worker& w, const Job& job);
  void mark_landed(Worker& w, uint64_t seq);

  mem::HostPool& staging_pool_;
  uint64_t staging_bytes_;
  bool paused_ = false;  ///< compute-thread copy of the pause flag (new workers inherit it)

  Worker dir_workers_[2];  ///< [kStreamD2H, kStreamH2D]
  /// Per-peer P2P link workers, created lazily at first submit (ordered map:
  /// iteration order must be deterministic for shutdown and stats).
  std::map<int, std::unique_ptr<Worker>> p2p_workers_;
};

/// Pick the backend for a runtime configuration: real numerics + async
/// transfers get the DMA worker set; everything else uses the inline/sim
/// backend.
std::unique_ptr<TransferEngine> make_transfer_engine(sim::Machine& machine, mem::HostPool& host,
                                                     bool real, bool async_transfers,
                                                     int device_id = 0);

}  // namespace sn::core
