// TransferEngine: the uniform submit / poll / wait layer every D2H offload
// and H2D prefetch flows through (paper §3.3.1).
//
// The engine separates *when a transfer is decided* (the Unified Tensor
// Pool's policy) from *how its bytes move*. Two backends implement the same
// tag-based API:
//
//   * TransferEngine (base)   — the simulation / synchronous backend. Virtual
//     time advances on the sim::Machine's DMA streams; when buffers are backed
//     the memcpy runs inline on the compute thread at submit (exactly the
//     seed's behaviour, and the reference the async engine must match
//     bit-for-bit).
//   * DmaTransferEngine       — a dedicated DMA thread drains a FIFO of copy
//     jobs through a double-buffered pinned staging area carved out of the
//     mem::HostPool, so real-mode offload/prefetch genuinely overlaps with
//     kernel compute. Completion *decisions* are still gated on the virtual
//     event, which keeps the schedule deterministic and identical to the
//     synchronous backend; the wall-clock memcpy merely has to have landed by
//     the time the decision point is reached (ensure_landed()).
//
// Transfers are tagged by tensor uid; at most one transfer per (direction,
// tag) is in flight — the same invariant the seed's pending_d2h_/pending_h2d_
// maps enforced, now owned by the engine instead of the Runtime.
#pragma once

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sim/machine.hpp"

namespace sn::mem {
class HostPool;
}

namespace sn::core {

enum class TransferDir { kD2H, kH2D, kP2P };

/// Counters the pool snapshots into StepTelemetry (and tests assert on).
struct TransferStats {
  uint64_t submitted_d2h = 0;
  uint64_t submitted_h2d = 0;
  uint64_t submitted_p2p = 0;  ///< peer-to-peer sends (dist collectives)
  uint64_t completed_d2h = 0;  ///< retired with a valid result (waited/polled)
  uint64_t completed_h2d = 0;
  uint64_t completed_p2p = 0;
  uint64_t discarded_d2h = 0;  ///< retired with the result thrown away
  uint64_t discarded_h2d = 0;
  uint64_t discarded_p2p = 0;
  uint64_t inline_copies = 0;  ///< memcpys executed on the compute thread
  uint64_t dma_copies = 0;     ///< memcpys executed on the DMA thread
};

/// Base class doubles as the simulation / synchronous backend.
///
/// Thread-ownership invariant: the pending_[] maps and stats_ are owned by
/// the thread that constructed the engine (the compute thread). submit /
/// retire / pending queries must all come from it — the DMA worker thread
/// only consumes copy Jobs and advances landed_seq_ under its own mutex, and
/// never touches pending_[]. Debug builds assert the invariant.
class TransferEngine {
 public:
  /// `pinned` is the host-staging property charged to the sim DMA streams;
  /// `device_id` identifies the owning device in multi-device setups.
  TransferEngine(sim::Machine& machine, bool pinned, int device_id = 0);
  virtual ~TransferEngine();

  TransferEngine(const TransferEngine&) = delete;
  TransferEngine& operator=(const TransferEngine&) = delete;

  int device_id() const { return device_id_; }

  /// Enqueue a copy of `bytes` for tensor `tag`. `src`/`dst` may be null when
  /// running unbacked (simulation): virtual time still advances, no bytes
  /// move. Exactly one transfer per (dir, tag) may be outstanding.
  /// Returns the sim completion event (tests inspect it; clients use the
  /// tag-based calls below). P2P submissions go through submit_p2p (they
  /// need a peer and an explicit data dependency).
  sim::Event submit(TransferDir dir, uint64_t tag, const void* src, void* dst, uint64_t bytes);

  /// Enqueue a peer-to-peer copy to device `peer` over the cluster link,
  /// starting no earlier than `not_before` (virtual time; collectives chain
  /// hop k+1 on hop k's arrival this way). Tracked under TransferDir::kP2P.
  /// Requires the machine to be a sim::Cluster member.
  sim::Event submit_p2p(uint64_t tag, const void* src, void* dst, uint64_t bytes, int peer,
                        double not_before);

  /// Retire the transfer if it has completed in virtual time (blocking, if
  /// needed, until the bytes have physically landed). Returns true when no
  /// transfer for (dir, tag) remains in flight — including "never submitted".
  bool try_retire(TransferDir dir, uint64_t tag);

  /// Stall the compute stream until (dir, tag) completes, then retire it.
  /// No-op when nothing is pending.
  void wait(TransferDir dir, uint64_t tag);

  /// Retire (dir, tag) without charging a virtual-time stall — used when the
  /// tensor is being freed and the result no longer matters. Still blocks
  /// until the DMA thread is done touching the buffers (use-after-free
  /// safety); the seed erased the event with no wait, which was only safe
  /// because its copies were inline.
  void discard(TransferDir dir, uint64_t tag);

  bool pending(TransferDir dir, uint64_t tag) const;
  size_t pending_count(TransferDir dir) const {
    assert_owner();
    return pending_[index(dir)].size();
  }

  /// Snapshot of in-flight tags (stable iteration while retiring).
  std::vector<uint64_t> pending_tags(TransferDir dir) const;

  /// Wait out every in-flight transfer in both directions.
  void drain();

  TransferStats stats() const;

  /// True when copies run on a dedicated DMA thread.
  virtual bool async_backend() const { return false; }

 protected:
  struct Pending {
    sim::Event event;
    uint64_t seq = 0;
  };

  static size_t index(TransferDir dir) {
    switch (dir) {
      case TransferDir::kD2H: return 0;
      case TransferDir::kH2D: return 1;
      case TransferDir::kP2P: return 2;
    }
    return 0;
  }

  /// pending_[] / stats_ are single-threaded by contract (see class comment);
  /// this makes a violation loud in debug builds instead of a silent race.
  void assert_owner() const {
#ifndef NDEBUG
    assert(std::this_thread::get_id() == owner_ &&
           "TransferEngine bookkeeping must stay on the constructing (compute) thread");
#endif
  }

  /// Move the bytes (or schedule them to move). Base: inline memcpy.
  virtual void dispatch(const void* src, void* dst, uint64_t bytes, uint64_t seq);

  /// Block until the copy with sequence number `seq` has physically landed.
  /// Base backend copies inline, so everything submitted has landed.
  virtual void ensure_landed(uint64_t seq);

  /// Copies completed off the compute thread (0 for the base backend).
  virtual uint64_t dma_copies() const { return 0; }

  sim::Machine& machine_;
  bool pinned_;
  int device_id_ = 0;
  std::unordered_map<uint64_t, Pending> pending_[3];  ///< [dir] tag -> op
  TransferStats stats_;
  uint64_t next_seq_ = 1;
#ifndef NDEBUG
  std::thread::id owner_ = std::this_thread::get_id();
#endif

 private:
  sim::Event track(TransferDir dir, uint64_t tag, sim::Event e, const void* src, void* dst,
                   uint64_t bytes);
  void retire(TransferDir dir, uint64_t tag, bool discarded);
};

/// Asynchronous backend: one DMA thread, FIFO job queue, double-buffered
/// staging area allocated from the (pinned) host pool.
class DmaTransferEngine final : public TransferEngine {
 public:
  /// Staging buffers are carved from `staging_pool` (two blocks of
  /// `staging_bytes`); if the pool is unbacked or cannot fit them, copies
  /// fall back to a single direct memcpy on the DMA thread.
  DmaTransferEngine(sim::Machine& machine, bool pinned, mem::HostPool& staging_pool,
                    uint64_t staging_bytes = kDefaultStagingBytes, int device_id = 0);
  ~DmaTransferEngine() override;

  bool async_backend() const override { return true; }

  static constexpr uint64_t kDefaultStagingBytes = 256 << 10;

 protected:
  void dispatch(const void* src, void* dst, uint64_t bytes, uint64_t seq) override;
  void ensure_landed(uint64_t seq) override;
  uint64_t dma_copies() const override { return dma_copies_.load(std::memory_order_relaxed); }

 private:
  struct Job {
    const void* src = nullptr;
    void* dst = nullptr;
    uint64_t bytes = 0;
    uint64_t seq = 0;
  };

  void worker_loop();
  void copy_through_staging(const Job& job);

  mem::HostPool& staging_pool_;
  uint64_t staging_bytes_;
  uint64_t staging_handle_[2] = {0, 0};
  void* staging_buf_[2] = {nullptr, nullptr};

  std::thread worker_;
  std::mutex mu_;
  std::condition_variable cv_;       ///< signals the worker: new job / stop
  std::condition_variable done_cv_;  ///< signals waiters: landed_seq_ advanced
  std::queue<Job> jobs_;
  uint64_t landed_seq_ = 0;          ///< guarded by mu_ (jobs retire in FIFO order)
  bool stop_ = false;
  std::atomic<uint64_t> dma_copies_{0};
};

/// Pick the backend for a runtime configuration: real numerics + async
/// transfers get the DMA thread; everything else uses the inline/sim backend.
std::unique_ptr<TransferEngine> make_transfer_engine(sim::Machine& machine, mem::HostPool& host,
                                                     bool real, bool async_transfers,
                                                     int device_id = 0);

}  // namespace sn::core
