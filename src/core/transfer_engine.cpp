#include "core/transfer_engine.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "mem/host_pool.hpp"

namespace sn::core {

// ---------------------------------------------------------------------------
// TransferEngine (base = simulation / synchronous backend)

TransferEngine::TransferEngine(sim::Machine& machine, bool pinned, int device_id)
    : machine_(machine), pinned_(pinned), device_id_(device_id) {}

TransferEngine::~TransferEngine() = default;

sim::Event TransferEngine::track(TransferDir dir, uint64_t tag, sim::Event e, const void* src,
                                 void* dst, uint64_t bytes) {
  uint64_t seq = next_seq_++;
  dispatch(src, dst, bytes, seq);
  pending_[index(dir)][tag] = Pending{e, seq};
  switch (dir) {
    case TransferDir::kD2H: ++stats_.submitted_d2h; break;
    case TransferDir::kH2D: ++stats_.submitted_h2d; break;
    case TransferDir::kP2P: ++stats_.submitted_p2p; break;
  }
  return e;
}

sim::Event TransferEngine::submit(TransferDir dir, uint64_t tag, const void* src, void* dst,
                                  uint64_t bytes) {
  assert_owner();
  assert(dir != TransferDir::kP2P && "P2P transfers go through submit_p2p");
  assert(!pending(dir, tag) && "one transfer per (dir, tag) may be in flight");
  sim::Event e = machine_.async_copy(
      dir == TransferDir::kD2H ? sim::CopyDir::kD2H : sim::CopyDir::kH2D, bytes, pinned_);
  return track(dir, tag, e, src, dst, bytes);
}

sim::Event TransferEngine::submit_p2p(uint64_t tag, const void* src, void* dst, uint64_t bytes,
                                      int peer, double not_before) {
  assert_owner();
  assert(!pending(TransferDir::kP2P, tag) && "one transfer per (dir, tag) may be in flight");
  sim::Event e = machine_.p2p_copy(peer, bytes, not_before);
  return track(TransferDir::kP2P, tag, e, src, dst, bytes);
}

void TransferEngine::dispatch(const void* src, void* dst, uint64_t bytes, uint64_t /*seq*/) {
  if (src && dst) {
    std::memcpy(dst, src, bytes);
    ++stats_.inline_copies;
  }
}

void TransferEngine::ensure_landed(uint64_t /*seq*/) {}

void TransferEngine::retire(TransferDir dir, uint64_t tag, bool discarded) {
  pending_[index(dir)].erase(tag);
  uint64_t* counter = nullptr;
  switch (dir) {
    case TransferDir::kD2H:
      counter = discarded ? &stats_.discarded_d2h : &stats_.completed_d2h;
      break;
    case TransferDir::kH2D:
      counter = discarded ? &stats_.discarded_h2d : &stats_.completed_h2d;
      break;
    case TransferDir::kP2P:
      counter = discarded ? &stats_.discarded_p2p : &stats_.completed_p2p;
      break;
  }
  ++*counter;
}

bool TransferEngine::try_retire(TransferDir dir, uint64_t tag) {
  assert_owner();
  auto& map = pending_[index(dir)];
  auto it = map.find(tag);
  if (it == map.end()) return true;
  // Deterministic gate: the virtual event decides *when* a transfer counts as
  // complete; the wall-clock copy only has to have landed by then.
  if (!machine_.query_event(it->second.event)) return false;
  ensure_landed(it->second.seq);
  retire(dir, tag, /*discarded=*/false);
  return true;
}

void TransferEngine::wait(TransferDir dir, uint64_t tag) {
  assert_owner();
  auto& map = pending_[index(dir)];
  auto it = map.find(tag);
  if (it == map.end()) return;
  machine_.wait_event(it->second.event);
  ensure_landed(it->second.seq);
  retire(dir, tag, /*discarded=*/false);
}

void TransferEngine::discard(TransferDir dir, uint64_t tag) {
  assert_owner();
  auto& map = pending_[index(dir)];
  auto it = map.find(tag);
  if (it == map.end()) return;
  ensure_landed(it->second.seq);
  retire(dir, tag, /*discarded=*/true);
}

bool TransferEngine::pending(TransferDir dir, uint64_t tag) const {
  assert_owner();
  return pending_[index(dir)].count(tag) != 0;
}

std::vector<uint64_t> TransferEngine::pending_tags(TransferDir dir) const {
  assert_owner();
  std::vector<uint64_t> tags;
  tags.reserve(pending_[index(dir)].size());
  for (const auto& [tag, op] : pending_[index(dir)]) tags.push_back(tag);
  // unordered_map iteration order is unspecified; sort so drains are
  // deterministic across standard-library implementations.
  std::sort(tags.begin(), tags.end());
  return tags;
}

void TransferEngine::drain() {
  for (TransferDir dir : {TransferDir::kD2H, TransferDir::kH2D, TransferDir::kP2P}) {
    for (uint64_t tag : pending_tags(dir)) wait(dir, tag);
  }
}

TransferStats TransferEngine::stats() const {
  TransferStats s = stats_;
  s.dma_copies = dma_copies();
  return s;
}

// ---------------------------------------------------------------------------
// DmaTransferEngine

DmaTransferEngine::DmaTransferEngine(sim::Machine& machine, bool pinned,
                                     mem::HostPool& staging_pool, uint64_t staging_bytes,
                                     int device_id)
    : TransferEngine(machine, pinned, device_id),
      staging_pool_(staging_pool),
      staging_bytes_(staging_bytes) {
  for (int i = 0; i < 2; ++i) {
    staging_handle_[i] = staging_pool_.allocate(staging_bytes_);
    if (staging_handle_[i]) staging_buf_[i] = staging_pool_.ptr(staging_handle_[i]);
  }
  // Staging only works double-buffered; holding a single block would starve
  // the pinned offload budget for zero benefit. Release and copy direct.
  if (!staging_buf_[0] || !staging_buf_[1]) {
    for (int i = 0; i < 2; ++i) {
      if (staging_handle_[i]) staging_pool_.deallocate(staging_handle_[i]);
      staging_handle_[i] = 0;
      staging_buf_[i] = nullptr;
    }
  }
  worker_ = std::thread([this] { worker_loop(); });
}

DmaTransferEngine::~DmaTransferEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  worker_.join();
  for (int i = 0; i < 2; ++i) {
    if (staging_handle_[i]) staging_pool_.deallocate(staging_handle_[i]);
  }
}

void DmaTransferEngine::dispatch(const void* src, void* dst, uint64_t bytes, uint64_t seq) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push(Job{src, dst, bytes, seq});
  }
  cv_.notify_one();
}

void DmaTransferEngine::ensure_landed(uint64_t seq) {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return landed_seq_ >= seq; });
}

void DmaTransferEngine::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stop_ set and queue drained
      job = jobs_.front();
      jobs_.pop();
    }
    copy_through_staging(job);
    {
      std::lock_guard<std::mutex> lock(mu_);
      landed_seq_ = job.seq;  // jobs run FIFO, seq is monotone
    }
    done_cv_.notify_all();
  }
}

void DmaTransferEngine::copy_through_staging(const Job& job) {
  if (!job.src || !job.dst) return;  // unbacked buffers: accounting only
  dma_copies_.fetch_add(1, std::memory_order_relaxed);
  if (!staging_buf_[0] || !staging_buf_[1]) {
    std::memcpy(job.dst, job.src, job.bytes);
    return;
  }
  // Chunk through the two pinned staging buffers, alternating: on hardware
  // this is what lets the engine overlap the DMA of chunk k with the CPU
  // stage of chunk k+1; here it bounds the pinned footprint the same way.
  const auto* src = static_cast<const std::byte*>(job.src);
  auto* dst = static_cast<std::byte*>(job.dst);
  uint64_t off = 0;
  int buf = 0;
  while (off < job.bytes) {
    uint64_t chunk = std::min<uint64_t>(staging_bytes_, job.bytes - off);
    std::memcpy(staging_buf_[buf], src + off, chunk);
    std::memcpy(dst + off, staging_buf_[buf], chunk);
    off += chunk;
    buf ^= 1;
  }
}

// ---------------------------------------------------------------------------

std::unique_ptr<TransferEngine> make_transfer_engine(sim::Machine& machine, mem::HostPool& host,
                                                     bool real, bool async_transfers,
                                                     int device_id) {
  if (real && async_transfers) {
    return std::make_unique<DmaTransferEngine>(machine, host.pinned(), host,
                                               DmaTransferEngine::kDefaultStagingBytes,
                                               device_id);
  }
  return std::make_unique<TransferEngine>(machine, host.pinned(), device_id);
}

}  // namespace sn::core
