#include "core/transfer_engine.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "mem/host_pool.hpp"
#include "obs/trace.hpp"
#include "sim/cluster.hpp"

namespace sn::core {

// ---------------------------------------------------------------------------
// TransferEngine (base = simulation / synchronous backend)

TransferEngine::TransferEngine(sim::Machine& machine, bool pinned, int device_id)
    : machine_(machine), pinned_(pinned), device_id_(device_id) {}

TransferEngine::~TransferEngine() = default;

sim::Event TransferEngine::track(TransferDir dir, int peer, uint64_t tag, sim::Event e,
                                 const void* src, void* dst, uint64_t bytes,
                                 TransferPriority prio) {
  Ticket ticket = dispatch(dir, peer, src, dst, bytes, prio);
  pending_[index(dir)][tag] = Pending{e, ticket};
  switch (dir) {
    case TransferDir::kD2H: ++stats_.submitted_d2h; break;
    case TransferDir::kH2D: ++stats_.submitted_h2d; break;
    case TransferDir::kP2P: ++stats_.submitted_p2p; break;
  }
  return e;
}

sim::Event TransferEngine::submit(TransferDir dir, uint64_t tag, const void* src, void* dst,
                                  uint64_t bytes, TransferPriority prio) {
  assert_submit_owner();
  assert(dir != TransferDir::kP2P && "P2P transfers go through submit_p2p");
  assert(!pending(dir, tag) && "one transfer per (dir, tag) may be in flight");
  sim::Event e = machine_.async_copy(
      dir == TransferDir::kD2H ? sim::CopyDir::kD2H : sim::CopyDir::kH2D, bytes, pinned_);
  return track(dir, /*peer=*/-1, tag, e, src, dst, bytes, prio);
}

sim::Event TransferEngine::submit_p2p(uint64_t tag, const void* src, void* dst, uint64_t bytes,
                                      int peer, double not_before, TransferPriority prio,
                                      uint64_t flow, const char* span_name) {
  assert_submit_owner();
  assert(!pending(TransferDir::kP2P, tag) && "one transfer per (dir, tag) may be in flight");
  sim::Event e = machine_.p2p_copy(peer, bytes, not_before);
  if (auto* rec = machine_.trace()) {
    rec->record_copy(obs::SpanKind::kP2P, obs::kStreamP2PBase + peer,
                     e.done_at - machine_.p2p_seconds(bytes), e.done_at, bytes, flow, span_name);
  }
  return track(TransferDir::kP2P, peer, tag, e, src, dst, bytes, prio);
}

TransferEngine::Ticket TransferEngine::dispatch(TransferDir /*dir*/, int /*peer*/,
                                                const void* src, void* dst, uint64_t bytes,
                                                TransferPriority /*prio*/) {
  if (src && dst) {
    std::memcpy(dst, src, bytes);
    ++stats_.inline_copies;
  }
  return Ticket{};
}

void TransferEngine::ensure_landed(const Ticket& /*ticket*/) {}

void TransferEngine::fill_dma_stats(TransferStats& /*s*/) const {}

void TransferEngine::retire(TransferDir dir, uint64_t tag, bool discarded) {
  pending_[index(dir)].erase(tag);
  uint64_t* counter = nullptr;
  switch (dir) {
    case TransferDir::kD2H:
      counter = discarded ? &stats_.discarded_d2h : &stats_.completed_d2h;
      break;
    case TransferDir::kH2D:
      counter = discarded ? &stats_.discarded_h2d : &stats_.completed_h2d;
      break;
    case TransferDir::kP2P:
      counter = discarded ? &stats_.discarded_p2p : &stats_.completed_p2p;
      break;
  }
  ++*counter;
}

bool TransferEngine::try_retire(TransferDir dir, uint64_t tag) {
  assert_submit_owner();
  auto& map = pending_[index(dir)];
  auto it = map.find(tag);
  if (it == map.end()) return true;
  // Deterministic gate: the virtual event decides *when* a transfer counts as
  // complete; the wall-clock copy only has to have landed by then.
  if (!machine_.query_event(it->second.event)) return false;
  ensure_landed(it->second.ticket);
  retire(dir, tag, /*discarded=*/false);
  return true;
}

void TransferEngine::wait(TransferDir dir, uint64_t tag) {
  assert_submit_owner();
  auto& map = pending_[index(dir)];
  auto it = map.find(tag);
  if (it == map.end()) return;
  machine_.wait_event(it->second.event);
  ensure_landed(it->second.ticket);
  retire(dir, tag, /*discarded=*/false);
}

void TransferEngine::discard(TransferDir dir, uint64_t tag) {
  assert_submit_owner();
  auto& map = pending_[index(dir)];
  auto it = map.find(tag);
  if (it == map.end()) return;
  ensure_landed(it->second.ticket);
  retire(dir, tag, /*discarded=*/true);
}

void TransferEngine::await_landing(TransferDir dir, uint64_t tag) {
  assert_submit_owner();
  auto& map = pending_[index(dir)];
  auto it = map.find(tag);
  if (it == map.end()) return;
  ensure_landed(it->second.ticket);
}

void TransferEngine::retire_landed(TransferDir dir, uint64_t tag) {
  assert_submit_owner();
  auto& map = pending_[index(dir)];
  auto it = map.find(tag);
  if (it == map.end()) return;
  ensure_landed(it->second.ticket);
  retire(dir, tag, /*discarded=*/false);
}

double TransferEngine::eta_d2h(uint64_t bytes) const {
  assert_submit_owner();
  const sim::Stream& s = machine_.dma_streams().stream(sim::CopyDir::kD2H);
  double start = std::max(machine_.now(), s.busy_until());
  return start + machine_.copy_seconds(sim::CopyDir::kD2H, bytes, pinned_);
}

double TransferEngine::eta_p2p(uint64_t bytes, int peer) const {
  assert_submit_owner();
  sim::Cluster* cluster = machine_.cluster();
  assert(cluster && "eta_p2p requires cluster membership");
  double start = std::max(machine_.now(), cluster->link_busy_until(device_id_, peer));
  return start + machine_.p2p_seconds(bytes);
}

bool TransferEngine::pending(TransferDir dir, uint64_t tag) const {
  assert_submit_owner();
  return pending_[index(dir)].count(tag) != 0;
}

std::vector<uint64_t> TransferEngine::pending_tags(TransferDir dir) const {
  assert_submit_owner();
  std::vector<uint64_t> tags;
  tags.reserve(pending_[index(dir)].size());
  for (const auto& [tag, op] : pending_[index(dir)]) tags.push_back(tag);
  // unordered_map iteration order is unspecified; sort so drains are
  // deterministic across standard-library implementations.
  std::sort(tags.begin(), tags.end());
  return tags;
}

void TransferEngine::drain() {
  for (TransferDir dir : {TransferDir::kD2H, TransferDir::kH2D, TransferDir::kP2P}) {
    for (uint64_t tag : pending_tags(dir)) wait(dir, tag);
  }
}

TransferStats TransferEngine::stats() const {
  TransferStats s = stats_;
  fill_dma_stats(s);
  return s;
}

// ---------------------------------------------------------------------------
// DmaTransferEngine

DmaTransferEngine::DmaTransferEngine(sim::Machine& machine, bool pinned,
                                     mem::HostPool& staging_pool, uint64_t staging_bytes,
                                     int device_id)
    : TransferEngine(machine, pinned, device_id),
      staging_pool_(staging_pool),
      staging_bytes_(staging_bytes) {
  dir_workers_[kStreamD2H].stream = kStreamD2H;
  dir_workers_[kStreamH2D].stream = kStreamH2D;
  // The PCIe-direction workers stage through pinned double buffers; carve the
  // D2H pair first so a tight pool degrades deterministically (offload keeps
  // staging, prefetch falls back to direct copies).
  start_worker(dir_workers_[kStreamD2H], /*with_staging=*/true);
  start_worker(dir_workers_[kStreamH2D], /*with_staging=*/true);
}

DmaTransferEngine::~DmaTransferEngine() {
  stop_worker(dir_workers_[kStreamD2H]);
  stop_worker(dir_workers_[kStreamH2D]);
  for (auto& [peer, w] : p2p_workers_) stop_worker(*w);
}

void DmaTransferEngine::start_worker(Worker& w, bool with_staging) {
  if (with_staging) {
    for (int i = 0; i < 2; ++i) {
      w.staging_handle[i] = staging_pool_.allocate(staging_bytes_);
      if (w.staging_handle[i]) w.staging_buf[i] = staging_pool_.ptr(w.staging_handle[i]);
    }
    // Staging only works double-buffered; holding a single block would starve
    // the pinned offload budget for zero benefit. Release and copy direct.
    if (!w.staging_buf[0] || !w.staging_buf[1]) {
      for (int i = 0; i < 2; ++i) {
        if (w.staging_handle[i]) staging_pool_.deallocate(w.staging_handle[i]);
        w.staging_handle[i] = 0;
        w.staging_buf[i] = nullptr;
      }
    }
    w.use_staging = w.staging_buf[0] != nullptr;
  }
  w.paused = paused_;
  w.thread = std::thread([this, &w] { worker_loop(w); });
  if (w.use_staging) {
    w.drainer = std::thread([this, &w] { drainer_loop(w); });
  }
}

void DmaTransferEngine::stop_worker(Worker& w) {
  {
    std::lock_guard<std::mutex> lock(w.mu);
    w.stop = true;
  }
  w.cv.notify_all();
  if (w.thread.joinable()) w.thread.join();
  {
    std::lock_guard<std::mutex> lock(w.smu);
    w.staging_stop = true;
  }
  w.scv.notify_all();
  if (w.drainer.joinable()) w.drainer.join();
  for (int i = 0; i < 2; ++i) {
    if (w.staging_handle[i]) staging_pool_.deallocate(w.staging_handle[i]);
    w.staging_handle[i] = 0;
    w.staging_buf[i] = nullptr;
  }
}

DmaTransferEngine::Worker& DmaTransferEngine::worker_for(TransferDir dir, int peer) {
  switch (dir) {
    case TransferDir::kD2H: return dir_workers_[kStreamD2H];
    case TransferDir::kH2D: return dir_workers_[kStreamH2D];
    case TransferDir::kP2P: break;
  }
  assert(peer >= 0 && "P2P dispatch needs a peer device");
  auto it = p2p_workers_.find(peer);
  if (it == p2p_workers_.end()) {
    // One worker per directed link, created at first use. Pipeline
    // parallelism streams whole boundary activations over these links, so
    // each gets the same pinned double-buffer + drainer pipeline as the
    // PCIe directions (ROADMAP "P2P staging"); a tight pool degrades the
    // lazily-created links last, after the PCIe pairs.
    auto w = std::make_unique<Worker>();
    w->stream = 2 + peer;
    start_worker(*w, /*with_staging=*/true);
    it = p2p_workers_.emplace(peer, std::move(w)).first;
  }
  return *it->second;
}

DmaTransferEngine::Worker* DmaTransferEngine::worker_by_stream(int stream) {
  if (stream == kStreamD2H || stream == kStreamH2D) return &dir_workers_[stream];
  auto it = p2p_workers_.find(stream - 2);
  return it == p2p_workers_.end() ? nullptr : it->second.get();
}

TransferEngine::Ticket DmaTransferEngine::dispatch(TransferDir dir, int peer, const void* src,
                                                   void* dst, uint64_t bytes,
                                                   TransferPriority prio) {
  Worker& w = worker_for(dir, peer);
  uint64_t seq = ++w.next_seq;  // compute-thread owned (assert_submit_owner in submit)
  {
    std::lock_guard<std::mutex> lock(w.mu);
    (prio == TransferPriority::kHigh ? w.high : w.normal).push_back(Job{src, dst, bytes, seq});
  }
  w.cv.notify_one();
  return Ticket{w.stream, seq};
}

void DmaTransferEngine::ensure_landed(const Ticket& ticket) {
  Worker* w = worker_by_stream(ticket.stream);
  assert(w && "ticket for an unknown stream");
  std::unique_lock<std::mutex> lock(w->mu);
  w->done_cv.wait(lock, [&] {
    return ticket.seq <= w->landed_floor || w->landed.count(ticket.seq) != 0;
  });
}

void DmaTransferEngine::mark_landed(Worker& w, uint64_t seq) {
  {
    std::lock_guard<std::mutex> lock(w.mu);
    if (seq == w.landed_floor + 1) {
      ++w.landed_floor;
      // Absorb completions that landed out of (submit) order earlier.
      while (!w.landed.empty() && *w.landed.begin() == w.landed_floor + 1) {
        w.landed.erase(w.landed.begin());
        ++w.landed_floor;
      }
    } else {
      w.landed.insert(seq);
    }
  }
  w.done_cv.notify_all();
}

void DmaTransferEngine::worker_loop(Worker& w) {
#ifndef NDEBUG
  w.worker_tid = std::this_thread::get_id();
#endif
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(w.mu);
      w.cv.wait(lock, [&] {
        return w.stop || (!w.paused && (!w.high.empty() || !w.normal.empty()));
      });
      if (w.high.empty() && w.normal.empty()) return;  // stop set and queue drained
      if (!w.high.empty()) {
        job = w.high.front();
        w.high.pop_front();
      } else {
        job = w.normal.front();
        w.normal.pop_front();
      }
    }
    run_job(w, job);
    mark_landed(w, job.seq);
  }
}

void DmaTransferEngine::run_job(Worker& w, const Job& job) {
#ifndef NDEBUG
  // Copies must never execute inline on the submit owner (the compute
  // thread) — that would silently re-serialize the engine.
  assert(std::this_thread::get_id() != owner_ &&
         "DMA jobs must not run on the compute thread");
#endif
  if (!job.src || !job.dst) return;  // unbacked buffers: accounting only
  w.dma_copies.fetch_add(1, std::memory_order_relaxed);
  if (!w.use_staging) {
    std::memcpy(job.dst, job.src, job.bytes);
    return;
  }
  // Pipelined double-buffered staging: the worker stages chunk k+1 into one
  // pinned buffer while the drainer flushes chunk k from the other — the
  // CPU-stage/DMA-drain overlap real pinned hardware gets. Chunks of one job
  // target disjoint destination ranges, so the drainer may flush full slots
  // in either order; the job-boundary barrier below keeps jobs FIFO with
  // respect to each other (job k+1 never stages before job k fully landed).
  const auto* src = static_cast<const std::byte*>(job.src);
  auto* dst = static_cast<std::byte*>(job.dst);
  uint64_t off = 0;
  int buf = 0;
  int chunk_index = 0;
  while (off < job.bytes) {
    uint64_t chunk = std::min<uint64_t>(staging_bytes_, job.bytes - off);
    double wbegin = obs::TraceRecorder::wall_now();
    {
      std::unique_lock<std::mutex> lock(w.smu);
      w.scv.wait(lock, [&] { return !w.slot[buf].full; });
      assert(!w.slot[buf].full && "stager may only fill an empty slot");
    }
    // Slot is empty: the drainer is done with this buffer, the stager owns it.
    std::memcpy(w.staging_buf[buf], src + off, chunk);
    {
      std::lock_guard<std::mutex> lock(w.smu);
      w.slot[buf] = Worker::Slot{dst + off, chunk, /*full=*/true};
    }
    w.scv.notify_all();
    w.staged_chunks.fetch_add(1, std::memory_order_relaxed);
    if (auto* rec = machine_.trace()) {
      rec->record_wall_chunk(w.stream, job.seq, chunk_index, chunk, wbegin,
                             obs::TraceRecorder::wall_now());
    }
    off += chunk;
    buf ^= 1;
    ++chunk_index;
  }
  // Job boundary: every staged chunk must reach its destination before the
  // job counts as landed (and before the next job may stage).
  std::unique_lock<std::mutex> lock(w.smu);
  w.scv.wait(lock, [&] { return !w.slot[0].full && !w.slot[1].full; });
}

void DmaTransferEngine::drainer_loop(Worker& w) {
  for (;;) {
    int buf = -1;
    std::byte* dst = nullptr;
    uint64_t len = 0;
    {
      std::unique_lock<std::mutex> lock(w.smu);
      w.scv.wait(lock, [&] { return w.staging_stop || w.slot[0].full || w.slot[1].full; });
      if (w.slot[0].full) {
        buf = 0;
      } else if (w.slot[1].full) {
        buf = 1;
      } else {
        return;  // staging_stop and both slots flushed
      }
      dst = w.slot[buf].dst;
      len = w.slot[buf].len;
    }
#ifndef NDEBUG
    assert(std::this_thread::get_id() != owner_ && std::this_thread::get_id() != w.worker_tid &&
           "full slots may only be flushed by the stream's drainer");
#endif
    // Full slot: the stager has handed this buffer over, the drainer owns it.
    std::memcpy(dst, w.staging_buf[buf], len);
    {
      std::lock_guard<std::mutex> lock(w.smu);
      w.slot[buf].full = false;
    }
    w.scv.notify_all();
  }
}

void DmaTransferEngine::pause_workers_for_testing(bool paused) {
  assert_submit_owner();
  paused_ = paused;
  auto set = [&](Worker& w) {
    {
      std::lock_guard<std::mutex> lock(w.mu);
      w.paused = paused;
    }
    w.cv.notify_all();
  };
  set(dir_workers_[kStreamD2H]);
  set(dir_workers_[kStreamH2D]);
  for (auto& [peer, w] : p2p_workers_) set(*w);
}

void DmaTransferEngine::fill_dma_stats(TransferStats& s) const {
  auto load = [](const std::atomic<uint64_t>& a) { return a.load(std::memory_order_relaxed); };
  s.dma_copies_d2h = load(dir_workers_[kStreamD2H].dma_copies);
  s.dma_copies_h2d = load(dir_workers_[kStreamH2D].dma_copies);
  s.dma_copies_p2p = 0;
  for (const auto& [peer, w] : p2p_workers_) s.dma_copies_p2p += load(w->dma_copies);
  s.dma_copies = s.dma_copies_d2h + s.dma_copies_h2d + s.dma_copies_p2p;
  s.staged_chunks_p2p = 0;
  for (const auto& [peer, w] : p2p_workers_) s.staged_chunks_p2p += load(w->staged_chunks);
  s.staged_chunks = load(dir_workers_[kStreamD2H].staged_chunks) +
                    load(dir_workers_[kStreamH2D].staged_chunks) + s.staged_chunks_p2p;
}

// ---------------------------------------------------------------------------

std::unique_ptr<TransferEngine> make_transfer_engine(sim::Machine& machine, mem::HostPool& host,
                                                     bool real, bool async_transfers,
                                                     int device_id) {
  if (real && async_transfers) {
    return std::make_unique<DmaTransferEngine>(machine, host.pinned(), host,
                                               DmaTransferEngine::kDefaultStagingBytes,
                                               device_id);
  }
  return std::make_unique<TransferEngine>(machine, host.pinned(), device_id);
}

}  // namespace sn::core
