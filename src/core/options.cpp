#include "core/options.hpp"

namespace sn::core {

const char* recompute_mode_name(RecomputeMode m) {
  switch (m) {
    case RecomputeMode::kNone: return "none";
    case RecomputeMode::kSpeedCentric: return "speed-centric";
    case RecomputeMode::kMemoryCentric: return "memory-centric";
    case RecomputeMode::kCostAware: return "cost-aware";
  }
  return "?";
}

const char* policy_name(PolicyPreset p) {
  switch (p) {
    case PolicyPreset::kBaselineNaive: return "Baseline";
    case PolicyPreset::kCaffeLike: return "Caffe";
    case PolicyPreset::kTorchLike: return "Torch";
    case PolicyPreset::kMxnetLike: return "MXNet";
    case PolicyPreset::kTfLike: return "TensorFlow";
    case PolicyPreset::kSuperNeurons: return "SuperNeurons";
  }
  return "?";
}

RuntimeOptions make_policy(PolicyPreset preset, sim::DeviceSpec spec) {
  RuntimeOptions o;
  o.spec = spec;
  o.device_capacity = spec.dram_bytes;
  switch (preset) {
    case PolicyPreset::kBaselineNaive:
      o.use_liveness = false;
      o.use_pool_allocator = false;
      o.offload = false;
      o.tensor_cache = false;
      o.recompute = RecomputeMode::kNone;
      o.dynamic_workspace = false;
      break;
    case PolicyPreset::kCaffeLike:
      // Caffe keeps the whole net resident and allocates with cudaMalloc at
      // setup; no swap, no recompute, fixed algorithm choice. It does reuse
      // forward tensors for backward data propagation (§2.2).
      o.use_liveness = false;
      o.use_pool_allocator = false;
      o.offload = false;
      o.tensor_cache = false;
      o.recompute = RecomputeMode::kNone;
      o.dynamic_workspace = false;
      o.reuse_grad_buffers = true;
      break;
    case PolicyPreset::kTorchLike:
      o.use_liveness = false;
      o.use_pool_allocator = false;
      o.offload = false;
      o.tensor_cache = false;
      o.recompute = RecomputeMode::kNone;
      o.dynamic_workspace = false;
      o.reuse_grad_buffers = true;
      o.inplace_act = true;
      break;
    case PolicyPreset::kMxnetLike:
      // DAG engine frees dead tensors; per-layer speed-centric recompute that
      // ignores memory variation across layers (paper §2.2); no swapping.
      o.use_liveness = true;
      o.use_pool_allocator = true;
      o.offload = false;
      o.tensor_cache = false;
      o.recompute = RecomputeMode::kSpeedCentric;
      o.dynamic_workspace = false;
      break;
    case PolicyPreset::kTfLike:
      // Swaps long-lived tensors but through pageable memory (>= 50% slower
      // transfers, paper §2.2) and without a reuse cache.
      o.use_liveness = true;
      o.use_pool_allocator = true;
      o.offload = true;
      o.tensor_cache = false;
      o.pinned_host = false;
      o.recompute = RecomputeMode::kNone;
      o.dynamic_workspace = false;
      break;
    case PolicyPreset::kSuperNeurons:
      break;  // defaults are the full runtime
  }
  return o;
}

}  // namespace sn::core
