// The SuperNeurons runtime: a dynamic GPU-memory scheduling executor.
//
// Orchestrates one training iteration over the 2N-step route, combining
// (per RuntimeOptions):
//   * Liveness Analysis     — free tensors at their last use (§3.2)
//   * GPU Memory Pool       — amortized alloc/free (§3.2.1, Table 2)
//   * Unified Tensor Pool   — offload CONV outputs to pinned host memory,
//                             prefetch them ahead of the backward pass,
//                             overlapping DMA with compute (§3.3.1)
//   * Tensor Cache          — LRU over device tensors; transfers fire only
//                             under memory pressure (§3.3.2, Alg. 2)
//   * Cost-Aware Recompute  — drop cheap tensors, replay segments (§3.4)
//   * Dynamic Workspaces    — fastest memory-feasible conv algorithm per
//                             step (§3.5)
//
// The Runtime is the *orchestrator*: it walks the route, decides when to
// materialize / drop / offload / prefetch, and delegates the mechanisms to
// three layered subsystems —
//   UnifiedTensorPool  (core/tensor_pool.hpp)     the memory-state machine
//   TransferEngine     (core/transfer_engine.hpp) submit/poll/wait DMA, with
//                      a sim virtual-time backend and a real DMA-thread one
//   Prefetcher         (core/prefetcher.hpp)      backward lookahead policy
//
// The same scheduler runs in two modes: `real` (backed memory, kernels
// execute, numerics verifiable) and simulation (accounting + virtual time
// only), letting tests verify that scheduling NEVER changes training results
// while benches run paper-scale configurations.
#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/liveness.hpp"
#include "core/options.hpp"
#include "core/prefetcher.hpp"
#include "core/recompute.hpp"
#include "core/telemetry.hpp"
#include "core/tensor_pool.hpp"
#include "core/workspace.hpp"
#include "graph/net.hpp"
#include "sim/costmodel.hpp"
#include "sim/machine.hpp"
#include "util/rng.hpp"

namespace sn::core {

class Runtime {
 public:
  /// `net` must be finalized and outlive the runtime.
  Runtime(graph::Net& net, RuntimeOptions opts);

  /// Place parameters (and their gradients) permanently on the device and,
  /// in real mode, initialize weights (He-normal, seeded). Throws OomError
  /// if parameters alone exceed capacity.
  void initialize();

  /// Run one forward+backward pass. `input` / `labels` may be null in
  /// simulation mode. Returns per-iteration stats; per-step telemetry for
  /// the iteration is kept in step_telemetry().
  IterationStats train_iteration(const float* input, const int32_t* labels);

  // --- microbatch-granular passes (pipeline parallelism) --------------------
  // A pipeline stage cannot run forward+backward atomically: its backward
  // depends on a gradient the NEXT stage produces from this stage's forward
  // output. These split train_iteration at the forward/backward boundary.
  // forward_pass may be called repeatedly without a backward (GPipe fill:
  // later microbatches overwrite earlier activations; the drain phase
  // re-runs forward_pass to rematerialize them); each backward_pass zeroes
  // gradients at first definition, so per-microbatch gradients come out
  // independent and the caller combines them pairwise. Neither advances the
  // iteration counter — call advance_iteration() once per global batch so
  // every microbatch (and its rematerialization) sees the same seeds.

  /// Run the forward half of an iteration (resets per-iteration state).
  /// Returns stats for the forward span only.
  IterationStats forward_pass(const float* input, const int32_t* labels);

  /// Run the backward half over the activations of the last forward_pass.
  /// `labels` must match that forward's batch when the net has a loss layer.
  /// Drains outstanding DMA; returns stats for the backward span (loss
  /// fields cover the whole microbatch).
  IterationStats backward_pass(const int32_t* labels = nullptr);

  /// Bump the iteration counter (iteration-seeded state: dropout masks).
  void advance_iteration() {
    ++iter_;
    fresh_iteration_ = true;
  }

  /// Stamp subsequent steps' telemetry with the column-schedule position
  /// (dist::SchedulePhase as int, plus the microbatch index); (-1, -1)
  /// clears. Telemetry-only — never affects scheduling or numerics.
  void set_schedule_phase(int phase, int microbatch) {
    sched_phase_ = phase;
    sched_microbatch_ = microbatch;
  }

  /// Keep step telemetry across the microbatch passes of one iteration
  /// (cleared at the first pass after advance_iteration() instead of at
  /// every forward_pass), so a whole pipeline iteration's phase-stamped
  /// step series is readable afterwards. Off by default.
  void set_retain_telemetry(bool retain) { retain_telemetry_ = retain; }

  /// Cap the retained step-telemetry series: once `cap` records exist the
  /// oldest are evicted (bounds memory on long retained runs). 0 = unbounded
  /// (the default, preserving historical behaviour).
  void set_telemetry_capacity(size_t cap) { telemetry_capacity_ = cap; }
  size_t telemetry_dropped() const { return telemetry_dropped_; }

  // --- externally produced tensors (pipeline stage boundaries) --------------

  /// Pin a tensor no in-stage layer defines (a P2P landing site: the
  /// upstream activation-gradient, or a boundary output read by a peer):
  /// allocate device memory now and lock it for the runtime's lifetime so
  /// liveness/eviction never reclaim it mid-stream.
  void pin_external(tensor::Tensor* t);

  /// Mark `t` remotely produced and not yet landed: the prefetcher skips it
  /// (a host fetch would stage stale bytes of the previous microbatch).
  void mark_external_pending(const tensor::Tensor* t);

  /// The P2P landing for `t` has been waited out; plans may include it again.
  void mark_external_landed(const tensor::Tensor* t);

  /// Forward-only pass (inference). Tensors are freed at their last
  /// *forward* use, so the scheduled footprint is far below training's. If
  /// `probs_out` is non-null (real mode) it receives the loss layer's output.
  IterationStats forward_iteration(const float* input, const int32_t* labels,
                                   std::vector<float>* probs_out = nullptr);

  /// Vanilla SGD over all parameters (momentum kept host-side).
  void apply_sgd(float lr, float momentum = 0.0f, float weight_decay = 0.0f);

  const std::vector<StepTelemetry>& step_telemetry() const { return telemetry_; }
  const Liveness& liveness() const { return liveness_; }
  const RecomputePlan& recompute_plan() const { return plan_; }
  sim::Machine& machine() { return machine_; }
  mem::GpuAllocator& allocator() { return pool_->allocator(); }
  UnifiedTensorPool& tensor_pool() { return *pool_; }
  const UnifiedTensorPool& tensor_pool() const { return *pool_; }
  const TransferEngine& transfer_engine() const { return pool_->engine(); }
  const Prefetcher& prefetcher() const { return prefetcher_; }
  const RuntimeOptions& options() const { return opts_; }
  graph::Net& net() { return net_; }

  /// Copy a parameter's device contents out (real mode; for tests/examples).
  std::vector<float> read_tensor(const tensor::Tensor* t);
  /// Overwrite a parameter's device contents (real mode).
  void write_tensor(const tensor::Tensor* t, const std::vector<float>& data);

  uint64_t current_iteration() const { return iter_; }

 private:
  float* device_ptr(const tensor::Tensor* t) { return pool_->device_ptr(t); }

  /// Make `t` usable on device right now (cache-hit / prefetch-wait /
  /// on-demand fetch / recomputation).
  void materialize(tensor::Tensor* t);

  /// Replay `layer`'s forward pass to regenerate its outputs (recompute).
  void replay_forward(graph::Layer* layer);

  /// Ensure a definition target is allocated; zero gradients on first def.
  void ensure_def(tensor::Tensor* t);

  // --- step execution -------------------------------------------------------
  void exec_step(const graph::Step& step, const float* input, const int32_t* labels,
                 double* loss_out);
  void post_step(const graph::Step& step);
  void run_layer_pass(graph::Layer* layer, bool forward, const float* input,
                      const int32_t* labels, double* loss_out, StepTelemetry* tele);
  void charge_layer_time(const graph::Layer* layer, bool forward, nn::ConvAlgo algo);
  void issue_prefetches(int step);

  void lock(const std::vector<tensor::Tensor*>& ts, bool locked);
  void note_peak();

  tensor::Tensor* tensor_by_uid(uint64_t uid) { return net_.registry().get(uid); }
  graph::Layer* producer_of(const tensor::Tensor* t) {
    return producer_[t->uid()];
  }

  /// Reset the per-iteration state forward_pass / train_iteration start from.
  void begin_iteration();

  /// Counter snapshot bracketing a pass; end_span() returns the deltas as
  /// IterationStats (plus the iteration-scope loss / peak fields).
  struct StatSpan {
    sim::MachineCounters c0;
    double t0 = 0.0;
    uint64_t hits0 = 0, misses0 = 0, dma0 = 0, evict0 = 0, alloc0 = 0, extra0 = 0;
    uint64_t pstage0 = 0, pstageb0 = 0, pfetch0 = 0, pspill0 = 0;
  };
  StatSpan begin_span() const;
  IterationStats end_span(const StatSpan& s);

  graph::Net& net_;
  RuntimeOptions opts_;
  /// Owned when running standalone; null when opts.cluster provides the
  /// machine (one runtime per cluster device sharing the P2P fabric).
  std::unique_ptr<sim::Machine> owned_machine_;
  sim::Machine& machine_;
  sim::CostModel cost_;
  Liveness liveness_;
  RecomputePlan plan_;
  /// Owns the device allocator, host pool, tensor cache and transfer engine;
  /// constructed in the ctor body once liveness/plan exist for its hooks.
  std::unique_ptr<UnifiedTensorPool> pool_;
  Prefetcher prefetcher_;

  std::vector<graph::Layer*> producer_;        ///< tensor uid -> defining layer
  std::vector<int> last_forward_use_;          ///< uid -> last forward step using it
  std::vector<bool> is_offload_target_;        ///< uid -> CONV/DATA output
  /// Per forward step: droppable tensors whose forward consumers finish
  /// there but that are still needed by the backward pass.
  std::vector<std::vector<uint64_t>> drop_after_fwd_;
  /// Per forward step: every non-persistent tensor whose last forward use is
  /// that step (inference-mode free lists).
  std::vector<std::vector<uint64_t>> fwd_free_lists_;

  /// Remotely produced uids awaiting their P2P landing (prefetcher gate).
  std::unordered_set<uint64_t> external_pending_;

  // per-iteration state
  std::unordered_set<uint64_t> zeroed_grads_;
  std::vector<uint64_t> regenerated_;          ///< uids replayed this backward step
  double loss_sum_ = 0.0;                      ///< raw NLL sum this iteration
  double iter_loss_ = 0.0;                     ///< normalized loss (softmax forward)
  uint64_t iter_ = 0;
  uint64_t iter_peak_ = 0;
  uint64_t extra_forwards_ = 0;
  bool initialized_ = false;
  int sched_phase_ = -1;       ///< schedule-phase stamp for step telemetry
  int sched_microbatch_ = -1;  ///< microbatch stamp for step telemetry
  bool retain_telemetry_ = false;
  bool fresh_iteration_ = true;  ///< next begin_iteration starts a new global batch
  /// True while a recompute replay is on the stack: nested materializations
  /// then use targeted chain replays instead of whole-segment eagerness
  /// (prevents replay/eviction livelock under extreme pressure).
  bool in_replay_ = false;
  /// Set during forward_iteration: dropout becomes identity etc.
  bool inference_mode_ = false;

  std::vector<StepTelemetry> telemetry_;
  size_t telemetry_capacity_ = 0;  ///< 0 = unbounded
  size_t telemetry_dropped_ = 0;   ///< records evicted by the cap
  std::unordered_map<const tensor::Tensor*, std::vector<float>> momentum_;
};

}  // namespace sn::core
