// Tensor Cache: LRU over GPU-resident tensors (paper §3.3.2, Alg. 2).
//
// Back-propagation revisits tensors tail-to-head, so the most recently used
// tensors are reused earliest — the access pattern LRU fits. The cache keeps
// tensors on the device until memory pressure forces eviction; with enough
// DRAM a training iteration performs zero transfers (Table 3).
//
// Locking: a layer locks its dependent tensors for the duration of its
// computation; locked entries are never eviction candidates (Alg. 2 LRU.in /
// getLastUnlockedTensor). The actual offload on eviction is performed by the
// UnifiedTensorPool — the cache only decides the order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <unordered_map>

namespace sn::core {

class TensorCache {
 public:
  /// Insert at the MRU position (Alg. 2 LRU.in). No-op if already present.
  void insert(uint64_t uid);

  /// Move to the MRU front (Alg. 2 Check cache-hit path).
  void touch(uint64_t uid);

  /// Remove (tensor freed or evicted).
  void erase(uint64_t uid);

  bool contains(uint64_t uid) const { return pos_.count(uid) != 0; }
  size_t size() const { return lru_.size(); }

  /// Walk from the LRU tail and return the first entry `viable` accepts
  /// (Alg. 2 getLastUnlockedTensor), or nullopt when none qualifies. Lock
  /// state lives on the Tensor, so viability is the caller's predicate. This
  /// is an in-place query — no snapshot of the LRU list is materialized.
  std::optional<uint64_t> find_victim(const std::function<bool(uint64_t)>& viable) const;

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  void count_hit() { ++hits_; }
  void count_miss() { ++misses_; }

 private:
  std::list<uint64_t> lru_;  ///< front = MRU, back = LRU
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> pos_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace sn::core
