#include "core/recompute.hpp"

namespace sn::core {

bool RecomputePlan::is_checkpoint_layer(const graph::Layer* l) {
  // Compute-intensive layers keep their outputs (paper §3.3: "checkpoints
  // represent the compute-intensive layers such as FC and CONV"). DATA is the
  // replay source; the loss layer's output is consumed by the immediately
  // following backward step, so dropping it would only add a pointless replay.
  switch (l->type()) {
    case graph::LayerType::kData:
    case graph::LayerType::kConv:
    case graph::LayerType::kFc:
    case graph::LayerType::kSoftmax:
      return true;
    default:
      return false;
  }
}

RecomputePlan::RecomputePlan(const graph::Net& net, RecomputeMode mode) : mode_(mode) {
  l_peak_ = net.max_layer_bytes();
  layer_segment_.assign(net.num_layers(), -1);
  tensor_droppable_.assign(net.registry().size(), false);
  if (mode == RecomputeMode::kNone) return;

  // Route-consecutive runs of non-checkpoint layers form segments.
  Segment current;
  auto flush = [&] {
    if (current.layers.empty()) return;
    current.id = static_cast<int>(segments_.size());
    // memcost = Σ l_f over the segment + l_b at the segment end (Fig. 9).
    uint64_t cost = 0;
    for (const graph::Layer* l : current.layers) {
      cost += l->output()->bytes();
      for (const tensor::Tensor* a : l->aux()) cost += a->bytes();
    }
    if (const tensor::Tensor* g = current.layers.back()->output_grad()) cost += g->bytes();
    current.memcost = cost;
    switch (mode_) {
      case RecomputeMode::kSpeedCentric: current.speed_centric = true; break;
      case RecomputeMode::kMemoryCentric: current.speed_centric = false; break;
      case RecomputeMode::kCostAware: current.speed_centric = current.memcost <= l_peak_; break;
      case RecomputeMode::kNone: break;
    }
    for (const graph::Layer* l : current.layers) layer_segment_[l->id()] = current.id;
    segments_.push_back(std::move(current));
    current = Segment{};
  };

  for (graph::Layer* l : net.route()) {
    if (is_checkpoint_layer(l)) {
      flush();
    } else {
      current.layers.push_back(l);
    }
  }
  flush();

  for (const Segment& seg : segments_) {
    for (const graph::Layer* l : seg.layers) {
      tensor_droppable_[l->output()->uid()] = true;
      for (const tensor::Tensor* a : l->aux()) tensor_droppable_[a->uid()] = true;
    }
  }
}

int RecomputePlan::segment_of(const graph::Layer* l) const {
  return layer_segment_[static_cast<size_t>(l->id())];
}

bool RecomputePlan::droppable(const tensor::Tensor* t) const {
  return tensor_droppable_[t->uid()];
}

uint64_t RecomputePlan::predicted_extra_forwards(RecomputeMode as_mode) const {
  uint64_t total = 0;
  for (const Segment& seg : segments_) {
    uint64_t n = seg.layers.size();
    uint64_t speed = n;
    // Memory-centric on a linear segment (upper bound): the consuming
    // checkpoint's backward replays the full chain (n), then each segment
    // layer i replays its ancestor prefix including itself (i+1, when the
    // backward kernel reads the layer's own output / aux) — n + Σ_{i=1..n} i.
    // Layers whose backward reads only their input (ReLU) shorten chains, so
    // the measured count can fall below this. The paper's simpler model
    // yields n(n+1)/2 — same triangular shape.
    uint64_t memory = n + n * (n + 1) / 2;
    switch (as_mode) {
      case RecomputeMode::kNone: break;
      case RecomputeMode::kSpeedCentric: total += speed; break;
      case RecomputeMode::kMemoryCentric: total += memory; break;
      case RecomputeMode::kCostAware: total += seg.memcost <= l_peak_ ? speed : memory; break;
    }
  }
  return total;
}

uint64_t RecomputePlan::predicted_peak_memcost(RecomputeMode as_mode) const {
  // Memory-centric keeps only one layer's working set at a time, so its
  // recompute peak never exceeds l_peak. Speed-centric materializes whole
  // segments, exceeding l_peak whenever a segment's memcost does. Cost-aware
  // only picks speed-centric for segments below the threshold == l_peak.
  uint64_t peak = l_peak_;
  if (as_mode == RecomputeMode::kSpeedCentric) {
    for (const Segment& seg : segments_)
      if (seg.memcost > peak) peak = seg.memcost;
  }
  return peak;
}

}  // namespace sn::core
