// Runtime configuration and the framework-policy presets.
//
// The paper compares SuperNeurons against Caffe, Torch, MXNet and TensorFlow.
// Those frameworks' memory behaviour is reproduced here as *policies over the
// same substrate* (see DESIGN.md, Substitutions): each preset toggles the
// runtime features that characterize the framework's published memory
// strategy, so cross-framework deltas isolate exactly the variable the paper
// studies (the scheduling policy), not kernel quality.
#pragma once

#include <cstdint>
#include <string>

#include "sim/device_spec.hpp"

namespace sn::sim {
class Cluster;
}

namespace sn::core {

enum class RecomputeMode {
  kNone,
  kSpeedCentric,   ///< replay each segment once, keep results (MXNet, §3.4)
  kMemoryCentric,  ///< replay per backward layer, re-drop intermediates
  kCostAware,      ///< per-segment choice bounded by l_peak (the paper's)
};

const char* recompute_mode_name(RecomputeMode m);

/// Sentinel for RuntimeOptions::prefetch_lookahead: "the user did not set
/// it" — the runtime substitutes the per-net table default.
inline constexpr int kPrefetchLookaheadAuto = -1;

struct RuntimeOptions {
  // --- memory techniques (paper §3) ---------------------------------------
  bool use_liveness = true;       ///< free tensors at their last use (§3.2)
  bool use_pool_allocator = true; ///< pre-allocated heap vs cudaMalloc (§3.2.1)
  bool offload = true;            ///< UTP offload/prefetch of CONV outputs (§3.3)
  bool tensor_cache = true;       ///< LRU cache: transfer only on pressure (§3.3.2)
  RecomputeMode recompute = RecomputeMode::kCostAware;  ///< §3.4

  // --- transfer behaviour --------------------------------------------------
  bool pinned_host = true;       ///< pinned staging (TF-like policies lose 50%)
  bool async_transfers = true;   ///< overlap DMA with compute
  /// Checkpoint spans staged ahead of backward (§3.3.1; the paper prefetches
  /// exactly 1; 0 disables prefetching entirely). Left at
  /// kPrefetchLookaheadAuto, the runtime picks the per-net default
  /// core::default_prefetch_lookahead() pins from bench_prefetch_lookahead
  /// (VGG16/19 -> 1, InceptionV4 / ResNet50/101 -> 2).
  int prefetch_lookahead = kPrefetchLookaheadAuto;

  // --- speed techniques ----------------------------------------------------
  bool dynamic_workspace = true; ///< per-step fastest feasible conv algo (§3.5)
  bool allow_workspace = true;   ///< false = force the zero-workspace algorithm
                                 ///< (the Fig. 2 "without conv buff" series)

  // --- modelling -----------------------------------------------------------
  bool inplace_act = false;      ///< Torch-style in-place ReLU (sim-only alias)
  bool reuse_grad_buffers = false;  ///< Caffe/Torch-style reuse of forward
                                    ///< tensors for backward data (§2.2:
                                    ///< "saves up to 50%"); sim-only alias
  bool real = false;             ///< real numerics (backed pools, kernels run)
  uint64_t device_capacity = 12ull << 30;
  uint64_t host_capacity = 256ull << 30;
  sim::DeviceSpec spec = sim::k40c_spec();
  uint64_t seed = 0x5EEDBA5Eull;

  // --- multi-device (dist/) ------------------------------------------------
  /// When set, the runtime drives `cluster->machine(device_id)` instead of
  /// owning a machine, so several runtimes share one virtual-time fabric and
  /// P2P links. `spec` must match the cluster's device spec (the cost model
  /// reads it). The cluster must outlive the runtime.
  sim::Cluster* cluster = nullptr;
  int device_id = 0;
  /// 2D grid coordinates of this runtime on the cluster's (stage, replica)
  /// device grid (sim::GridView); stamped into every StepTelemetry entry so
  /// traces group by pipeline stage and replica lane. (0, 0) off-grid.
  int stage = 0;
  int replica = 0;
  /// Global batch the loss is averaged over (0 = the net's own batch).
  /// Data-parallel replicas set this so per-sample gradients are independent
  /// of the sharding.
  int loss_batch = 0;
};

/// Framework presets used by the end-to-end benches (Tables 4/5, Figs 13/14).
enum class PolicyPreset {
  kBaselineNaive,  ///< every tensor allocated, nothing freed (paper baseline)
  kCaffeLike,      ///< all tensors resident; native allocator; static algo
  kTorchLike,      ///< Caffe + in-place activations
  kMxnetLike,      ///< liveness + uniform speed-centric recompute, no offload
  kTfLike,         ///< liveness + swap, but pageable staging and no cache
  kSuperNeurons,   ///< everything (the paper's runtime)
};

const char* policy_name(PolicyPreset p);

RuntimeOptions make_policy(PolicyPreset preset, sim::DeviceSpec spec = sim::k40c_spec());

/// Error thrown when an allocation cannot be satisfied even after eviction /
/// recomputation — the "GPU out-of-memory" the going-wider/deeper benches
/// probe for.
struct OomError {
  uint64_t requested = 0;
  uint64_t largest_free = 0;
  std::string what;
};

}  // namespace sn::core
