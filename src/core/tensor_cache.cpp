#include "core/tensor_cache.hpp"

namespace sn::core {

void TensorCache::insert(uint64_t uid) {
  if (pos_.count(uid)) {
    touch(uid);
    return;
  }
  lru_.push_front(uid);
  pos_[uid] = lru_.begin();
}

void TensorCache::touch(uint64_t uid) {
  auto it = pos_.find(uid);
  if (it == pos_.end()) return;
  lru_.splice(lru_.begin(), lru_, it->second);
  it->second = lru_.begin();
}

void TensorCache::erase(uint64_t uid) {
  auto it = pos_.find(uid);
  if (it == pos_.end()) return;
  lru_.erase(it->second);
  pos_.erase(it);
}

std::optional<uint64_t> TensorCache::find_victim(
    const std::function<bool(uint64_t)>& viable) const {
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    if (viable(*it)) return *it;
  }
  return std::nullopt;
}

}  // namespace sn::core
