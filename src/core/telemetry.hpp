// Per-step and per-iteration telemetry the benches read.
//
// Fig. 10 plots stepwise memory and live-tensor counts; Table 3 reads
// communication volumes; Fig. 12 reads per-CONV workspace assignments. All
// of that is captured here rather than printf'd, so tests can assert on it.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/conv.hpp"

namespace sn::graph {
class Layer;
}

namespace sn::core {

struct StepTelemetry {
  int step = -1;
  const graph::Layer* layer = nullptr;
  bool forward = true;
  int device_id = 0;           ///< cluster device the step ran on (dist/)
  int stage = 0;               ///< pipeline-stage row on the (stage, replica) grid
  int replica = 0;             ///< replica column on the (stage, replica) grid
  /// Column-schedule position (dist/ trainers; -1 off-pipeline): phase is a
  /// dist::SchedulePhase value (0 fill / 1 steady / 2 drain), microbatch the
  /// microbatch index the pass belonged to — so 1F1B's steady state is
  /// visible per step, not just in aggregate bubble time.
  int sched_phase = -1;
  int microbatch = -1;

  uint64_t mem_in_use = 0;     ///< device bytes live right after the kernel
  uint64_t live_tensors = 0;   ///< tensors resident on device at that point
  double clock = 0.0;          ///< virtual time when the step completed

  // Convolution workspace decision (0 / kDirect for non-conv steps).
  nn::ConvAlgo algo = nn::ConvAlgo::kDirect;
  uint64_t ws_assigned = 0;
  uint64_t ws_max_speed = 0;

  // Unified Tensor Pool / TransferEngine state right after the kernel
  // (§3.3.1): host-pool pressure plus cumulative transfer counters, so tests
  // can observe offloads/prefetches completing — including on the DMA thread
  // when the real async engine is active.
  uint64_t host_in_use = 0;          ///< host-pool bytes in use (offloaded tensors;
                                     ///< in real+async mode also the engine's
                                     ///< pinned staging carve-out: a 2x256 KiB
                                     ///< double buffer per PCIe-direction worker)
  uint64_t host_peak = 0;            ///< host-pool peak bytes so far
  uint64_t d2h_submitted = 0;        ///< cumulative offload submissions
  uint64_t h2d_submitted = 0;        ///< cumulative prefetch/fetch submissions
  uint64_t d2h_completed = 0;        ///< cumulative retired offloads
  uint64_t h2d_completed = 0;        ///< cumulative retired prefetches/fetches
  uint64_t dma_copies = 0;           ///< cumulative memcpys done on DMA worker threads
  uint64_t transfers_in_flight = 0;  ///< pending transfers at step end (both directions)
  uint64_t d2h_in_flight = 0;        ///< pending offloads at step end
  uint64_t h2d_in_flight = 0;        ///< pending prefetches/fetches at step end
  // Per-stream DMA-engine occupancy (cumulative virtual seconds each copy
  // engine spent busy): the raw material of the paper's overlap claim —
  // compute_time vs these says how much transfer the schedule hid.
  double d2h_busy_seconds = 0.0;
  double h2d_busy_seconds = 0.0;
  /// Cumulative link seconds this device's P2P sends occupied (pipeline
  /// activation streaming / collective hops; 0 off-cluster).
  double p2p_busy_seconds = 0.0;
  /// Cumulative compute-stream seconds; the delta between consecutive steps
  /// is the compute the overlap figure plots the busy-seconds series against.
  double compute_seconds = 0.0;
};

struct IterationStats {
  double loss = 0.0;
  /// Raw (unnormalized) NLL sum over this runtime's batch. Data-parallel
  /// replicas recombine these pairwise into a global loss that matches a
  /// single-device run bit for bit; means cannot be recombined exactly.
  double loss_sum = 0.0;
  double seconds = 0.0;         ///< virtual wall time of the iteration
  uint64_t peak_mem = 0;        ///< max device bytes in use during the iteration
  uint64_t bytes_d2h = 0;
  uint64_t bytes_h2d = 0;
  uint64_t extra_forwards = 0;  ///< recomputation replays
  uint64_t evictions = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t allocs = 0;
  double malloc_seconds = 0.0;  ///< compute time lost to allocator latency
  double stall_seconds = 0.0;   ///< compute time lost waiting on DMA
  uint64_t host_peak = 0;       ///< host-pool peak bytes so far (lifetime high
                                ///< water mark — a peak is monotone, unlike the
                                ///< per-iteration deltas above)
  // Peer-memory staging (zero unless a PeerStagingGroup is attached).
  uint64_t peer_stage_count = 0;  ///< evictions routed into a peer pool over P2P
  uint64_t peer_stage_bytes = 0;  ///< bytes those evictions kept off the D2H uplink
  uint64_t peer_fetch_count = 0;  ///< staged tensors fetched back over P2P
  uint64_t peer_spill_count = 0;  ///< staged tensors the hosting peer spilled to
                                  ///< the owner's host pool under its own pressure
  uint64_t dma_copies = 0;      ///< DMA-worker memcpys this iteration (async engine)
  // Per-stream copy-engine occupancy this iteration (virtual seconds the H2D
  // and D2H engines spent busy). With dual engines their sum can exceed the
  // mixed-traffic span — that surplus is exactly the offload/prefetch
  // overlap the multi-stream engine buys.
  double d2h_seconds = 0.0;
  double h2d_seconds = 0.0;

  // Collective telemetry, filled by dist::DataParallelTrainer and
  // dist::HybridParallelTrainer (zero for single-device training).
  uint64_t p2p_bytes = 0;          ///< bytes this device sent over peer links
  double allreduce_seconds = 0.0;  ///< device time inside the gradient all-reduce

  /// All-reduce virtual time NOT hidden behind the pipeline drain: how far
  /// past the grid-wide drain end the last row's collective ran (aggregate
  /// stats only; dist::HybridParallelTrainer). Bucketed-async 1F1B shrinks
  /// this — the overlap win the hybrid bench gates on.
  double allreduce_exposed_seconds = 0.0;

  // Pipeline telemetry, filled by dist::PipelineParallelTrainer and
  // dist::HybridParallelTrainer (zero elsewhere).
  double p2p_seconds = 0.0;     ///< link seconds occupied by this device's sends
  double bubble_seconds = 0.0;  ///< compute time stalled waiting on a pipeline
                                ///< neighbor (fill/drain bubbles)
  /// bubble_seconds split by schedule phase (fill / steady / drain), so the
  /// receiver-side waits are attributable: GPipe's bubble is all ramp,
  /// 1F1B's steady state should be near bubble-free once warmed up.
  double bubble_fill_seconds = 0.0;
  double bubble_steady_seconds = 0.0;
  double bubble_drain_seconds = 0.0;
};

}  // namespace sn::core
