// Peer-memory staging: a third placement tier between kDevice and kHost.
//
// When a pool must evict a dirty tensor but the D2H uplink is backlogged and
// a peer device has spare pool budget on an idle P2P link, the tensor is
// staged in the PEER's device pool instead of host memory (Residency::kPeer)
// and fetched back over the same link — the host uplink never sees it.
//
// A PeerStagingGroup ties the participating UnifiedTensorPools of one
// trainer together:
//
//   * membership + donation budget — each member grants a bounded number of
//     bytes of its own pool to guests (evictees of other members). Guests
//     are allocated from FREE space only (never by evicting the host's own
//     tensors) and stay out of the host's tensor cache, so the host's own
//     eviction order is untouched.
//   * routing — route() compares the deterministic ETA of a hypothetical
//     host offload (TransferEngine::eta_d2h: D2H stream backlog head + copy
//     time) against the ETA over each candidate peer link (eta_p2p). A peer
//     qualifies when it has budget and free space left and is not itself
//     under recent allocation pressure; the tensor is staged only when the
//     best peer ETA beats the host ETA. Every input is compute-thread
//     virtual-time bookkeeping, so the decision is bit-reproducible.
//   * guest registry — staged copies in FIFO order. When a HOST comes under
//     its own pressure it reclaims guests before evicting its own tensors:
//     spill_one_guest() moves the oldest idle guest to its owner's host pool
//     over the host's D2H engine, and the owner transparently falls back to
//     the ordinary kHost fetch path (bit-identical bytes either way).
//   * id spaces — transfer tags live at kTagBase (bit 52), disjoint from
//     tensor uids and from the dist-layer tag namespaces; flow ids come from
//     obs::flow_id_peer_stage (bit 61), so trace_report pairs every staging
//     hop's producer span with the stall that consumed it.
//
// Thread model: like everything submit-side, a group is driven by the single
// trainer thread that constructed its pools. Lifetime: declare the group
// before the runtimes that use it (pools detach() themselves on destruction,
// which only drops bookkeeping — teardown never moves bytes).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <vector>

namespace sn::tensor {
class Tensor;
}

namespace sn::core {

class UnifiedTensorPool;

class PeerStagingGroup {
 public:
  /// Transfer-tag namespace for staging hops (stage-out P2P, fetch-back P2P,
  /// spill D2H). Bit 52 keeps it disjoint from tensor uids (dense small
  /// ints), trainer boundary tags and communicator tags (bit 48).
  static constexpr uint64_t kTagBase = 1ull << 52;

  /// Grant `pool` membership, donating up to `donation_budget` bytes of its
  /// device pool to staged guests from other members.
  void add_member(UnifiedTensorPool& pool, uint64_t donation_budget);

  /// Drop `pool` from the group and forget every guest it hosts or owns.
  /// Teardown-only bookkeeping (pool destructors call this); no transfers.
  void detach(UnifiedTensorPool* pool);

  /// Pick the staging destination for `bytes` evicted from `owner`: the
  /// qualifying peer with the lowest arrival ETA, or -1 when the host
  /// offload path wins (or no peer qualifies). Deterministic (see file
  /// comment).
  int route(const UnifiedTensorPool& owner, uint64_t bytes) const;

  UnifiedTensorPool* member_pool(int device) const;

  uint64_t next_tag() { return kTagBase + tag_seq_++; }
  /// Fresh flow id for one staging hop sent by `device`.
  uint64_t next_flow(int device);

  // --- guest registry (called by UnifiedTensorPool) -------------------------

  void register_guest(UnifiedTensorPool* owner, UnifiedTensorPool* host, uint64_t uid,
                      uint64_t handle, uint64_t bytes, double staged_at);
  /// Forget the guest and return its bytes to the host's donation budget.
  void unregister_guest(const UnifiedTensorPool* owner, uint64_t uid);
  /// Virtual time the guest's bytes finished landing on the host (the
  /// fetch-back's sender-side data dependency).
  double guest_staged_at(const UnifiedTensorPool* owner, uint64_t uid) const;
  /// Guests with a fetch-back in flight are exempt from spilling.
  void mark_fetch_pending(const UnifiedTensorPool* owner, uint64_t uid, bool pending);

  /// Spill the oldest idle guest hosted by `host` to its owner's host pool
  /// (synchronously, over `host`'s D2H engine). Returns false when `host`
  /// hosts no spillable guest. Called by the host's allocator-pressure path
  /// BEFORE it starts evicting its own tensors.
  bool spill_one_guest(UnifiedTensorPool& host);

  // --- introspection (tests / telemetry) ------------------------------------

  size_t guest_count() const { return guests_.size(); }
  uint64_t donated_in_use(int device) const;
  uint64_t donation_budget(int device) const;

 private:
  struct Member {
    UnifiedTensorPool* pool = nullptr;
    int device = -1;
    uint64_t donation_budget = 0;
    uint64_t donated_in_use = 0;
  };
  struct Guest {
    UnifiedTensorPool* owner = nullptr;
    UnifiedTensorPool* host = nullptr;
    uint64_t uid = 0;
    uint64_t handle = 0;   ///< allocation handle inside the host's allocator
    uint64_t bytes = 0;
    double staged_at = 0.0;
    bool fetch_pending = false;
  };

  Member* member(int device);
  const Member* member(int device) const;
  std::list<Guest>::iterator find_guest(const UnifiedTensorPool* owner, uint64_t uid);
  std::list<Guest>::const_iterator find_guest(const UnifiedTensorPool* owner,
                                              uint64_t uid) const;

  std::vector<Member> members_;  ///< ascending device id (route scan order)
  std::list<Guest> guests_;      ///< staging order: front = oldest (spill first)
  uint64_t tag_seq_ = 0;
  uint64_t flow_seq_ = 0;
};

}  // namespace sn::core
