#include "core/tensor_pool.hpp"

#include <cassert>

#include "core/options.hpp"

namespace sn::core {

UnifiedTensorPool::UnifiedTensorPool(tensor::TensorRegistry& registry, sim::Machine& machine,
                                     Config cfg, Hooks hooks)
    : registry_(registry),
      cfg_(cfg),
      hooks_(std::move(hooks)),
      host_pool_(cfg.host_capacity, cfg.pinned_host, cfg.real) {
  if (cfg_.use_pool_allocator) {
    allocator_ = std::make_unique<mem::PoolAllocator>(machine, cfg_.device_capacity,
                                                      mem::MemoryPool::kDefaultBlockBytes,
                                                      cfg_.real);
  } else {
    allocator_ = std::make_unique<mem::NativeAllocator>(machine, cfg_.device_capacity, cfg_.real);
  }
  engine_ = make_transfer_engine(machine, host_pool_, cfg_.real, cfg_.async_transfers,
                                 cfg_.device_id);
}

float* UnifiedTensorPool::device_ptr(const tensor::Tensor* t) {
  if (!cfg_.real) return nullptr;
  if (!t->gpu_handle) return nullptr;
  return static_cast<float*>(allocator_->ptr(*t->gpu_handle));
}

void UnifiedTensorPool::alloc_device(tensor::Tensor* t) {
  ++alloc_count_;
  auto h = allocator_->allocate(t->bytes());
  if (!h && cfg_.tensor_cache) {
    // Alg. 2 LRU.out: evict least-recently-used unlocked tensors one at a
    // time, retrying the allocation after each, until it fits. Pass 1 frees
    // clean entries (host copy already valid); pass 2 offloads/drops.
    for (int pass = 0; pass < 2 && !h; ++pass) {
      while (!h) {
        auto victim = cache_.find_victim([&](uint64_t uid) {
          tensor::Tensor* c = by_uid(uid);
          if (c->locked() || !c->on_device()) return false;
          if (pass == 0 && c->residency != tensor::Residency::kBoth) return false;
          return true;
        });
        if (!victim) break;
        tensor::Tensor* c = by_uid(*victim);
        if (pass == 0) {
          release_offloaded(c);
        } else {
          evict_one(c);
        }
        ++evictions_;
        h = allocator_->allocate(t->bytes());
      }
    }
  }
  if (!h) {
    throw OomError{t->bytes(), allocator_->largest_free(),
                   "device OOM allocating " + t->name()};
  }
  t->gpu_handle = *h;
  ++live_count_;
  if (cfg_.tensor_cache && !hooks_.persistent(t->uid())) cache_.insert(t->uid());
}

void UnifiedTensorPool::free_device(tensor::Tensor* t) {
  // Never reclaim device memory under an in-flight copy: discard blocks
  // until the DMA thread has let go of the buffers (and keeps the virtual
  // clock untouched — the result is being thrown away).
  engine_->discard(TransferDir::kD2H, t->uid());
  engine_->discard(TransferDir::kH2D, t->uid());
  if (t->gpu_handle) {
    allocator_->deallocate(*t->gpu_handle);
    t->gpu_handle.reset();
    --live_count_;
  } else if (t->residency == tensor::Residency::kDevice ||
             t->residency == tensor::Residency::kBoth) {
    --live_count_;  // aliased (in-place) tensor: counted live without a handle
  }
  cache_.erase(t->uid());
}

void UnifiedTensorPool::evict_one(tensor::Tensor* t) {
  if (hooks_.droppable(t)) {
    drop_tensor(t);  // recomputation restores it without any transfer
    return;
  }
  // Synchronous offload: the memory is reused immediately, so the copy must
  // complete before the allocation proceeds.
  offload_to_host(t, /*async=*/false);
}

void UnifiedTensorPool::offload_to_host(tensor::Tensor* t, bool async) {
  if (t->host_handle == 0) {
    t->host_handle = host_pool_.allocate(t->bytes());
    if (t->host_handle == 0) {
      throw OomError{t->bytes(), host_pool_.free_bytes(), "host pool OOM for " + t->name()};
    }
  }
  // A rare double-offload (eviction racing an eager offload) must not stack
  // two transfers on one tag.
  if (engine_->pending(TransferDir::kD2H, t->uid())) {
    engine_->wait(TransferDir::kD2H, t->uid());
  }
  // Synchronous offloads (evictions) are waited immediately — the memory is
  // reused now — so they jump the D2H queue ahead of eager async offloads.
  const TransferPriority prio = (async && cfg_.async_transfers) ? TransferPriority::kNormal
                                                                : TransferPriority::kHigh;
  engine_->submit(TransferDir::kD2H, t->uid(), device_ptr(t), host_pool_.ptr(t->host_handle),
                  t->bytes(), prio);
  t->residency = tensor::Residency::kBoth;
  if (!(async && cfg_.async_transfers)) {
    engine_->wait(TransferDir::kD2H, t->uid());
    release_offloaded(t);
  }
}

void UnifiedTensorPool::release_offloaded(tensor::Tensor* t) {
  if (t->locked()) return;  // retried on a later poll
  // The host copy must be complete before the device copy goes away.
  engine_->wait(TransferDir::kD2H, t->uid());
  assert(t->on_host());
  free_device(t);
  t->residency = tensor::Residency::kHost;
}

void UnifiedTensorPool::drop_tensor(tensor::Tensor* t) {
  free_device(t);
  free_host(t);
  t->residency = tensor::Residency::kDropped;
}

void UnifiedTensorPool::free_host(tensor::Tensor* t) {
  if (t->host_handle) {
    host_pool_.deallocate(t->host_handle);
    t->host_handle = 0;
  }
}

void UnifiedTensorPool::fetch_from_host(tensor::Tensor* t) {
  alloc_device(t);
  // On-demand: the consumer needs the bytes now, so the fetch bypasses any
  // speculative prefetch backlog queued on the H2D stream.
  engine_->submit(TransferDir::kH2D, t->uid(), host_pool_.ptr(t->host_handle), device_ptr(t),
                  t->bytes(), TransferPriority::kHigh);
  engine_->wait(TransferDir::kH2D, t->uid());
  t->residency = tensor::Residency::kBoth;
  if (cfg_.tensor_cache) cache_.count_miss();
}

bool UnifiedTensorPool::prefetch(tensor::Tensor* t, TransferPriority prio) {
  if (allocator_->largest_free() < t->bytes()) return false;  // no room: never evict for a prefetch
  alloc_device(t);
  t->residency = tensor::Residency::kBoth;
  engine_->submit(TransferDir::kH2D, t->uid(), host_pool_.ptr(t->host_handle), device_ptr(t),
                  t->bytes(), prio);
  return true;
}

void UnifiedTensorPool::finish_prefetch(tensor::Tensor* t) {
  engine_->wait(TransferDir::kH2D, t->uid());
}

void UnifiedTensorPool::mark_dirty(tensor::Tensor* t) {
  // An in-flight offload would capture the buffer mid-write; its result is
  // stale either way, so drop it (blocks only until the DMA thread lets go).
  engine_->discard(TransferDir::kD2H, t->uid());
  if (t->residency == tensor::Residency::kBoth) {
    t->residency = tensor::Residency::kDevice;
  }
}

void UnifiedTensorPool::adopt_alias(tensor::Tensor* t) {
  t->residency = tensor::Residency::kDevice;
  ++live_count_;
}

void UnifiedTensorPool::poll_offloads(int step) {
  for (uint64_t uid : engine_->pending_tags(TransferDir::kD2H)) {
    tensor::Tensor* t = by_uid(uid);
    // Release the device copy once the copy landed AND the tensor's forward
    // consumers are done with it (vDNN-style release point).
    if (t->locked() || hooks_.last_forward_use(uid) > step) continue;
    if (engine_->try_retire(TransferDir::kD2H, uid)) release_offloaded(t);
  }
}

void UnifiedTensorPool::drain() {
  for (uint64_t uid : engine_->pending_tags(TransferDir::kD2H)) {
    engine_->wait(TransferDir::kD2H, uid);
    release_offloaded(by_uid(uid));
  }
  for (uint64_t uid : engine_->pending_tags(TransferDir::kH2D)) {
    engine_->wait(TransferDir::kH2D, uid);
  }
}

}  // namespace sn::core
