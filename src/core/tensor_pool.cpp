#include "core/tensor_pool.hpp"

#include <algorithm>
#include <cassert>

#include "core/options.hpp"
#include "core/peer_staging.hpp"
#include "obs/trace.hpp"

namespace sn::core {

UnifiedTensorPool::UnifiedTensorPool(tensor::TensorRegistry& registry, sim::Machine& machine,
                                     Config cfg, Hooks hooks)
    : registry_(registry),
      machine_(machine),
      cfg_(cfg),
      hooks_(std::move(hooks)),
      host_pool_(cfg.host_capacity, cfg.pinned_host, cfg.real) {
  if (cfg_.use_pool_allocator) {
    allocator_ = std::make_unique<mem::PoolAllocator>(machine, cfg_.device_capacity,
                                                      mem::MemoryPool::kDefaultBlockBytes,
                                                      cfg_.real);
  } else {
    allocator_ = std::make_unique<mem::NativeAllocator>(machine, cfg_.device_capacity, cfg_.real);
  }
  engine_ = make_transfer_engine(machine, host_pool_, cfg_.real, cfg_.async_transfers,
                                 cfg_.device_id);
}

UnifiedTensorPool::~UnifiedTensorPool() {
  if (group_) group_->detach(this);
}

float* UnifiedTensorPool::device_ptr(const tensor::Tensor* t) {
  if (!cfg_.real) return nullptr;
  if (!t->gpu_handle) return nullptr;
  return static_cast<float*>(allocator_->ptr(*t->gpu_handle));
}

void UnifiedTensorPool::alloc_device(tensor::Tensor* t) {
  ++alloc_count_;
  auto h = allocator_->allocate(t->bytes());
  // Guests staged here by other members are reclaimed before this pool
  // offloads its own tensors: a spill costs one D2H either way, and the
  // guest was only ever an opportunistic tenant of the free space.
  auto spill_guests = [&] {
    while (!h && group_ && group_->spill_one_guest(*this)) {
      h = allocator_->allocate(t->bytes());
    }
  };
  if (!h && cfg_.tensor_cache) {
    // Alg. 2 LRU.out: evict least-recently-used unlocked tensors one at a
    // time, retrying the allocation after each, until it fits. Pass 1 frees
    // clean entries (host copy already valid); pass 2 offloads/drops.
    for (int pass = 0; pass < 2 && !h; ++pass) {
      if (pass == 1) spill_guests();
      while (!h) {
        auto victim = cache_.find_victim([&](uint64_t uid) {
          tensor::Tensor* c = by_uid(uid);
          if (c->locked() || !c->on_device()) return false;
          if (pass == 0 && c->residency != tensor::Residency::kBoth) return false;
          return true;
        });
        if (!victim) break;
        tensor::Tensor* c = by_uid(*victim);
        if (pass == 0) {
          release_offloaded(c);
        } else {
          evict_one(c);
        }
        ++evictions_;
        last_eviction_alloc_ = alloc_count_;
        h = allocator_->allocate(t->bytes());
      }
    }
  }
  spill_guests();  // no cache / no victims left: hosted guests are still reclaimable
  if (!h) {
    throw OomError{t->bytes(), allocator_->largest_free(),
                   "device OOM allocating " + t->name()};
  }
  t->gpu_handle = *h;
  ++live_count_;
  if (cfg_.tensor_cache && !hooks_.persistent(t->uid())) cache_.insert(t->uid());
}

void UnifiedTensorPool::free_device(tensor::Tensor* t) {
  // Never reclaim device memory under an in-flight copy: discard blocks
  // until the DMA thread has let go of the buffers (and keeps the virtual
  // clock untouched — the result is being thrown away).
  engine_->discard(TransferDir::kD2H, t->uid());
  engine_->discard(TransferDir::kH2D, t->uid());
  if (t->gpu_handle) {
    allocator_->deallocate(*t->gpu_handle);
    t->gpu_handle.reset();
    --live_count_;
  } else if (t->residency == tensor::Residency::kDevice ||
             t->residency == tensor::Residency::kBoth) {
    --live_count_;  // aliased (in-place) tensor: counted live without a handle
  }
  cache_.erase(t->uid());
}

void UnifiedTensorPool::evict_one(tensor::Tensor* t) {
  if (hooks_.droppable(t)) {
    drop_tensor(t);  // recomputation restores it without any transfer
    return;
  }
  // Peer-memory staging: when the D2H stream is backlogged and a peer pool
  // has budget on a faster-arriving link, park the tensor there instead of
  // pushing it over the host uplink.
  if (stage_to_peer(t)) return;
  // Synchronous offload: the memory is reused immediately, so the copy must
  // complete before the allocation proceeds.
  offload_to_host(t, /*async=*/false);
}

void UnifiedTensorPool::offload_to_host(tensor::Tensor* t, bool async) {
  if (t->host_handle == 0) {
    t->host_handle = host_pool_.allocate(t->bytes());
    if (t->host_handle == 0) {
      throw OomError{t->bytes(), host_pool_.free_bytes(), "host pool OOM for " + t->name()};
    }
  }
  // A rare double-offload (eviction racing an eager offload) must not stack
  // two transfers on one tag.
  if (engine_->pending(TransferDir::kD2H, t->uid())) {
    engine_->wait(TransferDir::kD2H, t->uid());
  }
  // Synchronous offloads (evictions) are waited immediately — the memory is
  // reused now — so they jump the D2H queue ahead of eager async offloads.
  const TransferPriority prio = (async && cfg_.async_transfers) ? TransferPriority::kNormal
                                                                : TransferPriority::kHigh;
  engine_->submit(TransferDir::kD2H, t->uid(), device_ptr(t), host_pool_.ptr(t->host_handle),
                  t->bytes(), prio);
  t->residency = tensor::Residency::kBoth;
  if (!(async && cfg_.async_transfers)) {
    engine_->wait(TransferDir::kD2H, t->uid());
    release_offloaded(t);
  }
}

void UnifiedTensorPool::release_offloaded(tensor::Tensor* t) {
  if (t->locked()) return;  // retried on a later poll
  // The host copy must be complete before the device copy goes away.
  engine_->wait(TransferDir::kD2H, t->uid());
  assert(t->on_host());
  free_device(t);
  t->residency = tensor::Residency::kHost;
}

void UnifiedTensorPool::drop_tensor(tensor::Tensor* t) {
  free_peer(t);
  free_device(t);
  free_host(t);
  t->residency = tensor::Residency::kDropped;
}

void UnifiedTensorPool::free_host(tensor::Tensor* t) {
  if (t->host_handle) {
    host_pool_.deallocate(t->host_handle);
    t->host_handle = 0;
  }
}

void UnifiedTensorPool::fetch_from_host(tensor::Tensor* t) {
  alloc_device(t);
  // On-demand: the consumer needs the bytes now, so the fetch bypasses any
  // speculative prefetch backlog queued on the H2D stream.
  engine_->submit(TransferDir::kH2D, t->uid(), host_pool_.ptr(t->host_handle), device_ptr(t),
                  t->bytes(), TransferPriority::kHigh);
  engine_->wait(TransferDir::kH2D, t->uid());
  t->residency = tensor::Residency::kBoth;
  if (cfg_.tensor_cache) cache_.count_miss();
}

bool UnifiedTensorPool::prefetch(tensor::Tensor* t, TransferPriority prio) {
  if (allocator_->largest_free() < t->bytes()) return false;  // no room: never evict for a prefetch
  alloc_device(t);
  t->residency = tensor::Residency::kBoth;
  engine_->submit(TransferDir::kH2D, t->uid(), host_pool_.ptr(t->host_handle), device_ptr(t),
                  t->bytes(), prio);
  return true;
}

void UnifiedTensorPool::finish_prefetch(tensor::Tensor* t) {
  engine_->wait(TransferDir::kH2D, t->uid());
}

void UnifiedTensorPool::mark_dirty(tensor::Tensor* t) {
  // An in-flight offload would capture the buffer mid-write; its result is
  // stale either way, so drop it (blocks only until the DMA thread lets go).
  engine_->discard(TransferDir::kD2H, t->uid());
  if (t->residency == tensor::Residency::kBoth) {
    t->residency = tensor::Residency::kDevice;
  }
}

void UnifiedTensorPool::adopt_alias(tensor::Tensor* t) {
  t->residency = tensor::Residency::kDevice;
  ++live_count_;
}

// ---------------------------------------------------------------------------
// peer-memory staging

bool UnifiedTensorPool::stage_to_peer(tensor::Tensor* t) {
  if (!group_) return false;
  // A racing eager offload owns this tensor's D2H tag; the host path already
  // knows how to finish and reuse it.
  if (engine_->pending(TransferDir::kD2H, t->uid())) return false;
  const uint64_t bytes = t->bytes();
  const int peer_dev = group_->route(*this, bytes);
  if (peer_dev < 0) return false;
  UnifiedTensorPool* peer = group_->member_pool(peer_dev);
  const uint64_t handle = peer->accept_guest(bytes);
  if (handle == 0) return false;  // lost a fragmentation race since route()
  const uint64_t tag = group_->next_tag();
  const uint64_t flow = group_->next_flow(cfg_.device_id);
  sim::Event e = engine_->submit_p2p(tag, device_ptr(t), peer->guest_ptr(handle), bytes,
                                     peer_dev, machine_.now(), TransferPriority::kHigh, flow,
                                     "peer_stage");
  // Synchronous, like the eviction offload it replaces: the memory is reused
  // immediately, so compute stalls until the link copy arrives (the stall
  // consumes the staging flow, pairing the spans for the trace audit).
  if (auto* rec = machine_.trace()) {
    rec->set_stall_context(obs::StallSource::kTransfer, "peer_stage", "", -1, flow);
  }
  engine_->wait(TransferDir::kP2P, tag);
  if (auto* rec = machine_.trace()) rec->clear_stall_context();
  free_device(t);
  t->residency = tensor::Residency::kPeer;
  t->peer_device = peer_dev;
  t->peer_handle = handle;
  group_->register_guest(this, peer, t->uid(), handle, bytes, e.done_at);
  ++peer_stage_count_;
  peer_stage_bytes_ += bytes;
  return true;
}

void UnifiedTensorPool::fetch_from_peer(tensor::Tensor* t) {
  assert(group_ && t->residency == tensor::Residency::kPeer);
  UnifiedTensorPool* peer = group_->member_pool(t->peer_device);
  assert(peer && "staged copy's host left the group");
  const uint64_t handle = t->peer_handle;
  const uint64_t bytes = t->bytes();
  const double staged_at = group_->guest_staged_at(this, t->uid());
  alloc_device(t);
  // Submitted on the PEER's engine (sender side of the link); this pool's
  // machine gates on the arrival event, so the peer's clock is untouched —
  // same contract as a pipeline receive.
  const uint64_t tag = group_->next_tag();
  const uint64_t flow = group_->next_flow(t->peer_device);
  sim::Event e = peer->engine().submit_p2p(
      tag, peer->guest_ptr(handle), device_ptr(t), bytes, cfg_.device_id,
      std::max(staged_at, machine_.now()), TransferPriority::kHigh, flow, "peer_fetch");
  if (auto* rec = machine_.trace()) {
    rec->set_stall_context(obs::StallSource::kTransfer, "peer_fetch", "", -1, flow);
  }
  machine_.wait_event(e);
  if (auto* rec = machine_.trace()) rec->clear_stall_context();
  peer->engine().retire_landed(TransferDir::kP2P, tag);
  group_->unregister_guest(this, t->uid());
  peer->release_guest(handle);
  t->residency = tensor::Residency::kDevice;
  t->peer_device = -1;
  t->peer_handle = 0;
  ++peer_fetch_count_;
  if (cfg_.tensor_cache) cache_.count_miss();
}

bool UnifiedTensorPool::prefetch_from_peer(tensor::Tensor* t, TransferPriority prio) {
  assert(group_ && t->residency == tensor::Residency::kPeer);
  if (allocator_->largest_free() < t->bytes()) return false;  // never evict to stage back
  UnifiedTensorPool* peer = group_->member_pool(t->peer_device);
  assert(peer && "staged copy's host left the group");
  const uint64_t handle = t->peer_handle;
  const double staged_at = group_->guest_staged_at(this, t->uid());
  alloc_device(t);
  const uint64_t tag = group_->next_tag();
  const uint64_t flow = group_->next_flow(t->peer_device);
  sim::Event e = peer->engine().submit_p2p(
      tag, peer->guest_ptr(handle), device_ptr(t), t->bytes(), cfg_.device_id,
      std::max(staged_at, machine_.now()), prio, flow, "peer_fetch");
  // The tensor stays kPeer — not on_device — until the landing is retired,
  // which also keeps the cache's victim scan off its half-filled buffer.
  group_->mark_fetch_pending(this, t->uid(), true);
  peer_fetches_[t->uid()] = PendingPeerFetch{t->peer_device, tag, e, flow};
  return true;
}

void UnifiedTensorPool::finish_peer_fetch(tensor::Tensor* t) {
  auto it = peer_fetches_.find(t->uid());
  if (it == peer_fetches_.end()) return;
  const PendingPeerFetch pf = it->second;
  UnifiedTensorPool* peer = group_->member_pool(pf.peer);
  if (auto* rec = machine_.trace()) {
    rec->set_stall_context(obs::StallSource::kTransfer, "peer_fetch", "", -1, pf.flow);
  }
  machine_.wait_event(pf.event);
  if (auto* rec = machine_.trace()) rec->clear_stall_context();
  peer->engine().retire_landed(TransferDir::kP2P, pf.tag);
  group_->unregister_guest(this, t->uid());
  peer->release_guest(t->peer_handle);
  t->residency = tensor::Residency::kDevice;
  t->peer_device = -1;
  t->peer_handle = 0;
  ++peer_fetch_count_;
  peer_fetches_.erase(it);
}

void UnifiedTensorPool::free_peer(tensor::Tensor* t) {
  if (!group_) return;
  auto it = peer_fetches_.find(t->uid());
  if (it != peer_fetches_.end()) {
    // An in-flight fetch-back is writing t's device buffer: block until the
    // DMA worker lets go, then throw the result away (the tensor is dying).
    UnifiedTensorPool* peer = group_->member_pool(it->second.peer);
    peer->engine().discard(TransferDir::kP2P, it->second.tag);
    group_->mark_fetch_pending(this, t->uid(), false);
    peer_fetches_.erase(it);
  }
  if (t->residency == tensor::Residency::kPeer) {
    UnifiedTensorPool* peer = group_->member_pool(t->peer_device);
    group_->unregister_guest(this, t->uid());
    peer->release_guest(t->peer_handle);
    t->peer_device = -1;
    t->peer_handle = 0;
    // The caller owns the final residency (kNone / kDropped).
  }
}

uint64_t UnifiedTensorPool::accept_guest(uint64_t bytes) {
  auto h = allocator_->allocate(bytes);  // free space only — guests never evict
  return h ? *h : 0;
}

void UnifiedTensorPool::spill_guest_to_owner(UnifiedTensorPool& owner, uint64_t uid,
                                             uint64_t handle, uint64_t tag) {
  tensor::Tensor* t = owner.by_uid(uid);
  assert(t->residency == tensor::Residency::kPeer && t->peer_handle == handle);
  if (t->host_handle == 0) {
    t->host_handle = owner.host_pool_.allocate(t->bytes());
    if (t->host_handle == 0) {
      throw OomError{t->bytes(), owner.host_pool_.free_bytes(),
                     "host pool OOM spilling guest " + t->name()};
    }
  }
  // The spill rides THIS pool's D2H uplink at eviction priority — the freed
  // space is needed now — landing in the OWNER's host pool, so the owner's
  // ordinary kHost fetch path takes over from here.
  if (auto* rec = machine_.trace()) {
    rec->set_stall_context(obs::StallSource::kTransfer, "peer_spill", "", -1, 0);
  }
  engine_->submit(TransferDir::kD2H, tag, guest_ptr(handle),
                  owner.host_pool_.ptr(t->host_handle), t->bytes(), TransferPriority::kHigh);
  engine_->wait(TransferDir::kD2H, tag);
  if (auto* rec = machine_.trace()) rec->clear_stall_context();
  release_guest(handle);
  t->residency = tensor::Residency::kHost;
  t->peer_device = -1;
  t->peer_handle = 0;
  ++owner.peer_spill_count_;
}

void UnifiedTensorPool::poll_offloads(int step) {
  for (uint64_t uid : engine_->pending_tags(TransferDir::kD2H)) {
    tensor::Tensor* t = by_uid(uid);
    // Release the device copy once the copy landed AND the tensor's forward
    // consumers are done with it (vDNN-style release point).
    if (t->locked() || hooks_.last_forward_use(uid) > step) continue;
    if (engine_->try_retire(TransferDir::kD2H, uid)) release_offloaded(t);
  }
}

void UnifiedTensorPool::drain() {
  for (uint64_t uid : engine_->pending_tags(TransferDir::kD2H)) {
    engine_->wait(TransferDir::kD2H, uid);
    release_offloaded(by_uid(uid));
  }
  for (uint64_t uid : engine_->pending_tags(TransferDir::kH2D)) {
    engine_->wait(TransferDir::kH2D, uid);
  }
  // Land outstanding fetch-backs (ordered map: reproducible wait order).
  while (!peer_fetches_.empty()) {
    finish_peer_fetch(by_uid(peer_fetches_.begin()->first));
  }
}

}  // namespace sn::core
