// Cost-Aware Recomputation planner (paper §3.4).
//
// Checkpoint layers (DATA, CONV, FC — the compute-intensive classes, §3.3)
// keep their forward outputs; everything between two checkpoints forms a
// *recomputation segment* whose cheap outputs (POOL/ACT/LRN/BN/DROPOUT data
// and aux) are dropped during the forward pass and reconstructed on demand
// during back-propagation.
//
// Per-segment strategy (Fig. 9):
//   speed-centric  — replay the segment once; keep the regenerated tensors
//                    for the remaining backward steps of the segment.
//                    Extra forwards: |seg|. Memcost: Σ l_f(seg) + l_b(end).
//   memory-centric — replay the minimal ancestor chain for every backward
//                    layer and re-drop afterwards. Extra forwards ~ n(n+1)/2.
//                    Memcost: l_b of the single layer.
//   cost-aware     — speed-centric iff the segment's memcost ≤ l_peak =
//                    max_i(l_i), else memory-centric. Guarantees
//                    peak_m == l_peak with near-speed-centric replay counts.
#pragma once

#include <cstdint>
#include <vector>

#include "core/options.hpp"
#include "graph/net.hpp"

namespace sn::core {

struct Segment {
  int id = -1;
  /// Route-consecutive non-checkpoint layers forming the segment.
  std::vector<graph::Layer*> layers;
  /// True: replay once and keep; false: replay per backward layer, re-drop.
  bool speed_centric = true;
  /// Σ forward bytes of the segment + the gradient bytes at its end — the
  /// quantity compared against l_peak (paper §3.4 procedure 2).
  uint64_t memcost = 0;
};

class RecomputePlan {
 public:
  RecomputePlan(const graph::Net& net, RecomputeMode mode);

  RecomputeMode mode() const { return mode_; }
  const std::vector<Segment>& segments() const { return segments_; }

  /// Segment id of a layer; -1 for checkpoints (and for mode kNone).
  int segment_of(const graph::Layer* l) const;

  /// Whether this tensor is dropped after its forward consumers finish.
  bool droppable(const tensor::Tensor* t) const;

  /// l_peak = max_i(l_i): the cost-aware threshold (paper step 1).
  uint64_t l_peak() const { return l_peak_; }

  /// Analytic extra-forward counts (Table 1): speed-centric Σ|seg|,
  /// memory-centric Σ n(n+1)/2, cost-aware mixes by segment decision.
  uint64_t predicted_extra_forwards(RecomputeMode as_mode) const;

  /// Predicted peak recompute memcost across segments for a given strategy
  /// (Table 1's peak_m columns, in bytes).
  uint64_t predicted_peak_memcost(RecomputeMode as_mode) const;

  static bool is_checkpoint_layer(const graph::Layer* l);

 private:
  RecomputeMode mode_;
  std::vector<Segment> segments_;
  std::vector<int> layer_segment_;   ///< layer id -> segment id (-1 checkpoint)
  std::vector<bool> tensor_droppable_;
  uint64_t l_peak_ = 0;
};

}  // namespace sn::core
