#include "core/peer_staging.hpp"

#include <algorithm>
#include <cassert>

#include "core/tensor_pool.hpp"
#include "obs/trace.hpp"

namespace sn::core {

void PeerStagingGroup::add_member(UnifiedTensorPool& pool, uint64_t donation_budget) {
  assert(!member(pool.device_id()) && "one pool per device id in a staging group");
  Member m;
  m.pool = &pool;
  m.device = pool.device_id();
  m.donation_budget = donation_budget;
  members_.push_back(m);
  std::sort(members_.begin(), members_.end(),
            [](const Member& a, const Member& b) { return a.device < b.device; });
  pool.set_staging_group(this);
}

void PeerStagingGroup::detach(UnifiedTensorPool* pool) {
  guests_.remove_if([&](const Guest& g) { return g.owner == pool || g.host == pool; });
  members_.erase(std::remove_if(members_.begin(), members_.end(),
                                [&](const Member& m) { return m.pool == pool; }),
                 members_.end());
}

PeerStagingGroup::Member* PeerStagingGroup::member(int device) {
  for (Member& m : members_) {
    if (m.device == device) return &m;
  }
  return nullptr;
}

const PeerStagingGroup::Member* PeerStagingGroup::member(int device) const {
  for (const Member& m : members_) {
    if (m.device == device) return &m;
  }
  return nullptr;
}

UnifiedTensorPool* PeerStagingGroup::member_pool(int device) const {
  const Member* m = member(device);
  return m ? m->pool : nullptr;
}

uint64_t PeerStagingGroup::next_flow(int device) {
  return obs::flow_id_peer_stage(flow_seq_++, device);
}

int PeerStagingGroup::route(const UnifiedTensorPool& owner, uint64_t bytes) const {
  int best = -1;
  // The host path is the incumbent: a peer must strictly beat the D2H
  // stream's backlogged arrival time to win the eviction.
  double best_eta = owner.engine().eta_d2h(bytes);
  for (const Member& m : members_) {
    if (m.pool == &owner) continue;
    if (m.donated_in_use + bytes > m.donation_budget) continue;
    if (m.pool->under_pressure_now()) continue;  // a pressured peer would just spill it back
    if (m.pool->allocator().largest_free() < bytes) continue;
    double eta = owner.engine().eta_p2p(bytes, m.device);
    if (eta < best_eta) {  // strict: ties go to the earlier (lower-id) peer
      best_eta = eta;
      best = m.device;
    }
  }
  return best;
}

void PeerStagingGroup::register_guest(UnifiedTensorPool* owner, UnifiedTensorPool* host,
                                      uint64_t uid, uint64_t handle, uint64_t bytes,
                                      double staged_at) {
  Member* m = member(host->device_id());
  assert(m && "guest host must be a group member");
  m->donated_in_use += bytes;
  guests_.push_back(Guest{owner, host, uid, handle, bytes, staged_at, false});
}

std::list<PeerStagingGroup::Guest>::iterator PeerStagingGroup::find_guest(
    const UnifiedTensorPool* owner, uint64_t uid) {
  for (auto it = guests_.begin(); it != guests_.end(); ++it) {
    if (it->owner == owner && it->uid == uid) return it;
  }
  return guests_.end();
}

std::list<PeerStagingGroup::Guest>::const_iterator PeerStagingGroup::find_guest(
    const UnifiedTensorPool* owner, uint64_t uid) const {
  for (auto it = guests_.begin(); it != guests_.end(); ++it) {
    if (it->owner == owner && it->uid == uid) return it;
  }
  return guests_.end();
}

void PeerStagingGroup::unregister_guest(const UnifiedTensorPool* owner, uint64_t uid) {
  auto it = find_guest(owner, uid);
  assert(it != guests_.end() && "unregistering an unknown guest");
  if (Member* m = member(it->host->device_id())) {
    assert(m->donated_in_use >= it->bytes);
    m->donated_in_use -= it->bytes;
  }
  guests_.erase(it);
}

double PeerStagingGroup::guest_staged_at(const UnifiedTensorPool* owner, uint64_t uid) const {
  auto it = find_guest(owner, uid);
  assert(it != guests_.end() && "querying an unknown guest");
  return it->staged_at;
}

void PeerStagingGroup::mark_fetch_pending(const UnifiedTensorPool* owner, uint64_t uid,
                                          bool pending) {
  auto it = find_guest(owner, uid);
  assert(it != guests_.end() && "marking an unknown guest");
  it->fetch_pending = pending;
}

bool PeerStagingGroup::spill_one_guest(UnifiedTensorPool& host) {
  for (auto it = guests_.begin(); it != guests_.end(); ++it) {
    if (it->host != &host || it->fetch_pending) continue;
    UnifiedTensorPool* owner = it->owner;
    uint64_t uid = it->uid;
    uint64_t handle = it->handle;
    if (Member* m = member(host.device_id())) {
      assert(m->donated_in_use >= it->bytes);
      m->donated_in_use -= it->bytes;
    }
    guests_.erase(it);
    host.spill_guest_to_owner(*owner, uid, handle, next_tag());
    return true;
  }
  return false;
}

uint64_t PeerStagingGroup::donated_in_use(int device) const {
  const Member* m = member(device);
  return m ? m->donated_in_use : 0;
}

uint64_t PeerStagingGroup::donation_budget(int device) const {
  const Member* m = member(device);
  return m ? m->donation_budget : 0;
}

}  // namespace sn::core
