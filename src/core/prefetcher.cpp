#include "core/prefetcher.hpp"

#include <algorithm>
#include <unordered_set>

#include "core/recompute.hpp"

namespace sn::core {

Prefetcher::Prefetcher(const graph::Net& net, int lookahead)
    : net_(net), lookahead_(std::max(0, lookahead)) {}

std::vector<Prefetcher::Entry> Prefetcher::plan_spans(int step) const {
  std::vector<Entry> out;
  if (lookahead_ == 0) return out;
  std::unordered_set<uint64_t> seen;
  const auto& steps = net_.steps();
  int checkpoints = 0;
  for (size_t s = static_cast<size_t>(step) + 1; s < steps.size(); ++s) {
    const auto& st = steps[s];
    for (tensor::Tensor* u : st.layer->backward_uses()) {
      if (remote_gate_ && remote_gate_(u->uid())) continue;  // awaiting P2P landing
      if (seen.insert(u->uid()).second) out.push_back(Entry{u, checkpoints});
    }
    if (RecomputePlan::is_checkpoint_layer(st.layer) && ++checkpoints >= lookahead_) break;
  }
  return out;
}

int default_prefetch_lookahead(const graph::Net& net) {
  const std::string& a = net.arch();
  if (a == "alexnet" || a == "vgg16" || a == "vgg19") return 1;
  if (a == "inception_v4" || a == "densenet121") return 2;
  if (a.rfind("resnet", 0) == 0) return 2;
  return 1;  // the paper's policy for anything the bench has not ranked
}

std::vector<tensor::Tensor*> Prefetcher::plan(int step) const {
  std::vector<tensor::Tensor*> out;
  for (const Entry& e : plan_spans(step)) out.push_back(e.tensor);
  return out;
}

}  // namespace sn::core
