#include "core/prefetcher.hpp"

#include <algorithm>
#include <unordered_set>

#include "core/recompute.hpp"

namespace sn::core {

Prefetcher::Prefetcher(const graph::Net& net, int lookahead)
    : net_(net), lookahead_(std::max(0, lookahead)) {}

std::vector<Prefetcher::Entry> Prefetcher::plan_spans(int step) const {
  std::vector<Entry> out;
  if (lookahead_ == 0) return out;
  std::unordered_set<uint64_t> seen;
  const auto& steps = net_.steps();
  int checkpoints = 0;
  for (size_t s = static_cast<size_t>(step) + 1; s < steps.size(); ++s) {
    const auto& st = steps[s];
    for (tensor::Tensor* u : st.layer->backward_uses()) {
      if (seen.insert(u->uid()).second) out.push_back(Entry{u, checkpoints});
    }
    if (RecomputePlan::is_checkpoint_layer(st.layer) && ++checkpoints >= lookahead_) break;
  }
  return out;
}

std::vector<tensor::Tensor*> Prefetcher::plan(int step) const {
  std::vector<tensor::Tensor*> out;
  for (const Entry& e : plan_spans(step)) out.push_back(e.tensor);
  return out;
}

}  // namespace sn::core
